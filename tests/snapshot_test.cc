// Snapshot state transfer (DESIGN.md §9): unit tests for the chunked
// transfer protocol (SnapshotServer / SnapshotSink) and cluster integration
// tests for backup catch-up once the communication buffer has
// garbage-collected past a laggard's ack.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "net/network.h"
#include "sim/simulation.h"
#include "tests/test_util.h"
#include "vr/snapshot.h"
#include "wire/buffer.h"

namespace vsr::vr {
namespace {

// ---------------------------------------------------------------------------
// Unit tests: server/sink driven directly, with the test as the "network".
// ---------------------------------------------------------------------------

constexpr GroupId kGroup = 7;
constexpr Mid kSelf = 1;
constexpr Mid kBackup = 2;
constexpr ViewId kView{3, 1};

class SnapshotUnitTest : public ::testing::Test {
 protected:
  SnapshotUnitTest()
      : sim_(1),
        server_(sim_, Options(),
                [this](Mid to, const SnapshotChunkMsg& m) {
                  outbox_.push_back({to, m});
                }) {
    server_.StartView(kView, kGroup, kSelf);
    std::vector<std::uint8_t> bytes(45);
    std::iota(bytes.begin(), bytes.end(), std::uint8_t{1});
    payload_ = std::make_shared<const std::vector<std::uint8_t>>(
        std::move(bytes));
    vs_ = Viewstamp{kView, 40};
  }

  static SnapshotTransferOptions Options() {
    return {.chunk_size = 10,
            .window = 2,
            .retransmit_interval = 20 * sim::kMillisecond};
  }

  void Ack(std::uint64_t offset, Viewstamp vs) {
    SnapshotAckMsg a;
    a.group = kGroup;
    a.viewid = kView;
    a.from = kBackup;
    a.vs = vs;
    a.offset = offset;
    server_.OnAck(a);
  }

  // Delivers the front outbound chunk into the sink and acks whatever the
  // sink says; returns false when the outbox is empty.
  bool DeliverOne() {
    if (outbox_.empty()) return false;
    auto [to, m] = outbox_.front();
    outbox_.pop_front();
    EXPECT_EQ(to, kBackup);
    if (sink_.OnChunk(m)) Ack(sink_.offset(), sink_.vs());
    return true;
  }

  void DeliverAll() {
    while (DeliverOne()) {
    }
  }

  sim::Simulation sim_;
  SnapshotServer server_;
  SnapshotSink sink_;
  std::deque<std::pair<Mid, SnapshotChunkMsg>> outbox_;
  std::shared_ptr<const std::vector<std::uint8_t>> payload_;
  Viewstamp vs_;
};

TEST_F(SnapshotUnitTest, ServerPipelinesWithinWindow) {
  server_.Serve(kBackup, vs_, payload_);
  // 45 bytes / chunk 10 = 5 chunks total, but only `window` (2) may be in
  // flight past the acked offset.
  ASSERT_EQ(outbox_.size(), 2u);
  EXPECT_EQ(outbox_[0].second.offset, 0u);
  EXPECT_EQ(outbox_[1].second.offset, 10u);
  EXPECT_EQ(outbox_[0].second.total_size, 45u);

  // Acking the first chunk slides the window by exactly one chunk.
  Ack(10, vs_);
  ASSERT_EQ(outbox_.size(), 3u);
  EXPECT_EQ(outbox_[2].second.offset, 20u);
}

TEST_F(SnapshotUnitTest, TransferCompletesInOrder) {
  server_.Serve(kBackup, vs_, payload_);
  DeliverAll();

  EXPECT_TRUE(sink_.complete());
  EXPECT_EQ(sink_.payload(), *payload_);
  EXPECT_EQ(sink_.vs(), vs_);
  EXPECT_FALSE(server_.Serving(kBackup));
  EXPECT_EQ(server_.stats().transfers_started, 1u);
  EXPECT_EQ(server_.stats().transfers_completed, 1u);
  EXPECT_EQ(server_.stats().chunks_sent, 5u);
  EXPECT_EQ(server_.stats().chunk_retransmits, 0u);
  EXPECT_EQ(server_.stats().bytes_sent, 45u);
  EXPECT_EQ(sink_.corrupt_payloads(), 0u);
}

TEST_F(SnapshotUnitTest, DeadlineResendsFromAckedOffset) {
  server_.Serve(kBackup, vs_, payload_);
  outbox_.clear();  // the whole first window is lost

  sim_.scheduler().RunUntil(sim_.Now() + Options().retransmit_interval + 1);
  // Go-back-N from the acked offset (0): both window chunks again.
  ASSERT_EQ(outbox_.size(), 2u);
  EXPECT_EQ(outbox_[0].second.offset, 0u);
  EXPECT_GE(server_.stats().chunk_retransmits, 2u);

  DeliverAll();
  EXPECT_TRUE(sink_.complete());
  EXPECT_EQ(sink_.payload(), *payload_);
  EXPECT_EQ(server_.stats().transfers_completed, 1u);
}

TEST_F(SnapshotUnitTest, MidTransferLossRealignsViaCumulativeAck) {
  server_.Serve(kBackup, vs_, payload_);
  ASSERT_EQ(outbox_.size(), 2u);
  ASSERT_TRUE(DeliverOne());  // chunk at offset 0 arrives
  outbox_.pop_front();        // chunk at offset 10 is lost

  // The ack for offset 10 pumped one more chunk (offset 20). It arrives out
  // of order: the sink keeps its contiguous prefix and re-acks offset 10,
  // which does not advance the server.
  ASSERT_FALSE(outbox_.empty());
  EXPECT_EQ(outbox_.front().second.offset, 20u);
  ASSERT_TRUE(DeliverOne());
  EXPECT_EQ(sink_.offset(), 10u);

  // The deadline rewinds the send cursor to the acked offset and the
  // transfer finishes.
  sim_.scheduler().RunUntil(sim_.Now() + Options().retransmit_interval + 1);
  DeliverAll();
  EXPECT_TRUE(sink_.complete());
  EXPECT_EQ(sink_.payload(), *payload_);
  EXPECT_GE(server_.stats().chunk_retransmits, 1u);
  EXPECT_EQ(server_.stats().transfers_completed, 1u);
}

TEST_F(SnapshotUnitTest, ChecksumRejectRestartsTransferFromZero) {
  server_.Serve(kBackup, vs_, payload_);
  // Corrupt one payload byte of the second chunk in flight, leaving the
  // framing (total/checksum) intact: assembly succeeds, verification fails.
  ASSERT_EQ(outbox_.size(), 2u);
  outbox_[1].second.data[3] ^= 0xff;
  // Deliver chunk by chunk until the fully-assembled payload fails
  // verification. (The offset-0 ack immediately rewinds the server and
  // refills the outbox, so stop right at the reject to observe it.)
  while (sink_.corrupt_payloads() == 0) {
    ASSERT_TRUE(DeliverOne());
  }

  EXPECT_EQ(sink_.corrupt_payloads(), 1u);
  EXPECT_FALSE(sink_.complete());
  EXPECT_TRUE(sink_.active());  // restarted, same snapshot
  EXPECT_EQ(sink_.offset(), 0u);

  // The offset-0 ack rewound the server; the clean redelivery completes.
  ASSERT_FALSE(outbox_.empty());
  EXPECT_EQ(outbox_.front().second.offset, 0u);
  DeliverAll();
  EXPECT_TRUE(sink_.complete());
  EXPECT_EQ(sink_.payload(), *payload_);
  EXPECT_EQ(server_.stats().transfers_completed, 1u);
}

TEST_F(SnapshotUnitTest, SinkAdoptsNewerSnapshotMidTransfer) {
  server_.Serve(kBackup, vs_, payload_);
  ASSERT_TRUE(DeliverOne());
  EXPECT_EQ(sink_.offset(), 10u);

  // The primary moved on: a fresher snapshot supersedes the partial one.
  const Viewstamp newer{kView, 50};
  std::vector<std::uint8_t> fresh(12, 0xab);
  SnapshotChunkMsg m;
  m.group = kGroup;
  m.viewid = kView;
  m.from = kSelf;
  m.vs = newer;
  m.total_size = fresh.size();
  m.checksum = wire::Crc32(std::span<const std::uint8_t>(fresh));
  m.offset = 0;
  m.data = fresh;
  ASSERT_TRUE(sink_.OnChunk(m));
  EXPECT_EQ(sink_.vs(), newer);
  EXPECT_TRUE(sink_.complete());
  EXPECT_EQ(sink_.payload(), fresh);

  // A stray chunk of the superseded snapshot is ignored outright.
  SnapshotChunkMsg stale = outbox_.front().second;
  EXPECT_LT(stale.vs, newer);
  EXPECT_FALSE(sink_.OnChunk(stale));
}

TEST_F(SnapshotUnitTest, ServeSameVsKeepsProgressNewerReplaces) {
  server_.Serve(kBackup, vs_, payload_);
  ASSERT_TRUE(DeliverOne());
  EXPECT_EQ(server_.stats().transfers_started, 1u);

  // Re-serving the same snapshot must not restart the transfer.
  const std::uint64_t sent_before = server_.stats().chunks_sent;
  server_.Serve(kBackup, vs_, payload_);
  EXPECT_EQ(server_.stats().transfers_started, 1u);
  EXPECT_EQ(server_.stats().chunks_sent, sent_before);

  // A newer snapshot replaces it and starts over from offset 0.
  auto fresh = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>(25, 0xcd));
  outbox_.clear();
  server_.Serve(kBackup, Viewstamp{kView, 60}, fresh);
  EXPECT_EQ(server_.stats().transfers_started, 2u);
  ASSERT_FALSE(outbox_.empty());
  EXPECT_EQ(outbox_.front().second.offset, 0u);
  EXPECT_EQ(outbox_.front().second.total_size, 25u);
}

TEST_F(SnapshotUnitTest, AckValidationRejectsForeignOrStale) {
  server_.Serve(kBackup, vs_, payload_);

  SnapshotAckMsg a;
  a.group = kGroup;
  a.viewid = kView;
  a.from = kBackup;
  a.vs = vs_;

  a.viewid = ViewId{4, 1};  // wrong view
  a.offset = 10;
  server_.OnAck(a);
  EXPECT_EQ(server_.stats().acks_rejected, 1u);

  a.viewid = kView;
  a.group = kGroup + 1;  // wrong group
  server_.OnAck(a);
  EXPECT_EQ(server_.stats().acks_rejected, 2u);

  a.group = kGroup;
  a.vs = Viewstamp{kView, 99};  // not the snapshot being served
  server_.OnAck(a);
  EXPECT_EQ(server_.stats().acks_rejected, 3u);

  a.vs = vs_;
  a.offset = payload_->size() + 1;  // beyond the payload
  server_.OnAck(a);
  EXPECT_EQ(server_.stats().acks_rejected, 4u);

  // None of those moved the transfer: the next honest ack still works.
  a.offset = 10;
  server_.OnAck(a);
  EXPECT_EQ(server_.stats().acks_rejected, 4u);
  EXPECT_TRUE(server_.Serving(kBackup));

  // Stop() cancels the transfer wholesale (view change, crash).
  server_.Stop();
  EXPECT_FALSE(server_.Serving(kBackup));
  const std::size_t sent = outbox_.size();
  sim_.scheduler().RunUntil(sim_.Now() + 10 * Options().retransmit_interval);
  EXPECT_EQ(outbox_.size(), sent);  // no zombie retransmits
}

// ---------------------------------------------------------------------------
// Integration: a real cluster where the buffer GCs past a laggard.
// ---------------------------------------------------------------------------

using client::Cluster;
using client::ClusterOptions;
using test::RegisterKvProcs;
using test::RunOneCallWithRetry;

std::size_t IndexOfPrimary(Cluster& cluster, GroupId g) {
  auto cohorts = cluster.Cohorts(g);
  for (std::size_t i = 0; i < cohorts.size(); ++i) {
    if (cohorts[i]->IsActivePrimary()) return i;
  }
  return cohorts.size();
}

core::CohortOptions LaggardFriendlyOptions() {
  core::CohortOptions o;
  // Suppress failure-detection view changes while a backup is cut off: this
  // test is about state transfer, not elections.
  o.liveness_timeout = 60 * sim::kSecond;
  // A small buffer window so a modest workload outruns the laggard...
  o.buffer.window = 8;
  // ...and small chunks so a transfer takes several round trips.
  o.snapshot.chunk_size = 256;
  o.snapshot.window = 4;
  return o;
}

TEST(SnapshotIntegration, PartitionedBackupCatchesUpViaStateTransfer) {
  core::CohortOptions opts = LaggardFriendlyOptions();
  Cluster cluster(ClusterOptions{.seed = 91});
  auto kv = cluster.AddGroup("kv", 3, &opts);
  auto client_g = cluster.AddGroup("client", 1);
  RegisterKvProcs(cluster, kv);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  const std::size_t pi = IndexOfPrimary(cluster, kv);
  ASSERT_LT(pi, 3u);
  core::Cohort& primary = cluster.CohortAt(kv, pi);
  core::Cohort& laggard = cluster.CohortAt(kv, (pi + 1) % 3);
  ASSERT_EQ(laggard.status(), core::Status::kActive);

  // Cut the laggard off from the primary and commit far more than the
  // buffer window of work (~5 records per txn >> window 8).
  cluster.network().SetLinkDown(primary.mid(), laggard.mid(), true);
  for (int i = 0; i < 40; ++i) {
    ASSERT_EQ(RunOneCallWithRetry(cluster, client_g, kv, "put",
                                  "k" + std::to_string(i) + "=v" +
                                      std::to_string(i)),
              TxnOutcome::kCommitted)
        << "txn " << i;
  }
  cluster.RunFor(500 * sim::kMillisecond);

  // The dead backup no longer pins the buffer: resident records stay
  // O(window) and the laggard was routed through state transfer.
  EXPECT_LE(primary.buffer().records().size(),
            opts.buffer.window + opts.buffer.max_batch);
  EXPECT_GE(primary.buffer().stats().snapshots_served, 1u);
  EXPECT_LT(laggard.applied_ts(), primary.buffer().base_ts());

  // Heal. The deadline-driven chunk retransmits reach the laggard, which
  // installs the snapshot and rejoins the record stream.
  cluster.network().SetLinkDown(primary.mid(), laggard.mid(), false);
  cluster.RunFor(2 * sim::kSecond);

  EXPECT_GE(laggard.stats().snapshots_installed, 1u);
  EXPECT_EQ(laggard.stats().snapshot_installs_rejected, 0u);
  EXPECT_FALSE(laggard.installing_snapshot());
  EXPECT_EQ(laggard.applied_ts(), primary.buffer().last_ts());
  EXPECT_GE(primary.snapshot_server().stats().transfers_completed, 1u);
  for (int i : {0, 17, 39}) {
    EXPECT_EQ(laggard.objects()
                  .ReadCommitted("k" + std::to_string(i))
                  .value_or(""),
              "v" + std::to_string(i))
        << "key k" << i;
  }

  // The group still commits new work, and the caught-up backup sees it.
  ASSERT_EQ(RunOneCallWithRetry(cluster, client_g, kv, "put", "post=1"),
            TxnOutcome::kCommitted);
  cluster.RunFor(500 * sim::kMillisecond);
  EXPECT_EQ(laggard.objects().ReadCommitted("post").value_or(""), "1");
}

TEST(SnapshotIntegration, TransferSurvivesTwentyPercentLoss) {
  core::CohortOptions opts = LaggardFriendlyOptions();
  Cluster cluster(ClusterOptions{.seed = 92});
  auto kv = cluster.AddGroup("kv", 3, &opts);
  auto client_g = cluster.AddGroup("client", 1);
  RegisterKvProcs(cluster, kv);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  const std::size_t pi = IndexOfPrimary(cluster, kv);
  ASSERT_LT(pi, 3u);
  core::Cohort& primary = cluster.CohortAt(kv, pi);
  core::Cohort& laggard = cluster.CohortAt(kv, (pi + 1) % 3);

  cluster.network().SetLinkDown(primary.mid(), laggard.mid(), true);
  for (int i = 0; i < 40; ++i) {
    ASSERT_EQ(RunOneCallWithRetry(cluster, client_g, kv, "put",
                                  "k" + std::to_string(i) + "=v" +
                                      std::to_string(i)),
              TxnOutcome::kCommitted);
  }
  cluster.RunFor(500 * sim::kMillisecond);
  ASSERT_GE(primary.buffer().stats().snapshots_served, 1u);

  // Heal the link but drop 20% of every frame: chunks and acks both. The
  // cumulative-offset protocol must still converge.
  net::NetworkOptions lossy = cluster.network().options();
  lossy.loss_probability = 0.2;
  cluster.network().set_options(lossy);
  cluster.network().SetLinkDown(primary.mid(), laggard.mid(), false);
  cluster.RunFor(5 * sim::kSecond);

  lossy.loss_probability = 0.0;
  cluster.network().set_options(lossy);
  cluster.RunFor(1 * sim::kSecond);

  EXPECT_GE(laggard.stats().snapshots_installed, 1u);
  EXPECT_EQ(laggard.stats().snapshot_installs_rejected, 0u);
  EXPECT_EQ(laggard.applied_ts(), primary.buffer().last_ts());
  for (int i : {0, 17, 39}) {
    EXPECT_EQ(laggard.objects()
                  .ReadCommitted("k" + std::to_string(i))
                  .value_or(""),
              "v" + std::to_string(i));
  }
}

// Shared setup for the mid-transfer interruption tests: returns once the
// laggard (index pi+1 mod 3) is mid-install — at least one chunk landed,
// the transfer incomplete — with `pad`-sized values at keys k0..k29.
struct MidTransferRig {
  std::size_t pi = 0;  // primary index
  std::size_t li = 0;  // laggard index
  std::string pad = std::string(48, 'x');
};

MidTransferRig SetUpMidTransfer(Cluster& cluster, GroupId kv,
                                GroupId client_g) {
  MidTransferRig rig;
  EXPECT_TRUE(cluster.RunUntilStable());
  rig.pi = IndexOfPrimary(cluster, kv);
  EXPECT_LT(rig.pi, 3u);
  rig.li = (rig.pi + 1) % 3;
  core::Cohort& primary = cluster.CohortAt(kv, rig.pi);
  core::Cohort& laggard = cluster.CohortAt(kv, rig.li);

  // Fatten the snapshot payload so it spans dozens of chunks.
  cluster.network().SetLinkDown(primary.mid(), laggard.mid(), true);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(RunOneCallWithRetry(cluster, client_g, kv, "put",
                                  "k" + std::to_string(i) + "=" + rig.pad +
                                      std::to_string(i)),
              TxnOutcome::kCommitted);
  }
  cluster.RunFor(200 * sim::kMillisecond);
  EXPECT_GE(primary.buffer().stats().snapshots_served, 1u);

  // Heal and step in fine increments until the first chunk lands: the
  // laggard is now mid-install and must answer view changes as crashed.
  cluster.network().SetLinkDown(primary.mid(), laggard.mid(), false);
  for (int i = 0; i < 20000 && !laggard.installing_snapshot(); ++i) {
    cluster.RunFor(100 * sim::kMicrosecond);
  }
  EXPECT_TRUE(laggard.installing_snapshot());
  return rig;
}

core::CohortOptions MidTransferOptions() {
  core::CohortOptions o;
  // Moderate liveness: long enough to keep the lag phase election-free,
  // short enough that failures below are detected promptly.
  o.liveness_timeout = 3 * sim::kSecond;
  o.buffer.window = 8;
  // One tiny chunk in flight at a time: the transfer takes many round
  // trips, giving the interruptions below a wide mid-transfer target.
  o.snapshot.chunk_size = 64;
  o.snapshot.window = 1;
  return o;
}

TEST(SnapshotIntegration, MidTransferViewChangeSupersedesInstall) {
  core::CohortOptions opts = MidTransferOptions();
  // Keep the sink mid-install across the whole episode so the view change —
  // not the idle-abandon timer — is what resolves it.
  opts.snapshot.install_abandon_timeout = 60 * sim::kSecond;
  Cluster cluster(ClusterOptions{.seed = 93});
  auto kv = cluster.AddGroup("kv", 3, &opts);
  auto client_g = cluster.AddGroup("client", 1);
  RegisterKvProcs(cluster, kv);
  cluster.Start();
  MidTransferRig rig = SetUpMidTransfer(cluster, kv, client_g);
  if (::testing::Test::HasFailure()) return;
  core::Cohort& primary = cluster.CohortAt(kv, rig.pi);
  core::Cohort& laggard = cluster.CohortAt(kv, rig.li);
  const ViewId old_viewid = primary.cur_viewid();

  // Isolate the old primary from everyone: the transfer stalls with the
  // laggard mid-install, and the healthy backup's failure detector starts a
  // view change. It cannot form while the old primary is unreachable — the
  // mid-install laggard answers crashed-equivalent with the same viewid as
  // the one normal (never-primary) backup, failing §4's conditions (1)-(3).
  std::vector<net::NodeId> isolated{primary.mid()};
  std::vector<net::NodeId> rest;
  for (core::Cohort* c : cluster.Cohorts(kv)) {
    if (c->mid() != primary.mid()) rest.push_back(c->mid());
  }
  for (core::Cohort* c : cluster.Cohorts(client_g)) rest.push_back(c->mid());
  cluster.network().Partition({isolated, rest});
  cluster.RunFor(opts.liveness_timeout + 2 * sim::kSecond);
  EXPECT_TRUE(laggard.installing_snapshot());  // invitations left it intact
  EXPECT_EQ(laggard.stats().snapshots_installed, 0u);

  // Heal: the old primary rejoins the next formation round as a normal
  // acceptance (it led the crash-viewid view, satisfying condition (3)),
  // so a view forms and its newview gstate supersedes the partial install.
  cluster.network().Heal();
  ASSERT_TRUE(cluster.RunUntilStable(30 * sim::kSecond));
  core::Cohort* np = cluster.AnyPrimary(kv);
  ASSERT_NE(np, nullptr);
  EXPECT_GT(np->cur_viewid(), old_viewid);
  cluster.RunFor(1 * sim::kSecond);

  EXPECT_EQ(laggard.stats().snapshots_installed, 0u);
  EXPECT_EQ(laggard.stats().snapshot_installs_rejected, 0u);
  EXPECT_FALSE(laggard.installing_snapshot());
  for (int i : {0, 13, 29}) {
    const std::string want = rig.pad + std::to_string(i);
    for (core::Cohort* c : cluster.Cohorts(kv)) {
      if (c->status() != core::Status::kActive) continue;
      EXPECT_EQ(c->objects()
                    .ReadCommitted("k" + std::to_string(i))
                    .value_or(""),
                want)
          << "cohort " << c->mid() << " key k" << i;
    }
  }
  EXPECT_EQ(RunOneCallWithRetry(cluster, client_g, kv, "put", "post=1"),
            TxnOutcome::kCommitted);
}

TEST(SnapshotIntegration, MidTransferPrimaryCrashInstallsNothing) {
  core::CohortOptions opts = MidTransferOptions();
  // Long abandon timeout: first observe the crashed-equivalence window,
  // then the timer's escape from it.
  opts.snapshot.install_abandon_timeout = 15 * sim::kSecond;
  Cluster cluster(ClusterOptions{.seed = 94});
  auto kv = cluster.AddGroup("kv", 3, &opts);
  auto client_g = cluster.AddGroup("client", 1);
  RegisterKvProcs(cluster, kv);
  cluster.Start();
  MidTransferRig rig = SetUpMidTransfer(cluster, kv, client_g);
  if (::testing::Test::HasFailure()) return;
  core::Cohort& laggard = cluster.CohortAt(kv, rig.li);
  const std::size_t hi = 3 - rig.pi - rig.li;  // the up-to-date backup

  // Crash the primary with the transfer incomplete. No sim time passes
  // between the observation above and the crash, so nothing was installed.
  cluster.Crash(kv, rig.pi);

  // While the laggard still answers crashed-equivalent, no view can form:
  // the old primary is crashed and the surviving normal backup never led
  // the crash-viewid view, so §4's conditions (1)-(3) all fail — exactly
  // the paper's A/B/C example. Safety: a half-transferred snapshot must
  // never seed a new view.
  EXPECT_FALSE(cluster.RunUntilStable(8 * sim::kSecond));
  EXPECT_EQ(cluster.AnyPrimary(kv), nullptr);
  EXPECT_TRUE(laggard.installing_snapshot());

  // All-or-nothing: none of the transferred bytes became state. The laggard
  // still serves its (consistent) pre-transfer prefix — every lagged key is
  // wholly absent, never torn.
  EXPECT_EQ(laggard.stats().snapshots_installed, 0u);
  EXPECT_EQ(laggard.stats().snapshot_installs_rejected, 0u);
  for (int i : {0, 13, 29}) {
    EXPECT_EQ(laggard.objects()
                  .ReadCommitted("k" + std::to_string(i))
                  .value_or(""),
              "")
        << "key k" << i;
  }
  // The up-to-date backup, by contrast, has everything.
  for (int i : {0, 13, 29}) {
    EXPECT_EQ(cluster.CohortAt(kv, hi)
                  .objects()
                  .ReadCommitted("k" + std::to_string(i))
                  .value_or(""),
              rig.pad + std::to_string(i));
  }

  // Once the chunk stream has been idle past install_abandon_timeout the
  // laggard abandons the dead transfer wholesale and resumes normal
  // acceptances with its intact pre-transfer state: two normal acceptances
  // are a majority (condition (1)), so availability returns — led by the
  // up-to-date backup, which holds the largest viewstamp.
  ASSERT_TRUE(cluster.RunUntilStable(60 * sim::kSecond));
  EXPECT_GE(laggard.stats().snapshot_installs_abandoned, 1u);
  EXPECT_FALSE(laggard.installing_snapshot());
  const std::size_t np = IndexOfPrimary(cluster, kv);
  EXPECT_EQ(np, hi);
  EXPECT_EQ(RunOneCallWithRetry(cluster, client_g, kv, "put", "post=1"),
            TxnOutcome::kCommitted);
  cluster.RunFor(500 * sim::kMillisecond);
  // The newview gstate caught the laggard all the way up.
  EXPECT_EQ(laggard.objects().ReadCommitted("k13").value_or(""),
            rig.pad + "13");
}

}  // namespace
}  // namespace vsr::vr
