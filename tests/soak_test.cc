// Soak test: long randomized runs over MULTIPLE server groups with
// multi-call transactions, full fault injection, and per-register
// serializability chains. Heavier than stress_test (which tortures one
// group); this exercises cross-group 2PC under chaos.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "check/invariants.h"
#include "check/serial.h"
#include "client/shard_router.h"
#include "tests/test_util.h"
#include "workload/sharded_bank.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;

struct SoakParams {
  std::uint64_t seed;
  int rounds;
  double loss;
  bool nested;
};

void PrintTo(const SoakParams& p, std::ostream* os) {
  *os << "seed" << p.seed << "_r" << p.rounds << "_loss" << p.loss
      << (p.nested ? "_nested" : "");
}

class SoakTest : public ::testing::TestWithParam<SoakParams> {};

TEST_P(SoakTest, CrossGroupSerializableUnderChaos) {
  const SoakParams p = GetParam();
  ClusterOptions opts;
  opts.seed = p.seed;
  opts.net.loss_probability = p.loss;
  opts.net.duplicate_probability = p.loss;
  opts.cohort.nested_call_retry = p.nested;
  Cluster cluster(opts);
  sim::Rng rng(p.seed * 6151 + 11);

  // Two register groups; each transaction does an RMW on one register in
  // EACH group — a genuine two-participant distributed transaction whose
  // two chains must stay mutually consistent.
  auto ga = cluster.AddGroup("ga", 3);
  auto gb = cluster.AddGroup("gb", 3);
  auto client_g = cluster.AddGroup("client", 3);
  for (auto g : {ga, gb}) {
    cluster.RegisterProc(
        g, "rmw",
        [](core::ProcContext& ctx) -> sim::Task<std::vector<std::uint8_t>> {
          auto prev = co_await ctx.ReadForUpdate("r");
          co_await ctx.Write("r", ctx.ArgsAsString());
          co_return test::Bytes(prev.value_or(""));
        });
  }
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  struct TxnRecord {
    std::string value;
    std::string prev_a, prev_b;
    bool have_a = false, have_b = false;
    bool resolved = false;
    vr::TxnOutcome outcome = vr::TxnOutcome::kUnknown;
  };
  std::vector<std::unique_ptr<TxnRecord>> txns;

  std::map<vr::GroupId, std::vector<core::Cohort*>> groups{
      {ga, cluster.Cohorts(ga)},
      {gb, cluster.Cohorts(gb)},
      {client_g, cluster.Cohorts(client_g)}};
  bool partitioned = false;

  auto safe_to_crash = [&](vr::GroupId g, std::size_t idx) {
    core::Cohort* primary = cluster.AnyPrimary(g);
    if (primary == nullptr) return false;
    std::size_t healthy = 0;
    const auto& cs = groups[g];
    for (std::size_t i = 0; i < cs.size(); ++i) {
      if (i != idx && cs[i]->status() == core::Status::kActive &&
          cs[i]->up_to_date() &&
          cs[i]->cur_viewid() == primary->cur_viewid()) {
        ++healthy;
      }
    }
    return healthy >= vr::MajorityOf(cs.size());
  };

  for (int round = 0; round < p.rounds; ++round) {
    const std::uint64_t dice = rng.UniformInt(0, 99);
    if (dice < 50) {
      core::Cohort* primary = cluster.AnyPrimary(client_g);
      if (primary != nullptr) {
        auto rec = std::make_unique<TxnRecord>();
        rec->value = "v" + std::to_string(txns.size());
        TxnRecord* raw = rec.get();
        txns.push_back(std::move(rec));
        primary->SpawnTransaction(
            [raw, ga, gb](core::TxnHandle& h) -> sim::Task<bool> {
              auto a = co_await h.Call(ga, "rmw", raw->value);
              raw->prev_a = test::Str(a);
              raw->have_a = true;
              auto b = co_await h.Call(gb, "rmw", raw->value);
              raw->prev_b = test::Str(b);
              raw->have_b = true;
              co_return true;
            },
            [raw](vr::TxnOutcome o) {
              raw->resolved = true;
              raw->outcome = o;
            });
      }
    } else if (dice < 70) {
      // Crash/recover a random cohort of a random group.
      const vr::GroupId g = dice % 3 == 0 ? ga : (dice % 3 == 1 ? gb : client_g);
      const auto& cs = groups[g];
      const std::size_t idx = rng.Index(cs.size());
      if (cs[idx]->status() == core::Status::kCrashed) {
        cs[idx]->Recover();
      } else if (safe_to_crash(g, idx)) {
        cs[idx]->Crash();
      }
    } else if (dice < 80) {
      if (!partitioned) {
        std::vector<net::NodeId> side_a, side_b;
        for (auto& [g, cs] : groups) {
          for (auto* c : cs) {
            (rng.Bernoulli(0.5) ? side_a : side_b).push_back(c->mid());
          }
        }
        if (!side_a.empty() && !side_b.empty()) {
          cluster.network().Partition({side_a, side_b});
          partitioned = true;
        }
      } else {
        cluster.network().Heal();
        partitioned = false;
      }
    } else if (dice < 85) {
      for (auto g : {ga, gb, client_g}) {
        for (const std::string& v : check::CheckInstant(cluster, g)) {
          ADD_FAILURE() << "round " << round << " group " << g << ": " << v;
        }
      }
    }
    cluster.RunFor(rng.UniformInt(5, 60) * sim::kMillisecond);
  }

  // Quiesce.
  cluster.network().Heal();
  for (auto& [g, cs] : groups) {
    for (auto* c : cs) {
      if (c->status() == core::Status::kCrashed) c->Recover();
    }
  }
  ASSERT_TRUE(cluster.RunUntilStable());
  cluster.RunFor(15 * sim::kSecond);

  // Each group's register must form a serial chain over the SAME set of
  // committed transactions (atomic commitment: a transaction is in both
  // chains or neither).
  check::RegisterChainChecker chain_a, chain_b;
  for (const auto& rec : txns) {
    const vr::TxnOutcome o =
        rec->resolved ? rec->outcome : vr::TxnOutcome::kUnknown;
    if (o == vr::TxnOutcome::kCommitted) {
      ASSERT_TRUE(rec->have_a && rec->have_b)
          << "committed txn missing a call result";
      chain_a.NoteCommitted(rec->prev_a, rec->value);
      chain_b.NoteCommitted(rec->prev_b, rec->value);
    } else if (o == vr::TxnOutcome::kUnknown) {
      if (rec->have_a) chain_a.NoteUnknown(rec->prev_a, rec->value);
      if (rec->have_b) chain_b.NoteUnknown(rec->prev_b, rec->value);
    }
  }
  core::Cohort* pa = cluster.AnyPrimary(ga);
  core::Cohort* pb = cluster.AnyPrimary(gb);
  ASSERT_NE(pa, nullptr);
  ASSERT_NE(pb, nullptr);
  std::string why;
  EXPECT_TRUE(chain_a.Validate(
      "", pa->objects().ReadCommitted("r").value_or(""), &why))
      << "group A: " << why;
  EXPECT_TRUE(chain_b.Validate(
      "", pb->objects().ReadCommitted("r").value_or(""), &why))
      << "group B: " << why;

  for (auto g : {ga, gb, client_g}) {
    for (const std::string& v : check::CheckQuiescent(cluster, g)) {
      ADD_FAILURE() << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, SoakTest,
    ::testing::Values(SoakParams{101, 1500, 0.00, false},
                      SoakParams{102, 1500, 0.03, false},
                      SoakParams{103, 1500, 0.03, true},
                      SoakParams{104, 2000, 0.06, true},
                      SoakParams{105, 2000, 0.08, false},
                      SoakParams{106, 2500, 0.05, true}));

// DESIGN.md §9 GC-bound soak: one backup crashes permanently while the
// surviving pair keeps committing. Without the StableTs() - window GC floor
// the dead backup's stale ack would pin every record since the crash
// (memory O(lag)); with it the primary's resident record vector must stay
// O(window) for the whole run. CHECK_SOAK=1 (scripts/check.sh) multiplies
// the rounds ~10x; the default stays short enough for tier-1 ctest.
TEST(DeadBackupSoak, ResidentRecordsStayWithinWindow) {
  const char* soak_env = std::getenv("CHECK_SOAK");
  const bool long_run = soak_env != nullptr && soak_env[0] == '1';
  const int rounds = long_run ? 400 : 40;

  core::CohortOptions copts;
  // Losing a backup must not trigger an election mid-measurement.
  copts.liveness_timeout = 60 * sim::kSecond;
  // Small window so even the short run commits many windows' worth of work.
  copts.buffer.window = 8;
  copts.snapshot.chunk_size = 256;
  copts.snapshot.window = 4;

  Cluster cluster(ClusterOptions{.seed = 107});
  auto kv = cluster.AddGroup("kv", 3, &copts);
  auto client_g = cluster.AddGroup("client", 1);
  test::RegisterKvProcs(cluster, kv);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  auto cohorts = cluster.Cohorts(kv);
  std::size_t pi = cohorts.size();
  for (std::size_t i = 0; i < cohorts.size(); ++i) {
    if (cohorts[i]->IsActivePrimary()) pi = i;
  }
  ASSERT_LT(pi, cohorts.size());
  core::Cohort& primary = *cohorts[pi];
  core::Cohort& dead = *cohorts[(pi + 1) % cohorts.size()];
  dead.Crash();

  // window of unacked records + one flush batch still being assembled.
  const std::size_t bound = copts.buffer.window + copts.buffer.max_batch;
  std::size_t max_resident = 0;
  for (int i = 0; i < rounds; ++i) {
    ASSERT_EQ(test::RunOneCallWithRetry(
                  cluster, client_g, kv, "put",
                  "k" + std::to_string(i) + "=v" + std::to_string(i)),
              vr::TxnOutcome::kCommitted)
        << "round " << i;
    max_resident = std::max(max_resident, primary.buffer().records().size());
    if (i % 10 == 9) {
      cluster.RunFor(50 * sim::kMillisecond);
      for (const std::string& v : check::CheckInstant(cluster, kv)) {
        ADD_FAILURE() << "round " << i << ": " << v;
      }
    }
  }
  EXPECT_LE(max_resident, bound)
      << "dead backup pinned the communication buffer";
  EXPECT_GT(primary.buffer().stats().records_gced, 0u);
  EXPECT_EQ(test::CommittedValue(cluster, kv,
                                 "k" + std::to_string(rounds - 1)),
            "v" + std::to_string(rounds - 1));

  // The crashed cohort rejoins and converges on the full history even
  // though the records it missed were long since garbage-collected.
  dead.Recover();
  ASSERT_TRUE(cluster.RunUntilStable());
  cluster.RunFor(2 * sim::kSecond);
  // The recovered cohort must hold history it never received through the
  // record stream — those records were garbage-collected long ago.
  for (int i : {0, rounds / 2, rounds - 1}) {
    EXPECT_EQ(
        dead.objects().ReadCommitted("k" + std::to_string(i)).value_or(""),
        "v" + std::to_string(i))
        << "k" << i;
  }
  EXPECT_EQ(test::RunOneCallWithRetry(cluster, client_g, kv, "put",
                                      "post=recovery"),
            vr::TxnOutcome::kCommitted);
  cluster.RunFor(500 * sim::kMillisecond);
  for (const std::string& v : check::CheckQuiescent(cluster, kv)) {
    ADD_FAILURE() << v;
  }
}

// DESIGN.md §13 crash soak: the fused commit path reports kCommitted at
// committing-buffer time and overlaps the decision force with the commit
// fan-out — so a coordinator-primary crash can land in every window the
// serial ladder never exposed (decision buffered but not yet replicated,
// replicated but no commit sent, fan-out half delivered). This soak
// repeatedly crashes coordinator and shard primaries mid-stream on a
// duplicating, lossy network and then demands EXACT conservation: every
// cross-shard transfer moved money atomically, exactly once or not at all.
// CHECK_SOAK=1 multiplies the rounds ~10x.
TEST(CommitFusionCrashSoak, ExactConservationAcrossCoordinatorCrashes) {
  const char* soak_env = std::getenv("CHECK_SOAK");
  const bool long_run = soak_env != nullptr && soak_env[0] == '1';
  const int rounds = long_run ? 800 : 80;

  ClusterOptions opts;
  opts.seed = 108;
  opts.net.loss_probability = 0.02;
  opts.net.duplicate_probability = 0.3;
  Cluster cluster(opts);
  auto bank = workload::SetupShardedBank(cluster, 2, 3, 10);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  ASSERT_EQ(workload::FundShardedAccounts(cluster, bank, 50), 10);

  sim::Rng rng(opts.seed * 7919 + 3);
  client::ShardRouter router(cluster.directory());
  std::map<vr::GroupId, std::vector<core::Cohort*>> groups;
  for (auto g : bank.shards) groups[g] = cluster.Cohorts(g);
  groups[bank.client_group] = cluster.Cohorts(bank.client_group);

  auto safe_to_crash = [&](vr::GroupId g, core::Cohort* victim) {
    core::Cohort* primary = cluster.AnyPrimary(g);
    if (primary == nullptr) return false;
    std::size_t healthy = 0;
    for (auto* c : groups[g]) {
      if (c != victim && c->status() == core::Status::kActive &&
          c->up_to_date() && c->cur_viewid() == primary->cur_viewid()) {
        ++healthy;
      }
    }
    return healthy >= vr::MajorityOf(groups[g].size());
  };

  int spawned = 0;
  for (int round = 0; round < rounds; ++round) {
    const std::uint64_t dice = rng.UniformInt(0, 99);
    if (dice < 60) {
      core::Cohort* coord = cluster.AnyPrimary(bank.client_group);
      if (coord != nullptr) {
        const int from = static_cast<int>(rng.Index(5));
        const int to = 5 + static_cast<int>(rng.Index(5));
        coord->SpawnTransaction(
            workload::MakeShardedTransferTxn(
                router, workload::ShardAccountName(from),
                workload::ShardAccountName(to), 1),
            [](vr::TxnOutcome) {});
        ++spawned;
      }
    } else if (dice < 78) {
      // Crash the coordinator primary by preference — that is the node
      // whose loss tests the fused decision's durability story — else
      // recover whoever is down.
      const vr::GroupId g = dice < 72 ? bank.client_group
                                      : bank.shards[dice % bank.shards.size()];
      core::Cohort* primary = cluster.AnyPrimary(g);
      if (primary != nullptr && safe_to_crash(g, primary)) {
        primary->Crash();
      } else {
        for (auto* c : groups[g]) {
          if (c->status() == core::Status::kCrashed) {
            c->Recover();
            break;
          }
        }
      }
    } else if (dice < 85) {
      for (auto* c : groups[bank.client_group]) {
        if (c->status() == core::Status::kCrashed) {
          c->Recover();
          break;
        }
      }
    }
    cluster.RunFor(rng.UniformInt(5, 60) * sim::kMillisecond);
  }

  // Quiesce: recover everyone, let janitors resolve every in-doubt txn.
  for (auto& [g, cs] : groups) {
    for (auto* c : cs) {
      if (c->status() == core::Status::kCrashed) c->Recover();
    }
  }
  ASSERT_TRUE(cluster.RunUntilStable());
  cluster.RunFor(20 * sim::kSecond);

  ASSERT_GT(spawned, 0);
  std::vector<std::string> accounts;
  for (int i = 0; i < 10; ++i) {
    accounts.push_back(workload::ShardAccountName(i));
  }
  for (const std::string& v :
       check::CheckConservation(cluster, accounts, 500)) {
    ADD_FAILURE() << v;
  }
  for (auto& [g, cs] : groups) {
    for (const std::string& v : check::CheckQuiescent(cluster, g)) {
      ADD_FAILURE() << v;
    }
  }
  // The soak must actually exercise the fused path.
  std::uint64_t fused = 0;
  for (auto* c : groups[bank.client_group]) fused += c->stats().fused_commits;
  EXPECT_GT(fused, 0u);
}

}  // namespace
}  // namespace vsr
