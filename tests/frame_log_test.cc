// Tests for the network observation tap and the FrameLog renderer.
#include <gtest/gtest.h>

#include "net/frame_log.h"
#include "tests/test_util.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;

TEST(FrameLog, CapturesTheViewChangeSequence) {
  Cluster cluster(ClusterOptions{.seed = 301});
  auto g = cluster.AddGroup("kv", 3);
  net::FrameLog log(cluster.sim(), cluster.network());
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  // Boot = one view change: invitations and acceptances must appear, and in
  // cause-before-effect order.
  EXPECT_GE(log.CountType(vr::MsgType::kInvite), 2u);
  EXPECT_GE(log.CountType(vr::MsgType::kAccept), 2u);
  EXPECT_GE(log.CountType(vr::MsgType::kBufferBatch), 1u);
  sim::Time first_invite = 0, first_batch = 0;
  for (const auto& e : log.entries()) {
    if (e.type == static_cast<std::uint16_t>(vr::MsgType::kInvite) &&
        first_invite == 0) {
      first_invite = e.at;
    }
    if (e.type == static_cast<std::uint16_t>(vr::MsgType::kBufferBatch) &&
        first_batch == 0) {
      first_batch = e.at;
    }
  }
  EXPECT_LT(first_invite, first_batch);

  // Rendering produces one line per entry with names resolved.
  auto lines = log.Render(static_cast<std::uint16_t>(vr::MsgType::kInvite));
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines[0].find("invite"), std::string::npos);
  (void)g;
}

TEST(FrameLog, CapacityBoundsMemory) {
  Cluster cluster(ClusterOptions{.seed = 302});
  cluster.AddGroup("kv", 3);
  net::FrameLog log(cluster.sim(), cluster.network(), /*capacity=*/16);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  cluster.RunFor(2 * sim::kSecond);  // plenty of pings
  EXPECT_LE(log.entries().size(), 16u);
  EXPECT_GT(log.dropped(), 0u);
}

TEST(FrameLog, TransactionMessageFlow) {
  Cluster cluster(ClusterOptions{.seed = 303});
  auto g = cluster.AddGroup("kv", 3);
  auto agents = cluster.AddGroup("agents", 3);
  test::RegisterKvProcs(cluster, g);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  net::FrameLog log(cluster.sim(), cluster.network());
  ASSERT_EQ(test::RunOneCall(cluster, agents, g, "put", "k=1"),
            vr::TxnOutcome::kCommitted);
  cluster.RunFor(500 * sim::kMillisecond);

  // One transaction = exactly one executed call/reply, one prepare/reply,
  // one commit/done at the data plane (no retransmissions on the clean
  // network).
  EXPECT_EQ(log.CountType(vr::MsgType::kCall), 1u);
  EXPECT_EQ(log.CountType(vr::MsgType::kReply), 1u);
  EXPECT_EQ(log.CountType(vr::MsgType::kPrepare), 1u);
  EXPECT_EQ(log.CountType(vr::MsgType::kPrepareReply), 1u);
  EXPECT_EQ(log.CountType(vr::MsgType::kCommit), 1u);
  EXPECT_EQ(log.CountType(vr::MsgType::kCommitDone), 1u);
}

}  // namespace
}  // namespace vsr
