// Randomized fault-injection stress tests ("simulator torture").
//
// A register group runs read-modify-write transactions from a replicated
// client group while the harness injects crashes, recoveries, partitions,
// message loss and duplication. At the end the committed transactions must
// form a single serial chain (one-copy serializability, §1), committed state
// must survive every view change (§2), and all structural invariants must
// hold. Each parameter set is a different world; all are deterministic in
// the seed.
#include <gtest/gtest.h>

#include "check/invariants.h"
#include "check/serial.h"
#include "tests/test_util.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;

struct StressParams {
  std::uint64_t seed;
  std::size_t replicas;
  int rounds;
  double loss;
  double duplicate;
  bool nested_retry;        // §3.6 subactions on/off
  bool eager_backup_apply;  // §3.3 trade-off
  bool crash_clients;
};

void PrintTo(const StressParams& p, std::ostream* os) {
  *os << "seed" << p.seed << "_n" << p.replicas << "_r" << p.rounds << "_loss"
      << p.loss << "_dup" << p.duplicate << (p.nested_retry ? "_nested" : "")
      << (p.eager_backup_apply ? "_eager" : "_lazy")
      << (p.crash_clients ? "_ccrash" : "");
}

class StressTest : public ::testing::TestWithParam<StressParams> {};

TEST_P(StressTest, SerializableUnderFaults) {
  const StressParams p = GetParam();
  ClusterOptions opts;
  opts.seed = p.seed;
  opts.net.loss_probability = p.loss;
  opts.net.duplicate_probability = p.duplicate;
  opts.cohort.nested_call_retry = p.nested_retry;
  opts.cohort.eager_backup_apply = p.eager_backup_apply;
  Cluster cluster(opts);
  sim::Rng rng(p.seed * 7919 + 13);

  auto reg = cluster.AddGroup("reg", p.replicas);
  auto client_g = cluster.AddGroup("client", 3);
  // rmw: read register "r", write the provided unique value, return the
  // previous contents.
  cluster.RegisterProc(
      reg, "rmw",
      [](core::ProcContext& ctx) -> sim::Task<std::vector<std::uint8_t>> {
        auto prev = co_await ctx.ReadForUpdate("r");
        co_await ctx.Write("r", ctx.ArgsAsString());
        co_return test::Bytes(prev.value_or(""));
      });
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  struct TxnRecord {
    bool have_prev = false;
    std::string prev;
    std::string value;
    bool resolved = false;
    vr::TxnOutcome outcome = vr::TxnOutcome::kUnknown;
  };
  std::vector<std::unique_ptr<TxnRecord>> txns;

  auto reg_cohorts = cluster.Cohorts(reg);
  auto client_cohorts = cluster.Cohorts(client_g);
  std::vector<bool> reg_up(reg_cohorts.size(), true);
  std::vector<bool> client_up(client_cohorts.size(), true);
  bool partitioned = false;

  for (int round = 0; round < p.rounds; ++round) {
    const std::uint64_t dice = rng.UniformInt(0, 99);
    if (dice < 55) {
      // Spawn a transaction.
      core::Cohort* primary = cluster.AnyPrimary(client_g);
      if (primary != nullptr) {
        auto rec = std::make_unique<TxnRecord>();
        rec->value = "v" + std::to_string(txns.size());
        TxnRecord* raw = rec.get();
        txns.push_back(std::move(rec));
        primary->SpawnTransaction(
            [raw, reg](core::TxnHandle& h) -> sim::Task<bool> {
              auto r = co_await h.Call(reg, "rmw", raw->value);
              raw->prev = test::Str(r);
              raw->have_prev = true;
              co_return true;
            },
            [raw](vr::TxnOutcome o) {
              raw->resolved = true;
              raw->outcome = o;
            });
      }
    } else if (dice < 65) {
      // Crash a register cohort — but stay inside the model's stated limit
      // (§4.2): a "simultaneous" crash of a majority may lose the group
      // state forever, so the injector only crashes while a majority of
      // up-to-date cohorts would remain active in the current view. (The
      // dedicated catastrophe behaviour is exercised in view_change_test
      // and bench E9.)
      std::size_t idx = rng.Index(reg_cohorts.size());
      if (reg_up[idx]) {
        core::Cohort* primary = cluster.AnyPrimary(reg);
        std::size_t healthy = 0;
        for (std::size_t i = 0; i < reg_cohorts.size(); ++i) {
          auto* c = reg_cohorts[i];
          if (i != idx && primary != nullptr &&
              c->status() == core::Status::kActive && c->up_to_date() &&
              c->cur_viewid() == primary->cur_viewid()) {
            ++healthy;
          }
        }
        if (healthy >= vr::MajorityOf(reg_cohorts.size())) {
          reg_up[idx] = false;
          cluster.Crash(reg, idx);
        }
      }
    } else if (dice < 78) {
      // Recover a crashed register cohort.
      std::size_t idx = rng.Index(reg_cohorts.size());
      if (!reg_up[idx]) {
        reg_up[idx] = true;
        cluster.Recover(reg, idx);
      }
    } else if (dice < 85) {
      if (!partitioned) {
        // Random bisection of all nodes.
        std::vector<net::NodeId> side_a, side_b;
        for (auto* c : reg_cohorts) {
          (rng.Bernoulli(0.5) ? side_a : side_b).push_back(c->mid());
        }
        for (auto* c : client_cohorts) {
          (rng.Bernoulli(0.5) ? side_a : side_b).push_back(c->mid());
        }
        if (!side_a.empty() && !side_b.empty()) {
          cluster.network().Partition({side_a, side_b});
          partitioned = true;
        }
      } else {
        cluster.network().Heal();
        partitioned = false;
      }
    } else if (dice < 90 && p.crash_clients) {
      std::size_t idx = rng.Index(client_cohorts.size());
      if (!client_up[idx]) {
        client_up[idx] = true;
        cluster.Recover(client_g, idx);
      } else {
        core::Cohort* primary = cluster.AnyPrimary(client_g);
        std::size_t healthy = 0;
        for (std::size_t i = 0; i < client_cohorts.size(); ++i) {
          auto* c = client_cohorts[i];
          if (i != idx && primary != nullptr &&
              c->status() == core::Status::kActive && c->up_to_date() &&
              c->cur_viewid() == primary->cur_viewid()) {
            ++healthy;
          }
        }
        if (healthy >= vr::MajorityOf(client_cohorts.size())) {
          client_up[idx] = false;
          cluster.Crash(client_g, idx);
        }
      }
    } else {
      // Instant structural invariants must hold mid-chaos.
      for (const std::string& v : check::CheckInstant(cluster, reg)) {
        ADD_FAILURE() << "round " << round << ": " << v;
      }
    }
    cluster.RunFor(rng.UniformInt(5, 80) * sim::kMillisecond);
  }

  // Quiesce: heal everything, recover everyone, let the dust settle.
  cluster.network().Heal();
  for (std::size_t i = 0; i < reg_cohorts.size(); ++i) {
    if (!reg_up[i]) cluster.Recover(reg, i);
  }
  for (std::size_t i = 0; i < client_cohorts.size(); ++i) {
    if (!client_up[i]) cluster.Recover(client_g, i);
  }
  ASSERT_TRUE(cluster.RunUntilStable());
  cluster.RunFor(10 * sim::kSecond);

  // Build the serializability chain from client-observed outcomes.
  check::RegisterChainChecker chain;
  check::CommitAccounting accounting;
  for (const auto& rec : txns) {
    const vr::TxnOutcome o =
        rec->resolved ? rec->outcome : vr::TxnOutcome::kUnknown;
    accounting.Note(o);
    if (!rec->have_prev) continue;  // never executed its call: cannot commit
    if (o == vr::TxnOutcome::kCommitted) {
      chain.NoteCommitted(rec->prev, rec->value);
    } else if (o == vr::TxnOutcome::kUnknown) {
      chain.NoteUnknown(rec->prev, rec->value);
    }
  }

  core::Cohort* primary = cluster.AnyPrimary(reg);
  ASSERT_NE(primary, nullptr);
  const std::string final_value =
      primary->objects().ReadCommitted("r").value_or("");
  std::string why;
  EXPECT_TRUE(chain.Validate("", final_value, &why))
      << why << " [committed=" << chain.committed()
      << " unknown=" << chain.unknown() << " total=" << txns.size() << "]";

  // Replicas active in the final view agree on committed state.
  for (const std::string& v : check::CheckQuiescent(cluster, reg)) {
    ADD_FAILURE() << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, StressTest,
    ::testing::Values(
        StressParams{1, 3, 150, 0.00, 0.00, false, true, false},
        StressParams{2, 3, 150, 0.02, 0.02, false, true, false},
        StressParams{3, 3, 200, 0.05, 0.05, false, true, true},
        StressParams{4, 5, 200, 0.02, 0.02, false, true, false},
        StressParams{5, 5, 200, 0.05, 0.05, false, true, true},
        StressParams{6, 3, 150, 0.02, 0.02, true, true, false},
        StressParams{7, 5, 200, 0.05, 0.05, true, true, true},
        StressParams{8, 3, 150, 0.02, 0.02, false, false, false},
        StressParams{9, 5, 200, 0.05, 0.05, false, false, true},
        StressParams{10, 7, 250, 0.03, 0.03, true, true, true},
        StressParams{11, 3, 300, 0.10, 0.05, false, true, false},
        StressParams{12, 5, 300, 0.10, 0.10, true, false, true},
        StressParams{13, 3, 500, 0.15, 0.15, true, true, true},
        StressParams{14, 7, 400, 0.08, 0.08, false, false, true},
        StressParams{15, 5, 500, 0.12, 0.02, true, true, false},
        StressParams{16, 3, 400, 0.02, 0.20, false, true, true}));

}  // namespace
}  // namespace vsr
