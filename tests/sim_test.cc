// Unit tests for the simulation substrate: scheduler, PRNG, coroutine tasks.
#include <gtest/gtest.h>

#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/simulation.h"
#include "sim/task.h"
#include "sim/time.h"

namespace vsr::sim {
namespace {

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.At(30, [&] { order.push_back(3); });
  s.At(10, [&] { order.push_back(1); });
  s.At(20, [&] { order.push_back(2); });
  s.RunToQuiescence();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), 30u);
}

TEST(Scheduler, SimultaneousEventsRunInInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.At(5, [&, i] { order.push_back(i); });
  }
  s.RunToQuiescence();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, AfterSchedulesRelativeToNow) {
  Scheduler s;
  Time fired_at = 0;
  s.At(100, [&] { s.After(50, [&] { fired_at = s.Now(); }); });
  s.RunToQuiescence();
  EXPECT_EQ(fired_at, 150u);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  TimerId id = s.At(10, [&] { ran = true; });
  s.Cancel(id);
  s.RunToQuiescence();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelUnknownIdIsNoop) {
  Scheduler s;
  s.Cancel(12345);
  s.Cancel(kNoTimer);
  EXPECT_TRUE(s.Empty());
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  int count = 0;
  s.At(10, [&] { ++count; });
  s.At(20, [&] { ++count; });
  s.At(30, [&] { ++count; });
  s.RunUntil(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.Now(), 20u);
  s.RunUntil(100);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.Now(), 100u);  // advances to the deadline even if idle
}

TEST(Scheduler, PastTimeClampsToNow) {
  Scheduler s;
  s.At(50, [] {});
  s.RunToQuiescence();
  Time fired_at = 0;
  s.At(10, [&] { fired_at = s.Now(); });  // 10 < Now()=50
  s.RunToQuiescence();
  EXPECT_EQ(fired_at, 50u);
}

TEST(Scheduler, SelfReschedulingRespectsMaxEvents) {
  Scheduler s;
  std::function<void()> loop = [&] { s.After(1, loop); };
  s.After(1, loop);
  const std::uint64_t ran = s.RunToQuiescence(1000);
  EXPECT_EQ(ran, 1000u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = r.UniformInt(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng r(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng r(10);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialHasRoughlyRightMean) {
  Rng r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.Exponential(1000));
  EXPECT_NEAR(sum / n, 1000.0, 50.0);
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a(5);
  Rng child1 = a.Fork();
  Rng b(5);
  Rng child2 = b.Fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child1.Next(), child2.Next());
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng r(6);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  r.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Task, LazyUntilAwaited) {
  bool ran = false;
  auto make = [&]() -> Task<int> {
    ran = true;
    co_return 7;
  };
  Task<int> t = make();
  EXPECT_FALSE(ran);

  Scheduler sched;
  TaskRegistry reg(sched);
  int result = 0;
  reg.Spawn([](Task<int> inner, int* out) -> Task<void> {
    *out = co_await std::move(inner);
  }(std::move(t), &result));
  sched.RunToQuiescence();
  EXPECT_TRUE(ran);
  EXPECT_EQ(result, 7);
}

TEST(Task, ExceptionsPropagateThroughAwait) {
  Scheduler sched;
  TaskRegistry reg(sched);
  bool caught = false;
  auto thrower = []() -> Task<int> {
    throw std::runtime_error("boom");
    co_return 0;  // unreachable
  };
  reg.Spawn([](Task<int> inner, bool* flag) -> Task<void> {
    try {
      co_await std::move(inner);
    } catch (const std::runtime_error&) {
      *flag = true;
    }
  }(thrower(), &caught));
  sched.RunToQuiescence();
  EXPECT_TRUE(caught);
}

TEST(Task, SleepSuspendsForSimulatedTime) {
  Scheduler sched;
  TaskRegistry reg(sched);
  Time woke_at = 0;
  reg.Spawn([](Scheduler* s, Time* out) -> Task<void> {
    co_await Sleep(*s, 250);
    *out = s->Now();
  }(&sched, &woke_at));
  sched.RunToQuiescence();
  EXPECT_EQ(woke_at, 250u);
}

TEST(TaskRegistry, ReapsCompletedTasks) {
  Scheduler sched;
  TaskRegistry reg(sched);
  reg.Spawn([]() -> Task<void> { co_return; }());
  EXPECT_EQ(reg.live_count(), 1u);  // reap is deferred one event
  sched.RunToQuiescence();
  EXPECT_EQ(reg.live_count(), 0u);
}

TEST(TaskRegistry, DestroyAllKillsSleepers) {
  Scheduler sched;
  TaskRegistry reg(sched);
  bool finished = false;
  reg.Spawn([](Scheduler* s, bool* out) -> Task<void> {
    co_await Sleep(*s, 1000);
    *out = true;
  }(&sched, &finished));
  sched.RunUntil(10);
  EXPECT_EQ(reg.live_count(), 1u);
  reg.DestroyAll();  // crash semantics: suspended frame destroyed
  sched.RunToQuiescence();
  EXPECT_FALSE(finished);
  EXPECT_EQ(reg.live_count(), 0u);
}

TEST(TaskRegistry, NestedAwaitChainsComplete) {
  Scheduler sched;
  TaskRegistry reg(sched);
  int result = 0;
  // three-deep chain with sleeps at each level
  struct Helper {
    static Task<int> Leaf(Scheduler& s) {
      co_await Sleep(s, 10);
      co_return 1;
    }
    static Task<int> Mid(Scheduler& s) {
      co_await Sleep(s, 10);
      int v = co_await Leaf(s);
      co_return v + 1;
    }
  };
  reg.Spawn([](Scheduler* s, int* out) -> Task<void> {
    int v = co_await Helper::Mid(*s);
    *out = v + 1;
  }(&sched, &result));
  sched.RunToQuiescence();
  EXPECT_EQ(result, 3);
}

TEST(Time, FormatDuration) {
  EXPECT_EQ(FormatDuration(12), "12us");
  EXPECT_EQ(FormatDuration(12 * kMillisecond + 345), "12.345ms");
  EXPECT_EQ(FormatDuration(3 * kSecond + 250 * kMillisecond), "3.250s");
}

}  // namespace
}  // namespace vsr::sim
