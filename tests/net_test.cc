// Unit tests for the simulated network: delivery, loss, duplication,
// corruption (CRC drop), partitions, node lifecycle, stats.
#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/simulation.h"

namespace vsr::net {
namespace {

class Recorder : public FrameHandler {
 public:
  void OnFrame(const Frame& frame) override { frames.push_back(frame); }
  std::vector<Frame> frames;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : sim_(1) {}

  std::unique_ptr<Network> Make(NetworkOptions o) {
    auto n = std::make_unique<Network>(sim_, o);
    n->Register(1, &a_);
    n->Register(2, &b_);
    n->Register(3, &c_);
    return n;
  }

  sim::Simulation sim_;
  Recorder a_, b_, c_;
};

TEST_F(NetworkTest, DeliversWithinDelayBounds) {
  NetworkOptions o;
  o.delay_min = 100;
  o.delay_max = 200;
  auto net = Make(o);
  net->Send(1, 2, 7, {1, 2, 3});
  sim_.scheduler().RunUntil(99);
  EXPECT_TRUE(b_.frames.empty());
  sim_.scheduler().RunUntil(201);
  ASSERT_EQ(b_.frames.size(), 1u);
  EXPECT_EQ(b_.frames[0].from, 1u);
  EXPECT_EQ(b_.frames[0].type, 7u);
  EXPECT_EQ(b_.frames[0].payload, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST_F(NetworkTest, LossDropsRoughlyAtConfiguredRate) {
  NetworkOptions o;
  o.loss_probability = 0.3;
  auto net = Make(o);
  for (int i = 0; i < 2000; ++i) net->Send(1, 2, 0, {});
  sim_.scheduler().RunToQuiescence();
  EXPECT_NEAR(static_cast<double>(b_.frames.size()) / 2000.0, 0.7, 0.05);
  EXPECT_EQ(net->stats().dropped_loss + net->stats().frames_delivered, 2000u);
}

TEST_F(NetworkTest, DuplicationDeliversTwice) {
  NetworkOptions o;
  o.duplicate_probability = 1.0;
  auto net = Make(o);
  net->Send(1, 2, 0, {42});
  sim_.scheduler().RunToQuiescence();
  EXPECT_EQ(b_.frames.size(), 2u);
  EXPECT_EQ(net->stats().duplicates_delivered, 1u);
}

TEST_F(NetworkTest, CorruptionIsDroppedByChecksum) {
  NetworkOptions o;
  o.corrupt_probability = 1.0;
  auto net = Make(o);
  for (int i = 0; i < 50; ++i) net->Send(1, 2, 0, {1, 2, 3, 4});
  sim_.scheduler().RunToQuiescence();
  EXPECT_TRUE(b_.frames.empty());
  EXPECT_EQ(net->stats().dropped_corrupt, 50u);
}

TEST_F(NetworkTest, PartitionBlocksCrossGroupTraffic) {
  auto net = Make({});
  net->Partition({{1, 2}, {3}});
  net->Send(1, 2, 0, {});
  net->Send(1, 3, 0, {});
  sim_.scheduler().RunToQuiescence();
  EXPECT_EQ(b_.frames.size(), 1u);
  EXPECT_TRUE(c_.frames.empty());
  EXPECT_EQ(net->stats().dropped_partition, 1u);

  net->Heal();
  net->Send(1, 3, 0, {});
  sim_.scheduler().RunToQuiescence();
  EXPECT_EQ(c_.frames.size(), 1u);
}

TEST_F(NetworkTest, NodeAbsentFromPartitionIsIsolated) {
  auto net = Make({});
  net->Partition({{1, 2}});  // 3 unmentioned → isolated
  net->Send(1, 3, 0, {});
  net->Send(3, 1, 0, {});
  sim_.scheduler().RunToQuiescence();
  EXPECT_TRUE(c_.frames.empty());
  EXPECT_TRUE(a_.frames.empty());
}

TEST_F(NetworkTest, InFlightFramesLostWhenPartitionForms) {
  NetworkOptions o;
  o.delay_min = o.delay_max = 100;
  auto net = Make(o);
  net->Send(1, 2, 0, {});
  sim_.scheduler().RunUntil(50);
  net->Partition({{1}, {2, 3}});  // frame still in flight
  sim_.scheduler().RunToQuiescence();
  EXPECT_TRUE(b_.frames.empty());
}

TEST_F(NetworkTest, FrameInFlightAcrossHealDeliveredExactlyOnce) {
  // Partitions filter at DELIVERY time, not send time: a frame sent while
  // the partition stands but arriving after the heal goes through — the
  // inverse of InFlightFramesLostWhenPartitionForms.
  NetworkOptions o;
  o.delay_min = o.delay_max = 100;
  auto net = Make(o);
  net->Partition({{1}, {2, 3}});
  net->Send(1, 2, 0, {7});
  sim_.scheduler().RunUntil(50);
  net->Heal();  // frame still in flight
  sim_.scheduler().RunToQuiescence();
  ASSERT_EQ(b_.frames.size(), 1u);
  EXPECT_EQ(b_.frames[0].payload, (std::vector<std::uint8_t>{7}));
  EXPECT_EQ(net->stats().dropped_partition, 0u);
}

TEST_F(NetworkTest, RegisterDoesNotResurrectDownNode) {
  auto net = Make({});
  net->SetNodeUp(2, false);
  // Re-registering a handler (e.g. a cohort object being rebuilt) must not
  // silently mark the node up again: only SetNodeUp models the machine
  // rebooting.
  net->Register(2, &b_);
  net->Send(1, 2, 0, {});
  sim_.scheduler().RunToQuiescence();
  EXPECT_TRUE(b_.frames.empty());
  EXPECT_EQ(net->stats().dropped_node_down, 1u);
  net->SetNodeUp(2, true);
  net->Send(1, 2, 0, {});
  sim_.scheduler().RunToQuiescence();
  EXPECT_EQ(b_.frames.size(), 1u);
}

TEST_F(NetworkTest, DownNodeReceivesNothing) {
  auto net = Make({});
  net->SetNodeUp(2, false);
  net->Send(1, 2, 0, {});
  sim_.scheduler().RunToQuiescence();
  EXPECT_TRUE(b_.frames.empty());
  EXPECT_EQ(net->stats().dropped_node_down, 1u);
  net->SetNodeUp(2, true);
  net->Send(1, 2, 0, {});
  sim_.scheduler().RunToQuiescence();
  EXPECT_EQ(b_.frames.size(), 1u);
}

TEST_F(NetworkTest, CrashWhileInFlightDropsAtDelivery) {
  NetworkOptions o;
  o.delay_min = o.delay_max = 100;
  auto net = Make(o);
  net->Send(1, 2, 0, {});
  sim_.scheduler().RunUntil(50);
  net->SetNodeUp(2, false);
  sim_.scheduler().RunToQuiescence();
  EXPECT_TRUE(b_.frames.empty());
}

TEST_F(NetworkTest, LoopbackBypassesLossAndPartition) {
  NetworkOptions o;
  o.loss_probability = 1.0;
  auto net = Make(o);
  net->Partition({{2, 3}});  // 1 isolated
  net->Send(1, 1, 5, {9});
  sim_.scheduler().RunToQuiescence();
  ASSERT_EQ(a_.frames.size(), 1u);
  EXPECT_EQ(a_.frames[0].type, 5u);
}

TEST_F(NetworkTest, LinkDownIsBidirectionalAndReversible) {
  auto net = Make({});
  net->SetLinkDown(1, 2, true);
  EXPECT_FALSE(net->Reachable(1, 2));
  EXPECT_FALSE(net->Reachable(2, 1));
  EXPECT_TRUE(net->Reachable(1, 3));
  net->SetLinkDown(1, 2, false);
  EXPECT_TRUE(net->Reachable(1, 2));
}

TEST_F(NetworkTest, StatsCountByType) {
  auto net = Make({});
  net->Send(1, 2, 10, {});
  net->Send(1, 2, 10, {});
  net->Send(1, 2, 20, {});
  sim_.scheduler().RunToQuiescence();
  EXPECT_EQ(net->stats().sent_by_type.at(10), 2u);
  EXPECT_EQ(net->stats().sent_by_type.at(20), 1u);
  EXPECT_EQ(net->stats().frames_sent, 3u);
}

TEST_F(NetworkTest, JitterReordersDelivery) {
  // With a wide delay range, later sends can overtake earlier ones — the
  // out-of-order delivery the paper's network model allows (§1).
  NetworkOptions o;
  o.delay_min = 10;
  o.delay_max = 2000;
  auto net = Make(o);
  for (int i = 0; i < 200; ++i) {
    net->Send(1, 2, 0, {static_cast<std::uint8_t>(i)});
  }
  sim_.scheduler().RunToQuiescence();
  ASSERT_EQ(b_.frames.size(), 200u);
  bool reordered = false;
  for (std::size_t i = 1; i < b_.frames.size(); ++i) {
    if (b_.frames[i].payload[0] < b_.frames[i - 1].payload[0]) {
      reordered = true;
    }
  }
  EXPECT_TRUE(reordered);
}

TEST_F(NetworkTest, DeterministicAcrossRuns) {
  // Two identically-seeded worlds produce identical delivery schedules.
  auto run = [](std::uint64_t seed) {
    sim::Simulation s(seed);
    Recorder r1, r2;
    NetworkOptions o;
    o.loss_probability = 0.2;
    o.duplicate_probability = 0.2;
    Network n(s, o);
    n.Register(1, &r1);
    n.Register(2, &r2);
    for (int i = 0; i < 200; ++i) {
      n.Send(1, 2, static_cast<std::uint16_t>(i % 7), {static_cast<std::uint8_t>(i)});
    }
    s.scheduler().RunToQuiescence();
    std::vector<std::uint8_t> digest;
    for (const auto& f : r2.frames) {
      digest.push_back(f.payload.empty() ? 0 : f.payload[0]);
    }
    return digest;
  };
  EXPECT_EQ(run(77), run(77));
  EXPECT_NE(run(77), run(78));
}

}  // namespace
}  // namespace vsr::net
