// End-to-end integration tests of the happy path: group formation, remote
// calls, two-phase commit, replication to backups.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;
using test::Bytes;
using test::RegisterKvProcs;
using test::RunOneCall;
using test::Str;

TEST(Bootstrap, SingleGroupElectsPrimary) {
  Cluster cluster(ClusterOptions{.seed = 1});
  auto g = cluster.AddGroup("kv", 3);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  core::Cohort* primary = cluster.AnyPrimary(g);
  ASSERT_NE(primary, nullptr);
  // The view must hold a majority of the configuration.
  EXPECT_GE(primary->cur_view().Size(), vr::MajorityOf(3));
  // Exactly one active primary.
  int actives = 0;
  for (auto* c : cluster.Cohorts(g)) {
    if (c->IsActivePrimary()) ++actives;
  }
  EXPECT_EQ(actives, 1);
}

TEST(Bootstrap, ManyGroupSizes) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 7u}) {
    Cluster cluster(ClusterOptions{.seed = 7 + n});
    auto g = cluster.AddGroup("kv", n);
    cluster.Start();
    ASSERT_TRUE(cluster.RunUntilStable()) << "n=" << n;
    EXPECT_NE(cluster.AnyPrimary(g), nullptr) << "n=" << n;
  }
}

TEST(Commit, SingleCallTransactionCommits) {
  Cluster cluster(ClusterOptions{.seed = 2});
  auto server = cluster.AddGroup("kv", 3);
  auto client_g = cluster.AddGroup("client", 3);
  RegisterKvProcs(cluster, server);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  auto outcome = RunOneCall(cluster, client_g, server, "put", "x=42");
  EXPECT_EQ(outcome, vr::TxnOutcome::kCommitted);

  cluster.RunFor(500 * sim::kMillisecond);  // let phase two + buffer settle
  // Committed value installed at the primary...
  EXPECT_EQ(test::CommittedValue(cluster, server, "x"), "42");
  // ...and replicated to every active backup.
  for (auto* c : cluster.Cohorts(server)) {
    if (c->status() != core::Status::kActive) continue;
    EXPECT_EQ(c->objects().ReadCommitted("x").value_or(""), "42")
        << "cohort " << c->mid();
  }
}

TEST(Commit, MultiGroupTransactionCommitsAtomically) {
  Cluster cluster(ClusterOptions{.seed = 3});
  auto a = cluster.AddGroup("a", 3);
  auto b = cluster.AddGroup("b", 3);
  auto client_g = cluster.AddGroup("client", 3);
  RegisterKvProcs(cluster, a);
  RegisterKvProcs(cluster, b);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  core::Cohort* primary = cluster.AnyPrimary(client_g);
  ASSERT_NE(primary, nullptr);
  vr::TxnOutcome outcome = vr::TxnOutcome::kUnknown;
  bool done = false;
  primary->SpawnTransaction(
      [a, b](core::TxnHandle& h) -> sim::Task<bool> {
        co_await h.Call(a, "put", std::string("src=100"));
        co_await h.Call(b, "put", std::string("dst=200"));
        co_return true;
      },
      [&](vr::TxnOutcome o) {
        outcome = o;
        done = true;
      });
  while (!done) cluster.RunFor(10 * sim::kMillisecond);
  EXPECT_EQ(outcome, vr::TxnOutcome::kCommitted);
  cluster.RunFor(500 * sim::kMillisecond);
  EXPECT_EQ(test::CommittedValue(cluster, a, "src"), "100");
  EXPECT_EQ(test::CommittedValue(cluster, b, "dst"), "200");
}

TEST(Commit, ReadModifyWriteSequence) {
  Cluster cluster(ClusterOptions{.seed = 4});
  auto server = cluster.AddGroup("kv", 3);
  auto client_g = cluster.AddGroup("client", 3);
  RegisterKvProcs(cluster, server);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  for (int i = 0; i < 10; ++i) {
    auto outcome = RunOneCall(cluster, client_g, server, "add", "ctr=1");
    ASSERT_EQ(outcome, vr::TxnOutcome::kCommitted) << "iteration " << i;
  }
  cluster.RunFor(500 * sim::kMillisecond);
  EXPECT_EQ(test::CommittedValue(cluster, server, "ctr"), "10");
}

TEST(Abort, BodyFalseAbortsAndDiscardsTentativeState) {
  Cluster cluster(ClusterOptions{.seed = 5});
  auto server = cluster.AddGroup("kv", 3);
  auto client_g = cluster.AddGroup("client", 3);
  RegisterKvProcs(cluster, server);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  core::Cohort* primary = cluster.AnyPrimary(client_g);
  ASSERT_NE(primary, nullptr);
  vr::TxnOutcome outcome = vr::TxnOutcome::kUnknown;
  bool done = false;
  primary->SpawnTransaction(
      [server](core::TxnHandle& h) -> sim::Task<bool> {
        co_await h.Call(server, "put", std::string("y=13"));
        co_return false;  // application decides to abort
      },
      [&](vr::TxnOutcome o) {
        outcome = o;
        done = true;
      });
  while (!done) cluster.RunFor(10 * sim::kMillisecond);
  EXPECT_EQ(outcome, vr::TxnOutcome::kAborted);
  cluster.RunFor(500 * sim::kMillisecond);
  EXPECT_EQ(test::CommittedValue(cluster, server, "y"), "");
  // Locks must be gone so later transactions proceed.
  auto again = RunOneCall(cluster, client_g, server, "put", "y=7");
  EXPECT_EQ(again, vr::TxnOutcome::kCommitted);
  cluster.RunFor(300 * sim::kMillisecond);
  EXPECT_EQ(test::CommittedValue(cluster, server, "y"), "7");
}

TEST(Commit, ReadOnlyTransaction) {
  Cluster cluster(ClusterOptions{.seed = 6});
  auto server = cluster.AddGroup("kv", 3);
  auto client_g = cluster.AddGroup("client", 3);
  RegisterKvProcs(cluster, server);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  ASSERT_EQ(RunOneCall(cluster, client_g, server, "put", "z=9"),
            vr::TxnOutcome::kCommitted);

  core::Cohort* primary = cluster.AnyPrimary(client_g);
  ASSERT_NE(primary, nullptr);
  std::string read_value;
  vr::TxnOutcome outcome = vr::TxnOutcome::kUnknown;
  bool done = false;
  primary->SpawnTransaction(
      [server, &read_value](core::TxnHandle& h) -> sim::Task<bool> {
        auto v = co_await h.Call(server, "get", std::string("z"));
        read_value = Str(v);
        co_return true;
      },
      [&](vr::TxnOutcome o) {
        outcome = o;
        done = true;
      });
  while (!done) cluster.RunFor(10 * sim::kMillisecond);
  EXPECT_EQ(outcome, vr::TxnOutcome::kCommitted);
  EXPECT_EQ(read_value, "9");
}

TEST(Commit, NestedServerCall) {
  Cluster cluster(ClusterOptions{.seed = 7});
  auto front = cluster.AddGroup("front", 3);
  auto back = cluster.AddGroup("back", 3);
  auto client_g = cluster.AddGroup("client", 3);
  RegisterKvProcs(cluster, back);
  // front.relay forwards "k=v" to back.put and records an audit entry.
  cluster.RegisterProc(
      front, "relay",
      [back](core::ProcContext& ctx) -> sim::Task<std::vector<std::uint8_t>> {
        auto r = co_await ctx.Call(back, "put", Bytes(ctx.ArgsAsString()));
        co_await ctx.Write("audit", ctx.ArgsAsString());
        co_return r;
      });
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  auto outcome = RunOneCall(cluster, client_g, front, "relay", "k=5");
  EXPECT_EQ(outcome, vr::TxnOutcome::kCommitted);
  cluster.RunFor(500 * sim::kMillisecond);
  // Both the nested write at `back` and the local write at `front` landed.
  EXPECT_EQ(test::CommittedValue(cluster, back, "k"), "5");
  EXPECT_EQ(test::CommittedValue(cluster, front, "audit"), "k=5");
}

}  // namespace
}  // namespace vsr
