// Unit tests for the simulated stable storage.
#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "storage/stable_store.h"

namespace vsr::storage {
namespace {

TEST(StableStore, ForceCompletesAfterConfiguredLatency) {
  sim::Simulation simulation(1);
  StableStoreOptions opts;
  opts.force_latency = 5 * sim::kMillisecond;
  StableStore store(simulation, opts);

  bool durable = false;
  store.ForceWrite("k", {1, 2, 3}, [&] { durable = true; });
  EXPECT_EQ(store.pending_writes(), 1);
  simulation.scheduler().RunUntil(4 * sim::kMillisecond);
  EXPECT_FALSE(durable);
  // Not yet visible either: durability precedes visibility.
  EXPECT_FALSE(store.Read("k").has_value());
  simulation.scheduler().RunUntil(6 * sim::kMillisecond);
  EXPECT_TRUE(durable);
  EXPECT_EQ(store.pending_writes(), 0);
  ASSERT_TRUE(store.Read("k").has_value());
  EXPECT_EQ(*store.Read("k"), (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(StableStore, NullCallbackIsAllowed) {
  sim::Simulation simulation(2);
  StableStore store(simulation, {});
  store.ForceWrite("k", {9}, nullptr);
  simulation.scheduler().RunToQuiescence();
  EXPECT_TRUE(store.Contains("k"));
}

TEST(StableStore, OverwriteKeepsLatestValue) {
  sim::Simulation simulation(3);
  StableStore store(simulation, {});
  store.ForceWrite("k", {1}, nullptr);
  store.ForceWrite("k", {2}, nullptr);
  simulation.scheduler().RunToQuiescence();
  EXPECT_EQ(*store.Read("k"), (std::vector<std::uint8_t>{2}));
}

TEST(StableStore, StatsCountForcesAndBytes) {
  sim::Simulation simulation(4);
  StableStore store(simulation, {});
  store.ForceWrite("a", std::vector<std::uint8_t>(10), nullptr);
  store.ForceWrite("b", std::vector<std::uint8_t>(20), nullptr);
  simulation.scheduler().RunToQuiescence();
  EXPECT_EQ(store.stats().forced_writes, 2u);
  EXPECT_EQ(store.stats().bytes_written, 30u);
}

TEST(StableStore, InFlightWriteIsLostIfSimulationStops) {
  // Models a crash between issuing a force and its completion: the value
  // must not be visible (the cohort's start-view path relies on this —
  // viewid durability gates entering the view).
  sim::Simulation simulation(5);
  StableStoreOptions opts;
  opts.force_latency = 10 * sim::kMillisecond;
  StableStore store(simulation, opts);
  store.ForceWrite("k", {7}, nullptr);
  simulation.scheduler().RunUntil(1 * sim::kMillisecond);
  EXPECT_FALSE(store.Contains("k"));  // "crash" here -> nothing persisted
}

TEST(StableStore, ZeroLatencyStillAsynchronous) {
  // Even with zero latency the callback must not run re-entrantly inside
  // ForceWrite (handlers must never nest).
  sim::Simulation simulation(6);
  StableStoreOptions opts;
  opts.force_latency = 0;
  StableStore store(simulation, opts);
  bool durable = false;
  store.ForceWrite("k", {}, [&] { durable = true; });
  EXPECT_FALSE(durable);
  simulation.scheduler().RunToQuiescence();
  EXPECT_TRUE(durable);
}

TEST(StableStore, DropPendingCancelsExactlyThatOwnersWrites) {
  sim::Simulation simulation(7);
  StableStoreOptions opts;
  opts.force_latency = 10 * sim::kMillisecond;
  StableStore store(simulation, opts);

  bool mine = false, theirs = false, unowned = false;
  store.ForceWrite("mine", {1}, [&] { mine = true; }, /*owner=*/1);
  store.ForceWrite("theirs", {2}, [&] { theirs = true; }, /*owner=*/2);
  store.ForceWrite("unowned", {3}, [&] { unowned = true; });
  store.DropPending(1);

  simulation.scheduler().RunToQuiescence();
  // The crashed owner's write vanished — value absent, callback never ran.
  EXPECT_FALSE(mine);
  EXPECT_FALSE(store.Contains("mine"));
  // Everyone else's writes landed normally.
  EXPECT_TRUE(theirs);
  EXPECT_TRUE(unowned);
  EXPECT_TRUE(store.Contains("theirs"));
  EXPECT_TRUE(store.Contains("unowned"));
  EXPECT_EQ(store.stats().writes_dropped, 1u);
}

TEST(StableStore, DropPendingOwnerZeroIsNoop) {
  // Owner 0 means "unowned"; DropPending(0) must not cancel anything.
  sim::Simulation simulation(8);
  StableStore store(simulation, {});
  store.ForceWrite("a", {1}, nullptr);
  store.DropPending(0);
  simulation.scheduler().RunToQuiescence();
  EXPECT_TRUE(store.Contains("a"));
  EXPECT_EQ(store.stats().writes_dropped, 0u);
}

TEST(StableStore, TornModeTruncatesOldestPendingWrite) {
  // The write physically mid-flight at crash time is the OLDEST pending one
  // (completions are FIFO); torn mode persists its first half so recovery
  // code sees a torn sector instead of a clean absence.
  sim::Simulation simulation(9);
  StableStoreOptions opts;
  opts.force_latency = 10 * sim::kMillisecond;
  opts.torn_writes = true;
  StableStore store(simulation, opts);

  store.ForceWrite("first", {1, 2, 3, 4, 5, 6}, nullptr, /*owner=*/1);
  store.ForceWrite("second", {7, 8, 9}, nullptr, /*owner=*/1);
  store.DropPending(1);
  simulation.scheduler().RunToQuiescence();

  ASSERT_TRUE(store.Contains("first"));
  EXPECT_EQ(*store.Read("first"), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_FALSE(store.Contains("second"));  // later writes vanish entirely
  EXPECT_EQ(store.stats().torn_writes, 1u);
  EXPECT_EQ(store.stats().writes_dropped, 2u);
}

TEST(StableStore, EraseByPrefixRemovesOnlyMatchingKeys) {
  sim::Simulation simulation(10);
  StableStore store(simulation, {});
  store.ForceWrite("elog/3/head", {1}, nullptr);
  store.ForceWrite("elog/3/1", {2}, nullptr);
  store.ForceWrite("elog/31/head", {3}, nullptr);  // different prefix
  store.ForceWrite("viewid/3", {4}, nullptr);
  simulation.scheduler().RunToQuiescence();

  EXPECT_EQ(store.EraseByPrefix("elog/3/"), 2u);
  EXPECT_FALSE(store.Contains("elog/3/head"));
  EXPECT_FALSE(store.Contains("elog/3/1"));
  EXPECT_TRUE(store.Contains("elog/31/head"));
  EXPECT_TRUE(store.Contains("viewid/3"));
}

TEST(StableStore, PokeBypassesLatency) {
  sim::Simulation simulation(11);
  StableStore store(simulation, {});
  store.Poke("k", {0xaa});
  EXPECT_TRUE(store.Contains("k"));  // immediate: models media corruption
  EXPECT_EQ(*store.Read("k"), (std::vector<std::uint8_t>{0xaa}));
}

}  // namespace
}  // namespace vsr::storage
