// Unit tests for the simulated stable storage.
#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "storage/stable_store.h"

namespace vsr::storage {
namespace {

TEST(StableStore, ForceCompletesAfterConfiguredLatency) {
  sim::Simulation simulation(1);
  StableStoreOptions opts;
  opts.force_latency = 5 * sim::kMillisecond;
  StableStore store(simulation, opts);

  bool durable = false;
  store.ForceWrite("k", {1, 2, 3}, [&] { durable = true; });
  EXPECT_EQ(store.pending_writes(), 1);
  simulation.scheduler().RunUntil(4 * sim::kMillisecond);
  EXPECT_FALSE(durable);
  // Not yet visible either: durability precedes visibility.
  EXPECT_FALSE(store.Read("k").has_value());
  simulation.scheduler().RunUntil(6 * sim::kMillisecond);
  EXPECT_TRUE(durable);
  EXPECT_EQ(store.pending_writes(), 0);
  ASSERT_TRUE(store.Read("k").has_value());
  EXPECT_EQ(*store.Read("k"), (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(StableStore, NullCallbackIsAllowed) {
  sim::Simulation simulation(2);
  StableStore store(simulation, {});
  store.ForceWrite("k", {9}, nullptr);
  simulation.scheduler().RunToQuiescence();
  EXPECT_TRUE(store.Contains("k"));
}

TEST(StableStore, OverwriteKeepsLatestValue) {
  sim::Simulation simulation(3);
  StableStore store(simulation, {});
  store.ForceWrite("k", {1}, nullptr);
  store.ForceWrite("k", {2}, nullptr);
  simulation.scheduler().RunToQuiescence();
  EXPECT_EQ(*store.Read("k"), (std::vector<std::uint8_t>{2}));
}

TEST(StableStore, StatsCountForcesAndBytes) {
  sim::Simulation simulation(4);
  StableStore store(simulation, {});
  store.ForceWrite("a", std::vector<std::uint8_t>(10), nullptr);
  store.ForceWrite("b", std::vector<std::uint8_t>(20), nullptr);
  simulation.scheduler().RunToQuiescence();
  EXPECT_EQ(store.stats().forced_writes, 2u);
  EXPECT_EQ(store.stats().bytes_written, 30u);
}

TEST(StableStore, InFlightWriteIsLostIfSimulationStops) {
  // Models a crash between issuing a force and its completion: the value
  // must not be visible (the cohort's start-view path relies on this —
  // viewid durability gates entering the view).
  sim::Simulation simulation(5);
  StableStoreOptions opts;
  opts.force_latency = 10 * sim::kMillisecond;
  StableStore store(simulation, opts);
  store.ForceWrite("k", {7}, nullptr);
  simulation.scheduler().RunUntil(1 * sim::kMillisecond);
  EXPECT_FALSE(store.Contains("k"));  // "crash" here -> nothing persisted
}

TEST(StableStore, ZeroLatencyStillAsynchronous) {
  // Even with zero latency the callback must not run re-entrantly inside
  // ForceWrite (handlers must never nest).
  sim::Simulation simulation(6);
  StableStoreOptions opts;
  opts.force_latency = 0;
  StableStore store(simulation, opts);
  bool durable = false;
  store.ForceWrite("k", {}, [&] { durable = true; });
  EXPECT_FALSE(durable);
  simulation.scheduler().RunToQuiescence();
  EXPECT_TRUE(durable);
}

}  // namespace
}  // namespace vsr::storage
