// Tests for the client-harness layer: Cluster, Directory, debug dumps, and
// the Tracer capture machinery.
#include <gtest/gtest.h>

#include "client/debug.h"
#include "tests/test_util.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;

TEST(Directory, LookupAndRegistration) {
  core::Directory d;
  EXPECT_EQ(d.Lookup(1), nullptr);
  d.RegisterGroup(1, {10, 11, 12});
  ASSERT_NE(d.Lookup(1), nullptr);
  EXPECT_EQ(*d.Lookup(1), (std::vector<vr::Mid>{10, 11, 12}));
  EXPECT_EQ(d.group_count(), 1u);
}

TEST(Cluster, GroupNamesResolve) {
  Cluster cluster(ClusterOptions{.seed = 201});
  auto g = cluster.AddGroup("alpha", 3);
  EXPECT_EQ(cluster.GroupByName("alpha"), g);
  EXPECT_EQ(cluster.GroupName(g), "alpha");
  EXPECT_THROW(cluster.GroupByName("nope"), std::out_of_range);
}

TEST(Cluster, MidsAreUniqueAcrossGroupsAndClients) {
  Cluster cluster(ClusterOptions{.seed = 202});
  auto a = cluster.AddGroup("a", 3);
  auto b = cluster.AddGroup("b", 5);
  std::set<vr::Mid> mids;
  for (auto* c : cluster.Cohorts(a)) mids.insert(c->mid());
  for (auto* c : cluster.Cohorts(b)) mids.insert(c->mid());
  mids.insert(cluster.AllocateMid());
  EXPECT_EQ(mids.size(), 9u);
}

TEST(Cluster, RunUntilStableFailsWhenNoMajorityPossible) {
  Cluster cluster(ClusterOptions{.seed = 203});
  auto g = cluster.AddGroup("g", 3);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  cluster.Crash(g, 0);
  cluster.Crash(g, 1);
  EXPECT_FALSE(cluster.RunUntilStable(3 * sim::kSecond));
}

TEST(Cluster, PerGroupOptionOverride) {
  Cluster cluster(ClusterOptions{.seed = 204});
  core::CohortOptions special;
  special.nested_call_retry = true;
  auto g1 = cluster.AddGroup("default", 3);
  auto g2 = cluster.AddGroup("special", 3, &special);
  EXPECT_FALSE(cluster.CohortAt(g1, 0).options().nested_call_retry);
  EXPECT_TRUE(cluster.CohortAt(g2, 0).options().nested_call_retry);
}

TEST(Cluster, DeterministicAcrossIdenticalRuns) {
  auto digest = [](std::uint64_t seed) {
    Cluster cluster(ClusterOptions{.seed = seed});
    auto g = cluster.AddGroup("kv", 3);
    auto client_g = cluster.AddGroup("c", 3);
    test::RegisterKvProcs(cluster, g);
    // FNV-1a over every delivered frame's (time, endpoints, type, size):
    // sensitive to the exact schedule, not just aggregate counters (windowed
    // replication makes frame counts nearly seed-independent in calm runs).
    std::uint64_t schedule_hash = 14695981039346656037ull;
    cluster.network().set_observer([&](const net::Frame& f) {
      auto mix = [&](std::uint64_t v) {
        schedule_hash = (schedule_hash ^ v) * 1099511628211ull;
      };
      mix(cluster.sim().Now());
      mix(f.from);
      mix(f.to);
      mix(f.type);
      mix(f.payload.size());
    });
    cluster.Start();
    cluster.RunUntilStable();
    for (int i = 0; i < 5; ++i) {
      test::RunOneCall(cluster, client_g, g, "add", "x=1");
    }
    cluster.RunFor(1 * sim::kSecond);
    // Digest: final time + network counters + schedule hash + committed value.
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%llu/%llu/%llx/%s",
                  static_cast<unsigned long long>(cluster.sim().Now()),
                  static_cast<unsigned long long>(
                      cluster.network().stats().frames_sent),
                  static_cast<unsigned long long>(schedule_hash),
                  test::CommittedValue(cluster, g, "x").c_str());
    return std::string(buf);
  };
  EXPECT_EQ(digest(42), digest(42));
  EXPECT_NE(digest(42), digest(43));
}

TEST(Debug, DumpsAreInformative) {
  Cluster cluster(ClusterOptions{.seed = 205});
  auto g = cluster.AddGroup("kv", 3);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  const std::string dump = client::GroupDebugString(cluster, g);
  EXPECT_NE(dump.find("group"), std::string::npos);
  EXPECT_NE(dump.find("*PRIMARY*"), std::string::npos);
  EXPECT_NE(dump.find("active"), std::string::npos);
  // One line per cohort plus the header.
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 4);
}

TEST(Tracer, CapturesProtocolEvents) {
  Cluster cluster(ClusterOptions{.seed = 206});
  cluster.AddGroup("kv", 3);
  std::vector<std::string> lines;
  cluster.sim().tracer().set_level(sim::TraceLevel::kDebug);
  cluster.sim().tracer().set_sink(
      [&](sim::Time, sim::TraceLevel, const std::string& tag,
          const std::string& line) { lines.push_back(tag + ": " + line); });
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  bool saw_manager = false, saw_formed = false, saw_active = false;
  for (const auto& l : lines) {
    if (l.find("becoming view manager") != std::string::npos) saw_manager = true;
    if (l.find("formed view") != std::string::npos) saw_formed = true;
    if (l.find("active in view") != std::string::npos) saw_active = true;
  }
  EXPECT_TRUE(saw_manager);
  EXPECT_TRUE(saw_formed);
  EXPECT_TRUE(saw_active);
  // Disabling tracing stops the stream.
  cluster.sim().tracer().set_level(sim::TraceLevel::kOff);
  const std::size_t count = lines.size();
  cluster.RunFor(1 * sim::kSecond);
  EXPECT_EQ(lines.size(), count);
}

}  // namespace
}  // namespace vsr
