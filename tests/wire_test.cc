// Unit tests for serialization: writer/reader primitives, every protocol
// message round-trip, truncation/corruption robustness, CRC32.
#include <gtest/gtest.h>

#include "sim/rng.h"
#include "vr/events.h"
#include "vr/messages.h"
#include "wire/buffer.h"

namespace vsr {
namespace {

using wire::Crc32;
using wire::Reader;
using wire::Writer;

TEST(Buffer, PrimitivesRoundTrip) {
  Writer w;
  w.U8(0xab);
  w.U16(0x1234);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.I64(-42);
  w.Bool(true);
  w.Bool(false);
  w.F64(3.14159);
  w.String("hello");
  auto bytes = w.Take();

  Reader r(bytes);
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_TRUE(r.Bool());
  EXPECT_FALSE(r.Bool());
  EXPECT_DOUBLE_EQ(r.F64(), 3.14159);
  EXPECT_EQ(r.String(), "hello");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(Buffer, LittleEndianLayout) {
  Writer w;
  w.U32(0x01020304);
  auto bytes = w.Take();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0x04);
  EXPECT_EQ(bytes[3], 0x01);
}

TEST(Buffer, TruncatedReadSetsStickyFailure) {
  Writer w;
  w.U32(7);
  auto bytes = w.Take();
  Reader r(bytes);
  r.U64();  // needs 8 bytes, only 4 available
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U32(), 0u);  // still safe to call; returns zero
  EXPECT_FALSE(r.ok());
}

TEST(Buffer, CorruptLengthPrefixDoesNotOverallocate) {
  Writer w;
  w.U32(0xffffffff);  // insane vector length
  auto bytes = w.Take();
  Reader r(bytes);
  auto v = r.Vector<std::uint64_t>([&] { return r.U64(); });
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(v.empty());
}

TEST(Buffer, EmptyVectorAndBytes) {
  Writer w;
  w.Vector(std::vector<int>{}, [&](int) {});
  w.Bytes({});
  auto bytes = w.Take();
  Reader r(bytes);
  auto v = r.Vector<int>([&] { return static_cast<int>(r.U32()); });
  auto b = r.Bytes();
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(b.empty());
}

TEST(Crc, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (classic check value).
  const std::string s = "123456789";
  std::vector<std::uint8_t> data(s.begin(), s.end());
  EXPECT_EQ(Crc32(data), 0xCBF43926u);
}

TEST(Crc, DetectsSingleBitFlips) {
  sim::Rng rng(3);
  std::vector<std::uint8_t> data(64);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());
  const std::uint32_t orig = Crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 1;
    EXPECT_NE(Crc32(data), orig) << "flip at byte " << i;
    data[i] ^= 1;
  }
}

// ---------------------------------------------------------------------------
// Protocol message round-trips
// ---------------------------------------------------------------------------

vr::Pset SamplePset() {
  return {vr::PsetEntry{7, vr::Viewstamp{{3, 2}, 14}, 1},
          vr::PsetEntry{9, vr::Viewstamp{{5, 1}, 2}, 0}};
}

vr::History SampleHistory() {
  vr::History h;
  h.OpenView({1, 3});
  h.Advance(10);
  h.OpenView({2, 1});
  h.Advance(4);
  return h;
}

template <typename M>
M RoundTrip(const M& m) {
  auto bytes = vr::EncodeMsg(m);
  wire::Reader r(bytes);
  M out = M::Decode(r);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
  return out;
}

TEST(Messages, CallRoundTrip) {
  vr::CallMsg m;
  m.group = 42;
  m.viewid = {7, 3};
  m.call_id = 99;
  m.call_seq = (5ull << 32) | 17;
  m.reply_to = 11;
  m.sub_aid = {vr::Aid{1, {2, 3}, 4}, 2};
  m.proc = "transfer";
  m.args = {1, 2, 3, 4};
  auto out = RoundTrip(m);
  EXPECT_EQ(out.group, m.group);
  EXPECT_EQ(out.viewid, m.viewid);
  EXPECT_EQ(out.call_id, m.call_id);
  EXPECT_EQ(out.call_seq, m.call_seq);
  EXPECT_EQ(out.sub_aid, m.sub_aid);
  EXPECT_EQ(out.proc, m.proc);
  EXPECT_EQ(out.args, m.args);
}

TEST(Messages, ReplyRoundTrip) {
  vr::ReplyMsg m;
  m.call_id = 5;
  m.status = vr::ReplyStatus::kOk;
  m.result = {9, 8, 7};
  m.pset = SamplePset();
  m.view_known = true;
  m.new_viewid = {4, 2};
  m.new_view = vr::View{1, {2, 3}};
  auto out = RoundTrip(m);
  EXPECT_EQ(out.pset, m.pset);
  EXPECT_EQ(out.new_view, m.new_view);
  EXPECT_EQ(out.result, m.result);
}

TEST(Messages, PrepareAndReplyRoundTrip) {
  vr::PrepareMsg p;
  p.group = 3;
  p.aid = {1, {2, 2}, 9};
  p.pset = SamplePset();
  p.reply_to = 4;
  auto out = RoundTrip(p);
  EXPECT_EQ(out.aid, p.aid);
  EXPECT_EQ(out.pset, p.pset);

  vr::PrepareReplyMsg r;
  r.aid = p.aid;
  r.from_group = 3;
  r.status = vr::PrepareStatus::kWrongPrimary;
  r.read_only = true;
  r.view_known = true;
  r.new_viewid = {8, 1};
  r.new_view = vr::View{2, {1}};
  auto rout = RoundTrip(r);
  EXPECT_EQ(rout.status, r.status);
  EXPECT_TRUE(rout.read_only);
  EXPECT_EQ(rout.new_view, r.new_view);
}

TEST(Messages, ViewChangeMessagesRoundTrip) {
  vr::InviteMsg inv;
  inv.group = 1;
  inv.new_viewid = {12, 5};
  inv.from = 5;
  EXPECT_EQ(RoundTrip(inv).new_viewid, inv.new_viewid);

  vr::AcceptMsg acc;
  acc.group = 1;
  acc.invite_viewid = {12, 5};
  acc.from = 2;
  acc.crashed = false;
  acc.last_vs = {{11, 2}, 77};
  acc.was_primary = true;
  acc.crash_viewid = {9, 9};
  auto aout = RoundTrip(acc);
  EXPECT_EQ(aout.last_vs, acc.last_vs);
  EXPECT_TRUE(aout.was_primary);

  vr::InitViewMsg init;
  init.group = 1;
  init.viewid = {12, 5};
  init.view = vr::View{2, {5, 7}};
  init.from = 5;
  EXPECT_EQ(RoundTrip(init).view, init.view);
}

TEST(Messages, BufferBatchWithEventsRoundTrip) {
  vr::BufferBatchMsg b;
  b.group = 6;
  b.viewid = {3, 1};
  b.from = 1;
  vr::EventRecord completed = vr::EventRecord::CompletedCall(
      {vr::Aid{6, {3, 1}, 2}, 0},
      {vr::ObjectEffect{"x", vr::LockMode::kWrite, "42"},
       vr::ObjectEffect{"y", vr::LockMode::kRead, std::nullopt}});
  completed.ts = 2;
  vr::EventRecord nv = vr::EventRecord::NewView(vr::View{1, {2, 3}},
                                                SampleHistory(), {1, 2, 3});
  nv.ts = 1;
  b.events = {nv, completed};
  auto out = RoundTrip(b);
  ASSERT_EQ(out.events.size(), 2u);
  EXPECT_EQ(out.events[0].type, vr::EventType::kNewView);
  EXPECT_EQ(out.events[0].view, nv.view);
  EXPECT_EQ(out.events[0].gstate, nv.gstate);
  EXPECT_EQ(out.events[1].effects, completed.effects);
  EXPECT_EQ(out.events[1].ts, 2u);
}

TEST(Messages, BufferAckGapRequestRoundTrip) {
  vr::BufferAckMsg a;
  a.group = 6;
  a.viewid = {3, 1};
  a.from = 2;
  a.ts = 41;
  a.gap = true;
  a.gap_hi = 44;
  auto out = RoundTrip(a);
  EXPECT_EQ(out.ts, 41u);
  EXPECT_TRUE(out.gap);
  EXPECT_EQ(out.gap_hi, 44u);

  a.gap = false;
  a.gap_hi = 0;
  out = RoundTrip(a);
  EXPECT_FALSE(out.gap);
}

TEST(Messages, BufferAckRejectsEmptyGapRange) {
  // A gap request naming a hole at or below the acked prefix is nonsense and
  // must be flagged by the decoder, like any other corrupt field.
  vr::BufferAckMsg a;
  a.group = 6;
  a.viewid = {3, 1};
  a.from = 2;
  a.ts = 41;
  a.gap = true;
  a.gap_hi = 41;  // (ts, gap_hi] is empty
  Writer w;
  a.Encode(w);
  auto bytes = w.Take();
  Reader r(bytes);
  vr::BufferAckMsg::Decode(r);
  EXPECT_FALSE(r.ok());
}

TEST(Messages, QueryAndOutcomeRoundTrip) {
  vr::QueryMsg q;
  q.aid = {1, {2, 3}, 4};
  q.reply_to = 9;
  q.reply_group = 2;
  EXPECT_EQ(RoundTrip(q).aid, q.aid);

  vr::QueryReplyMsg qr;
  qr.aid = q.aid;
  qr.outcome = vr::TxnOutcome::kCommitted;
  EXPECT_EQ(RoundTrip(qr).outcome, vr::TxnOutcome::kCommitted);
}

TEST(Messages, CoordinatorServerMessagesRoundTrip) {
  vr::BeginTxnMsg b;
  b.group = 2;
  b.viewid = {1, 1};
  b.req_id = 77;
  b.reply_to = 30;
  EXPECT_EQ(RoundTrip(b).req_id, 77u);

  vr::CommitReqMsg c;
  c.group = 2;
  c.viewid = {1, 1};
  c.req_id = 78;
  c.aid = {2, {1, 1}, 5};
  c.pset = SamplePset();
  c.reply_to = 30;
  auto cout_ = RoundTrip(c);
  EXPECT_EQ(cout_.pset, c.pset);
  EXPECT_EQ(cout_.aid, c.aid);
}

TEST(Messages, DecodeRejectsBadEnumTags) {
  vr::ReplyMsg m;
  m.status = vr::ReplyStatus::kOk;
  auto bytes = vr::EncodeMsg(m);
  bytes[8] = 0x77;  // status byte follows the u64 call_id
  wire::Reader r(bytes);
  (void)vr::ReplyMsg::Decode(r);
  EXPECT_FALSE(r.ok());
}

// Fuzz: decoding random bytes must never crash and must flag failure for
// truncated inputs.
TEST(Messages, FuzzDecodeIsMemorySafe) {
  sim::Rng rng(99);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> junk(rng.UniformInt(0, 64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.Next());
    wire::Reader r(junk);
    switch (iter % 6) {
      case 0:
        (void)vr::CallMsg::Decode(r);
        break;
      case 1:
        (void)vr::ReplyMsg::Decode(r);
        break;
      case 2:
        (void)vr::BufferBatchMsg::Decode(r);
        break;
      case 3:
        (void)vr::EventRecord::Decode(r);
        break;
      case 4:
        (void)vr::AcceptMsg::Decode(r);
        break;
      case 5:
        (void)vr::PrepareMsg::Decode(r);
        break;
    }
  }
  SUCCEED();
}

// Truncation fuzz: every strict prefix of a valid message must decode with
// ok() == false (never crash, never silently succeed with short reads).
TEST(Messages, EveryTruncationIsDetected) {
  vr::BufferBatchMsg b;
  b.group = 6;
  b.viewid = {3, 1};
  b.from = 1;
  vr::EventRecord rec = vr::EventRecord::CompletedCall(
      {vr::Aid{6, {3, 1}, 2}, 1},
      {vr::ObjectEffect{"key", vr::LockMode::kWrite, "value"}});
  rec.ts = 5;
  b.events = {rec};
  auto bytes = vr::EncodeMsg(b);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<long>(len));
    wire::Reader r(prefix);
    (void)vr::BufferBatchMsg::Decode(r);
    EXPECT_FALSE(r.ok()) << "prefix length " << len;
  }
}

}  // namespace
}  // namespace vsr
