// Unit tests for serialization: writer/reader primitives, every protocol
// message round-trip, truncation/corruption robustness, CRC32 — and the
// compressed replication batch codec (DESIGN.md §8): varints, the hot-key
// dictionary, golden bytes pinning the documented layout, and the
// Decode(Encode(batch)) == batch invariant across randomized batches and
// dictionary states.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/rng.h"
#include "vr/batch_codec.h"
#include "vr/events.h"
#include "vr/messages.h"
#include "wire/buffer.h"
#include "wire/dict.h"

namespace vsr {
namespace {

using wire::Crc32;
using wire::Reader;
using wire::Writer;

TEST(Buffer, PrimitivesRoundTrip) {
  Writer w;
  w.U8(0xab);
  w.U16(0x1234);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.I64(-42);
  w.Bool(true);
  w.Bool(false);
  w.F64(3.14159);
  w.String("hello");
  auto bytes = w.Take();

  Reader r(bytes);
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_TRUE(r.Bool());
  EXPECT_FALSE(r.Bool());
  EXPECT_DOUBLE_EQ(r.F64(), 3.14159);
  EXPECT_EQ(r.String(), "hello");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(Buffer, LittleEndianLayout) {
  Writer w;
  w.U32(0x01020304);
  auto bytes = w.Take();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0x04);
  EXPECT_EQ(bytes[3], 0x01);
}

TEST(Buffer, TruncatedReadSetsStickyFailure) {
  Writer w;
  w.U32(7);
  auto bytes = w.Take();
  Reader r(bytes);
  r.U64();  // needs 8 bytes, only 4 available
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U32(), 0u);  // still safe to call; returns zero
  EXPECT_FALSE(r.ok());
}

TEST(Buffer, CorruptLengthPrefixDoesNotOverallocate) {
  Writer w;
  w.U32(0xffffffff);  // insane vector length
  auto bytes = w.Take();
  Reader r(bytes);
  auto v = r.Vector<std::uint64_t>([&] { return r.U64(); });
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(v.empty());
}

TEST(Buffer, EmptyVectorAndBytes) {
  Writer w;
  w.Vector(std::vector<int>{}, [&](int) {});
  w.Bytes({});
  auto bytes = w.Take();
  Reader r(bytes);
  auto v = r.Vector<int>([&] { return static_cast<int>(r.U32()); });
  auto b = r.Bytes();
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(b.empty());
}

TEST(Crc, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (classic check value).
  const std::string s = "123456789";
  std::vector<std::uint8_t> data(s.begin(), s.end());
  EXPECT_EQ(Crc32(data), 0xCBF43926u);
}

TEST(Crc, DetectsSingleBitFlips) {
  sim::Rng rng(3);
  std::vector<std::uint8_t> data(64);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());
  const std::uint32_t orig = Crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 1;
    EXPECT_NE(Crc32(data), orig) << "flip at byte " << i;
    data[i] ^= 1;
  }
}

// ---------------------------------------------------------------------------
// Protocol message round-trips
// ---------------------------------------------------------------------------

vr::Pset SamplePset() {
  return {vr::PsetEntry{7, vr::Viewstamp{{3, 2}, 14}, 1},
          vr::PsetEntry{9, vr::Viewstamp{{5, 1}, 2}, 0}};
}

vr::History SampleHistory() {
  vr::History h;
  h.OpenView({1, 3});
  h.Advance(10);
  h.OpenView({2, 1});
  h.Advance(4);
  return h;
}

template <typename M>
M RoundTrip(const M& m) {
  auto bytes = vr::EncodeMsg(m);
  wire::Reader r(bytes);
  M out = M::Decode(r);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
  return out;
}

TEST(Messages, CallRoundTrip) {
  vr::CallMsg m;
  m.group = 42;
  m.viewid = {7, 3};
  m.call_id = 99;
  m.call_seq = (5ull << 32) | 17;
  m.reply_to = 11;
  m.sub_aid = {vr::Aid{1, {2, 3}, 4}, 2};
  m.proc = "transfer";
  m.args = {1, 2, 3, 4};
  auto out = RoundTrip(m);
  EXPECT_EQ(out.group, m.group);
  EXPECT_EQ(out.viewid, m.viewid);
  EXPECT_EQ(out.call_id, m.call_id);
  EXPECT_EQ(out.call_seq, m.call_seq);
  EXPECT_EQ(out.sub_aid, m.sub_aid);
  EXPECT_EQ(out.proc, m.proc);
  EXPECT_EQ(out.args, m.args);
}

TEST(Messages, ReplyRoundTrip) {
  vr::ReplyMsg m;
  m.call_id = 5;
  m.status = vr::ReplyStatus::kOk;
  m.result = {9, 8, 7};
  m.pset = SamplePset();
  m.view_known = true;
  m.new_viewid = {4, 2};
  m.new_view = vr::View{1, {2, 3}};
  auto out = RoundTrip(m);
  EXPECT_EQ(out.pset, m.pset);
  EXPECT_EQ(out.new_view, m.new_view);
  EXPECT_EQ(out.result, m.result);
}

TEST(Messages, PrepareAndReplyRoundTrip) {
  vr::PrepareMsg p;
  p.group = 3;
  p.aid = {1, {2, 2}, 9};
  p.pset = SamplePset();
  p.reply_to = 4;
  auto out = RoundTrip(p);
  EXPECT_EQ(out.aid, p.aid);
  EXPECT_EQ(out.pset, p.pset);

  vr::PrepareReplyMsg r;
  r.aid = p.aid;
  r.from_group = 3;
  r.status = vr::PrepareStatus::kWrongPrimary;
  r.read_only = true;
  r.view_known = true;
  r.new_viewid = {8, 1};
  r.new_view = vr::View{2, {1}};
  auto rout = RoundTrip(r);
  EXPECT_EQ(rout.status, r.status);
  EXPECT_TRUE(rout.read_only);
  EXPECT_EQ(rout.new_view, r.new_view);

  // Fused-commit fields (DESIGN.md §13) survive the trip.
  r.prepared_vs = vr::Viewstamp{{5, 2}, 41};
  EXPECT_EQ(RoundTrip(r).prepared_vs, r.prepared_vs);

  vr::CommitMsg c;
  c.group = 3;
  c.aid = p.aid;
  c.reply_to = 4;
  c.decision_vs = vr::Viewstamp{{6, 1}, 17};
  c.fused = true;
  auto cout_ = RoundTrip(c);
  EXPECT_EQ(cout_.aid, c.aid);
  EXPECT_EQ(cout_.decision_vs, c.decision_vs);
  EXPECT_TRUE(cout_.fused);
}

// Pins the exact wire layout of the commit-decision message, including the
// fused-path fields appended by DESIGN.md §13. Anyone re-implementing the
// protocol must produce these bytes.
TEST(Messages, GoldenBytesCommitMsg) {
  vr::CommitMsg m;
  m.group = 3;
  m.aid = {1, {2, 2}, 9};
  m.reply_to = 4;
  m.decision_vs = vr::Viewstamp{{5, 1}, 7};
  m.fused = true;
  const std::vector<std::uint8_t> expected = {
      0x03, 0, 0, 0, 0, 0, 0, 0,  // group = 3 (u64 le)
      0x01, 0, 0, 0, 0, 0, 0, 0,  // aid.coordinator_group = 1
      0x02, 0, 0, 0, 0, 0, 0, 0,  // aid.view.counter = 2
      0x02, 0, 0, 0,              // aid.view.mid = 2
      0x09, 0, 0, 0, 0, 0, 0, 0,  // aid.seq = 9
      0x04, 0, 0, 0,              // reply_to = 4
      0x05, 0, 0, 0, 0, 0, 0, 0,  // decision_vs.view.counter = 5
      0x01, 0, 0, 0,              // decision_vs.view.mid = 1
      0x07, 0, 0, 0, 0, 0, 0, 0,  // decision_vs.ts = 7
      0x01,                       // fused = true
      0x00, 0, 0, 0,              // extras count = 0 (trailer)
  };
  EXPECT_EQ(vr::EncodeMsg(m), expected);
}

// Piggybacked sibling decisions ride as a wire trailer: appended, never
// reordered — a decoder reading the prefix sees the plain commit unchanged.
TEST(Messages, CommitMsgExtrasRoundTrip) {
  vr::CommitMsg m;
  m.group = 3;
  m.aid = {1, {2, 2}, 9};
  m.reply_to = 4;
  m.decision_vs = vr::Viewstamp{{5, 1}, 7};
  m.fused = true;
  vr::CommitExtra e1;
  e1.aid = {1, {2, 2}, 10};
  e1.decision_vs = vr::Viewstamp{{5, 1}, 8};
  e1.fused = false;
  vr::CommitExtra e2;
  e2.aid = {1, {2, 2}, 11};
  e2.decision_vs = vr::Viewstamp{{5, 1}, 9};
  e2.fused = true;
  m.extras = {e1, e2};
  auto out = RoundTrip(m);
  ASSERT_EQ(out.extras.size(), 2u);
  EXPECT_EQ(out.extras[0].aid, e1.aid);
  EXPECT_EQ(out.extras[0].decision_vs, e1.decision_vs);
  EXPECT_FALSE(out.extras[0].fused);
  EXPECT_EQ(out.extras[1].aid, e2.aid);
  EXPECT_EQ(out.extras[1].decision_vs, e2.decision_vs);
  EXPECT_TRUE(out.extras[1].fused);

  // Every strict prefix of the encoding must be rejected, extras included.
  Writer w;
  m.Encode(w);
  auto bytes = w.Take();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<long>(len));
    Reader r(prefix);
    (void)vr::CommitMsg::Decode(r);
    EXPECT_FALSE(r.ok()) << "prefix length " << len;
  }
}

// The prepared-ack's piggybacked record identity (prepared_vs) is pinned as
// the message's trailing bytes: appended, never reordered — older decoders
// reading a prefix see the pre-§13 layout unchanged.
TEST(Messages, GoldenBytesPrepareReplyTrailer) {
  vr::PrepareReplyMsg r;
  r.aid = {1, {2, 2}, 9};
  r.from_group = 3;
  r.status = vr::PrepareStatus::kPrepared;
  r.prepared_vs = vr::Viewstamp{{5, 1}, 7};
  const auto bytes = vr::EncodeMsg(r);
  const std::vector<std::uint8_t> trailer = {
      0x05, 0, 0, 0, 0, 0, 0, 0,  // prepared_vs.view.counter = 5
      0x01, 0, 0, 0,              // prepared_vs.view.mid = 1
      0x07, 0, 0, 0, 0, 0, 0, 0,  // prepared_vs.ts = 7
  };
  ASSERT_GE(bytes.size(), trailer.size());
  EXPECT_TRUE(std::equal(trailer.begin(), trailer.end(),
                         bytes.end() - trailer.size()));
}

TEST(Messages, ViewChangeMessagesRoundTrip) {
  vr::InviteMsg inv;
  inv.group = 1;
  inv.new_viewid = {12, 5};
  inv.from = 5;
  EXPECT_EQ(RoundTrip(inv).new_viewid, inv.new_viewid);

  vr::AcceptMsg acc;
  acc.group = 1;
  acc.invite_viewid = {12, 5};
  acc.from = 2;
  acc.crashed = false;
  acc.last_vs = {{11, 2}, 77};
  acc.was_primary = true;
  acc.crash_viewid = {9, 9};
  auto aout = RoundTrip(acc);
  EXPECT_EQ(aout.last_vs, acc.last_vs);
  EXPECT_TRUE(aout.was_primary);
  EXPECT_FALSE(aout.recovered);

  // Log-recovered acceptance (crashed-with-state, DESIGN.md §10).
  acc.crashed = true;
  acc.recovered = true;
  aout = RoundTrip(acc);
  EXPECT_TRUE(aout.crashed);
  EXPECT_TRUE(aout.recovered);
  EXPECT_EQ(aout.crash_viewid, acc.crash_viewid);

  // `recovered` without `crashed` is a contradiction the decoder must flag.
  acc.crashed = false;
  {
    Writer w;
    acc.Encode(w);
    auto bytes = w.Take();
    Reader r(bytes);
    vr::AcceptMsg::Decode(r);
    EXPECT_FALSE(r.ok());
  }
  acc.crashed = true;

  vr::InitViewMsg init;
  init.group = 1;
  init.viewid = {12, 5};
  init.view = vr::View{2, {5, 7}};
  init.from = 5;
  EXPECT_EQ(RoundTrip(init).view, init.view);
}

TEST(Messages, BufferBatchWithEventsRoundTrip) {
  vr::BufferBatchMsg b;
  b.group = 6;
  b.viewid = {3, 1};
  b.from = 1;
  vr::EventRecord completed = vr::EventRecord::CompletedCall(
      {vr::Aid{6, {3, 1}, 2}, 0},
      {vr::ObjectEffect{"x", vr::LockMode::kWrite, "42"},
       vr::ObjectEffect{"y", vr::LockMode::kRead, std::nullopt}});
  completed.ts = 2;
  vr::EventRecord nv = vr::EventRecord::NewView(vr::View{1, {2, 3}},
                                                SampleHistory(), {1, 2, 3});
  nv.ts = 1;
  b.events = {nv, completed};
  auto out = RoundTrip(b);
  ASSERT_EQ(out.events.size(), 2u);
  EXPECT_EQ(out.events[0].type, vr::EventType::kNewView);
  EXPECT_EQ(out.events[0].view, nv.view);
  EXPECT_EQ(out.events[0].gstate, nv.gstate);
  EXPECT_EQ(out.events[1].effects, completed.effects);
  EXPECT_EQ(out.events[1].ts, 2u);
}

TEST(Messages, BufferAckGapRequestRoundTrip) {
  vr::BufferAckMsg a;
  a.group = 6;
  a.viewid = {3, 1};
  a.from = 2;
  a.ts = 41;
  a.gap = true;
  a.gap_hi = 44;
  auto out = RoundTrip(a);
  EXPECT_EQ(out.ts, 41u);
  EXPECT_TRUE(out.gap);
  EXPECT_EQ(out.gap_hi, 44u);

  a.gap = false;
  a.gap_hi = 0;
  out = RoundTrip(a);
  EXPECT_FALSE(out.gap);
}

TEST(Messages, BufferAckRejectsEmptyGapRange) {
  // A gap request naming a hole at or below the acked prefix is nonsense and
  // must be flagged by the decoder, like any other corrupt field.
  vr::BufferAckMsg a;
  a.group = 6;
  a.viewid = {3, 1};
  a.from = 2;
  a.ts = 41;
  a.gap = true;
  a.gap_hi = 41;  // (ts, gap_hi] is empty
  Writer w;
  a.Encode(w);
  auto bytes = w.Take();
  Reader r(bytes);
  vr::BufferAckMsg::Decode(r);
  EXPECT_FALSE(r.ok());
}

TEST(Messages, BufferAckCodecResetRoundTrip) {
  vr::BufferAckMsg a;
  a.group = 6;
  a.viewid = {3, 1};
  a.from = 2;
  a.ts = 7;
  a.gap = true;
  a.gap_hi = 12;
  a.codec_reset = true;
  auto out = RoundTrip(a);
  EXPECT_TRUE(out.codec_reset);
  a.codec_reset = false;
  EXPECT_FALSE(RoundTrip(a).codec_reset);
}

TEST(Messages, BufferAckRejoinRoundTrip) {
  // Rejoin acks (DESIGN.md §10) ask the primary to rewind its cursors to
  // the replayed watermark, even backwards.
  vr::BufferAckMsg a;
  a.group = 6;
  a.viewid = {3, 1};
  a.from = 2;
  a.ts = 41;
  a.rejoin = true;
  a.rejoin_epoch = 9001;
  auto out = RoundTrip(a);
  EXPECT_TRUE(out.rejoin);
  EXPECT_EQ(out.ts, 41u);
  EXPECT_EQ(out.rejoin_epoch, 9001u);
  a.rejoin = false;
  a.rejoin_epoch = 0;
  EXPECT_FALSE(RoundTrip(a).rejoin);
}

TEST(Messages, SnapshotChunkAndAckRoundTrip) {
  vr::SnapshotChunkMsg m;
  m.group = 6;
  m.viewid = {3, 1};
  m.from = 1;
  m.vs = {{3, 1}, 41};
  m.total_size = 10;
  m.checksum = 0xdeadbeef;
  m.offset = 4;
  m.data = {9, 8, 7};
  auto out = RoundTrip(m);
  EXPECT_EQ(out.group, m.group);
  EXPECT_EQ(out.viewid, m.viewid);
  EXPECT_EQ(out.vs, m.vs);
  EXPECT_EQ(out.total_size, 10u);
  EXPECT_EQ(out.checksum, 0xdeadbeefu);
  EXPECT_EQ(out.offset, 4u);
  EXPECT_EQ(out.data, m.data);

  vr::SnapshotAckMsg a;
  a.group = 6;
  a.viewid = {3, 1};
  a.from = 2;
  a.vs = m.vs;
  a.offset = 10;
  auto aout = RoundTrip(a);
  EXPECT_EQ(aout.vs, m.vs);
  EXPECT_EQ(aout.offset, 10u);
  EXPECT_EQ(aout.from, 2u);
}

TEST(Messages, SnapshotChunkRejectsInconsistentFraming) {
  // A chunk whose own fields contradict each other (offset at/past the end,
  // empty data, or data overrunning total_size) is corrupt on its face and
  // must be flagged by the decoder before any sink logic sees it.
  auto encode = [](std::uint64_t total, std::uint64_t offset,
                   std::vector<std::uint8_t> data) {
    vr::SnapshotChunkMsg m;
    m.group = 6;
    m.viewid = {3, 1};
    m.from = 1;
    m.vs = {{3, 1}, 41};
    m.total_size = total;
    m.checksum = 1;
    m.offset = offset;
    m.data = std::move(data);
    Writer w;
    m.Encode(w);
    return w.Take();
  };
  auto rejects = [](const std::vector<std::uint8_t>& bytes) {
    Reader r(bytes);
    (void)vr::SnapshotChunkMsg::Decode(r);
    return !r.ok();
  };
  EXPECT_TRUE(rejects(encode(0, 0, {1})));        // zero-byte payload
  EXPECT_TRUE(rejects(encode(10, 10, {1})));      // offset == total
  EXPECT_TRUE(rejects(encode(10, 11, {1})));      // offset past total
  EXPECT_TRUE(rejects(encode(10, 0, {})));        // empty data
  EXPECT_TRUE(rejects(encode(10, 8, {1, 2, 3}))); // data overruns total
  EXPECT_FALSE(rejects(encode(10, 8, {1, 2})));   // exact tail is fine
}

TEST(Messages, SnapshotChunkEveryTruncationIsDetected) {
  vr::SnapshotChunkMsg m;
  m.group = 6;
  m.viewid = {3, 1};
  m.from = 1;
  m.vs = {{3, 1}, 41};
  m.total_size = 5;
  m.checksum = 0xabad1dea;
  m.offset = 0;
  m.data = {1, 2, 3, 4, 5};
  Writer w;
  m.Encode(w);
  auto bytes = w.Take();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<long>(len));
    Reader r(prefix);
    (void)vr::SnapshotChunkMsg::Decode(r);
    EXPECT_FALSE(r.ok()) << "prefix length " << len;
  }
}

// Pins the exact wire layout of the lease-grant message (DESIGN.md §14).
TEST(Messages, GoldenBytesLeaseGrantMsg) {
  vr::LeaseGrantMsg m;
  m.group = 3;
  m.viewid = {5, 1};
  m.from = 2;
  m.seq = 6;
  m.stable_ts = 41;
  m.duration = 60000;
  const std::vector<std::uint8_t> expected = {
      0x03, 0, 0, 0, 0, 0, 0, 0,  // group = 3 (u64 le)
      0x05, 0, 0, 0, 0, 0, 0, 0,  // viewid.counter = 5
      0x01, 0, 0, 0,              // viewid.mid = 1
      0x02, 0, 0, 0,              // from = 2
      0x06, 0, 0, 0, 0, 0, 0, 0,  // seq = 6
      0x29, 0, 0, 0, 0, 0, 0, 0,  // stable_ts = 41
      0x60, 0xea, 0, 0, 0, 0, 0, 0,  // duration = 60000
  };
  EXPECT_EQ(vr::EncodeMsg(m), expected);
}

TEST(Messages, BackupReadRoundTrip) {
  vr::BackupReadMsg m;
  m.group = 3;
  m.uid = "item7";
  m.horizon = vr::Viewstamp{{5, 1}, 40};
  m.corr = 99;
  m.reply_to = 12;
  auto out = RoundTrip(m);
  EXPECT_EQ(out.group, m.group);
  EXPECT_EQ(out.uid, m.uid);
  EXPECT_EQ(out.horizon, m.horizon);
  EXPECT_EQ(out.corr, m.corr);
  EXPECT_EQ(out.reply_to, m.reply_to);

  vr::BackupReadReplyMsg r;
  r.corr = 99;
  r.status = vr::ReadStatus::kOk;
  r.value = {'v', '4'};
  r.served_vs = vr::Viewstamp{{5, 1}, 38};
  r.primary_hint = 0;
  auto rout = RoundTrip(r);
  EXPECT_EQ(rout.corr, r.corr);
  EXPECT_EQ(rout.status, vr::ReadStatus::kOk);
  EXPECT_EQ(rout.value, r.value);
  EXPECT_EQ(rout.served_vs, r.served_vs);

  r.status = vr::ReadStatus::kWrongLease;
  r.value.clear();
  r.primary_hint = 7;
  rout = RoundTrip(r);
  EXPECT_EQ(rout.status, vr::ReadStatus::kWrongLease);
  EXPECT_EQ(rout.primary_hint, 7u);
}

TEST(Messages, BackupReadReplyRejectsBadStatus) {
  vr::BackupReadReplyMsg r;
  r.corr = 1;
  Writer w;
  r.Encode(w);
  auto bytes = w.Take();
  bytes[8] = 0x7f;  // status byte, right after the u64 corr
  Reader rd(bytes);
  (void)vr::BackupReadReplyMsg::Decode(rd);
  EXPECT_FALSE(rd.ok());
}

TEST(Messages, LeaseAndReadEveryTruncationIsDetected) {
  vr::LeaseGrantMsg g;
  g.group = 3;
  g.viewid = {5, 1};
  g.from = 2;
  g.seq = 6;
  g.stable_ts = 41;
  g.duration = 60000;
  vr::BackupReadMsg m;
  m.group = 3;
  m.uid = "item7";
  m.horizon = vr::Viewstamp{{5, 1}, 40};
  m.corr = 99;
  m.reply_to = 12;
  vr::BackupReadReplyMsg rep;
  rep.corr = 99;
  rep.status = vr::ReadStatus::kOk;
  rep.value = {'v', '4'};
  rep.served_vs = vr::Viewstamp{{5, 1}, 38};
  rep.primary_hint = 7;
  auto check = [](const std::vector<std::uint8_t>& bytes, auto decode) {
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      std::vector<std::uint8_t> prefix(bytes.begin(),
                                       bytes.begin() + static_cast<long>(len));
      Reader r(prefix);
      decode(r);
      EXPECT_FALSE(r.ok()) << "prefix length " << len;
    }
  };
  check(vr::EncodeMsg(g), [](Reader& r) { (void)vr::LeaseGrantMsg::Decode(r); });
  check(vr::EncodeMsg(m), [](Reader& r) { (void)vr::BackupReadMsg::Decode(r); });
  check(vr::EncodeMsg(rep),
        [](Reader& r) { (void)vr::BackupReadReplyMsg::Decode(r); });
}

TEST(Messages, QueryAndOutcomeRoundTrip) {
  vr::QueryMsg q;
  q.aid = {1, {2, 3}, 4};
  q.reply_to = 9;
  q.reply_group = 2;
  EXPECT_EQ(RoundTrip(q).aid, q.aid);

  vr::QueryReplyMsg qr;
  qr.aid = q.aid;
  qr.outcome = vr::TxnOutcome::kCommitted;
  EXPECT_EQ(RoundTrip(qr).outcome, vr::TxnOutcome::kCommitted);
}

TEST(Messages, CoordinatorServerMessagesRoundTrip) {
  vr::BeginTxnMsg b;
  b.group = 2;
  b.viewid = {1, 1};
  b.req_id = 77;
  b.reply_to = 30;
  EXPECT_EQ(RoundTrip(b).req_id, 77u);

  vr::CommitReqMsg c;
  c.group = 2;
  c.viewid = {1, 1};
  c.req_id = 78;
  c.aid = {2, {1, 1}, 5};
  c.pset = SamplePset();
  c.reply_to = 30;
  auto cout_ = RoundTrip(c);
  EXPECT_EQ(cout_.pset, c.pset);
  EXPECT_EQ(cout_.aid, c.aid);
}

TEST(Messages, DecodeRejectsBadEnumTags) {
  vr::ReplyMsg m;
  m.status = vr::ReplyStatus::kOk;
  auto bytes = vr::EncodeMsg(m);
  bytes[8] = 0x77;  // status byte follows the u64 call_id
  wire::Reader r(bytes);
  (void)vr::ReplyMsg::Decode(r);
  EXPECT_FALSE(r.ok());
}

// Fuzz: decoding random bytes must never crash and must flag failure for
// truncated inputs.
TEST(Messages, FuzzDecodeIsMemorySafe) {
  sim::Rng rng(99);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> junk(rng.UniformInt(0, 64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.Next());
    wire::Reader r(junk);
    switch (iter % 6) {
      case 0:
        (void)vr::CallMsg::Decode(r);
        break;
      case 1:
        (void)vr::ReplyMsg::Decode(r);
        break;
      case 2:
        (void)vr::BufferBatchMsg::Decode(r);
        break;
      case 3:
        (void)vr::EventRecord::Decode(r);
        break;
      case 4:
        (void)vr::AcceptMsg::Decode(r);
        break;
      case 5:
        (void)vr::PrepareMsg::Decode(r);
        break;
    }
  }
  SUCCEED();
}

// Truncation fuzz: every strict prefix of a valid message must decode with
// ok() == false (never crash, never silently succeed with short reads).
TEST(Messages, EveryTruncationIsDetected) {
  vr::BufferBatchMsg b;
  b.group = 6;
  b.viewid = {3, 1};
  b.from = 1;
  vr::EventRecord rec = vr::EventRecord::CompletedCall(
      {vr::Aid{6, {3, 1}, 2}, 1},
      {vr::ObjectEffect{"key", vr::LockMode::kWrite, "value"}});
  rec.ts = 5;
  b.events = {rec};
  auto bytes = vr::EncodeMsg(b);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<long>(len));
    wire::Reader r(prefix);
    (void)vr::BufferBatchMsg::Decode(r);
    EXPECT_FALSE(r.ok()) << "prefix length " << len;
  }
}

// ---------------------------------------------------------------------------
// Varints (§8.2)
// ---------------------------------------------------------------------------

TEST(Varint, RoundTripAtBoundaries) {
  const std::uint64_t values[] = {0,      1,        127,        128,
                                  16383,  16384,    0xffffffff, 1ull << 56,
                                  UINT64_MAX};
  for (std::uint64_t v : values) {
    Writer w;
    w.Varint(v);
    auto bytes = w.Take();
    Reader r(bytes);
    EXPECT_EQ(r.Varint(), v);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.AtEnd());
  }
  // Documented sizes: 7 value bits per byte.
  Writer w;
  w.Varint(127);
  EXPECT_EQ(w.size(), 1u);
  w = Writer{};
  w.Varint(128);
  EXPECT_EQ(w.size(), 2u);
  w = Writer{};
  w.Varint(UINT64_MAX);
  EXPECT_EQ(w.size(), 10u);
  EXPECT_EQ(wire::VarintSize(127), 1u);
  EXPECT_EQ(wire::VarintSize(128), 2u);
  EXPECT_EQ(wire::VarintSize(UINT64_MAX), 10u);
}

TEST(Varint, ZigZagRoundTrip) {
  const std::int64_t values[] = {0, -1, 1, -2, 2, -64, 64, INT64_MIN,
                                 INT64_MAX};
  for (std::int64_t v : values) {
    Writer w;
    w.ZigZag(v);
    auto bytes = w.Take();
    Reader r(bytes);
    EXPECT_EQ(r.ZigZag(), v);
    EXPECT_TRUE(r.ok());
  }
  // Small magnitudes of either sign are one byte.
  Writer w;
  w.ZigZag(-1);
  EXPECT_EQ(w.size(), 1u);
}

TEST(Varint, RejectsTruncationAndOverflow) {
  // Truncated: continuation bit set with no next byte.
  std::vector<std::uint8_t> truncated{0x80};
  Reader r1(truncated);
  r1.Varint();
  EXPECT_FALSE(r1.ok());
  // Overflowing: ten bytes whose last contributes more than u64's top bit.
  std::vector<std::uint8_t> overflow(10, 0x80);
  overflow[9] = 0x02;
  Reader r2(overflow);
  r2.Varint();
  EXPECT_FALSE(r2.ok());
  // Never-ending continuation within 10 bytes.
  std::vector<std::uint8_t> endless(11, 0x80);
  Reader r3(endless);
  r3.Varint();
  EXPECT_FALSE(r3.ok());
}

// ---------------------------------------------------------------------------
// KeyDict + byte deltas (§8.3)
// ---------------------------------------------------------------------------

TEST(KeyDict, RoundRobinEvictionIsDeterministic) {
  wire::KeyDict d(2);
  EXPECT_EQ(d.Insert("a"), 0u);
  EXPECT_EQ(d.Insert("b"), 1u);
  EXPECT_EQ(*d.Find("a"), 0u);
  d.SetBase(0, "va");
  // Third insert wraps to slot 0, evicting "a" and clearing its base.
  EXPECT_EQ(d.Insert("c"), 0u);
  EXPECT_FALSE(d.Find("a").has_value());
  EXPECT_EQ(*d.Find("c"), 0u);
  EXPECT_EQ(d.BaseAt(0), "");
  EXPECT_EQ(d.UidAt(1), "b");
  d.Reset();
  EXPECT_FALSE(d.Find("b").has_value());
  EXPECT_EQ(d.size(), 0u);
}

TEST(ByteDelta, DiffAndApplyInverse) {
  const std::pair<std::string, std::string> cases[] = {
      {"", ""},
      {"", "new"},
      {"old", ""},
      {"balance=1000", "balance=1001"},
      {"hello world", "hello brave world"},
      {"abc", "abc"},
      {"xyz", "qrs"},
  };
  for (const auto& [base, target] : cases) {
    auto d = wire::DiffBytes(base, target);
    auto back = wire::ApplyDelta(base, d.prefix, d.suffix, d.mid);
    ASSERT_TRUE(back.has_value()) << base << " -> " << target;
    EXPECT_EQ(*back, target);
    EXPECT_LE(d.prefix + d.suffix, std::min(base.size(), target.size()));
  }
  // Identical strings collapse to an empty mid.
  auto same = wire::DiffBytes("aaaa", "aaaa");
  EXPECT_TRUE(same.mid.empty());
}

TEST(ByteDelta, ApplyRejectsOutOfBounds) {
  EXPECT_FALSE(wire::ApplyDelta("abc", 4, 0, "x").has_value());
  EXPECT_FALSE(wire::ApplyDelta("abc", 2, 2, "x").has_value());
  EXPECT_TRUE(wire::ApplyDelta("abc", 2, 1, "x").has_value());
}

// ---------------------------------------------------------------------------
// Compressed batches (§8.4): golden bytes
// ---------------------------------------------------------------------------

vr::EventRecord WriteRec(std::uint64_t ts, const std::string& uid,
                         const std::string& value) {
  vr::EventRecord e = vr::EventRecord::CompletedCall(
      {vr::Aid{6, {3, 1}, 2}, 0},
      {vr::ObjectEffect{uid, vr::LockMode::kWrite, value}});
  e.ts = ts;
  return e;
}

// Pins the exact §8.4 byte layout of a reset batch: anyone re-implementing
// the spec must produce these bytes.
TEST(BatchCodec, GoldenBytesResetBatch) {
  vr::BatchEncoder enc;
  Writer w;
  enc.EncodeBody(w, {WriteRec(1, "acct", "balance=1000")});
  const std::vector<std::uint8_t> expected = {
      0x01,        // gen = 1 (varint)
      0x01,        // flags: bit0 = reset
      0x01,        // first_ts = 1 (varint)
      0x01,        // count = 1 (varint)
      0x20,        // record tag: type=completed-call, has_effects
      0x06,        // aid.coordinator_group = 6
      0x03, 0x01,  // aid.view = <counter 3, mid 1>
      0x02,        // aid.seq = 2
      0x00,        // sub_aid.sub = 0
      0x01,        // effects count = 1
      0x0d,        // effect op: uid_op=insert | write | has_tentative
      0x04, 'a', 'c', 'c', 't',  // uid (var-string)
      0x0c, 'b', 'a', 'l', 'a', 'n', 'c', 'e', '=', '1', '0', '0', '0',
  };
  EXPECT_EQ(w.data(), expected);
}

// Pins the in-sequence batch layout: same-aid elision, dictionary hit by
// slot number, and a version shipped as a delta against the slot's base.
TEST(BatchCodec, GoldenBytesInSequenceDeltaBatch) {
  vr::BatchEncoder enc;
  Writer w1;
  enc.EncodeBody(w1, {WriteRec(1, "acct", "balance=1000")});
  Writer w2;
  enc.EncodeBody(w2, {WriteRec(2, "acct", "balance=1001")});
  const std::vector<std::uint8_t> expected = {
      0x01,  // gen = 1 (unchanged: in sequence)
      0x00,  // flags: not a reset
      0x02,  // first_ts = 2
      0x01,  // count = 1
      0x30,  // record tag: completed-call, same_aid, has_effects
      0x00,  // sub_aid.sub = 0
      0x01,  // effects count = 1
      0x1c,  // effect op: uid_op=hit | write | has_tentative | delta
      0x00,  // dictionary slot 0 ("acct")
      0x0b,  // delta prefix = 11 ("balance=100")
      0x00,  // delta suffix = 0
      0x01, '1',  // delta mid (var-string)
  };
  EXPECT_EQ(w2.data(), expected);
  EXPECT_EQ(enc.stats().resets, 1u);
  EXPECT_EQ(enc.stats().dict_hits, 1u);
  EXPECT_EQ(enc.stats().tentative_deltas, 1u);

  // And the decoder reproduces both batches exactly.
  vr::BatchDecoder dec;
  std::vector<vr::EventRecord> out;
  std::uint64_t last_ts = 0;
  Reader r1(w1.data());
  ASSERT_EQ(dec.DecodeBody(r1, {3, 1}, 1, out, last_ts),
            vr::BatchOutcome::kOk);
  EXPECT_EQ(out, std::vector<vr::EventRecord>{WriteRec(1, "acct",
                                                       "balance=1000")});
  Reader r2(w2.data());
  ASSERT_EQ(dec.DecodeBody(r2, {3, 1}, 1, out, last_ts),
            vr::BatchOutcome::kOk);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], WriteRec(2, "acct", "balance=1001"));
  EXPECT_EQ(last_ts, 2u);
  EXPECT_TRUE(r2.ok());
  EXPECT_TRUE(r2.AtEnd());
}

// ---------------------------------------------------------------------------
// Compressed batches: Decode(Encode(batch)) == batch, randomized
// ---------------------------------------------------------------------------

// Generates a random record of any type, drawing uids from a pool larger
// than the dictionary (forcing evictions) and evolving per-key values with
// small edits (exercising deltas) or fresh values (exercising literals).
vr::EventRecord RandomRecord(sim::Rng& rng, std::uint64_t ts,
                             std::vector<std::string>& values) {
  const int kind = static_cast<int>(rng.UniformInt(0, 9));
  const vr::Aid aid{rng.UniformInt(1, 3), {rng.UniformInt(1, 4), 1},
                    rng.UniformInt(1, 5)};
  if (kind >= 8) {  // outcome records
    switch (kind % 4) {
      case 0:
        return vr::EventRecord::Committing(aid, {1, 2, 3});
      case 1:
        return vr::EventRecord::Committed(aid);
      case 2:
        return vr::EventRecord::Aborted(aid);
      default:
        return vr::EventRecord::Done(aid);
    }
  }
  if (kind == 7) {
    vr::History h;
    h.OpenView({2, 1});
    h.Advance(rng.UniformInt(1, 100));
    std::vector<std::uint8_t> gstate(rng.UniformInt(0, 40));
    for (auto& b : gstate) b = static_cast<std::uint8_t>(rng.Next());
    return vr::EventRecord::NewView(vr::View{1, {2, 3}}, h, gstate);
  }
  // Completed call with 0..4 effects.
  std::vector<vr::ObjectEffect> fx;
  const std::size_t nfx = rng.UniformInt(0, 4);
  for (std::size_t i = 0; i < nfx; ++i) {
    const std::size_t key = rng.Index(values.size());
    const std::string uid = "key-" + std::to_string(key);
    if (rng.Bernoulli(0.3)) {
      fx.push_back(vr::ObjectEffect{uid, vr::LockMode::kRead, std::nullopt});
      continue;
    }
    std::string& v = values[key];
    if (v.empty() || rng.Bernoulli(0.3)) {
      v = std::string(rng.UniformInt(0, 30), 'a' + static_cast<char>(key % 26));
    } else {
      v[rng.Index(v.size())] =
          static_cast<char>('0' + rng.UniformInt(0, 9));  // small edit
    }
    fx.push_back(vr::ObjectEffect{uid, vr::LockMode::kWrite, v});
  }
  std::uint64_t call_seq = 0;
  std::vector<std::uint8_t> result;
  vr::Pset pset;
  if (rng.Bernoulli(0.7)) {
    call_seq = (7ull << 32) | rng.UniformInt(1, 1000);
    result.resize(rng.UniformInt(0, 16));
    for (auto& b : result) b = static_cast<std::uint8_t>(rng.Next());
    const std::size_t np = rng.UniformInt(0, 2);
    for (std::size_t i = 0; i < np; ++i) {
      pset.push_back(vr::PsetEntry{rng.UniformInt(1, 9),
                                   {{rng.UniformInt(1, 5), 2},
                                    rng.UniformInt(1, 50)},
                                   static_cast<std::uint32_t>(i)});
    }
  }
  auto e = vr::EventRecord::CompletedCall(
      {aid, static_cast<std::uint32_t>(rng.UniformInt(0, 3))}, std::move(fx),
      call_seq, std::move(result), std::move(pset));
  e.ts = ts;
  return e;
}

TEST(BatchCodec, RandomizedRoundTripAcrossDictionaryStates) {
  std::uint64_t total_rewinds = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::Rng rng(seed);
    vr::BatchEncoder enc(/*dict_capacity=*/8);
    vr::BatchDecoder dec(/*dict_capacity=*/8);
    const vr::ViewId vid{2, 1};
    std::vector<std::string> values(12);  // 12 keys > 8 slots: evictions
    std::vector<vr::EventRecord> log;     // log[ts - 1]: the record at ts
    for (int batch = 0; batch < 25; ++batch) {
      std::vector<vr::EventRecord> events;
      const bool resend = rng.Bernoulli(0.15) && !log.empty();
      if (resend) {
        // Simulate a go-back-N / gap resend: re-encode a suffix of the
        // records already sent — records are immutable, a resend carries
        // the same bytes-worth of content. The encoder either rewinds to
        // its ack checkpoint (same generation; the in-sync decoder then
        // reports the duplicate as stale and drops it) or opens a fresh
        // generation the decoder must accept.
        const std::uint64_t from =
            log.size() + 1 -
            rng.UniformInt(1, std::min<std::uint64_t>(log.size(), 5));
        events.assign(log.begin() + static_cast<std::ptrdiff_t>(from - 1),
                      log.end());
      } else {
        const int n = static_cast<int>(rng.UniformInt(1, 10));
        for (int i = 0; i < n; ++i) {
          log.push_back(RandomRecord(rng, log.size() + 1, values));
          log.back().ts = log.size();  // some RandomRecord paths skip ts
          events.push_back(log.back());
        }
      }
      Writer w;
      enc.EncodeBody(w, events);
      Reader r(w.data());
      std::vector<vr::EventRecord> out;
      std::uint64_t last_ts = 0;
      const vr::BatchOutcome outcome = dec.DecodeBody(r, vid, 1, out, last_ts);
      ASSERT_TRUE(r.ok()) << "seed " << seed << " batch " << batch;
      if (outcome == vr::BatchOutcome::kStale) {
        // Only a rewound resend of already-consumed records may be stale;
        // the decoder ignored it and the stream stays in sync.
        ASSERT_TRUE(resend) << "seed " << seed << " batch " << batch;
        EXPECT_TRUE(out.empty());
        continue;
      }
      ASSERT_EQ(outcome, vr::BatchOutcome::kOk)
          << "seed " << seed << " batch " << batch;
      EXPECT_TRUE(r.AtEnd());
      EXPECT_EQ(last_ts, events.back().ts);
      ASSERT_EQ(out.size(), events.size());
      for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(out[i], events[i]) << "seed " << seed << " batch " << batch
                                     << " record " << i;
      }
      if (rng.Bernoulli(0.5)) {
        // Simulate a cumulative ack for a random prefix reaching the
        // encoder, so later resends can target the checkpoint.
        enc.AdvanceCheckpoint(rng.UniformInt(1, log.size()), log, 0);
      }
    }
    // The workload's redundancy was actually exploited.
    EXPECT_GT(enc.stats().dict_hits, 0u) << "seed " << seed;
    EXPECT_GT(enc.stats().resets, 0u) << "seed " << seed;
    total_rewinds += enc.stats().rewinds;
  }
  // Across the seeds, some resends must have hit the checkpoint-rewind path.
  EXPECT_GT(total_rewinds, 0u);
}

TEST(BatchCodec, CompressedMessageRoundTripThroughBufferBatchMsg) {
  vr::BatchEncoder enc;
  vr::BufferBatchMsg b;
  b.group = 6;
  b.viewid = {3, 1};
  b.from = 1;
  b.events = {WriteRec(1, "acct", "balance=1000"),
              WriteRec(2, "acct", "balance=1001")};
  b.mode = vr::CompressionMode::kDict;
  b.codec = &enc;
  auto bytes = vr::EncodeMsg(b);

  vr::BatchDecoder dec;
  Reader r(bytes);
  auto out = vr::BufferBatchMsg::Decode(r, &dec);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_FALSE(out.stale);
  EXPECT_FALSE(out.unsynced);
  EXPECT_EQ(out.group, b.group);
  EXPECT_EQ(out.viewid, b.viewid);
  EXPECT_EQ(out.events, b.events);

  // A compressed body without a decoder is a decode failure, not a crash.
  Reader r2(bytes);
  (void)vr::BufferBatchMsg::Decode(r2);
  EXPECT_FALSE(r2.ok());
}

// ---------------------------------------------------------------------------
// Compressed batches: stream discipline (stale / unsynced / resync)
// ---------------------------------------------------------------------------

TEST(BatchCodec, DuplicateAndReorderedBatchesAreStaleOrUnsynced) {
  vr::BatchEncoder enc;
  const vr::ViewId vid{2, 1};
  std::vector<Writer> batches;
  for (std::uint64_t ts = 1; ts <= 3; ++ts) {
    batches.emplace_back();
    enc.EncodeBody(batches.back(), {WriteRec(ts, "k", "v" +
                                             std::to_string(ts))});
  }
  vr::BatchDecoder dec;
  std::vector<vr::EventRecord> out;
  std::uint64_t last_ts = 0;

  // Batch 2 before batch 1: unsynced (its dictionary context is missing),
  // and last_ts names the range to nack.
  Reader r2(batches[1].data());
  EXPECT_EQ(dec.DecodeBody(r2, vid, 1, out, last_ts),
            vr::BatchOutcome::kUnsynced);
  EXPECT_EQ(last_ts, 2u);

  // Batch 1 (a reset batch) then batch 2 in order: both Ok.
  Reader r1(batches[0].data());
  EXPECT_EQ(dec.DecodeBody(r1, vid, 1, out, last_ts), vr::BatchOutcome::kOk);
  Reader r2b(batches[1].data());
  EXPECT_EQ(dec.DecodeBody(r2b, vid, 1, out, last_ts), vr::BatchOutcome::kOk);

  // A network-duplicated copy of either is stale — state is NOT rewound.
  Reader r1dup(batches[0].data());
  EXPECT_EQ(dec.DecodeBody(r1dup, vid, 1, out, last_ts),
            vr::BatchOutcome::kStale);
  Reader r2dup(batches[1].data());
  EXPECT_EQ(dec.DecodeBody(r2dup, vid, 1, out, last_ts),
            vr::BatchOutcome::kStale);

  // ...and the stream still continues normally.
  Reader r3(batches[2].data());
  EXPECT_EQ(dec.DecodeBody(r3, vid, 1, out, last_ts), vr::BatchOutcome::kOk);
  EXPECT_EQ(out[0].effects[0].tentative, "v3");
}

TEST(BatchCodec, GapResendResyncsViaResetBatch) {
  vr::BatchEncoder enc;
  const vr::ViewId vid{2, 1};
  Writer b1, b2, b3;
  enc.EncodeBody(b1, {WriteRec(1, "k", "v1")});
  enc.EncodeBody(b2, {WriteRec(2, "k", "v2")});
  enc.EncodeBody(b3, {WriteRec(3, "k", "v3")});

  vr::BatchDecoder dec;
  std::vector<vr::EventRecord> out;
  std::uint64_t last_ts = 0;
  Reader r1(b1.data());
  ASSERT_EQ(dec.DecodeBody(r1, vid, 1, out, last_ts), vr::BatchOutcome::kOk);
  // Batch 2 lost; batch 3 arrives: unsynced.
  Reader r3(b3.data());
  ASSERT_EQ(dec.DecodeBody(r3, vid, 1, out, last_ts),
            vr::BatchOutcome::kUnsynced);
  EXPECT_EQ(last_ts, 3u);
  // The primary's gap resend re-encodes (1, 3]: a discontinuity for the
  // encoder (its cursor is at 4), so it emits a reset batch the decoder
  // accepts — one round trip to heal.
  Writer resend;
  enc.EncodeBody(resend, {WriteRec(2, "k", "v2"), WriteRec(3, "k", "v3")});
  Reader rr(resend.data());
  ASSERT_EQ(dec.DecodeBody(rr, vid, 1, out, last_ts), vr::BatchOutcome::kOk);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].effects[0].tentative, "v3");
  EXPECT_EQ(enc.stats().resets, 2u);  // initial + resend
}

TEST(BatchCodec, RewoundResendReproducesContinuationBytesGolden) {
  // Cross-batch dictionary persistence (§8.3): after the backup acks ts 1
  // the encoder's checkpoint sits at ts 2, so a retransmission starting
  // there REWINDS instead of resetting — and must reproduce byte-for-byte
  // the continuation batch the decoder would have accepted the first time.
  vr::BatchEncoder enc;
  const std::vector<vr::EventRecord> records = {
      WriteRec(1, "acct", "balance=1000"), WriteRec(2, "acct",
                                                    "balance=1001")};
  Writer w1;
  enc.EncodeBody(w1, {records[0]});
  enc.AdvanceCheckpoint(/*acked_ts=*/1, records, /*base_ts=*/0);
  Writer w2;
  enc.EncodeBody(w2, {records[1]});
  // Batch 2 is lost in flight; the resend re-encodes from the acked
  // watermark. Before this PR that was a discontinuity → reset batch → the
  // dictionary restarted cold. Now: identical bytes, dictionary intact.
  Writer resend;
  enc.EncodeBody(resend, {records[1]});
  EXPECT_EQ(resend.data(), w2.data());
  // Pinned against the §8.4 golden continuation layout (same bytes as
  // GoldenBytesInSequenceDeltaBatch): still a gen-1 non-reset batch with a
  // dictionary hit and a delta-encoded version.
  const std::vector<std::uint8_t> expected = {
      0x01, 0x00, 0x02, 0x01, 0x30, 0x00, 0x01,
      0x1c, 0x00, 0x0b, 0x00, 0x01, '1',
  };
  EXPECT_EQ(resend.data(), expected);
  EXPECT_EQ(enc.stats().rewinds, 1u);
  EXPECT_EQ(enc.stats().resets, 1u);  // only the stream-opening reset

  // A decoder that consumed batch 1 but never saw batch 2 accepts the
  // rewound resend as the in-sequence continuation it is.
  vr::BatchDecoder dec;
  std::vector<vr::EventRecord> out;
  std::uint64_t last_ts = 0;
  Reader r1(w1.data());
  ASSERT_EQ(dec.DecodeBody(r1, {3, 1}, 1, out, last_ts),
            vr::BatchOutcome::kOk);
  Reader rr(resend.data());
  ASSERT_EQ(dec.DecodeBody(rr, {3, 1}, 1, out, last_ts),
            vr::BatchOutcome::kOk);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], records[1]);
  EXPECT_EQ(last_ts, 2u);
}

TEST(BatchCodec, CheckpointReplaySurvivesEvictionsAndElision) {
  // AdvanceCheckpoint replays acked records through the checkpoint's shadow
  // dictionary; with more hot keys than slots the replay must reproduce the
  // exact eviction order, delta bases, and aid elision the live encoder went
  // through, or the rewound bytes would diverge.
  vr::BatchEncoder enc(/*dict_capacity=*/2);
  std::vector<vr::EventRecord> records;
  for (std::uint64_t ts = 1; ts <= 8; ++ts) {
    records.push_back(WriteRec(ts, "key-" + std::to_string(ts % 3),
                               "value-" + std::to_string(100 + ts)));
  }
  std::vector<Writer> batches(4);
  for (std::size_t b = 0; b < 4; ++b) {
    enc.EncodeBody(batches[b], {records[2 * b], records[2 * b + 1]});
  }
  enc.AdvanceCheckpoint(/*acked_ts=*/6, records, /*base_ts=*/0);
  // The ts 7..8 batch is lost: the go-back-N resend rewinds to the
  // checkpoint and must match the original transmission byte-for-byte.
  Writer resend;
  enc.EncodeBody(resend, {records[6], records[7]});
  EXPECT_EQ(resend.data(), batches[3].data());
  EXPECT_EQ(enc.stats().rewinds, 1u);
  EXPECT_EQ(enc.stats().resets, 1u);
}

TEST(BatchCodec, CheckpointBelowGcFloorFallsBackToReset) {
  // If GC released records past the checkpoint (the laggard is headed for
  // state transfer anyway), AdvanceCheckpoint invalidates it rather than
  // replaying records it no longer has — and a later resend safely resets.
  vr::BatchEncoder enc;
  const std::vector<vr::EventRecord> records = {WriteRec(3, "k", "v3"),
                                                WriteRec(4, "k", "v4")};
  Writer w1;
  enc.EncodeBody(w1, {records[0], records[1]});  // reset batch at ts 3
  // base_ts 4: everything through ts 4 was GC'd, including the checkpoint's
  // position (ckpt_ts 3 <= base_ts) — records[] here starts at ts 5.
  enc.AdvanceCheckpoint(/*acked_ts=*/4, /*records=*/{}, /*base_ts=*/4);
  Writer resend;
  enc.EncodeBody(resend, {WriteRec(4, "k", "v4")});
  EXPECT_EQ(enc.stats().rewinds, 0u);
  EXPECT_EQ(enc.stats().resets, 2u);  // discontinuity healed by reset
}

TEST(BatchCodec, NewStreamIdentityRequiresReset) {
  // A batch from a different (viewid, from) must not decode against this
  // stream's dictionary: in-sequence → unsynced; reset → rebinds.
  vr::BatchEncoder enc1, enc2;
  Writer a1, a2, b1;
  enc1.EncodeBody(a1, {WriteRec(1, "k", "v1")});
  enc1.EncodeBody(a2, {WriteRec(2, "k", "v2")});
  enc2.EncodeBody(b1, {WriteRec(1, "k", "w1")});

  vr::BatchDecoder dec;
  std::vector<vr::EventRecord> out;
  std::uint64_t last_ts = 0;
  ASSERT_EQ([&] { Reader r(a1.data());
                  return dec.DecodeBody(r, {2, 1}, 1, out, last_ts); }(),
            vr::BatchOutcome::kOk);
  // In-sequence batch of stream A presented as stream B: unsynced.
  EXPECT_EQ([&] { Reader r(a2.data());
                  return dec.DecodeBody(r, {3, 2}, 2, out, last_ts); }(),
            vr::BatchOutcome::kUnsynced);
  // Reset batch from the new stream rebinds the decoder.
  ASSERT_EQ([&] { Reader r(b1.data());
                  return dec.DecodeBody(r, {3, 2}, 2, out, last_ts); }(),
            vr::BatchOutcome::kOk);
  EXPECT_EQ(out[0].effects[0].tentative, "w1");
}

// ---------------------------------------------------------------------------
// Compressed batches: corrupted / truncated frames are rejected
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> EncodeCompressed(
    vr::BatchEncoder& enc, const std::vector<vr::EventRecord>& events) {
  vr::BufferBatchMsg b;
  b.group = 6;
  b.viewid = {3, 1};
  b.from = 1;
  b.events = events;
  b.mode = vr::CompressionMode::kDict;
  b.codec = &enc;
  return vr::EncodeMsg(b);
}

TEST(BatchCodec, EveryTruncationOfCompressedBatchIsDetected) {
  vr::BatchEncoder enc;
  auto bytes = EncodeCompressed(
      enc, {WriteRec(1, "acct", "balance=1000"),
            WriteRec(2, "other", "x"), WriteRec(3, "acct", "balance=1001")});
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<long>(len));
    vr::BatchDecoder dec;  // fresh state per trial
    wire::Reader r(prefix);
    (void)vr::BufferBatchMsg::Decode(r, &dec);
    EXPECT_FALSE(r.ok()) << "prefix length " << len;
  }
}

TEST(BatchCodec, TargetedCorruptionsAreRejected) {
  // Hand-built malformed bodies; each must mark the reader bad (kBad), not
  // crash and not produce records. Header prefix common to all: the §8.1
  // fields, then mode=1.
  auto rejects = [](const std::vector<std::uint8_t>& body) {
    Writer w;
    w.U64(6);
    vr::ViewId{3, 1}.Encode(w);
    w.U32(1);
    w.U8(1);  // mode = dict
    w.Raw(std::span<const std::uint8_t>(body));
    vr::BatchDecoder dec;
    wire::Reader r(w.data());
    (void)vr::BufferBatchMsg::Decode(r, &dec);
    return !r.ok();
  };
  // gen = 0 is invalid (generations start at 1).
  EXPECT_TRUE(rejects({0x00, 0x01, 0x01, 0x01, 0x20, 0x06, 0x03, 0x01, 0x02,
                       0x00}));
  // Unknown flag bits.
  EXPECT_TRUE(rejects({0x01, 0x7f, 0x01, 0x01}));
  // count = 0 (batches are never empty).
  EXPECT_TRUE(rejects({0x01, 0x01, 0x01, 0x00}));
  // Record tag with the reserved bit set.
  EXPECT_TRUE(rejects({0x01, 0x01, 0x01, 0x01, 0x84}));
  // Shard escape tag (0x07) with an unknown subtype byte.
  EXPECT_TRUE(rejects({0x01, 0x01, 0x01, 0x01, 0x07, 0x02}));
  // Shard escape tag with flag bits set (shard records carry no call/aid/
  // effects/plist sections).
  EXPECT_TRUE(rejects({0x01, 0x01, 0x01, 0x01, 0x27, 0x00, 0x00}));
  // same_aid on the first record of a reset batch (no previous aid).
  EXPECT_TRUE(rejects({0x01, 0x01, 0x01, 0x01, 0x14, 0x00}));
  // Effect op with reserved bits set.
  EXPECT_TRUE(rejects({0x01, 0x01, 0x01, 0x01, 0x20, 0x06, 0x03, 0x01, 0x02,
                       0x00, 0x01, 0x60}));
  // Effect referencing an out-of-range dictionary slot.
  EXPECT_TRUE(rejects({0x01, 0x01, 0x01, 0x01, 0x20, 0x06, 0x03, 0x01, 0x02,
                       0x00, 0x01, 0x0c, 0x63}));
  // Delta without a dictionary hit (uid_op = insert).
  EXPECT_TRUE(rejects({0x01, 0x01, 0x01, 0x01, 0x20, 0x06, 0x03, 0x01, 0x02,
                       0x00, 0x01, 0x1d, 0x01, 'k', 0x00, 0x00, 0x00}));
  // Forged element count far beyond the remaining input.
  EXPECT_TRUE(rejects({0x01, 0x01, 0x01, 0xff, 0x7f}));
}

TEST(BatchCodec, DeltaOverflowingBaseIsRejected) {
  // Valid first batch establishes slot 0 with base "ab"; the second batch's
  // delta claims prefix 5 of a 2-byte base.
  vr::BatchDecoder dec;
  std::vector<vr::EventRecord> out;
  std::uint64_t last_ts = 0;
  vr::BatchEncoder enc;
  Writer b1;
  enc.EncodeBody(b1, {WriteRec(1, "k", "ab")});
  Reader r1(b1.data());
  ASSERT_EQ(dec.DecodeBody(r1, {3, 1}, 1, out, last_ts),
            vr::BatchOutcome::kOk);
  const std::vector<std::uint8_t> forged = {
      0x01, 0x00, 0x02, 0x01,        // gen 1, in-sequence, first_ts 2, count 1
      0x30, 0x00,                    // tag: same_aid | has_effects; sub 0
      0x01,                          // one effect
      0x1c, 0x00,                    // op: hit|write|tent|delta; slot 0
      0x05, 0x00, 0x00,              // prefix 5 > |"ab"|, suffix 0, empty mid
  };
  Reader r2(forged);
  EXPECT_EQ(dec.DecodeBody(r2, {3, 1}, 1, out, last_ts),
            vr::BatchOutcome::kBad);
  EXPECT_FALSE(r2.ok());
}

TEST(BatchCodec, RandomBitFlipsNeverCrashAndStateStaysUsable) {
  sim::Rng rng(7);
  for (int iter = 0; iter < 500; ++iter) {
    vr::BatchEncoder enc;
    auto b1 = EncodeCompressed(enc, {WriteRec(1, "acct", "balance=1000")});
    auto b2 = EncodeCompressed(enc, {WriteRec(2, "acct", "balance=1001")});
    vr::BatchDecoder dec;
    {
      wire::Reader r(b1);
      (void)vr::BufferBatchMsg::Decode(r, &dec);
      ASSERT_TRUE(r.ok());
    }
    // Corrupt 1–4 bytes of the in-sequence batch. (In the real system the
    // frame CRC catches this; the codec must stay memory-safe and keep a
    // consistent state even if corruption slips through.)
    auto corrupt = b2;
    const int flips = static_cast<int>(rng.UniformInt(1, 4));
    for (int i = 0; i < flips; ++i) {
      corrupt[rng.Index(corrupt.size())] ^=
          static_cast<std::uint8_t>(1 + rng.UniformInt(0, 254));
    }
    wire::Reader r(corrupt);
    auto m = vr::BufferBatchMsg::Decode(r, &dec);
    if (!r.ok() || m.stale || m.unsynced) continue;
    // Parsed anyway (flip in a value literal, say): the committed state must
    // still accept the next well-formed batch or report unsynced — never
    // crash or corrupt memory.
    vr::BatchEncoder enc2;
    (void)EncodeCompressed(enc2, {WriteRec(1, "acct", "balance=1000")});
    auto b3 = EncodeCompressed(enc2, {WriteRec(2, "acct", "balance=1001")});
    wire::Reader r3(b3);
    (void)vr::BufferBatchMsg::Decode(r3, &dec);
  }
  SUCCEED();
}

}  // namespace
}  // namespace vsr
