// Exhaustive and property tests of the §4 view-formation rule (the pure
// function vr::TryFormView), including the paper's worked A/B/C example.
#include <gtest/gtest.h>

#include "sim/rng.h"
#include "vr/view_formation.h"

namespace vsr::vr {
namespace {

Acceptance Normal(Mid from, ViewId view, std::uint64_t ts,
                  bool was_primary = false) {
  Acceptance a;
  a.from = from;
  a.last_vs = {view, ts};
  a.was_primary = was_primary;
  return a;
}

Acceptance Crashed(Mid from, ViewId viewid) {
  Acceptance a;
  a.from = from;
  a.crashed = true;
  a.crash_viewid = viewid;
  return a;
}

TEST(ViewFormation, RequiresMajorityAcceptance) {
  EXPECT_FALSE(TryFormView({Normal(1, {1, 1}, 5)}, 3).has_value());
  EXPECT_TRUE(TryFormView({Normal(1, {1, 1}, 5), Normal(2, {1, 1}, 3)}, 3)
                  .has_value());
}

TEST(ViewFormation, AllCrashedIsCatastrophe) {
  EXPECT_FALSE(TryFormView({Crashed(1, {3, 1}), Crashed(2, {3, 1}),
                            Crashed(3, {3, 1})},
                           3)
                   .has_value());
}

TEST(ViewFormation, Condition1MajorityNormal) {
  // 2 normal + 1 crashed out of 3: crashed acceptance ignorable.
  auto r = TryFormView(
      {Normal(1, {2, 1}, 9, true), Normal(2, {2, 1}, 7), Crashed(3, {2, 1})},
      3);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->condition, 1);
  EXPECT_EQ(r->view.primary, 1u);  // largest viewstamp
  EXPECT_EQ(r->view.Size(), 3u);   // crashed cohort joins as backup
}

TEST(ViewFormation, Condition2CrashFromOlderView) {
  // 1 normal (view 5) + 1 crashed (view 3) out of 3.
  auto r = TryFormView({Normal(2, {5, 1}, 4), Crashed(3, {3, 1})}, 3);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->condition, 2);
  EXPECT_EQ(r->view.primary, 2u);
}

TEST(ViewFormation, Condition3PrimaryOfCrashView) {
  // crash-viewid == normal-viewid; the normal acceptor IS the primary of
  // that view ("the primary always knows at least as much as any backup").
  auto r = TryFormView({Normal(1, {5, 1}, 9, /*was_primary=*/true),
                        Crashed(2, {5, 1})},
                       3);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->condition, 3);
  EXPECT_EQ(r->view.primary, 1u);

  // Same shape but the normal acceptor was only a backup: it may be missing
  // forced events the crashed cohort knew — must NOT form.
  EXPECT_FALSE(TryFormView({Normal(1, {5, 1}, 9, /*was_primary=*/false),
                            Crashed(2, {5, 1})},
                           3)
                   .has_value());
}

TEST(ViewFormation, CrashFromNewerViewBlocks) {
  // The crashed cohort had seen view 7; the normal one only view 5: forced
  // events of views 6..7 may exist that nobody present knows.
  EXPECT_FALSE(
      TryFormView({Normal(1, {5, 1}, 9, true), Crashed(2, {7, 2})}, 3)
          .has_value());
}

TEST(ViewFormation, PaperExampleABC) {
  // §4: view v1 = <primary: A, backups: {B, C}>. A committed a transaction,
  // forcing its event records to B but not C; A crashed and recovered; a
  // partition separated B. "In this case we cannot form a new view until
  // the partition is repaired because A has lost information and there are
  // forced events that C does not know."
  const Mid A = 1, B = 2, C = 3;
  const ViewId v1{1, A};
  // A recovered: crash acceptance with viewid v1. C: normal backup of v1.
  EXPECT_FALSE(TryFormView({Crashed(A, v1), Normal(C, v1, 5)}, 3).has_value());
  // Partition repaired: B (who has the forced events, ts 9 > C's 5) joins.
  auto r = TryFormView({Crashed(A, v1), Normal(C, v1, 5), Normal(B, v1, 9)}, 3);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->view.primary, B);  // largest viewstamp wins
}

TEST(ViewFormation, PrefersOldPrimaryOnViewstampTie) {
  // Old primary and a fully-caught-up backup share the max viewstamp; the
  // old primary is chosen ("this causes minimal disruption").
  auto r = TryFormView(
      {Normal(5, {4, 5}, 7, /*was_primary=*/true), Normal(2, {4, 5}, 7)}, 3);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->view.primary, 5u);
}

TEST(ViewFormation, DeterministicTieBreakByMid) {
  auto r = TryFormView({Normal(4, {1, 1}, 0), Normal(2, {1, 1}, 0)}, 3);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->view.primary, 2u);
}

// ---------------------------------------------------------------------------
// Condition 4 (DESIGN.md §10): log-recovered acceptances — crashed-with-state.
// ---------------------------------------------------------------------------

Acceptance Recovered(Mid from, ViewId view, std::uint64_t ts, ViewId ceiling,
                     bool was_primary = false) {
  Acceptance a;
  a.from = from;
  a.crashed = true;
  a.recovered = true;
  a.last_vs = {view, ts};
  a.was_primary = was_primary;
  a.crash_viewid = ceiling;
  return a;
}

TEST(ViewFormation, Condition4AllRecoveredReForms) {
  // The §4.2 catastrophe with surviving disks: every cohort crashed but all
  // replayed a durable log. Full configuration + state everywhere + ceilings
  // covered => form from the best surviving viewstamp.
  const ViewId v{5, 1};
  auto r = TryFormView({Recovered(1, v, 9, v, /*was_primary=*/true),
                        Recovered(2, v, 7, v), Recovered(3, v, 4, v)},
                       3);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->condition, 4);
  EXPECT_EQ(r->view.primary, 1u);  // holder of the best replayed viewstamp
  EXPECT_EQ(r->view.Size(), 3u);
}

TEST(ViewFormation, Condition4RequiresFullConfiguration) {
  // The replayed state is only a LOWER BOUND on pre-crash acknowledgements:
  // a missing cohort's image might hold forced events every present log
  // lost, so a mere majority of recovered acceptances must NOT form.
  const ViewId v{5, 1};
  EXPECT_FALSE(
      TryFormView({Recovered(1, v, 9, v, true), Recovered(2, v, 7, v)}, 3)
          .has_value());
}

TEST(ViewFormation, Condition4RejectsAmnesiacMix) {
  // One disk was replaced: its cohort recovered amnesiac (plain crashed).
  // Its lost image may have been the only holder of some forced event, so
  // the storm remains a catastrophe.
  const ViewId v{5, 1};
  EXPECT_FALSE(TryFormView({Recovered(1, v, 9, v, true),
                            Recovered(2, v, 7, v), Crashed(3, v)},
                           3)
                   .has_value());
}

TEST(ViewFormation, Condition4CeilingBlocksNewerDurableViewid) {
  // Cohort 3's stable viewid says it helped form view 6, but the best
  // surviving state is from view 5: view 6 may hold acknowledgements no
  // replayed log captured (its final checkpoint never hit the disk).
  const ViewId v5{5, 1}, v6{6, 3};
  EXPECT_FALSE(TryFormView({Recovered(1, v5, 9, v5, true),
                            Recovered(2, v5, 7, v5), Recovered(3, v5, 2, v6)},
                           3)
                   .has_value());
}

TEST(ViewFormation, Condition4MixesNormalAndRecovered) {
  // A live backup plus two log-recovered peers: conditions 1-3 fail (one
  // normal acceptance, not the old primary), but the full configuration is
  // present with state everywhere — condition 4 forms from the normal
  // acceptance's viewstamp, which is the best surviving one.
  const ViewId v{5, 1};
  auto r = TryFormView(
      {Normal(2, v, 9), Recovered(1, v, 8, v, true), Recovered(3, v, 4, v)},
      3);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->condition, 4);
  EXPECT_EQ(r->view.primary, 2u);
}

TEST(ViewFormation, RecoveredNeverCountsAsNormal) {
  // A recovered OLD PRIMARY must not satisfy condition 3's "the primary of
  // view normal-viewid has done a normal acceptance": its replayed state is
  // a lower bound, not the full pre-crash image. With only a majority
  // present, formation must fail.
  const ViewId v{5, 1};
  EXPECT_FALSE(
      TryFormView({Normal(2, v, 9), Recovered(1, v, 9, v, /*was_primary=*/true)},
                  3)
          .has_value());
}

TEST(ViewFormation, Condition4ZeroTsStateStillCounts) {
  // A recovered cohort whose checkpoint was at ts 0 (fresh view) is still
  // state-bearing — last_vs names the view it belonged to.
  const ViewId v{5, 1};
  auto r = TryFormView({Recovered(1, v, 0, v, true), Recovered(2, v, 0, v),
                        Recovered(3, v, 0, v)},
                       3);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->condition, 4);
}

// Property: TryFormView agrees with a direct transcription of the paper's
// rule on random acceptance sets.
class FormationProperty : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, FormationProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST_P(FormationProperty, MatchesPaperRule) {
  sim::Rng rng(GetParam() * 2903);
  for (int iter = 0; iter < 3000; ++iter) {
    const std::size_t n = 3 + 2 * rng.Index(3);  // 3, 5, 7
    const std::size_t responders = 1 + rng.Index(n);
    std::vector<Acceptance> accepts;
    for (std::size_t i = 0; i < responders; ++i) {
      const Mid mid = static_cast<Mid>(i + 1);
      if (rng.Bernoulli(0.35)) {
        accepts.push_back(
            Crashed(mid, {1 + rng.Index(4), static_cast<Mid>(1 + rng.Index(n))}));
      } else {
        accepts.push_back(Normal(
            mid, {1 + rng.Index(4), static_cast<Mid>(1 + rng.Index(n))},
            rng.Index(10), rng.Bernoulli(0.3)));
      }
    }
    const auto result = TryFormView(accepts, n);

    // Oracle: literal transcription of §4.
    const std::size_t majority = MajorityOf(n);
    bool expect_ok = accepts.size() >= majority;
    std::size_t normal = 0;
    bool any_crashed = false;
    ViewId crash_vid;
    Viewstamp norm_max;
    bool have_normal = false;
    for (const auto& a : accepts) {
      if (a.crashed) {
        any_crashed = true;
        crash_vid = std::max(crash_vid, a.crash_viewid);
      } else {
        ++normal;
        if (!have_normal || norm_max < a.last_vs) norm_max = a.last_vs;
        have_normal = true;
      }
    }
    if (!have_normal) expect_ok = false;
    if (expect_ok && any_crashed) {
      bool c1 = normal >= majority;
      bool c2 = crash_vid < norm_max.view;
      bool c3 = false;
      if (crash_vid == norm_max.view) {
        for (const auto& a : accepts) {
          if (!a.crashed && a.was_primary && a.last_vs.view == norm_max.view) {
            c3 = true;
          }
        }
      }
      expect_ok = c1 || c2 || c3;
    }
    ASSERT_EQ(result.has_value(), expect_ok) << "iter " << iter;
    if (result) {
      // The primary holds the maximum normal viewstamp.
      bool primary_has_max = false;
      for (const auto& a : accepts) {
        if (!a.crashed && a.from == result->view.primary &&
            a.last_vs == norm_max) {
          primary_has_max = true;
        }
      }
      EXPECT_TRUE(primary_has_max);
      // The view contains every acceptor exactly once.
      EXPECT_EQ(result->view.Size(), accepts.size());
    }
  }
}

}  // namespace
}  // namespace vsr::vr
