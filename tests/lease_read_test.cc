// Backup read leases (DESIGN.md §14) and the commit-path sweep that rode
// along with them:
//  * a lease-holding backup serves single-object committed reads; an
//    expired or missing lease bounces to the primary with a hint
//  * session horizons refuse reads a backup cannot prove it covers
//  * with the option off (the default) the primary never emits a single
//    lease frame, and the lease-read machinery is fully deterministic
//  * read-only transactions skip the committing/done decision ladder (§3.7)
//  * commit decisions bound for the same participant primary coalesce into
//    one CommitMsg frame (body + piggybacked extras)
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "client/read_client.h"
#include "client/shard_router.h"
#include "tests/test_util.h"
#include "workload/catalog.h"
#include "workload/driver.h"
#include "workload/sharded_bank.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;

// Captures backup-read replies addressed to a raw test mid, so tests can
// craft BackupReadMsg frames directly and inspect the admission verdict.
struct ReplyCapture : net::FrameHandler {
  std::vector<vr::BackupReadReplyMsg> replies;
  void OnFrame(const net::Frame& f) override {
    if (static_cast<vr::MsgType>(f.type) != vr::MsgType::kBackupReadReply) {
      return;
    }
    wire::Reader r(f.payload);
    auto m = vr::BackupReadReplyMsg::Decode(r);
    if (r.ok()) replies.push_back(std::move(m));
  }
};

struct LeaseWorld {
  std::unique_ptr<Cluster> cluster;
  vr::GroupId catalog = 0;
  vr::GroupId client_g = 0;

  explicit LeaseWorld(std::uint64_t seed, bool backup_reads = true) {
    ClusterOptions opts;
    opts.seed = seed;
    opts.cohort.backup_reads = backup_reads;
    cluster = std::make_unique<Cluster>(opts);
    catalog = cluster->AddGroup("catalog", 3);
    client_g = cluster->AddGroup("client", 3);
    workload::RegisterCatalogProcs(*cluster, catalog);
    cluster->Start();
  }

  bool Put(const std::string& item, const std::string& desc) {
    core::Cohort* coord = cluster->AnyPrimary(client_g);
    if (coord == nullptr) return false;
    bool done = false, ok = false;
    coord->SpawnTransaction(
        workload::MakeCatalogPutTxn(catalog, item, desc),
        [&](vr::TxnOutcome o) {
          done = true;
          ok = o == vr::TxnOutcome::kCommitted;
        });
    const sim::Time deadline = cluster->sim().Now() + 10 * sim::kSecond;
    while (!done && cluster->sim().Now() < deadline) {
      cluster->RunFor(1 * sim::kMillisecond);
    }
    return ok;
  }

  core::Cohort* Primary() { return cluster->AnyPrimary(catalog); }
  core::Cohort* Backup() {
    for (auto* c : cluster->Cohorts(catalog)) {
      if (!c->IsActivePrimary()) return c;
    }
    return nullptr;
  }

  // Sends a raw read and runs until the reply (or 1s) passes.
  std::optional<vr::BackupReadReplyMsg> DirectRead(vr::Mid from,
                                                   ReplyCapture& capture,
                                                   vr::Mid target,
                                                   const std::string& uid,
                                                   vr::Viewstamp horizon = {}) {
    static std::uint64_t corr = 1000;
    vr::BackupReadMsg m;
    m.group = catalog;
    m.uid = uid;
    m.horizon = horizon;
    m.corr = ++corr;
    m.reply_to = from;
    cluster->network().Send(from, target,
                            static_cast<std::uint16_t>(vr::MsgType::kBackupRead),
                            vr::EncodeMsg(m));
    const sim::Time deadline = cluster->sim().Now() + 1 * sim::kSecond;
    while (cluster->sim().Now() < deadline) {
      cluster->RunFor(1 * sim::kMillisecond);
      for (auto& r : capture.replies) {
        if (r.corr == m.corr) return r;
      }
    }
    return std::nullopt;
  }
};

TEST(LeaseReads, BackupServesCommittedValueUnderLease) {
  LeaseWorld w(401);
  ASSERT_TRUE(w.cluster->RunUntilStable());
  ASSERT_TRUE(w.Put("item0", "hello"));
  // The grant riding item0's own acks captured a stable watermark from
  // *before* item0's commit record landed, so item0 is not yet provably
  // stable at the backups. A later write (past the renewal interval)
  // renews the lease with a watermark that covers it — only then do the
  // backups serve it. Fresh writes become backup-readable one renewal
  // behind, never inconsistently.
  w.cluster->RunFor(10 * sim::kMillisecond);
  ASSERT_TRUE(w.Put("item1", "later"));
  w.cluster->RunFor(20 * sim::kMillisecond);

  core::Cohort* backup = w.Backup();
  ASSERT_NE(backup, nullptr);
  ReplyCapture capture;
  const vr::Mid test_mid = w.cluster->AllocateMid();
  w.cluster->network().Register(test_mid, &capture);

  auto r = w.DirectRead(test_mid, capture, backup->mid(), "item0");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, vr::ReadStatus::kOk);
  EXPECT_EQ(std::string(r->value.begin(), r->value.end()), "hello");
  // The serving viewstamp pins the backup's current view.
  EXPECT_EQ(r->served_vs.view, backup->cur_viewid());
  EXPECT_EQ(backup->stats().backup_reads_served, 1u);
  EXPECT_GT(backup->stats().lease_grants_received, 0u);
  std::uint64_t granted = 0;
  for (auto* c : w.cluster->Cohorts(w.catalog)) {
    granted += c->buffer().stats().leases_granted;
  }
  EXPECT_GT(granted, 0u);

  // A missing object under a valid lease is an authoritative not-found.
  auto nf = w.DirectRead(test_mid, capture, backup->mid(), "no-such-item");
  ASSERT_TRUE(nf.has_value());
  EXPECT_EQ(nf->status, vr::ReadStatus::kNotFound);
}

TEST(LeaseReads, ExpiredLeaseBouncesToPrimaryWithHint) {
  LeaseWorld w(402);
  ASSERT_TRUE(w.cluster->RunUntilStable());
  ASSERT_TRUE(w.Put("item0", "hello"));
  // No writes -> no ack traffic -> no renewals: run far past the lease.
  w.cluster->RunFor(500 * sim::kMillisecond);

  core::Cohort* backup = w.Backup();
  core::Cohort* primary = w.Primary();
  ASSERT_NE(backup, nullptr);
  ASSERT_NE(primary, nullptr);
  ReplyCapture capture;
  const vr::Mid test_mid = w.cluster->AllocateMid();
  w.cluster->network().Register(test_mid, &capture);

  auto r = w.DirectRead(test_mid, capture, backup->mid(), "item0");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, vr::ReadStatus::kWrongLease);
  EXPECT_EQ(r->primary_hint, primary->mid());
  EXPECT_GT(backup->stats().reads_refused, 0u);

  // The hinted primary serves unconditionally — it IS the committed state.
  auto p = w.DirectRead(test_mid, capture, primary->mid(), "item0");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->status, vr::ReadStatus::kOk);
  EXPECT_EQ(std::string(p->value.begin(), p->value.end()), "hello");
}

TEST(LeaseReads, HorizonPastStableBoundIsRefusedTooNew) {
  LeaseWorld w(403);
  ASSERT_TRUE(w.cluster->RunUntilStable());
  ASSERT_TRUE(w.Put("item0", "hello"));
  // Second write so a renewal's watermark provably covers item0 (see
  // BackupServesCommittedValueUnderLease).
  w.cluster->RunFor(10 * sim::kMillisecond);
  ASSERT_TRUE(w.Put("item1", "later"));
  w.cluster->RunFor(20 * sim::kMillisecond);

  core::Cohort* backup = w.Backup();
  ASSERT_NE(backup, nullptr);
  ReplyCapture capture;
  const vr::Mid test_mid = w.cluster->AllocateMid();
  w.cluster->network().Register(test_mid, &capture);

  // A session claiming to have seen state far past the backup's provable
  // stable prefix must be refused — serving would let its reads run
  // backwards. kTooNew (not kWrongLease): the member keeps its lease.
  const vr::Viewstamp ahead{backup->cur_viewid(), 1u << 30};
  auto r = w.DirectRead(test_mid, capture, backup->mid(), "item0", ahead);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, vr::ReadStatus::kTooNew);

  // An honest horizon (at or below the stable prefix) is served.
  auto ok = w.DirectRead(test_mid, capture, backup->mid(), "item0");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->status, vr::ReadStatus::kOk);
}

TEST(LeaseReads, ReadClientBouncesAndFallsBackToPrimary) {
  LeaseWorld w(404);
  ASSERT_TRUE(w.cluster->RunUntilStable());
  ASSERT_TRUE(w.Put("item0", "hello"));
  // Let every lease expire so each backup bounces the router's first try.
  w.cluster->RunFor(500 * sim::kMillisecond);

  client::ReadClient rc(w.cluster->sim(), w.cluster->network(),
                        w.cluster->directory(), w.cluster->AllocateMid(),
                        w.cluster->CohortAt(w.catalog, 0).options());
  sim::TaskRegistry tasks(w.cluster->sim().scheduler());
  std::optional<std::string> got;
  bool done = false;
  tasks.Spawn([](client::ReadClient* c, vr::GroupId g, bool* fin,
                 std::optional<std::string>* out) -> sim::Task<void> {
    *out = co_await c->Read(g, "item0");
    *fin = true;
  }(&rc, w.catalog, &done, &got));
  const sim::Time deadline = w.cluster->sim().Now() + 5 * sim::kSecond;
  while (!done && w.cluster->sim().Now() < deadline) {
    w.cluster->RunFor(1 * sim::kMillisecond);
  }
  ASSERT_TRUE(done);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "hello");
  EXPECT_EQ(rc.stats().reads_ok, 1u);
  // Session horizon advanced to the serving viewstamp.
  EXPECT_GT(rc.horizon(w.catalog).ts, 0u);
}

TEST(LeaseReads, OffByDefaultEmitsNoLeaseFrames) {
  std::uint64_t lease_frames = 0;
  LeaseWorld w(405, /*backup_reads=*/false);
  w.cluster->network().set_observer([&](const net::Frame& f) {
    if (static_cast<vr::MsgType>(f.type) == vr::MsgType::kLeaseGrant) {
      ++lease_frames;
    }
  });
  ASSERT_TRUE(w.cluster->RunUntilStable());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(w.Put(workload::CatalogKey(i), "v1"));
  }
  w.cluster->RunFor(1 * sim::kSecond);
  EXPECT_EQ(lease_frames, 0u);
  for (auto* c : w.cluster->Cohorts(w.catalog)) {
    EXPECT_EQ(c->buffer().stats().leases_granted, 0u);
    EXPECT_EQ(c->stats().lease_grants_received, 0u);
    EXPECT_EQ(c->stats().backup_reads_served, 0u);
  }

  // A backup without the option refuses; the primary still serves — a
  // deployment mixing read clients with the flag off stays available.
  ReplyCapture capture;
  const vr::Mid test_mid = w.cluster->AllocateMid();
  w.cluster->network().Register(test_mid, &capture);
  auto b = w.DirectRead(test_mid, capture, w.Backup()->mid(),
                        workload::CatalogKey(0));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->status, vr::ReadStatus::kWrongLease);
  auto p = w.DirectRead(test_mid, capture, w.Primary()->mid(),
                        workload::CatalogKey(0));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->status, vr::ReadStatus::kOk);
}

// The lease/read path must not perturb simulator determinism: identical
// seeds with backup_reads on and live ReadClient traffic produce the exact
// same frame schedule, twice.
TEST(LeaseReads, LeaseReadScheduleIsDeterministic) {
  auto digest = [](std::uint64_t seed) {
    LeaseWorld w(seed);
    std::uint64_t schedule_hash = 14695981039346656037ull;
    w.cluster->network().set_observer([&](const net::Frame& f) {
      auto mix = [&](std::uint64_t v) {
        schedule_hash = (schedule_hash ^ v) * 1099511628211ull;
      };
      mix(w.cluster->sim().Now());
      mix(f.from);
      mix(f.to);
      mix(f.type);
      mix(f.payload.size());
    });
    if (!w.cluster->RunUntilStable()) return std::string("unstable");
    for (int i = 0; i < 4; ++i) {
      if (!w.Put(workload::CatalogKey(i), "v1")) return std::string("put");
    }
    client::ReadClient rc(w.cluster->sim(), w.cluster->network(),
                          w.cluster->directory(), w.cluster->AllocateMid(),
                          w.cluster->CohortAt(w.catalog, 0).options());
    sim::TaskRegistry tasks(w.cluster->sim().scheduler());
    std::uint64_t reads_done = 0;
    tasks.Spawn([](client::ReadClient* c, vr::GroupId g,
                   std::uint64_t* n) -> sim::Task<void> {
      for (int i = 0; i < 20; ++i) {
        (void)co_await c->Read(g, workload::CatalogKey(i % 4));
        ++*n;
      }
    }(&rc, w.catalog, &reads_done));
    w.cluster->RunFor(2 * sim::kSecond);
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%llu/%llx/%llu",
                  static_cast<unsigned long long>(w.cluster->sim().Now()),
                  static_cast<unsigned long long>(schedule_hash),
                  static_cast<unsigned long long>(reads_done));
    return std::string(buf);
  };
  EXPECT_EQ(digest(406), digest(406));
  EXPECT_NE(digest(406), digest(407));
}

// §3.7 satellite: a transaction whose participants are all read-only is
// already committed and forced everywhere at prepare time — the coordinator
// skips the committing record, its force, the fan-out, and the done record.
TEST(CommitPath, ReadOnlyCommitSkipsDecisionLadder) {
  Cluster cluster(ClusterOptions{.seed = 408});
  auto kv = cluster.AddGroup("kv", 3);
  auto agents = cluster.AddGroup("agents", 3);
  test::RegisterKvProcs(cluster, kv);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  ASSERT_EQ(test::RunOneCall(cluster, agents, kv, "put", "x=1"),
            vr::TxnOutcome::kCommitted);

  auto skipped = [&] {
    std::uint64_t n = 0;
    for (auto* c : cluster.Cohorts(agents)) {
      n += c->stats().read_only_commits_skipped;
    }
    return n;
  };
  const std::uint64_t before = skipped();
  ASSERT_EQ(test::RunOneCall(cluster, agents, kv, "get", "x"),
            vr::TxnOutcome::kCommitted);
  EXPECT_EQ(skipped(), before + 1);
  // The write above did NOT skip (its participant held write locks).
  EXPECT_GE(before, 0u);

  // The value is still there and writable afterwards — skipping the ladder
  // released nothing it shouldn't have.
  ASSERT_EQ(test::RunOneCall(cluster, agents, kv, "put", "x=2"),
            vr::TxnOutcome::kCommitted);
  cluster.RunFor(500 * sim::kMillisecond);
  EXPECT_EQ(test::CommittedValue(cluster, kv, "x"), "2");
}

// Commit-decision piggybacking satellite: concurrent cross-shard transfers
// produce several decisions bound for the same participant primary inside
// one coalesce window; they ride one CommitMsg as extras and every one is
// individually acked and applied.
TEST(CommitPath, SiblingDecisionsPiggybackOnOneFrame) {
  ClusterOptions opts;
  opts.seed = 409;
  // Widen the coalesce window so the 8-deep closed loop reliably overlaps
  // decisions for the same destination.
  opts.cohort.decision_coalesce_delay = 2 * sim::kMillisecond;
  Cluster cluster(opts);
  auto bank = workload::SetupShardedBank(cluster, 2, 3, 12);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  ASSERT_EQ(workload::FundShardedAccounts(cluster, bank, 1000), 12);

  client::ShardRouter router(cluster.directory());
  sim::Rng rng(7);
  workload::DriverOptions dopts;
  dopts.total_txns = 60;
  dopts.max_inflight = 8;
  dopts.retries_per_txn = 10;
  workload::ClosedLoopDriver driver(
      cluster, bank.client_group,
      [&](std::uint64_t) {
        const int from = static_cast<int>(rng.Index(6));
        const int to = 6 + static_cast<int>(rng.Index(6));
        return workload::MakeShardedTransferTxn(
            router, workload::ShardAccountName(from),
            workload::ShardAccountName(to), 1);
      },
      dopts);
  ASSERT_TRUE(driver.Run());
  cluster.RunFor(2 * sim::kSecond);

  std::uint64_t piggybacked = 0;
  for (auto* c : cluster.Cohorts(bank.client_group)) {
    piggybacked += c->stats().decision_piggybacked;
  }
  EXPECT_GT(piggybacked, 0u);

  // Conservation: every piggybacked decision was applied exactly once.
  long long sum = 0;
  for (int i = 0; i < 12; ++i) {
    const long long bal = workload::ShardedCommittedBalance(
        cluster, workload::ShardAccountName(i));
    ASSERT_GE(bal, 0) << "account " << i;
    sum += bal;
  }
  EXPECT_EQ(sum, 12 * 1000);
}

// CHECK_SOAK=1 variant: readers stay serializable while primaries crash and
// views change underneath them, for many rounds.
TEST(LeaseSoak, ReadsStaySerializableAcrossCrashes) {
  const char* soak_env = std::getenv("CHECK_SOAK");
  const bool long_run = soak_env != nullptr && soak_env[0] == '1';
  const int rounds = long_run ? 12 : 2;

  LeaseWorld w(410);
  ASSERT_TRUE(w.cluster->RunUntilStable());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(w.Put(workload::CatalogKey(i), "v1"));
  }

  client::ReadClient rc(w.cluster->sim(), w.cluster->network(),
                        w.cluster->directory(), w.cluster->AllocateMid(),
                        w.cluster->CohortAt(w.catalog, 0).options());
  sim::TaskRegistry tasks(w.cluster->sim().scheduler());
  bool stop = false;
  std::uint64_t regressions = 0, reads = 0;
  std::map<std::string, long long> last_version;
  tasks.Spawn([](client::ReadClient* c, vr::GroupId g, bool* stop_flag,
                 std::map<std::string, long long>* last, std::uint64_t* regress,
                 std::uint64_t* count) -> sim::Task<void> {
    sim::Rng rng(4100);
    while (!*stop_flag) {
      const std::string item =
          workload::CatalogKey(static_cast<int>(rng.Index(8)));
      auto v = co_await c->Read(g, item);
      if (!v || v->size() < 2) continue;
      ++*count;
      const long long ver = std::stoll(v->substr(1));
      long long& prev = (*last)[item];
      if (ver < prev) ++*regress;
      prev = std::max(prev, ver);
    }
  }(&rc, w.catalog, &stop, &last_version, &regressions, &reads));

  sim::Rng rng(411);
  for (int round = 0; round < rounds; ++round) {
    // Writes renew leases and advance versions.
    for (int i = 0; i < 6; ++i) {
      core::Cohort* coord = w.cluster->AnyPrimary(w.client_g);
      if (coord == nullptr) break;
      bool done = false;
      coord->SpawnTransaction(
          workload::MakeCatalogBumpTxn(
              w.catalog, workload::CatalogKey(static_cast<int>(rng.Index(8)))),
          [&](vr::TxnOutcome) { done = true; });
      const sim::Time deadline = w.cluster->sim().Now() + 5 * sim::kSecond;
      while (!done && w.cluster->sim().Now() < deadline) {
        w.cluster->RunFor(1 * sim::kMillisecond);
      }
    }
    // Crash the catalog primary mid-traffic; the view change revokes every
    // lease before the new view serves anything.
    core::Cohort* primary = w.Primary();
    if (primary != nullptr) {
      const std::size_t idx = [&] {
        auto cohorts = w.cluster->Cohorts(w.catalog);
        for (std::size_t i = 0; i < cohorts.size(); ++i) {
          if (cohorts[i] == primary) return i;
        }
        return std::size_t{0};
      }();
      w.cluster->Crash(w.catalog, idx);
      w.cluster->RunFor(2 * sim::kSecond);
      w.cluster->Recover(w.catalog, idx);
      ASSERT_TRUE(w.cluster->RunUntilStable());
    }
  }
  stop = true;
  w.cluster->RunFor(200 * sim::kMillisecond);
  EXPECT_EQ(regressions, 0u);
  EXPECT_GT(reads, 0u);
}

}  // namespace
}  // namespace vsr
