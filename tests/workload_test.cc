// Workload-level tests: money conservation under transfers, atomic
// multi-group bookings, the closed-loop driver, and behaviour under faults.
#include <gtest/gtest.h>

#include "check/invariants.h"
#include "tests/test_util.h"
#include "workload/airline.h"
#include "workload/bank.h"
#include "workload/driver.h"
#include "workload/failures.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;

TEST(Bank, TransfersConserveMoney) {
  Cluster cluster(ClusterOptions{.seed = 31});
  auto bank = cluster.AddGroup("bank", 3);
  auto client_g = cluster.AddGroup("client", 3);
  workload::RegisterBankProcs(cluster, bank);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  // Open 4 accounts with 100 each.
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(test::RunOneCall(cluster, client_g, bank, "open",
                               "a" + std::to_string(i) + "=100"),
              vr::TxnOutcome::kCommitted);
  }

  sim::Rng rng(5);
  workload::ClosedLoopDriver driver(
      cluster, client_g,
      [&](std::uint64_t i) {
        const int from = static_cast<int>((i + rng.Index(4)) % 4);
        const int to = (from + 1 + static_cast<int>(rng.Index(3))) % 4;
        return workload::MakeTransferTxn(bank, "a" + std::to_string(from),
                                         bank, "a" + std::to_string(to), 5);
      },
      workload::DriverOptions{.total_txns = 40, .max_inflight = 2});
  ASSERT_TRUE(driver.Run());
  cluster.RunFor(2 * sim::kSecond);

  EXPECT_EQ(workload::CommittedBankTotal(cluster, bank, 4), 400);
  EXPECT_GT(driver.accounting().committed, 0u);
}

TEST(Bank, OverdraftAborts) {
  Cluster cluster(ClusterOptions{.seed = 32});
  auto bank = cluster.AddGroup("bank", 3);
  auto client_g = cluster.AddGroup("client", 3);
  workload::RegisterBankProcs(cluster, bank);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  ASSERT_EQ(test::RunOneCall(cluster, client_g, bank, "open", "a0=10"),
            vr::TxnOutcome::kCommitted);

  core::Cohort* primary = cluster.AnyPrimary(client_g);
  vr::TxnOutcome outcome = vr::TxnOutcome::kUnknown;
  bool done = false;
  primary->SpawnTransaction(
      workload::MakeTransferTxn(bank, "a0", bank, "a1", 50),
      [&](vr::TxnOutcome o) {
        outcome = o;
        done = true;
      });
  while (!done) cluster.RunFor(10 * sim::kMillisecond);
  EXPECT_EQ(outcome, vr::TxnOutcome::kAborted);
  cluster.RunFor(500 * sim::kMillisecond);
  EXPECT_EQ(workload::CommittedBankTotal(cluster, bank, 2), 10);
}

TEST(Bank, CrossGroupTransferIsAtomicUnderPrimaryCrash) {
  Cluster cluster(ClusterOptions{.seed = 33});
  auto bank_a = cluster.AddGroup("bank_a", 3);
  auto bank_b = cluster.AddGroup("bank_b", 3);
  auto client_g = cluster.AddGroup("client", 3);
  workload::RegisterBankProcs(cluster, bank_a);
  workload::RegisterBankProcs(cluster, bank_b);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  ASSERT_EQ(test::RunOneCall(cluster, client_g, bank_a, "open", "a0=1000"),
            vr::TxnOutcome::kCommitted);
  ASSERT_EQ(test::RunOneCall(cluster, client_g, bank_b, "open", "a0=1000"),
            vr::TxnOutcome::kCommitted);

  // Run transfers while crashing each bank's primary once mid-stream.
  workload::ClosedLoopDriver driver(
      cluster, client_g,
      [&](std::uint64_t) {
        return workload::MakeTransferTxn(bank_a, "a0", bank_b, "a0", 1);
      },
      workload::DriverOptions{.total_txns = 30, .max_inflight = 2});
  bool crashed = false;
  cluster.sim().scheduler().After(60 * sim::kMillisecond, [&] {
    for (auto* c : cluster.Cohorts(bank_b)) {
      if (c->IsActivePrimary()) {
        c->Crash();
        crashed = true;
        break;
      }
    }
  });
  ASSERT_TRUE(driver.Run());
  EXPECT_TRUE(crashed);
  // Recover and settle so blocked participants resolve via queries.
  for (std::size_t i = 0; i < 3; ++i) {
    if (cluster.CohortAt(bank_b, i).status() == core::Status::kCrashed) {
      cluster.Recover(bank_b, i);
    }
  }
  ASSERT_TRUE(cluster.RunUntilStable());
  cluster.RunFor(5 * sim::kSecond);

  // Conservation: whatever committed, total money is unchanged — unless some
  // outcome is unknown, in which case the range widens by that much.
  const long long total = workload::CommittedBankTotal(cluster, bank_a, 1) +
                          workload::CommittedBankTotal(cluster, bank_b, 1);
  EXPECT_EQ(total, 2000);
}

TEST(Airline, NoOverselling) {
  Cluster cluster(ClusterOptions{.seed = 34});
  auto region = cluster.AddGroup("flights", 3);
  auto client_g = cluster.AddGroup("client", 3);
  workload::RegisterAirlineProcs(cluster, region);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  ASSERT_EQ(test::RunOneCall(cluster, client_g, region, "add_flight", "F1=5"),
            vr::TxnOutcome::kCommitted);

  workload::ClosedLoopDriver driver(
      cluster, client_g,
      [&](std::uint64_t) {
        return workload::MakeBookingTxn({{region, "F1", 1}});
      },
      workload::DriverOptions{
          .total_txns = 12, .max_inflight = 3, .retries_per_txn = 5});
  ASSERT_TRUE(driver.Run());
  cluster.RunFor(2 * sim::kSecond);

  // Exactly 5 bookings can commit; the rest abort with "sold out".
  // (Lock-contention aborts are retried by the driver, as a real booking
  // frontend would.)
  EXPECT_EQ(driver.accounting().committed, 5u);
  EXPECT_EQ(workload::CommittedSeats(cluster, region, "F1"), 0);
}

TEST(Airline, MultiLegItineraryIsAllOrNothing) {
  Cluster cluster(ClusterOptions{.seed = 35});
  auto east = cluster.AddGroup("east", 3);
  auto west = cluster.AddGroup("west", 3);
  auto client_g = cluster.AddGroup("client", 3);
  workload::RegisterAirlineProcs(cluster, east);
  workload::RegisterAirlineProcs(cluster, west);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  ASSERT_EQ(test::RunOneCall(cluster, client_g, east, "add_flight", "E1=3"),
            vr::TxnOutcome::kCommitted);
  ASSERT_EQ(test::RunOneCall(cluster, client_g, west, "add_flight", "W1=1"),
            vr::TxnOutcome::kCommitted);

  // Three two-leg itineraries compete for W1's single seat: exactly one can
  // commit, and losers must not leave a dangling E1 reservation.
  workload::ClosedLoopDriver driver(
      cluster, client_g,
      [&](std::uint64_t) {
        return workload::MakeBookingTxn({{east, "E1", 1}, {west, "W1", 1}});
      },
      workload::DriverOptions{.total_txns = 3, .max_inflight = 1});
  ASSERT_TRUE(driver.Run());
  cluster.RunFor(2 * sim::kSecond);

  EXPECT_EQ(driver.accounting().committed, 1u);
  EXPECT_EQ(workload::CommittedSeats(cluster, west, "W1"), 0);
  EXPECT_EQ(workload::CommittedSeats(cluster, east, "E1"), 2);
}

TEST(FailureSchedule, ArmsAndFires) {
  Cluster cluster(ClusterOptions{.seed = 36});
  auto g = cluster.AddGroup("kv", 3);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  workload::ArmFailureSchedule(
      cluster, {workload::FailureEvent::Crash(2 * sim::kSecond, g, 0),
                workload::FailureEvent::Recover(4 * sim::kSecond, g, 0)});
  cluster.RunFor(3 * sim::kSecond);
  EXPECT_EQ(cluster.CohortAt(g, 0).status(), core::Status::kCrashed);
  cluster.RunFor(2 * sim::kSecond);
  EXPECT_NE(cluster.CohortAt(g, 0).status(), core::Status::kCrashed);
}

TEST(FailureSchedule, RandomScheduleIsDeterministic) {
  sim::Rng r1(9), r2(9);
  auto s1 = workload::RandomCrashSchedule(r1, 1, 3, 60 * sim::kSecond, 10, 2);
  auto s2 = workload::RandomCrashSchedule(r2, 1, 3, 60 * sim::kSecond, 10, 2);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].at, s2[i].at);
    EXPECT_EQ(static_cast<int>(s1[i].kind), static_cast<int>(s2[i].kind));
  }
}

}  // namespace
}  // namespace vsr
