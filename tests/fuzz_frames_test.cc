// Adversarial-garbage robustness: a rogue node sprays random and
// near-valid-but-corrupt frames at every cohort while a normal workload
// runs. Nothing may crash, no invariant may break, and the workload must
// still make progress. (Not byzantine tolerance — the paper assumes
// non-byzantine faults — but decoding must never trust the network.)
#include <gtest/gtest.h>

#include "check/invariants.h"
#include "tests/test_util.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;

class FrameFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, FrameFuzzTest, ::testing::Values(71, 72, 73));

TEST_P(FrameFuzzTest, GarbageFramesDoNotDisruptSafety) {
  Cluster cluster(ClusterOptions{.seed = GetParam()});
  auto kv = cluster.AddGroup("kv", 3);
  auto agents = cluster.AddGroup("agents", 3);
  test::RegisterKvProcs(cluster, kv);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  sim::Rng rng(GetParam() * 40961);
  const net::NodeId rogue = cluster.AllocateMid();
  std::vector<net::NodeId> targets;
  for (auto* c : cluster.Cohorts(kv)) targets.push_back(c->mid());
  for (auto* c : cluster.Cohorts(agents)) targets.push_back(c->mid());

  int committed = 0;
  for (int round = 0; round < 30; ++round) {
    // Spray garbage: random type tags (valid and invalid), random payloads,
    // and truncated prefixes of a genuine message.
    for (int i = 0; i < 20; ++i) {
      const net::NodeId to = targets[rng.Index(targets.size())];
      std::vector<std::uint8_t> payload(rng.Index(96));
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.Next());
      const std::uint16_t type =
          rng.Bernoulli(0.5) ? static_cast<std::uint16_t>(1 + rng.Index(26))
                             : static_cast<std::uint16_t>(rng.Next());
      cluster.network().Send(rogue, to, type, payload);
    }
    // Also spray structurally valid but semantically bogus protocol
    // messages (fake invitations with huge viewids are the nastiest).
    if (rng.Bernoulli(0.3)) {
      vr::InviteMsg evil;
      evil.group = kv;
      evil.new_viewid = {rng.Index(3), static_cast<vr::Mid>(rng.Index(5))};
      evil.from = rogue;
      cluster.network().Send(rogue, targets[rng.Index(targets.size())],
                             static_cast<std::uint16_t>(vr::MsgType::kInvite),
                             vr::EncodeMsg(evil));
    }
    // Normal work continues in between.
    if (test::RunOneCallWithRetry(cluster, agents, kv, "add", "ctr=1") ==
        vr::TxnOutcome::kCommitted) {
      ++committed;
    }
    for (const std::string& v : check::CheckInstant(cluster, kv)) {
      ADD_FAILURE() << "round " << round << ": " << v;
    }
  }
  cluster.RunFor(2 * sim::kSecond);
  EXPECT_GT(committed, 20);  // progress despite the garbage
  EXPECT_EQ(test::CommittedValue(cluster, kv, "ctr"),
            std::to_string(committed));
  for (const std::string& v : check::CheckQuiescent(cluster, kv)) {
    ADD_FAILURE() << v;
  }
}

}  // namespace
}  // namespace vsr
