// Adversarial-garbage robustness: a rogue node sprays random and
// near-valid-but-corrupt frames at every cohort while a normal workload
// runs. Nothing may crash, no invariant may break, and the workload must
// still make progress. (Not byzantine tolerance — the paper assumes
// non-byzantine faults — but decoding must never trust the network.)
#include <gtest/gtest.h>

#include "check/invariants.h"
#include "tests/test_util.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;

class FrameFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, FrameFuzzTest, ::testing::Values(71, 72, 73));

TEST_P(FrameFuzzTest, GarbageFramesDoNotDisruptSafety) {
  Cluster cluster(ClusterOptions{.seed = GetParam()});
  auto kv = cluster.AddGroup("kv", 3);
  auto agents = cluster.AddGroup("agents", 3);
  test::RegisterKvProcs(cluster, kv);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  sim::Rng rng(GetParam() * 40961);
  const net::NodeId rogue = cluster.AllocateMid();
  std::vector<net::NodeId> targets;
  for (auto* c : cluster.Cohorts(kv)) targets.push_back(c->mid());
  for (auto* c : cluster.Cohorts(agents)) targets.push_back(c->mid());

  int committed = 0;
  for (int round = 0; round < 30; ++round) {
    // Spray garbage: random type tags (valid and invalid), random payloads,
    // and truncated prefixes of a genuine message.
    for (int i = 0; i < 20; ++i) {
      const net::NodeId to = targets[rng.Index(targets.size())];
      std::vector<std::uint8_t> payload(rng.Index(96));
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.Next());
      const std::uint16_t type =
          rng.Bernoulli(0.5) ? static_cast<std::uint16_t>(1 + rng.Index(26))
                             : static_cast<std::uint16_t>(rng.Next());
      cluster.network().Send(rogue, to, type, payload);
    }
    // Also spray structurally valid but semantically bogus protocol
    // messages (fake invitations with huge viewids are the nastiest).
    if (rng.Bernoulli(0.3)) {
      vr::InviteMsg evil;
      evil.group = kv;
      evil.new_viewid = {rng.Index(3), static_cast<vr::Mid>(rng.Index(5))};
      evil.from = rogue;
      cluster.network().Send(rogue, targets[rng.Index(targets.size())],
                             static_cast<std::uint16_t>(vr::MsgType::kInvite),
                             vr::EncodeMsg(evil));
    }
    // Normal work continues in between.
    if (test::RunOneCallWithRetry(cluster, agents, kv, "add", "ctr=1") ==
        vr::TxnOutcome::kCommitted) {
      ++committed;
    }
    for (const std::string& v : check::CheckInstant(cluster, kv)) {
      ADD_FAILURE() << "round " << round << ": " << v;
    }
  }
  cluster.RunFor(2 * sim::kSecond);
  EXPECT_GT(committed, 20);  // progress despite the garbage
  EXPECT_EQ(test::CommittedValue(cluster, kv, "ctr"),
            std::to_string(committed));
  for (const std::string& v : check::CheckQuiescent(cluster, kv)) {
    ADD_FAILURE() << v;
  }
}

// Same adversarial spray, but with the replication stream compressed
// (DESIGN.md §8) — the decode path now includes the stateful batch codec, so
// this also mutates REAL compressed frames captured off the wire: bit-flipped,
// truncated, and replayed copies with forged stream headers. Corruption that
// slips past the frame CRC must be rejected by the codec's structural checks,
// and duplicates/replays must come out kStale/kUnsynced — never applied twice.
class CompressedFrameFuzzTest : public ::testing::TestWithParam<std::uint64_t> {
};
INSTANTIATE_TEST_SUITE_P(Seeds, CompressedFrameFuzzTest,
                         ::testing::Values(81, 82, 83));

TEST_P(CompressedFrameFuzzTest, GarbageAndMutatedCompressedFramesAreRejected) {
  ClusterOptions opts{.seed = GetParam()};
  opts.cohort.buffer.compression = vr::CompressionMode::kDict;
  Cluster cluster(opts);
  auto kv = cluster.AddGroup("kv", 3);
  auto agents = cluster.AddGroup("agents", 3);
  test::RegisterKvProcs(cluster, kv);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  sim::Rng rng(GetParam() * 52711);
  const net::NodeId rogue = cluster.AllocateMid();
  std::vector<net::NodeId> targets;
  for (auto* c : cluster.Cohorts(kv)) targets.push_back(c->mid());

  // Capture genuine compressed batch frames as mutation fodder.
  std::vector<std::vector<std::uint8_t>> captured;
  cluster.network().set_observer([&](const net::Frame& f) {
    if (f.type == static_cast<std::uint16_t>(vr::MsgType::kBufferBatch) &&
        captured.size() < 64) {
      captured.push_back(f.payload);
    }
  });

  int committed = 0;
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 20; ++i) {
      const net::NodeId to = targets[rng.Index(targets.size())];
      std::vector<std::uint8_t> payload;
      if (!captured.empty() && rng.Bernoulli(0.6)) {
        // Mutate a real compressed frame: flip bytes, truncate, or replay
        // verbatim (a replay exercises the stale/unsynced paths).
        payload = captured[rng.Index(captured.size())];
        if (rng.Bernoulli(0.4) && !payload.empty()) {
          payload[rng.Index(payload.size())] ^=
              static_cast<std::uint8_t>(1 + rng.Index(255));
        }
        if (rng.Bernoulli(0.3)) {
          payload.resize(rng.Index(payload.size() + 1));
        }
      } else {
        payload.resize(rng.Index(96));
        for (auto& b : payload) b = static_cast<std::uint8_t>(rng.Next());
      }
      cluster.network().Send(
          rogue, to, static_cast<std::uint16_t>(vr::MsgType::kBufferBatch),
          payload);
    }
    if (test::RunOneCallWithRetry(cluster, agents, kv, "add", "ctr=1") ==
        vr::TxnOutcome::kCommitted) {
      ++committed;
    }
    for (const std::string& v : check::CheckInstant(cluster, kv)) {
      ADD_FAILURE() << "round " << round << ": " << v;
    }
  }
  cluster.network().set_observer(nullptr);
  cluster.RunFor(2 * sim::kSecond);
  EXPECT_FALSE(captured.empty());  // compression was actually in use
  EXPECT_GT(committed, 20);
  EXPECT_EQ(test::CommittedValue(cluster, kv, "ctr"),
            std::to_string(committed));
  for (const std::string& v : check::CheckQuiescent(cluster, kv)) {
    ADD_FAILURE() << v;
  }
}

}  // namespace
}  // namespace vsr
