// Tests for §3.6 (nested transactions / subactions) and the design-choice
// ablations DESIGN.md calls out.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;
using test::RegisterKvProcs;

std::size_t PrimaryIndex(Cluster& cluster, vr::GroupId g) {
  auto cohorts = cluster.Cohorts(g);
  for (std::size_t i = 0; i < cohorts.size(); ++i) {
    if (cohorts[i]->IsActivePrimary()) return i;
  }
  return cohorts.size();
}

// Crash the server primary while a transaction's call is executing there
// (the procedure takes ~50ms of simulated work, so the crash interrupts it:
// no reply, no replicated completed-call event). Returns the outcome.
vr::TxnOutcome CrashServerMidCall(std::uint64_t seed, bool nested_retry) {
  ClusterOptions opts;
  opts.seed = seed;
  opts.cohort.nested_call_retry = nested_retry;
  Cluster cluster(opts);
  auto server = cluster.AddGroup("kv", 3);
  auto client_g = cluster.AddGroup("client", 3);
  sim::Scheduler* sched = &cluster.sim().scheduler();
  cluster.RegisterProc(
      server, "slow_put",
      [sched](core::ProcContext& ctx) -> sim::Task<std::vector<std::uint8_t>> {
        co_await sim::Sleep(*sched, 50 * sim::kMillisecond);  // "work"
        std::string a = ctx.ArgsAsString();
        auto eq = a.find('=');
        co_await ctx.Write(a.substr(0, eq), a.substr(eq + 1));
        co_return test::Bytes("ok");
      });
  cluster.Start();
  if (!cluster.RunUntilStable()) return vr::TxnOutcome::kUnknown;

  core::Cohort* primary = cluster.AnyPrimary(client_g);
  vr::TxnOutcome outcome = vr::TxnOutcome::kUnknown;
  bool done = false;
  primary->SpawnTransaction(
      [server](core::TxnHandle& h) -> sim::Task<bool> {
        co_await h.Call(server, "slow_put", std::string("s=alpha"));
        co_return true;
      },
      [&](vr::TxnOutcome o) {
        outcome = o;
        done = true;
      });
  // Let the call reach the server primary, then kill it mid-execution.
  cluster.RunFor(10 * sim::kMillisecond);
  const std::size_t p = PrimaryIndex(cluster, server);
  if (p < 3) cluster.Crash(server, p);

  const sim::Time deadline = cluster.sim().Now() + 30 * sim::kSecond;
  while (!done && cluster.sim().Now() < deadline) {
    cluster.RunFor(10 * sim::kMillisecond);
  }
  return outcome;
}

TEST(Subactions, WithoutRetryMidCallCrashAbortsTxn) {
  // Fig. 2 step 3: "If there is no reply, abort the transaction" — the whole
  // transaction is lost (§3.6's motivating problem).
  EXPECT_EQ(CrashServerMidCall(61, /*nested_retry=*/false),
            vr::TxnOutcome::kAborted);
}

TEST(Subactions, WithRetryMidCallCrashCommits) {
  // §3.6: "we can abort just the subaction, and then do the call again as a
  // new subaction" — after the view change the retry lands at the new
  // primary and the transaction commits.
  EXPECT_EQ(CrashServerMidCall(61, /*nested_retry=*/true),
            vr::TxnOutcome::kCommitted);
}

TEST(Subactions, DeadAttemptEffectsNeverCommit) {
  // An executed-but-unacknowledged attempt must not leak its tentative
  // write into the committed state when the retry commits.
  ClusterOptions opts;
  opts.seed = 62;
  opts.cohort.nested_call_retry = true;
  Cluster cluster(opts);
  auto server = cluster.AddGroup("kv", 3);
  auto client_g = cluster.AddGroup("client", 3);
  // Proc writes "<arg>#<unique-per-execution>" so the two executions are
  // distinguishable.
  int executions = 0;
  sim::Scheduler* sched = &cluster.sim().scheduler();
  cluster.RegisterProc(
      server, "stamp",
      [&executions, sched](core::ProcContext& ctx)
          -> sim::Task<std::vector<std::uint8_t>> {
        ++executions;
        std::string v = ctx.ArgsAsString() + "#" + std::to_string(executions);
        co_await ctx.Write("obj", v);
        co_await sim::Sleep(*sched, 30 * sim::kMillisecond);  // "work"
        co_return test::Bytes(v);
      });
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  core::Cohort* primary = cluster.AnyPrimary(client_g);
  std::string returned;
  vr::TxnOutcome outcome = vr::TxnOutcome::kUnknown;
  bool done = false;
  primary->SpawnTransaction(
      [&](core::TxnHandle& h) -> sim::Task<bool> {
        auto r = co_await h.Call(server, "stamp", std::string("x"));
        returned = test::Str(r);
        co_return true;
      },
      [&](vr::TxnOutcome o) {
        outcome = o;
        done = true;
      });
  // Crash the server primary mid-call, forcing a subaction retry at the new
  // primary; the first attempt wrote its tentative but never replied.
  cluster.RunFor(10 * sim::kMillisecond);
  const std::size_t p = PrimaryIndex(cluster, server);
  ASSERT_LT(p, 3u);
  cluster.Crash(server, p);
  while (!done) cluster.RunFor(10 * sim::kMillisecond);

  ASSERT_EQ(outcome, vr::TxnOutcome::kCommitted);
  cluster.RunFor(3 * sim::kSecond);
  // Whatever committed must be exactly the value whose reply the client saw.
  core::Cohort* sp = cluster.AnyPrimary(server);
  ASSERT_NE(sp, nullptr);
  EXPECT_EQ(sp->objects().ReadCommitted("obj").value_or(""), returned);
}

TEST(Subactions, DifferentSeedAlsoCommits) {
  ASSERT_EQ(CrashServerMidCall(63, true), vr::TxnOutcome::kCommitted);
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

TEST(Ablation, ForcedCallsSurviveEvenTheTightestCrashWindow) {
  // §6: forcing completed-call records before replying removes view-change
  // aborts entirely — any call whose reply the client saw is majority-known.
  ClusterOptions opts;
  opts.seed = 67;
  opts.cohort.force_calls_before_reply = true;
  Cluster cluster(opts);
  auto server = cluster.AddGroup("kv", 3);
  auto client_g = cluster.AddGroup("client", 3);
  RegisterKvProcs(cluster, server);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  // The transaction thinks past the crash before committing; with forced
  // calls the crash can land at ANY point after the reply and the commit
  // still succeeds.
  sim::Scheduler* sched = &cluster.sim().scheduler();
  vr::TxnOutcome outcome = vr::TxnOutcome::kUnknown;
  bool done = false;
  cluster.AnyPrimary(client_g)->SpawnTransaction(
      [server, sched](core::TxnHandle& h) -> sim::Task<bool> {
        co_await h.Call(server, "put", std::string("f=1"));
        co_await sim::Sleep(*sched, 2 * sim::kSecond);
        co_return true;
      },
      [&](vr::TxnOutcome o) {
        outcome = o;
        done = true;
      });
  // Crash the primary the instant the reply could have been sent.
  cluster.RunFor(2 * sim::kMillisecond);
  auto cohorts = cluster.Cohorts(server);
  for (std::size_t i = 0; i < cohorts.size(); ++i) {
    if (cohorts[i]->IsActivePrimary()) {
      cluster.Crash(server, i);
      break;
    }
  }
  const sim::Time deadline = cluster.sim().Now() + 30 * sim::kSecond;
  while (!done && cluster.sim().Now() < deadline) {
    cluster.RunFor(10 * sim::kMillisecond);
  }
  EXPECT_EQ(outcome, vr::TxnOutcome::kCommitted);
  cluster.RunFor(2 * sim::kSecond);
  EXPECT_EQ(test::CommittedValue(cluster, server, "f"), "1");
}

TEST(Ablation, LazyBackupApplyBehavesLikeEagerAfterPromotion) {
  for (bool eager : {true, false}) {
    ClusterOptions opts;
    opts.seed = 64;
    opts.cohort.eager_backup_apply = eager;
    Cluster cluster(opts);
    auto server = cluster.AddGroup("kv", 3);
    auto client_g = cluster.AddGroup("client", 3);
    RegisterKvProcs(cluster, server);
    cluster.Start();
    ASSERT_TRUE(cluster.RunUntilStable());

    ASSERT_EQ(test::RunOneCall(cluster, client_g, server, "put", "a=1"),
              vr::TxnOutcome::kCommitted);
    cluster.RunFor(300 * sim::kMillisecond);
    cluster.Crash(server, PrimaryIndex(cluster, server));
    ASSERT_TRUE(cluster.RunUntilStable());
    // The promoted backup folded its stored records (lazy) or already had
    // them applied (eager); committed state is identical either way.
    EXPECT_EQ(test::CommittedValue(cluster, server, "a"), "1")
        << "eager=" << eager;
    EXPECT_EQ(test::RunOneCallWithRetry(cluster, client_g, server, "put",
                                        "b=2"),
              vr::TxnOutcome::kCommitted)
        << "eager=" << eager;
  }
}

TEST(Ablation, UnilateralTweakAvoidsFullViewChange) {
  ClusterOptions opts;
  opts.seed = 65;
  opts.cohort.unilateral_view_tweaks = true;
  Cluster cluster(opts);
  auto server = cluster.AddGroup("kv", 5);
  auto client_g = cluster.AddGroup("client", 3);
  RegisterKvProcs(cluster, server);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  const std::size_t primary = PrimaryIndex(cluster, server);
  const std::size_t backup = (primary + 1) % 5;
  auto& p = cluster.CohortAt(server, primary);
  const std::uint64_t formations_before = p.stats().views_formed_as_manager;

  // §4.1: "an active primary notices that it cannot communicate with a
  // backup, but it still has a sub-majority of other backups. In this case,
  // the primary can unilaterally exclude the inaccessible backup."
  cluster.Crash(server, backup);
  ASSERT_TRUE(cluster.RunUntilStable());
  cluster.RunFor(1 * sim::kSecond);

  EXPECT_TRUE(p.IsActivePrimary());  // same primary, no handoff
  EXPECT_GE(p.stats().unilateral_tweaks, 1u);
  EXPECT_FALSE(p.cur_view().Contains(cluster.CohortAt(server, backup).mid()));
  // No full invitation round was run by the primary.
  EXPECT_EQ(p.stats().views_formed_as_manager, formations_before);

  // And the recovered backup is re-added unilaterally.
  cluster.Recover(server, backup);
  ASSERT_TRUE(cluster.RunUntilStable());
  cluster.RunFor(2 * sim::kSecond);
  EXPECT_EQ(test::RunOneCallWithRetry(cluster, client_g, server, "put", "k=1"),
            vr::TxnOutcome::kCommitted);
}

TEST(Ablation, ViewidDurabilityGatesRecoveryHonesty) {
  // With write_viewid_durably=false a recovered cohort reports viewid 0 in
  // its crash-acceptance. The view still forms here (the survivor is the old
  // primary — condition 3), but E9 shows the catastrophe-probability cost.
  ClusterOptions opts;
  opts.seed = 66;
  opts.cohort.write_viewid_durably = false;
  Cluster cluster(opts);
  auto g = cluster.AddGroup("kv", 3);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  const std::size_t primary = PrimaryIndex(cluster, g);
  for (std::size_t i = 0; i < 3; ++i) {
    if (i != primary) cluster.Crash(g, i);
  }
  cluster.RunFor(300 * sim::kMillisecond);
  for (std::size_t i = 0; i < 3; ++i) {
    if (i != primary) cluster.Recover(g, i);
  }
  EXPECT_TRUE(cluster.RunUntilStable());
}

}  // namespace
}  // namespace vsr
