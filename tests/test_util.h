// Shared helpers for the test suites.
#pragma once

#include <string>
#include <vector>

#include "client/cluster.h"
#include "core/cohort.h"

namespace vsr::test {

inline std::vector<std::uint8_t> Bytes(const std::string& s) {
  return {s.begin(), s.end()};
}
inline std::string Str(const std::vector<std::uint8_t>& b) {
  return {b.begin(), b.end()};
}

// Registers a tiny key-value module on `group`:
//   put  "key=value" -> "ok"
//   get  "key"       -> value ("" if absent)
//   add  "key=delta" -> new numeric value (read-modify-write)
inline void RegisterKvProcs(client::Cluster& cluster, vr::GroupId group) {
  cluster.RegisterProc(group, "put",
                       [](core::ProcContext& ctx)
                           -> sim::Task<std::vector<std::uint8_t>> {
                         std::string a = ctx.ArgsAsString();
                         auto eq = a.find('=');
                         co_await ctx.Write(a.substr(0, eq), a.substr(eq + 1));
                         co_return Bytes("ok");
                       });
  cluster.RegisterProc(group, "get",
                       [](core::ProcContext& ctx)
                           -> sim::Task<std::vector<std::uint8_t>> {
                         auto v = co_await ctx.Read(ctx.ArgsAsString());
                         co_return Bytes(v.value_or(""));
                       });
  cluster.RegisterProc(
      group, "add",
      [](core::ProcContext& ctx) -> sim::Task<std::vector<std::uint8_t>> {
        std::string a = ctx.ArgsAsString();
        auto eq = a.find('=');
        std::string key = a.substr(0, eq);
        long long delta = std::stoll(a.substr(eq + 1));
        auto v = co_await ctx.ReadForUpdate(key);
        long long cur = v && !v->empty() ? std::stoll(*v) : 0;
        co_await ctx.Write(key, std::to_string(cur + delta));
        co_return Bytes(std::to_string(cur + delta));
      });
}

// Runs a single-call transaction at the client's primary and returns the
// outcome after the cluster quiesces for `settle`.
inline vr::TxnOutcome RunOneCall(client::Cluster& cluster,
                                 vr::GroupId client_group,
                                 vr::GroupId server_group,
                                 const std::string& proc,
                                 const std::string& args,
                                 sim::Duration settle = 2 * sim::kSecond) {
  core::Cohort* primary = cluster.AnyPrimary(client_group);
  if (primary == nullptr) return vr::TxnOutcome::kUnknown;
  vr::TxnOutcome outcome = vr::TxnOutcome::kUnknown;
  bool done = false;
  primary->SpawnTransaction(
      [server_group, proc, args](core::TxnHandle& h) -> sim::Task<bool> {
        co_await h.Call(server_group, proc, args);
        co_return true;
      },
      [&](vr::TxnOutcome o) {
        outcome = o;
        done = true;
      });
  const sim::Time deadline = cluster.sim().Now() + settle;
  while (!done && cluster.sim().Now() < deadline) {
    cluster.RunFor(10 * sim::kMillisecond);
  }
  return outcome;
}

// Like RunOneCall but retries aborted transactions, as a real application
// would: the paper's no-reply rule aborts the transaction that straddles a
// view change (Fig. 2 step 3), and the application simply runs a fresh one.
inline vr::TxnOutcome RunOneCallWithRetry(client::Cluster& cluster,
                                          vr::GroupId client_group,
                                          vr::GroupId server_group,
                                          const std::string& proc,
                                          const std::string& args,
                                          int max_attempts = 5) {
  vr::TxnOutcome outcome = vr::TxnOutcome::kUnknown;
  for (int i = 0; i < max_attempts; ++i) {
    outcome = RunOneCall(cluster, client_group, server_group, proc, args);
    // Retry only cleanly aborted transactions; an unknown outcome might have
    // committed, so retrying it is not idempotent-safe.
    if (outcome != vr::TxnOutcome::kAborted) return outcome;
    cluster.RunFor(200 * sim::kMillisecond);
  }
  return outcome;
}

// The committed value of `key` at every *active* cohort of the group must
// agree; returns it (empty string if absent).
inline std::string CommittedValue(client::Cluster& cluster, vr::GroupId group,
                                  const std::string& key) {
  std::string value;
  bool first = true;
  for (core::Cohort* c : cluster.Cohorts(group)) {
    if (c->status() != core::Status::kActive) continue;
    auto v = c->objects().ReadCommitted(key);
    std::string s = v.value_or("");
    if (first) {
      value = s;
      first = false;
    }
  }
  return value;
}

}  // namespace vsr::test
