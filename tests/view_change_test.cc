// View-change integration tests (§4): crashes, partitions, recoveries, and
// the survival guarantees of committed state.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;
using test::RegisterKvProcs;
using test::RunOneCall;

std::size_t IndexOfPrimary(Cluster& cluster, vr::GroupId g) {
  auto cohorts = cluster.Cohorts(g);
  for (std::size_t i = 0; i < cohorts.size(); ++i) {
    if (cohorts[i]->IsActivePrimary()) return i;
  }
  return cohorts.size();
}

TEST(ViewChange, PrimaryCrashElectsNewPrimary) {
  Cluster cluster(ClusterOptions{.seed = 11});
  auto g = cluster.AddGroup("kv", 3);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  const std::size_t old_primary = IndexOfPrimary(cluster, g);
  ASSERT_LT(old_primary, 3u);
  const vr::ViewId old_viewid = cluster.CohortAt(g, old_primary).cur_viewid();

  cluster.Crash(g, old_primary);
  ASSERT_TRUE(cluster.RunUntilStable());
  const std::size_t new_primary = IndexOfPrimary(cluster, g);
  ASSERT_LT(new_primary, 3u);
  EXPECT_NE(new_primary, old_primary);
  // Viewids are totally ordered and only grow.
  EXPECT_GT(cluster.CohortAt(g, new_primary).cur_viewid(), old_viewid);
}

TEST(ViewChange, CommittedStateSurvivesPrimaryCrash) {
  Cluster cluster(ClusterOptions{.seed = 12});
  auto g = cluster.AddGroup("kv", 3);
  auto client_g = cluster.AddGroup("client", 3);
  RegisterKvProcs(cluster, g);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  ASSERT_EQ(RunOneCall(cluster, client_g, g, "put", "k=committed"),
            vr::TxnOutcome::kCommitted);
  cluster.RunFor(300 * sim::kMillisecond);

  const std::size_t old_primary = IndexOfPrimary(cluster, g);
  cluster.Crash(g, old_primary);
  ASSERT_TRUE(cluster.RunUntilStable());

  // "events of committed transactions will survive view changes."
  EXPECT_EQ(test::CommittedValue(cluster, g, "k"), "committed");
  // And the group keeps serving transactions. (The first attempt may abort:
  // Fig. 2's no-reply rule; applications simply retry.)
  EXPECT_EQ(test::RunOneCallWithRetry(cluster, client_g, g, "put", "k2=after"),
            vr::TxnOutcome::kCommitted);
  cluster.RunFor(300 * sim::kMillisecond);
  EXPECT_EQ(test::CommittedValue(cluster, g, "k2"), "after");
}

TEST(ViewChange, BackupCrashKeepsGroupAvailable) {
  Cluster cluster(ClusterOptions{.seed = 13});
  auto g = cluster.AddGroup("kv", 3);
  auto client_g = cluster.AddGroup("client", 3);
  RegisterKvProcs(cluster, g);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  const std::size_t primary = IndexOfPrimary(cluster, g);
  const std::size_t backup = (primary + 1) % 3;
  cluster.Crash(g, backup);
  ASSERT_TRUE(cluster.RunUntilStable());
  EXPECT_EQ(RunOneCall(cluster, client_g, g, "put", "a=1"),
            vr::TxnOutcome::kCommitted);
}

TEST(ViewChange, CrashedCohortRecoversAndRejoins) {
  Cluster cluster(ClusterOptions{.seed = 14});
  auto g = cluster.AddGroup("kv", 3);
  auto client_g = cluster.AddGroup("client", 3);
  RegisterKvProcs(cluster, g);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  ASSERT_EQ(RunOneCall(cluster, client_g, g, "put", "x=1"),
            vr::TxnOutcome::kCommitted);

  const std::size_t victim = IndexOfPrimary(cluster, g);
  cluster.Crash(g, victim);
  ASSERT_TRUE(cluster.RunUntilStable());
  ASSERT_EQ(test::RunOneCallWithRetry(cluster, client_g, g, "put", "x=2"),
            vr::TxnOutcome::kCommitted);

  cluster.Recover(g, victim);
  ASSERT_TRUE(cluster.RunUntilStable());
  cluster.RunFor(2 * sim::kSecond);

  // The recovered cohort re-initializes from a newview record (it sent a
  // "crashed" acceptance) and ends up with the committed state.
  auto& recovered = cluster.CohortAt(g, victim);
  EXPECT_EQ(recovered.status(), core::Status::kActive);
  EXPECT_TRUE(recovered.up_to_date());
  EXPECT_EQ(recovered.objects().ReadCommitted("x").value_or(""), "2");
}

TEST(ViewChange, MinorityPartitionCannotFormView) {
  Cluster cluster(ClusterOptions{.seed = 15});
  auto g = cluster.AddGroup("kv", 5);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  auto cohorts = cluster.Cohorts(g);
  // Partition mids {0,1} away from {2,3,4}.
  std::vector<net::NodeId> minority{cohorts[0]->mid(), cohorts[1]->mid()};
  std::vector<net::NodeId> majority{cohorts[2]->mid(), cohorts[3]->mid(),
                                    cohorts[4]->mid()};
  cluster.network().Partition({minority, majority});
  cluster.RunFor(5 * sim::kSecond);

  // The majority side has an active primary; the minority side has none.
  int active_in_minority = 0;
  int primaries_in_majority = 0;
  for (auto* c : {cohorts[0], cohorts[1]}) {
    if (c->IsActivePrimary()) ++active_in_minority;
  }
  for (auto* c : {cohorts[2], cohorts[3], cohorts[4]}) {
    if (c->IsActivePrimary()) ++primaries_in_majority;
  }
  EXPECT_EQ(active_in_minority, 0);
  EXPECT_EQ(primaries_in_majority, 1);

  // Healing reunites the group into a single active view.
  cluster.network().Heal();
  ASSERT_TRUE(cluster.RunUntilStable());
  cluster.RunFor(2 * sim::kSecond);
  int actives = 0;
  for (auto* c : cohorts) {
    if (c->IsActivePrimary()) ++actives;
  }
  EXPECT_EQ(actives, 1);
}

TEST(ViewChange, WorkContinuesAcrossPartitionOfPrimary) {
  Cluster cluster(ClusterOptions{.seed = 16});
  auto g = cluster.AddGroup("kv", 3);
  auto client_g = cluster.AddGroup("client", 3);
  RegisterKvProcs(cluster, g);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  ASSERT_EQ(RunOneCall(cluster, client_g, g, "put", "p=before"),
            vr::TxnOutcome::kCommitted);
  cluster.RunFor(300 * sim::kMillisecond);

  // Isolate the server primary from everyone (server backups + clients).
  auto cohorts = cluster.Cohorts(g);
  const std::size_t primary = IndexOfPrimary(cluster, g);
  std::vector<net::NodeId> isolated{cohorts[primary]->mid()};
  std::vector<net::NodeId> rest;
  for (auto* c : cohorts) {
    if (c->mid() != cohorts[primary]->mid()) rest.push_back(c->mid());
  }
  for (auto* c : cluster.Cohorts(client_g)) rest.push_back(c->mid());
  cluster.network().Partition({isolated, rest});

  ASSERT_TRUE(cluster.RunUntilStable());
  EXPECT_EQ(test::RunOneCallWithRetry(cluster, client_g, g, "put", "p=after"),
            vr::TxnOutcome::kCommitted);
  cluster.RunFor(300 * sim::kMillisecond);
  EXPECT_EQ(test::CommittedValue(cluster, g, "p"), "after");

  // The stale primary cannot commit anything: §4.1 "The old primary will not
  // be able to prepare and commit user transactions, however, since it
  // cannot force their effects to the backups."
  cluster.network().Heal();
  ASSERT_TRUE(cluster.RunUntilStable());
  cluster.RunFor(2 * sim::kSecond);
  EXPECT_EQ(test::CommittedValue(cluster, g, "p"), "after");
}

TEST(ViewChange, MajorityCrashIsCatastrophicUntilRecovery) {
  // §4.2: if a majority crash "simultaneously", the group state may be lost;
  // the algorithm then never forms a view again (it does NOT form a wrong
  // view). Here both backups crash and recover with empty gstate while the
  // primary also crashes: 3 crash-acceptances, no normal one — no view.
  Cluster cluster(ClusterOptions{.seed = 17});
  auto g = cluster.AddGroup("kv", 3);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  for (std::size_t i = 0; i < 3; ++i) cluster.Crash(g, i);
  for (std::size_t i = 0; i < 3; ++i) cluster.Recover(g, i);
  EXPECT_FALSE(cluster.RunUntilStable(5 * sim::kSecond));
  for (auto* c : cluster.Cohorts(g)) {
    EXPECT_NE(c->status(), core::Status::kActive);
  }
}

TEST(ViewChange, BothBackupsCrashAndRecover) {
  // The surviving PRIMARY accepts normally, so condition (3) holds:
  // "crash-viewid = normal-viewid and the primary of view normal-viewid has
  //  done a normal acceptance" — the primary always knows at least as much
  // as any backup, so the crashed backups' lost state is irrelevant.
  Cluster cluster(ClusterOptions{.seed = 18});
  auto g = cluster.AddGroup("kv", 3);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  const std::size_t primary = IndexOfPrimary(cluster, g);
  ASSERT_LT(primary, 3u);

  for (std::size_t i = 0; i < 3; ++i) {
    if (i != primary) cluster.Crash(g, i);
  }
  cluster.RunFor(500 * sim::kMillisecond);
  for (std::size_t i = 0; i < 3; ++i) {
    if (i != primary) cluster.Recover(g, i);
  }
  ASSERT_TRUE(cluster.RunUntilStable());
  EXPECT_NE(cluster.AnyPrimary(g), nullptr);
}

TEST(ViewChange, PaperSection4SafetyExample) {
  // The paper's own example (§4): "suppose there are three cohorts, A, B and
  // C ... A committed a transaction, forcing its event records to B but not
  // C, then A crashed and recovered ... we cannot form a new view [without
  // B] because A has lost information and there are forced events that C
  // does not know." With the primary A recovered-from-crash and backup B
  // down, A+C alone must NOT form a view: none of conditions (1)-(3) hold.
  Cluster cluster(ClusterOptions{.seed = 181});
  auto g = cluster.AddGroup("kv", 3);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  const std::size_t a = IndexOfPrimary(cluster, g);
  ASSERT_LT(a, 3u);
  const std::size_t b = (a + 1) % 3;

  cluster.Crash(g, a);  // primary loses its volatile state
  // B keeps its state but is unreachable (partitioned away), exactly the
  // paper's "a partition occurred that separated B from A and C".
  auto cohorts = cluster.Cohorts(g);
  cluster.network().Partition(
      {{cohorts[b]->mid()},
       {cohorts[a]->mid(), cohorts[3 - a - b]->mid()}});
  cluster.RunFor(200 * sim::kMillisecond);
  cluster.Recover(g, a);  // A returns with a crash-acceptance only

  // A (crashed accept, viewid v) + C (normal accept, viewid v): condition 3
  // fails because the primary of view v did not accept normally.
  EXPECT_FALSE(cluster.RunUntilStable(5 * sim::kSecond));
  for (auto* c : cluster.Cohorts(g)) {
    EXPECT_FALSE(c->IsActivePrimary());
  }

  // "the partition is repaired": B's normal acceptance carries the forced
  // events and the view forms again with nothing lost.
  cluster.network().Heal();
  EXPECT_TRUE(cluster.RunUntilStable());
}

TEST(ViewChange, RepeatedPrimaryCrashes) {
  Cluster cluster(ClusterOptions{.seed = 19});
  auto g = cluster.AddGroup("kv", 5);
  auto client_g = cluster.AddGroup("client", 3);
  RegisterKvProcs(cluster, g);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  int expected = 0;
  for (int round = 0; round < 2; ++round) {
    ASSERT_EQ(test::RunOneCallWithRetry(cluster, client_g, g, "add", "ctr=1"),
              vr::TxnOutcome::kCommitted)
        << "round " << round;
    ++expected;
    cluster.RunFor(300 * sim::kMillisecond);
    const std::size_t primary = IndexOfPrimary(cluster, g);
    ASSERT_LT(primary, 5u);
    cluster.Crash(g, primary);
    ASSERT_TRUE(cluster.RunUntilStable()) << "round " << round;
  }
  ASSERT_EQ(test::RunOneCallWithRetry(cluster, client_g, g, "add", "ctr=1"),
            vr::TxnOutcome::kCommitted);
  ++expected;
  cluster.RunFor(300 * sim::kMillisecond);
  EXPECT_EQ(test::CommittedValue(cluster, g, "ctr"),
            std::to_string(expected));
}

}  // namespace
}  // namespace vsr
