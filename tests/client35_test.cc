// Tests for §3.5: unreplicated clients using a replicated coordinator-server.
#include <gtest/gtest.h>

#include "client/unreplicated_client.h"
#include "tests/test_util.h"

namespace vsr {
namespace {

using client::ClientTxn;
using client::Cluster;
using client::ClusterOptions;
using client::UnreplicatedClient;

struct World {
  explicit World(std::uint64_t seed) : cluster(ClusterOptions{.seed = seed}) {
    server = cluster.AddGroup("kv", 3);
    coord = cluster.AddGroup("coord", 3);
    test::RegisterKvProcs(cluster, server);
    cluster.Start();
  }
  Cluster cluster;
  vr::GroupId server;
  vr::GroupId coord;
};

vr::TxnOutcome RunClientTxn(World& w, UnreplicatedClient& c,
                            std::function<sim::Task<bool>(ClientTxn&)> body,
                            sim::Duration deadline = 10 * sim::kSecond) {
  vr::TxnOutcome outcome = vr::TxnOutcome::kUnknown;
  bool done = false;
  c.Spawn(std::move(body), [&](vr::TxnOutcome o) {
    outcome = o;
    done = true;
  });
  const sim::Time end = w.cluster.sim().Now() + deadline;
  while (!done && w.cluster.sim().Now() < end) {
    w.cluster.RunFor(10 * sim::kMillisecond);
  }
  return outcome;
}

TEST(CoordinatorServer, ClientCommitsThroughIt) {
  World w(41);
  ASSERT_TRUE(w.cluster.RunUntilStable());
  UnreplicatedClient c(w.cluster.sim(), w.cluster.network(),
                       w.cluster.directory(), w.cluster.AllocateMid(), w.coord,
                       core::CohortOptions{});

  auto outcome = RunClientTxn(w, c, [&](ClientTxn& t) -> sim::Task<bool> {
    co_await t.Call(w.server, "put", std::string("x=5"));
    co_return true;
  });
  EXPECT_EQ(outcome, vr::TxnOutcome::kCommitted);
  w.cluster.RunFor(1 * sim::kSecond);
  EXPECT_EQ(test::CommittedValue(w.cluster, w.server, "x"), "5");
  EXPECT_EQ(c.stats().txns_committed, 1u);
}

TEST(CoordinatorServer, AbortDiscardsEffects) {
  World w(42);
  ASSERT_TRUE(w.cluster.RunUntilStable());
  UnreplicatedClient c(w.cluster.sim(), w.cluster.network(),
                       w.cluster.directory(), w.cluster.AllocateMid(), w.coord,
                       core::CohortOptions{});
  auto outcome = RunClientTxn(w, c, [&](ClientTxn& t) -> sim::Task<bool> {
    co_await t.Call(w.server, "put", std::string("y=9"));
    co_return false;  // client decides to abort
  });
  EXPECT_EQ(outcome, vr::TxnOutcome::kAborted);
  w.cluster.RunFor(2 * sim::kSecond);
  EXPECT_EQ(test::CommittedValue(w.cluster, w.server, "y"), "");
  // Locks released (possibly via the coordinator-server's abort or sweep):
  // a new transaction gets through.
  auto again = RunClientTxn(w, c, [&](ClientTxn& t) -> sim::Task<bool> {
    co_await t.Call(w.server, "put", std::string("y=1"));
    co_return true;
  });
  EXPECT_EQ(again, vr::TxnOutcome::kCommitted);
}

TEST(CoordinatorServer, VanishedClientIsSweptAndLocksFreed) {
  World w(43);
  ASSERT_TRUE(w.cluster.RunUntilStable());
  {
    // A client that begins a transaction, touches a key, then disappears
    // without committing or aborting.
    UnreplicatedClient ghost(w.cluster.sim(), w.cluster.network(),
                             w.cluster.directory(), w.cluster.AllocateMid(),
                             w.coord, core::CohortOptions{});
    bool called = false;
    ghost.Spawn([&](ClientTxn& t) -> sim::Task<bool> {
      co_await t.Call(w.server, "put", std::string("z=ghost"));
      called = true;
      // Sleep forever (until destroyed): never commits.
      co_await sim::Sleep(w.cluster.sim().scheduler(), 3600 * sim::kSecond);
      co_return true;
    });
    while (!called) w.cluster.RunFor(10 * sim::kMillisecond);
    // Destroying the client kills the suspended coroutine — the crash.
  }
  // §3.5: "if no reply is forthcoming, it can abort the transaction
  // unilaterally." After the sweep the lock is free.
  w.cluster.RunFor(5 * sim::kSecond);
  UnreplicatedClient c(w.cluster.sim(), w.cluster.network(),
                       w.cluster.directory(), w.cluster.AllocateMid(), w.coord,
                       core::CohortOptions{});
  auto outcome = RunClientTxn(w, c, [&](ClientTxn& t) -> sim::Task<bool> {
    co_await t.Call(w.server, "put", std::string("z=real"));
    co_return true;
  });
  EXPECT_EQ(outcome, vr::TxnOutcome::kCommitted);
  w.cluster.RunFor(1 * sim::kSecond);
  EXPECT_EQ(test::CommittedValue(w.cluster, w.server, "z"), "real");
}

TEST(CoordinatorServer, SurvivesCoordinatorPrimaryCrash) {
  World w(44);
  ASSERT_TRUE(w.cluster.RunUntilStable());
  UnreplicatedClient c(w.cluster.sim(), w.cluster.network(),
                       w.cluster.directory(), w.cluster.AllocateMid(), w.coord,
                       core::CohortOptions{});
  // First transaction establishes the cache; then crash the coordinator
  // primary and run another transaction — the client re-probes.
  auto first = RunClientTxn(w, c, [&](ClientTxn& t) -> sim::Task<bool> {
    co_await t.Call(w.server, "put", std::string("k=1"));
    co_return true;
  });
  ASSERT_EQ(first, vr::TxnOutcome::kCommitted);
  for (auto* co : w.cluster.Cohorts(w.coord)) {
    if (co->IsActivePrimary()) {
      co->Crash();
      break;
    }
  }
  ASSERT_TRUE(w.cluster.RunUntilStable());
  auto second = RunClientTxn(w, c, [&](ClientTxn& t) -> sim::Task<bool> {
    co_await t.Call(w.server, "put", std::string("k=2"));
    co_return true;
  });
  EXPECT_EQ(second, vr::TxnOutcome::kCommitted);
  w.cluster.RunFor(1 * sim::kSecond);
  EXPECT_EQ(test::CommittedValue(w.cluster, w.server, "k"), "2");
}

TEST(CoordinatorServer, QueriesResolveThenDoneRecordGarbageCollects) {
  World w(45);
  ASSERT_TRUE(w.cluster.RunUntilStable());
  UnreplicatedClient c(w.cluster.sim(), w.cluster.network(),
                       w.cluster.directory(), w.cluster.AllocateMid(), w.coord,
                       core::CohortOptions{});
  vr::Aid aid{};
  auto outcome = RunClientTxn(w, c, [&](ClientTxn& t) -> sim::Task<bool> {
    aid = t.aid();
    co_await t.Call(w.server, "put", std::string("q=1"));
    co_return true;
  });
  ASSERT_EQ(outcome, vr::TxnOutcome::kCommitted);

  // §3.1 GC contract: until the done record lands the coordinator group
  // answers queries with the outcome; afterwards the entry is pruned.
  // Either answer may race in here, but "aborted" must never appear.
  vr::TxnOutcome queried = vr::TxnOutcome::kAborted;
  bool done = false;
  c.QueryOutcome(aid, [&](vr::TxnOutcome o) {
    queried = o;
    done = true;
  });
  while (!done) w.cluster.RunFor(10 * sim::kMillisecond);
  EXPECT_NE(queried, vr::TxnOutcome::kAborted);

  // After everything settles, the done record has garbage-collected the
  // outcome at every coordinator cohort.
  w.cluster.RunFor(3 * sim::kSecond);
  for (auto* cohort : w.cluster.Cohorts(w.coord)) {
    if (cohort->status() != core::Status::kActive) continue;
    EXPECT_EQ(cohort->outcomes().Lookup(aid), vr::TxnOutcome::kUnknown)
        << "cohort " << cohort->mid() << " still holds the outcome";
  }
}

}  // namespace
}  // namespace vsr
