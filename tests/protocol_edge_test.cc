// Protocol edge cases the paper calls out explicitly:
//  * several active primaries after a partition (§4.1) — safe because the
//    stale one cannot force, hence cannot commit
//  * lost abort messages recovered via queries (§3.4)
//  * the §3.7 requirement to force completed-call records even for
//    read-only participants — disabling it breaks two-phase locking across
//    a view change (demonstrated, as an ablation)
#include <gtest/gtest.h>

#include <array>

#include "check/invariants.h"
#include "client/shard_router.h"
#include "tests/test_util.h"
#include "workload/driver.h"
#include "workload/sharded_bank.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;
using test::RegisterKvProcs;

TEST(MultiPrimary, StalePrimaryStaysActiveButCannotCommit) {
  Cluster cluster(ClusterOptions{.seed = 91});
  auto kv = cluster.AddGroup("kv", 3);
  auto agents_a = cluster.AddGroup("agents-a", 3);  // stranded with old primary
  auto agents_b = cluster.AddGroup("agents-b", 3);  // on the majority side
  RegisterKvProcs(cluster, kv);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  core::Cohort* old_primary = cluster.AnyPrimary(kv);
  ASSERT_NE(old_primary, nullptr);
  const vr::ViewId old_view = old_primary->cur_viewid();
  // §4.1's premise: "the old primary is slow to notice the need for a view
  // change and continues to respond to client requests even after the new
  // view is formed."
  old_primary->mutable_options().liveness_timeout = 60 * sim::kSecond;

  // Partition: {old primary, agents-a} vs {both backups, agents-b}.
  std::vector<net::NodeId> side_a{old_primary->mid()};
  std::vector<net::NodeId> side_b;
  for (auto* c : cluster.Cohorts(kv)) {
    if (c != old_primary) side_b.push_back(c->mid());
  }
  for (auto* c : cluster.Cohorts(agents_a)) side_a.push_back(c->mid());
  for (auto* c : cluster.Cohorts(agents_b)) side_b.push_back(c->mid());
  cluster.network().Partition({side_a, side_b});

  // Majority side forms a new view; give the failure detector time, but not
  // so much that the stale primary notices (it cannot: its pings go nowhere,
  // but receives nothing either — it eventually becomes a manager; sample
  // while it is still active).
  sim::Time deadline = cluster.sim().Now() + 10 * sim::kSecond;
  core::Cohort* new_primary = nullptr;
  bool saw_dual_active = false;
  while (cluster.sim().Now() < deadline) {
    cluster.RunFor(10 * sim::kMillisecond);
    new_primary = nullptr;
    for (auto* c : cluster.Cohorts(kv)) {
      if (c->IsActivePrimary() && c != old_primary &&
          c->cur_viewid() > old_view) {
        new_primary = c;
      }
    }
    if (new_primary != nullptr && old_primary->IsActivePrimary() &&
        old_primary->cur_viewid() == old_view) {
      saw_dual_active = true;  // §4.1: "several active primaries"
      break;
    }
  }
  ASSERT_TRUE(saw_dual_active);

  // The stale primary accepts a call but the transaction cannot commit:
  // "The old primary will not be able to prepare and commit user
  //  transactions, however, since it cannot force their effects" (§4.1).
  auto stale = test::RunOneCall(cluster, agents_a, kv, "put", "stale=1",
                                3 * sim::kSecond);
  EXPECT_NE(stale, vr::TxnOutcome::kCommitted);

  // Meanwhile the real primary commits fine.
  auto fresh = test::RunOneCallWithRetry(cluster, agents_b, kv, "put", "ok=1");
  EXPECT_EQ(fresh, vr::TxnOutcome::kCommitted);

  cluster.network().Heal();
  ASSERT_TRUE(cluster.RunUntilStable());
  cluster.RunFor(2 * sim::kSecond);
  EXPECT_EQ(test::CommittedValue(cluster, kv, "stale"), "");
  EXPECT_EQ(test::CommittedValue(cluster, kv, "ok"), "1");
}

TEST(Queries, LostAbortIsRecoveredByJanitor) {
  // §3.4: "if the transaction aborts, we send abort messages to the
  // participants, but do not guarantee they will arrive. Instead, a cohort
  // that needs to know whether an abort occurred sends a query."
  Cluster cluster(ClusterOptions{.seed = 92});
  auto kv = cluster.AddGroup("kv", 3);
  auto agents = cluster.AddGroup("agents", 3);
  RegisterKvProcs(cluster, kv);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  core::Cohort* coord = cluster.AnyPrimary(agents);
  core::Cohort* server_primary = cluster.AnyPrimary(kv);
  ASSERT_NE(coord, nullptr);
  ASSERT_NE(server_primary, nullptr);

  // The transaction writes, thinks for 50ms, then aborts. We cut the
  // coordinator-primary <-> server-primary link mid-think so the abort
  // message is guaranteed lost.
  sim::Scheduler* sched = &cluster.sim().scheduler();
  bool done = false;
  coord->SpawnTransaction(
      [kv, sched](core::TxnHandle& h) -> sim::Task<bool> {
        co_await h.Call(kv, "put", std::string("locked=1"));
        co_await sim::Sleep(*sched, 50 * sim::kMillisecond);
        co_return false;  // abort — but the abort message will be lost
      },
      [&](vr::TxnOutcome o) {
        done = true;
        EXPECT_EQ(o, vr::TxnOutcome::kAborted);
      });
  cluster.sim().scheduler().After(20 * sim::kMillisecond, [&] {
    cluster.network().SetLinkDown(coord->mid(), server_primary->mid(), true);
  });
  while (!done) cluster.RunFor(5 * sim::kMillisecond);

  // The write lock on "locked" is stranded at the server. The janitor
  // queries the coordinator group (its backups are reachable and know the
  // aborted outcome from the event record) and frees it.
  cluster.RunFor(3 * sim::kSecond);
  cluster.network().SetLinkDown(coord->mid(), server_primary->mid(), false);

  auto outcome = test::RunOneCallWithRetry(cluster, agents, kv, "put",
                                           "locked=2");
  EXPECT_EQ(outcome, vr::TxnOutcome::kCommitted);
  cluster.RunFor(1 * sim::kSecond);
  EXPECT_EQ(test::CommittedValue(cluster, kv, "locked"), "2");
}

// The §3.7 ablation: "Even when a transaction only has read locks, we must
// force the 'completed-call' records to the backups when preparing to ensure
// that read locks are held across a view change. ... Without the force, the
// prepare could succeed at the old primary even though the locks did not
// survive. In essence, not doing the force is equivalent to not sending the
// prepare message to a read-only participant; such prepare messages are
// needed to prevent violations of two-phase locking."
vr::TxnOutcome ReadOnlyAcrossPartition(bool force_read_only) {
  ClusterOptions opts;
  opts.seed = 93;
  opts.cohort.force_read_only_prepare = force_read_only;
  // Fixed one-way delay so the race window is deterministic: T1's reply
  // (call + reply = 600us) must beat the partition, while the completed-call
  // record (flush 500us after execution, delivered at ~1.1ms) must not.
  opts.net.delay_min = opts.net.delay_max = 300 * sim::kMicrosecond;
  Cluster cluster(opts);
  auto kv = cluster.AddGroup("kv", 3);
  auto agents_a = cluster.AddGroup("agents-a", 3);
  auto agents_b = cluster.AddGroup("agents-b", 3);
  RegisterKvProcs(cluster, kv);
  cluster.Start();
  if (!cluster.RunUntilStable()) return vr::TxnOutcome::kUnknown;
  if (test::RunOneCall(cluster, agents_b, kv, "put", "x=original") !=
      vr::TxnOutcome::kCommitted) {
    return vr::TxnOutcome::kUnknown;
  }
  // Prime agents-a's primary-location cache so T1's call needs no probe.
  if (test::RunOneCall(cluster, agents_a, kv, "get", "x") !=
      vr::TxnOutcome::kCommitted) {
    return vr::TxnOutcome::kUnknown;
  }
  cluster.RunFor(300 * sim::kMillisecond);

  core::Cohort* old_primary = cluster.AnyPrimary(kv);
  // Slow to notice, as in §4.1.
  old_primary->mutable_options().liveness_timeout = 60 * sim::kSecond;
  sim::Scheduler* sched = &cluster.sim().scheduler();

  // T1 (at agents-a): READ x, think 3s, then prepare/commit — a read-only
  // participant at kv.
  vr::TxnOutcome t1_outcome = vr::TxnOutcome::kUnknown;
  bool t1_done = false;
  cluster.AnyPrimary(agents_a)->SpawnTransaction(
      [kv, sched](core::TxnHandle& h) -> sim::Task<bool> {
        co_await h.Call(kv, "get", std::string("x"));
        co_await sim::Sleep(*sched, 3 * sim::kSecond);
        co_return true;
      },
      [&](vr::TxnOutcome o) {
        t1_outcome = o;
        t1_done = true;
      });
  // T1's read executes at ~600us and its reply arrives at ~900us; the
  // completed-call record would reach the backups at ~1.4ms. Partition at
  // 1ms: the read-lock record dies with the old side.
  cluster.RunFor(1 * sim::kMillisecond);

  // Partition: {old primary + agents-a} vs {backups + agents-b}.
  std::vector<net::NodeId> side_a{old_primary->mid()};
  std::vector<net::NodeId> side_b;
  for (auto* c : cluster.Cohorts(kv)) {
    if (c != old_primary) side_b.push_back(c->mid());
  }
  for (auto* c : cluster.Cohorts(agents_a)) side_a.push_back(c->mid());
  for (auto* c : cluster.Cohorts(agents_b)) side_b.push_back(c->mid());
  cluster.network().Partition({side_a, side_b});

  // Majority side elects a new primary where T1's read lock never existed;
  // T2 writes x and commits — conflicting with T1's (lost) read lock.
  cluster.RunFor(1500 * sim::kMillisecond);
  EXPECT_EQ(test::RunOneCallWithRetry(cluster, agents_b, kv, "put",
                                      "x=overwritten"),
            vr::TxnOutcome::kCommitted);

  // T1 now prepares at the STALE primary.
  const sim::Time deadline = cluster.sim().Now() + 10 * sim::kSecond;
  while (!t1_done && cluster.sim().Now() < deadline) {
    cluster.RunFor(10 * sim::kMillisecond);
  }
  cluster.network().Heal();
  return t1_outcome;
}

TEST(Ablation, ReadOnlyPrepareForceIsRequiredForTwoPhaseLocking) {
  // With the force (the paper's design): the stale primary cannot reach a
  // sub-majority, the prepare is refused, T1 aborts — SAFE.
  EXPECT_EQ(ReadOnlyAcrossPartition(/*force_read_only=*/true),
            vr::TxnOutcome::kAborted);
  // Without it (the ablation): the stale primary answers prepared from its
  // own state, T1 commits concurrently with T2's conflicting write — the
  // 2PL violation the paper warns about.
  EXPECT_EQ(ReadOnlyAcrossPartition(/*force_read_only=*/false),
            vr::TxnOutcome::kCommitted);
}

TEST(Dedup, RetransmittedCallIsAnsweredNotReExecuted) {
  // Heavy duplication: every call frame is delivered twice. Executions must
  // not double: run read-modify-write increments and verify the counter
  // equals the commit count exactly.
  ClusterOptions opts;
  opts.seed = 94;
  opts.net.duplicate_probability = 1.0;  // worst case
  Cluster cluster(opts);
  auto kv = cluster.AddGroup("kv", 3);
  auto agents = cluster.AddGroup("agents", 3);
  RegisterKvProcs(cluster, kv);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  int committed = 0;
  for (int i = 0; i < 20; ++i) {
    if (test::RunOneCall(cluster, agents, kv, "add", "ctr=1") ==
        vr::TxnOutcome::kCommitted) {
      ++committed;
    }
  }
  cluster.RunFor(1 * sim::kSecond);
  EXPECT_EQ(test::CommittedValue(cluster, kv, "ctr"),
            std::to_string(committed));
  // And duplicates actually hit the suppression path.
  std::uint64_t suppressed = 0;
  for (auto* c : cluster.Cohorts(kv)) {
    suppressed += c->stats().duplicate_calls_suppressed;
  }
  EXPECT_GT(suppressed, 0u);
}

TEST(Replication, OutOfOrderBatchesRecoverViaGapRequests) {
  // Lossy network: pipelined buffer batches arrive with holes. Backups must
  // stash the out-of-order records, name the exact hole in their ack, and
  // resume applying once the primary fills it — without losing commits.
  ClusterOptions opts;
  opts.seed = 95;
  opts.net.loss_probability = 0.20;
  Cluster cluster(opts);
  auto kv = cluster.AddGroup("kv", 3);
  auto agents = cluster.AddGroup("agents", 3);
  RegisterKvProcs(cluster, kv);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  int committed = 0;
  for (int i = 0; i < 40; ++i) {
    if (test::RunOneCallWithRetry(cluster, agents, kv, "add", "ctr=1") ==
        vr::TxnOutcome::kCommitted) {
      ++committed;
    }
  }
  cluster.RunFor(2 * sim::kSecond);
  ASSERT_GT(committed, 0);
  EXPECT_EQ(test::CommittedValue(cluster, kv, "ctr"),
            std::to_string(committed));

  // The recovery machinery was actually exercised.
  std::uint64_t stashed = 0, from_stash = 0, gap_sent = 0, gap_honored = 0;
  for (auto* c : cluster.Cohorts(kv)) {
    stashed += c->stats().records_stashed_out_of_order;
    from_stash += c->stats().records_applied_from_stash;
    gap_sent += c->stats().gap_requests_sent;
    gap_honored += c->buffer().stats().gap_requests;
  }
  EXPECT_GT(stashed, 0u);
  EXPECT_GT(from_stash, 0u);
  EXPECT_GT(gap_sent, 0u);
  EXPECT_GT(gap_honored, 0u);
}

TEST(Dedup, DuplicatePrepareIsAnsweredIdempotently) {
  // Every frame delivered twice: retransmitted prepares for transactions
  // that are already prepared (or committed) here must be re-answered from
  // the recorded state — never re-run through the compatibility check, whose
  // refusal path would abort a prepared transaction.
  ClusterOptions opts;
  opts.seed = 96;
  opts.net.duplicate_probability = 1.0;
  // Wide jitter: the duplicate's independent delay draw often lands it long
  // after the original's prepare finished — the re-answer path, not the
  // in-flight drop.
  opts.net.delay_min = 300 * sim::kMicrosecond;
  opts.net.delay_max = 15 * sim::kMillisecond;
  Cluster cluster(opts);
  auto kv = cluster.AddGroup("kv", 3);
  auto agents = cluster.AddGroup("agents", 3);
  RegisterKvProcs(cluster, kv);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  int committed = 0;
  for (int i = 0; i < 20; ++i) {
    if (test::RunOneCall(cluster, agents, kv, "add", "ctr=1") ==
        vr::TxnOutcome::kCommitted) {
      ++committed;
    }
  }
  cluster.RunFor(1 * sim::kSecond);
  EXPECT_EQ(test::CommittedValue(cluster, kv, "ctr"),
            std::to_string(committed));
  std::uint64_t dup_answered = 0, aborts = 0;
  for (auto* c : cluster.Cohorts(kv)) {
    dup_answered += c->stats().duplicate_prepares_answered;
    aborts += c->stats().aborts_applied;
  }
  EXPECT_GT(dup_answered, 0u);
  EXPECT_EQ(aborts, 0u);  // no duplicate ever tripped the refusal path
}


TEST(Replication, CompressedStreamRecoversUnderLossLikeRaw) {
  // The gap-request recovery test again, but with the replication stream
  // dictionary/delta-compressed (DESIGN.md §8). The stateful codec must ride
  // out 20% frame loss — every lost batch is a sync loss for the decoder,
  // healed by a nack plus a reset batch — without losing or corrupting a
  // single commit. Same seed and workload as the raw test above, so any
  // divergence in outcome points at the codec.
  ClusterOptions opts;
  opts.seed = 95;
  opts.net.loss_probability = 0.20;
  opts.cohort.buffer.compression = vr::CompressionMode::kDict;
  Cluster cluster(opts);
  auto kv = cluster.AddGroup("kv", 3);
  auto agents = cluster.AddGroup("agents", 3);
  RegisterKvProcs(cluster, kv);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  int committed = 0;
  for (int i = 0; i < 40; ++i) {
    if (test::RunOneCallWithRetry(cluster, agents, kv, "add", "ctr=1") ==
        vr::TxnOutcome::kCommitted) {
      ++committed;
    }
  }
  cluster.RunFor(2 * sim::kSecond);
  ASSERT_GT(committed, 0);
  EXPECT_EQ(test::CommittedValue(cluster, kv, "ctr"),
            std::to_string(committed));

  // The compressed-stream recovery machinery was actually exercised: frames
  // were lost, decoders nacked, and encoders re-opened their streams with
  // fresh generations.
  std::uint64_t gap_sent = 0, gap_honored = 0;
  std::uint64_t batches = 0, resets = 0, rewinds = 0, dict_hits = 0;
  for (auto* c : cluster.Cohorts(kv)) {
    gap_sent += c->stats().gap_requests_sent;
    gap_honored += c->buffer().stats().gap_requests;
    for (auto* b : cluster.Cohorts(kv)) {
      if (const vr::CodecStats* cs = c->buffer().encoder_stats(b->mid())) {
        batches += cs->batches;
        resets += cs->resets;
        rewinds += cs->rewinds;
        dict_hits += cs->dict_hits;
      }
    }
  }
  EXPECT_GT(gap_sent, 0u);
  EXPECT_GT(gap_honored, 0u);
  EXPECT_GT(batches, 0u);
  // Every recovery beyond the two view-start resets is either a checkpoint
  // rewind (dictionary preserved — the common case now that encoders keep a
  // replayable checkpoint at the ack) or a fresh-generation reset.
  EXPECT_GE(resets, 2u);
  EXPECT_GT(resets + rewinds, 2u);
  EXPECT_GT(rewinds, 0u);
  EXPECT_GT(dict_hits, 0u);
}

TEST(Replication, AckCoalescingReducesAckFramesWithoutLosingCommits) {
  // Two identical workloads of pipelined transactions; the second defers
  // gap-free backup acks for up to 2ms and merges whatever batches land in
  // the window into one cumulative frame. Replication must still force fine
  // (every commit lands, replicas agree) while the kBufferAck frame count —
  // and the primaries' ack processing — drops per committed transaction.
  constexpr int kRounds = 5;
  constexpr int kPipelined = 8;
  auto run = [&](sim::Duration coalesce) {
    ClusterOptions opts;
    opts.seed = 96;
    opts.cohort.ack_coalesce_delay = coalesce;
    Cluster cluster(opts);
    auto kv = cluster.AddGroup("kv", 3);
    auto agents = cluster.AddGroup("agents", 3);
    RegisterKvProcs(cluster, kv);
    cluster.Start();
    EXPECT_TRUE(cluster.RunUntilStable());

    // Each round runs kPipelined concurrent single-call transactions on
    // distinct keys, so their completed-call batches overlap in flight.
    std::array<int, kPipelined> committed_per_key{};
    for (int round = 0; round < kRounds; ++round) {
      core::Cohort* primary = cluster.AnyPrimary(agents);
      if (primary == nullptr) {
        ADD_FAILURE() << "no agents primary in round " << round;
        break;
      }
      int done = 0;
      for (int i = 0; i < kPipelined; ++i) {
        primary->SpawnTransaction(
            [kv, i](core::TxnHandle& h) -> sim::Task<bool> {
              co_await h.Call(kv, "add", "k" + std::to_string(i) + "=1");
              co_return true;
            },
            [&committed_per_key, &done, i](vr::TxnOutcome o) {
              ++done;
              if (o == vr::TxnOutcome::kCommitted) ++committed_per_key[i];
            });
      }
      const sim::Time deadline = cluster.sim().Now() + 5 * sim::kSecond;
      while (done < kPipelined && cluster.sim().Now() < deadline) {
        cluster.RunFor(10 * sim::kMillisecond);
      }
      EXPECT_EQ(done, kPipelined) << "round " << round;
    }
    cluster.RunFor(2 * sim::kSecond);

    int committed = 0;
    for (int i = 0; i < kPipelined; ++i) {
      committed += committed_per_key[i];
      EXPECT_EQ(test::CommittedValue(cluster, kv, "k" + std::to_string(i)),
                std::to_string(committed_per_key[i]))
          << "key " << i;
    }
    const auto& by_type = cluster.network().stats().sent_by_type;
    auto it =
        by_type.find(static_cast<std::uint16_t>(vr::MsgType::kBufferAck));
    const std::uint64_t ack_frames = it == by_type.end() ? 0 : it->second;
    std::uint64_t coalesced = 0, received = 0;
    for (auto* c : cluster.Cohorts(kv)) {
      coalesced += c->stats().acks_coalesced;
      received += c->buffer().stats().acks_received;
    }
    struct Result {
      int committed;
      std::uint64_t ack_frames, coalesced, received;
    };
    return Result{committed, ack_frames, coalesced, received};
  };

  const auto eager = run(0);
  const auto lazy = run(2 * sim::kMillisecond);
  ASSERT_GT(eager.committed, kRounds * kPipelined / 2);
  ASSERT_GT(lazy.committed, kRounds * kPipelined / 2);
  EXPECT_EQ(eager.coalesced, 0u);
  EXPECT_GT(lazy.coalesced, 0u);  // acks actually merged into shared frames
  // Fewer ack frames on the wire and fewer acks through the primaries, per
  // committed transaction (committed counts may differ slightly: deferring
  // acks shifts force-to completion times).
  EXPECT_LT(lazy.ack_frames * static_cast<std::uint64_t>(eager.committed),
            eager.ack_frames * static_cast<std::uint64_t>(lazy.committed));
  EXPECT_LT(lazy.received * static_cast<std::uint64_t>(eager.committed),
            eager.received * static_cast<std::uint64_t>(lazy.committed));
}

TEST(Prepare, ViewChangeInOneShardRefusesPrepareAndAbortsEverywhere) {
  // §3.2 across shards: a cross-shard transfer executes at both participant
  // groups, then one participant's primary is partitioned away BEFORE its
  // completed-call record reaches a sub-majority. The backups elect a new
  // view that never saw the call, so the pset entry fails the compatibility
  // check when the prepare arrives — the participant refuses, and the
  // coordinator must abort at EVERY participant: no orphaned prepared state,
  // no stranded locks, balances untouched.
  ClusterOptions opts;
  opts.seed = 97;
  // Fixed one-way delay so the race window is deterministic: the deposit's
  // reply is back at ~1.2ms but its completed-call record only flushes at
  // ~1.4ms — partitioning at 1.3ms strands the record at the old primary.
  opts.net.delay_min = opts.net.delay_max = 300 * sim::kMicrosecond;
  Cluster cluster(opts);
  auto bank = workload::SetupShardedBank(cluster, 2, 3, 10);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  ASSERT_EQ(workload::FundShardedAccounts(cluster, bank, 100), 10);
  cluster.RunFor(300 * sim::kMillisecond);

  const vr::GroupId g0 = bank.shards[0];  // owns a000..a004
  const vr::GroupId g1 = bank.shards[1];  // owns a005..a009
  core::Cohort* b_primary = cluster.AnyPrimary(g1);
  ASSERT_NE(b_primary, nullptr);
  const vr::ViewId b_view = b_primary->cur_viewid();
  sim::Scheduler* sched = &cluster.sim().scheduler();

  vr::TxnOutcome outcome = vr::TxnOutcome::kUnknown;
  bool done = false;
  cluster.AnyPrimary(bank.client_group)
      ->SpawnTransaction(
          [g0, g1, sched](core::TxnHandle& h) -> sim::Task<bool> {
            co_await h.Call(g0, "withdraw", std::string("a000=5"));
            co_await h.Call(g1, "deposit", std::string("a005=5"));
            // Think long enough for the stranded group to change views.
            co_await sim::Sleep(*sched, 3 * sim::kSecond);
            co_return true;
          },
          [&](vr::TxnOutcome o) {
            outcome = o;
            done = true;
          });

  // Both calls have replied by 1.2ms; the deposit record flushes at 1.4ms.
  cluster.RunFor(1300 * sim::kMicrosecond);
  std::vector<net::NodeId> rest;
  for (auto g : cluster.AllGroups()) {
    for (auto* c : cluster.Cohorts(g)) {
      if (c != b_primary) rest.push_back(c->mid());
    }
  }
  cluster.network().Partition({{b_primary->mid()}, rest});

  const sim::Time deadline = cluster.sim().Now() + 20 * sim::kSecond;
  while (!done && cluster.sim().Now() < deadline) {
    cluster.RunFor(10 * sim::kMillisecond);
  }
  ASSERT_TRUE(done);
  // The shard-1 view changed underneath the transaction, its entry failed
  // compatibility, the prepare was refused, and the whole transfer aborted —
  // including at shard 0, which had prepared successfully.
  EXPECT_EQ(outcome, vr::TxnOutcome::kAborted);
  core::Cohort* b_new = cluster.AnyPrimary(g1);
  ASSERT_NE(b_new, nullptr);
  EXPECT_GT(b_new->cur_viewid(), b_view);
  std::uint64_t refused = 0;
  for (auto* c : cluster.Cohorts(g1)) refused += c->stats().prepares_refused;
  EXPECT_GE(refused, 1u);

  cluster.network().Heal();
  ASSERT_TRUE(cluster.RunUntilStable());
  cluster.RunFor(3 * sim::kSecond);

  // Atomicity: neither leg's effect survived.
  EXPECT_EQ(workload::ShardedCommittedBalance(cluster, "a000"), 100);
  EXPECT_EQ(workload::ShardedCommittedBalance(cluster, "a005"), 100);
  // No orphaned prepares or stranded locks anywhere: both accounts can be
  // locked again immediately, and no participant holds live transactions.
  for (auto g : bank.shards) {
    for (auto* c : cluster.Cohorts(g)) {
      EXPECT_TRUE(c->objects().ActiveTxns().empty())
          << "cohort " << c->mid() << " holds orphaned transactions";
    }
  }
  vr::TxnOutcome outcome2 = vr::TxnOutcome::kUnknown;
  for (int attempt = 0;
       attempt < 10 && outcome2 != vr::TxnOutcome::kCommitted; ++attempt) {
    bool done2 = false;
    core::Cohort* coord = cluster.AnyPrimary(bank.client_group);
    ASSERT_NE(coord, nullptr);
    coord->SpawnTransaction(
        [g0, g1](core::TxnHandle& h) -> sim::Task<bool> {
          co_await h.Call(g0, "withdraw", std::string("a000=5"));
          co_await h.Call(g1, "deposit", std::string("a005=5"));
          co_return true;
        },
        [&](vr::TxnOutcome o) {
          outcome2 = o;
          done2 = true;
        });
    const sim::Time deadline2 = cluster.sim().Now() + 20 * sim::kSecond;
    while (!done2 && cluster.sim().Now() < deadline2) {
      cluster.RunFor(10 * sim::kMillisecond);
    }
    ASSERT_TRUE(done2);
  }
  EXPECT_EQ(outcome2, vr::TxnOutcome::kCommitted);
  cluster.RunFor(1 * sim::kSecond);
  EXPECT_EQ(workload::ShardedCommittedBalance(cluster, "a000"), 95);
  EXPECT_EQ(workload::ShardedCommittedBalance(cluster, "a005"), 105);
}

// -- commit fusion (DESIGN.md §13) -----------------------------------------

namespace {

std::vector<std::string> BankAccounts(int n) {
  std::vector<std::string> accounts;
  for (int i = 0; i < n; ++i) {
    accounts.push_back(workload::ShardAccountName(i));
  }
  return accounts;
}

core::CohortStats SumStats(client::Cluster& cluster, vr::GroupId g) {
  core::CohortStats sum;
  for (auto* c : cluster.Cohorts(g)) {
    const auto& s = c->stats();
    sum.fused_commits += s.fused_commits;
    sum.duplicate_prepares_answered += s.duplicate_prepares_answered;
    sum.commits_stashed_during_prepare += s.commits_stashed_during_prepare;
    sum.prepares_overtaken_by_commit += s.prepares_overtaken_by_commit;
    sum.commits_applied += s.commits_applied;
    sum.queries_resolved += s.queries_resolved;
    sum.sibling_query_resolutions += s.sibling_query_resolutions;
  }
  return sum;
}

}  // namespace

// Ablation parity: the fused path and the classic serial ladder must agree
// on every observable outcome of a cross-shard transfer workload — exact
// conservation, no stranded locks — while only the fused run reports
// decisions at committing-buffer time.
TEST(CommitFusion, FusedAndSerialPathsAgreeOnCrossShardTransfers) {
  for (bool fusion : {true, false}) {
    ClusterOptions opts;
    opts.seed = 98;
    opts.cohort.commit_fusion = fusion;
    Cluster cluster(opts);
    auto bank = workload::SetupShardedBank(cluster, 2, 3, 12);
    cluster.Start();
    ASSERT_TRUE(cluster.RunUntilStable());
    ASSERT_EQ(workload::FundShardedAccounts(cluster, bank, 100), 12);

    client::ShardRouter router(cluster.directory());
    sim::Rng rng(11);
    workload::DriverOptions dopts;
    dopts.total_txns = 30;
    dopts.max_inflight = 3;
    dopts.retries_per_txn = 10;
    workload::ClosedLoopDriver driver(
        cluster, bank.client_group,
        [&](std::uint64_t) {
          // Always cross-shard: shard 0 holds a000..a005, shard 1 the rest.
          const int from = static_cast<int>(rng.Index(6));
          const int to = 6 + static_cast<int>(rng.Index(6));
          return workload::MakeShardedTransferTxn(
              router, workload::ShardAccountName(from),
              workload::ShardAccountName(to), 2);
        },
        dopts);
    ASSERT_TRUE(driver.Run()) << "fusion=" << fusion;
    cluster.RunFor(2 * sim::kSecond);

    EXPECT_GT(driver.accounting().committed, 0u) << "fusion=" << fusion;
    EXPECT_EQ(driver.accounting().unknown, 0u) << "fusion=" << fusion;
    EXPECT_TRUE(
        check::CheckConservation(cluster, BankAccounts(12), 1200).empty())
        << "fusion=" << fusion;
    for (auto g : bank.shards) {
      EXPECT_TRUE(check::CheckQuiescent(cluster, g).empty())
          << "fusion=" << fusion;
    }
    const auto coord = SumStats(cluster, bank.client_group);
    if (fusion) {
      EXPECT_GE(coord.fused_commits, driver.accounting().committed);
    } else {
      EXPECT_EQ(coord.fused_commits, 0u);
    }
  }
}

// Matrix row 1 (DESIGN.md §13.4): the coordinator crashes after buffering
// the committing record but before ANY commit message reaches a participant.
// The client was already told kCommitted (fused report-at-buffer), so the
// replicated committing record is the only copy of the decision — the
// coordinator's backups must answer the participants' §3.4/§3.6 queries
// with "committed" after the view change, and money must move exactly once.
TEST(CommitFusion, CoordinatorCrashBeforeCommitFanoutResolvesCommitted) {
  Cluster cluster(ClusterOptions{.seed = 99});
  auto bank = workload::SetupShardedBank(cluster, 2, 3, 8);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  ASSERT_EQ(workload::FundShardedAccounts(cluster, bank, 100), 8);

  core::Cohort* coord = cluster.AnyPrimary(bank.client_group);
  ASSERT_NE(coord, nullptr);
  const vr::ViewId coord_view = coord->cur_viewid();
  // Deterministic "no commit message is ever sent": the fused decision is
  // buffered and force-replicated, but CommitOne's send loop never runs.
  coord->mutable_options().commit_attempts = 0;

  client::ShardRouter router(cluster.directory());
  vr::TxnOutcome outcome = vr::TxnOutcome::kUnknown;
  bool done = false;
  coord->SpawnTransaction(
      workload::MakeShardedTransferTxn(router, "a000", "a004", 7),
      [&](vr::TxnOutcome o) {
        outcome = o;
        done = true;
      });
  const sim::Time deadline = cluster.sim().Now() + 10 * sim::kSecond;
  while (!done && cluster.sim().Now() < deadline) {
    cluster.RunFor(100 * sim::kMicrosecond);
  }
  ASSERT_TRUE(done);
  // Fused: committed is reported at buffer time, before any participant
  // has heard the decision.
  EXPECT_EQ(outcome, vr::TxnOutcome::kCommitted);
  EXPECT_EQ(coord->stats().fused_commits, 1u);
  EXPECT_EQ(workload::ShardedCommittedBalance(cluster, "a000"), 100);

  // Let the decision force reach the coordinator's backups, then kill it.
  cluster.RunFor(2 * sim::kMillisecond);
  coord->Crash();

  // Participants hold prepared transactions with no coordinator primary.
  // Their janitors query; the coordinator group view-changes; the new
  // primary answers from the replicated committing record.
  const sim::Time resolve_deadline = cluster.sim().Now() + 30 * sim::kSecond;
  while (cluster.sim().Now() < resolve_deadline &&
         workload::ShardedCommittedBalance(cluster, "a004") != 107) {
    cluster.RunFor(50 * sim::kMillisecond);
  }
  EXPECT_EQ(workload::ShardedCommittedBalance(cluster, "a000"), 93);
  EXPECT_EQ(workload::ShardedCommittedBalance(cluster, "a004"), 107);
  EXPECT_TRUE(check::CheckConservation(cluster, BankAccounts(8), 800).empty());

  // The balances can resolve before the coordinator group finishes its view
  // change (backups answer queries from the replicated record directly);
  // wait for the new view separately.
  core::Cohort* new_coord = nullptr;
  const sim::Time view_deadline = cluster.sim().Now() + 20 * sim::kSecond;
  while (new_coord == nullptr && cluster.sim().Now() < view_deadline) {
    cluster.RunFor(100 * sim::kMillisecond);
    new_coord = cluster.AnyPrimary(bank.client_group);
  }
  ASSERT_NE(new_coord, nullptr);
  EXPECT_GT(new_coord->cur_viewid(), coord_view);
  std::uint64_t resolved = 0;
  for (auto g : bank.shards) resolved += SumStats(cluster, g).queries_resolved;
  EXPECT_GE(resolved, 1u);
  // No participant orphans a prepared transaction (§3.6).
  for (auto g : bank.shards) {
    for (auto* c : cluster.Cohorts(g)) {
      EXPECT_TRUE(c->objects().ActiveTxns().empty())
          << "cohort " << c->mid() << " holds orphaned transactions";
    }
  }
}

// Matrix row 2 (DESIGN.md §13.4): the coordinator crashes mid-fan-out —
// one participant received the commit, the other never will. The crash of
// the shard-1 primary is staged inside on_done, which runs in the same
// instant the decision is made, so the commit frame to shard 1 is still in
// flight (min one-way delay 100us) and is dropped at delivery; shard 0's
// copy lands normally. Shard 1 must then resolve through its own view
// change plus §3.4 queries against the coordinator's new view.
TEST(CommitFusion, CoordinatorCrashMidFanoutNeverOrphansPrepared) {
  Cluster cluster(ClusterOptions{.seed = 100});
  auto bank = workload::SetupShardedBank(cluster, 2, 3, 8);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  ASSERT_EQ(workload::FundShardedAccounts(cluster, bank, 8), 8);

  core::Cohort* coord = cluster.AnyPrimary(bank.client_group);
  core::Cohort* b_primary = cluster.AnyPrimary(bank.shards[1]);
  ASSERT_NE(coord, nullptr);
  ASSERT_NE(b_primary, nullptr);
  std::size_t b_idx = 0;
  {
    auto cohorts = cluster.Cohorts(bank.shards[1]);
    for (std::size_t i = 0; i < cohorts.size(); ++i) {
      if (cohorts[i] == b_primary) b_idx = i;
    }
  }

  client::ShardRouter router(cluster.directory());
  vr::TxnOutcome outcome = vr::TxnOutcome::kUnknown;
  bool done = false;
  coord->SpawnTransaction(
      workload::MakeShardedTransferTxn(router, "a000", "a004", 3),
      [&](vr::TxnOutcome o) {
        outcome = o;
        done = true;
        // Same-instant crash: the commit frame addressed to this primary is
        // in flight and will be dropped at delivery (receiver down).
        b_primary->Crash();
      });
  const sim::Time deadline = cluster.sim().Now() + 10 * sim::kSecond;
  while (!done && cluster.sim().Now() < deadline) {
    cluster.RunFor(100 * sim::kMicrosecond);
  }
  ASSERT_TRUE(done);
  EXPECT_EQ(outcome, vr::TxnOutcome::kCommitted);

  // Shard 0's commit copy lands; then the coordinator primary dies before
  // any retransmission to shard 1 can fire.
  cluster.RunFor(2 * sim::kMillisecond);
  coord->Crash();

  const sim::Time resolve_deadline = cluster.sim().Now() + 40 * sim::kSecond;
  while (cluster.sim().Now() < resolve_deadline &&
         workload::ShardedCommittedBalance(cluster, "a004") != 11) {
    cluster.RunFor(50 * sim::kMillisecond);
  }
  // The prepared transaction at shard 1 survived its primary's crash (the
  // prepare force put it on a sub-majority of backups) and resolved to
  // committed — exactly once, on both legs.
  EXPECT_EQ(workload::ShardedCommittedBalance(cluster, "a000"), 5);
  EXPECT_EQ(workload::ShardedCommittedBalance(cluster, "a004"), 11);
  EXPECT_TRUE(check::CheckConservation(cluster, BankAccounts(8), 64).empty());
  for (auto g : bank.shards) {
    for (auto* c : cluster.Cohorts(g)) {
      EXPECT_TRUE(c->objects().ActiveTxns().empty())
          << "cohort " << c->mid() << " holds orphaned transactions";
    }
  }

  // The crashed shard-1 primary rejoins cleanly behind the commit.
  cluster.Recover(bank.shards[1], b_idx);
  ASSERT_TRUE(cluster.RunUntilStable());
  cluster.RunFor(3 * sim::kSecond);
  EXPECT_TRUE(check::CheckConservation(cluster, BankAccounts(8), 64).empty());
}

// Satellite idempotence audit: with every frame duplicated and some lost,
// retransmitted prepares race their own commits. The participant must
// answer duplicate prepares idempotently, stash commit decisions that
// arrive while a (re)transmitted prepare is mid-force, and never apply a
// commit twice — proven by exact conservation over the whole run.
TEST(CommitFusion, DuplicatedLossyNetworkKeepsFusedCommitsExactlyOnce) {
  ClusterOptions opts;
  opts.seed = 103;
  opts.net.duplicate_probability = 0.6;
  opts.net.loss_probability = 0.05;
  Cluster cluster(opts);
  auto bank = workload::SetupShardedBank(cluster, 2, 3, 12);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  ASSERT_EQ(workload::FundShardedAccounts(cluster, bank, 100), 12);

  client::ShardRouter router(cluster.directory());
  sim::Rng rng(23);
  workload::DriverOptions dopts;
  dopts.total_txns = 40;
  dopts.max_inflight = 4;
  dopts.retries_per_txn = 10;
  workload::ClosedLoopDriver driver(
      cluster, bank.client_group,
      [&](std::uint64_t) {
        const int from = static_cast<int>(rng.Index(6));
        const int to = 6 + static_cast<int>(rng.Index(6));
        return workload::MakeShardedTransferTxn(
            router, workload::ShardAccountName(from),
            workload::ShardAccountName(to), 2);
      },
      dopts);
  ASSERT_TRUE(driver.Run());
  cluster.RunFor(3 * sim::kSecond);

  EXPECT_GT(driver.accounting().committed, 0u);
  EXPECT_TRUE(
      check::CheckConservation(cluster, BankAccounts(12), 1200).empty());
  for (auto g : bank.shards) {
    EXPECT_TRUE(check::CheckQuiescent(cluster, g).empty());
  }
  core::CohortStats shard_sum;
  for (auto g : bank.shards) {
    const auto s = SumStats(cluster, g);
    shard_sum.duplicate_prepares_answered += s.duplicate_prepares_answered;
    shard_sum.commits_stashed_during_prepare +=
        s.commits_stashed_during_prepare;
    shard_sum.prepares_overtaken_by_commit += s.prepares_overtaken_by_commit;
  }
  // The dup/loss mix must actually exercise the idempotence paths.
  EXPECT_GT(shard_sum.duplicate_prepares_answered, 0u);
}

// §3.6 sibling fallback: a prepared participant whose coordinator group is
// partitioned away AFTER the decision was made (but before its commit
// message arrived) must not stay wedged until the partition heals — the
// prepare's pset named the sibling participants, and a sibling that already
// applied the decision answers the query authoritatively.
TEST(Queries, PartitionedParticipantResolvesViaSiblings) {
  Cluster cluster(ClusterOptions{.seed = 104});
  auto bank = workload::SetupShardedBank(cluster, 2, 3, 8);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  ASSERT_EQ(workload::FundShardedAccounts(cluster, bank, 100), 8);

  core::Cohort* coord = cluster.AnyPrimary(bank.client_group);
  ASSERT_NE(coord, nullptr);
  // Stretch the decision coalesce window so the commit fan-out provably
  // happens after the link cut below; only the retry path (direct sends)
  // can deliver the decision, and those the cut blocks toward shard 1.
  coord->mutable_options().decision_coalesce_delay = 5 * sim::kSecond;

  client::ShardRouter router(cluster.directory());
  vr::TxnOutcome outcome = vr::TxnOutcome::kUnknown;
  bool done = false;
  coord->SpawnTransaction(
      workload::MakeShardedTransferTxn(router, "a000", "a004", 7),
      [&](vr::TxnOutcome o) {
        outcome = o;
        done = true;
      });
  const sim::Time deadline = cluster.sim().Now() + 10 * sim::kSecond;
  while (!done && cluster.sim().Now() < deadline) {
    cluster.RunFor(100 * sim::kMicrosecond);
  }
  ASSERT_TRUE(done);
  ASSERT_EQ(outcome, vr::TxnOutcome::kCommitted);  // fused, reported at buffer

  // Both participants are prepared; the decision is replicated at the
  // coordinator group but no CommitMsg has been flushed yet (and the direct
  // retry sends have not started). Cut every coordinator<->shard-1 link
  // (both directions) NOW: shard 1 can neither receive the commit nor reach
  // any coordinator cohort with its queries.
  for (auto* a : cluster.Cohorts(bank.client_group)) {
    for (auto* b : cluster.Cohorts(bank.shards[1])) {
      cluster.network().SetLinkDown(a->mid(), b->mid(), true);
    }
  }

  // Shard 0 learns the decision from the coordinator's commit retries;
  // shard 1's janitor queries the coordinator group (dead air), then falls
  // back to its pset sibling — shard 0 — and resolves committed. No heal.
  const sim::Time resolve_deadline = cluster.sim().Now() + 60 * sim::kSecond;
  while (cluster.sim().Now() < resolve_deadline &&
         workload::ShardedCommittedBalance(cluster, "a004") != 107) {
    cluster.RunFor(100 * sim::kMillisecond);
  }
  EXPECT_EQ(workload::ShardedCommittedBalance(cluster, "a000"), 93);
  EXPECT_EQ(workload::ShardedCommittedBalance(cluster, "a004"), 107);
  EXPECT_GE(SumStats(cluster, bank.shards[1]).sibling_query_resolutions, 1u);
  for (auto* c : cluster.Cohorts(bank.shards[1])) {
    EXPECT_TRUE(c->objects().ActiveTxns().empty())
        << "cohort " << c->mid() << " still holds the prepared transaction";
  }
  cluster.network().Heal();
}

// -- backup read leases (DESIGN.md §14) -------------------------------------

namespace {

// Collects backup-read replies sent to a raw test mid.
struct ReadReplyCapture : net::FrameHandler {
  std::vector<vr::BackupReadReplyMsg> replies;
  void OnFrame(const net::Frame& f) override {
    if (static_cast<vr::MsgType>(f.type) != vr::MsgType::kBackupReadReply) {
      return;
    }
    wire::Reader r(f.payload);
    auto m = vr::BackupReadReplyMsg::Decode(r);
    if (r.ok()) replies.push_back(std::move(m));
  }
};

std::optional<vr::BackupReadReplyMsg> OneDirectRead(
    Cluster& cluster, ReadReplyCapture& capture, vr::Mid from, vr::Mid to,
    vr::GroupId group, const std::string& uid, vr::Viewstamp horizon = {}) {
  static std::uint64_t corr = 50000;
  vr::BackupReadMsg m;
  m.group = group;
  m.uid = uid;
  m.horizon = horizon;
  m.corr = ++corr;
  m.reply_to = from;
  cluster.network().Send(from, to,
                         static_cast<std::uint16_t>(vr::MsgType::kBackupRead),
                         vr::EncodeMsg(m));
  const sim::Time deadline = cluster.sim().Now() + 1 * sim::kSecond;
  while (cluster.sim().Now() < deadline) {
    cluster.RunFor(1 * sim::kMillisecond);
    for (auto& r : capture.replies) {
      if (r.corr == m.corr) return r;
    }
  }
  return std::nullopt;
}

}  // namespace

// The revocation race: a backup partitioned away with a still-valid 60s
// lease keeps serving the OLD view's committed state (safe — those values
// survive every view formation by the lease admission rule), but it must
// REFUSE any session that has already observed the new view, no matter how
// much lease timer remains. The lease is pinned to the viewstamp's view;
// view formation revokes it crashed-equivalent, and a straggler that never
// heard about the new view is protected by the same pin.
TEST(Leases, StaleLeaseNeverServesASessionFromTheFuture) {
  ClusterOptions opts;
  opts.seed = 105;
  opts.cohort.backup_reads = true;
  // Long lease: with the default 60ms lease the refusals below would also
  // be explainable by timer expiry. At 60s only the view pin can refuse.
  opts.cohort.read_lease_duration = 60 * sim::kSecond;
  Cluster cluster(opts);
  // Five kv replicas: after isolating the straggler and crashing the old
  // primary, the remaining three are still a majority and form a new view.
  auto kv = cluster.AddGroup("kv", 5);
  auto agents = cluster.AddGroup("agents", 3);
  RegisterKvProcs(cluster, kv);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  // Two writes: the second's acks renew the lease with a stable watermark
  // covering the first's commit record. The 60s lease renews every 7.5
  // simulated seconds (duration/8), so space them past that interval.
  ASSERT_EQ(test::RunOneCall(cluster, agents, kv, "put", "x=old"),
            vr::TxnOutcome::kCommitted);
  cluster.RunFor(8 * sim::kSecond);
  ASSERT_EQ(test::RunOneCall(cluster, agents, kv, "put", "pad=1"),
            vr::TxnOutcome::kCommitted);
  cluster.RunFor(20 * sim::kMillisecond);

  ReadReplyCapture capture;
  const vr::Mid test_mid = cluster.AllocateMid();
  cluster.network().Register(test_mid, &capture);

  core::Cohort* old_primary = cluster.AnyPrimary(kv);
  ASSERT_NE(old_primary, nullptr);
  const vr::ViewId old_view = old_primary->cur_viewid();
  std::size_t primary_idx = 0;
  core::Cohort* straggler = nullptr;
  for (std::size_t i = 0; i < 5; ++i) {
    core::Cohort* c = &cluster.CohortAt(kv, i);
    if (c == old_primary) {
      primary_idx = i;
    } else if (straggler == nullptr) {
      straggler = c;
    }
  }
  ASSERT_NE(straggler, nullptr);
  auto before =
      OneDirectRead(cluster, capture, test_mid, straggler->mid(), kv, "x");
  ASSERT_TRUE(before.has_value());
  ASSERT_EQ(before->status, vr::ReadStatus::kOk);  // lease live in old view

  // Isolate the lease-holding straggler from its group and the agents (the
  // test mid keeps its links, so we can still probe it), and keep it from
  // churning into view formation on its own.
  straggler->mutable_options().liveness_timeout = 600 * sim::kSecond;
  for (auto* c : cluster.Cohorts(kv)) {
    if (c != straggler) {
      cluster.network().SetLinkDown(straggler->mid(), c->mid(), true);
    }
  }
  for (auto* c : cluster.Cohorts(agents)) {
    cluster.network().SetLinkDown(straggler->mid(), c->mid(), true);
  }

  // Crash the primary for good: the three connected replicas form a new
  // view the straggler never hears about, and commit a newer x there.
  cluster.Crash(kv, primary_idx);
  core::Cohort* new_primary = nullptr;
  const sim::Time deadline = cluster.sim().Now() + 30 * sim::kSecond;
  while (cluster.sim().Now() < deadline) {
    cluster.RunFor(100 * sim::kMillisecond);
    new_primary = cluster.AnyPrimary(kv);
    if (new_primary != nullptr && new_primary != straggler &&
        new_primary->cur_viewid() > old_view) {
      break;
    }
    new_primary = nullptr;
  }
  ASSERT_NE(new_primary, nullptr);
  ASSERT_EQ(test::RunOneCallWithRetry(cluster, agents, kv, "put", "x=new"),
            vr::TxnOutcome::kCommitted);

  // A session reads x at the new primary and observes the new view.
  auto at_new = OneDirectRead(cluster, capture, test_mid, new_primary->mid(),
                              kv, "x");
  ASSERT_TRUE(at_new.has_value());
  ASSERT_EQ(at_new->status, vr::ReadStatus::kOk);
  ASSERT_EQ(std::string(at_new->value.begin(), at_new->value.end()), "new");
  ASSERT_GT(at_new->served_vs.view, old_view);

  // That session now asks the straggler. Its lease has ~50 simulated
  // seconds of timer left — and it must still refuse: the horizon's view
  // is beyond the view its lease pins, so serving could hand the session
  // the overwritten value.
  auto stale = OneDirectRead(cluster, capture, test_mid, straggler->mid(), kv,
                             "x", at_new->served_vs);
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(stale->status, vr::ReadStatus::kTooNew);

  // A fresh session (empty horizon) is still served the OLD committed value
  // under the old-view lease — legal (serializable before the new write)
  // and exactly why leases need no synchronous revocation round.
  auto fresh = OneDirectRead(cluster, capture, test_mid, straggler->mid(), kv,
                             "x");
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->status, vr::ReadStatus::kOk);
  EXPECT_EQ(std::string(fresh->value.begin(), fresh->value.end()), "old");
  EXPECT_EQ(fresh->served_vs.view, old_view);

  // Heal: the straggler adopts the new view (revoking the old lease), gets
  // a fresh grant from the catch-up ack traffic, and serves the new value
  // to the future session.
  for (auto* c : cluster.Cohorts(kv)) {
    if (c != straggler) {
      cluster.network().SetLinkDown(straggler->mid(), c->mid(), false);
    }
  }
  for (auto* c : cluster.Cohorts(agents)) {
    cluster.network().SetLinkDown(straggler->mid(), c->mid(), false);
  }
  ASSERT_TRUE(cluster.RunUntilStable());
  std::optional<vr::BackupReadReplyMsg> healed;
  const sim::Time heal_deadline = cluster.sim().Now() + 20 * sim::kSecond;
  while (cluster.sim().Now() < heal_deadline) {
    healed = OneDirectRead(cluster, capture, test_mid, straggler->mid(), kv,
                           "x", at_new->served_vs);
    if (healed && healed->status == vr::ReadStatus::kOk) break;
    cluster.RunFor(500 * sim::kMillisecond);
  }
  ASSERT_TRUE(healed.has_value());
  ASSERT_EQ(healed->status, vr::ReadStatus::kOk);
  EXPECT_EQ(std::string(healed->value.begin(), healed->value.end()), "new");
  EXPECT_GT(healed->served_vs.view, old_view);
}

}  // namespace
}  // namespace vsr
