// Property-based tests (parameterized sweeps over seeds): each property is
// checked against a brute-force oracle or an algebraic invariant on
// randomized inputs.
#include <gtest/gtest.h>

#include "baseline/models.h"
#include "check/invariants.h"
#include "check/serial.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/simulation.h"
#include "txn/object_store.h"
#include "vr/comm_buffer.h"
#include "vr/history.h"
#include "vr/messages.h"

namespace vsr {
namespace {

class Seeded : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, Seeded,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           144, 233));

// ---------------------------------------------------------------------------
// compatible() / vs_max() vs brute force
// ---------------------------------------------------------------------------

TEST_P(Seeded, CompatibleMatchesBruteForce) {
  sim::Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    // Random history: 1..4 views with increasing viewids, random ts.
    vr::History h;
    std::uint64_t counter = 0;
    const int views = 1 + static_cast<int>(rng.Index(4));
    for (int v = 0; v < views; ++v) {
      counter += 1 + rng.Index(3);
      h.OpenView({counter, static_cast<vr::Mid>(1 + rng.Index(3))});
      h.Advance(rng.Index(20));
    }
    // Random pset over groups {5, 6}.
    vr::Pset ps;
    const int entries = static_cast<int>(rng.Index(6));
    for (int e = 0; e < entries; ++e) {
      vr::PsetEntry p;
      p.groupid = rng.Bernoulli(0.7) ? 5 : 6;
      p.vs.view = {1 + rng.Index(counter + 1),
                   static_cast<vr::Mid>(1 + rng.Index(3))};
      p.vs.ts = rng.Index(25);
      p.sub = static_cast<std::uint32_t>(rng.Index(3));
      ps.push_back(p);
    }

    // Oracle: every group-5 entry must have a history entry with the same
    // viewid and ts >= entry ts.
    bool oracle = true;
    for (const auto& p : ps) {
      if (p.groupid != 5) continue;
      bool covered = false;
      for (const auto& he : h.entries()) {
        if (he.view == p.vs.view && p.vs.ts <= he.ts) covered = true;
      }
      if (!covered) oracle = false;
    }
    EXPECT_EQ(vr::Compatible(ps, 5, h), oracle) << "iter " << iter;

    // vs_max oracle.
    std::optional<vr::Viewstamp> best;
    for (const auto& p : ps) {
      if (p.groupid != 5) continue;
      if (!best || *best < p.vs) best = p.vs;
    }
    EXPECT_EQ(vr::VsMax(ps, 5), best) << "iter " << iter;
  }
}

// ---------------------------------------------------------------------------
// Pset algebra over many groups: MergePset / PsetGroups / Compatible / VsMax
// against brute-force oracles on multi-group psets (the shapes cross-shard
// 2PC produces — one entry per participant group per call)
// ---------------------------------------------------------------------------

TEST_P(Seeded, PsetAlgebraOverManyGroups) {
  sim::Rng rng(GetParam() * 641 + 7);
  auto random_pset = [&](std::size_t max_entries) {
    vr::Pset ps;
    const std::size_t n = rng.Index(max_entries + 1);
    for (std::size_t e = 0; e < n; ++e) {
      vr::PsetEntry p;
      p.groupid = 1 + rng.Index(6);
      p.vs.view = {1 + rng.Index(5), static_cast<vr::Mid>(1 + rng.Index(3))};
      p.vs.ts = rng.Index(8);
      p.sub = static_cast<std::uint32_t>(rng.Index(2));
      ps.push_back(p);
    }
    return ps;
  };

  for (int iter = 0; iter < 200; ++iter) {
    const vr::Pset a = random_pset(8), b = random_pset(8);
    vr::Pset m = a;
    vr::MergePset(m, b);

    // Contract: m is `a` verbatim followed by the entries of `b` not already
    // present, in b's order — the reply-merging path must neither reorder
    // what the coordinator saw nor duplicate a participant's entry.
    ASSERT_GE(m.size(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(m[i], a[i]);
    std::set<vr::PsetEntry> in_a(a.begin(), a.end());
    std::vector<vr::PsetEntry> tail_oracle;
    std::set<vr::PsetEntry> seen = in_a;
    for (const vr::PsetEntry& e : b) {
      if (seen.insert(e).second) tail_oracle.push_back(e);
    }
    ASSERT_EQ(m.size(), a.size() + tail_oracle.size());
    for (std::size_t i = 0; i < tail_oracle.size(); ++i) {
      EXPECT_EQ(m[a.size() + i], tail_oracle[i]);
    }

    // Idempotence: merging the same pset again changes nothing.
    vr::Pset m2 = m;
    vr::MergePset(m2, b);
    EXPECT_EQ(m2, m);
    vr::MergePset(m2, a);
    EXPECT_EQ(m2, m);

    // PsetGroups: distinct groupids in first-appearance order.
    std::vector<vr::GroupId> groups_oracle;
    for (const vr::PsetEntry& e : m) {
      if (std::find(groups_oracle.begin(), groups_oracle.end(), e.groupid) ==
          groups_oracle.end()) {
        groups_oracle.push_back(e.groupid);
      }
    }
    EXPECT_EQ(vr::PsetGroups(m), groups_oracle);

    // Compatible / VsMax per participant group of the merged pset, against
    // an independent random history for that group.
    for (vr::GroupId g : vr::PsetGroups(m)) {
      vr::History h;
      std::uint64_t counter = 0;
      const int views = 1 + static_cast<int>(rng.Index(3));
      for (int v = 0; v < views; ++v) {
        counter += 1 + rng.Index(3);
        h.OpenView({counter, static_cast<vr::Mid>(1 + rng.Index(3))});
        h.Advance(rng.Index(10));
      }
      bool compat_oracle = true;
      std::optional<vr::Viewstamp> max_oracle;
      for (const vr::PsetEntry& e : m) {
        if (e.groupid != g) continue;
        bool covered = false;
        for (const auto& he : h.entries()) {
          if (he.view == e.vs.view && e.vs.ts <= he.ts) covered = true;
        }
        if (!covered) compat_oracle = false;
        if (!max_oracle || *max_oracle < e.vs) max_oracle = e.vs;
      }
      EXPECT_EQ(vr::Compatible(m, g, h), compat_oracle)
          << "iter " << iter << " group " << g;
      EXPECT_EQ(vr::VsMax(m, g), max_oracle)
          << "iter " << iter << " group " << g;
    }
  }
}

// ---------------------------------------------------------------------------
// CommBuffer StableTs is the sub-majority-th order statistic of acks
// ---------------------------------------------------------------------------

TEST_P(Seeded, StableTsIsKthOrderStatistic) {
  sim::Rng rng(GetParam() * 7 + 1);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 3 + 2 * rng.Index(3);  // 3, 5, 7
    sim::Simulation simulation(GetParam() + iter);
    vr::History h;
    vr::ViewId vid{1, 1};
    h.OpenView(vid);
    std::vector<vr::Mid> backups;
    for (std::size_t b = 0; b < n - 1; ++b) {
      backups.push_back(static_cast<vr::Mid>(b + 2));
    }
    vr::CommBuffer buffer(
        simulation, {}, [](vr::Mid, const vr::BufferBatchMsg&) {}, [] {});
    buffer.StartView(vid, backups, n, 1, 1, &h);
    const int records = 10;
    for (int i = 0; i < records; ++i) {
      buffer.Add(vr::EventRecord::Done(vr::Aid{}));
    }
    std::map<vr::Mid, std::uint64_t> acked;
    for (vr::Mid b : backups) acked[b] = 0;
    for (int step = 0; step < 30; ++step) {
      const vr::Mid b = backups[rng.Index(backups.size())];
      const std::uint64_t ts = rng.Index(records + 1);
      vr::BufferAckMsg ack;
      ack.group = 1;
      ack.viewid = vid;
      ack.from = b;
      ack.ts = ts;
      buffer.OnAck(ack);
      acked[b] = std::max(acked[b], ts);
      // Oracle: k-th largest ack where k = sub-majority.
      std::vector<std::uint64_t> sorted;
      for (auto& [m, t] : acked) sorted.push_back(t);
      std::sort(sorted.begin(), sorted.end(), std::greater<>());
      const std::size_t k = vr::SubMajorityOf(n);
      EXPECT_EQ(buffer.StableTs(), sorted[k - 1]);
    }
  }
}

// ---------------------------------------------------------------------------
// Wire round-trips on randomized messages
// ---------------------------------------------------------------------------

TEST_P(Seeded, RandomizedMessageRoundTrip) {
  sim::Rng rng(GetParam() * 13 + 5);
  auto random_string = [&](std::size_t max_len) {
    std::string s(rng.Index(max_len + 1), '\0');
    for (auto& c : s) c = static_cast<char>('a' + rng.Index(26));
    return s;
  };
  for (int iter = 0; iter < 100; ++iter) {
    vr::CallMsg m;
    m.group = rng.Next();
    m.viewid = {rng.Next(), static_cast<vr::Mid>(rng.Next())};
    m.call_id = rng.Next();
    m.call_seq = rng.Next();
    m.reply_to = static_cast<vr::Mid>(rng.Next());
    m.sub_aid = {vr::Aid{rng.Next(), {rng.Next(), 3}, rng.Next()},
                 static_cast<std::uint32_t>(rng.Next())};
    const std::size_t deads = rng.Index(4);
    for (std::size_t d = 0; d < deads; ++d) {
      m.dead_subs.push_back(static_cast<std::uint32_t>(rng.Next()));
    }
    m.proc = random_string(12);
    m.args.resize(rng.Index(64));
    for (auto& b : m.args) b = static_cast<std::uint8_t>(rng.Next());

    auto bytes = vr::EncodeMsg(m);
    wire::Reader r(bytes);
    auto out = vr::CallMsg::Decode(r);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(out.group, m.group);
    EXPECT_EQ(out.viewid, m.viewid);
    EXPECT_EQ(out.call_seq, m.call_seq);
    EXPECT_EQ(out.sub_aid, m.sub_aid);
    EXPECT_EQ(out.dead_subs, m.dead_subs);
    EXPECT_EQ(out.proc, m.proc);
    EXPECT_EQ(out.args, m.args);
  }
}

// ---------------------------------------------------------------------------
// Scheduler: random event times fire in nondecreasing time order, ties in
// insertion order
// ---------------------------------------------------------------------------

TEST_P(Seeded, SchedulerOrderingProperty) {
  sim::Rng rng(GetParam() * 31);
  sim::Scheduler sched;
  struct Fired {
    sim::Time at;
    int seq;
  };
  std::vector<Fired> fired;
  std::vector<std::pair<sim::Time, int>> inserted;
  for (int i = 0; i < 500; ++i) {
    const sim::Time t = rng.Index(100);
    inserted.push_back({t, i});
    sched.At(t, [&fired, t, i] { fired.push_back({t, i}); });
  }
  sched.RunToQuiescence();
  ASSERT_EQ(fired.size(), inserted.size());
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_LE(fired[i - 1].at, fired[i].at);
    if (fired[i - 1].at == fired[i].at) {
      ASSERT_LT(fired[i - 1].seq, fired[i].seq);  // insertion order on ties
    }
  }
}

// ---------------------------------------------------------------------------
// ObjectStore: random operation sequences keep lock/tentative invariants;
// snapshot/restore is lossless
// ---------------------------------------------------------------------------

TEST_P(Seeded, ObjectStoreRandomOpsInvariants) {
  sim::Rng rng(GetParam() * 101 + 3);
  sim::Simulation simulation(GetParam());
  txn::ObjectStore store(simulation);

  std::set<std::uint64_t> live;
  std::uint64_t next_txn = 1;
  auto aid = [](std::uint64_t seq) { return vr::Aid{1, {1, 1}, seq}; };
  const std::vector<std::string> keys{"a", "b", "c", "d"};

  for (int step = 0; step < 500; ++step) {
    const std::uint64_t dice = rng.Index(10);
    if (dice < 4 || live.empty()) {
      const std::uint64_t t = live.empty() || rng.Bernoulli(0.3)
                                  ? next_txn++
                                  : *live.begin();
      live.insert(t);
      const std::string& k = keys[rng.Index(keys.size())];
      if (store.TryAcquire(k, aid(t), rng.Bernoulli(0.5)
                                          ? vr::LockMode::kWrite
                                          : vr::LockMode::kRead)) {
        if (store.HoldsLock(k, aid(t), vr::LockMode::kWrite) &&
            rng.Bernoulli(0.8)) {
          store.WriteTentative(k, {aid(t), 0}, "t" + std::to_string(t));
        }
      }
    } else if (dice < 7) {
      const std::uint64_t t = *live.begin();
      store.Commit(aid(t));
      live.erase(t);
    } else {
      const std::uint64_t t = *live.begin();
      store.Abort(aid(t));
      live.erase(t);
    }
    // Invariant: tentative versions only exist for transactions that hold
    // locks (live); committed/aborted transactions leave nothing behind.
    for (const vr::Aid& a : store.ActiveTxns()) {
      EXPECT_TRUE(live.count(a.seq) != 0) << "ghost txn " << a.seq;
    }
  }
  // Snapshot/restore losslessness mid-state.
  wire::Writer w;
  store.Snapshot(w);
  auto bytes = w.Take();
  txn::ObjectStore copy(simulation);
  wire::Reader r(bytes);
  copy.Restore(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(check::StateDigest(copy), check::StateDigest(store));
  EXPECT_EQ(copy.lock_count(), store.lock_count());
  EXPECT_EQ(copy.tentative_count(), store.tentative_count());
}

// ---------------------------------------------------------------------------
// Chain checker: generated serial executions validate; injected anomalies
// are caught
// ---------------------------------------------------------------------------

TEST_P(Seeded, ChainCheckerAcceptsSerialRejectsAnomalies) {
  sim::Rng rng(GetParam() * 211);
  // Build a genuine serial chain with some unknown-outcome links.
  check::RegisterChainChecker good;
  std::string prev = "";
  std::vector<std::pair<std::string, std::string>> committed_edges;
  const int len = 5 + static_cast<int>(rng.Index(10));
  for (int i = 0; i < len; ++i) {
    std::string next = "v" + std::to_string(i);
    if (rng.Bernoulli(0.2)) {
      good.NoteUnknown(prev, next);
    } else {
      good.NoteCommitted(prev, next);
      committed_edges.push_back({prev, next});
    }
    prev = next;
  }
  std::string why;
  EXPECT_TRUE(good.Validate("", prev, &why)) << why;

  if (committed_edges.size() >= 2) {
    // Anomaly 1: lost update — duplicate a committed prev with a new write.
    check::RegisterChainChecker lost = good;
    lost.NoteCommitted(committed_edges[0].first, "dup");
    EXPECT_FALSE(lost.Validate("", prev, &why));

    // Anomaly 2: dirty read — a committed txn read a never-written value.
    check::RegisterChainChecker dirty = good;
    dirty.NoteCommitted("phantom", "dirty-next");
    EXPECT_FALSE(dirty.Validate("", prev, &why));

    // Anomaly 3: wrong final state.
    EXPECT_FALSE(good.Validate("", "not-the-final-value", &why));
  }
}

// ---------------------------------------------------------------------------
// k-of-n availability model vs Monte Carlo
// ---------------------------------------------------------------------------

TEST_P(Seeded, KOfNModelMatchesMonteCarlo) {
  sim::Rng rng(GetParam() * 977);
  const std::size_t n = 3 + 2 * rng.Index(3);
  const std::size_t need = (n / 2) + 1;
  const double a = 0.7 + 0.25 * rng.UniformDouble();
  const int trials = 20000;
  int up_trials = 0;
  for (int t = 0; t < trials; ++t) {
    std::size_t up = 0;
    for (std::size_t i = 0; i < n; ++i) up += rng.Bernoulli(a) ? 1 : 0;
    if (up >= need) ++up_trials;
  }
  EXPECT_NEAR(static_cast<double>(up_trials) / trials,
              baseline::KOfNAvailability(n, need, a), 0.015);
}

// ---------------------------------------------------------------------------
// History per-view prefix property: Knows() is monotone in ts and respects
// Advance
// ---------------------------------------------------------------------------

TEST_P(Seeded, HistoryKnowledgeIsPrefixClosed) {
  sim::Rng rng(GetParam() * 389);
  vr::History h;
  std::uint64_t counter = 0;
  for (int v = 0; v < 5; ++v) {
    counter += 1 + rng.Index(2);
    vr::ViewId vid{counter, 1};
    h.OpenView(vid);
    const std::uint64_t final_ts = rng.Index(30);
    h.Advance(final_ts);
    // Prefix closure: knowing ts implies knowing every smaller ts.
    for (std::uint64_t t = 0; t <= final_ts + 2; ++t) {
      const bool knows = h.Knows({vid, t});
      EXPECT_EQ(knows, t <= final_ts);
      if (t > 0 && knows) {
        EXPECT_TRUE(h.Knows({vid, t - 1}));
      }
    }
  }
}

}  // namespace
}  // namespace vsr
