// Unit tests for the transaction substrate: strict-2PL locking, tentative
// versions, subaction discard, backup-side effect application, snapshots.
#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "txn/object_store.h"
#include "txn/outcomes.h"

namespace vsr::txn {
namespace {

using vr::Aid;
using vr::LockMode;
using vr::ObjectEffect;
using vr::SubAid;

Aid A(std::uint64_t seq) { return Aid{1, {1, 1}, seq}; }

class ObjectStoreTest : public ::testing::Test {
 protected:
  ObjectStoreTest() : sim_(1), store_(sim_) {}
  sim::Simulation sim_;
  ObjectStore store_;
};

TEST_F(ObjectStoreTest, ReadLocksShare) {
  EXPECT_TRUE(store_.TryAcquire("x", A(1), LockMode::kRead));
  EXPECT_TRUE(store_.TryAcquire("x", A(2), LockMode::kRead));
  EXPECT_TRUE(store_.HoldsLock("x", A(1), LockMode::kRead));
  EXPECT_TRUE(store_.HoldsLock("x", A(2), LockMode::kRead));
}

TEST_F(ObjectStoreTest, WriteLockExcludes) {
  EXPECT_TRUE(store_.TryAcquire("x", A(1), LockMode::kWrite));
  EXPECT_FALSE(store_.TryAcquire("x", A(2), LockMode::kRead));
  EXPECT_FALSE(store_.TryAcquire("x", A(2), LockMode::kWrite));
}

TEST_F(ObjectStoreTest, ReadBlocksWriteBySomeoneElse) {
  EXPECT_TRUE(store_.TryAcquire("x", A(1), LockMode::kRead));
  EXPECT_FALSE(store_.TryAcquire("x", A(2), LockMode::kWrite));
}

TEST_F(ObjectStoreTest, OwnUpgradeWhenSoleHolder) {
  EXPECT_TRUE(store_.TryAcquire("x", A(1), LockMode::kRead));
  EXPECT_TRUE(store_.TryAcquire("x", A(1), LockMode::kWrite));
  EXPECT_TRUE(store_.HoldsLock("x", A(1), LockMode::kWrite));
}

TEST_F(ObjectStoreTest, UpgradeBlockedByOtherReader) {
  EXPECT_TRUE(store_.TryAcquire("x", A(1), LockMode::kRead));
  EXPECT_TRUE(store_.TryAcquire("x", A(2), LockMode::kRead));
  EXPECT_FALSE(store_.TryAcquire("x", A(1), LockMode::kWrite));
}

TEST_F(ObjectStoreTest, WaiterGrantedOnRelease) {
  ASSERT_TRUE(store_.TryAcquire("x", A(1), LockMode::kWrite));
  bool granted = false;
  store_.Acquire("x", A(2), LockMode::kWrite, 1000, [&](bool ok) {
    granted = ok;
  });
  EXPECT_FALSE(granted);
  store_.Abort(A(1));
  EXPECT_TRUE(granted);
}

TEST_F(ObjectStoreTest, WaiterTimesOut) {
  ASSERT_TRUE(store_.TryAcquire("x", A(1), LockMode::kWrite));
  bool done = false, ok = true;
  store_.Acquire("x", A(2), LockMode::kWrite, 100, [&](bool o) {
    done = true;
    ok = o;
  });
  sim_.scheduler().RunUntil(200);
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
  EXPECT_EQ(store_.stats().wait_timeouts, 1u);
}

TEST_F(ObjectStoreTest, FifoFairnessWithReadSharing) {
  ASSERT_TRUE(store_.TryAcquire("x", A(1), LockMode::kWrite));
  std::vector<int> grants;
  store_.Acquire("x", A(2), LockMode::kRead, 10000,
                 [&](bool ok) { if (ok) grants.push_back(2); });
  store_.Acquire("x", A(3), LockMode::kRead, 10000,
                 [&](bool ok) { if (ok) grants.push_back(3); });
  store_.Acquire("x", A(4), LockMode::kWrite, 10000,
                 [&](bool ok) { if (ok) grants.push_back(4); });
  store_.Commit(A(1));
  // Both readers admitted together; the writer stays blocked behind them.
  EXPECT_EQ(grants, (std::vector<int>{2, 3}));
  store_.Commit(A(2));
  store_.Commit(A(3));
  EXPECT_EQ(grants, (std::vector<int>{2, 3, 4}));
}

TEST_F(ObjectStoreTest, CommitInstallsLatestTentative) {
  ASSERT_TRUE(store_.TryAcquire("x", A(1), LockMode::kWrite));
  EXPECT_TRUE(store_.WriteTentative("x", {A(1), 0}, "v1"));
  EXPECT_TRUE(store_.WriteTentative("x", {A(1), 0}, "v2"));
  EXPECT_EQ(store_.Read("x", A(1)).value_or(""), "v2");
  EXPECT_FALSE(store_.ReadCommitted("x").has_value());
  store_.Commit(A(1));
  EXPECT_EQ(store_.ReadCommitted("x").value_or(""), "v2");
  EXPECT_EQ(store_.lock_count(), 0u);
  EXPECT_EQ(store_.tentative_count(), 0u);
}

TEST_F(ObjectStoreTest, AbortDiscardsTentative) {
  ASSERT_TRUE(store_.TryAcquire("x", A(1), LockMode::kWrite));
  store_.WriteTentative("x", {A(1), 0}, "dirty");
  store_.Abort(A(1));
  EXPECT_FALSE(store_.ReadCommitted("x").has_value());
  EXPECT_EQ(store_.lock_count(), 0u);
}

TEST_F(ObjectStoreTest, WriteTentativeRequiresWriteLock) {
  EXPECT_FALSE(store_.WriteTentative("x", {A(1), 0}, "v"));
  ASSERT_TRUE(store_.TryAcquire("x", A(1), LockMode::kRead));
  EXPECT_FALSE(store_.WriteTentative("x", {A(1), 0}, "v"));
}

TEST_F(ObjectStoreTest, ReadSeesOwnTentativeOthersSeeBase) {
  ASSERT_TRUE(store_.TryAcquire("x", A(1), LockMode::kWrite));
  store_.WriteTentative("x", {A(1), 0}, "mine");
  EXPECT_EQ(store_.Read("x", A(1)).value_or(""), "mine");
  EXPECT_FALSE(store_.Read("x", A(2)).has_value());  // base absent
}

TEST_F(ObjectStoreTest, SubactionAbortDiscardsOnlyThatAttempt) {
  ASSERT_TRUE(store_.TryAcquire("x", A(1), LockMode::kWrite));
  store_.WriteTentative("x", {A(1), 1}, "attempt1");
  store_.AbortSub({A(1), 1});
  EXPECT_FALSE(store_.Read("x", A(1)).has_value());
  // A fresh attempt starts from scratch and commits alone.
  store_.WriteTentative("x", {A(1), 2}, "attempt2");
  store_.Commit(A(1));
  EXPECT_EQ(store_.ReadCommitted("x").value_or(""), "attempt2");
}

TEST_F(ObjectStoreTest, DiscardSubsExceptKeepsLiveAttempts) {
  ASSERT_TRUE(store_.TryAcquire("x", A(1), LockMode::kWrite));
  ASSERT_TRUE(store_.TryAcquire("y", A(1), LockMode::kWrite));
  store_.WriteTentative("x", {A(1), 1}, "dead");
  store_.WriteTentative("y", {A(1), 2}, "live");
  store_.DiscardSubsExcept(A(1), {2});
  store_.Commit(A(1));
  EXPECT_FALSE(store_.ReadCommitted("x").has_value());
  EXPECT_EQ(store_.ReadCommitted("y").value_or(""), "live");
}

TEST_F(ObjectStoreTest, ReleaseReadLocksKeepsWriteLocks) {
  ASSERT_TRUE(store_.TryAcquire("r", A(1), LockMode::kRead));
  ASSERT_TRUE(store_.TryAcquire("w", A(1), LockMode::kWrite));
  store_.ReleaseReadLocks(A(1));
  EXPECT_FALSE(store_.HoldsLock("r", A(1), LockMode::kRead));
  EXPECT_TRUE(store_.HoldsLock("w", A(1), LockMode::kWrite));
  // Another transaction can now lock "r".
  EXPECT_TRUE(store_.TryAcquire("r", A(2), LockMode::kWrite));
}

TEST_F(ObjectStoreTest, HasWriteLocksDistinguishesReadOnly) {
  ASSERT_TRUE(store_.TryAcquire("r", A(1), LockMode::kRead));
  EXPECT_FALSE(store_.HasWriteLocks(A(1)));
  ASSERT_TRUE(store_.TryAcquire("w", A(1), LockMode::kWrite));
  EXPECT_TRUE(store_.HasWriteLocks(A(1)));
}

TEST_F(ObjectStoreTest, AbortFailsQueuedWaitersOfThatTxn) {
  ASSERT_TRUE(store_.TryAcquire("x", A(1), LockMode::kWrite));
  bool done = false, ok = true;
  store_.Acquire("x", A(2), LockMode::kWrite, 100000, [&](bool o) {
    done = true;
    ok = o;
  });
  store_.Abort(A(2));  // the *waiting* transaction aborts
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
  EXPECT_EQ(store_.waiter_count(), 0u);
}

TEST_F(ObjectStoreTest, ApplyEffectsReconstructsPrimaryState) {
  // Backup-side application: grants locks and installs tentatives exactly
  // as the primary recorded them.
  std::vector<ObjectEffect> fx{{"x", LockMode::kWrite, "42"},
                               {"y", LockMode::kRead, std::nullopt}};
  store_.ApplyEffects({A(1), 0}, fx);
  EXPECT_TRUE(store_.HoldsLock("x", A(1), LockMode::kWrite));
  EXPECT_TRUE(store_.HoldsLock("y", A(1), LockMode::kRead));
  store_.Commit(A(1));
  EXPECT_EQ(store_.ReadCommitted("x").value_or(""), "42");
  EXPECT_FALSE(store_.ReadCommitted("y").has_value());
}

TEST_F(ObjectStoreTest, SnapshotRestoreRoundTripsLocksAndTentatives) {
  ASSERT_TRUE(store_.TryAcquire("x", A(1), LockMode::kWrite));
  store_.WriteTentative("x", {A(1), 0}, "tent");
  ASSERT_TRUE(store_.TryAcquire("y", A(2), LockMode::kRead));
  store_.ApplyEffects({A(3), 1}, {{"z", LockMode::kWrite, "zz"}});
  store_.Commit(A(3));

  wire::Writer w;
  store_.Snapshot(w);
  auto bytes = w.Take();

  ObjectStore copy(sim_);
  wire::Reader r(bytes);
  copy.Restore(r);
  ASSERT_TRUE(r.ok());

  EXPECT_TRUE(copy.HoldsLock("x", A(1), LockMode::kWrite));
  EXPECT_TRUE(copy.HoldsLock("y", A(2), LockMode::kRead));
  EXPECT_EQ(copy.ReadCommitted("z").value_or(""), "zz");
  EXPECT_EQ(copy.Read("x", A(1)).value_or(""), "tent");
  // A prepared transaction carried across a view change can still commit.
  copy.Commit(A(1));
  EXPECT_EQ(copy.ReadCommitted("x").value_or(""), "tent");
}

TEST_F(ObjectStoreTest, ClearFailsNothingAndEmptiesState) {
  store_.TryAcquire("x", A(1), LockMode::kWrite);
  store_.Clear();
  EXPECT_EQ(store_.object_count(), 0u);
  EXPECT_EQ(store_.lock_count(), 0u);
}

TEST(OutcomeTable, CommitIsFinalOverLateAbort) {
  OutcomeTable t;
  Aid aid{1, {1, 1}, 1};
  t.RecordCommitted(aid);
  t.RecordAborted(aid);  // late duplicate abort must not downgrade
  EXPECT_EQ(t.Lookup(aid), vr::TxnOutcome::kCommitted);
}

TEST(OutcomeTable, SnapshotRoundTrip) {
  OutcomeTable t;
  t.RecordCommitted(Aid{1, {1, 1}, 1});
  t.RecordAborted(Aid{1, {1, 1}, 2});
  wire::Writer w;
  t.Snapshot(w);
  auto bytes = w.Take();
  OutcomeTable out;
  wire::Reader r(bytes);
  out.Restore(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out.Lookup(Aid{1, {1, 1}, 1}), vr::TxnOutcome::kCommitted);
  EXPECT_EQ(out.Lookup(Aid{1, {1, 1}, 2}), vr::TxnOutcome::kAborted);
  EXPECT_EQ(out.Lookup(Aid{1, {1, 1}, 3}), vr::TxnOutcome::kUnknown);
}

}  // namespace
}  // namespace vsr::txn
