// Sharding tests (DESIGN.md §11): placement directory semantics, client
// routing, the cross-group shard pull primitive, the gated sharded bank
// with real cross-shard 2PC, and live rebalancing under traffic and faults
// — including the zero-lost/zero-duplicated commit check.
#include <gtest/gtest.h>

#include <map>

#include "check/invariants.h"
#include "client/shard_rebalancer.h"
#include "client/shard_router.h"
#include "tests/test_util.h"
#include "wire/buffer.h"
#include "workload/driver.h"
#include "workload/failures.h"
#include "workload/sharded_bank.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;
using workload::ShardAccountName;

// -- directory ------------------------------------------------------------

TEST(Directory, ReRegistrationGuards) {
  core::Directory dir;
  dir.RegisterGroup(1, {1, 2, 3});
  EXPECT_EQ(dir.GroupEpoch(1), 1u);
  // Idempotent for the identical configuration.
  dir.RegisterGroup(1, {1, 2, 3});
  EXPECT_EQ(dir.GroupEpoch(1), 1u);
  // A different configuration must not silently clobber the entry.
  EXPECT_THROW(dir.RegisterGroup(1, {4, 5, 6}), std::logic_error);
  ASSERT_NE(dir.Lookup(1), nullptr);
  EXPECT_EQ((*dir.Lookup(1))[0], 1u);
  // The deliberate path replaces and bumps the epoch.
  EXPECT_EQ(dir.ReRegisterGroup(1, {4, 5, 6}), 2u);
  EXPECT_EQ((*dir.Lookup(1))[0], 4u);
}

TEST(Directory, RangesMustTileTheKeySpace) {
  core::Directory dir;
  dir.RegisterGroup(1, {1});
  dir.RegisterGroup(2, {2});
  EXPECT_THROW(dir.AssignRange("b", "m", 1), std::logic_error);  // no "" start
  EXPECT_THROW(dir.AssignRange("", "m", 7), std::logic_error);   // unknown grp
  EXPECT_EQ(dir.AssignRange("", "m", 1), 1u);
  EXPECT_THROW(dir.AssignRange("n", "", 2), std::logic_error);  // gap at "m"
  EXPECT_EQ(dir.AssignRange("m", "", 2), 2u);
  EXPECT_THROW(dir.AssignRange("z", "", 2), std::logic_error);  // already inf

  ASSERT_NE(dir.Route("a"), nullptr);
  EXPECT_EQ(dir.Route("a")->owner, 1u);
  EXPECT_EQ(dir.Route("m")->owner, 2u);
  EXPECT_EQ(dir.Route("zzz")->owner, 2u);
  EXPECT_TRUE(check::CheckPlacement(dir).empty());
}

TEST(Directory, MoveLifecycleSplitsAndFlipsAtomically) {
  core::Directory dir;
  dir.RegisterGroup(1, {1});
  dir.RegisterGroup(2, {2});
  dir.AssignRange("", "", 1);
  const std::uint64_t e0 = dir.placement_epoch();

  // BeginMove splits ["d","k") out of the settled universe range.
  EXPECT_GT(dir.BeginMove("d", "k", 2), e0);
  ASSERT_EQ(dir.ranges().size(), 3u);
  EXPECT_TRUE(check::CheckPlacement(dir).empty());
  const core::ShardRange* r = dir.Route("f");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->owner, 1u);  // old owner serves while migrating
  EXPECT_EQ(r->state, core::ShardState::kMigrating);
  EXPECT_EQ(r->moving_to, 2u);

  EXPECT_THROW(dir.CommitMove("d", "k"), std::logic_error);  // not in handoff
  dir.BeginHandoff("d", "k");
  EXPECT_EQ(dir.Route("f")->state, core::ShardState::kHandoff);

  const std::uint64_t before = dir.placement_epoch();
  EXPECT_GT(dir.CommitMove("d", "k"), before);
  EXPECT_EQ(dir.Route("f")->owner, 2u);
  EXPECT_EQ(dir.Route("f")->state, core::ShardState::kSettled);
  EXPECT_EQ(dir.Route("c")->owner, 1u);
  EXPECT_EQ(dir.Route("k")->owner, 1u);
  EXPECT_TRUE(check::CheckPlacement(dir).empty());

  // CancelMove reverts an un-committed move.
  dir.BeginMove("d", "k", 1);
  dir.CancelMove("d", "k");
  EXPECT_EQ(dir.Route("f")->owner, 2u);
  EXPECT_EQ(dir.Route("f")->state, core::ShardState::kSettled);
}

TEST(ShardRouter, CachesUntilWrongShardForcesRefresh) {
  core::Directory dir;
  dir.RegisterGroup(1, {1});
  dir.RegisterGroup(2, {2});
  dir.AssignRange("", "m", 1);
  dir.AssignRange("m", "", 2);

  client::ShardRouter router(dir);
  EXPECT_EQ(router.Route("a"), 1u);
  EXPECT_EQ(router.Route("m"), 2u);
  EXPECT_EQ(router.Route("z"), 2u);

  // A placement change is invisible until a rejection forces a refresh.
  dir.BeginMove("", "m", 2);
  dir.BeginHandoff("", "m");
  EXPECT_EQ(router.Route("a"), 1u);  // stale cache: still the old owner
  router.NoteWrongShard();
  // Handoff routes to the incoming owner (serves from CommitMove on).
  EXPECT_EQ(router.Route("a"), 2u);
  EXPECT_EQ(router.refreshes(), 1u);

  dir.CommitMove("", "m");
  EXPECT_TRUE(router.Refresh());
  EXPECT_EQ(router.Route("a"), 2u);
  EXPECT_FALSE(router.Refresh());  // epoch unchanged
}

// -- object store range primitives ----------------------------------------

TEST(ObjectStoreRange, SnapshotInstallDropRoundTrip) {
  sim::Simulation sim(1);
  txn::ObjectStore a(sim), b(sim);

  // Seed committed bases through the same wire path the shard image uses.
  wire::Writer seed;
  seed.U32(4);
  for (const char* kv : {"a00", "a01", "b00", "c00"}) {
    seed.String(kv);
    seed.String(std::string("v-") + kv);
  }
  const auto seed_bytes = seed.Take();
  wire::Reader sr(seed_bytes);
  a.InstallRange(sr);
  ASSERT_TRUE(sr.ok());
  EXPECT_TRUE(a.RangeQuiescent("", ""));

  // Snapshot only ["a", "b") and install into an empty store.
  wire::Writer w;
  a.SnapshotRange(w, "a", "b");
  const auto bytes = w.Take();
  wire::Reader r(bytes);
  b.InstallRange(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(b.ReadCommitted("a00").value_or(""), "v-a00");
  EXPECT_EQ(b.ReadCommitted("a01").value_or(""), "v-a01");
  EXPECT_FALSE(b.ReadCommitted("b00").has_value());

  // Drop the range at the source; objects outside it survive.
  EXPECT_EQ(a.DropRange("a", "b"), 2u);
  EXPECT_FALSE(a.ReadCommitted("a00").has_value());
  EXPECT_EQ(a.ReadCommitted("b00").value_or(""), "v-b00");

  // A held lock blocks both quiescence and the drop.
  const vr::Aid aid{1, {1, 1}, 9};
  ASSERT_TRUE(b.TryAcquire("a00", aid, vr::LockMode::kWrite));
  EXPECT_FALSE(b.RangeQuiescent("a", "b"));
  EXPECT_EQ(b.DropRange("a", "b"), 1u);  // only the unlocked a01 goes
  EXPECT_EQ(b.ReadCommitted("a00").value_or(""), "v-a00");
}

// -- cross-group shard pull ------------------------------------------------

TEST(ShardPull, CopiesCommittedRangeAcrossGroups) {
  Cluster cluster(ClusterOptions{.seed = 101});
  auto g1 = cluster.AddGroup("src", 3);
  auto g2 = cluster.AddGroup("dst", 3);
  auto client_g = cluster.AddGroup("client", 3);
  test::RegisterKvProcs(cluster, g1);
  test::RegisterKvProcs(cluster, g2);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(test::RunOneCall(cluster, client_g, g1, "put",
                               "k" + std::to_string(i) + "=v" +
                                   std::to_string(i)),
              vr::TxnOutcome::kCommitted);
  }

  core::Cohort* dst = cluster.AnyPrimary(g2);
  ASSERT_NE(dst, nullptr);
  bool done = false, ok = false;
  dst->PullShard(g1, "", "", [&](bool o) {
    done = true;
    ok = o;
  });
  EXPECT_TRUE(dst->shard_pull_active());
  for (int i = 0; i < 200 && !done; ++i) cluster.RunFor(10 * sim::kMillisecond);
  ASSERT_TRUE(done);
  EXPECT_TRUE(ok);
  EXPECT_FALSE(dst->shard_pull_active());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(dst->objects()
                  .ReadCommitted("k" + std::to_string(i))
                  .value_or(""),
              "v" + std::to_string(i));
  }
  EXPECT_GE(dst->stats().shard_images_installed, 1u);
  core::Cohort* src = cluster.AnyPrimary(g1);
  ASSERT_NE(src, nullptr);
  EXPECT_GE(src->stats().shard_pulls_served, 1u);

  // The install was forced: the destination's eager backups hold it too.
  cluster.RunFor(1 * sim::kSecond);
  for (auto* c : cluster.Cohorts(g2)) {
    if (c == dst || !c->options().eager_backup_apply) continue;
    if (c->cur_viewid() != dst->cur_viewid()) continue;
    EXPECT_EQ(c->objects().ReadCommitted("k0").value_or(""), "v0");
  }

  // Source-side GC.
  src->DropShard("", "");
  cluster.RunFor(500 * sim::kMillisecond);
  EXPECT_FALSE(src->objects().ReadCommitted("k0").has_value());
  EXPECT_GE(src->stats().shard_ranges_dropped, 1u);
}

// -- sharded bank ----------------------------------------------------------

TEST(ShardedBank, ThreeShardCrossShardTransfersConserveMoney) {
  Cluster cluster(ClusterOptions{.seed = 102});
  auto bank = workload::SetupShardedBank(cluster, 3, 3, 30);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  ASSERT_TRUE(check::CheckPlacement(cluster.directory()).empty());
  ASSERT_EQ(workload::FundShardedAccounts(cluster, bank, 100), 30);

  client::ShardRouter router(cluster.directory());
  sim::Rng rng(7);
  workload::DriverOptions opts;
  opts.total_txns = 60;
  opts.max_inflight = 3;
  opts.retries_per_txn = 10;
  workload::ClosedLoopDriver driver(
      cluster, bank.client_group,
      [&](std::uint64_t) {
        // Force a cross-shard pair: pick the accounts from different thirds.
        const int from = static_cast<int>(rng.Index(10));
        const int to = 10 + static_cast<int>(rng.Index(20));
        return workload::MakeShardedTransferTxn(
            router, ShardAccountName(from), ShardAccountName(to), 3);
      },
      opts);
  ASSERT_TRUE(driver.Run());
  cluster.RunFor(2 * sim::kSecond);

  EXPECT_GT(driver.accounting().committed, 0u);
  EXPECT_EQ(driver.accounting().unknown, 0u);
  EXPECT_EQ(workload::ShardedBankTotal(cluster, 30), 3000);
  std::vector<std::string> accounts;
  for (int i = 0; i < 30; ++i) accounts.push_back(ShardAccountName(i));
  EXPECT_TRUE(check::CheckConservation(cluster, accounts, 3000).empty());
  for (auto g : bank.shards) {
    EXPECT_TRUE(check::CheckQuiescent(cluster, g).empty());
  }
  EXPECT_GE(cluster.TotalCommittedAll(),
            driver.accounting().committed);
}

TEST(ShardedBank, WrongShardCallIsRejectedNotServed) {
  Cluster cluster(ClusterOptions{.seed = 103});
  auto bank = workload::SetupShardedBank(cluster, 2, 3, 10);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  ASSERT_EQ(workload::FundShardedAccounts(cluster, bank, 50), 10);

  // a000 lives on shard 0; a deposit sent to shard 1 must abort, and the
  // balance must not change anywhere.
  EXPECT_EQ(test::RunOneCall(cluster, bank.client_group, bank.shards[1],
                             "deposit", "a000=5"),
            vr::TxnOutcome::kAborted);
  cluster.RunFor(500 * sim::kMillisecond);
  EXPECT_EQ(workload::ShardedCommittedBalance(cluster, "a000"), 50);
  EXPECT_EQ(workload::ShardedBankTotal(cluster, 10), 500);
}

TEST(ShardedBank, LiveRebalanceUnderTrafficZeroLostOrDuplicated) {
  Cluster cluster(ClusterOptions{.seed = 104});
  auto bank = workload::SetupShardedBank(cluster, 3, 3, 24);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  ASSERT_EQ(workload::FundShardedAccounts(cluster, bank, 100), 24);

  client::ShardRouter router(cluster.directory());
  client::ShardRebalancer rebalancer(cluster);

  // Deterministic transfer plan so committed outcomes can be folded into an
  // exact per-account model.
  struct Plan {
    int from, to;
    long long amt;
  };
  std::vector<Plan> plan;
  sim::Rng rng(11);
  for (int i = 0; i < 80; ++i) {
    const int from = static_cast<int>(rng.Index(24));
    int to = static_cast<int>(rng.Index(24));
    if (to == from) to = (to + 1) % 24;
    plan.push_back({from, to, 1 + static_cast<long long>(rng.Index(5))});
  }
  std::map<int, long long> model;
  for (int i = 0; i < 24; ++i) model[i] = 100;

  workload::DriverOptions opts;
  opts.total_txns = static_cast<int>(plan.size());
  opts.max_inflight = 4;
  // The handoff window rejects every touching transaction; retries must
  // outlast it (each round trip is a few ms, the window tens of ms).
  opts.retries_per_txn = 100;
  opts.on_outcome = [&](std::uint64_t i, vr::TxnOutcome o) {
    if (o == vr::TxnOutcome::kCommitted) {
      model[plan[i].from] -= plan[i].amt;
      model[plan[i].to] += plan[i].amt;
    }
  };
  workload::ClosedLoopDriver driver(
      cluster, bank.client_group,
      [&](std::uint64_t i) {
        return workload::MakeShardedTransferTxn(
            router, ShardAccountName(plan[i].from),
            ShardAccountName(plan[i].to), plan[i].amt);
      },
      opts);

  // Move shard 0's whole range to shard 2 while transfers stream.
  bool move_ok = false, move_done = false;
  cluster.sim().scheduler().After(80 * sim::kMillisecond, [&] {
    const core::ShardRange* r =
        cluster.directory().Route(ShardAccountName(0));
    ASSERT_NE(r, nullptr);
    rebalancer.Move(r->lo, r->hi, bank.shards[2], [&](bool ok) {
      move_done = true;
      move_ok = ok;
    });
  });

  ASSERT_TRUE(driver.Run());
  for (int i = 0; i < 500 && !move_done; ++i) {
    cluster.RunFor(10 * sim::kMillisecond);
  }
  cluster.RunFor(2 * sim::kSecond);

  ASSERT_TRUE(move_done);
  EXPECT_TRUE(move_ok);
  EXPECT_EQ(rebalancer.stats().moves_completed, 1u);
  EXPECT_GT(rebalancer.stats().last_handoff_window, 0);

  // Routing flipped: shard 2 now owns account 0's range.
  EXPECT_EQ(cluster.directory().Route(ShardAccountName(0))->owner,
            bank.shards[2]);
  ASSERT_TRUE(check::CheckPlacement(cluster.directory()).empty());

  // Zero lost, zero duplicated: every committed transfer applied exactly
  // once — the committed balances equal the model's, account by account.
  ASSERT_EQ(driver.accounting().unknown, 0u);
  EXPECT_GT(driver.accounting().committed, 0u);
  for (int i = 0; i < 24; ++i) {
    EXPECT_EQ(workload::ShardedCommittedBalance(cluster, ShardAccountName(i)),
              model[i])
        << "account " << ShardAccountName(i);
  }
  EXPECT_EQ(workload::ShardedBankTotal(cluster, 24), 2400);
}

TEST(ShardedBank, RebalanceSurvivesCrashAndPartition) {
  Cluster cluster(ClusterOptions{.seed = 105});
  auto bank = workload::SetupShardedBank(cluster, 3, 3, 18);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  ASSERT_EQ(workload::FundShardedAccounts(cluster, bank, 100), 18);

  const vr::GroupId src_g = bank.shards[0];
  const vr::GroupId dst_g = bank.shards[1];
  const core::ShardRange* r = cluster.directory().Route(ShardAccountName(0));
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->owner, src_g);
  const std::string lo = r->lo, hi = r->hi;

  client::ShardRebalancer rebalancer(cluster);
  bool move_ok = false, move_done = false;
  rebalancer.Move(lo, hi, dst_g, [&](bool ok) {
    move_done = true;
    move_ok = ok;
  });

  // Crash the destination primary right away (kills the first pull) and
  // partition the source primary mid-move (stalls serving/drain until its
  // group elects a new view), then heal and recover.
  core::Cohort* dst_p = cluster.AnyPrimary(dst_g);
  ASSERT_NE(dst_p, nullptr);
  const auto dst_mid = dst_p->mid();
  dst_p->Crash();
  cluster.sim().scheduler().After(50 * sim::kMillisecond, [&] {
    core::Cohort* src_p = cluster.AnyPrimary(src_g);
    if (src_p == nullptr) return;
    std::vector<net::NodeId> rest;
    for (auto g : cluster.AllGroups()) {
      for (auto* c : cluster.Cohorts(g)) {
        if (c != src_p) rest.push_back(c->mid());
      }
    }
    cluster.network().Partition({{src_p->mid()}, rest});
  });
  cluster.sim().scheduler().After(400 * sim::kMillisecond,
                                  [&] { cluster.network().Heal(); });
  cluster.sim().scheduler().After(600 * sim::kMillisecond, [&] {
    for (auto* c : cluster.Cohorts(dst_g)) {
      if (c->mid() == dst_mid) c->Recover();
    }
  });

  for (int i = 0; i < 2000 && !move_done; ++i) {
    cluster.RunFor(10 * sim::kMillisecond);
  }
  ASSERT_TRUE(move_done);
  EXPECT_TRUE(move_ok);
  EXPECT_EQ(cluster.directory().Route(ShardAccountName(0))->owner, dst_g);

  ASSERT_TRUE(cluster.RunUntilStable());
  cluster.RunFor(2 * sim::kSecond);
  EXPECT_EQ(workload::ShardedBankTotal(cluster, 18), 1800);
  ASSERT_TRUE(check::CheckPlacement(cluster.directory()).empty());
  for (auto g : bank.shards) {
    EXPECT_TRUE(check::CheckInstant(cluster, g).empty());
  }
}

TEST(ShardedBank, WholeClusterOutageConservesMoneyAcrossShards) {
  ClusterOptions o{.seed = 106};
  o.cohort.event_log.enabled = true;  // disks survive the blackout
  Cluster cluster(o);
  auto bank = workload::SetupShardedBank(cluster, 2, 3, 12);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  ASSERT_EQ(workload::FundShardedAccounts(cluster, bank, 100), 12);

  client::ShardRouter router(cluster.directory());
  sim::Rng rng(13);
  workload::DriverOptions opts;
  opts.total_txns = 40;
  opts.max_inflight = 2;
  opts.retries_per_txn = 10;
  opts.deadline = 300 * sim::kSecond;
  workload::ClosedLoopDriver driver(
      cluster, bank.client_group,
      [&](std::uint64_t) {
        const int from = static_cast<int>(rng.Index(12));
        const int to = (from + 1 + static_cast<int>(rng.Index(11))) % 12;
        return workload::MakeShardedTransferTxn(
            router, ShardAccountName(from), ShardAccountName(to), 2);
      },
      opts);

  // §4.2 drill aimed at every shard at once: all replicas of all groups go
  // down mid-stream and come back with their logs.
  std::vector<std::pair<vr::GroupId, std::size_t>> topo;
  for (auto g : bank.shards) topo.push_back({g, 3});
  topo.push_back({bank.client_group, 3});
  workload::ArmFailureSchedule(
      cluster,
      workload::WholeClusterOutage(topo,
                                   cluster.sim().Now() +
                                       200 * sim::kMillisecond,
                                   500 * sim::kMillisecond));

  driver.Run();  // some outcomes may be unknown across the blackout
  ASSERT_TRUE(cluster.RunUntilStable(30 * sim::kSecond));
  cluster.RunFor(5 * sim::kSecond);

  // Transfers conserve money whatever committed — and committed state
  // survived the majority-loss event via the durable logs.
  EXPECT_EQ(workload::ShardedBankTotal(cluster, 12), 1200);
  for (auto g : bank.shards) {
    EXPECT_TRUE(check::CheckInstant(cluster, g).empty());
  }
}

// -- cluster-wide aggregates & failure shapes ------------------------------

TEST(Cluster, ClusterWideTotalsSumEveryGroup) {
  Cluster cluster(ClusterOptions{.seed = 107});
  auto bank = workload::SetupShardedBank(cluster, 2, 3, 8);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  ASSERT_EQ(workload::FundShardedAccounts(cluster, bank, 10), 8);

  const auto groups = cluster.AllGroups();
  ASSERT_EQ(groups.size(), 3u);  // 2 shards + client, in creation order
  EXPECT_EQ(groups[0], bank.shards[0]);
  EXPECT_EQ(groups[2], bank.client_group);

  std::uint64_t sum_c = 0, sum_a = 0;
  for (auto g : groups) {
    sum_c += cluster.TotalCommitted(g);
    sum_a += cluster.TotalAborted(g);
  }
  EXPECT_EQ(cluster.TotalCommittedAll(), sum_c);
  EXPECT_EQ(cluster.TotalAbortedAll(), sum_a);
  EXPECT_GT(cluster.TotalCommittedAll(), 0u);
  // Funding commits ran on shard groups the per-group client count misses.
  EXPECT_GE(cluster.TotalCommittedAll(),
            cluster.TotalCommitted(bank.client_group));
}

TEST(FailureSchedule, MultiGroupAndOutageShapes) {
  sim::Rng rng(17);
  auto multi = workload::RandomMultiGroupCrashSchedule(
      rng, {{1, 3}, {2, 3}}, 60 * sim::kSecond, 5, 1);
  bool saw_g1 = false, saw_g2 = false;
  for (const auto& e : multi) {
    saw_g1 |= e.group == 1;
    saw_g2 |= e.group == 2;
  }
  EXPECT_TRUE(saw_g1);
  EXPECT_TRUE(saw_g2);

  auto outage = workload::WholeClusterOutage({{1, 2}, {2, 2}},
                                             1 * sim::kSecond,
                                             500 * sim::kMillisecond);
  ASSERT_EQ(outage.size(), 8u);  // crash + recover per replica
  int crashes = 0;
  sim::Time last_recover = 0;
  for (const auto& e : outage) {
    if (e.kind == workload::FailureEvent::Kind::kCrash) {
      ++crashes;
      EXPECT_EQ(e.at, 1 * sim::kSecond);
    } else {
      EXPECT_EQ(e.kind, workload::FailureEvent::Kind::kRecover);
      EXPECT_GT(e.at, last_recover);  // staggered
      last_recover = e.at;
    }
  }
  EXPECT_EQ(crashes, 4);
}

}  // namespace
}  // namespace vsr
