// Tests for the comparison baselines: quorum voting, the non-replicated
// stable-storage server, and the analytic cost models.
#include <gtest/gtest.h>

#include "baseline/models.h"
#include "baseline/nonreplicated.h"
#include "baseline/nonreplicated_viewstamped.h"
#include "baseline/voting.h"
#include "sim/simulation.h"

namespace vsr::baseline {
namespace {

struct VotingWorld {
  explicit VotingWorld(std::uint64_t seed, std::size_t replicas = 3)
      : simulation(seed), network(simulation, {}) {
    for (std::size_t i = 0; i < replicas; ++i) {
      replica_objs.push_back(
          std::make_unique<VotingReplica>(simulation, network, 100 + i));
      replica_ids.push_back(static_cast<net::NodeId>(100 + i));
    }
  }
  sim::Simulation simulation;
  net::Network network;
  std::vector<std::unique_ptr<VotingReplica>> replica_objs;
  std::vector<net::NodeId> replica_ids;
};

TEST(Voting, WriteAllReadOneRoundTrips) {
  VotingWorld w(71);
  VotingClient client(w.simulation, w.network, 1, w.replica_ids, {});
  bool wrote = false;
  client.Write("k", "v1", [&](bool ok) { wrote = ok; });
  w.simulation.scheduler().RunToQuiescence();
  EXPECT_TRUE(wrote);

  std::optional<VersionedValue> read;
  client.Read("k", [&](std::optional<VersionedValue> v) { read = v; });
  w.simulation.scheduler().RunToQuiescence();
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->value, "v1");
  // Write-all installed at every replica.
  for (auto& r : w.replica_objs) {
    ASSERT_TRUE(r->Get("k").has_value());
    EXPECT_EQ(r->Get("k")->value, "v1");
  }
}

TEST(Voting, MajorityQuorumsIntersect) {
  VotingWorld w(72, 5);
  VotingOptions opts;
  opts.read_quorum = 3;
  opts.write_quorum = 3;
  VotingClient client(w.simulation, w.network, 1, w.replica_ids, opts);
  bool wrote = false;
  client.Write("k", "v2", [&](bool ok) { wrote = ok; });
  w.simulation.scheduler().RunToQuiescence();
  ASSERT_TRUE(wrote);
  std::optional<VersionedValue> read;
  client.Read("k", [&](std::optional<VersionedValue> v) { read = v; });
  w.simulation.scheduler().RunToQuiescence();
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->value, "v2");  // r+w > n guarantees intersection
}

TEST(Voting, ConcurrentWritersConflict) {
  // §5: "we avoid the deadlocks that can arise if messages for concurrent
  // updates arrive at the cohorts in different orders" — here the voting
  // baseline exhibits the conflict: two clients lock replicas concurrently
  // and at least one backs out.
  VotingWorld w(73);
  VotingClient c1(w.simulation, w.network, 1, w.replica_ids, {});
  VotingClient c2(w.simulation, w.network, 2, w.replica_ids, {});
  int failures = 0;
  for (int i = 0; i < 20; ++i) {
    c1.Write("hot", "a" + std::to_string(i), [&](bool ok) { if (!ok) ++failures; });
    c2.Write("hot", "b" + std::to_string(i), [&](bool ok) { if (!ok) ++failures; });
    w.simulation.scheduler().RunToQuiescence();
  }
  EXPECT_GT(failures, 0);
}

TEST(NonReplicated, TxnPhasesPayStableStorageLatency) {
  sim::Simulation simulation(74);
  net::Network network(simulation, {});
  storage::StableStoreOptions sopts;
  sopts.force_latency = 10 * sim::kMillisecond;
  storage::StableStore stable(simulation, sopts);
  StableServer server(simulation, network, 50, stable);
  StableClient client(simulation, network, 51, 50);

  StableClient::TxnTiming timing;
  bool done = false;
  client.RunTxn(3, [&](StableClient::TxnTiming t) {
    timing = t;
    done = true;
  });
  simulation.scheduler().RunToQuiescence();
  ASSERT_TRUE(done);
  ASSERT_TRUE(timing.ok);
  // Calls are fast (no force); prepare and commit each pay >= one force.
  EXPECT_LT(timing.call_latency, 2 * sim::kMillisecond);
  EXPECT_GE(timing.prepare_latency, sopts.force_latency);
  EXPECT_GE(timing.commit_latency, sopts.force_latency);
  EXPECT_EQ(server.forced_writes(), 2u);  // data+prepare, commit
}

TEST(NonReplicated, ViewstampedVariantPreparesFasterWithThinkTime) {
  // §5: "no delay would be encountered if the records had already been
  // written" — with think time before prepare, the background log drains
  // and prepare is nearly instant; the conventional server always pays the
  // full force.
  sim::Simulation simulation(75);
  net::Network network(simulation, {});
  storage::StableStoreOptions sopts;
  sopts.force_latency = 10 * sim::kMillisecond;
  storage::StableStore stable(simulation, sopts);
  baseline::ViewstampedStableServer server(simulation, network, 50, stable);
  baseline::StableClient client(simulation, network, 51, 50);

  // With user computation between the calls and the prepare, the write-
  // behind log drains and prepare waits on nothing ("no delay would be
  // encountered if the records had already been written").
  baseline::StableClient::TxnTiming timing;
  bool done = false;
  client.RunTxn(
      3,
      [&](baseline::StableClient::TxnTiming t) {
        timing = t;
        done = true;
      },
      /*think=*/40 * sim::kMillisecond);
  simulation.scheduler().RunToQuiescence();
  ASSERT_TRUE(done);
  ASSERT_TRUE(timing.ok);
  EXPECT_LT(timing.prepare_latency, sim::kMillisecond);
  EXPECT_GE(server.stats().prepares_immediate, 1u);
  // Commit still pays its force, exactly like the conventional design.
  EXPECT_GE(timing.commit_latency, sopts.force_latency);
  EXPECT_GT(server.stats().background_writes, 0u);
}

TEST(Models, ViewChangeCostsMatchPaperStructure) {
  const sim::Duration d = 1 * sim::kMillisecond;
  // §4.1: one round when the manager is the new primary; +1 message else.
  auto vr_best = VrViewChange(3, true, d);
  auto vr_other = VrViewChange(3, false, d);
  EXPECT_EQ(vr_best.rounds, 1u);
  EXPECT_EQ(vr_other.messages, vr_best.messages + 1);
  // §5: virtual partitions takes three phases and strictly more messages.
  auto vp = VirtualPartitionsViewChange(3, d);
  EXPECT_EQ(vp.rounds, 3u);
  EXPECT_GT(vp.messages, vr_other.messages);
  EXPECT_GT(vp.latency, vr_other.latency);
}

TEST(Models, VotingWritesCostMoreThanVrCalls) {
  const sim::Duration d = 1 * sim::kMillisecond;
  for (std::size_t n : {3u, 5u, 7u}) {
    auto vr = VrCall(n, d);
    auto voting = VotingWrite(n, d);  // write-all
    EXPECT_GT(voting.latency, vr.latency) << "n=" << n;
    // Critical-path messages: VR = 2 regardless of n; voting grows with n.
    EXPECT_GT(voting.messages, 2u + 2 * (n - 1)) << "n=" << n;
  }
}

TEST(Models, IsisPiggybackGrowsVrPsetDoesNot) {
  // §5: Isis "piggybacked information ... cannot be discarded when
  // transactions commit"; the VR pset is bounded by the live transaction.
  const std::uint64_t effect = 64;  // bytes per op
  EXPECT_GT(IsisPiggybackBytes(1000, effect, 0),
            IsisPiggybackBytes(100, effect, 0));
  EXPECT_EQ(VrPsetBytes(3), VrPsetBytes(3));  // depends only on live calls
  EXPECT_LT(VrPsetBytes(3), IsisPiggybackBytes(1000, effect, 0));
}

TEST(Models, AvailabilityOrdering) {
  const double a = 0.99;
  // More replicas → higher availability for majority systems.
  EXPECT_GT(VrAvailability(5, a), VrAvailability(3, a));
  EXPECT_GT(VrAvailability(3, a), a);  // beats a single copy
  // A perfectly independent pair beats one copy; correlation erodes it.
  EXPECT_GT(TandemPairAvailability(a, 0.0), a);
  EXPECT_LT(TandemPairAvailability(a, 0.5), TandemPairAvailability(a, 0.0));
  // k-of-n sanity.
  EXPECT_NEAR(KOfNAvailability(1, 1, a), a, 1e-12);
  EXPECT_NEAR(KOfNAvailability(2, 1, a), 1 - (1 - a) * (1 - a), 1e-12);
}

}  // namespace
}  // namespace vsr::baseline
