// Socket-host integration: the full protocol stack — the same cohort
// objects every deterministic test runs — on real threads and TCP loopback
// sockets. A 3-replica bank group plus a single-member client coordinator
// group commit >= 1000 real transactions, survive a fail-stop primary
// kill via a live view change, and keep the bank invariant (balances sum
// to the deposits) across it all.
//
// Wall-clock, nondeterministic by design: NOT part of the digest suites.
#include <gtest/gtest.h>

#include <string>

#include "host/loopback.h"
#include "workload/bank.h"

namespace vsr {
namespace {

core::TxnBody OpenTxn(vr::GroupId bank, const std::string& acct,
                      long long amount) {
  return [bank, acct, amount](core::TxnHandle& h) -> host::Task<bool> {
    co_await h.Call(bank, "open", acct + "=" + std::to_string(amount));
    co_return true;
  };
}

TEST(SocketHost, ThreeReplicaGroupCommitsAndSurvivesPrimaryKill) {
  constexpr int kAccounts = 4;
  constexpr int kTxns = 1000;
  constexpr long long kOpening = 1000;

  host::LoopbackCluster cluster;
  const vr::GroupId bank = cluster.AddGroup("bank", 3);
  const vr::GroupId client = cluster.AddGroup("client", 1);
  for (core::Cohort* c : cluster.Cohorts(bank)) {
    workload::RegisterBankProcs(*c);
  }
  cluster.Start();
  ASSERT_TRUE(cluster.WaitUntilStable(bank));
  ASSERT_TRUE(cluster.WaitUntilStable(client));

  for (int a = 0; a < kAccounts; ++a) {
    auto outcome = cluster.RunTransaction(
        client, OpenTxn(bank, "a" + std::to_string(a), kOpening));
    ASSERT_TRUE(outcome.has_value());
    ASSERT_EQ(*outcome, core::TxnOutcome::kCommitted);
  }

  const auto first_primary = cluster.PrimaryIndex(bank);
  ASSERT_TRUE(first_primary.has_value());

  // Deposit 1 into round-robin accounts. Halfway through, kill the bank
  // primary; transactions that abort while the view change runs are
  // retried, so every deposit eventually lands exactly once.
  int committed = 0;
  bool killed = false;
  for (int t = 0; t < kTxns; ++t) {
    if (!killed && t == kTxns / 2) {
      killed = true;
      const auto p = cluster.PrimaryIndex(bank);
      ASSERT_TRUE(p.has_value());
      cluster.Crash(*p);
    }
    const std::string acct = "a" + std::to_string(t % kAccounts);
    auto outcome = cluster.RunTransaction(
        client, workload::MakeDepositTxn(bank, acct, 1), 30 * host::kSecond);
    ASSERT_TRUE(outcome.has_value()) << "txn " << t << " got no outcome";
    if (*outcome == core::TxnOutcome::kCommitted) {
      ++committed;
    } else {
      // Aborted (or unknown) during the view-change window: retry.
      ASSERT_NE(*outcome, core::TxnOutcome::kUnknown)
          << "coordinator lost its own group?";
      --t;
    }
  }
  EXPECT_EQ(committed, kTxns);

  // A new primary took over (the crashed node stays down).
  const auto new_primary = cluster.PrimaryIndex(bank);
  ASSERT_TRUE(new_primary.has_value());
  EXPECT_NE(*new_primary, *first_primary);
  ASSERT_TRUE(cluster.WaitUntilStable(bank));

  // The money is conserved: read committed balances at the new primary.
  long long total = 0;
  cluster.RunOn(*new_primary, [&](core::Cohort& c) {
    for (int a = 0; a < kAccounts; ++a) {
      auto v = c.objects().ReadCommitted("a" + std::to_string(a));
      if (v && !v->empty()) total += std::stoll(*v);
    }
  });
  EXPECT_EQ(total, kAccounts * kOpening + kTxns);

  cluster.Shutdown();
}

}  // namespace
}  // namespace vsr
