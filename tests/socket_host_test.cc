// Socket-host integration: the full protocol stack — the same cohort
// objects every deterministic test runs — on real threads and TCP loopback
// sockets. A 3-replica bank group plus a single-member client coordinator
// group commit >= 1000 real transactions, survive a fail-stop primary
// kill via a live view change, and keep the bank invariant (balances sum
// to the deposits) across it all.
//
// Wall-clock, nondeterministic by design: NOT part of the digest suites.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>

#include "host/loopback.h"
#include "workload/bank.h"

namespace vsr {
namespace {

core::TxnBody OpenTxn(vr::GroupId bank, const std::string& acct,
                      long long amount) {
  return [bank, acct, amount](core::TxnHandle& h) -> host::Task<bool> {
    co_await h.Call(bank, "open", acct + "=" + std::to_string(amount));
    co_return true;
  };
}

TEST(SocketHost, ThreeReplicaGroupCommitsAndSurvivesPrimaryKill) {
  constexpr int kAccounts = 4;
  constexpr int kTxns = 1000;
  constexpr long long kOpening = 1000;

  host::LoopbackCluster cluster;
  const vr::GroupId bank = cluster.AddGroup("bank", 3);
  const vr::GroupId client = cluster.AddGroup("client", 1);
  for (core::Cohort* c : cluster.Cohorts(bank)) {
    workload::RegisterBankProcs(*c);
  }
  cluster.Start();
  ASSERT_TRUE(cluster.WaitUntilStable(bank));
  ASSERT_TRUE(cluster.WaitUntilStable(client));

  for (int a = 0; a < kAccounts; ++a) {
    auto outcome = cluster.RunTransaction(
        client, OpenTxn(bank, "a" + std::to_string(a), kOpening));
    ASSERT_TRUE(outcome.has_value());
    ASSERT_EQ(*outcome, core::TxnOutcome::kCommitted);
  }

  const auto first_primary = cluster.PrimaryIndex(bank);
  ASSERT_TRUE(first_primary.has_value());

  // Deposit 1 into round-robin accounts. Halfway through, kill the bank
  // primary; transactions that abort while the view change runs are
  // retried, so every deposit eventually lands exactly once.
  int committed = 0;
  bool killed = false;
  for (int t = 0; t < kTxns; ++t) {
    if (!killed && t == kTxns / 2) {
      killed = true;
      const auto p = cluster.PrimaryIndex(bank);
      ASSERT_TRUE(p.has_value());
      cluster.Crash(*p);
    }
    const std::string acct = "a" + std::to_string(t % kAccounts);
    auto outcome = cluster.RunTransaction(
        client, workload::MakeDepositTxn(bank, acct, 1), 30 * host::kSecond);
    ASSERT_TRUE(outcome.has_value()) << "txn " << t << " got no outcome";
    if (*outcome == core::TxnOutcome::kCommitted) {
      ++committed;
    } else {
      // Aborted (or unknown) during the view-change window: retry.
      ASSERT_NE(*outcome, core::TxnOutcome::kUnknown)
          << "coordinator lost its own group?";
      --t;
    }
  }
  EXPECT_EQ(committed, kTxns);

  // A new primary took over (the crashed node stays down).
  const auto new_primary = cluster.PrimaryIndex(bank);
  ASSERT_TRUE(new_primary.has_value());
  EXPECT_NE(*new_primary, *first_primary);
  ASSERT_TRUE(cluster.WaitUntilStable(bank));

  // The money is conserved: read committed balances at the new primary.
  long long total = 0;
  cluster.RunOn(*new_primary, [&](core::Cohort& c) {
    for (int a = 0; a < kAccounts; ++a) {
      auto v = c.objects().ReadCommitted("a" + std::to_string(a));
      if (v && !v->empty()) total += std::stoll(*v);
    }
  });
  EXPECT_EQ(total, kAccounts * kOpening + kTxns);

  cluster.Shutdown();
}

// Commit fusion (DESIGN.md §13) on the real host: genuine cross-group 2PC —
// two 3-replica bank groups plus a coordinator — over TCP loopback with
// commit_fusion at its default (on). Every transfer is a two-participant
// transaction, so every commit takes the fused path: decision reported at
// committing-buffer time, decision force and commit fan-out overlapped on
// real threads. The invariant is exact conservation across both groups,
// plus a primary kill mid-stream to prove the fused windows survive
// fail-stop under TSan.
TEST(SocketHost, CrossGroupFusedCommitsConserveMoneyAcrossPrimaryKill) {
  constexpr int kTxns = 400;
  constexpr long long kOpening = 1000;

  host::LoopbackCluster cluster;
  const vr::GroupId bank_a = cluster.AddGroup("bank-a", 3);
  const vr::GroupId bank_b = cluster.AddGroup("bank-b", 3);
  const vr::GroupId client = cluster.AddGroup("client", 1);
  for (core::Cohort* c : cluster.Cohorts(bank_a)) {
    workload::RegisterBankProcs(*c);
  }
  for (core::Cohort* c : cluster.Cohorts(bank_b)) {
    workload::RegisterBankProcs(*c);
  }
  cluster.Start();
  ASSERT_TRUE(cluster.WaitUntilStable(bank_a));
  ASSERT_TRUE(cluster.WaitUntilStable(bank_b));
  ASSERT_TRUE(cluster.WaitUntilStable(client));

  for (auto [g, acct] : {std::pair{bank_a, "a0"}, std::pair{bank_b, "b0"}}) {
    auto outcome = cluster.RunTransaction(client, OpenTxn(g, acct, kOpening));
    ASSERT_TRUE(outcome.has_value());
    ASSERT_EQ(*outcome, core::TxnOutcome::kCommitted);
  }

  // Alternate transfer direction; kill the bank-b primary halfway through.
  int committed = 0;
  bool killed = false;
  for (int t = 0; t < kTxns; ++t) {
    if (!killed && t == kTxns / 2) {
      killed = true;
      const auto p = cluster.PrimaryIndex(bank_b);
      ASSERT_TRUE(p.has_value());
      cluster.Crash(*p);
    }
    const bool a_to_b = (t % 2) == 0;
    auto outcome = cluster.RunTransaction(
        client,
        a_to_b ? workload::MakeTransferTxn(bank_a, "a0", bank_b, "b0", 1)
               : workload::MakeTransferTxn(bank_b, "b0", bank_a, "a0", 1),
        30 * host::kSecond);
    ASSERT_TRUE(outcome.has_value()) << "txn " << t << " got no outcome";
    if (*outcome == core::TxnOutcome::kCommitted) {
      ++committed;
    } else {
      ASSERT_NE(*outcome, core::TxnOutcome::kUnknown)
          << "coordinator lost its own group?";
      --t;  // aborted during the view-change window: retry
    }
  }
  EXPECT_EQ(committed, kTxns);
  ASSERT_TRUE(cluster.WaitUntilStable(bank_a));
  ASSERT_TRUE(cluster.WaitUntilStable(bank_b));

  // Exact conservation across the two groups: transfers net to zero.
  long long total = 0;
  for (auto [g, acct] : {std::pair{bank_a, "a0"}, std::pair{bank_b, "b0"}}) {
    const auto p = cluster.PrimaryIndex(g);
    ASSERT_TRUE(p.has_value());
    cluster.RunOn(*p, [&, acct = acct](core::Cohort& c) {
      auto v = c.objects().ReadCommitted(acct);
      if (v && !v->empty()) total += std::stoll(*v);
    });
  }
  EXPECT_EQ(total, 2 * kOpening);

  // Every commit in this run was a two-participant transaction, so the
  // coordinator must have taken the fused path for all of them.
  const auto coord = cluster.PrimaryIndex(client);
  ASSERT_TRUE(coord.has_value());
  std::uint64_t fused = 0;
  cluster.RunOn(*coord,
                [&](core::Cohort& c) { fused = c.stats().fused_commits; });
  EXPECT_GE(fused, static_cast<std::uint64_t>(kTxns));

  cluster.Shutdown();
}

}  // namespace
}  // namespace vsr
