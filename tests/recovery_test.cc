// Write-behind durable event log + crashed-cohort recovery (DESIGN.md §10).
//
// Unit tests drive storage::EventLog directly against a simulated stable
// store (group commit, torn tails, bit rot); integration tests run real
// clusters through crash/replay/rejoin — including the §4.2 majority-loss
// catastrophe that the log makes survivable (view_formation condition 4).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "check/serial.h"
#include "storage/event_log.h"
#include "storage/stable_store.h"
#include "tests/test_util.h"
#include "wire/buffer.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;
using storage::EventLog;
using storage::EventLogOptions;
using storage::StableStore;
using storage::StableStoreOptions;
using test::RegisterKvProcs;
using test::RunOneCallWithRetry;

// ---------------------------------------------------------------------------
// EventLog unit tests
// ---------------------------------------------------------------------------

EventLog::Entry E(std::uint8_t kind, std::initializer_list<std::uint8_t> p) {
  return EventLog::Entry{kind, std::vector<std::uint8_t>(p)};
}

class EventLogTest : public ::testing::Test {
 protected:
  EventLogTest() : sim_(1), store_(sim_, StoreOptions()) {}

  static StableStoreOptions StoreOptions() {
    StableStoreOptions o;
    o.force_latency = 10 * sim::kMillisecond;
    return o;
  }
  static EventLogOptions LogOptions() {
    EventLogOptions o;
    o.enabled = true;
    o.flush_interval = 5 * sim::kMillisecond;
    o.max_batch = 256;
    o.max_batch_bytes = 64 * 1024;
    return o;
  }

  std::unique_ptr<EventLog> MakeLog() {
    return std::make_unique<EventLog>(sim_, store_, LogOptions(), "elog/7",
                                      /*owner=*/7);
  }
  void Settle() { sim_.scheduler().RunToQuiescence(); }

  sim::Simulation sim_;
  StableStore store_;
};

TEST_F(EventLogTest, ReplayReturnsAnchorPlusAppendsInOrder) {
  auto log = MakeLog();
  log->BeginGeneration(E(1, {0xaa}));
  log->Append(2, {1});
  log->Append(2, {2});
  log->Append(2, {3});
  Settle();  // flush timer fires, segment force completes

  auto entries = log->Replay();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].kind, 1);
  EXPECT_EQ(entries[0].payload, std::vector<std::uint8_t>{0xaa});
  for (int i = 1; i <= 3; ++i) {
    EXPECT_EQ(entries[i].kind, 2);
    EXPECT_EQ(entries[i].payload,
              std::vector<std::uint8_t>{static_cast<std::uint8_t>(i)});
  }
  EXPECT_EQ(log->stats().entries_rejected, 0u);
}

TEST_F(EventLogTest, AppendsBeforeFirstGenerationAreDropped) {
  auto log = MakeLog();
  log->Append(2, {1});  // no checkpoint to anchor it
  Settle();
  EXPECT_TRUE(log->Replay().empty());
}

TEST_F(EventLogTest, CrashMidGroupCommitLosesOnlyTheTail) {
  // Anchor + first batch become durable; the second batch is appended but
  // its segment force is still in flight at crash time. Replay must return
  // exactly the durable prefix.
  auto log = MakeLog();
  log->BeginGeneration(E(1, {0xaa}));
  log->Append(2, {1});
  Settle();  // anchor (seg 1) + batch (seg 2) durable

  log->Append(2, {2});
  log->Append(2, {3});
  sim_.scheduler().RunUntil(sim_.Now() + 6 * sim::kMillisecond);
  // Group commit fired (segment 3 issued) but force_latency has not elapsed.
  log->Crash();
  store_.DropPending(7);
  Settle();

  auto entries = log->Replay();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].payload, std::vector<std::uint8_t>{0xaa});
  EXPECT_EQ(entries[1].payload, std::vector<std::uint8_t>{1});
}

TEST_F(EventLogTest, UnflushedEntriesDieWithTheCrash) {
  // Crash before the group-commit interval elapses: the pending batch was
  // never even issued. This is the documented residual loss window.
  auto log = MakeLog();
  log->BeginGeneration(E(1, {0xaa}));
  Settle();
  log->Append(2, {1});
  EXPECT_EQ(log->pending_entries(), 1u);
  log->Crash();
  store_.DropPending(7);
  Settle();
  auto entries = log->Replay();
  ASSERT_EQ(entries.size(), 1u);  // anchor only
}

TEST_F(EventLogTest, TornSegmentRejectedWholesale) {
  // The segment mid-flight at crash time persists its first half (torn
  // sector). Replay must reject the torn frame and everything after it,
  // keeping only intact prior segments.
  store_.set_torn_writes(true);
  auto log = MakeLog();
  log->BeginGeneration(E(1, {0xaa}));
  log->Append(2, std::vector<std::uint8_t>(40, 0x11));
  Settle();  // segments 1..2 durable

  log->Append(2, std::vector<std::uint8_t>(40, 0x22));
  sim_.scheduler().RunUntil(sim_.Now() + 6 * sim::kMillisecond);
  log->Crash();  // segment 3's force in flight -> torn half persists
  store_.DropPending(7);
  Settle();
  ASSERT_GE(store_.stats().torn_writes, 1u);

  auto entries = log->Replay();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[1].payload, (std::vector<std::uint8_t>(40, 0x11)));
  EXPECT_GE(log->stats().entries_rejected, 1u);
}

TEST_F(EventLogTest, CrcBitFlipRejectsFromTheFlipOnward) {
  auto log = MakeLog();
  log->BeginGeneration(E(1, {0xaa}));
  Settle();
  log->Append(2, {1});
  Settle();  // segment 2
  log->Append(2, {2});
  Settle();  // segment 3

  // Bit rot in segment 2's body: CRC catches it; segment 3, though intact,
  // is rejected too — the log is trusted only up to the first bad byte.
  auto seg = store_.Read("elog/7/1/2");
  ASSERT_TRUE(seg.has_value());
  (*seg)[seg->size() - 1] ^= 0x01;
  store_.Poke("elog/7/1/2", *seg);

  auto entries = log->Replay();
  ASSERT_EQ(entries.size(), 1u);  // anchor only
  EXPECT_EQ(entries[0].payload, std::vector<std::uint8_t>{0xaa});
  EXPECT_GE(log->stats().entries_rejected, 1u);
}

TEST_F(EventLogTest, TornHeadReplaysNothing) {
  auto log = MakeLog();
  log->BeginGeneration(E(1, {0xaa}));
  log->Append(2, {1});
  Settle();
  store_.Poke("elog/7/head", {0x01, 0x00});  // truncated u64
  EXPECT_TRUE(log->Replay().empty());
  EXPECT_GE(log->stats().entries_rejected, 1u);
}

TEST_F(EventLogTest, NewGenerationSupersedesTheOld) {
  auto log = MakeLog();
  log->BeginGeneration(E(1, {0x01}));
  log->Append(2, {1});
  Settle();
  log->BeginGeneration(E(1, {0x02}));
  log->Append(2, {9});
  Settle();

  auto entries = log->Replay();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].payload, std::vector<std::uint8_t>{0x02});
  EXPECT_EQ(entries[1].payload, std::vector<std::uint8_t>{9});
}

TEST_F(EventLogTest, BeginGenerationErasesSupersededSegments) {
  // Once the new head pointer is durable, replay can never read the old
  // generation again; its segments must be erased rather than leak one
  // generation per checkpoint for the rest of the run.
  auto log = MakeLog();
  log->BeginGeneration(E(1, {0x01}));
  log->Append(2, {1});
  Settle();
  ASSERT_TRUE(store_.Contains("elog/7/1/1"));
  ASSERT_TRUE(store_.Contains("elog/7/1/2"));

  log->BeginGeneration(E(1, {0x02}));
  // The head write is still in flight: generation 1 must stay intact (a
  // crash right now would have to replay it).
  EXPECT_TRUE(store_.Contains("elog/7/1/1"));
  Settle();
  EXPECT_FALSE(store_.Contains("elog/7/1/1"));
  EXPECT_FALSE(store_.Contains("elog/7/1/2"));
  auto entries = log->Replay();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].payload, std::vector<std::uint8_t>{0x02});
}

TEST_F(EventLogTest, CrashBeforeNewHeadDurableKeepsOldGenerationIntact) {
  // The superseded generation is erased only on the new head's durability
  // callback: a crash while that write is in flight drops the callback and
  // the old generation — still named by the durable head — replays fully.
  auto log = MakeLog();
  log->BeginGeneration(E(1, {0x01}));
  log->Append(2, {1});
  Settle();

  log->BeginGeneration(E(1, {0x02}));  // head + anchor forces in flight
  log->Crash();
  store_.DropPending(7);
  Settle();

  EXPECT_TRUE(store_.Contains("elog/7/1/1"));
  auto entries = log->Replay();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].payload, std::vector<std::uint8_t>{0x01});
  EXPECT_EQ(entries[1].payload, std::vector<std::uint8_t>{1});
}

TEST_F(EventLogTest, TornHeadErasesStaleSegmentsSoGenerationReuseIsSafe) {
  // A garbled head resets the generation counter to 0, so generation
  // numbers get reused. Any segment surviving from the previous life
  // carries a valid CRC and would splice stale records contiguously after
  // the fresh anchor on the NEXT replay — inventing state. The garbled-head
  // path must therefore erase the namespace wholesale.
  auto log = MakeLog();
  log->BeginGeneration(E(1, {0xaa}));
  log->Append(2, {0x11});
  Settle();  // gen 1: anchor (seq 1) + append (seq 2) durable

  store_.Poke("elog/7/head", {0x01});  // torn head write
  EXPECT_TRUE(log->Replay().empty());
  EXPECT_FALSE(store_.Contains("elog/7/1/2"));  // stale segments gone

  // Recovery re-checkpoints; generation numbering restarts at 1. The old
  // life's seq-2 segment must not resurface behind the new anchor.
  log->BeginGeneration(E(1, {0xbb}));
  Settle();
  auto entries = log->Replay();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].payload, std::vector<std::uint8_t>{0xbb});
}

TEST_F(EventLogTest, BatchThresholdFlushesEarly) {
  EventLogOptions o = LogOptions();
  o.max_batch = 4;
  EventLog log(sim_, store_, o, "elog/8", 8);
  log.BeginGeneration(E(1, {0xaa}));
  Settle();
  const auto before = log.stats().segments_written;
  for (int i = 0; i < 4; ++i) log.Append(2, {static_cast<std::uint8_t>(i)});
  // The 4th append tripped max_batch: flushed without waiting for the timer.
  EXPECT_EQ(log.stats().segments_written, before + 1);
  EXPECT_EQ(log.pending_entries(), 0u);
}

TEST_F(EventLogTest, ByteBudgetFlushesEarly) {
  EventLogOptions o = LogOptions();
  o.max_batch_bytes = 64;
  EventLog log(sim_, store_, o, "elog/9", 9);
  log.BeginGeneration(E(1, {0xaa}));
  Settle();
  const auto before = log.stats().segments_written;
  log.Append(2, std::vector<std::uint8_t>(70, 0x55));  // over budget alone
  EXPECT_EQ(log.stats().segments_written, before + 1);
}

TEST_F(EventLogTest, EraseModelsDiskReplacement) {
  auto log = MakeLog();
  log->BeginGeneration(E(1, {0xaa}));
  log->Append(2, {1});
  Settle();
  log->Erase();
  EXPECT_TRUE(log->Replay().empty());
  EXPECT_FALSE(store_.Contains("elog/7/head"));
}

// ---------------------------------------------------------------------------
// Cluster integration: crash, replay, rejoin
// ---------------------------------------------------------------------------

std::size_t IndexOfPrimary(Cluster& cluster, vr::GroupId g) {
  auto cohorts = cluster.Cohorts(g);
  for (std::size_t i = 0; i < cohorts.size(); ++i) {
    if (cohorts[i]->IsActivePrimary()) return i;
  }
  return cohorts.size();
}

core::CohortOptions LoggedOptions() {
  core::CohortOptions o;
  o.event_log.enabled = true;
  return o;
}

// Group-commit interval + force latency + slack: after this long, every
// acknowledged record is durable in the local log.
constexpr sim::Duration kLogSettle = 100 * sim::kMillisecond;

TEST(Recovery, RecoveredBackupRejoinsViaRecordStream) {
  core::CohortOptions opts = LoggedOptions();
  // No elections while the backup is down, and no GC past its watermark:
  // the rejoin must be served from the record stream, not a snapshot.
  opts.liveness_timeout = 60 * sim::kSecond;
  opts.buffer.window = 1024;
  Cluster cluster(ClusterOptions{.seed = 211});
  auto kv = cluster.AddGroup("kv", 3, &opts);
  auto client_g = cluster.AddGroup("client", 1);
  RegisterKvProcs(cluster, kv);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  const std::size_t pi = IndexOfPrimary(cluster, kv);
  ASSERT_LT(pi, 3u);
  core::Cohort& primary = cluster.CohortAt(kv, pi);
  core::Cohort& backup = cluster.CohortAt(kv, (pi + 1) % 3);
  const vr::ViewId viewid = primary.cur_viewid();

  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(RunOneCallWithRetry(cluster, client_g, kv, "put",
                                  "k" + std::to_string(i) + "=v" +
                                      std::to_string(i)),
              vr::TxnOutcome::kCommitted);
  }
  cluster.RunFor(kLogSettle);

  backup.Crash();
  for (int i = 10; i < 20; ++i) {
    ASSERT_EQ(RunOneCallWithRetry(cluster, client_g, kv, "put",
                                  "k" + std::to_string(i) + "=v" +
                                      std::to_string(i)),
              vr::TxnOutcome::kCommitted);
  }
  backup.Recover();
  cluster.RunFor(2 * sim::kSecond);

  // Replayed locally, rejoined the SAME view, and caught up on the tail —
  // no view change, no snapshot.
  EXPECT_EQ(backup.stats().log_recoveries, 1u);
  EXPECT_GT(backup.stats().log_records_replayed, 0u);
  EXPECT_GE(backup.stats().rejoin_acks_sent, 1u);
  EXPECT_GE(primary.buffer().stats().rejoins, 1u);
  EXPECT_EQ(primary.cur_viewid(), viewid);
  EXPECT_EQ(backup.status(), core::Status::kActive);
  EXPECT_EQ(backup.applied_ts(), primary.buffer().last_ts());
  EXPECT_EQ(backup.stats().snapshots_installed, 0u);
  for (int i : {0, 9, 10, 19}) {
    EXPECT_EQ(backup.objects()
                  .ReadCommitted("k" + std::to_string(i))
                  .value_or(""),
              "v" + std::to_string(i))
        << "k" << i;
  }

  // Still a working group, and the rejoined backup keeps following.
  ASSERT_EQ(RunOneCallWithRetry(cluster, client_g, kv, "put", "post=1"),
            vr::TxnOutcome::kCommitted);
  cluster.RunFor(500 * sim::kMillisecond);
  EXPECT_EQ(backup.objects().ReadCommitted("post").value_or(""), "1");
  for (const std::string& v : check::CheckQuiescent(cluster, kv)) {
    ADD_FAILURE() << v;
  }
}

TEST(Recovery, RejoinBelowGcFloorFallsBackToSnapshot) {
  core::CohortOptions opts = LoggedOptions();
  opts.liveness_timeout = 60 * sim::kSecond;
  opts.buffer.window = 8;  // small: the missed tail is GC'd quickly
  opts.snapshot.chunk_size = 256;
  Cluster cluster(ClusterOptions{.seed = 212});
  auto kv = cluster.AddGroup("kv", 3, &opts);
  auto client_g = cluster.AddGroup("client", 1);
  RegisterKvProcs(cluster, kv);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  const std::size_t pi = IndexOfPrimary(cluster, kv);
  ASSERT_LT(pi, 3u);
  core::Cohort& primary = cluster.CohortAt(kv, pi);
  core::Cohort& backup = cluster.CohortAt(kv, (pi + 1) % 3);

  cluster.RunFor(kLogSettle);
  backup.Crash();
  for (int i = 0; i < 40; ++i) {
    ASSERT_EQ(RunOneCallWithRetry(cluster, client_g, kv, "put",
                                  "k" + std::to_string(i) + "=v" +
                                      std::to_string(i)),
              vr::TxnOutcome::kCommitted);
  }
  cluster.RunFor(200 * sim::kMillisecond);
  ASSERT_LT(backup.applied_ts(), primary.buffer().base_ts())
      << "setup: the tail must have been GC'd past the crashed watermark";

  backup.Recover();
  cluster.RunFor(3 * sim::kSecond);

  EXPECT_EQ(backup.stats().log_recoveries, 1u);
  EXPECT_GE(backup.stats().snapshots_installed, 1u);
  EXPECT_EQ(backup.applied_ts(), primary.buffer().last_ts());
  // The snapshot re-validated the replayed lower bound: the cohort answers
  // view changes normally again.
  EXPECT_FALSE(backup.log_recovered());
  for (int i : {0, 20, 39}) {
    EXPECT_EQ(backup.objects()
                  .ReadCommitted("k" + std::to_string(i))
                  .value_or(""),
              "v" + std::to_string(i));
  }
  for (const std::string& v : check::CheckQuiescent(cluster, kv)) {
    ADD_FAILURE() << v;
  }
}

TEST(Recovery, RejoinSurvivesTwentyPercentLoss) {
  core::CohortOptions opts = LoggedOptions();
  opts.liveness_timeout = 60 * sim::kSecond;
  opts.buffer.window = 1024;
  Cluster cluster(ClusterOptions{.seed = 213});
  auto kv = cluster.AddGroup("kv", 3, &opts);
  auto client_g = cluster.AddGroup("client", 1);
  RegisterKvProcs(cluster, kv);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  const std::size_t pi = IndexOfPrimary(cluster, kv);
  ASSERT_LT(pi, 3u);
  core::Cohort& primary = cluster.CohortAt(kv, pi);
  core::Cohort& backup = cluster.CohortAt(kv, (pi + 1) % 3);

  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(RunOneCallWithRetry(cluster, client_g, kv, "put",
                                  "k" + std::to_string(i) + "=v" +
                                      std::to_string(i)),
              vr::TxnOutcome::kCommitted);
  }
  cluster.RunFor(kLogSettle);
  backup.Crash();
  for (int i = 10; i < 20; ++i) {
    ASSERT_EQ(RunOneCallWithRetry(cluster, client_g, kv, "put",
                                  "k" + std::to_string(i) + "=v" +
                                      std::to_string(i)),
              vr::TxnOutcome::kCommitted);
  }

  // Drop 20% of every frame while the backup rejoins: the re-armed rejoin
  // ack and the gap/retransmit machinery must converge anyway.
  net::NetworkOptions lossy = cluster.network().options();
  lossy.loss_probability = 0.2;
  cluster.network().set_options(lossy);
  backup.Recover();
  cluster.RunFor(5 * sim::kSecond);
  lossy.loss_probability = 0.0;
  cluster.network().set_options(lossy);
  cluster.RunFor(1 * sim::kSecond);

  EXPECT_EQ(backup.stats().log_recoveries, 1u);
  EXPECT_EQ(backup.applied_ts(), primary.buffer().last_ts());
  for (int i : {0, 9, 19}) {
    EXPECT_EQ(backup.objects()
                  .ReadCommitted("k" + std::to_string(i))
                  .value_or(""),
              "v" + std::to_string(i));
  }
  for (const std::string& v : check::CheckQuiescent(cluster, kv)) {
    ADD_FAILURE() << v;
  }
}

TEST(Recovery, RecoverDuringInProgressViewChange) {
  // Both backups crash; the primary becomes a view manager but cannot form
  // (no majority). One backup recovers from its log MID-CHANGE: its
  // recovered acceptance counts as crashed-with-state, condition (3) holds
  // (the normal primary led the crash view), and the group comes back.
  core::CohortOptions opts = LoggedOptions();
  Cluster cluster(ClusterOptions{.seed = 214});
  auto kv = cluster.AddGroup("kv", 3, &opts);
  auto client_g = cluster.AddGroup("client", 1);
  RegisterKvProcs(cluster, kv);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  const std::size_t pi = IndexOfPrimary(cluster, kv);
  ASSERT_LT(pi, 3u);
  core::Cohort& primary = cluster.CohortAt(kv, pi);
  const vr::ViewId viewid = primary.cur_viewid();

  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(RunOneCallWithRetry(cluster, client_g, kv, "put",
                                  "k" + std::to_string(i) + "=v" +
                                      std::to_string(i)),
              vr::TxnOutcome::kCommitted);
  }
  cluster.RunFor(kLogSettle);

  for (std::size_t i = 0; i < 3; ++i) {
    if (i != pi) cluster.Crash(kv, i);
  }
  // Let the failure detector fire and the formation attempts start failing.
  cluster.RunFor(1 * sim::kSecond);
  ASSERT_EQ(cluster.AnyPrimary(kv), nullptr);
  ASSERT_NE(primary.status(), core::Status::kActive);

  cluster.Recover(kv, (pi + 1) % 3);
  ASSERT_TRUE(cluster.RunUntilStable(10 * sim::kSecond));
  core::Cohort* np = cluster.AnyPrimary(kv);
  ASSERT_NE(np, nullptr);
  EXPECT_GT(np->cur_viewid(), viewid);
  EXPECT_EQ(cluster.CohortAt(kv, (pi + 1) % 3).stats().log_recoveries, 1u);

  cluster.RunFor(500 * sim::kMillisecond);
  for (int i : {0, 5, 9}) {
    EXPECT_EQ(test::CommittedValue(cluster, kv, "k" + std::to_string(i)),
              "v" + std::to_string(i));
  }
  EXPECT_EQ(RunOneCallWithRetry(cluster, client_g, kv, "put", "post=1"),
            vr::TxnOutcome::kCommitted);
}

TEST(Recovery, FullMajorityStormSurvivesWithDurableLogs) {
  // The §4.2 catastrophe, disarmed: ALL THREE cohorts crash simultaneously.
  // Without the log this group never forms a view again (see
  // ViewChange.MajorityCrashIsCatastrophicUntilRecovery); with surviving
  // disks every cohort replays, and condition 4 re-forms the view with no
  // committed data lost.
  core::CohortOptions opts = LoggedOptions();
  Cluster cluster(ClusterOptions{.seed = 215});
  auto kv = cluster.AddGroup("kv", 3, &opts);
  auto client_g = cluster.AddGroup("client", 1);
  RegisterKvProcs(cluster, kv);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  const vr::ViewId viewid = cluster.AnyPrimary(kv)->cur_viewid();

  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(RunOneCallWithRetry(cluster, client_g, kv, "put",
                                  "k" + std::to_string(i) + "=v" +
                                      std::to_string(i)),
              vr::TxnOutcome::kCommitted);
  }
  cluster.RunFor(kLogSettle);  // every ack reaches a disk

  for (std::size_t i = 0; i < 3; ++i) cluster.Crash(kv, i);
  for (std::size_t i = 0; i < 3; ++i) cluster.Recover(kv, i);

  ASSERT_TRUE(cluster.RunUntilStable(10 * sim::kSecond));
  core::Cohort* np = cluster.AnyPrimary(kv);
  ASSERT_NE(np, nullptr);
  EXPECT_GT(np->cur_viewid(), viewid);
  for (auto* c : cluster.Cohorts(kv)) {
    EXPECT_EQ(c->stats().log_recoveries, 1u) << "cohort " << c->mid();
  }

  cluster.RunFor(500 * sim::kMillisecond);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(test::CommittedValue(cluster, kv, "k" + std::to_string(i)),
              "v" + std::to_string(i))
        << "k" << i << " lost in the storm";
  }
  EXPECT_EQ(RunOneCallWithRetry(cluster, client_g, kv, "put", "post=1"),
            vr::TxnOutcome::kCommitted);
  cluster.RunFor(500 * sim::kMillisecond);
  for (const std::string& v : check::CheckQuiescent(cluster, kv)) {
    ADD_FAILURE() << v;
  }
}

TEST(Recovery, MixedDisklessStormRemainsCatastrophic) {
  // One of the three disks is replaced: its cohort recovers amnesiac, so
  // condition 4's "every acceptance bears state" fails and the storm stays
  // a catastrophe — no view forms, and crucially no WRONG view forms.
  core::CohortOptions opts = LoggedOptions();
  Cluster cluster(ClusterOptions{.seed = 216});
  auto kv = cluster.AddGroup("kv", 3, &opts);
  auto client_g = cluster.AddGroup("client", 1);
  RegisterKvProcs(cluster, kv);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  ASSERT_EQ(RunOneCallWithRetry(cluster, client_g, kv, "put", "k=v"),
            vr::TxnOutcome::kCommitted);
  cluster.RunFor(kLogSettle);

  for (std::size_t i = 0; i < 3; ++i) cluster.Crash(kv, i);
  cluster.Recover(kv, 0);
  cluster.Recover(kv, 1);
  cluster.RecoverDiskless(kv, 2);

  EXPECT_FALSE(cluster.RunUntilStable(5 * sim::kSecond));
  EXPECT_EQ(cluster.AnyPrimary(kv), nullptr);
}

TEST(Recovery, DisklessRecoveryOfAllIsStillSafe) {
  // Every disk replaced: identical to the paper's volatile configuration.
  core::CohortOptions opts = LoggedOptions();
  Cluster cluster(ClusterOptions{.seed = 217});
  auto kv = cluster.AddGroup("kv", 3, &opts);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());
  for (std::size_t i = 0; i < 3; ++i) cluster.Crash(kv, i);
  for (std::size_t i = 0; i < 3; ++i) cluster.RecoverDiskless(kv, i);
  EXPECT_FALSE(cluster.RunUntilStable(5 * sim::kSecond));
  EXPECT_EQ(cluster.AnyPrimary(kv), nullptr);
}

// ---------------------------------------------------------------------------
// Storm soak: repeated majority-loss storms with a serializability chain
// ---------------------------------------------------------------------------

TEST(StormSoak, RepeatedStormsStaySerializable) {
  const char* soak_env = std::getenv("CHECK_SOAK");
  const bool long_run = soak_env != nullptr && soak_env[0] == '1';
  const int storms = long_run ? 20 : 5;
  const int txns_per_round = 3;

  core::CohortOptions opts = LoggedOptions();
  Cluster cluster(ClusterOptions{.seed = 218});
  auto kv = cluster.AddGroup("kv", 3, &opts);
  auto client_g = cluster.AddGroup("client", 1);
  cluster.RegisterProc(
      kv, "rmw",
      [](core::ProcContext& ctx) -> sim::Task<std::vector<std::uint8_t>> {
        auto prev = co_await ctx.ReadForUpdate("r");
        co_await ctx.Write("r", ctx.ArgsAsString());
        co_return test::Bytes(prev.value_or(""));
      });
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilStable());

  check::RegisterChainChecker chain;
  int next_value = 0;
  // One rmw through the client primary; returns true if it committed and
  // feeds the chain checker.
  auto run_rmw = [&]() {
    core::Cohort* cp = cluster.AnyPrimary(client_g);
    if (cp == nullptr) return false;
    const std::string value = "v" + std::to_string(next_value++);
    struct State {
      std::string prev;
      bool have = false, resolved = false;
      vr::TxnOutcome outcome = vr::TxnOutcome::kUnknown;
    };
    auto st = std::make_shared<State>();
    cp->SpawnTransaction(
        [st, kv, value](core::TxnHandle& h) -> sim::Task<bool> {
          auto r = co_await h.Call(kv, "rmw", value);
          st->prev = test::Str(r);
          st->have = true;
          co_return true;
        },
        [st](vr::TxnOutcome o) {
          st->resolved = true;
          st->outcome = o;
        });
    const sim::Time deadline = cluster.sim().Now() + 5 * sim::kSecond;
    while (!st->resolved && cluster.sim().Now() < deadline) {
      cluster.RunFor(10 * sim::kMillisecond);
    }
    if (st->resolved && st->outcome == vr::TxnOutcome::kCommitted) {
      EXPECT_TRUE(st->have);
      chain.NoteCommitted(st->prev, value);
      return true;
    }
    if (!st->resolved || st->outcome == vr::TxnOutcome::kUnknown) {
      if (st->have) chain.NoteUnknown(st->prev, value);
    }
    return false;
  };

  for (int storm = 0; storm < storms; ++storm) {
    int committed = 0;
    for (int t = 0; t < txns_per_round * 3 && committed < txns_per_round;
         ++t) {
      if (run_rmw()) ++committed;
    }
    ASSERT_GT(committed, 0) << "storm " << storm;
    // Give the write-behind log its group-commit window before pulling the
    // plug on everyone — acknowledgements inside the window may be lost
    // (the documented residual trade), which would break the chain.
    cluster.RunFor(kLogSettle);

    for (std::size_t i = 0; i < 3; ++i) cluster.Crash(kv, i);
    for (std::size_t i = 0; i < 3; ++i) cluster.Recover(kv, i);
    ASSERT_TRUE(cluster.RunUntilStable(20 * sim::kSecond))
        << "storm " << storm << ": group never re-formed";
    for (const std::string& v : check::CheckInstant(cluster, kv)) {
      ADD_FAILURE() << "storm " << storm << ": " << v;
    }
  }

  cluster.RunFor(2 * sim::kSecond);
  core::Cohort* p = cluster.AnyPrimary(kv);
  ASSERT_NE(p, nullptr);
  std::string why;
  EXPECT_TRUE(
      chain.Validate("", p->objects().ReadCommitted("r").value_or(""), &why))
      << why;
  for (const std::string& v : check::CheckQuiescent(cluster, kv)) {
    ADD_FAILURE() << v;
  }
}

}  // namespace
}  // namespace vsr
