// Host-seam conformance: the contracts in host/timer.h and net/transport.h,
// checked against BOTH implementations — the deterministic simulator
// (sim::Scheduler / net::Network) and the real-time host (host::EventLoop /
// host::SocketTransport). Protocol code is written against these contracts
// alone (DESIGN.md §12), so any divergence between the two hosts is a bug
// here, not in the cohorts.
//
// These tests exercise wall-clock timers and real sockets; they are NOT
// part of the deterministic-digest suites and assert no virtual-time
// values.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "host/event_loop.h"
#include "host/socket_transport.h"
#include "host/timer.h"
#include "net/network.h"
#include "net/transport.h"
#include "sim/scheduler.h"
#include "sim/simulation.h"

namespace vsr {
namespace {

// ---------------------------------------------------------------------------
// Timer conformance
// ---------------------------------------------------------------------------

// One host under test: its TimerService plus a way to drive it until a
// predicate holds (stepping virtual time, or waiting wall time).
class HostUnderTest {
 public:
  virtual ~HostUnderTest() = default;
  virtual host::TimerService& timers() = 0;
  virtual bool RunUntil(std::function<bool()> pred) = 0;
  // Bounded settle: long enough for any pending work to land.
  virtual void Settle() = 0;
};

class SimHostUnderTest : public HostUnderTest {
 public:
  host::TimerService& timers() override { return sched_; }
  bool RunUntil(std::function<bool()> pred) override {
    for (int i = 0; i < 100000 && !pred(); ++i) {
      if (sched_.Empty()) break;
      sched_.Step();
    }
    return pred();
  }
  void Settle() override { sched_.RunToQuiescence(); }

 private:
  sim::Scheduler sched_;
};

class RealHostUnderTest : public HostUnderTest {
 public:
  RealHostUnderTest() { loop_.Start(); }
  ~RealHostUnderTest() override { loop_.Stop(); }
  host::TimerService& timers() override { return loop_; }
  bool RunUntil(std::function<bool()> pred) override {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!pred()) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  }
  void Settle() override {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

 private:
  host::EventLoop loop_;
};

enum class HostKind { kSim, kReal };

class TimerConformance : public ::testing::TestWithParam<HostKind> {
 protected:
  void SetUp() override {
    if (GetParam() == HostKind::kSim) {
      hut_ = std::make_unique<SimHostUnderTest>();
    } else {
      hut_ = std::make_unique<RealHostUnderTest>();
    }
  }
  host::TimerService& T() { return hut_->timers(); }
  std::unique_ptr<HostUnderTest> hut_;
};

TEST_P(TimerConformance, EarlierDeadlinesFireFirst) {
  std::mutex mu;
  std::vector<int> order;
  auto push = [&](int v) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(v);
  };
  std::atomic<int> fired{0};
  // Scheduled out of order on purpose.
  T().After(30 * host::kMillisecond, [&] { push(3); fired++; });
  T().After(10 * host::kMillisecond, [&] { push(1); fired++; });
  T().After(20 * host::kMillisecond, [&] { push(2); fired++; });
  ASSERT_TRUE(hut_->RunUntil([&] { return fired.load() == 3; }));
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(TimerConformance, EqualDeadlinesFireInSchedulingOrder) {
  std::mutex mu;
  std::vector<int> order;
  std::atomic<int> fired{0};
  const host::Time deadline = T().Now() + 20 * host::kMillisecond;
  for (int i = 0; i < 8; ++i) {
    T().At(deadline, [&, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
      fired++;
    });
  }
  ASSERT_TRUE(hut_->RunUntil([&] { return fired.load() == 8; }));
  std::lock_guard<std::mutex> lock(mu);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST_P(TimerConformance, ZeroDelayIsStillAsynchronous) {
  // Run the probe ON the host thread: while it executes, a nested After(0)
  // must not fire synchronously (contract point 1).
  std::atomic<bool> nested_fired{false};
  std::atomic<bool> was_async{false};
  std::atomic<bool> done{false};
  T().After(0, [&] {
    T().After(0, [&] { nested_fired = true; });
    was_async = !nested_fired.load();
    done = true;
  });
  ASSERT_TRUE(hut_->RunUntil([&] { return done && nested_fired; }));
  EXPECT_TRUE(was_async.load());
}

TEST_P(TimerConformance, CancelPendingGuaranteesNoFire) {
  std::atomic<bool> cancelled_ran{false};
  std::atomic<bool> sentinel_ran{false};
  host::TimerId id =
      T().After(20 * host::kMillisecond, [&] { cancelled_ran = true; });
  T().Cancel(id);
  // A later sentinel bounds the wait: once it fires, the cancelled timer's
  // deadline has certainly passed.
  T().After(40 * host::kMillisecond, [&] { sentinel_ran = true; });
  ASSERT_TRUE(hut_->RunUntil([&] { return sentinel_ran.load(); }));
  EXPECT_FALSE(cancelled_ran.load());
}

TEST_P(TimerConformance, CancelOfFiredOrUnknownIdIsNoop) {
  std::atomic<bool> ran{false};
  host::TimerId id = T().After(0, [&] { ran = true; });
  ASSERT_TRUE(hut_->RunUntil([&] { return ran.load(); }));
  T().Cancel(id);       // already fired
  T().Cancel(9999999);  // never existed
  T().Cancel(host::kNoTimer);
  std::atomic<bool> after{false};
  T().After(0, [&] { after = true; });  // service still works
  EXPECT_TRUE(hut_->RunUntil([&] { return after.load(); }));
}

TEST_P(TimerConformance, NowInsideCallbackIsAtOrPastDeadline) {
  std::atomic<bool> done{false};
  const host::Time deadline = T().Now() + 15 * host::kMillisecond;
  host::Time observed = 0;
  T().At(deadline, [&] {
    observed = T().Now();
    done = true;
  });
  ASSERT_TRUE(hut_->RunUntil([&] { return done.load(); }));
  EXPECT_GE(observed, deadline);
}

INSTANTIATE_TEST_SUITE_P(BothHosts, TimerConformance,
                         ::testing::Values(HostKind::kSim, HostKind::kReal),
                         [](const auto& info) {
                           return info.param == HostKind::kSim ? "Sim"
                                                               : "Real";
                         });

// ---------------------------------------------------------------------------
// Transport conformance
// ---------------------------------------------------------------------------

class Recorder : public net::FrameHandler {
 public:
  void OnFrame(const net::Frame& frame) override {
    std::lock_guard<std::mutex> lock(mu_);
    frames_.push_back(frame);
  }
  std::size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return frames_.size();
  }
  net::Frame frame(std::size_t i) const {
    std::lock_guard<std::mutex> lock(mu_);
    return frames_.at(i);
  }

 private:
  mutable std::mutex mu_;
  std::vector<net::Frame> frames_;
};

constexpr net::NodeId kA = 1;
constexpr net::NodeId kB = 2;

// Two nodes, A and B, each with a transport endpoint and a host thread.
class TransportUnderTest {
 public:
  virtual ~TransportUnderTest() = default;
  virtual net::Transport& at(net::NodeId node) = 0;
  // Runs `fn` on the node's host thread and waits (Register/Unregister/
  // SetNodeUp are host-thread operations by contract).
  virtual void OnHostThread(net::NodeId node, std::function<void()> fn) = 0;
  virtual std::uint64_t DroppedNodeDown(net::NodeId node) = 0;
  virtual bool RunUntil(std::function<bool()> pred) = 0;
};

class SimTransportUnderTest : public TransportUnderTest {
 public:
  SimTransportUnderTest() : sim_(1234), net_(sim_, {}) {}
  net::Transport& at(net::NodeId) override { return net_; }
  void OnHostThread(net::NodeId, std::function<void()> fn) override { fn(); }
  std::uint64_t DroppedNodeDown(net::NodeId) override {
    return net_.stats().dropped_node_down;
  }
  bool RunUntil(std::function<bool()> pred) override {
    for (int i = 0; i < 100000 && !pred(); ++i) {
      if (sim_.scheduler().Empty()) break;
      sim_.scheduler().Step();
    }
    return pred();
  }

 private:
  sim::Simulation sim_;
  net::Network net_;
};

class RealTransportUnderTest : public TransportUnderTest {
 public:
  RealTransportUnderTest() {
    for (net::NodeId n : {kA, kB}) {
      auto& node = nodes_[n];
      node.loop = std::make_unique<host::EventLoop>();
      node.transport =
          std::make_unique<host::SocketTransport>(*node.loop, n, addrs_);
      addrs_[n] = host::NodeAddress{"127.0.0.1", node.transport->Listen(0)};
    }
    for (auto& [n, node] : nodes_) node.loop->Start();
  }
  ~RealTransportUnderTest() override {
    for (auto& [n, node] : nodes_) node.transport->Shutdown();
    for (auto& [n, node] : nodes_) node.loop->Stop();
  }
  net::Transport& at(net::NodeId node) override {
    return *nodes_.at(node).transport;
  }
  void OnHostThread(net::NodeId n, std::function<void()> fn) override {
    std::atomic<bool> done{false};
    nodes_.at(n).loop->Post([&] {
      fn();
      done = true;
    });
    while (!done) std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  std::uint64_t DroppedNodeDown(net::NodeId n) override {
    return nodes_.at(n).transport->stats().dropped_node_down;
  }
  bool RunUntil(std::function<bool()> pred) override {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!pred()) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  }

 private:
  struct Node {
    std::unique_ptr<host::EventLoop> loop;
    std::unique_ptr<host::SocketTransport> transport;
  };
  host::AddressMap addrs_;
  std::map<net::NodeId, Node> nodes_;
};

class TransportConformance : public ::testing::TestWithParam<HostKind> {
 protected:
  void SetUp() override {
    if (GetParam() == HostKind::kSim) {
      tut_ = std::make_unique<SimTransportUnderTest>();
    } else {
      tut_ = std::make_unique<RealTransportUnderTest>();
    }
  }
  std::unique_ptr<TransportUnderTest> tut_;
};

TEST_P(TransportConformance, DeliversPayloadIntact) {
  Recorder rec;
  tut_->OnHostThread(kB, [&] { tut_->at(kB).Register(kB, &rec); });
  std::vector<std::uint8_t> payload{0x01, 0x02, 0xfe, 0x00, 0x7f};
  tut_->OnHostThread(kA, [&] { tut_->at(kA).Send(kA, kB, 42, payload); });
  ASSERT_TRUE(tut_->RunUntil([&] { return rec.count() == 1; }));
  net::Frame f = rec.frame(0);
  EXPECT_EQ(f.from, kA);
  EXPECT_EQ(f.to, kB);
  EXPECT_EQ(f.type, 42);
  EXPECT_EQ(f.payload, payload);
}

TEST_P(TransportConformance, FramesToUnregisteredNodeAreDropped) {
  const std::uint64_t before = tut_->DroppedNodeDown(kB);
  tut_->OnHostThread(kA, [&] { tut_->at(kA).Send(kA, kB, 7, {1, 2, 3}); });
  EXPECT_TRUE(tut_->RunUntil(
      [&] { return tut_->DroppedNodeDown(kB) > before; }));
}

TEST_P(TransportConformance, UnregisterStopsDelivery) {
  Recorder rec;
  tut_->OnHostThread(kB, [&] { tut_->at(kB).Register(kB, &rec); });
  tut_->OnHostThread(kA, [&] { tut_->at(kA).Send(kA, kB, 7, {1}); });
  ASSERT_TRUE(tut_->RunUntil([&] { return rec.count() == 1; }));

  tut_->OnHostThread(kB, [&] { tut_->at(kB).Unregister(kB); });
  const std::uint64_t before = tut_->DroppedNodeDown(kB);
  tut_->OnHostThread(kA, [&] { tut_->at(kA).Send(kA, kB, 7, {2}); });
  ASSERT_TRUE(tut_->RunUntil(
      [&] { return tut_->DroppedNodeDown(kB) > before; }));
  EXPECT_EQ(rec.count(), 1u);
}

TEST_P(TransportConformance, SetNodeUpValveGatesDelivery) {
  Recorder rec;
  tut_->OnHostThread(kB, [&] {
    tut_->at(kB).Register(kB, &rec);
    tut_->at(kB).SetNodeUp(kB, false);
  });
  const std::uint64_t before = tut_->DroppedNodeDown(kB);
  tut_->OnHostThread(kA, [&] { tut_->at(kA).Send(kA, kB, 7, {1}); });
  ASSERT_TRUE(tut_->RunUntil(
      [&] { return tut_->DroppedNodeDown(kB) > before; }));
  EXPECT_EQ(rec.count(), 0u);

  tut_->OnHostThread(kB, [&] { tut_->at(kB).SetNodeUp(kB, true); });
  tut_->OnHostThread(kA, [&] { tut_->at(kA).Send(kA, kB, 7, {2}); });
  EXPECT_TRUE(tut_->RunUntil([&] { return rec.count() == 1; }));
}

TEST_P(TransportConformance, LocalSendIsAsynchronous) {
  Recorder rec;
  std::atomic<bool> sync_delivery{false};
  std::atomic<bool> sent{false};
  tut_->OnHostThread(kB, [&] {
    tut_->at(kB).Register(kB, &rec);
    tut_->at(kB).Send(kB, kB, 9, {1});
    sync_delivery = rec.count() != 0;  // handler must NOT run inside Send
    sent = true;
  });
  ASSERT_TRUE(tut_->RunUntil([&] { return sent && rec.count() == 1; }));
  EXPECT_FALSE(sync_delivery.load());
}

INSTANTIATE_TEST_SUITE_P(BothHosts, TransportConformance,
                         ::testing::Values(HostKind::kSim, HostKind::kReal),
                         [](const auto& info) {
                           return info.param == HostKind::kSim ? "Sim"
                                                               : "Real";
                         });

// ---------------------------------------------------------------------------
// Socket-host-only behavior
// ---------------------------------------------------------------------------

TEST(SocketTransport, ShutdownDrainsInFlightSends) {
  // Frames handed to the kernel before Shutdown() must still reach a peer
  // that keeps running: Send is a blocking write, so by the time it
  // returns the bytes are queued in the TCP stack, and teardown closes the
  // socket without discarding them.
  host::AddressMap addrs;
  host::EventLoop loop_a, loop_b;
  host::SocketTransport ta(loop_a, kA, addrs);
  host::SocketTransport tb(loop_b, kB, addrs);
  addrs[kA] = host::NodeAddress{"127.0.0.1", ta.Listen(0)};
  addrs[kB] = host::NodeAddress{"127.0.0.1", tb.Listen(0)};
  loop_a.Start();
  loop_b.Start();
  Recorder rec;
  std::atomic<bool> registered{false};
  loop_b.Post([&] {
    tb.Register(kB, &rec);
    registered = true;
  });
  while (!registered) std::this_thread::sleep_for(std::chrono::milliseconds(1));

  constexpr int kFrames = 50;
  std::atomic<bool> all_sent{false};
  loop_a.Post([&] {
    for (int i = 0; i < kFrames; ++i) {
      ta.Send(kA, kB, 3, {static_cast<std::uint8_t>(i)});
    }
    all_sent = true;
  });
  while (!all_sent) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ta.Shutdown();  // sender gone; the 50 frames are already in flight
  loop_a.Stop();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (rec.count() < kFrames &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(rec.count(), static_cast<std::size_t>(kFrames));
  tb.Shutdown();
  loop_b.Stop();
}

TEST(SocketTransport, SendToUnreachablePeerIsCountedLoss) {
  // No listener for kB: connect fails, the frame is dropped, and the
  // transport keeps working — loss, not an error (§1 network model).
  host::AddressMap addrs;
  host::EventLoop loop_a;
  host::SocketTransport ta(loop_a, kA, addrs);
  addrs[kA] = host::NodeAddress{"127.0.0.1", ta.Listen(0)};
  addrs[kB] = host::NodeAddress{"127.0.0.1", 1};  // nothing listens here
  loop_a.Start();
  std::atomic<bool> done{false};
  loop_a.Post([&] {
    ta.Send(kA, kB, 3, {1, 2});
    done = true;
  });
  while (!done) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(ta.stats().send_failures, 1u);
  ta.Shutdown();
  loop_a.Stop();
}

}  // namespace
}  // namespace vsr
