// Unit tests for the VR primitives: viewids/viewstamps, histories, psets
// (compatible / vs_max), and the communication buffer with force-to.
#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/simulation.h"
#include "vr/comm_buffer.h"
#include "vr/history.h"
#include "vr/types.h"

namespace vsr::vr {
namespace {

TEST(ViewIdOrder, TotalOrderByCounterThenMid) {
  EXPECT_LT((ViewId{1, 5}), (ViewId{2, 1}));
  EXPECT_LT((ViewId{2, 1}), (ViewId{2, 2}));
  EXPECT_EQ((ViewId{3, 3}), (ViewId{3, 3}));
  // Concurrent managers always produce distinct viewids: same counter,
  // different mids.
  EXPECT_NE((ViewId{4, 1}), (ViewId{4, 2}));
}

TEST(ViewstampOrder, LexicographicOnViewThenTs) {
  EXPECT_LT((Viewstamp{{1, 1}, 99}), (Viewstamp{{2, 1}, 0}));
  EXPECT_LT((Viewstamp{{2, 1}, 3}), (Viewstamp{{2, 1}, 4}));
}

TEST(Majority, Arithmetic) {
  EXPECT_EQ(MajorityOf(1), 1u);
  EXPECT_EQ(MajorityOf(2), 2u);
  EXPECT_EQ(MajorityOf(3), 2u);
  EXPECT_EQ(MajorityOf(5), 3u);
  EXPECT_EQ(MajorityOf(7), 4u);
  EXPECT_EQ(SubMajorityOf(3), 1u);
  EXPECT_EQ(SubMajorityOf(5), 2u);
  EXPECT_EQ(SubMajorityOf(1), 0u);
}

TEST(ViewMembership, ContainsAndSize) {
  View v{1, {2, 3}};
  EXPECT_TRUE(v.Contains(1));
  EXPECT_TRUE(v.Contains(3));
  EXPECT_FALSE(v.Contains(4));
  EXPECT_EQ(v.Size(), 3u);
  EXPECT_EQ(v.Members(), (std::vector<Mid>{1, 2, 3}));
}

TEST(History, KnowsImplementsPerViewPrefix) {
  History h;
  h.OpenView({1, 1});
  h.Advance(5);
  h.OpenView({2, 3});
  h.Advance(2);

  // "the cohort's state reflects event e from view v.id iff e's timestamp is
  //  less than or equal to v.ts."
  EXPECT_TRUE(h.Knows({{1, 1}, 5}));
  EXPECT_TRUE(h.Knows({{1, 1}, 1}));
  EXPECT_FALSE(h.Knows({{1, 1}, 6}));
  EXPECT_TRUE(h.Knows({{2, 3}, 2}));
  EXPECT_FALSE(h.Knows({{2, 3}, 3}));
  EXPECT_FALSE(h.Knows({{3, 1}, 1}));  // unknown view
  EXPECT_EQ(h.Latest(), (Viewstamp{{2, 3}, 2}));
}

TEST(History, EmptyHistoryReportsZeroViewstamp) {
  History h;
  EXPECT_TRUE(h.Empty());
  EXPECT_EQ(h.Latest(), Viewstamp{});
  EXPECT_FALSE(h.Knows({{0, 0}, 1}));
}

TEST(History, RoundTrip) {
  History h;
  h.OpenView({1, 2});
  h.Advance(7);
  h.OpenView({4, 1});
  wire::Writer w;
  h.Encode(w);
  auto bytes = w.Take();
  wire::Reader r(bytes);
  History out = History::Decode(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out.entries(), h.entries());
}

TEST(Pset, CompatibleRequiresAllEntriesCovered) {
  History h;
  h.OpenView({1, 1});
  h.Advance(10);

  Pset ps{{5, {{1, 1}, 7}, 0}, {5, {{1, 1}, 10}, 0}};
  EXPECT_TRUE(Compatible(ps, 5, h));

  ps.push_back({5, {{1, 1}, 11}, 0});  // beyond the history watermark
  EXPECT_FALSE(Compatible(ps, 5, h));
}

TEST(Pset, CompatibleIgnoresOtherGroups) {
  History h;
  h.OpenView({1, 1});
  h.Advance(1);
  Pset ps{{9, {{8, 8}, 99}, 0}};  // entry for group 9, not 5
  EXPECT_TRUE(Compatible(ps, 5, h));
}

TEST(Pset, CompatibleFailsAcrossLostView) {
  // The participant's history skipped view {2,2} (events there were lost in
  // a view change): entries from that view must fail the check.
  History h;
  h.OpenView({1, 1});
  h.Advance(4);
  h.OpenView({3, 1});
  h.Advance(2);
  Pset ps{{5, {{2, 2}, 1}, 0}};
  EXPECT_FALSE(Compatible(ps, 5, h));
}

TEST(Pset, VsMaxPicksLargestForGroup) {
  Pset ps{{5, {{1, 1}, 7}, 0}, {5, {{2, 1}, 3}, 0}, {6, {{9, 9}, 99}, 0}};
  auto m = VsMax(ps, 5);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, (Viewstamp{{2, 1}, 3}));
  EXPECT_FALSE(VsMax(ps, 7).has_value());
}

TEST(Pset, MergeDeduplicates) {
  Pset a{{5, {{1, 1}, 1}, 0}};
  Pset b{{5, {{1, 1}, 1}, 0}, {6, {{1, 1}, 2}, 0}};
  MergePset(a, b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(Pset, EraseSubRemovesAttemptEverywhere) {
  Pset ps{{5, {{1, 1}, 1}, 1}, {6, {{1, 1}, 2}, 1}, {5, {{1, 1}, 3}, 2}};
  ErasePsetSub(ps, 1);
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0].sub, 2u);
}

TEST(Pset, GroupsExtractsDistinctParticipants) {
  Pset ps{{5, {{1, 1}, 1}, 0}, {6, {{1, 1}, 2}, 0}, {5, {{1, 1}, 3}, 1}};
  EXPECT_EQ(PsetGroups(ps), (std::vector<GroupId>{5, 6}));
}

// ---------------------------------------------------------------------------
// Communication buffer
// ---------------------------------------------------------------------------

class CommBufferTest : public ::testing::Test {
 protected:
  CommBufferTest()
      : sim_(1),
        buffer_(
            sim_, options_, [this](Mid to, const BufferBatchMsg& b) { sent_.emplace_back(to, b); },
            [this] { ++force_failures_; }) {
    history_.OpenView(viewid_);
    buffer_.StartView(viewid_, {2, 3}, 3, /*group=*/1, /*self=*/1, &history_);
  }

  EventRecord Rec() { return EventRecord::Done(Aid{1, viewid_, 1}); }

  void Ack(Mid from, std::uint64_t ts) {
    BufferAckMsg a;
    a.group = 1;
    a.viewid = viewid_;
    a.from = from;
    a.ts = ts;
    buffer_.OnAck(a);
  }

  CommBufferOptions options_;
  sim::Simulation sim_;
  ViewId viewid_{1, 1};
  History history_;
  std::vector<std::pair<Mid, BufferBatchMsg>> sent_;
  int force_failures_ = 0;
  CommBuffer buffer_;
};

TEST_F(CommBufferTest, AddAssignsIncreasingTimestampsAndAdvancesHistory) {
  Viewstamp v1 = buffer_.Add(Rec());
  Viewstamp v2 = buffer_.Add(Rec());
  EXPECT_EQ(v1.ts, 1u);
  EXPECT_EQ(v2.ts, 2u);
  EXPECT_EQ(v1.view, viewid_);
  EXPECT_EQ(history_.Latest().ts, 2u);
}

TEST_F(CommBufferTest, BackgroundFlushDeliversToAllBackups) {
  buffer_.Add(Rec());
  EXPECT_TRUE(sent_.empty());  // write ≠ send: background mode
  sim_.scheduler().RunUntil(options_.flush_delay + 1);
  ASSERT_GE(sent_.size(), 2u);
  std::set<Mid> targets;
  for (auto& [to, b] : sent_) targets.insert(to);
  EXPECT_EQ(targets, (std::set<Mid>{2, 3}));
}

TEST_F(CommBufferTest, ForceCompletesOnSubMajorityAck) {
  Viewstamp v = buffer_.Add(Rec());
  bool done = false, ok = false;
  buffer_.ForceTo(v, [&](bool o) {
    done = true;
    ok = o;
  });
  EXPECT_FALSE(done);  // no acks yet
  Ack(2, 1);           // sub-majority of 3 is 1 backup
  EXPECT_TRUE(done);
  EXPECT_TRUE(ok);
}

TEST_F(CommBufferTest, ForceForOtherViewReturnsImmediately) {
  bool done = false, ok = false;
  buffer_.ForceTo({{0, 9}, 5}, [&](bool o) {
    done = true;
    ok = o;
  });
  EXPECT_TRUE(done);
  EXPECT_TRUE(ok);
}

TEST_F(CommBufferTest, ForceAlreadyStableIsImmediate) {
  Viewstamp v = buffer_.Add(Rec());
  Ack(2, 1);
  bool done = false;
  buffer_.ForceTo(v, [&](bool) { done = true; });
  EXPECT_TRUE(done);
  EXPECT_EQ(buffer_.stats().forces_immediate, 1u);
}

TEST_F(CommBufferTest, ForceTimesOutWithoutAcks) {
  Viewstamp v = buffer_.Add(Rec());
  bool done = false, ok = true;
  buffer_.ForceTo(v, [&](bool o) {
    done = true;
    ok = o;
  });
  sim_.scheduler().RunUntil(options_.force_timeout * 2);
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
  EXPECT_EQ(force_failures_, 1);
}

TEST_F(CommBufferTest, StableTsIsKthHighestAck) {
  buffer_.Add(Rec());
  buffer_.Add(Rec());
  buffer_.Add(Rec());
  EXPECT_EQ(buffer_.StableTs(), 0u);
  Ack(2, 2);
  EXPECT_EQ(buffer_.StableTs(), 2u);  // submajority=1: highest single ack
  Ack(3, 3);
  EXPECT_EQ(buffer_.StableTs(), 3u);
}

TEST_F(CommBufferTest, RetransmitsUnackedRecords) {
  buffer_.Add(Rec());
  sim_.scheduler().RunUntil(options_.retransmit_interval * 3);
  // At least two transmissions to each backup (initial flush + retransmit).
  int to_backup2 = 0;
  for (auto& [to, b] : sent_) to_backup2 += to == 2 ? 1 : 0;
  EXPECT_GE(to_backup2, 2);
  // Acked backups stop receiving retransmissions.
  sent_.clear();
  Ack(2, 1);
  Ack(3, 1);
  sim_.scheduler().RunUntil(sim_.Now() + options_.retransmit_interval * 3);
  EXPECT_TRUE(sent_.empty());
}

TEST_F(CommBufferTest, BatchesStartAfterAckedPrefix) {
  buffer_.Add(Rec());
  buffer_.Add(Rec());
  Ack(2, 1);
  sent_.clear();
  sim_.scheduler().RunUntil(sim_.Now() + options_.retransmit_interval + 1);
  bool saw = false;
  for (auto& [to, b] : sent_) {
    if (to != 2) continue;
    saw = true;
    ASSERT_FALSE(b.events.empty());
    EXPECT_EQ(b.events.front().ts, 2u);  // resumes after the acked prefix
  }
  EXPECT_TRUE(saw);
}

TEST_F(CommBufferTest, StaleViewAcksIgnored) {
  Viewstamp v = buffer_.Add(Rec());
  BufferAckMsg stale;
  stale.group = 1;
  stale.viewid = {0, 7};  // wrong view
  stale.from = 2;
  stale.ts = 5;
  buffer_.OnAck(stale);
  bool done = false;
  buffer_.ForceTo(v, [&](bool) { done = true; });
  EXPECT_FALSE(done);
}

TEST_F(CommBufferTest, ForceAfterStopFails) {
  Viewstamp v = buffer_.Add(Rec());
  buffer_.Stop();
  bool done = false, ok = true;
  buffer_.ForceTo(v, [&](bool o) {
    done = true;
    ok = o;
  });
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);  // never replicated: not durable
  // A viewstamp of another view still completes true ("returns immediately"):
  // its durability was settled by that view, not by this buffer.
  done = false;
  ok = false;
  buffer_.ForceTo({{0, 9}, 5}, [&](bool o) {
    done = true;
    ok = o;
  });
  EXPECT_TRUE(done);
  EXPECT_TRUE(ok);
}

TEST_F(CommBufferTest, DuplicateAckIsIdempotent) {
  buffer_.Add(Rec());
  buffer_.Add(Rec());
  Ack(2, 2);
  const std::uint64_t stable = buffer_.StableTs();
  const std::uint64_t sent_before = buffer_.stats().records_sent;
  Ack(2, 2);  // duplicate
  Ack(2, 1);  // regression: a stale ack must not move the cursor backwards
  EXPECT_EQ(buffer_.StableTs(), stable);
  EXPECT_EQ(buffer_.AckedTs(2), 2u);
  EXPECT_EQ(buffer_.stats().records_sent, sent_before);
  EXPECT_EQ(buffer_.stats().acks_rejected, 0u);
}

TEST_F(CommBufferTest, DuplicateRejoinAckForServicedEpochIsIgnored) {
  buffer_.Add(Rec());
  buffer_.Add(Rec());
  buffer_.Add(Rec());
  // Recovery episode 100: backup 2 rejoins at ts 1; the primary rewinds its
  // cursors and restreams the tail.
  BufferAckMsg rejoin;
  rejoin.group = 1;
  rejoin.viewid = viewid_;
  rejoin.from = 2;
  rejoin.ts = 1;
  rejoin.rejoin = true;
  rejoin.rejoin_epoch = 100;
  buffer_.OnAck(rejoin);
  EXPECT_EQ(buffer_.stats().rejoins, 1u);
  EXPECT_EQ(buffer_.AckedTs(2), 1u);
  // The backup catches up past the rewound point...
  Ack(2, 3);
  const std::uint64_t sent_before = buffer_.stats().records_sent;
  // ...then a delayed retransmission of the SAME episode lands. It must not
  // rewind the cursors or restream anything — the episode was serviced.
  buffer_.OnAck(rejoin);
  EXPECT_EQ(buffer_.stats().rejoins_ignored, 1u);
  EXPECT_EQ(buffer_.AckedTs(2), 3u);
  EXPECT_EQ(buffer_.stats().records_sent, sent_before);
  // A later epoch is a new recovery episode: the backup really crashed
  // again, so the rewind (even further back) is honored.
  rejoin.rejoin_epoch = 200;
  rejoin.ts = 0;
  buffer_.OnAck(rejoin);
  EXPECT_EQ(buffer_.stats().rejoins, 2u);
  EXPECT_EQ(buffer_.AckedTs(2), 0u);
  // Epoch 0 (unspecified) is always honored but never lowers the floor:
  // the tagged episode 100 stays ignored afterwards.
  Ack(2, 3);
  rejoin.rejoin_epoch = 0;
  rejoin.ts = 2;
  buffer_.OnAck(rejoin);
  EXPECT_EQ(buffer_.stats().rejoins, 3u);
  EXPECT_EQ(buffer_.AckedTs(2), 2u);
  rejoin.rejoin_epoch = 100;
  buffer_.OnAck(rejoin);
  EXPECT_EQ(buffer_.stats().rejoins_ignored, 2u);
}

TEST_F(CommBufferTest, RejectsForeignAndCorruptAcks) {
  buffer_.Add(Rec());
  BufferAckMsg a;
  a.viewid = viewid_;
  a.group = 1;
  a.from = 9;  // not a backup of this view
  a.ts = 1;
  buffer_.OnAck(a);
  a.from = 2;
  a.group = 7;  // wrong group
  buffer_.OnAck(a);
  a.group = 1;
  a.ts = 99;  // beyond last_ts(): corrupt or misrouted
  buffer_.OnAck(a);
  EXPECT_EQ(buffer_.stats().acks_rejected, 3u);
  EXPECT_EQ(buffer_.StableTs(), 0u);
  EXPECT_EQ(buffer_.AckedTs(2), 0u);
}

TEST_F(CommBufferTest, HealthyBackupsNeverReceiveARecordTwice) {
  // Prompt acks: every record crosses the wire exactly once per backup.
  for (int i = 0; i < 10; ++i) {
    buffer_.Add(Rec());
    sim_.scheduler().RunUntil(sim_.Now() + options_.flush_delay + 1);
    Ack(2, buffer_.last_ts());
    Ack(3, buffer_.last_ts());
  }
  sim_.scheduler().RunUntil(sim_.Now() + options_.retransmit_interval * 3);
  EXPECT_EQ(buffer_.stats().records_sent, 20u);  // 10 records × 2 backups
  EXPECT_EQ(buffer_.stats().records_retransmitted, 0u);
  EXPECT_EQ(buffer_.stats().retransmit_timeouts, 0u);
}

TEST_F(CommBufferTest, OnlyStalledBackupGetsRetransmission) {
  buffer_.Add(Rec());
  sim_.scheduler().RunUntil(options_.flush_delay + 1);
  Ack(2, 1);  // backup 2 healthy; backup 3 silent
  sent_.clear();
  sim_.scheduler().RunUntil(sim_.Now() + options_.retransmit_interval * 2);
  ASSERT_FALSE(sent_.empty());
  for (auto& [to, b] : sent_) EXPECT_EQ(to, 3u);
  EXPECT_GE(buffer_.stats().retransmit_timeouts, 1u);
}

TEST_F(CommBufferTest, GapRequestResendsExactlyTheHole) {
  for (int i = 0; i < 5; ++i) buffer_.Add(Rec());
  sim_.scheduler().RunUntil(options_.flush_delay + 1);  // all five in flight
  sent_.clear();
  // Backup 2 applied ts 1–2 and then received 4–5: it asks for exactly ts 3.
  BufferAckMsg a;
  a.group = 1;
  a.viewid = viewid_;
  a.from = 2;
  a.ts = 2;
  a.gap = true;
  a.gap_hi = 3;
  buffer_.OnAck(a);
  ASSERT_EQ(sent_.size(), 1u);
  EXPECT_EQ(sent_[0].first, 2u);
  ASSERT_EQ(sent_[0].second.events.size(), 1u);
  EXPECT_EQ(sent_[0].second.events[0].ts, 3u);
  EXPECT_EQ(buffer_.stats().gap_requests, 1u);
  // The same hole is not filled twice while the ack stands still.
  buffer_.OnAck(a);
  EXPECT_EQ(buffer_.stats().gap_requests, 1u);
  EXPECT_EQ(sent_.size(), 1u);
}

TEST_F(CommBufferTest, GarbageCollectsBelowAllAckedWatermark) {
  for (int i = 0; i < 4; ++i) buffer_.Add(Rec());
  sim_.scheduler().RunUntil(options_.flush_delay + 1);
  Ack(2, 3);
  EXPECT_EQ(buffer_.base_ts(), 0u);  // backup 3 still owes everything
  Ack(3, 2);
  EXPECT_EQ(buffer_.base_ts(), 2u);  // min-ack watermark
  ASSERT_EQ(buffer_.records().size(), 2u);
  EXPECT_EQ(buffer_.records().front().ts, 3u);
  EXPECT_EQ(buffer_.stats().records_gced, 2u);
  Ack(2, 4);
  Ack(3, 4);
  EXPECT_TRUE(buffer_.records().empty());
  EXPECT_EQ(buffer_.base_ts(), 4u);
  // Timestamps keep advancing past the released prefix.
  EXPECT_EQ(buffer_.Add(Rec()).ts, 5u);
}

TEST_F(CommBufferTest, DeadBackupNoLongerPinsGarbageCollection) {
  // Regression (DESIGN.md §9): before snapshot catch-up, one dead backup
  // pinned the min-ack GC watermark at its last ack and records_ grew with
  // its lag. Now GC releases records more than `window` below the stable
  // watermark and the laggard is routed through state transfer.
  CommBufferOptions o;
  o.window = 4;
  std::vector<Mid> snapshot_requests;
  History h;
  ViewId vid{2, 1};
  h.OpenView(vid);
  CommBuffer b(
      sim_, o, [](Mid, const BufferBatchMsg&) {}, [] {},
      [&](Mid m) { snapshot_requests.push_back(m); });
  b.StartView(vid, {2, 3}, 3, /*group=*/1, /*self=*/1, &h);
  auto ack = [&](Mid from, std::uint64_t ts) {
    BufferAckMsg a;
    a.group = 1;
    a.viewid = vid;
    a.from = from;
    a.ts = ts;
    b.OnAck(a);
  };
  for (int i = 0; i < 20; ++i) b.Add(EventRecord::Done(Aid{1, vid, 1}));
  sim_.scheduler().RunUntil(sim_.Now() + o.flush_delay + 1);
  ack(2, 20);  // backup 2 healthy; backup 3 dead (never acks)
  // StableTs (sub-majority of 3 = 1 backup) is 20: the floor releases all
  // but the last `window` records even though backup 3 acked nothing.
  EXPECT_EQ(b.base_ts(), 16u);
  EXPECT_LE(b.records().size(), o.window);
  // The dead backup's go-back-N deadline routes it into state transfer: one
  // snapshot request per episode, and no more record retransmissions.
  sim_.scheduler().RunUntil(sim_.Now() + o.retransmit_interval * 3);
  ASSERT_EQ(snapshot_requests.size(), 1u);
  EXPECT_EQ(snapshot_requests[0], 3u);
  EXPECT_EQ(b.stats().snapshots_served, 1u);
  // Memory stays O(window) as the stream keeps flowing.
  for (int i = 0; i < 20; ++i) b.Add(EventRecord::Done(Aid{1, vid, 1}));
  ack(2, 40);
  EXPECT_EQ(b.base_ts(), 36u);
  EXPECT_LE(b.records().size(), o.window);
  // The backup installs the snapshot (ack at the snapshot ts, inside the
  // resident range): state transfer ends and min-ack GC resumes.
  ack(3, 40);
  EXPECT_EQ(b.base_ts(), 40u);
  EXPECT_TRUE(b.records().empty());
  b.Stop();
}

TEST_F(CommBufferTest, SnapshotCatchupOffKeepsMinAckGc) {
  // Ablation A7: with snapshot_catchup disabled the seed behavior is intact —
  // GC never passes the slowest backup's ack.
  CommBufferOptions o;
  o.window = 4;
  o.snapshot_catchup = false;
  History h;
  ViewId vid{2, 1};
  h.OpenView(vid);
  CommBuffer b(
      sim_, o, [](Mid, const BufferBatchMsg&) {}, [] {});
  b.StartView(vid, {2, 3}, 3, /*group=*/1, /*self=*/1, &h);
  for (int i = 0; i < 20; ++i) b.Add(EventRecord::Done(Aid{1, vid, 1}));
  BufferAckMsg a;
  a.group = 1;
  a.viewid = vid;
  a.from = 2;
  a.ts = 20;
  b.OnAck(a);
  EXPECT_EQ(b.base_ts(), 0u);  // pinned by backup 3
  EXPECT_EQ(b.records().size(), 20u);
  EXPECT_EQ(b.stats().snapshots_served, 0u);
  b.Stop();
}

TEST_F(CommBufferTest, LostGapResendIsReRequestedAfterDeadline) {
  // Regression (bugfix sweep): gap_resent_hi used to suppress every repeated
  // nack for the same hole forever, so a LOST gap resend left the backup
  // waiting out the full go-back-N deadline. A repeated nack arriving after
  // the gap deadline (half a retransmit interval) is honored again.
  for (int i = 0; i < 5; ++i) buffer_.Add(Rec());
  sim_.scheduler().RunUntil(options_.flush_delay + 1);
  sent_.clear();
  BufferAckMsg a;
  a.group = 1;
  a.viewid = viewid_;
  a.from = 2;
  a.ts = 2;
  a.gap = true;
  a.gap_hi = 3;
  buffer_.OnAck(a);
  EXPECT_EQ(buffer_.stats().gap_requests, 1u);
  ASSERT_EQ(sent_.size(), 1u);
  // The resend is lost in flight; an immediate duplicate nack stays
  // suppressed (it raced the resend)...
  buffer_.OnAck(a);
  EXPECT_EQ(buffer_.stats().gap_requests, 1u);
  EXPECT_EQ(sent_.size(), 1u);
  // ...but once the gap deadline passes, the repeated nack means the resend
  // itself was lost: honor it now, well before the go-back-N deadline.
  sim_.scheduler().RunUntil(sim_.Now() + options_.retransmit_interval / 2 + 1);
  buffer_.OnAck(a);
  EXPECT_EQ(buffer_.stats().gap_requests, 2u);
  ASSERT_EQ(sent_.size(), 2u);
  EXPECT_EQ(sent_[1].second.events.front().ts, 3u);
  EXPECT_EQ(buffer_.stats().retransmit_timeouts, 0u);
}

TEST_F(CommBufferTest, WindowLimitsInFlightRecords) {
  CommBufferOptions small = options_;
  small.window = 2;
  std::vector<std::pair<Mid, BufferBatchMsg>> sent;
  History h;
  ViewId vid{3, 1};
  h.OpenView(vid);
  CommBuffer b(
      sim_, small,
      [&](Mid to, const BufferBatchMsg& m) { sent.emplace_back(to, m); },
      [] {});
  b.StartView(vid, {2, 3}, 3, 1, 1, &h);
  for (int i = 0; i < 5; ++i) b.Add(EventRecord::Done(Aid{1, vid, 1}));
  sim_.scheduler().RunUntil(sim_.Now() + small.flush_delay + 1);
  auto highest_sent_to = [&](Mid backup) {
    std::uint64_t hi = 0;
    for (auto& [to, m] : sent) {
      if (to != backup) continue;
      for (auto& r : m.events) hi = std::max(hi, r.ts);
    }
    return hi;
  };
  EXPECT_EQ(highest_sent_to(2), 2u);  // window full at two unacked records
  EXPECT_GE(b.stats().window_stalls, 1u);
  // An ack frees window space and the stalled backup resumes immediately.
  BufferAckMsg a;
  a.group = 1;
  a.viewid = vid;
  a.from = 2;
  a.ts = 2;
  b.OnAck(a);
  EXPECT_EQ(highest_sent_to(2), 4u);
  b.Stop();
}

TEST_F(CommBufferTest, SingleCohortGroupForcesImmediately) {
  History h1;
  ViewId vid{2, 9};
  h1.OpenView(vid);
  CommBuffer solo(
      sim_, options_, [](Mid, const BufferBatchMsg&) {}, [] {});
  solo.StartView(vid, {}, 1, 1, 9, &h1);
  Viewstamp v = solo.Add(EventRecord::Done(Aid{}));
  bool ok = false;
  solo.ForceTo(v, [&](bool o) { ok = o; });
  EXPECT_TRUE(ok);
}


// ---------------------------------------------------------------------------
// Compressed replication stream through the CommBuffer (DESIGN.md §8)
// ---------------------------------------------------------------------------

// Drives a compression-enabled CommBuffer exactly as a cohort does: every
// send is encoded once (binding the per-backup codec state in transmission
// order), then delivered — or dropped — and decoded with that backup's
// BatchDecoder. What each backup applies must be byte-identical to what was
// added, across normal flow, whole-batch loss healed by go-back-N, and
// mid-stream loss healed by a gap request.
class CompressedCommBufferTest : public ::testing::Test {
 protected:
  struct Backup {
    BatchDecoder dec;
    std::vector<EventRecord> applied;
    std::uint64_t applied_ts = 0;
    int drop_next = 0;  // frames to drop before delivery resumes
    std::uint64_t decode_failures = 0;
    std::uint64_t gap_nacks = 0;
  };

  CompressedCommBufferTest()
      : sim_(1),
        buffer_(
            sim_, options_,
            [this](Mid to, const BufferBatchMsg& b) { Transmit(to, b); },
            [this] { ++force_failures_; }) {
    backups_[2];
    backups_[3];
    history_.OpenView(viewid_);
    buffer_.StartView(viewid_, {2, 3}, 3, /*group=*/1, /*self=*/1, &history_);
  }

  static CommBufferOptions MakeOptions() {
    CommBufferOptions o;
    o.compression = CompressionMode::kDict;
    o.dict_capacity = 4;
    return o;
  }

  void Transmit(Mid to, const BufferBatchMsg& b) {
    // The single encode every send performs in production (Cohort::SendMsg);
    // this is what advances the per-backup encoder state.
    auto bytes = EncodeMsg(b);
    Backup& bk = backups_[to];
    if (bk.drop_next > 0) {
      --bk.drop_next;
      return;
    }
    wire::Reader r(bytes);
    BufferBatchMsg m = BufferBatchMsg::Decode(r, &bk.dec);
    if (!r.ok()) {
      ++bk.decode_failures;
      return;
    }
    BufferAckMsg a;
    a.group = 1;
    a.viewid = viewid_;
    a.from = to;
    if (m.stale) {
      // Duplicate range: our ack was lost. Restate the cumulative watermark
      // (as Cohort::OnBufferBatch does) so the primary's cursor — and its
      // rewind checkpoint — move past the replayed range.
      a.ts = bk.applied_ts;
    } else if (m.unsynced) {
      if (m.last_ts <= bk.applied_ts) return;
      ++bk.gap_nacks;
      a.ts = bk.applied_ts;
      a.gap = true;
      a.gap_hi = m.last_ts;
      a.codec_reset = m.reset_needed;
    } else {
      for (const EventRecord& e : m.events) {
        if (e.ts == bk.applied_ts + 1) {
          bk.applied.push_back(e);
          ++bk.applied_ts;
        }
      }
      a.ts = bk.applied_ts;
    }
    // Acks arrive asynchronously, as on the network — OnAck must not
    // re-enter the buffer mid-send.
    sim_.scheduler().After(1, [this, a] { buffer_.OnAck(a); });
  }

  EventRecord Rec(std::uint64_t seq, const std::string& uid,
                  std::string value) {
    return EventRecord::CompletedCall(
        {Aid{1, viewid_, seq}, 0},
        {ObjectEffect{uid, LockMode::kWrite, std::move(value)}});
  }

  // Adds a record and returns the copy with its assigned timestamp.
  EventRecord Add(EventRecord e) {
    e.ts = buffer_.Add(e).ts;
    return e;
  }

  void RunTo(sim::Duration t) { sim_.scheduler().RunUntil(t); }

  CommBufferOptions options_ = MakeOptions();
  sim::Simulation sim_;
  ViewId viewid_{1, 1};
  History history_;
  std::map<Mid, Backup> backups_;
  int force_failures_ = 0;
  CommBuffer buffer_;
};

TEST_F(CompressedCommBufferTest, SteadyStateStreamDecodesIdentically) {
  std::vector<EventRecord> added;
  sim::Duration t = 0;
  for (int wave = 0; wave < 10; ++wave) {
    for (int i = 0; i < 5; ++i) {
      const int n = wave * 5 + i + 1;
      added.push_back(Add(Rec(n, "acct-" + std::to_string(n % 3),
                              "balance=" + std::to_string(1000 + n))));
    }
    t += 2 * options_.flush_delay;
    RunTo(t);
  }
  RunTo(t + 10 * options_.flush_delay);

  for (auto& [mid, bk] : backups_) {
    EXPECT_EQ(bk.decode_failures, 0u) << "backup " << mid;
    ASSERT_EQ(bk.applied.size(), added.size()) << "backup " << mid;
    for (std::size_t i = 0; i < added.size(); ++i) {
      EXPECT_EQ(bk.applied[i], added[i]) << "backup " << mid << " record " << i;
    }
    const CodecStats* cs = buffer_.encoder_stats(mid);
    ASSERT_NE(cs, nullptr);
    // The hot-key workload actually hit the dictionary and delta paths...
    EXPECT_GT(cs->dict_hits, 0u);
    EXPECT_GT(cs->tentative_deltas, 0u);
    // ...and compressed bodies beat the raw record encoding.
    std::size_t raw_size = 4;  // the raw layout's vector length prefix
    for (const EventRecord& e : added) {
      wire::Writer w;
      e.Encode(w);
      raw_size += w.size();
    }
    EXPECT_LT(cs->bytes_out, raw_size);
  }
  // Healthy run: nothing was retransmitted and no stream ever lost sync.
  EXPECT_EQ(buffer_.stats().records_retransmitted, 0u);
  EXPECT_EQ(backups_[2].gap_nacks, 0u);
  EXPECT_EQ(backups_[3].gap_nacks, 0u);
}

TEST_F(CompressedCommBufferTest, WholeBatchLossHealsViaGoBackNReset) {
  backups_[2].drop_next = 1;  // backup 2 loses the first flush entirely
  std::vector<EventRecord> added;
  for (int n = 1; n <= 5; ++n) {
    added.push_back(Add(Rec(n, "k", "v" + std::to_string(n))));
  }
  RunTo(3 * options_.retransmit_interval);

  for (auto& [mid, bk] : backups_) {
    EXPECT_EQ(bk.decode_failures, 0u);
    ASSERT_EQ(bk.applied.size(), added.size()) << "backup " << mid;
    for (std::size_t i = 0; i < added.size(); ++i) {
      EXPECT_EQ(bk.applied[i], added[i]);
    }
  }
  EXPECT_GE(buffer_.stats().retransmit_timeouts, 1u);
  // The go-back-N resend rewound to the encoder's checkpoint (acked+1 = 1),
  // but backup 2 had never bound to the stream, so it answered with a
  // codec-reset nack and the second resend opened a fresh generation.
  EXPECT_GE(buffer_.encoder_stats(2)->rewinds, 1u);
  EXPECT_GE(buffer_.encoder_stats(2)->resets, 2u);
  EXPECT_EQ(buffer_.encoder_stats(3)->resets, 1u);
}

TEST_F(CompressedCommBufferTest, MidStreamLossHealsViaGapRequest) {
  std::vector<EventRecord> added;
  sim::Duration t = 0;
  auto wave = [&](int lo, int hi) {
    for (int n = lo; n <= hi; ++n) {
      added.push_back(Add(Rec(n, "k", "v" + std::to_string(n))));
    }
    t += 2 * options_.flush_delay;
    RunTo(t);
  };
  wave(1, 3);
  backups_[2].drop_next = 1;  // backup 2 loses the ts 4..6 batch
  wave(4, 6);
  wave(7, 9);  // arrives out of sequence at backup 2 -> gap nack -> resend
  RunTo(t + 4 * options_.flush_delay);

  EXPECT_GE(backups_[2].gap_nacks, 1u);
  EXPECT_GE(buffer_.stats().gap_requests, 1u);
  for (auto& [mid, bk] : backups_) {
    EXPECT_EQ(bk.decode_failures, 0u);
    ASSERT_EQ(bk.applied.size(), added.size()) << "backup " << mid;
    for (std::size_t i = 0; i < added.size(); ++i) {
      EXPECT_EQ(bk.applied[i], added[i]);
    }
  }
  // The gap resend re-synced backup 2's stream in one round trip — by
  // REWINDING the encoder to its checkpoint at the acked watermark, not by
  // resetting: the dictionary built over ts 1..3 survived (§8.3). Neither
  // stream ever reset beyond the view-start generation.
  EXPECT_GE(buffer_.encoder_stats(2)->rewinds, 1u);
  EXPECT_EQ(buffer_.encoder_stats(2)->resets, 1u);
  EXPECT_EQ(buffer_.encoder_stats(3)->resets, 1u);
  // Go-back-N never had to fire: the nack healed it first.
  EXPECT_EQ(buffer_.stats().retransmit_timeouts, 0u);
}

}  // namespace
}  // namespace vsr::vr
