// E14 — the host seam (DESIGN.md §12) made measurable: the same protocol
// stack every deterministic experiment runs, executed on real threads, TCP
// loopback sockets, and wall-clock timers.
//
// The paper's performance arguments (§3.7: calls run at the primary;
// commits need one force round, stable storage off the critical path) are
// regenerated in virtual time by E1/E2. E14 checks that nothing about them
// depended on the simulator: a 3-replica bank group plus a single-member
// client coordinator commits real distributed transactions end-to-end, and
// we report wall-clock latency percentiles and throughput.
//
// Unlike E1..E13 this bench is nondeterministic (kernel scheduling, TCP
// timing); the JSON records measurements, not claims to diff against.
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "bench/bench_common.h"
#include "host/loopback.h"
#include "workload/bank.h"

namespace vsr {
namespace {

double Pct(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[static_cast<std::size_t>(p * (v.size() - 1))];
}

}  // namespace
}  // namespace vsr

int main() {
  using namespace vsr;
  bench::PrintHeader(
      "E14: wall-clock latency/throughput on the real host (DESIGN.md §12)",
      "the untouched protocol stack commits real transactions over TCP "
      "loopback; remote calls and commit forces behave as in §3.7 without "
      "the simulator underneath");

  const int kAccounts = 8;
  const int kSeqTxns = bench::Scaled(1000);
  const int kPipeTxns = bench::Scaled(2000);
  const int kWindow = 16;

  host::LoopbackCluster cluster;
  const vr::GroupId bank = cluster.AddGroup("bank", 3);
  const vr::GroupId client = cluster.AddGroup("client", 1);
  for (core::Cohort* c : cluster.Cohorts(bank)) {
    workload::RegisterBankProcs(*c);
  }
  cluster.Start();
  if (!cluster.WaitUntilStable(bank) || !cluster.WaitUntilStable(client)) {
    bench::Row("  failed to form views");
    return 1;
  }
  for (int a = 0; a < kAccounts; ++a) {
    const std::string acct = "a" + std::to_string(a);
    cluster.RunTransaction(
        client, [bank, acct](core::TxnHandle& h) -> host::Task<bool> {
          co_await h.Call(bank, "open", acct + "=1000000");
          co_return true;
        });
  }

  // -- Phase 1: closed-loop latency (one txn in flight) ------------------
  std::vector<double> lat_us;
  lat_us.reserve(static_cast<std::size_t>(kSeqTxns));
  const auto seq_start = std::chrono::steady_clock::now();
  int committed = 0;
  for (int t = 0; t < kSeqTxns; ++t) {
    const std::string acct = "a" + std::to_string(t % kAccounts);
    const auto t0 = std::chrono::steady_clock::now();
    auto outcome =
        cluster.RunTransaction(client, workload::MakeDepositTxn(bank, acct, 1));
    const auto t1 = std::chrono::steady_clock::now();
    if (outcome && *outcome == core::TxnOutcome::kCommitted) {
      ++committed;
      lat_us.push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
  }
  const double seq_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - seq_start)
                           .count();

  bench::Row("  sequential  | %5d/%d committed | p50 %6.0fus p90 %6.0fus "
             "p99 %6.0fus | %6.0f txn/s",
             committed, kSeqTxns, Pct(lat_us, 0.50), Pct(lat_us, 0.90),
             Pct(lat_us, 0.99), committed / seq_s);
  bench::Metric("seq_committed", committed);
  bench::Metric("seq_p50_us", Pct(lat_us, 0.50));
  bench::Metric("seq_p90_us", Pct(lat_us, 0.90));
  bench::Metric("seq_p99_us", Pct(lat_us, 0.99));
  bench::Metric("seq_txn_per_s", committed / seq_s);

  // -- Phase 2: pipelined throughput (kWindow txns in flight) ------------
  const auto client_primary = cluster.PrimaryIndex(client);
  if (!client_primary) {
    bench::Row("  pipelined   | client primary vanished");
    return 1;
  }
  std::mutex mu;
  std::condition_variable cv;
  int in_flight = 0, pipe_done = 0, pipe_committed = 0;
  const auto pipe_start = std::chrono::steady_clock::now();
  for (int t = 0; t < kPipeTxns; ++t) {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return in_flight < kWindow; });
      ++in_flight;
    }
    const std::string acct = "a" + std::to_string(t % kAccounts);
    cluster.SpawnTransactionOn(*client_primary,
                               workload::MakeDepositTxn(bank, acct, 1),
                               [&](core::TxnOutcome o) {
                                 std::lock_guard<std::mutex> lock(mu);
                                 --in_flight;
                                 ++pipe_done;
                                 if (o == core::TxnOutcome::kCommitted) {
                                   ++pipe_committed;
                                 }
                                 cv.notify_all();
                               });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return pipe_done == kPipeTxns; });
  }
  const double pipe_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - pipe_start)
                            .count();

  bench::Row("  pipelined   | %5d/%d committed | window %d | %6.0f txn/s",
             pipe_committed, kPipeTxns, kWindow, pipe_committed / pipe_s);
  bench::Metric("pipe_window", kWindow);
  bench::Metric("pipe_committed", pipe_committed);
  bench::Metric("pipe_txn_per_s", pipe_committed / pipe_s);

  cluster.Shutdown();
  return 0;
}
