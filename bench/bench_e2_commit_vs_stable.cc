// E2 — §3.7: "For both preparing and committing, our method will be faster
// than using non-replicated clients and servers if communication is faster
// than writing to stable storage, which is often the case provided that the
// number of backups is small."  Also: "We expect that prepare messages are
// usually processed entirely at the primary because the needed
// 'completed-call' event records ... will already be stored at a
// sub-majority of cohorts."
//
// Measured: the commit-decision latency (prepare + committing-record force)
// of a VR transaction versus the equivalent non-replicated transaction, as
// the stable-storage force latency sweeps from paper-era disk (10ms) down to
// NVRAM (10us), and the fraction of forces satisfied with no waiting.
#include "baseline/nonreplicated.h"
#include "baseline/nonreplicated_viewstamped.h"
#include "bench/bench_common.h"
#include "client/shard_router.h"
#include "workload/sharded_bank.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;

double VrDecisionLatency(std::size_t replicas, sim::Duration think_time,
                         std::uint64_t* immediate_pct) {
  ClusterOptions opts;
  opts.seed = 2000 + replicas + think_time;
  Cluster cluster(opts);
  auto server = cluster.AddGroup("kv", replicas);
  auto client_g = cluster.AddGroup("client", 3);
  test::RegisterKvProcs(cluster, server);
  cluster.Start();
  if (!cluster.RunUntilStable()) return -1;
  auto phases =
      bench::MeasureTxnPhases(cluster, client_g, server, 150, think_time);
  if (immediate_pct != nullptr) {
    std::uint64_t forces = 0, immediate = 0;
    for (auto* c : cluster.Cohorts(server)) {
      forces += c->buffer().stats().forces;
      immediate += c->buffer().stats().forces_immediate;
    }
    for (auto* c : cluster.Cohorts(client_g)) {
      forces += c->buffer().stats().forces;
      immediate += c->buffer().stats().forces_immediate;
    }
    *immediate_pct = forces == 0 ? 0 : 100 * immediate / forces;
  }
  return phases.decision.Mean();
}

// §5's own proposal: viewstamped non-replicated server (write-behind log,
// prepare forces only the unwritten suffix).
double ViewstampedStableDecisionLatency(sim::Duration force_latency,
                                        sim::Duration think,
                                        std::uint64_t* immediate_pct) {
  sim::Simulation simulation(2998);
  net::Network network(simulation, {});
  storage::StableStoreOptions sopts;
  sopts.force_latency = force_latency;
  storage::StableStore stable(simulation, sopts);
  baseline::ViewstampedStableServer server(simulation, network, 50, stable);
  baseline::StableClient client(simulation, network, 51, 50);
  workload::LatencyRecorder decision;
  for (int i = 0; i < 150; ++i) {
    bool done = false;
    client.RunTxn(
        1,
        [&](baseline::StableClient::TxnTiming t) {
          done = true;
          if (t.ok) decision.Add(t.prepare_latency + t.commit_latency);
        },
        think);  // user computation before prepare: the log drains behind it
    simulation.scheduler().RunToQuiescence();
    if (!done) break;
  }
  if (immediate_pct != nullptr) {
    const auto& s = server.stats();
    const std::uint64_t total = s.prepares_immediate + s.prepares_waited;
    *immediate_pct = total == 0 ? 0 : 100 * s.prepares_immediate / total;
  }
  return decision.Mean();
}

// Windowed-replication efficiency in a 5-cohort steady state: how many
// record transmissions the backups cost per committed transaction, and how
// many of those were retransmissions (deadline expiry or gap fill) rather
// than first sends.
void ReplicationEfficiency(std::size_t replicas) {
  ClusterOptions opts;
  opts.seed = 2100 + replicas;
  Cluster cluster(opts);
  auto server = cluster.AddGroup("kv", replicas);
  auto client_g = cluster.AddGroup("client", 3);
  test::RegisterKvProcs(cluster, server);
  cluster.Start();
  if (!cluster.RunUntilStable()) return;
  std::uint64_t committed = 0;
  for (int i = 0; i < 200; ++i) {
    if (test::RunOneCall(cluster, client_g, server, "add", "x=1") ==
        vr::TxnOutcome::kCommitted) {
      ++committed;
    }
  }
  cluster.RunFor(1 * sim::kSecond);
  vr::CommBuffer::Stats agg;
  std::uint64_t commits_applied = 0;
  for (auto* c : cluster.Cohorts(server)) {
    const auto& s = c->buffer().stats();
    agg.records_sent += s.records_sent;
    agg.records_retransmitted += s.records_retransmitted;
    agg.retransmit_timeouts += s.retransmit_timeouts;
    agg.gap_requests += s.gap_requests;
    agg.window_stalls += s.window_stalls;
    agg.records_gced += s.records_gced;
    agg.buffer_high_water = std::max(agg.buffer_high_water, s.buffer_high_water);
    commits_applied += c->stats().commits_applied;
  }
  if (committed == 0) return;
  bench::Row("    committed txns             : %8llu (%llu applied server-side)",
             static_cast<unsigned long long>(committed),
             static_cast<unsigned long long>(commits_applied));
  bench::Row("    records sent to backups    : %8llu (%.2f per committed txn)",
             static_cast<unsigned long long>(agg.records_sent),
             static_cast<double>(agg.records_sent) / committed);
  bench::Row("    records retransmitted      : %8llu (%.2f per committed txn)",
             static_cast<unsigned long long>(agg.records_retransmitted),
             static_cast<double>(agg.records_retransmitted) / committed);
  bench::Row("    retransmit deadline expiry : %8llu", static_cast<unsigned long long>(agg.retransmit_timeouts));
  bench::Row("    gap requests honored       : %8llu", static_cast<unsigned long long>(agg.gap_requests));
  bench::Row("    window stalls              : %8llu", static_cast<unsigned long long>(agg.window_stalls));
  bench::Row("    records GC'd below watermark %7llu (buffer high-water %llu)",
             static_cast<unsigned long long>(agg.records_gced),
             static_cast<unsigned long long>(agg.buffer_high_water));
}

// Commit-fusion ablation (DESIGN.md §13): identical cross-shard transfer
// workloads with commit_fusion on and off. The fused path reports the
// decision at committing-buffer time and overlaps the decision force with
// the commit fan-out, so the client-visible path contains one fewer force
// and one fewer sequential round; total message count stays ~equal (the
// same frames are sent, just off the latency path).
struct FusionResult {
  double decision_us = -1;
  double frames_per_commit = 0;
  double client_path_forces_per_commit = 0;
  std::uint64_t committed = 0;
};

FusionResult FusionAblation(bool fusion) {
  FusionResult out;
  ClusterOptions opts;
  opts.seed = 2200;  // identical worlds; only the fusion flag differs
  opts.cohort.commit_fusion = fusion;
  Cluster cluster(opts);
  auto bank = workload::SetupShardedBank(cluster, 2, 3, 12);
  cluster.Start();
  if (!cluster.RunUntilStable()) return out;
  if (workload::FundShardedAccounts(cluster, bank, 1000) != 12) return out;
  cluster.RunFor(1 * sim::kSecond);

  // Snapshot after funding so the single-shard funding txns don't pollute
  // the per-commit arithmetic.
  const std::uint64_t frames_before = cluster.network().stats().frames_sent;
  std::uint64_t coord_committed_before = 0, fused_before = 0;
  for (auto* c : cluster.Cohorts(bank.client_group)) {
    coord_committed_before += c->stats().txns_committed;
    fused_before += c->stats().fused_commits;
  }

  client::ShardRouter router(cluster.directory());
  sim::Rng rng(5);
  const int txns = bench::Scaled(150);
  workload::LatencyRecorder decision;
  for (int i = 0; i < txns; ++i) {
    core::Cohort* coord = cluster.AnyPrimary(bank.client_group);
    if (coord == nullptr) break;
    const int from = static_cast<int>(rng.Index(6));
    const int to = 6 + static_cast<int>(rng.Index(6));
    bool done = false;
    const sim::Time start = cluster.sim().Now();
    coord->SpawnTransaction(
        workload::MakeShardedTransferTxn(
            router, workload::ShardAccountName(from),
            workload::ShardAccountName(to), 1),
        [&](vr::TxnOutcome o) {
          done = true;
          if (o == vr::TxnOutcome::kCommitted) {
            ++out.committed;
            decision.Add(cluster.sim().Now() - start);
          }
        });
    const sim::Time deadline = cluster.sim().Now() + 10 * sim::kSecond;
    while (!done && cluster.sim().Now() < deadline) {
      cluster.RunFor(1 * sim::kMillisecond);
    }
  }
  cluster.RunFor(2 * sim::kSecond);  // let background fan-outs finish

  if (out.committed == 0) return out;
  out.decision_us = decision.Mean();
  out.frames_per_commit =
      static_cast<double>(cluster.network().stats().frames_sent -
                          frames_before) /
      static_cast<double>(out.committed);
  std::uint64_t coord_committed = 0, fused = 0;
  for (auto* c : cluster.Cohorts(bank.client_group)) {
    coord_committed += c->stats().txns_committed;
    fused += c->stats().fused_commits;
  }
  // A commit whose decision was NOT fused awaited the committing-record
  // force inside the client-visible path.
  out.client_path_forces_per_commit =
      static_cast<double>((coord_committed - coord_committed_before) -
                          (fused - fused_before)) /
      static_cast<double>(out.committed);
  return out;
}

double StableDecisionLatency(sim::Duration force_latency) {
  sim::Simulation simulation(2999);
  net::Network network(simulation, {});
  storage::StableStoreOptions sopts;
  sopts.force_latency = force_latency;
  storage::StableStore stable(simulation, sopts);
  baseline::StableServer server(simulation, network, 50, stable);
  baseline::StableClient client(simulation, network, 51, 50);
  workload::LatencyRecorder decision;
  for (int i = 0; i < 150; ++i) {
    bool done = false;
    client.RunTxn(1, [&](baseline::StableClient::TxnTiming t) {
      done = true;
      if (t.ok) decision.Add(t.prepare_latency + t.commit_latency);
    });
    simulation.scheduler().RunToQuiescence();
    if (!done) break;
  }
  return decision.Mean();
}

}  // namespace
}  // namespace vsr

int main() {
  using namespace vsr;
  bench::PrintHeader(
      "E2: prepare+commit latency — force-to-backups vs stable storage (§3.7)",
      "VR beats a conventional system whenever communication is faster than "
      "a stable-storage write; prepares usually wait on nothing");

  std::uint64_t immediate = 0;
  const double vr3 = VrDecisionLatency(3, 0, &immediate);
  std::uint64_t immediate_think = 0;
  const double vr3_think =
      VrDecisionLatency(3, 5 * sim::kMillisecond, &immediate_think);
  const double vr5 = VrDecisionLatency(5, 0, nullptr);
  const double vr7 = VrDecisionLatency(7, 0, nullptr);
  bench::Row("  VR (n=3)  decision latency: %8.0fus   (forces immediate: %llu%%)",
             vr3, static_cast<unsigned long long>(immediate));
  bench::Row("  VR (n=3, 5ms think time) :  %8.0fus   (forces immediate: %llu%%)",
             vr3_think, static_cast<unsigned long long>(immediate_think));
  bench::Row("  VR (n=5)  decision latency: %8.0fus", vr5);
  bench::Row("  VR (n=7)  decision latency: %8.0fus", vr7);

  bench::Row("\n  Windowed replication efficiency (n=5 steady state):");
  ReplicationEfficiency(5);

  bench::Row("\n  Non-replicated decision latency vs stable-storage force time:");
  struct SweepPoint {
    const char* label;
    sim::Duration force;
  };
  const SweepPoint sweep[] = {
      {"1988 disk        (25ms)", 25 * sim::kMillisecond},
      {"disk             (10ms)", 10 * sim::kMillisecond},
      {"fast disk         (3ms)", 3 * sim::kMillisecond},
      {"battery RAM     (300us)", 300 * sim::kMicrosecond},
      {"SSD             (100us)", 100 * sim::kMicrosecond},
      {"NVRAM            (10us)", 10 * sim::kMicrosecond},
  };
  for (const auto& p : sweep) {
    const double lat = StableDecisionLatency(p.force);
    const char* winner = lat > vr3 ? "VR wins" : "stable storage wins";
    bench::Row("    %-26s : %8.0fus   -> %s (vs VR n=3 %0.0fus)", p.label,
               lat, winner, vr3);
  }

  bench::Row("\n  The paper's §5 proposal for NON-replicated systems — write call");
  bench::Row("  records to stable storage in background, force only at prepare:");
  {
    std::uint64_t imm = 0;
    const double vs_disk = ViewstampedStableDecisionLatency(
        10 * sim::kMillisecond, 20 * sim::kMillisecond, &imm);
    const double plain_disk = StableDecisionLatency(10 * sim::kMillisecond);
    bench::Row("    disk (10ms), viewstamped : %8.0fus (prepares immediate: %llu%%)",
               vs_disk, static_cast<unsigned long long>(imm));
    bench::Row("    disk (10ms), conventional: %8.0fus  ->  %.1fx faster at",
               plain_disk, vs_disk > 0 ? plain_disk / vs_disk : 0.0);
    bench::Row("    prepare+commit, exactly the paper's 'faster at prepare time'");
  }

  bench::Row("\n  Commit fusion ablation (DESIGN.md §13) — cross-shard transfers,");
  bench::Row("  2 shards x 3 replicas, identical worlds, fused vs serial 2PC:");
  {
    const FusionResult fused = FusionAblation(true);
    const FusionResult serial = FusionAblation(false);
    bench::Row("    fused  : decision %8.0fus  %.1f frames/commit  %.2f client-path forces/commit (%llu txns)",
               fused.decision_us, fused.frames_per_commit,
               fused.client_path_forces_per_commit,
               static_cast<unsigned long long>(fused.committed));
    bench::Row("    serial : decision %8.0fus  %.1f frames/commit  %.2f client-path forces/commit (%llu txns)",
               serial.decision_us, serial.frames_per_commit,
               serial.client_path_forces_per_commit,
               static_cast<unsigned long long>(serial.committed));
    if (fused.decision_us > 0 && serial.decision_us > 0) {
      bench::Row("    -> fusion removes %.0fus (%.1f%%) from the client-visible",
                 serial.decision_us - fused.decision_us,
                 100.0 * (serial.decision_us - fused.decision_us) /
                     serial.decision_us);
      bench::Row("    decision path: the committing force and the commit fan-out");
      bench::Row("    ride behind the reply instead of ahead of it.");
    }
    bench::Metric("fused_decision_us", fused.decision_us);
    bench::Metric("serial_decision_us", serial.decision_us);
    bench::Metric("fused_frames_per_commit", fused.frames_per_commit);
    bench::Metric("serial_frames_per_commit", serial.frames_per_commit);
    bench::Metric("fused_client_path_forces_per_commit",
                  fused.client_path_forces_per_commit);
    bench::Metric("serial_client_path_forces_per_commit",
                  serial.client_path_forces_per_commit);
    bench::Metric("fusion_committed", static_cast<double>(fused.committed));
    bench::Metric("serial_committed", static_cast<double>(serial.committed));
  }

  bench::Row("\n  Expect: VR's decision latency is a couple of network round");
  bench::Row("  trips; the conventional system pays 2 forced writes. The");
  bench::Row("  crossover falls where a force ~= a round trip (sub-ms).");
  bench::Row("  Note: each transaction issues ~3 forces (participant prepare,");
  bench::Row("  coordinator committing, participant committed). Only the");
  bench::Row("  prepare force can be pre-satisfied by background flushing —");
  bench::Row("  33%% immediate with think time means ~all prepare forces");
  bench::Row("  waited on nothing, exactly the paper's claim.");
  return 0;
}
