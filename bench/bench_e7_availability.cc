// E7 — §1/§2: availability is the paper's raison d'être: "By having more
// than one copy of important information, the service continues to be usable
// even when some copies are inaccessible."  A module group masks failures as
// long as a majority of the configuration can communicate; a single copy is
// down whenever its node is down; a Tandem-style co-located pair (§5) is
// hostage to correlated faults.
//
// Measured: fraction of time the group has an active primary (able to serve
// and commit) under random crash/recover schedules, for replication factors
// 1/3/5, swept over MTTF; compared against the analytic k-of-n model and
// the Tandem pair model.
#include "baseline/models.h"
#include "bench/bench_common.h"
#include <memory>
#include <set>

#include "workload/failures.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;

double MeasureAvailability(std::uint64_t seed, std::size_t replicas,
                           double mttf_s, double mttr_s,
                           sim::Duration horizon) {
  // A single copy has no peers to be partitioned from: its failure IS node
  // downtime. Measure its availability directly from the failure schedule
  // (the conventional non-replicated-server semantics).
  if (replicas == 1) {
    sim::Rng rng1(seed * 31 + 7);
    auto sched1 =
        workload::RandomCrashSchedule(rng1, 1, 1, horizon, mttf_s, mttr_s);
    sim::Duration down = 0;
    sim::Time down_since = 0;
    bool up = true;
    for (const auto& e : sched1) {
      if (e.kind == workload::FailureEvent::Kind::kCrash && up) {
        up = false;
        down_since = e.at;
      } else if (e.kind == workload::FailureEvent::Kind::kRecover && !up) {
        up = true;
        down += e.at - down_since;
      }
    }
    if (!up) down += horizon - down_since;
    return 1.0 - static_cast<double>(down) / static_cast<double>(horizon);
  }

  ClusterOptions opts;
  opts.seed = seed;
  Cluster cluster(opts);
  auto g = cluster.AddGroup("kv", replicas);
  cluster.Start();
  if (!cluster.RunUntilStable()) return 0;

  // Failures are modelled as node ISOLATION (network partition) rather than
  // crashes: state survives, which isolates the paper's availability claim
  // (service up iff a majority communicates) from §4.2's volatile-state
  // catastrophes, which bench E9 measures separately.
  sim::Rng rng(seed * 31 + 7);
  auto schedule = workload::RandomCrashSchedule(
      rng, g, replicas, cluster.sim().Now() + horizon, mttf_s, mttr_s);
  auto cohorts = cluster.Cohorts(g);
  auto isolated = std::make_shared<std::set<std::size_t>>();
  auto apply_partition = [&cluster, cohorts, isolated] {
    std::vector<std::vector<net::NodeId>> sides;
    std::vector<net::NodeId> connected;
    for (std::size_t i = 0; i < cohorts.size(); ++i) {
      if (isolated->count(i) != 0) {
        sides.push_back({cohorts[i]->mid()});
      } else {
        connected.push_back(cohorts[i]->mid());
      }
    }
    if (sides.empty()) {
      cluster.network().Heal();
      return;
    }
    sides.push_back(connected);
    cluster.network().Partition(sides);
  };
  for (const auto& e : schedule) {
    const std::size_t idx = e.index;
    const bool isolate = e.kind == workload::FailureEvent::Kind::kCrash;
    cluster.sim().scheduler().At(
        cluster.sim().Now() + e.at, [isolate, idx, isolated, apply_partition] {
          if (isolate) {
            isolated->insert(idx);
          } else {
            isolated->erase(idx);
          }
          apply_partition();
        });
  }

  const sim::Duration sample_every = 20 * sim::kMillisecond;
  std::uint64_t samples = 0, available = 0;
  const sim::Time end = cluster.sim().Now() + horizon;
  while (cluster.sim().Now() < end) {
    cluster.RunFor(sample_every);
    ++samples;
    // Available = an active primary exists AND a majority of cohorts are
    // active in its view (so forces — hence commits — can complete).
    core::Cohort* primary = cluster.AnyPrimary(g);
    if (primary == nullptr) continue;
    std::size_t in_view = 0;
    for (auto* c : cluster.Cohorts(g)) {
      if (c->status() == core::Status::kActive &&
          c->cur_viewid() == primary->cur_viewid()) {
        ++in_view;
      }
    }
    if (in_view >= vr::MajorityOf(replicas)) ++available;
  }
  return samples == 0 ? 0 : static_cast<double>(available) / samples;
}

}  // namespace
}  // namespace vsr

int main() {
  using namespace vsr;
  bench::PrintHeader(
      "E7: availability under crashes (§1, §2; Tandem comparison §5)",
      "a VR group is available while a majority communicates; replication "
      "masks failures a single copy cannot");
  bench::Row("  failures = node isolation (partitions); state survives, so this");
  bench::Row("  isolates the majority-communication claim from E9's catastrophes");

  const double mttr = 2.0;  // seconds to recover
  const sim::Duration horizon = 300 * sim::kSecond;
  bench::Row("  MTTR = %.0fs, horizon = %s; availability = fraction of time a",
             mttr, sim::FormatDuration(horizon).c_str());
  bench::Row("  commit-capable primary exists (includes view-change downtime)");
  bench::Row("");
  bench::Row("  %-12s | n=1 meas (model) | n=3 meas (model) | n=5 meas (model) | tandem pair model (10%% corr)",
             "MTTF");
  for (double mttf : {10.0, 30.0, 100.0}) {
    const double a_replica = mttf / (mttf + mttr);
    const double m1 = MeasureAvailability(7100, 1, mttf, mttr, horizon);
    const double m3 = MeasureAvailability(7200, 3, mttf, mttr, horizon);
    const double m5 = MeasureAvailability(7300, 5, mttf, mttr, horizon);
    bench::Row("  %6.0fs      | %6.2f%% (%5.2f%%) | %6.2f%% (%5.2f%%) | %6.2f%% (%5.2f%%) | %5.2f%%",
               mttf, 100 * m1, 100 * a_replica, 100 * m3,
               100 * baseline::VrAvailability(3, a_replica), 100 * m5,
               100 * baseline::VrAvailability(5, a_replica),
               100 * baseline::TandemPairAvailability(a_replica, 0.10));
  }

  bench::Row("\n  Expect: measured availability tracks the k-of-n model minus");
  bench::Row("  view-change downtime (the model assumes instant failover).");
  bench::Row("  n=3 dominates a single copy. Note n=5 can measure BELOW n=3");
  bench::Row("  under frequent failures: every membership event triggers a");
  bench::Row("  view change, and 5 cohorts fail ~1.7x as often as 3 — the");
  bench::Row("  churn cost the paper's 'three or five cohorts' sizing (§2)");
  bench::Row("  implicitly balances. The co-located Tandem pair is capped by");
  bench::Row("  its correlated-failure exposure.");
  return 0;
}
