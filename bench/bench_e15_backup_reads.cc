// E15 — consistent reads at backups via viewstamp leases (DESIGN.md §14).
//
// The paper funnels every operation through the primary; backups are pure
// redundancy. The lease extension lets each backup answer single-object
// committed reads while it holds a viewstamp lease from the current
// primary, so a read-heavy workload's throughput scales with the replica
// count instead of saturating one CPU.
//
// Measured: identical-seed worlds (a read-mostly catalog: closed-loop
// readers + closed-loop version-bump writers, primary CPU-bound via
// call_service_time), with backup_reads off (every read bounces to the
// primary) and on (lease-holding backups serve). Reported: aggregate read
// throughput multiplier (must be >= 2x at 3 replicas in full mode), the
// write-latency cost, and a serializability audit — every reader checks
// that per-item versions never run backwards across servers, which is
// exactly the monotone-session guarantee the lease admission rule promises.
#include "bench/bench_common.h"
#include "client/read_client.h"
#include "workload/catalog.h"
#include "workload/stats.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;

constexpr int kItems = 48;
constexpr int kReaders = 12;

struct WorldResult {
  std::uint64_t reads = 0;
  std::uint64_t violations = 0;  // per-reader per-item version regressions
  std::uint64_t bounces = 0;
  std::uint64_t read_timeouts = 0;
  std::uint64_t backup_reads_served = 0;
  std::uint64_t reads_served_total = 0;
  std::uint64_t leases_granted = 0;
  std::uint64_t writes = 0;
  double write_latency_us = -1;
  double read_rate_per_s = 0;
  bool ok = false;
};

struct ReaderState {
  std::uint64_t reads = 0;
  std::uint64_t violations = 0;
  std::map<std::string, long long> last_version;
};

long long ParseVersion(const std::string& v) {
  if (v.size() < 2 || v[0] != 'v') return 0;
  return std::stoll(v.substr(1));
}

WorldResult RunWorld(bool backup_reads) {
  WorldResult out;
  ClusterOptions opts;
  opts.seed = 1500;  // identical worlds; only the lease flag differs
  opts.cohort.backup_reads = backup_reads;
  // The primary must be CPU-bound for read scale-out to have anything to
  // show: every call and every served read charges this much serial CPU
  // (well above the ~600us network round trip, so the serial resource —
  // not the wire — is the bottleneck the leases relieve).
  opts.cohort.call_service_time = 300 * sim::kMicrosecond;
  Cluster cluster(opts);
  auto catalog = cluster.AddGroup("catalog", 3);
  auto client_g = cluster.AddGroup("client", 3);
  workload::RegisterCatalogProcs(cluster, catalog);
  cluster.Start();
  if (!cluster.RunUntilStable()) return out;

  // Seed the catalog (single-shot writes through the coordinator).
  for (int i = 0; i < kItems; ++i) {
    core::Cohort* coord = cluster.AnyPrimary(client_g);
    if (coord == nullptr) return out;
    bool done = false, committed = false;
    coord->SpawnTransaction(
        workload::MakeCatalogPutTxn(catalog, workload::CatalogKey(i), "v1"),
        [&](vr::TxnOutcome o) {
          done = true;
          committed = o == vr::TxnOutcome::kCommitted;
        });
    const sim::Time deadline = cluster.sim().Now() + 5 * sim::kSecond;
    while (!done && cluster.sim().Now() < deadline) {
      cluster.RunFor(1 * sim::kMillisecond);
    }
    if (!committed) return out;
  }
  cluster.RunFor(200 * sim::kMillisecond);  // let seeding acks drain

  sim::Scheduler& sched = cluster.sim().scheduler();
  sim::TaskRegistry tasks(sched);
  bool stop = false;

  // Closed-loop readers, one ReadClient each (distinct session horizons).
  std::vector<std::unique_ptr<client::ReadClient>> read_clients;
  std::vector<ReaderState> readers(kReaders);
  for (int i = 0; i < kReaders; ++i) {
    read_clients.push_back(std::make_unique<client::ReadClient>(
        cluster.sim(), cluster.network(), cluster.directory(),
        cluster.AllocateMid(), opts.cohort));
  }
  auto reader_loop = [&](client::ReadClient* rc, ReaderState* st,
                         std::uint64_t seed) -> sim::Task<void> {
    sim::Rng rng(seed);
    while (!stop) {
      const std::string item =
          workload::CatalogKey(static_cast<int>(rng.Index(kItems)));
      auto v = co_await rc->Read(catalog, item);
      if (!v) continue;
      ++st->reads;
      const long long version = ParseVersion(*v);
      long long& last = st->last_version[item];
      // A session must never observe an item's version running backwards —
      // whichever replica answered, and across view changes.
      if (version < last) ++st->violations;
      last = std::max(last, version);
    }
  };
  for (int i = 0; i < kReaders; ++i) {
    tasks.Spawn(reader_loop(read_clients[i].get(), &readers[i], 9000 + i));
  }

  // Closed-loop writer: version bumps keep the replication (and therefore
  // lease-renewal) traffic flowing and give the audit something to catch.
  workload::LatencyRecorder write_latency;
  auto writer_loop = [&]() -> sim::Task<void> {
    sim::Rng rng(77);
    while (!stop) {
      core::Cohort* coord = cluster.AnyPrimary(client_g);
      if (coord == nullptr) {
        co_await sim::Sleep(sched, 1 * sim::kMillisecond);
        continue;
      }
      bool done = false;
      const sim::Time start = cluster.sim().Now();
      coord->SpawnTransaction(
          workload::MakeCatalogBumpTxn(
              catalog,
              workload::CatalogKey(static_cast<int>(rng.Index(kItems)))),
          [&](vr::TxnOutcome o) {
            done = true;
            if (o == vr::TxnOutcome::kCommitted) {
              ++out.writes;
              write_latency.Add(cluster.sim().Now() - start);
            }
          });
      while (!done) co_await sim::Sleep(sched, 100 * sim::kMicrosecond);
    }
  };
  tasks.Spawn(writer_loop());

  const sim::Duration window =
      static_cast<sim::Duration>(bench::Scaled(3000)) * sim::kMillisecond;
  const sim::Time t0 = cluster.sim().Now();
  cluster.RunFor(window);
  stop = true;
  cluster.RunFor(100 * sim::kMillisecond);  // drain in-flight loops
  const double secs =
      static_cast<double>(cluster.sim().Now() - t0) / sim::kSecond;

  for (const ReaderState& st : readers) {
    out.reads += st.reads;
    out.violations += st.violations;
  }
  for (const auto& rc : read_clients) {
    out.bounces += rc->stats().bounces;
    out.read_timeouts += rc->stats().read_timeouts;
  }
  for (auto* c : cluster.Cohorts(catalog)) {
    out.backup_reads_served += c->stats().backup_reads_served;
    out.reads_served_total += c->stats().reads_served;
    out.leases_granted += c->buffer().stats().leases_granted;
  }
  out.write_latency_us = write_latency.Mean();
  out.read_rate_per_s = secs > 0 ? static_cast<double>(out.reads) / secs : 0;
  out.ok = true;
  return out;
}

}  // namespace
}  // namespace vsr

int main() {
  using namespace vsr;
  bench::PrintHeader(
      "E15: read scale-out via viewstamp leases at backups (DESIGN.md §14)",
      "lease-holding backups serve consistent committed reads, so read "
      "throughput scales with replicas instead of saturating the primary");

  const WorldResult off = RunWorld(false);
  const WorldResult on = RunWorld(true);
  if (!off.ok || !on.ok) {
    bench::Row("  world failed to stabilize/seed — no result");
    return 1;
  }

  bench::Row("  3 replicas, %d items, %d closed-loop readers + 1 writer,", kItems,
             kReaders);
  bench::Row("  primary CPU-bound (300us/call); identical seeds, lease flag only:");
  bench::Row("    backup_reads=off : %8.0f reads/s  (%llu reads, %llu bounces, %llu timeouts)",
             off.read_rate_per_s, static_cast<unsigned long long>(off.reads),
             static_cast<unsigned long long>(off.bounces),
             static_cast<unsigned long long>(off.read_timeouts));
  bench::Row("    backup_reads=on  : %8.0f reads/s  (%llu reads, %llu served at backups, %llu leases granted)",
             on.read_rate_per_s, static_cast<unsigned long long>(on.reads),
             static_cast<unsigned long long>(on.backup_reads_served),
             static_cast<unsigned long long>(on.leases_granted));
  const double multiplier =
      off.read_rate_per_s > 0 ? on.read_rate_per_s / off.read_rate_per_s : 0;
  bench::Row("    -> aggregate read throughput multiplier: %.2fx", multiplier);
  bench::Row("    lease grants ride the existing ack frames: no extra");
  bench::Row("    write-path round trips, so writes get cheaper too when the");
  bench::Row("    reads leave the primary's CPU.");
  bench::Row("    writes committed: off %llu, on %llu; write latency off %0.0fus on %0.0fus",
             static_cast<unsigned long long>(off.writes),
             static_cast<unsigned long long>(on.writes), off.write_latency_us,
             on.write_latency_us);
  const std::uint64_t violations = off.violations + on.violations;
  bench::Row("    serializability audit: %llu version regressions observed",
             static_cast<unsigned long long>(violations));

  bench::Metric("reads_per_s_off", off.read_rate_per_s);
  bench::Metric("reads_per_s_on", on.read_rate_per_s);
  bench::Metric("read_throughput_multiplier", multiplier);
  bench::Metric("backup_reads_served", static_cast<double>(on.backup_reads_served));
  bench::Metric("leases_granted", static_cast<double>(on.leases_granted));
  bench::Metric("bounces_on", static_cast<double>(on.bounces));
  bench::Metric("write_latency_off_us", off.write_latency_us);
  bench::Metric("write_latency_on_us", on.write_latency_us);
  bench::Metric("serializability_violations", static_cast<double>(violations));

  if (violations != 0) {
    bench::Row("  FAIL: serializability audit found version regressions");
    return 1;
  }
  if (!bench::SmokeMode() && multiplier < 2.0) {
    bench::Row("  FAIL: expected >= 2x read scale-out at 3 replicas, got %.2fx",
               multiplier);
    return 1;
  }
  return 0;
}
