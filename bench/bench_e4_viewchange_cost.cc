// E4 — §4.1: "The protocol requires relatively little message-passing in the
// simple case ... One round of messages is all that is needed when the
// manager is also the primary in the last active view; otherwise, one round
// plus one message is needed."  And the §4.1 special case: "the primary can
// unilaterally exclude the inaccessible backup from the view."
//
// Measured: protocol messages (invite/accept/init-view) and wall-clock
// duration of a view change for (a) a backup crash — the surviving primary
// manages, one round; (b) a primary crash — a backup manages and hands off,
// one round + one message; (c) a backup crash with unilateral tweaks on —
// zero protocol messages. Swept over group sizes, plus the §3.3 eager/lazy
// backup-apply ablation's effect on handoff time.
#include "baseline/models.h"
#include "bench/bench_common.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;

struct ChangeCost {
  std::uint64_t protocol_msgs = 0;  // invite + accept + init-view
  sim::Duration duration = 0;       // trigger .. new view active at primary
  bool ok = false;
};

ChangeCost MeasureChange(std::size_t n, bool crash_primary, bool unilateral,
                         bool eager_apply, int preload_txns = 0) {
  ClusterOptions opts;
  opts.seed = 4000 + n * 17 + (crash_primary ? 1 : 0) + (unilateral ? 2 : 0) +
              (eager_apply ? 4 : 0);
  opts.cohort.unilateral_view_tweaks = unilateral;
  opts.cohort.eager_backup_apply = eager_apply;
  Cluster cluster(opts);
  auto server = cluster.AddGroup("kv", n);
  auto client_g = cluster.AddGroup("client", 3);
  test::RegisterKvProcs(cluster, server);
  cluster.Start();
  ChangeCost cost;
  if (!cluster.RunUntilStable()) return cost;
  if (preload_txns > 0) {
    bench::MeasureTxnPhases(cluster, client_g, server, preload_txns);
    cluster.RunFor(500 * sim::kMillisecond);
  }

  auto cohorts = cluster.Cohorts(server);
  std::size_t victim = cohorts.size();
  for (std::size_t i = 0; i < cohorts.size(); ++i) {
    const bool is_primary = cohorts[i]->IsActivePrimary();
    if (crash_primary == is_primary) {
      victim = i;
      break;
    }
  }
  if (victim == cohorts.size()) return cost;

  cluster.network().ResetStats();
  const vr::Mid victim_mid = cohorts[victim]->mid();
  const sim::Time crash_at = cluster.sim().Now();
  cluster.Crash(server, victim);
  // Wait until a view EXCLUDING the victim is active at some primary (the
  // group can look "stable" in the old view until failure detection fires).
  core::Cohort* primary = nullptr;
  const sim::Time deadline = cluster.sim().Now() + 30 * sim::kSecond;
  while (cluster.sim().Now() < deadline) {
    primary = cluster.AnyPrimary(server);
    if (primary != nullptr && !primary->cur_view().Contains(victim_mid) &&
        primary->stats().last_view_change_completed >= crash_at) {
      break;
    }
    primary = nullptr;
    cluster.RunFor(10 * sim::kMillisecond);
  }
  if (primary == nullptr) return cost;

  const auto& st = cluster.network().stats();
  auto count = [&](vr::MsgType t) -> std::uint64_t {
    auto it = st.sent_by_type.find(static_cast<std::uint16_t>(t));
    return it == st.sent_by_type.end() ? 0 : it->second;
  };
  cost.protocol_msgs = count(vr::MsgType::kInvite) +
                       count(vr::MsgType::kAccept) +
                       count(vr::MsgType::kInitView);
  cost.duration = primary->stats().last_view_change_completed - crash_at;
  cost.ok = true;
  return cost;
}

}  // namespace
}  // namespace vsr

int main() {
  using namespace vsr;
  bench::PrintHeader(
      "E4: view change cost (§4.1)",
      "one round when the manager was the primary; one round + one message "
      "otherwise; unilateral tweaks avoid the protocol entirely");

  bench::Row("  %-34s | protocol msgs (model) | duration", "scenario");
  for (std::size_t n : {3u, 5u, 7u}) {
    auto backup = MeasureChange(n, /*crash_primary=*/false, false, true);
    auto primary = MeasureChange(n, /*crash_primary=*/true, false, true);
    auto tweak = MeasureChange(n, /*crash_primary=*/false, true, true);
    const auto m_backup = baseline::VrViewChange(n, true, 300);
    const auto m_primary = baseline::VrViewChange(n, false, 300);
    bench::Row("  n=%zu backup crash (primary manages) | %4llu (%llu)          | %s",
               n, static_cast<unsigned long long>(backup.protocol_msgs),
               static_cast<unsigned long long>(m_backup.messages),
               sim::FormatDuration(backup.duration).c_str());
    bench::Row("  n=%zu primary crash (backup manages) | %4llu (%llu)          | %s",
               n, static_cast<unsigned long long>(primary.protocol_msgs),
               static_cast<unsigned long long>(m_primary.messages),
               sim::FormatDuration(primary.duration).c_str());
    bench::Row("  n=%zu backup crash, unilateral tweak | %4llu (0)          | %s",
               n, static_cast<unsigned long long>(tweak.protocol_msgs),
               sim::FormatDuration(tweak.duration).c_str());
  }

  bench::Row("\n  Handoff after 300 preloaded transactions (§3.3 trade-off):");
  for (bool eager : {true, false}) {
    auto c = MeasureChange(3, /*crash_primary=*/true, false, eager, 300);
    bench::Row("    %-22s: duration %s",
               eager ? "eager backup apply" : "lazy (replay on promote)",
               sim::FormatDuration(c.duration).c_str());
  }

  bench::Row("\n  Expect: protocol messages ~= the model (2(n-1), +1 for the");
  bench::Row("  init-view handoff; slightly more under retransmission), 0");
  bench::Row("  for unilateral tweaks. Duration is dominated by the failure-");
  bench::Row("  detection timeout, not the protocol itself.");
  return 0;
}
