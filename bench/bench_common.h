// Shared helpers for the experiment harness (E1..E9). Each bench binary
// regenerates one of the paper-claim experiments catalogued in DESIGN.md §2
// and prints a table; EXPERIMENTS.md records claim vs. measured.
#pragma once

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "client/cluster.h"
#include "tests/test_util.h"
#include "workload/driver.h"

namespace vsr::bench {

inline void PrintHeader(const std::string& id, const std::string& claim) {
  std::printf("\n==================================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("==================================================================\n");
}

// CHECK_BENCH_SMOKE=1 shrinks each bench's workload ~10x so the full
// experiment sweep doubles as a fast CI smoke gate (scripts/check.sh).
inline bool SmokeMode() {
  const char* v = std::getenv("CHECK_BENCH_SMOKE");
  return v != nullptr && v[0] == '1';
}

inline int Scaled(int full) {
  return SmokeMode() ? std::max(1, full / 10) : full;
}

inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

// Measures per-phase transaction latency at the client primary: the remote
// call portion and the commit decision (prepare + committing-force) portion.
struct PhaseLatencies {
  workload::LatencyRecorder call;      // Fig. 2 "making a remote call"
  workload::LatencyRecorder decision;  // body-done .. outcome known
  workload::LatencyRecorder total;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
};

// Runs `txns` sequential single-call transactions ("put" on a kv group),
// recording phase latencies. `think_time` models user computation between
// the call and the commit request (§3.7's normal case: by commit time the
// completed-call records have already reached a sub-majority in background).
inline PhaseLatencies MeasureTxnPhases(client::Cluster& cluster,
                                       vr::GroupId client_g,
                                       vr::GroupId server_g, int txns,
                                       sim::Duration think_time = 0) {
  PhaseLatencies out;
  for (int i = 0; i < txns; ++i) {
    core::Cohort* primary = cluster.AnyPrimary(client_g);
    if (primary == nullptr) break;
    bool done = false;
    sim::Time start = cluster.sim().Now();
    sim::Time call_done = start;
    const std::string args = "k" + std::to_string(i % 16) + "=v";
    sim::Scheduler* sched = &cluster.sim().scheduler();
    primary->SpawnTransaction(
        [&, server_g, sched](core::TxnHandle& h) -> sim::Task<bool> {
          co_await h.Call(server_g, "put", args);
          if (think_time > 0) co_await sim::Sleep(*sched, think_time);
          call_done = cluster.sim().Now();
          co_return true;
        },
        [&](vr::TxnOutcome o) {
          done = true;
          if (o == vr::TxnOutcome::kCommitted) {
            ++out.committed;
            out.call.Add(call_done - start);
            out.decision.Add(cluster.sim().Now() - call_done);
            out.total.Add(cluster.sim().Now() - start);
          } else {
            ++out.aborted;
          }
        });
    const sim::Time deadline = cluster.sim().Now() + 10 * sim::kSecond;
    while (!done && cluster.sim().Now() < deadline) {
      cluster.RunFor(1 * sim::kMillisecond);
    }
  }
  return out;
}

inline double Us(double v) { return v; }  // latencies are already in µs

}  // namespace vsr::bench
