// Shared helpers for the experiment harness (E1..E13). Each bench binary
// regenerates one of the paper-claim experiments catalogued in DESIGN.md §2
// and prints a table; EXPERIMENTS.md records claim vs. measured.
#pragma once

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "client/cluster.h"
#include "tests/test_util.h"
#include "workload/driver.h"

namespace vsr::bench {

// -- machine-readable output ------------------------------------------------
//
// Every bench also writes BENCH_<ID>.json next to where it ran (ID is the
// leading token of the PrintHeader id, e.g. "E13"): the header, every Row()
// line, and any named Metric() values. CI and plotting scripts consume these
// instead of scraping stdout.

namespace detail {

struct JsonSink {
  std::string id;       // "E13" — leading token of the header id
  std::string full_id;  // the whole header line
  std::string claim;
  std::vector<std::string> rows;
  std::vector<std::pair<std::string, double>> metrics;
  bool armed = false;
};

inline JsonSink& Sink() {
  static JsonSink s;
  return s;
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline void WriteJson() {
  JsonSink& s = Sink();
  if (s.id.empty()) return;
  const std::string path = "BENCH_" + s.id + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"id\": \"%s\",\n  \"claim\": \"%s\",\n",
               JsonEscape(s.full_id).c_str(), JsonEscape(s.claim).c_str());
  std::fprintf(f, "  \"smoke\": %s,\n",
               std::getenv("CHECK_BENCH_SMOKE") ? "true" : "false");
  std::fprintf(f, "  \"metrics\": {");
  for (std::size_t i = 0; i < s.metrics.size(); ++i) {
    std::fprintf(f, "%s\n    \"%s\": %.6g", i ? "," : "",
                 JsonEscape(s.metrics[i].first).c_str(), s.metrics[i].second);
  }
  std::fprintf(f, "%s},\n", s.metrics.empty() ? "" : "\n  ");
  std::fprintf(f, "  \"rows\": [");
  for (std::size_t i = 0; i < s.rows.size(); ++i) {
    std::fprintf(f, "%s\n    \"%s\"", i ? "," : "",
                 JsonEscape(s.rows[i]).c_str());
  }
  std::fprintf(f, "%s]\n}\n", s.rows.empty() ? "" : "\n  ");
  std::fclose(f);
}

}  // namespace detail

// Records a named numeric result in BENCH_<ID>.json (and echoes nothing —
// pair it with a Row() for the human-readable table).
inline void Metric(const std::string& name, double value) {
  detail::Sink().metrics.emplace_back(name, value);
}

inline void PrintHeader(const std::string& id, const std::string& claim) {
  std::printf("\n==================================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("==================================================================\n");
  detail::JsonSink& s = detail::Sink();
  if (s.id.empty()) {
    std::size_t end = 0;
    while (end < id.size() && (std::isalnum(static_cast<unsigned char>(id[end])) != 0)) {
      ++end;
    }
    s.id = id.substr(0, end);
    s.full_id = id;
    s.claim = claim;
  }
  if (!s.armed) {
    s.armed = true;
    std::atexit(detail::WriteJson);
  }
}

// CHECK_BENCH_SMOKE=1 shrinks each bench's workload ~10x so the full
// experiment sweep doubles as a fast CI smoke gate (scripts/check.sh).
inline bool SmokeMode() {
  const char* v = std::getenv("CHECK_BENCH_SMOKE");
  return v != nullptr && v[0] == '1';
}

inline int Scaled(int full) {
  return SmokeMode() ? std::max(1, full / 10) : full;
}

inline void Row(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  std::printf("%s\n", buf);
  detail::Sink().rows.emplace_back(buf);
}

// Measures per-phase transaction latency at the client primary: the remote
// call portion and the commit decision (prepare + committing-force) portion.
struct PhaseLatencies {
  workload::LatencyRecorder call;      // Fig. 2 "making a remote call"
  workload::LatencyRecorder decision;  // body-done .. outcome known
  workload::LatencyRecorder total;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
};

// Runs `txns` sequential single-call transactions ("put" on a kv group),
// recording phase latencies. `think_time` models user computation between
// the call and the commit request (§3.7's normal case: by commit time the
// completed-call records have already reached a sub-majority in background).
inline PhaseLatencies MeasureTxnPhases(client::Cluster& cluster,
                                       vr::GroupId client_g,
                                       vr::GroupId server_g, int txns,
                                       sim::Duration think_time = 0) {
  PhaseLatencies out;
  for (int i = 0; i < txns; ++i) {
    core::Cohort* primary = cluster.AnyPrimary(client_g);
    if (primary == nullptr) break;
    bool done = false;
    sim::Time start = cluster.sim().Now();
    sim::Time call_done = start;
    const std::string args = "k" + std::to_string(i % 16) + "=v";
    sim::Scheduler* sched = &cluster.sim().scheduler();
    primary->SpawnTransaction(
        [&, server_g, sched](core::TxnHandle& h) -> sim::Task<bool> {
          co_await h.Call(server_g, "put", args);
          if (think_time > 0) co_await sim::Sleep(*sched, think_time);
          call_done = cluster.sim().Now();
          co_return true;
        },
        [&](vr::TxnOutcome o) {
          done = true;
          if (o == vr::TxnOutcome::kCommitted) {
            ++out.committed;
            out.call.Add(call_done - start);
            out.decision.Add(cluster.sim().Now() - call_done);
            out.total.Add(cluster.sim().Now() - start);
          } else {
            ++out.aborted;
          }
        });
    const sim::Time deadline = cluster.sim().Now() + 10 * sim::kSecond;
    while (!done && cluster.sim().Now() < deadline) {
      cluster.RunFor(1 * sim::kMillisecond);
    }
  }
  return out;
}

inline double Us(double v) { return v; }  // latencies are already in µs

}  // namespace vsr::bench
