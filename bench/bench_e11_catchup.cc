// E11 — snapshot-based backup catch-up (DESIGN.md §9). The paper keeps every
// unacknowledged event record in the communication buffer, so a backup that
// falls far behind costs the primary O(lag) memory and a replay of the whole
// backlog once it reconnects. With snapshot_catchup the buffer GCs down to
// StableTs() - window and a reconnecting laggard receives one gstate snapshot
// plus the O(window) record tail instead. Measured: the primary's peak
// resident record count during the lag and the catch-up time/bytes after the
// partition heals, across lag depths up to >10x the replication window, with
// snapshot_catchup on vs. off. Acceptance: with snapshots on, peak resident
// records stay O(window) at every lag depth and 10x-window catch-up cost is
// bounded by snapshot + tail (near-flat in lag) instead of growing with it.
#include <algorithm>
#include <vector>

#include "bench/bench_common.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;

constexpr std::size_t kWindow = 8;

std::uint64_t BytesOf(Cluster& cluster, vr::MsgType t) {
  const auto& m = cluster.network().stats().bytes_by_type;
  auto it = m.find(static_cast<std::uint16_t>(t));
  return it == m.end() ? 0 : it->second;
}

struct CatchUpResult {
  bool ok = false;          // stabilized, committed everything, caught up
  std::uint64_t lag_records = 0;      // laggard's deficit at heal time
  std::size_t resident_peak = 0;      // max records_.size() at the primary
  double catchup_ms = 0;              // heal -> laggard fully applied
  std::uint64_t snap_bytes = 0;       // kSnapshotChunk+kSnapshotAck, catch-up
  std::uint64_t batch_bytes = 0;      // kBufferBatch during catch-up
  std::uint64_t snapshots_served = 0;
};

CatchUpResult Run(bool snapshot_on, int lag_txns, std::uint64_t seed) {
  ClusterOptions opts;
  opts.seed = seed;
  // Failure detection stays out of the way: this measures state transfer,
  // not elections.
  opts.cohort.liveness_timeout = 60 * sim::kSecond;
  opts.cohort.buffer.window = kWindow;
  opts.cohort.buffer.snapshot_catchup = snapshot_on;
  opts.cohort.snapshot.chunk_size = 256;
  opts.cohort.snapshot.window = 4;
  Cluster cluster(opts);
  auto kv = cluster.AddGroup("kv", 3);
  auto client_g = cluster.AddGroup("client", 1);
  test::RegisterKvProcs(cluster, kv);
  cluster.Start();
  CatchUpResult r;
  if (!cluster.RunUntilStable()) return r;

  auto cohorts = cluster.Cohorts(kv);
  core::Cohort* primary = nullptr;
  core::Cohort* laggard = nullptr;
  for (std::size_t i = 0; i < cohorts.size(); ++i) {
    if (cohorts[i]->IsActivePrimary()) {
      primary = cohorts[i];
      laggard = cohorts[(i + 1) % cohorts.size()];
    }
  }
  if (primary == nullptr) return r;

  // Build the lag: cut the laggard off and keep committing.
  cluster.network().SetLinkDown(primary->mid(), laggard->mid(), true);
  bool committed_all = true;
  for (int i = 0; i < lag_txns; ++i) {
    committed_all =
        committed_all &&
        test::RunOneCallWithRetry(cluster, client_g, kv, "put",
                                  "k" + std::to_string(i) + "=v" +
                                      std::to_string(i)) ==
            vr::TxnOutcome::kCommitted;
    r.resident_peak =
        std::max(r.resident_peak, primary->buffer().records().size());
  }
  cluster.RunFor(200 * sim::kMillisecond);
  r.resident_peak =
      std::max(r.resident_peak, primary->buffer().records().size());
  const std::uint64_t target = primary->buffer().last_ts();
  r.lag_records = target - laggard->applied_ts();

  // Heal and measure the catch-up phase in isolation.
  const std::uint64_t snap0 = BytesOf(cluster, vr::MsgType::kSnapshotChunk) +
                              BytesOf(cluster, vr::MsgType::kSnapshotAck);
  const std::uint64_t batch0 = BytesOf(cluster, vr::MsgType::kBufferBatch);
  cluster.network().SetLinkDown(primary->mid(), laggard->mid(), false);
  const sim::Time heal_time = cluster.sim().Now();
  const sim::Time deadline = heal_time + 30 * sim::kSecond;
  while (laggard->applied_ts() < target && cluster.sim().Now() < deadline) {
    cluster.RunFor(100 * sim::kMicrosecond);
  }
  r.catchup_ms = static_cast<double>(cluster.sim().Now() - heal_time) /
                 sim::kMillisecond;
  r.snap_bytes = BytesOf(cluster, vr::MsgType::kSnapshotChunk) +
                 BytesOf(cluster, vr::MsgType::kSnapshotAck) - snap0;
  r.batch_bytes = BytesOf(cluster, vr::MsgType::kBufferBatch) - batch0;
  r.snapshots_served = primary->buffer().stats().snapshots_served;
  r.ok = committed_all && laggard->applied_ts() >= target;
  return r;
}

}  // namespace
}  // namespace vsr

int main() {
  using namespace vsr;
  bench::PrintHeader(
      "E11 — backup catch-up: snapshot state transfer vs. backlog replay "
      "(DESIGN.md §9)",
      "the buffer need only hold O(window) records; a laggard beyond the GC "
      "horizon catches up from one gstate snapshot + the record tail, so "
      "catch-up cost is bounded by snapshot + tail instead of growing with "
      "the lag");

  // Lag depth in transactions (each txn appends ~2 event records, so the
  // largest point runs 10x past the window of 8 records).
  const int unit = std::max(1, bench::Scaled(2));
  const int lag_points[] = {1 * unit, 2 * unit, 10 * unit, 20 * unit};

  bench::Row("  replication window %zu records; snapshot chunks 256 B, "
             "transfer window 4",
             kWindow);
  bench::Row("");
  bench::Row("  %8s %6s | %8s %10s %8s %8s %5s | %8s %10s %8s",
             "lag rec", "x win", "on:resid", "on:ms", "on:snapB", "on:batB",
             "served", "off:resid", "off:ms", "off:batB");

  bool all_ok = true;
  CatchUpResult on_min, on_max, off_max;
  std::uint64_t seed = 41000;
  for (std::size_t i = 0; i < std::size(lag_points); ++i) {
    const CatchUpResult on = Run(true, lag_points[i], seed);
    const CatchUpResult off = Run(false, lag_points[i], seed);
    seed += 2;
    all_ok = all_ok && on.ok && off.ok;
    if (i == 0) on_min = on;
    if (i + 1 == std::size(lag_points)) {
      on_max = on;
      off_max = off;
    }
    bench::Row(
        "  %8llu %5.1fx | %8zu %9.1f %8llu %8llu %5llu | %8zu %9.1f %8llu",
        static_cast<unsigned long long>(on.lag_records),
        static_cast<double>(on.lag_records) / kWindow, on.resident_peak,
        on.catchup_ms, static_cast<unsigned long long>(on.snap_bytes),
        static_cast<unsigned long long>(on.batch_bytes),
        static_cast<unsigned long long>(on.snapshots_served),
        off.resident_peak, off.catchup_ms,
        static_cast<unsigned long long>(off.batch_bytes));
  }

  // Acceptance: (1) every run converges; (2) with snapshots on, the primary
  // never holds more than window + one flush batch of records no matter the
  // lag; (3) at the deepest lag the snapshot path replays at most as many
  // record bytes as the backlog-replay path (catch-up is snapshot + tail,
  // not the full lag) while the replay path's resident set has grown past
  // the bound the snapshot path obeys.
  const std::size_t resid_bound = kWindow + 64;  // window + max_batch
  const bool resid_ok = on_max.resident_peak <= resid_bound;
  const bool tail_ok = on_max.batch_bytes < off_max.batch_bytes;
  // Relative to the snapshot path so the check also holds for the shrunken
  // smoke-mode lag depths.
  const bool replay_grows =
      off_max.resident_peak > 2 * std::max<std::size_t>(on_max.resident_peak,
                                                        kWindow);
  bench::Row("");
  bench::Row("  snapshot-on resident peak at deepest lag: %zu (bound %zu) -> %s",
             on_max.resident_peak, resid_bound, resid_ok ? "MET" : "NOT MET");
  bench::Row("  snapshot-on catch-up at %.1fx window: %llu snapshot B + %llu "
             "record B vs %llu record B replayed -> %s",
             static_cast<double>(on_max.lag_records) / kWindow,
             static_cast<unsigned long long>(on_max.snap_bytes),
             static_cast<unsigned long long>(on_max.batch_bytes),
             static_cast<unsigned long long>(off_max.batch_bytes),
             tail_ok ? "TAIL ONLY" : "NOT MET");
  bench::Row("  replay-mode resident peak at deepest lag: %zu -> %s",
             off_max.resident_peak,
             replay_grows ? "O(lag), as predicted" : "unexpectedly bounded");
  bench::Row("  catch-up time %.1fms (snapshot, %.1fx) vs %.1fms (shallow "
             "%.1fx): latency is dominated by the chunk retransmit deadline,",
             on_max.catchup_ms,
             static_cast<double>(on_max.lag_records) / kWindow,
             on_min.catchup_ms,
             static_cast<double>(on_min.lag_records) / kWindow);
  bench::Row("  not the lag depth.");
  bench::Row("  all runs converged: %s", all_ok ? "yes" : "NO");
  bench::Row("  Expect: the on-mode columns stay flat as lag deepens (one");
  bench::Row("  snapshot + O(window) tail); the off-mode resident set and");
  bench::Row("  catch-up replay grow linearly with the lag.");
  return (all_ok && resid_ok && tail_ok && replay_grows) ? 0 : 1;
}
