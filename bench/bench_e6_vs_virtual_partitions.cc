// E6 — §5: "The virtual partitions protocol requires three phases. The first
// round establishes the new view, the second informs the cohorts of the new
// view, and in the third, the cohorts all communicate with one another to
// find out the current state. We avoid extra work by using viewstamps in
// phase 1 to determine what each cohort knows."
//
// Measured VR view-change message counts (from bench E4's methodology)
// against the 3-phase virtual-partitions cost model, across group sizes.
#include "baseline/models.h"
#include "bench/bench_common.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;

std::uint64_t MeasureVrChangeMsgs(std::size_t n) {
  ClusterOptions opts;
  opts.seed = 6000 + n;
  Cluster cluster(opts);
  auto server = cluster.AddGroup("kv", n);
  cluster.Start();
  if (!cluster.RunUntilStable()) return 0;
  auto cohorts = cluster.Cohorts(server);
  std::size_t victim = 0;
  for (std::size_t i = 0; i < cohorts.size(); ++i) {
    if (cohorts[i]->IsActivePrimary()) victim = i;
  }
  cluster.network().ResetStats();
  cluster.Crash(server, victim);
  if (!cluster.RunUntilStable(30 * sim::kSecond)) return 0;
  const auto& st = cluster.network().stats();
  auto count = [&](vr::MsgType t) -> std::uint64_t {
    auto it = st.sent_by_type.find(static_cast<std::uint16_t>(t));
    return it == st.sent_by_type.end() ? 0 : it->second;
  };
  // Protocol messages plus the newview state distribution (the analogue of
  // the virtual-partitions phase 3 state exchange is our newview record;
  // count the batches that carried it).
  return count(vr::MsgType::kInvite) + count(vr::MsgType::kAccept) +
         count(vr::MsgType::kInitView);
}

}  // namespace
}  // namespace vsr

int main() {
  using namespace vsr;
  bench::PrintHeader(
      "E6: view change — VR (1 round) vs virtual partitions (3 phases) (§5)",
      "viewstamps let phase 1 determine what each cohort knows, replacing the "
      "virtual-partitions all-to-all state exchange");

  bench::Row("  %-4s | %-28s | %-28s | ratio", "n", "VR measured (model) msgs",
             "virtual partitions model msgs");
  for (std::size_t n : {3u, 5u, 7u, 9u}) {
    const std::uint64_t measured = MeasureVrChangeMsgs(n);
    const auto vr_model = baseline::VrViewChange(n, false, 300);
    const auto vp_model = baseline::VirtualPartitionsViewChange(n, 300);
    bench::Row("  %-4zu | %10llu (%llu)             | %10llu (3 phases)        | %.1fx",
               n, static_cast<unsigned long long>(measured),
               static_cast<unsigned long long>(vr_model.messages),
               static_cast<unsigned long long>(vp_model.messages),
               measured == 0
                   ? 0.0
                   : static_cast<double>(vp_model.messages) / measured);
  }
  bench::Row("\n  Latency model (1ms one-way): VR %s vs VP %s",
             sim::FormatDuration(
                 baseline::VrViewChange(5, false, sim::kMillisecond).latency)
                 .c_str(),
             sim::FormatDuration(
                 baseline::VirtualPartitionsViewChange(5, sim::kMillisecond)
                     .latency)
                 .c_str());
  bench::Row("\n  Expect: VP's phase-3 all-to-all makes its message count grow");
  bench::Row("  as n^2 while VR grows as 2n; the gap widens with n.");
  return 0;
}
