// E12 — crashed-cohort recovery with the write-behind durable event log
// (DESIGN.md §10). The paper's configuration is volatile, so §4.2 accepts a
// majority-loss catastrophe as the price of a force-free fast path. The
// event log keeps that fast path (appends trail the ack by one group-commit
// interval) and buys back a recovery story. Measured here:
//
//   1. local replay cost as the log grows (crash -> state restored);
//   2. rejoin catch-up time as a function of the suffix missed while down,
//      including the automatic fallback to a §9 snapshot once the primary
//      has GC'd past the crashed cohort's watermark;
//   3. the catastrophe-survival matrix: full-majority storms with all disks
//      surviving vs. k disks replaced (diskless cohorts are amnesiac and
//      condition 4 correctly refuses to count them).
#include <chrono>

#include "bench/bench_common.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;

core::CohortOptions LoggedOptions() {
  core::CohortOptions o;
  o.event_log.enabled = true;
  return o;
}

std::size_t IndexOfPrimary(Cluster& cluster, vr::GroupId g) {
  auto cohorts = cluster.Cohorts(g);
  for (std::size_t i = 0; i < cohorts.size(); ++i) {
    if (cohorts[i]->IsActivePrimary()) return i;
  }
  return cohorts.size();
}

// Group-commit interval + force latency + slack.
constexpr sim::Duration kLogSettle = 100 * sim::kMillisecond;

// -- 1. replay cost ---------------------------------------------------------

struct ReplayResult {
  std::uint64_t records_replayed = 0;
  // Host wall-clock for the synchronous Recover() call: simulated reads are
  // free (the store models only write latency), so replay cost is real time.
  double replay_wall_us = 0;
  bool ok = false;
};

ReplayResult MeasureReplay(int committed_before_crash) {
  ReplayResult out;
  core::CohortOptions opts = LoggedOptions();
  opts.liveness_timeout = 60 * sim::kSecond;  // isolate replay from elections
  ClusterOptions copts;
  copts.seed = 1200 + committed_before_crash;
  Cluster cluster(copts);
  auto g = cluster.AddGroup("kv", 3, &opts);
  auto client_g = cluster.AddGroup("client", 1);
  test::RegisterKvProcs(cluster, g);
  cluster.Start();
  if (!cluster.RunUntilStable()) return out;

  const std::size_t pi = IndexOfPrimary(cluster, g);
  core::Cohort& backup = cluster.CohortAt(g, (pi + 1) % 3);
  for (int i = 0; i < committed_before_crash; ++i) {
    if (test::RunOneCallWithRetry(cluster, client_g, g, "put",
                                  "k" + std::to_string(i) + "=v") !=
        vr::TxnOutcome::kCommitted) {
      return out;
    }
  }
  cluster.RunFor(kLogSettle);

  backup.Crash();
  cluster.RunFor(10 * sim::kMillisecond);
  const auto wall_start = std::chrono::steady_clock::now();
  backup.Recover();
  const auto wall_end = std::chrono::steady_clock::now();
  out.records_replayed = backup.stats().log_records_replayed;
  out.replay_wall_us =
      std::chrono::duration<double, std::micro>(wall_end - wall_start).count();
  out.ok = backup.stats().log_recoveries == 1 &&
           backup.status() == core::Status::kActive;
  return out;
}

// -- 2. rejoin catch-up -----------------------------------------------------

struct RejoinResult {
  double catchup_us = 0;  // Recover() to applied_ts == primary last_ts
  std::uint64_t snapshots = 0;
  bool ok = false;
};

RejoinResult MeasureRejoin(int missed_while_down, std::size_t window) {
  RejoinResult out;
  core::CohortOptions opts = LoggedOptions();
  opts.liveness_timeout = 60 * sim::kSecond;
  opts.buffer.window = window;
  ClusterOptions copts;
  copts.seed = 1300 + missed_while_down + static_cast<int>(window);
  Cluster cluster(copts);
  auto g = cluster.AddGroup("kv", 3, &opts);
  auto client_g = cluster.AddGroup("client", 1);
  test::RegisterKvProcs(cluster, g);
  cluster.Start();
  if (!cluster.RunUntilStable()) return out;

  const std::size_t pi = IndexOfPrimary(cluster, g);
  core::Cohort& primary = cluster.CohortAt(g, pi);
  core::Cohort& backup = cluster.CohortAt(g, (pi + 1) % 3);
  if (test::RunOneCallWithRetry(cluster, client_g, g, "put", "seed=1") !=
      vr::TxnOutcome::kCommitted) {
    return out;
  }
  cluster.RunFor(kLogSettle);

  backup.Crash();
  for (int i = 0; i < missed_while_down; ++i) {
    if (test::RunOneCallWithRetry(cluster, client_g, g, "put",
                                  "m" + std::to_string(i) + "=v") !=
        vr::TxnOutcome::kCommitted) {
      return out;
    }
  }
  cluster.RunFor(100 * sim::kMillisecond);

  const sim::Time start = cluster.sim().Now();
  backup.Recover();
  const sim::Time deadline = start + 20 * sim::kSecond;
  while (backup.applied_ts() < primary.buffer().last_ts() &&
         cluster.sim().Now() < deadline) {
    cluster.RunFor(1 * sim::kMillisecond);
  }
  out.catchup_us = static_cast<double>(cluster.sim().Now() - start);
  out.snapshots = backup.stats().snapshots_installed;
  out.ok = backup.applied_ts() == primary.buffer().last_ts();
  return out;
}

// -- 3. survival matrix -----------------------------------------------------

struct StormResult {
  int trials = 0;
  int survived = 0;     // view re-formed
  int wrong_views = 0;  // re-formed but lost committed state (must be 0)
};

StormResult RunStorms(std::size_t diskless, int trials) {
  StormResult out;
  for (int t = 0; t < trials; ++t) {
    core::CohortOptions opts = LoggedOptions();
    ClusterOptions copts;
    copts.seed = 1400 + t * 17 + static_cast<int>(diskless);
    Cluster cluster(copts);
    auto g = cluster.AddGroup("kv", 3, &opts);
    auto client_g = cluster.AddGroup("client", 1);
    test::RegisterKvProcs(cluster, g);
    cluster.Start();
    if (!cluster.RunUntilStable()) continue;
    if (test::RunOneCallWithRetry(cluster, client_g, g, "put", "vital=data") !=
        vr::TxnOutcome::kCommitted) {
      continue;
    }
    cluster.RunFor(kLogSettle);
    ++out.trials;

    for (std::size_t i = 0; i < 3; ++i) cluster.Crash(g, i);
    cluster.RunFor(50 * sim::kMillisecond);
    // The first `diskless` cohorts lost their disks in the storm.
    for (std::size_t i = 0; i < 3; ++i) {
      if (i < diskless) {
        cluster.RecoverDiskless(g, i);
      } else {
        cluster.Recover(g, i);
      }
    }
    if (!cluster.RunUntilStable(15 * sim::kSecond)) continue;
    ++out.survived;
    if (test::CommittedValue(cluster, g, "vital") != "data") ++out.wrong_views;
  }
  return out;
}

}  // namespace
}  // namespace vsr

int main() {
  using namespace vsr;
  bench::PrintHeader(
      "E12: durable event log — replay, rejoin, and storm survival (§10)",
      "a write-behind log off the critical path makes §4.2 majority-loss "
      "catastrophes survivable when the disks survive");

  const int kTrials = bench::Scaled(20);

  bench::Row("\n  1. Local replay cost (crash a backup, recover from its log;");
  bench::Row("     host wall-clock for the synchronous replay — the simulator");
  bench::Row("     models write latency only, so replay is real CPU cost):");
  bench::Row("     %-22s | %-16s | %s", "committed pre-crash", "records replayed",
             "replay wall time");
  for (int n : {10, bench::Scaled(100), bench::Scaled(400)}) {
    auto r = MeasureReplay(n);
    bench::Row("     %-22d | %-16llu | %8.0f us%s", n,
               static_cast<unsigned long long>(r.records_replayed),
               r.replay_wall_us, r.ok ? "" : "  (FAILED)");
  }

  bench::Row("\n  2. Rejoin catch-up vs. suffix missed while down (window=64;");
  bench::Row("     a long-enough absence falls below the GC floor and the");
  bench::Row("     primary serves a snapshot instead of the record stream):");
  bench::Row("     %-22s | %-12s | %s", "missed while down", "catch-up",
             "path");
  for (int m : {8, 32, bench::Scaled(200)}) {
    auto r = MeasureRejoin(m, /*window=*/64);
    bench::Row("     %-22d | %8.0f us | %s%s", m, r.catchup_us,
               r.snapshots > 0 ? "snapshot" : "record stream",
               r.ok ? "" : "  (FAILED)");
  }

  bench::Row("\n  3. Full-majority storm survival (crash all 3, recover with k");
  bench::Row("     disks replaced; 'wrong views' must be 0 in every cell):");
  bench::Row("     %-22s | %-12s | %s", "disks replaced", "survived",
             "wrong views");
  for (std::size_t diskless : {0u, 1u, 2u, 3u}) {
    auto r = RunStorms(diskless, kTrials);
    char cell[32];
    std::snprintf(cell, sizeof(cell), "%d / %d", r.survived, r.trials);
    bench::Row("     %-22zu | %-12s | %d", diskless, cell, r.wrong_views);
  }

  bench::Row("\n  Expect: replay cost linear in log length; catch-up via the");
  bench::Row("  record stream for short absences, one snapshot transfer below");
  bench::Row("  the GC floor; storms survive iff every cohort kept its disk");
  bench::Row("  (condition 4 needs the full configuration state-bearing), and");
  bench::Row("  no cell ever forms a wrong view.");
  return 0;
}
