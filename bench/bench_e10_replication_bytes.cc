// E10 — replication stream compression (DESIGN.md §8). The paper's event
// records carry full aids, viewstamps, and object values on every hop; §4.1's
// observation that "communication costs are the dominant costs" motivates
// shrinking the primary→backup stream. Measured: bytes on the wire for
// kBufferBatch frames with the delta/dictionary codec on vs. off, driving the
// identical transaction sequence through same-seed clusters, across four
// workloads (uniform keys, zipfian hot keys, bank-style balances, airline-style
// seat map). Acceptance: >= 30% byte reduction on the zipfian workload.
#include <cmath>
#include <utility>

#include "bench/bench_common.h"
#include "vr/batch_codec.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;

using Call = std::pair<std::string, std::string>;  // proc, args

// Zipf(s) sampler over [0, n) via inverse-CDF table. Deterministic given rng.
class Zipf {
 public:
  Zipf(std::size_t n, double s) : cdf_(n) {
    double sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }
  std::size_t Draw(sim::Rng& rng) {
    // 53 uniform bits -> [0,1).
    const double u = static_cast<double>(rng.Next() >> 11) * 0x1.0p-53;
    for (std::size_t i = 0; i < cdf_.size(); ++i) {
      if (u < cdf_[i]) return i;
    }
    return cdf_.size() - 1;
  }

 private:
  std::vector<double> cdf_;
};

std::string Pad(std::uint64_t v, int width) {
  std::string s = std::to_string(v);
  return std::string(width > static_cast<int>(s.size())
                         ? width - static_cast<int>(s.size())
                         : 0,
                     '0') +
         s;
}

// The four workloads. Each returns the same call sequence every run (its own
// rng, independent of the cluster seed), so raw and dict clusters replicate
// byte-for-byte identical application traffic.
std::vector<Call> UniformWorkload(int txns) {
  sim::Rng rng(0xE10A);
  std::vector<Call> calls;
  for (int i = 0; i < txns; ++i) {
    std::string v;
    for (int j = 0; j < 16; ++j) {
      v.push_back(static_cast<char>('a' + rng.Index(26)));
    }
    calls.push_back({"put", "u" + std::to_string(rng.Index(256)) + "=" + v});
  }
  return calls;
}

std::vector<Call> ZipfianWorkload(int txns) {
  sim::Rng rng(0xE10B);
  Zipf zipf(64, 1.1);
  std::vector<std::uint64_t> counter(64, 0);
  std::vector<Call> calls;
  for (int i = 0; i < txns; ++i) {
    const std::size_t k = zipf.Draw(rng);
    counter[k] += rng.UniformInt(1, 99);
    calls.push_back({"put", "hot" + std::to_string(k) +
                                "=balance=" + Pad(counter[k], 10)});
  }
  return calls;
}

std::vector<Call> BankWorkload(int txns) {
  sim::Rng rng(0xE10C);
  std::vector<std::uint64_t> balance(16, 1000000);
  std::vector<Call> calls;
  for (int i = 0; i < txns; ++i) {
    const std::size_t k = rng.Index(16);
    balance[k] += rng.UniformInt(1, 500);
    calls.push_back({"put", "acct" + Pad(k, 2) + "=balance=" +
                                Pad(balance[k], 12) + ";cur=usd"});
  }
  return calls;
}

std::vector<Call> AirlineWorkload(int txns) {
  sim::Rng rng(0xE10D);
  std::vector<Call> calls;
  for (int i = 0; i < txns; ++i) {
    // 8 flights x 50 seats: mostly-fresh uids, far beyond the dictionary.
    const std::uint64_t seat = rng.Index(8 * 50);
    calls.push_back({"put", "f" + std::to_string(seat / 50) + "s" +
                                Pad(seat % 50, 2) + "=pax=P" +
                                Pad(rng.Index(1000000), 6) + ";st=OK"});
  }
  return calls;
}

struct RunResult {
  std::uint64_t committed = 0;
  std::uint64_t batch_frames = 0;
  std::uint64_t batch_bytes = 0;  // payload + 16-byte frame header, both groups
  vr::CodecStats codec;           // summed over every primary->backup stream
};

RunResult RunWorkload(vr::CompressionMode mode, std::uint64_t seed,
                      const std::vector<Call>& calls) {
  ClusterOptions opts;
  opts.seed = seed;  // identical seed for raw and dict: same network fabric
  opts.cohort.buffer.compression = mode;
  Cluster cluster(opts);
  auto kv = cluster.AddGroup("kv", 3);
  auto agents = cluster.AddGroup("agents", 3);
  test::RegisterKvProcs(cluster, kv);
  cluster.Start();
  RunResult r;
  if (!cluster.RunUntilStable()) return r;
  for (const auto& [proc, args] : calls) {
    if (test::RunOneCallWithRetry(cluster, agents, kv, proc, args) ==
        vr::TxnOutcome::kCommitted) {
      ++r.committed;
    }
  }
  cluster.RunFor(1 * sim::kSecond);

  const auto& ns = cluster.network().stats();
  const auto type = static_cast<std::uint16_t>(vr::MsgType::kBufferBatch);
  if (auto it = ns.bytes_by_type.find(type); it != ns.bytes_by_type.end()) {
    r.batch_bytes = it->second;
  }
  if (auto it = ns.sent_by_type.find(type); it != ns.sent_by_type.end()) {
    r.batch_frames = it->second;
  }
  for (auto group : {kv, agents}) {
    for (auto* c : cluster.Cohorts(group)) {
      for (auto* b : cluster.Cohorts(group)) {
        if (b == c) continue;
        if (const vr::CodecStats* s = c->buffer().encoder_stats(b->mid())) {
          r.codec.batches += s->batches;
          r.codec.records += s->records;
          r.codec.resets += s->resets;
          r.codec.dict_hits += s->dict_hits;
          r.codec.dict_inserts += s->dict_inserts;
          r.codec.tentative_deltas += s->tentative_deltas;
          r.codec.tentative_literals += s->tentative_literals;
          r.codec.bytes_out += s->bytes_out;
        }
      }
    }
  }
  return r;
}

}  // namespace
}  // namespace vsr

int main() {
  using namespace vsr;
  bench::PrintHeader(
      "E10 — replication stream: delta/dictionary compression (DESIGN.md §8)",
      "communication is the dominant cost (§4.1); event records are small and "
      "repetitive, so the buffer stream should compress well — target >= 30% "
      "fewer kBufferBatch bytes on a skewed (zipfian) workload");

  const int txns = bench::Scaled(200);
  struct Workload {
    const char* name;
    std::vector<Call> calls;
  };
  const Workload workloads[] = {
      {"uniform-256 (random values)", UniformWorkload(txns)},
      {"zipfian-64  (hot balances)", ZipfianWorkload(txns)},
      {"bank-16     (acct balances)", BankWorkload(txns)},
      {"airline-400 (seat map)", AirlineWorkload(txns)},
  };

  bench::Row("  %d txns per workload; 2x3-cohort groups; kBufferBatch bytes "
             "include the 16-byte frame header",
             txns);
  bench::Row("");
  bench::Row("  %-28s %9s %9s %7s  %9s %9s  %6s %6s %6s", "workload",
             "raw B", "dict B", "saved", "B/txn raw", "B/txn dic", "hit%",
             "delta%", "resets");
  double zipf_saving = -1;
  bool all_committed = true;
  std::uint64_t wseed = 31000;
  for (const auto& w : workloads) {
    const RunResult raw =
        RunWorkload(vr::CompressionMode::kRaw, wseed, w.calls);
    const RunResult dict =
        RunWorkload(vr::CompressionMode::kDict, wseed, w.calls);
    wseed += 2;
    all_committed = all_committed &&
                    raw.committed == w.calls.size() &&
                    dict.committed == w.calls.size();
    const double saved =
        raw.batch_bytes == 0
            ? 0
            : 100.0 * (1.0 - static_cast<double>(dict.batch_bytes) /
                                 static_cast<double>(raw.batch_bytes));
    const std::uint64_t uid_refs =
        dict.codec.dict_hits + dict.codec.dict_inserts;
    const std::uint64_t writes =
        dict.codec.tentative_deltas + dict.codec.tentative_literals;
    bench::Row(
        "  %-28s %9llu %9llu %6.1f%%  %9.0f %9.0f  %5.0f%% %5.0f%% %6llu",
        w.name, static_cast<unsigned long long>(raw.batch_bytes),
        static_cast<unsigned long long>(dict.batch_bytes), saved,
        raw.committed ? static_cast<double>(raw.batch_bytes) / raw.committed
                      : 0.0,
        dict.committed ? static_cast<double>(dict.batch_bytes) / dict.committed
                       : 0.0,
        uid_refs ? 100.0 * dict.codec.dict_hits / uid_refs : 0.0,
        writes ? 100.0 * dict.codec.tentative_deltas / writes : 0.0,
        static_cast<unsigned long long>(dict.codec.resets));
    if (w.calls == workloads[1].calls) zipf_saving = saved;
  }

  bench::Row("");
  bench::Row("  zipfian saving: %.1f%% (acceptance target >= 30%%) -> %s",
             zipf_saving, zipf_saving >= 30.0 ? "MET" : "NOT MET");
  bench::Row("  all workload txns committed in both modes: %s",
             all_committed ? "yes" : "NO");
  bench::Row("  Expect: dictionary hits dominate on skewed keys; balance-style");
  bench::Row("  values ride the delta path (common prefix), random values fall");
  bench::Row("  back to literals but still gain from varint/aid packing; the");
  bench::Row("  airline seat map churns the dictionary (insert-heavy) and sets");
  bench::Row("  the compression floor.");
  return (zipf_saving >= 30.0 && all_committed) ? 0 : 1;
}
