// E3 — §5: "Our method is faster than voting for write operations since we
// require fewer messages. Also, we avoid the deadlocks that can arise if
// messages for concurrent updates arrive at the cohorts in different orders.
// Our method will also be faster for read operations if these take place at
// several cohorts."
//
// Measured: per-operation latency and critical-path message counts for VR
// (call to the primary) versus quorum voting (lock round + write round at a
// write quorum; reads at a read quorum), plus the failure rate of concurrent
// writers — voting's lock conflicts versus VR's serialized execution at the
// primary.
#include "baseline/models.h"
#include "baseline/voting.h"
#include "bench/bench_common.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;

struct VotingWorld {
  VotingWorld(std::uint64_t seed, std::size_t n) : simulation(seed), network(simulation, {}) {
    for (std::size_t i = 0; i < n; ++i) {
      replicas.push_back(std::make_unique<baseline::VotingReplica>(
          simulation, network, static_cast<net::NodeId>(100 + i)));
      ids.push_back(static_cast<net::NodeId>(100 + i));
    }
  }
  sim::Simulation simulation;
  net::Network network;
  std::vector<std::unique_ptr<baseline::VotingReplica>> replicas;
  std::vector<net::NodeId> ids;
};

void CompareAtN(std::size_t n) {
  // ---- VR: measured call latency + message counts ----
  double vr_call_us = 0;
  double vr_msgs_critical = 2.0;  // call + reply (structural)
  double vr_msgs_total = 0;
  {
    ClusterOptions opts;
    opts.seed = 3000 + n;
    Cluster cluster(opts);
    auto server = cluster.AddGroup("kv", n);
    auto client_g = cluster.AddGroup("client", 3);
    test::RegisterKvProcs(cluster, server);
    cluster.Start();
    if (!cluster.RunUntilStable()) return;
    cluster.network().ResetStats();
    const int kOps = 150;
    auto phases = bench::MeasureTxnPhases(cluster, client_g, server, kOps);
    cluster.RunFor(1 * sim::kSecond);
    vr_call_us = phases.call.Mean();
    // Count data-plane traffic only (exclude pings).
    const auto& st = cluster.network().stats();
    std::uint64_t total = 0;
    for (const auto& [type, count] : st.sent_by_type) {
      if (type != static_cast<std::uint16_t>(vr::MsgType::kPing)) {
        total += count;
      }
    }
    vr_msgs_total = static_cast<double>(total) / kOps;
  }

  // ---- Voting: measured write/read latency + messages ----
  // Read-one/write-all, plus the majority-quorum read variant (the paper's
  // "if reads take place at several cohorts" case).
  double vote_write_us = 0, vote_read_us = 0, vote_msgs = 0,
         vote_qread_us = 0;
  {
    VotingWorld wq(3150 + n, n);
    baseline::VotingOptions qopts;
    qopts.read_quorum = n / 2 + 1;
    qopts.write_quorum = n / 2 + 1;
    baseline::VotingClient qclient(wq.simulation, wq.network, 1, wq.ids,
                                   qopts);
    workload::LatencyRecorder qreads;
    for (int i = 0; i < 100; ++i) {
      bool done = false;
      qclient.Write("k", "v", [&](bool) { done = true; });
      wq.simulation.scheduler().RunToQuiescence();
      const sim::Time start = wq.simulation.Now();
      done = false;
      qclient.Read("k",
                   [&](std::optional<baseline::VersionedValue>) { done = true; });
      wq.simulation.scheduler().RunToQuiescence();
      if (done) qreads.Add(wq.simulation.Now() - start);
    }
    vote_qread_us = qreads.Mean();
  }
  {
    VotingWorld w(3100 + n, n);
    baseline::VotingClient client(w.simulation, w.network, 1, w.ids, {});
    workload::LatencyRecorder writes, reads;
    const int kOps = 150;
    w.network.ResetStats();
    for (int i = 0; i < kOps; ++i) {
      sim::Time start = w.simulation.Now();
      bool done = false;
      client.Write("k" + std::to_string(i % 16), "v", [&](bool) { done = true; });
      w.simulation.scheduler().RunToQuiescence();
      if (done) writes.Add(w.simulation.Now() - start);
      start = w.simulation.Now();
      done = false;
      client.Read("k" + std::to_string(i % 16),
                  [&](std::optional<baseline::VersionedValue>) { done = true; });
      w.simulation.scheduler().RunToQuiescence();
      if (done) reads.Add(w.simulation.Now() - start);
    }
    vote_write_us = writes.Mean();
    vote_read_us = reads.Mean();
    vote_msgs = static_cast<double>(w.network.stats().frames_sent) / (2 * kOps);
  }

  const auto model_vr = baseline::VrCall(n, 300);
  const auto model_vote = baseline::VotingWrite(n, 300);
  bench::Row("  n=%zu | VR call %6.0fus (%d crit msgs, %4.1f total/op) | "
             "voting write %6.0fus read-1 %6.0fus read-maj %6.0fus (%4.1f msgs/op) | model: VR %llu vs voting %llu msgs",
             n, vr_call_us, static_cast<int>(vr_msgs_critical), vr_msgs_total,
             vote_write_us, vote_read_us, vote_qread_us, vote_msgs,
             static_cast<unsigned long long>(model_vr.messages),
             static_cast<unsigned long long>(model_vote.messages));
}

void DeadlockComparison() {
  bench::Row("\n  Concurrent-writer behaviour (20 rounds of 2 clients hitting one key):");
  // Voting: two clients lock replicas concurrently.
  {
    VotingWorld w(3200, 3);
    baseline::VotingClient c1(w.simulation, w.network, 1, w.ids, {});
    baseline::VotingClient c2(w.simulation, w.network, 2, w.ids, {});
    for (int i = 0; i < 20; ++i) {
      c1.Write("hot", "a", nullptr);
      c2.Write("hot", "b", nullptr);
      w.simulation.scheduler().RunToQuiescence();
    }
    bench::Row("    voting : %llu ok, %llu failed (lock conflicts/deadlock backoff)",
               static_cast<unsigned long long>(c1.stats().writes_ok +
                                               c2.stats().writes_ok),
               static_cast<unsigned long long>(c1.stats().writes_failed +
                                               c2.stats().writes_failed));
  }
  // VR: the primary serializes; concurrent writers queue briefly and all
  // commit.
  {
    ClusterOptions opts;
    opts.seed = 3201;
    Cluster cluster(opts);
    auto server = cluster.AddGroup("kv", 3);
    auto client_g = cluster.AddGroup("client", 3);
    test::RegisterKvProcs(cluster, server);
    cluster.Start();
    cluster.RunUntilStable();
    workload::ClosedLoopDriver driver(
        cluster, client_g,
        [&](std::uint64_t) {
          return [&](core::TxnHandle& h) -> sim::Task<bool> {
            co_await h.Call(server, "put", std::string("hot=v"));
            co_return true;
          };
        },
        workload::DriverOptions{.total_txns = 40, .max_inflight = 2});
    driver.Run();
    bench::Row("    VR     : %llu ok, %llu failed",
               static_cast<unsigned long long>(driver.accounting().committed),
               static_cast<unsigned long long>(driver.accounting().aborted));
  }
}

}  // namespace
}  // namespace vsr

int main() {
  using namespace vsr;
  bench::PrintHeader(
      "E3: VR vs quorum voting (§5)",
      "fewer messages per write than voting; no concurrent-update deadlocks; "
      "reads faster whenever quorum reads touch several cohorts");
  for (std::size_t n : {3u, 5u, 7u}) CompareAtN(n);
  DeadlockComparison();
  bench::Row("\n  Expect: VR's critical path is 2 messages regardless of n;");
  bench::Row("  voting pays 4w messages (lock+write rounds). Voting's");
  bench::Row("  read-one is cheap; quorum reads (r>1) are not. Concurrent");
  bench::Row("  voting writers conflict; VR writers all commit.");
  return 0;
}
