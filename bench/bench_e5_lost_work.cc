// E5 — §6: "Our view change algorithm is highly likely not to lose work in a
// view change. If a transaction's effects are known at the new primary, the
// transaction can commit."  §2: "Transactions that prepared in the old view
// will be able to commit, and those that committed will still be committed.
// Transactions that had not yet prepared before the change may be able to
// prepare afterwards, depending on whether the completion events of the
// remote calls are known in the new view."  Baseline (§5): "Virtual
// partitions force transactions that were active across a view change to
// abort."
//
// Measured: a burst of transactions is started just before the server
// primary crashes; we count how many survive (commit) across the view
// change under (a) VR with viewstamps, (b) VR with subactions (§3.6), and
// compare with the virtual-partitions rule (survivors = 0 by protocol).
// Also sweeps the call-to-crash gap: the longer the background buffer has to
// replicate completed-call records, the more work survives.
#include "bench/bench_common.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;

struct Survival {
  int committed = 0;
  int aborted = 0;
  int unknown = 0;
  int replied = 0;  // calls whose replies the client saw before the crash
};

Survival MeasureSurvival(std::uint64_t seed, bool nested, sim::Duration gap,
                         int burst, bool force_calls = false) {
  ClusterOptions opts;
  opts.seed = seed;
  opts.cohort.nested_call_retry = nested;
  opts.cohort.force_calls_before_reply = force_calls;
  // Allow enough attempts to ride out the failure-detection + view-change
  // window (~400ms) given the per-attempt probe/timeout budget.
  opts.cohort.nested_retry_attempts = 6;
  Cluster cluster(opts);
  auto server = cluster.AddGroup("kv", 3);
  auto client_g = cluster.AddGroup("client", 3);
  test::RegisterKvProcs(cluster, server);
  cluster.Start();
  Survival s;
  if (!cluster.RunUntilStable()) return s;

  // Start the burst; each transaction performs its call, then "computes"
  // until well past the crash, then commits.
  sim::Scheduler* sched = &cluster.sim().scheduler();
  core::Cohort* cp = cluster.AnyPrimary(client_g);
  int resolved = 0;
  for (int i = 0; i < burst; ++i) {
    cp->SpawnTransaction(
        [server, sched, i, &s](core::TxnHandle& h) -> sim::Task<bool> {
          co_await h.Call(server, "put",
                          std::string("w") + std::to_string(i) + "=x");
          ++s.replied;
          // Think until the dust of the view change settles, then commit.
          co_await sim::Sleep(*sched, 3 * sim::kSecond);
          co_return true;
        },
        [&](vr::TxnOutcome o) {
          ++resolved;
          switch (o) {
            case vr::TxnOutcome::kCommitted:
              ++s.committed;
              break;
            case vr::TxnOutcome::kAborted:
              ++s.aborted;
              break;
            default:
              ++s.unknown;
          }
        });
  }
  // Let the calls complete, wait out the gap, then kill the server primary.
  cluster.RunFor(gap);
  auto cohorts = cluster.Cohorts(server);
  for (std::size_t i = 0; i < cohorts.size(); ++i) {
    if (cohorts[i]->IsActivePrimary()) {
      cluster.Crash(server, i);
      break;
    }
  }
  const sim::Time deadline = cluster.sim().Now() + 60 * sim::kSecond;
  while (resolved < burst && cluster.sim().Now() < deadline) {
    cluster.RunFor(20 * sim::kMillisecond);
  }
  return s;
}

}  // namespace
}  // namespace vsr

int main() {
  using namespace vsr;
  bench::PrintHeader(
      "E5: work lost in a view change (§2, §6 vs §5 baseline)",
      "viewstamps preserve transactions whose completed-call events reached a "
      "sub-majority; virtual partitions abort everything active");

  const int kBurst = 20;
  bench::Row("  burst of %d in-flight txns; server primary crashes after a gap",
             kBurst);
  bench::Row("  %-34s | replied | committed | betrayed | VP baseline",
             "scenario");
  bench::Row("  %-34s |         |           | (replied yet aborted) |", "");
  struct Case {
    const char* label;
    bool nested;
    sim::Duration gap;
  };
  const Case cases[] = {
      // ~1ms: calls have executed and replied, but the background buffer
      // flush (0.5ms) + delivery has not reached the backups for all of
      // them — some completed-call events die with the primary.
      {"gap 1ms  (records not replicated)", false, 1 * sim::kMillisecond},
      {"gap 50ms (records replicated)", false, 50 * sim::kMillisecond},
      {"gap 1ms  + subactions (§3.6)", true, 1 * sim::kMillisecond},
      {"gap 50ms + subactions (§3.6)", true, 50 * sim::kMillisecond},
  };
  int case_idx = 0;
  for (const Case& c : cases) {
    Survival s = MeasureSurvival(5000 + case_idx++, c.nested, c.gap, kBurst);
    bench::Row("  %-34s | %7d | %9d | %8d | 0 survive", c.label, s.replied,
               s.committed, s.replied - s.committed);
  }
  // §6: "if 'completed call' records were forced to the backups before the
  // call returned, there would be no aborts due to view changes, but calls
  // would be processed more slowly." A call whose reply arrived is majority-
  // known by construction, so "betrayed" is structurally zero — the cost is
  // that fewer calls complete before the crash at all.
  for (sim::Duration gap : {1 * sim::kMillisecond, 4 * sim::kMillisecond}) {
    Survival s = MeasureSurvival(5010 + gap, false, gap, kBurst,
                                 /*force_calls=*/true);
    char label[64];
    std::snprintf(label, sizeof(label), "gap %-4s + forced calls (§6)",
                  sim::FormatDuration(gap).c_str());
    bench::Row("  %-34s | %7d | %9d | %8d | 0 survive", label, s.replied,
               s.committed, s.replied - s.committed);
  }

  bench::Row("\n  Expect: with a 50ms gap the background buffer has replicated");
  bench::Row("  every completed-call record, so ~all transactions survive the");
  bench::Row("  change (VP: none). With a 1ms gap some records die with the");
  bench::Row("  primary; those transactions abort via compatible() — unless");
  bench::Row("  subactions re-run the lost calls in the new view (§3.6).");
  return 0;
}
