// A1 — ablations of the design choices DESIGN.md §4 calls out, measured on
// a steady transaction workload:
//   1. sub-majority force vs forcing to ALL backups ("write-all")
//   2. buffer flush delay (background batching) vs decision latency and
//      background message count
//   3. throughput vs pipeline depth (closed-loop in-flight transactions)
#include "bench/bench_common.h"
#include "workload/driver.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;

struct RunStats {
  double decision_us = 0;
  double call_us = 0;
  double msgs_per_txn = 0;
  double txn_per_sim_sec = 0;
};

RunStats Measure(std::size_t replicas, sim::Duration flush_delay,
                 int inflight) {
  ClusterOptions opts;
  opts.seed = 11000 + replicas + flush_delay + inflight;
  opts.cohort.buffer.flush_delay = flush_delay;
  Cluster cluster(opts);
  auto server = cluster.AddGroup("kv", replicas);
  auto client_g = cluster.AddGroup("client", 3);
  test::RegisterKvProcs(cluster, server);
  cluster.Start();
  RunStats out;
  if (!cluster.RunUntilStable()) return out;

  cluster.network().ResetStats();
  const int kTxns = 200;
  const sim::Time start = cluster.sim().Now();
  if (inflight <= 1) {
    auto phases = bench::MeasureTxnPhases(cluster, client_g, server, kTxns);
    out.decision_us = phases.decision.Mean();
    out.call_us = phases.call.Mean();
    out.txn_per_sim_sec =
        static_cast<double>(phases.committed) /
        (static_cast<double>(cluster.sim().Now() - start) / sim::kSecond);
  } else {
    workload::ClosedLoopDriver driver(
        cluster, client_g,
        [&](std::uint64_t i) {
          const std::string args = "k" + std::to_string(i % 64) + "=v";
          return [args, server](core::TxnHandle& h) -> sim::Task<bool> {
            co_await h.Call(server, "put", args);
            co_return true;
          };
        },
        workload::DriverOptions{.total_txns = kTxns, .max_inflight = inflight});
    driver.Run();
    out.decision_us = 0;
    out.txn_per_sim_sec =
        static_cast<double>(driver.accounting().committed) /
        (static_cast<double>(cluster.sim().Now() - start) / sim::kSecond);
  }
  std::uint64_t total = 0;
  for (const auto& [type, count] : cluster.network().stats().sent_by_type) {
    if (type != static_cast<std::uint16_t>(vr::MsgType::kPing)) total += count;
  }
  out.msgs_per_txn = static_cast<double>(total) / kTxns;
  return out;
}

}  // namespace
}  // namespace vsr

int main() {
  using namespace vsr;
  bench::PrintHeader(
      "A1: design-choice ablations (DESIGN.md §4)",
      "sub-majority force, background batching, and pipelining — the knobs "
      "behind the paper's performance claims");

  bench::Row("  1) Sub-majority force vs waiting for ALL backups");
  bench::Row("     (n=3: force waits for 1 of 2 backups; n=2: the single");
  bench::Row("     backup IS the sub-majority — the force-all tail):");
  for (std::size_t n : {2u, 3u, 5u}) {
    auto r = Measure(n, 500 * sim::kMicrosecond, 1);
    bench::Row("     n=%zu: decision %6.0fus  (waits for %zu of %zu backups)",
               n, r.decision_us, vr::SubMajorityOf(n), n - 1);
  }

  bench::Row("\n  2) Background flush (batching) delay sweep, n=3:");
  bench::Row("     %-12s | decision latency | data msgs/txn", "flush delay");
  for (sim::Duration d :
       {sim::Duration{0}, 200 * sim::kMicrosecond, 500 * sim::kMicrosecond,
        2 * sim::kMillisecond, 10 * sim::kMillisecond}) {
    auto r = Measure(3, d, 1);
    bench::Row("     %-12s | %10.0fus     | %6.1f",
               sim::FormatDuration(d).c_str(), r.decision_us, r.msgs_per_txn);
  }
  bench::Row("     (bigger batches -> fewer messages but later acks, so the");
  bench::Row("      commit-time force waits longer: classic batching trade)");

  bench::Row("\n  3) Throughput vs pipeline depth, n=3 (closed loop):");
  for (int inflight : {1, 2, 4, 8, 16}) {
    auto r = Measure(3, 500 * sim::kMicrosecond, inflight);
    bench::Row("     inflight %2d : %8.0f txn/s (simulated), %5.1f msgs/txn",
               inflight, r.txn_per_sim_sec, r.msgs_per_txn);
  }
  bench::Row("\n  Expect: decision latency ~flat in n (sub-majority!), fewer");
  bench::Row("  messages with batching at the cost of latency, and throughput");
  bench::Row("  scaling with pipeline depth until the primary serializes.");
  return 0;
}
