// E13 — sharding the object store across module groups (DESIGN.md §11).
//
// The paper scales by adding module groups: "a module is the unit of
// distribution" (§2), and transactions spanning groups commit with the
// two-phase protocol of §3.2. This experiment measures what that buys and
// costs when one logical store is range-partitioned across N groups:
//
//   1. throughput vs shard count — single-shard transfers spread over more
//      groups pipeline independently;
//   2. the cross-group transaction premium — a transfer whose two accounts
//      live on different shards pays a second participant in phase one;
//   3. live rebalancing under load — moving a key range between groups with
//      the §9 snapshot machinery as the bulk-move primitive, measuring the
//      handoff window, the disruption to throughput, and the correctness
//      bar: zero lost and zero duplicated commits, account by account.
#include <map>

#include "bench/bench_common.h"
#include "client/shard_rebalancer.h"
#include "client/shard_router.h"
#include "workload/sharded_bank.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;

constexpr int kAccounts = 24;
constexpr long long kInitial = 1000;

struct RunResult {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t unknown = 0;
  double txn_per_sec = 0;
  double mean_latency_us = 0;
  std::uint64_t router_refreshes = 0;
  bool conserved = false;
};

// Closed-loop transfers over a sharded bank; `cross_fraction` picks how many
// pairs straddle a shard boundary (-1 = uniform random pairs).
RunResult RunTransfers(std::uint64_t seed, std::size_t shards, int txns,
                       double cross_fraction, int max_inflight = 8,
                       bool spread_coordinators = false,
                       int accounts = kAccounts,
                       sim::Duration call_service_time = 0) {
  ClusterOptions copts{.seed = seed};
  copts.cohort.call_service_time = call_service_time;
  Cluster cluster(copts);
  auto bank = workload::SetupShardedBank(cluster, shards, 3, accounts);
  // One coordinator group per shard: a single client group's primary caps
  // the sweep at its own 2PC throughput, hiding any scaling from the shards.
  std::vector<vr::GroupId> coords{bank.client_group};
  if (spread_coordinators) {
    for (std::size_t s = 1; s < shards; ++s) {
      coords.push_back(cluster.AddGroup("client" + std::to_string(s), 3));
    }
  }
  cluster.Start();
  RunResult out;
  if (!cluster.RunUntilStable()) return out;
  if (workload::FundShardedAccounts(cluster, bank, kInitial) != accounts) {
    return out;
  }

  client::ShardRouter router(cluster.directory());
  sim::Rng rng(seed * 3 + 1);
  const int per_shard = accounts / static_cast<int>(shards);
  auto pick_pair = [&](int* from, int* to) {
    if (cross_fraction >= 0 && shards > 1) {
      // Pin the pair to one shard or force it across two adjacent shards.
      const int s = static_cast<int>(rng.Index(shards));
      *from = s * per_shard + static_cast<int>(rng.Index(per_shard));
      if (rng.UniformDouble() < cross_fraction) {
        const int s2 = (s + 1) % static_cast<int>(shards);
        *to = s2 * per_shard + static_cast<int>(rng.Index(per_shard));
      } else {
        *to = s * per_shard +
              static_cast<int>((*from - s * per_shard + 1 + rng.Index(
                                    static_cast<std::size_t>(per_shard - 1))) %
                               per_shard);
      }
    } else {
      *from = static_cast<int>(rng.Index(accounts));
      *to = static_cast<int>(rng.Index(accounts));
      if (*to == *from) *to = (*to + 1) % accounts;
    }
  };

  const sim::Time t0 = cluster.sim().Now();
  workload::DriverOptions opts;
  opts.total_txns = txns;
  opts.max_inflight = max_inflight;
  opts.retries_per_txn = 20;
  if (spread_coordinators) opts.coordinator_groups = coords;
  workload::ClosedLoopDriver driver(
      cluster, bank.client_group,
      [&](std::uint64_t) {
        int from = 0, to = 0;
        pick_pair(&from, &to);
        return workload::MakeShardedTransferTxn(
            router, workload::ShardAccountName(from),
            workload::ShardAccountName(to), 1);
      },
      opts);
  driver.Run();
  const double secs =
      static_cast<double>(cluster.sim().Now() - t0) / sim::kSecond;
  cluster.RunFor(2 * sim::kSecond);

  out.committed = driver.accounting().committed;
  out.aborted = driver.accounting().aborted;
  out.unknown = driver.accounting().unknown;
  out.txn_per_sec = secs > 0 ? static_cast<double>(out.committed) / secs : 0;
  out.mean_latency_us = driver.latency().Mean();
  out.router_refreshes = router.refreshes();
  out.conserved =
      workload::ShardedBankTotal(cluster, accounts) == accounts * kInitial;
  return out;
}

struct RebalanceResult {
  bool move_completed = false;
  double move_ms = 0;
  double handoff_ms = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted_final = 0;
  std::uint64_t unknown = 0;
  std::uint64_t router_refreshes = 0;
  std::uint64_t bulk_pulls = 0;
  std::uint64_t settle_pulls = 0;
  bool zero_lost_or_dup = false;
  bool conserved = false;
};

// Transfers stream while one shard's whole range moves to another group;
// committed outcomes fold into an exact per-account model that the final
// committed balances must match — zero lost, zero duplicated.
RebalanceResult RunRebalanceUnderLoad(std::uint64_t seed, int txns) {
  Cluster cluster(ClusterOptions{.seed = seed});
  auto bank = workload::SetupShardedBank(cluster, 3, 3, kAccounts);
  cluster.Start();
  RebalanceResult out;
  if (!cluster.RunUntilStable()) return out;
  if (workload::FundShardedAccounts(cluster, bank, kInitial) != kAccounts) {
    return out;
  }

  client::ShardRouter router(cluster.directory());
  client::ShardRebalancer rebalancer(cluster);

  struct Plan {
    int from, to;
    long long amt;
  };
  std::vector<Plan> plan;
  sim::Rng rng(seed * 5 + 3);
  for (int i = 0; i < txns; ++i) {
    const int from = static_cast<int>(rng.Index(kAccounts));
    int to = static_cast<int>(rng.Index(kAccounts));
    if (to == from) to = (to + 1) % kAccounts;
    plan.push_back({from, to, 1 + static_cast<long long>(rng.Index(5))});
  }
  std::map<int, long long> model;
  for (int i = 0; i < kAccounts; ++i) model[i] = kInitial;

  workload::DriverOptions opts;
  opts.total_txns = txns;
  opts.max_inflight = 6;
  opts.retries_per_txn = 200;  // must outlast the handoff window
  opts.on_outcome = [&](std::uint64_t i, vr::TxnOutcome o) {
    if (o == vr::TxnOutcome::kCommitted) {
      model[plan[i].from] -= plan[i].amt;
      model[plan[i].to] += plan[i].amt;
    }
  };
  workload::ClosedLoopDriver driver(
      cluster, bank.client_group,
      [&](std::uint64_t i) {
        return workload::MakeShardedTransferTxn(
            router, workload::ShardAccountName(plan[i].from),
            workload::ShardAccountName(plan[i].to), plan[i].amt);
      },
      opts);

  bool move_done = false, move_ok = false;
  cluster.sim().scheduler().After(100 * sim::kMillisecond, [&] {
    const core::ShardRange* r =
        cluster.directory().Route(workload::ShardAccountName(0));
    if (r == nullptr) return;
    rebalancer.Move(r->lo, r->hi, bank.shards[2], [&](bool ok) {
      move_done = true;
      move_ok = ok;
    });
  });

  driver.Run();
  for (int i = 0; i < 1000 && !move_done; ++i) {
    cluster.RunFor(10 * sim::kMillisecond);
  }
  cluster.RunFor(2 * sim::kSecond);

  out.move_completed = move_done && move_ok;
  out.move_ms = static_cast<double>(rebalancer.stats().last_move_duration) /
                sim::kMillisecond;
  out.handoff_ms =
      static_cast<double>(rebalancer.stats().last_handoff_window) /
      sim::kMillisecond;
  out.committed = driver.accounting().committed;
  out.aborted_final = driver.accounting().aborted;
  out.unknown = driver.accounting().unknown;
  out.router_refreshes = router.refreshes();
  out.bulk_pulls = rebalancer.stats().bulk_pulls;
  out.settle_pulls = rebalancer.stats().settle_pulls;

  bool exact = out.unknown == 0;
  for (int i = 0; i < kAccounts && exact; ++i) {
    if (workload::ShardedCommittedBalance(cluster,
                                          workload::ShardAccountName(i)) !=
        model[i]) {
      exact = false;
    }
  }
  out.zero_lost_or_dup = exact;
  out.conserved = workload::ShardedBankTotal(cluster, kAccounts) ==
                  kAccounts * kInitial;
  return out;
}

}  // namespace
}  // namespace vsr

int main() {
  using namespace vsr;
  bench::PrintHeader(
      "E13: sharding the object store across module groups (DESIGN.md §11)",
      "modules are the unit of distribution (§2): range-partitioning one "
      "store over N groups scales throughput; cross-group transactions pay "
      "one extra prepare round; a key range moves between groups live with "
      "zero lost or duplicated commits");

  const int txns = bench::Scaled(300);

  // 90% shard-local pairs over a wide key space: the workload a range
  // partition is designed for. (Uniform pairs over N shards make nearly
  // every transfer a two-group transaction, and a small account set makes
  // the sweep measure account-lock contention instead of capacity.) Each
  // call occupies its primary's serial CPU for 500 us — without a service
  // time the simulator charges only network latency, one group absorbs
  // unbounded load, and the sweep would be flat by construction.
  const int sweep_accounts = 96;
  const sim::Duration service = 500 * sim::kMicrosecond;
  bench::Row("\n  -- throughput vs shard count (%d transfers, 90%% shard-local,",
             txns);
  bench::Row("  --   %d accounts, 500us/call service time, 32 in flight)",
             sweep_accounts);
  bench::Row("  %-8s | committed | txn/s | mean latency (us) | conserved",
             "shards");
  for (std::size_t shards : {1u, 2u, 3u, 4u}) {
    // 32 in flight: enough offered load to saturate one group, so the sweep
    // exposes whether extra groups actually add capacity.
    RunResult r = RunTransfers(13000 + shards, shards, txns, 0.1,
                               /*max_inflight=*/32,
                               /*spread_coordinators=*/true, sweep_accounts,
                               service);
    bench::Row("  %-8zu | %9llu | %5.0f | %17.0f | %s", shards,
               static_cast<unsigned long long>(r.committed), r.txn_per_sec,
               r.mean_latency_us, r.conserved ? "yes" : "NO");
    bench::Metric("throughput_txn_per_sec_shards_" + std::to_string(shards),
                  r.txn_per_sec);
  }

  bench::Row("\n  -- cross-group transaction premium (3 shards)");
  bench::Row("  %-18s | committed | mean latency (us)", "pair placement");
  {
    // Sequential (one transfer in flight) so the numbers isolate protocol
    // cost — pipelined pairs pinned to one small shard would measure lock
    // contention instead.
    RunResult same = RunTransfers(13101, 3, txns, 0.0, /*max_inflight=*/1);
    RunResult cross = RunTransfers(13102, 3, txns, 1.0, /*max_inflight=*/1);
    bench::Row("  %-18s | %9llu | %17.0f", "same shard",
               static_cast<unsigned long long>(same.committed),
               same.mean_latency_us);
    bench::Row("  %-18s | %9llu | %17.0f", "cross shard",
               static_cast<unsigned long long>(cross.committed),
               cross.mean_latency_us);
    bench::Metric("latency_us_same_shard", same.mean_latency_us);
    bench::Metric("latency_us_cross_shard", cross.mean_latency_us);
    if (same.mean_latency_us > 0) {
      bench::Metric("cross_shard_premium",
                    cross.mean_latency_us / same.mean_latency_us);
    }
  }

  bench::Row("\n  -- live rebalance under load (3 shards, move shard0 -> shard2)");
  {
    RebalanceResult r = RunRebalanceUnderLoad(13201, txns);
    bench::Row("  move completed      : %s", r.move_completed ? "yes" : "NO");
    bench::Row("  move duration       : %.1f ms (bulk pulls %llu, settle pulls %llu)",
               r.move_ms, static_cast<unsigned long long>(r.bulk_pulls),
               static_cast<unsigned long long>(r.settle_pulls));
    bench::Row("  handoff window      : %.1f ms (range unavailable)",
               r.handoff_ms);
    bench::Row("  txns committed      : %llu (aborted after retries %llu, unknown %llu)",
               static_cast<unsigned long long>(r.committed),
               static_cast<unsigned long long>(r.aborted_final),
               static_cast<unsigned long long>(r.unknown));
    bench::Row("  router refreshes    : %llu (wrong-shard rejections seen)",
               static_cast<unsigned long long>(r.router_refreshes));
    bench::Row("  zero lost/duplicated: %s",
               r.zero_lost_or_dup ? "PASS (balances == model exactly)" : "FAIL");
    bench::Row("  money conserved     : %s", r.conserved ? "yes" : "NO");
    bench::Metric("rebalance_move_ms", r.move_ms);
    bench::Metric("rebalance_handoff_ms", r.handoff_ms);
    bench::Metric("rebalance_zero_lost_or_dup", r.zero_lost_or_dup ? 1 : 0);
    bench::Metric("rebalance_conserved", r.conserved ? 1 : 0);
    if (!r.move_completed || !r.zero_lost_or_dup || !r.conserved) return 1;
  }

  bench::Row("\n  Expect: txn/s grows with shard count (independent groups");
  bench::Row("  pipeline); cross-shard transfers pay roughly one extra prepare");
  bench::Row("  round trip; the rebalance completes with a bounded handoff");
  bench::Row("  window and the model check proves no commit was lost or");
  bench::Row("  applied twice while ownership moved.");
  return 0;
}
