// E1 — §3.7: "Remote calls in our system run only at the primary and need
// not involve the backups and therefore their performance is the same as in
// a non-replicated system."
//
// Measured: remote-call latency in a VR group of n = 1, 3, 5, 7 cohorts
// versus a plain non-replicated server, plus the count of background
// (off-critical-path) buffer messages per call. The call latency must be flat
// in n and match the non-replicated round trip.
#include "baseline/nonreplicated.h"
#include "bench/bench_common.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;

void RunVrRow(std::size_t replicas) {
  ClusterOptions opts;
  opts.seed = 1000 + replicas;
  Cluster cluster(opts);
  auto server = cluster.AddGroup("kv", replicas);
  auto client_g = cluster.AddGroup("client", 3);
  test::RegisterKvProcs(cluster, server);
  cluster.Start();
  if (!cluster.RunUntilStable()) {
    bench::Row("  VR n=%zu: failed to stabilize", replicas);
    return;
  }
  cluster.network().ResetStats();
  const int kTxns = 200;
  auto phases = bench::MeasureTxnPhases(cluster, client_g, server, kTxns);
  cluster.RunFor(1 * sim::kSecond);  // drain background traffic

  const auto& net = cluster.network().stats();
  const double batches =
      static_cast<double>(net.sent_by_type.count(
                              static_cast<std::uint16_t>(vr::MsgType::kBufferBatch))
                              ? net.sent_by_type.at(static_cast<std::uint16_t>(
                                    vr::MsgType::kBufferBatch))
                              : 0) /
      kTxns;
  bench::Row("  VR n=%zu          | call %8.0fus  p99 %8lluus | background buffer msgs/txn %5.1f",
             replicas, phases.call.Mean(),
             static_cast<unsigned long long>(phases.call.Percentile(99)),
             batches);
}

}  // namespace
}  // namespace vsr

int main() {
  using namespace vsr;
  bench::PrintHeader(
      "E1: remote call latency — VR vs non-replicated (§3.7)",
      "calls run entirely at the primary; latency equals the non-replicated "
      "system and is independent of the number of backups");

  // Non-replicated reference: one server, no replication, no stable-storage
  // force on the call path.
  {
    sim::Simulation simulation(999);
    net::Network network(simulation, {});
    storage::StableStore stable(simulation, {});
    baseline::StableServer server(simulation, network, 50, stable);
    baseline::StableClient client(simulation, network, 51, 50);
    workload::LatencyRecorder calls;
    for (int i = 0; i < 200; ++i) {
      bool done = false;
      client.RunTxn(1, [&](baseline::StableClient::TxnTiming t) {
        done = true;
        if (t.ok) calls.Add(t.call_latency);
      });
      simulation.scheduler().RunToQuiescence();
      if (!done) break;
    }
    bench::Row("  non-replicated   | call %8.0fus  p99 %8lluus |", calls.Mean(),
               static_cast<unsigned long long>(calls.Percentile(99)));
  }

  for (std::size_t n : {1u, 3u, 5u, 7u}) RunVrRow(n);

  bench::Row("\n  Expect: VR call latency ~= non-replicated and flat in n;");
  bench::Row("  only the background buffer-message count grows with n.");
  return 0;
}
