// E9 — §4.2: "if a majority of cohorts are crashed 'simultaneously', we may
// lose information about the module group's state. ... Note that a
// catastrophe does not cause a group to enter a new view missing some needed
// information. Rather, it causes the algorithm to never again form a new
// view. ... The probability of a catastrophe depends on the configuration."
//
// Measured: probability that the group never re-forms a view after a random
// crash storm, versus replication factor and storm width, plus the
// cur_viewid-durability ablation. Safety is also asserted: a catastrophe is
// always *unavailability*, never a wrong view.
#include "bench/bench_common.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;

struct CatastropheResult {
  int trials = 0;
  int catastrophes = 0;   // never stabilized again
  int wrong_views = 0;    // stabilized but lost committed state (must be 0!)
};

// Crash `width` cohorts within a tight window (some recover with empty
// state), then recover everyone and see whether a view forms and whether the
// committed state survived.
CatastropheResult RunTrials(std::size_t replicas, std::size_t width,
                            bool durable_viewid, int trials,
                            bool durable_log = false) {
  CatastropheResult out;
  for (int t = 0; t < trials; ++t) {
    ClusterOptions opts;
    opts.seed = 9000 + t * 131 + replicas * 7 + width + (durable_viewid ? 1 : 0);
    opts.cohort.write_viewid_durably = durable_viewid;
    opts.cohort.event_log.enabled = durable_log;
    Cluster cluster(opts);
    auto g = cluster.AddGroup("kv", replicas);
    auto client_g = cluster.AddGroup("client", 3);
    test::RegisterKvProcs(cluster, g);
    cluster.Start();
    if (!cluster.RunUntilStable()) continue;
    if (test::RunOneCall(cluster, client_g, g, "put", "vital=data") !=
        vr::TxnOutcome::kCommitted) {
      continue;
    }
    cluster.RunFor(200 * sim::kMillisecond);
    ++out.trials;

    // The storm: crash `width` distinct cohorts in a 20ms window.
    sim::Rng rng(opts.seed * 3 + 1);
    std::vector<std::size_t> order(replicas);
    for (std::size_t i = 0; i < replicas; ++i) order[i] = i;
    rng.Shuffle(order);
    for (std::size_t i = 0; i < width && i < replicas; ++i) {
      cluster.Crash(g, order[i]);
      cluster.RunFor(rng.UniformInt(1, 20) * sim::kMillisecond);
    }
    cluster.RunFor(100 * sim::kMillisecond);
    for (std::size_t i = 0; i < width && i < replicas; ++i) {
      cluster.Recover(g, order[i]);
    }

    const bool stable = cluster.RunUntilStable(15 * sim::kSecond);
    if (!stable) {
      ++out.catastrophes;
      continue;
    }
    // Safety: if a view formed, the committed write must have survived.
    if (test::CommittedValue(cluster, g, "vital") != "data") {
      ++out.wrong_views;
    }
  }
  return out;
}

}  // namespace
}  // namespace vsr

int main() {
  using namespace vsr;
  bench::PrintHeader(
      "E9: catastrophe probability without stable storage (§4.2)",
      "a 'simultaneous' majority crash can make the group never form a view "
      "again — but never form a WRONG view; replication lowers the odds");

  const int kTrials = 25;
  bench::Row("  %d trials per cell; storm = crash k cohorts within ~20ms and",
             kTrials);
  bench::Row("  recover them (volatile state lost); 'wrong views' must be 0");
  bench::Row("");
  bench::Row("  %-36s | catastrophes | wrong views", "configuration");
  for (std::size_t n : {3u, 5u}) {
    for (std::size_t width = 1; width <= n; ++width) {
      auto r = RunTrials(n, width, /*durable_viewid=*/true, kTrials);
      char label[64];
      std::snprintf(label, sizeof(label), "n=%zu, storm width %zu", n, width);
      bench::Row("  %-36s | %4d / %-4d  | %d", label, r.catastrophes, r.trials,
                 r.wrong_views);
    }
  }
  bench::Row("\n  Ablation: cur_viewid NOT written durably (recovered cohorts");
  bench::Row("  report viewid 0 in crash-acceptances):");
  for (std::size_t width : {2u, 3u}) {
    auto r = RunTrials(3, width, /*durable_viewid=*/false, kTrials);
    char label[64];
    std::snprintf(label, sizeof(label), "n=3, storm width %zu, no durable vid",
                  width);
    bench::Row("  %-36s | %4d / %-4d  | %d", label, r.catastrophes, r.trials,
               r.wrong_views);
  }

  bench::Row("\n  Ablation: write-behind durable event log ON (cohorts replay");
  bench::Row("  their disks and re-form via formation condition 4):");
  for (std::size_t n : {3u, 5u}) {
    for (std::size_t width = (n + 1) / 2; width <= n; ++width) {
      auto r = RunTrials(n, width, /*durable_viewid=*/true, kTrials,
                         /*durable_log=*/true);
      char label[64];
      std::snprintf(label, sizeof(label), "n=%zu, storm width %zu, durable log",
                    n, width);
      bench::Row("  %-36s | %4d / %-4d  | %d", label, r.catastrophes, r.trials,
                 r.wrong_views);
    }
  }

  bench::Row("\n  Expect: width < majority -> no catastrophe; width >= majority");
  bench::Row("  -> catastrophe whenever every member that knew the latest");
  bench::Row("  forced events was wiped (probability rises with width).");
  bench::Row("  'Wrong views' stays 0 in every cell: the algorithm prefers");
  bench::Row("  unavailability to inconsistency (§4.2).");
  return 0;
}
