// E8 — §3.6: "A lack of response causes the entire transaction to abort.
// Such an abort can cause lots of work to be lost. ... A better approach is
// to use nested transactions. ... we can abort just the subaction, and then
// do the call again as a new subaction. ... we need to abort and redo a call
// subaction only when the view changes; thus we do extra work only when the
// problem arises."
//
// Measured: a steady transfer workload with periodic server-primary crashes;
// commit rate and aborts with nested_call_retry off vs on, and the §3.6
// claim that retries happen only around view changes (retry count ~ number
// of interrupted calls, not proportional to total calls).
#include "bench/bench_common.h"
#include "workload/bank.h"
#include "workload/driver.h"

namespace vsr {
namespace {

using client::Cluster;
using client::ClusterOptions;

struct RunResult {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t unknown = 0;
  std::uint64_t retries = 0;
  double mean_latency_us = 0;
  bool money_conserved = false;
};

RunResult RunWorkload(std::uint64_t seed, bool nested, int crashes) {
  ClusterOptions opts;
  opts.seed = seed;
  opts.cohort.nested_call_retry = nested;
  Cluster cluster(opts);
  auto bank = cluster.AddGroup("bank", 3);
  auto client_g = cluster.AddGroup("client", 3);
  workload::RegisterBankProcs(cluster, bank);
  cluster.Start();
  RunResult out;
  if (!cluster.RunUntilStable()) return out;
  for (int i = 0; i < 4; ++i) {
    test::RunOneCall(cluster, client_g, bank, "open",
                     "a" + std::to_string(i) + "=1000");
  }

  // Crash the bank primary periodically during the run.
  for (int c = 0; c < crashes; ++c) {
    cluster.sim().scheduler().After(
        (500 + static_cast<sim::Duration>(c) * 2500) * sim::kMillisecond,
        [&cluster, bank] {
          auto cohorts = cluster.Cohorts(bank);
          for (std::size_t i = 0; i < cohorts.size(); ++i) {
            if (cohorts[i]->IsActivePrimary()) {
              // Recover a previously crashed cohort first so a majority of
              // up-to-date cohorts always remains.
              for (std::size_t j = 0; j < cohorts.size(); ++j) {
                if (cohorts[j]->status() == core::Status::kCrashed) {
                  cohorts[j]->Recover();
                }
              }
              cohorts[i]->Crash();
              return;
            }
          }
        });
  }

  sim::Rng rng(seed);
  workload::ClosedLoopDriver driver(
      cluster, client_g,
      [&, bank](std::uint64_t i) {
        const int from = static_cast<int>(i % 4);
        const int to = (from + 1 + static_cast<int>(rng.Index(3))) % 4;
        return workload::MakeTransferTxn(bank, "a" + std::to_string(from),
                                         bank, "a" + std::to_string(to), 1);
      },
      workload::DriverOptions{.total_txns = 200,
                              .max_inflight = 2,
                              .deadline = 120 * sim::kSecond});
  driver.Run();
  // Recover everyone and settle so blocked participants resolve.
  auto cohorts = cluster.Cohorts(bank);
  for (std::size_t i = 0; i < cohorts.size(); ++i) {
    if (cohorts[i]->status() == core::Status::kCrashed) cluster.Recover(bank, i);
  }
  cluster.RunUntilStable();
  cluster.RunFor(5 * sim::kSecond);

  out.committed = driver.accounting().committed;
  out.aborted = driver.accounting().aborted;
  out.unknown = driver.accounting().unknown;
  out.mean_latency_us = driver.latency().Mean();
  for (auto* c : cluster.Cohorts(client_g)) {
    out.retries += c->stats().subaction_retries;
  }
  out.money_conserved =
      out.unknown > 0 ||
      workload::CommittedBankTotal(cluster, bank, 4) == 4000;
  return out;
}

}  // namespace
}  // namespace vsr

int main() {
  using namespace vsr;
  bench::PrintHeader(
      "E8: nested transactions / subactions (§3.6)",
      "subactions avoid aborting the whole transaction when a call gets no "
      "reply across a view change; extra work only when the problem arises");

  bench::Row("  200 transfer txns, server primary crashed periodically");
  bench::Row("  %-28s | committed | aborted | unknown | sub-retries | conserved",
             "configuration");
  for (int crashes : {0, 3}) {
    for (bool nested : {false, true}) {
      RunResult r = RunWorkload(8000 + crashes * 2 + (nested ? 1 : 0), nested,
                                crashes);
      char label[64];
      std::snprintf(label, sizeof(label), "%d crashes, subactions %s", crashes,
                    nested ? "ON" : "off");
      bench::Row("  %-28s | %9llu | %7llu | %7llu | %11llu | %s", label,
                 static_cast<unsigned long long>(r.committed),
                 static_cast<unsigned long long>(r.aborted),
                 static_cast<unsigned long long>(r.unknown),
                 static_cast<unsigned long long>(r.retries),
                 r.money_conserved ? "yes" : "NO");
    }
  }

  bench::Row("\n  Expect: without crashes both configurations behave alike and");
  bench::Row("  no retries happen (§3.6: 'we do extra work only when the");
  bench::Row("  problem arises'). With crashes, subactions convert most");
  bench::Row("  would-be aborts into commits at the cost of a few retries.");
  return 0;
}
