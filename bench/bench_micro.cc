// Micro-benchmarks of the hot substrate paths (google-benchmark): message
// serialization, CRC32 framing, scheduler event throughput, lock manager
// operations, and a whole simulated transaction end-to-end.
#include <benchmark/benchmark.h>

#include "client/cluster.h"
#include "sim/scheduler.h"
#include "tests/test_util.h"
#include "txn/object_store.h"
#include "vr/comm_buffer.h"
#include "vr/messages.h"
#include "wire/buffer.h"

namespace vsr {
namespace {

vr::CallMsg SampleCall() {
  vr::CallMsg m;
  m.group = 42;
  m.viewid = {7, 3};
  m.call_id = 99;
  m.call_seq = (5ull << 32) | 17;
  m.reply_to = 11;
  m.sub_aid = {vr::Aid{1, {2, 3}, 4}, 2};
  m.proc = "transfer";
  m.args.assign(64, 0xab);
  return m;
}

void BM_EncodeCallMsg(benchmark::State& state) {
  const vr::CallMsg m = SampleCall();
  for (auto _ : state) {
    auto bytes = vr::EncodeMsg(m);
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_EncodeCallMsg);

void BM_DecodeCallMsg(benchmark::State& state) {
  const auto bytes = vr::EncodeMsg(SampleCall());
  for (auto _ : state) {
    wire::Reader r(bytes);
    auto m = vr::CallMsg::Decode(r);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_DecodeCallMsg);

void BM_Crc32(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::Crc32(data));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SchedulerEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    int count = 0;
    for (int i = 0; i < 1000; ++i) {
      sched.At(static_cast<sim::Time>(i), [&count] { ++count; });
    }
    sched.RunToQuiescence();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerEventThroughput);

void BM_LockAcquireRelease(benchmark::State& state) {
  sim::Simulation simulation(1);
  txn::ObjectStore store(simulation);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    vr::Aid aid{1, {1, 1}, ++seq};
    store.TryAcquire("x", aid, vr::LockMode::kWrite);
    store.WriteTentative("x", {aid, 0}, "v");
    store.Commit(aid);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockAcquireRelease);

void BM_CommBufferReplication(benchmark::State& state) {
  // The windowed replication hot path: add a record, deliver the batch,
  // process both backup acks, GC the prefix. range(0) is the ack lag —
  // how many records the backups trail behind the primary (0 = lockstep).
  const std::uint64_t lag = static_cast<std::uint64_t>(state.range(0));
  sim::Simulation simulation(1);
  vr::History history;
  vr::ViewId vid{1, 1};
  history.OpenView(vid);
  std::uint64_t batches = 0;
  const vr::CommBufferOptions bopts;
  vr::CommBuffer buffer(
      simulation, bopts,
      [&batches](vr::Mid, const vr::BufferBatchMsg&) { ++batches; }, [] {});
  buffer.StartView(vid, {2, 3}, 3, 1, 1, &history);
  std::uint64_t ts = 0;
  for (auto _ : state) {
    ts = buffer.Add(vr::EventRecord::Done(vr::Aid{1, vid, ts})).ts;
    // A bounded slice (not quiescence: the retransmit deadline of a lagging
    // backup is always armed) — long enough for the background flush.
    simulation.scheduler().RunUntil(simulation.Now() + bopts.flush_delay + 1);
    if (ts > lag) {
      vr::BufferAckMsg ack;
      ack.group = 1;
      ack.viewid = vid;
      ack.ts = ts - lag;
      ack.from = 2;
      buffer.OnAck(ack);
      ack.from = 3;
      buffer.OnAck(ack);
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["records_sent"] =
      static_cast<double>(buffer.stats().records_sent);
  state.counters["retransmitted"] =
      static_cast<double>(buffer.stats().records_retransmitted);
  state.counters["gced"] = static_cast<double>(buffer.stats().records_gced);
  state.counters["resident_high_water"] =
      static_cast<double>(buffer.stats().buffer_high_water);
  benchmark::DoNotOptimize(batches);
}
BENCHMARK(BM_CommBufferReplication)->Arg(0)->Arg(64)->Arg(1024);

void BM_SimulatedTransaction(benchmark::State& state) {
  // End-to-end: one committed single-call transaction on a 3-replica group,
  // measured in host time (how fast the simulator itself runs).
  client::Cluster cluster(client::ClusterOptions{.seed = 77});
  auto server = cluster.AddGroup("kv", 3);
  auto client_g = cluster.AddGroup("client", 3);
  test::RegisterKvProcs(cluster, server);
  cluster.Start();
  cluster.RunUntilStable();
  for (auto _ : state) {
    core::Cohort* primary = cluster.AnyPrimary(client_g);
    bool done = false;
    primary->SpawnTransaction(
        [server](core::TxnHandle& h) -> sim::Task<bool> {
          co_await h.Call(server, "put", std::string("k=v"));
          co_return true;
        },
        [&done](vr::TxnOutcome) { done = true; });
    while (!done) cluster.RunFor(1 * sim::kMillisecond);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedTransaction);

}  // namespace
}  // namespace vsr

BENCHMARK_MAIN();
