// Micro-benchmarks of the hot substrate paths (google-benchmark): message
// serialization, CRC32 framing, scheduler event throughput, lock manager
// operations, and a whole simulated transaction end-to-end.
#include <benchmark/benchmark.h>

#include "client/cluster.h"
#include "sim/scheduler.h"
#include "tests/test_util.h"
#include "txn/object_store.h"
#include "vr/messages.h"
#include "wire/buffer.h"

namespace vsr {
namespace {

vr::CallMsg SampleCall() {
  vr::CallMsg m;
  m.group = 42;
  m.viewid = {7, 3};
  m.call_id = 99;
  m.call_seq = (5ull << 32) | 17;
  m.reply_to = 11;
  m.sub_aid = {vr::Aid{1, {2, 3}, 4}, 2};
  m.proc = "transfer";
  m.args.assign(64, 0xab);
  return m;
}

void BM_EncodeCallMsg(benchmark::State& state) {
  const vr::CallMsg m = SampleCall();
  for (auto _ : state) {
    auto bytes = vr::EncodeMsg(m);
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_EncodeCallMsg);

void BM_DecodeCallMsg(benchmark::State& state) {
  const auto bytes = vr::EncodeMsg(SampleCall());
  for (auto _ : state) {
    wire::Reader r(bytes);
    auto m = vr::CallMsg::Decode(r);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_DecodeCallMsg);

void BM_Crc32(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::Crc32(data));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SchedulerEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    int count = 0;
    for (int i = 0; i < 1000; ++i) {
      sched.At(static_cast<sim::Time>(i), [&count] { ++count; });
    }
    sched.RunToQuiescence();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerEventThroughput);

void BM_LockAcquireRelease(benchmark::State& state) {
  sim::Simulation simulation(1);
  txn::ObjectStore store(simulation);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    vr::Aid aid{1, {1, 1}, ++seq};
    store.TryAcquire("x", aid, vr::LockMode::kWrite);
    store.WriteTentative("x", {aid, 0}, "v");
    store.Commit(aid);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockAcquireRelease);

void BM_SimulatedTransaction(benchmark::State& state) {
  // End-to-end: one committed single-call transaction on a 3-replica group,
  // measured in host time (how fast the simulator itself runs).
  client::Cluster cluster(client::ClusterOptions{.seed = 77});
  auto server = cluster.AddGroup("kv", 3);
  auto client_g = cluster.AddGroup("client", 3);
  test::RegisterKvProcs(cluster, server);
  cluster.Start();
  cluster.RunUntilStable();
  for (auto _ : state) {
    core::Cohort* primary = cluster.AnyPrimary(client_g);
    bool done = false;
    primary->SpawnTransaction(
        [server](core::TxnHandle& h) -> sim::Task<bool> {
          co_await h.Call(server, "put", std::string("k=v"));
          co_return true;
        },
        [&done](vr::TxnOutcome) { done = true; });
    while (!done) cluster.RunFor(1 * sim::kMillisecond);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedTransaction);

}  // namespace
}  // namespace vsr

BENCHMARK_MAIN();
