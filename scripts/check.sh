#!/usr/bin/env bash
# Full verification pipeline: build, test, regenerate every experiment, run
# the examples. This is what CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo "== experiments =="
for b in build/bench/*; do "$b"; done

echo "== examples =="
for e in build/examples/*; do
  echo "--- $(basename "$e")"
  "$e" > /dev/null && echo "    OK"
done
echo "ALL GREEN"
