#!/usr/bin/env bash
# Full verification pipeline: build, test, regenerate every experiment, run
# the examples. This is what CI would run. Matches the tier-1 recipe:
#   cmake -B build -S . && cmake --build build -j && ctest -j
# Ninja is used when present but never required.
#
# CHECK_SANITIZE=1 additionally builds an ASan/UBSan tree (build-sanitize/)
# and runs the replication-path test suites under it.
#
# CHECK_BENCH_SMOKE=1 runs every bench binary at ~1/10th workload (see
# bench::Scaled) and bench_micro for a single tiny iteration — catches bench
# bit-rot in seconds instead of waiting for full experiment runs.
#
# CHECK_SOAK=1 re-runs the dead-backup soak at ~10x rounds: with one backup
# permanently crashed, the primary's resident record vector must stay
# O(window) (the StableTs() - window GC floor, DESIGN.md §9). It also scales
# up the majority-loss storm soak (durable-log recovery + serializability
# chain, DESIGN.md §10).
#
# CHECK_REAL_HOST=1 builds a ThreadSanitizer tree (build-tsan/) and runs the
# genuinely multithreaded code — host conformance + the socket-host
# integration smokes (3 replicas over real TCP loopback with a primary kill,
# and cross-group fused 2PC, DESIGN.md §13) — under it, plus a plain-build
# vrd run.
set -euo pipefail
cd "$(dirname "$0")/.."

# Repo hygiene gate: build output must never be tracked (PR 2 accidentally
# committed ~1,400 artifacts) and must stay covered by .gitignore — an
# untracked *.o / build*/ entry in `git status` means the ignore rules
# regressed.
if git ls-files | grep -E '^(build[^/]*|Testing)/|\.o$' >/tmp/check_tracked.$$; then
  echo "FAIL: build artifacts are tracked by git:" >&2
  head -20 /tmp/check_tracked.$$ >&2
  rm -f /tmp/check_tracked.$$
  exit 1
fi
rm -f /tmp/check_tracked.$$
if git status --porcelain | grep -E '^\?\? (build[^/]*/|Testing/|.*\.(o|a)$)' \
    >/tmp/check_untracked.$$; then
  echo "FAIL: untracked build artifacts (update .gitignore):" >&2
  head -20 /tmp/check_untracked.$$ >&2
  rm -f /tmp/check_untracked.$$
  exit 1
fi
rm -f /tmp/check_untracked.$$

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
# Prefer Ninja for fresh build trees; an already-configured tree keeps its
# generator (switching generators on an existing cache is a CMake error).
generator_for() {
  if [[ ! -f "$1/CMakeCache.txt" ]] && command -v ninja >/dev/null 2>&1; then
    echo "-G" "Ninja"
  fi
}

cmake -B build -S . $(generator_for build)
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${CHECK_SANITIZE:-0}" == "1" ]]; then
  echo "== sanitizers (ASan + UBSan) =="
  cmake -B build-sanitize -S . $(generator_for build-sanitize) \
    -DCMAKE_BUILD_TYPE=Debug -DVSR_SANITIZE=ON
  cmake --build build-sanitize -j "$JOBS"
  # The comm-buffer / replication-path suites, where the windowed protocol
  # does pointer arithmetic over the GC'd record vector.
  ctest --test-dir build-sanitize --output-on-failure -j "$JOBS" \
    -R 'vr_test|net_test|wire_test|protocol_edge_test|property_test|snapshot_test|storage_test|recovery_test|view_formation_test|sharding_test|lease_read_test|host_conformance_test|socket_host_test'
fi

if [[ "${CHECK_REAL_HOST:-0}" == "1" ]]; then
  echo "== real host (ThreadSanitizer) =="
  cmake -B build-tsan -S . $(generator_for build-tsan) \
    -DCMAKE_BUILD_TYPE=Debug -DVSR_TSAN=ON
  cmake --build build-tsan -j "$JOBS" --target \
    host_conformance_test socket_host_test vrd
  # The only truly concurrent code in the tree: event loop, socket
  # transport, loopback cluster. Everything protocol-side stays on one
  # host thread per node, and TSan verifies exactly that.
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'host_conformance_test|socket_host_test'
  echo "== real host (vrd smoke: sockets + view change) =="
  build/src/host/vrd --txns 300 --kill-primary
fi

if [[ "${CHECK_SOAK:-0}" == "1" ]]; then
  echo "== soak (dead backup, GC bound) =="
  CHECK_SOAK=1 build/tests/soak_test --gtest_filter='DeadBackupSoak.*'
  echo "== soak (fused commits under coordinator crashes) =="
  CHECK_SOAK=1 build/tests/soak_test --gtest_filter='CommitFusionCrashSoak.*'
  echo "== soak (majority-loss storms, durable-log recovery) =="
  CHECK_SOAK=1 build/tests/recovery_test --gtest_filter='StormSoak.*'
  echo "== soak (backup-read leases across primary crashes) =="
  CHECK_SOAK=1 build/tests/lease_read_test --gtest_filter='LeaseSoak.*'
fi

echo "== experiments =="
for b in build/bench/*; do
  [[ -f "$b" && -x "$b" ]] || continue  # skip CMake droppings
  if [[ "${CHECK_BENCH_SMOKE:-0}" == "1" ]]; then
    # Shrunken run: Scaled-aware benches read the env var; bench_micro
    # (google-benchmark) gets a near-zero min_time for one tiny iteration.
    extra=()
    [[ "$(basename "$b")" == "bench_micro" ]] && extra=(--benchmark_min_time=0.001)
    CHECK_BENCH_SMOKE=1 "$b" "${extra[@]}" > /dev/null && echo "--- $(basename "$b") OK"
  else
    "$b"
  fi
done
# Every E* bench must have emitted its machine-readable BENCH_<ID>.json
# (bench_common.h JsonSink) in the working directory it ran from.
for b in build/bench/bench_e*; do
  [[ -f "$b" && -x "$b" ]] || continue
  id="$(basename "$b" | sed -E 's/^bench_(e[0-9]+).*/\U\1/')"
  if [[ ! -s "BENCH_${id}.json" ]]; then
    echo "FAIL: $(basename "$b") did not write BENCH_${id}.json" >&2
    exit 1
  fi
done
# The E2 commit-fusion ablation (DESIGN.md §13) must have produced both
# sides of the fused-vs-serial comparison.
for key in fused_decision_us serial_decision_us \
           fused_client_path_forces_per_commit \
           serial_client_path_forces_per_commit; do
  if ! grep -q "\"${key}\"" BENCH_E2.json; then
    echo "FAIL: BENCH_E2.json is missing the fusion-ablation metric ${key}" >&2
    exit 1
  fi
done
# The E15 backup-read experiment (DESIGN.md §14) must have produced both
# sides of the lease ablation plus the serializability audit, and — on full
# (non-smoke) runs — hit the >= 2x read scale-out the design promises.
for key in reads_per_s_off reads_per_s_on read_throughput_multiplier \
           backup_reads_served leases_granted serializability_violations; do
  if ! grep -q "\"${key}\"" BENCH_E15.json; then
    echo "FAIL: BENCH_E15.json is missing the lease metric ${key}" >&2
    exit 1
  fi
done
if ! awk '/"serializability_violations"/ { gsub(/[,"]/, ""); v = $2 }
          END { exit (v == 0) ? 0 : 1 }' BENCH_E15.json; then
  echo "FAIL: BENCH_E15.json reports serializability violations" >&2
  exit 1
fi
if [[ "${CHECK_BENCH_SMOKE:-0}" != "1" ]]; then
  if ! awk '/"read_throughput_multiplier"/ { gsub(/[,"]/, ""); m = $2 }
            END { exit (m >= 2.0) ? 0 : 1 }' BENCH_E15.json; then
    echo "FAIL: BENCH_E15.json read_throughput_multiplier is below 2x" >&2
    exit 1
  fi
fi

echo "== examples =="
for e in build/examples/*; do
  [[ -f "$e" && -x "$e" ]] || continue
  echo "--- $(basename "$e")"
  "$e" > /dev/null && echo "    OK"
done
echo "ALL GREEN"
