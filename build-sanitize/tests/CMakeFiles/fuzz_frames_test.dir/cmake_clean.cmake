file(REMOVE_RECURSE
  "CMakeFiles/fuzz_frames_test.dir/fuzz_frames_test.cc.o"
  "CMakeFiles/fuzz_frames_test.dir/fuzz_frames_test.cc.o.d"
  "fuzz_frames_test"
  "fuzz_frames_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_frames_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
