# Empty dependencies file for fuzz_frames_test.
# This may be replaced when dependencies are built.
