file(REMOVE_RECURSE
  "CMakeFiles/subaction_test.dir/subaction_test.cc.o"
  "CMakeFiles/subaction_test.dir/subaction_test.cc.o.d"
  "subaction_test"
  "subaction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
