# Empty dependencies file for subaction_test.
# This may be replaced when dependencies are built.
