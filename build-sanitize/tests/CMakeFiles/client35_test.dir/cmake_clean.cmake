file(REMOVE_RECURSE
  "CMakeFiles/client35_test.dir/client35_test.cc.o"
  "CMakeFiles/client35_test.dir/client35_test.cc.o.d"
  "client35_test"
  "client35_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client35_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
