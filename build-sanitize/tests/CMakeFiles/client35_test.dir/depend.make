# Empty dependencies file for client35_test.
# This may be replaced when dependencies are built.
