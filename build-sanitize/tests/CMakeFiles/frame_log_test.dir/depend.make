# Empty dependencies file for frame_log_test.
# This may be replaced when dependencies are built.
