file(REMOVE_RECURSE
  "CMakeFiles/frame_log_test.dir/frame_log_test.cc.o"
  "CMakeFiles/frame_log_test.dir/frame_log_test.cc.o.d"
  "frame_log_test"
  "frame_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
