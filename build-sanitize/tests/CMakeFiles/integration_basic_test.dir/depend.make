# Empty dependencies file for integration_basic_test.
# This may be replaced when dependencies are built.
