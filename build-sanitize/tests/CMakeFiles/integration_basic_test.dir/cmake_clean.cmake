file(REMOVE_RECURSE
  "CMakeFiles/integration_basic_test.dir/integration_basic_test.cc.o"
  "CMakeFiles/integration_basic_test.dir/integration_basic_test.cc.o.d"
  "integration_basic_test"
  "integration_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
