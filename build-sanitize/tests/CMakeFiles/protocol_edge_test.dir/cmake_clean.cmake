file(REMOVE_RECURSE
  "CMakeFiles/protocol_edge_test.dir/protocol_edge_test.cc.o"
  "CMakeFiles/protocol_edge_test.dir/protocol_edge_test.cc.o.d"
  "protocol_edge_test"
  "protocol_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
