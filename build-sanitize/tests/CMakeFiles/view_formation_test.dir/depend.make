# Empty dependencies file for view_formation_test.
# This may be replaced when dependencies are built.
