
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/view_formation_test.cc" "tests/CMakeFiles/view_formation_test.dir/view_formation_test.cc.o" "gcc" "tests/CMakeFiles/view_formation_test.dir/view_formation_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/client/CMakeFiles/vsr_client.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/core/CMakeFiles/vsr_core.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/txn/CMakeFiles/vsr_txn.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/vr/CMakeFiles/vsr_vr.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/net/CMakeFiles/vsr_net.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/wire/CMakeFiles/vsr_wire.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/sim/CMakeFiles/vsr_sim.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/check/CMakeFiles/vsr_check.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/baseline/CMakeFiles/vsr_baseline.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/workload/CMakeFiles/vsr_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
