file(REMOVE_RECURSE
  "CMakeFiles/view_formation_test.dir/view_formation_test.cc.o"
  "CMakeFiles/view_formation_test.dir/view_formation_test.cc.o.d"
  "view_formation_test"
  "view_formation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_formation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
