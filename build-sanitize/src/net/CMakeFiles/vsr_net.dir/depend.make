# Empty dependencies file for vsr_net.
# This may be replaced when dependencies are built.
