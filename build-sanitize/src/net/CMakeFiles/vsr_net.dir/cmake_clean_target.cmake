file(REMOVE_RECURSE
  "libvsr_net.a"
)
