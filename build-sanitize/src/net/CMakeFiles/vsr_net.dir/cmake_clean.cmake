file(REMOVE_RECURSE
  "CMakeFiles/vsr_net.dir/network.cc.o"
  "CMakeFiles/vsr_net.dir/network.cc.o.d"
  "libvsr_net.a"
  "libvsr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
