# Empty dependencies file for vsr_client.
# This may be replaced when dependencies are built.
