file(REMOVE_RECURSE
  "CMakeFiles/vsr_client.dir/cluster.cc.o"
  "CMakeFiles/vsr_client.dir/cluster.cc.o.d"
  "CMakeFiles/vsr_client.dir/debug.cc.o"
  "CMakeFiles/vsr_client.dir/debug.cc.o.d"
  "CMakeFiles/vsr_client.dir/unreplicated_client.cc.o"
  "CMakeFiles/vsr_client.dir/unreplicated_client.cc.o.d"
  "libvsr_client.a"
  "libvsr_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsr_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
