file(REMOVE_RECURSE
  "libvsr_client.a"
)
