file(REMOVE_RECURSE
  "CMakeFiles/vsr_vr.dir/comm_buffer.cc.o"
  "CMakeFiles/vsr_vr.dir/comm_buffer.cc.o.d"
  "CMakeFiles/vsr_vr.dir/events.cc.o"
  "CMakeFiles/vsr_vr.dir/events.cc.o.d"
  "CMakeFiles/vsr_vr.dir/messages.cc.o"
  "CMakeFiles/vsr_vr.dir/messages.cc.o.d"
  "CMakeFiles/vsr_vr.dir/view_formation.cc.o"
  "CMakeFiles/vsr_vr.dir/view_formation.cc.o.d"
  "libvsr_vr.a"
  "libvsr_vr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsr_vr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
