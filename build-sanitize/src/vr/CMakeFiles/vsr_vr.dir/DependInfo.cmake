
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vr/comm_buffer.cc" "src/vr/CMakeFiles/vsr_vr.dir/comm_buffer.cc.o" "gcc" "src/vr/CMakeFiles/vsr_vr.dir/comm_buffer.cc.o.d"
  "/root/repo/src/vr/events.cc" "src/vr/CMakeFiles/vsr_vr.dir/events.cc.o" "gcc" "src/vr/CMakeFiles/vsr_vr.dir/events.cc.o.d"
  "/root/repo/src/vr/messages.cc" "src/vr/CMakeFiles/vsr_vr.dir/messages.cc.o" "gcc" "src/vr/CMakeFiles/vsr_vr.dir/messages.cc.o.d"
  "/root/repo/src/vr/view_formation.cc" "src/vr/CMakeFiles/vsr_vr.dir/view_formation.cc.o" "gcc" "src/vr/CMakeFiles/vsr_vr.dir/view_formation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/sim/CMakeFiles/vsr_sim.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/wire/CMakeFiles/vsr_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
