# Empty dependencies file for vsr_vr.
# This may be replaced when dependencies are built.
