file(REMOVE_RECURSE
  "libvsr_vr.a"
)
