# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-sanitize/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("wire")
subdirs("net")
subdirs("storage")
subdirs("vr")
subdirs("txn")
subdirs("core")
subdirs("client")
subdirs("baseline")
subdirs("workload")
subdirs("check")
