file(REMOVE_RECURSE
  "CMakeFiles/vsr_sim.dir/rng.cc.o"
  "CMakeFiles/vsr_sim.dir/rng.cc.o.d"
  "CMakeFiles/vsr_sim.dir/scheduler.cc.o"
  "CMakeFiles/vsr_sim.dir/scheduler.cc.o.d"
  "CMakeFiles/vsr_sim.dir/time.cc.o"
  "CMakeFiles/vsr_sim.dir/time.cc.o.d"
  "CMakeFiles/vsr_sim.dir/trace.cc.o"
  "CMakeFiles/vsr_sim.dir/trace.cc.o.d"
  "libvsr_sim.a"
  "libvsr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
