file(REMOVE_RECURSE
  "libvsr_sim.a"
)
