# Empty dependencies file for vsr_sim.
# This may be replaced when dependencies are built.
