file(REMOVE_RECURSE
  "CMakeFiles/vsr_check.dir/invariants.cc.o"
  "CMakeFiles/vsr_check.dir/invariants.cc.o.d"
  "libvsr_check.a"
  "libvsr_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsr_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
