# Empty dependencies file for vsr_check.
# This may be replaced when dependencies are built.
