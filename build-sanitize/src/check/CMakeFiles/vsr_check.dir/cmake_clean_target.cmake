file(REMOVE_RECURSE
  "libvsr_check.a"
)
