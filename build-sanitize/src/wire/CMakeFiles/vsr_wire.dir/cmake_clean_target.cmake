file(REMOVE_RECURSE
  "libvsr_wire.a"
)
