file(REMOVE_RECURSE
  "CMakeFiles/vsr_wire.dir/buffer.cc.o"
  "CMakeFiles/vsr_wire.dir/buffer.cc.o.d"
  "libvsr_wire.a"
  "libvsr_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsr_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
