# Empty dependencies file for vsr_wire.
# This may be replaced when dependencies are built.
