file(REMOVE_RECURSE
  "CMakeFiles/vsr_baseline.dir/models.cc.o"
  "CMakeFiles/vsr_baseline.dir/models.cc.o.d"
  "CMakeFiles/vsr_baseline.dir/nonreplicated.cc.o"
  "CMakeFiles/vsr_baseline.dir/nonreplicated.cc.o.d"
  "CMakeFiles/vsr_baseline.dir/nonreplicated_viewstamped.cc.o"
  "CMakeFiles/vsr_baseline.dir/nonreplicated_viewstamped.cc.o.d"
  "CMakeFiles/vsr_baseline.dir/voting.cc.o"
  "CMakeFiles/vsr_baseline.dir/voting.cc.o.d"
  "libvsr_baseline.a"
  "libvsr_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsr_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
