file(REMOVE_RECURSE
  "libvsr_baseline.a"
)
