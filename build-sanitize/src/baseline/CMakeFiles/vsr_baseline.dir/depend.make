# Empty dependencies file for vsr_baseline.
# This may be replaced when dependencies are built.
