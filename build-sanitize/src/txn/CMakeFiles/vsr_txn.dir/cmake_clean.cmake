file(REMOVE_RECURSE
  "CMakeFiles/vsr_txn.dir/object_store.cc.o"
  "CMakeFiles/vsr_txn.dir/object_store.cc.o.d"
  "libvsr_txn.a"
  "libvsr_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsr_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
