# Empty dependencies file for vsr_txn.
# This may be replaced when dependencies are built.
