file(REMOVE_RECURSE
  "libvsr_txn.a"
)
