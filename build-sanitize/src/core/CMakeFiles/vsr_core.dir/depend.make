# Empty dependencies file for vsr_core.
# This may be replaced when dependencies are built.
