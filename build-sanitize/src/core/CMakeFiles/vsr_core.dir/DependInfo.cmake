
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cohort.cc" "src/core/CMakeFiles/vsr_core.dir/cohort.cc.o" "gcc" "src/core/CMakeFiles/vsr_core.dir/cohort.cc.o.d"
  "/root/repo/src/core/txn_coord.cc" "src/core/CMakeFiles/vsr_core.dir/txn_coord.cc.o" "gcc" "src/core/CMakeFiles/vsr_core.dir/txn_coord.cc.o.d"
  "/root/repo/src/core/txn_server.cc" "src/core/CMakeFiles/vsr_core.dir/txn_server.cc.o" "gcc" "src/core/CMakeFiles/vsr_core.dir/txn_server.cc.o.d"
  "/root/repo/src/core/view_change.cc" "src/core/CMakeFiles/vsr_core.dir/view_change.cc.o" "gcc" "src/core/CMakeFiles/vsr_core.dir/view_change.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/vr/CMakeFiles/vsr_vr.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/txn/CMakeFiles/vsr_txn.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/net/CMakeFiles/vsr_net.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/sim/CMakeFiles/vsr_sim.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/wire/CMakeFiles/vsr_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
