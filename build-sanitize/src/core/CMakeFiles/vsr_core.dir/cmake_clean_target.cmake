file(REMOVE_RECURSE
  "libvsr_core.a"
)
