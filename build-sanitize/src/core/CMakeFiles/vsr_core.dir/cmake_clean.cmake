file(REMOVE_RECURSE
  "CMakeFiles/vsr_core.dir/cohort.cc.o"
  "CMakeFiles/vsr_core.dir/cohort.cc.o.d"
  "CMakeFiles/vsr_core.dir/txn_coord.cc.o"
  "CMakeFiles/vsr_core.dir/txn_coord.cc.o.d"
  "CMakeFiles/vsr_core.dir/txn_server.cc.o"
  "CMakeFiles/vsr_core.dir/txn_server.cc.o.d"
  "CMakeFiles/vsr_core.dir/view_change.cc.o"
  "CMakeFiles/vsr_core.dir/view_change.cc.o.d"
  "libvsr_core.a"
  "libvsr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
