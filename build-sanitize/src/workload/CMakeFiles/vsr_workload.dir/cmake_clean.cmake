file(REMOVE_RECURSE
  "CMakeFiles/vsr_workload.dir/airline.cc.o"
  "CMakeFiles/vsr_workload.dir/airline.cc.o.d"
  "CMakeFiles/vsr_workload.dir/bank.cc.o"
  "CMakeFiles/vsr_workload.dir/bank.cc.o.d"
  "libvsr_workload.a"
  "libvsr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
