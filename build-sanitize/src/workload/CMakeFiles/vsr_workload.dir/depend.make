# Empty dependencies file for vsr_workload.
# This may be replaced when dependencies are built.
