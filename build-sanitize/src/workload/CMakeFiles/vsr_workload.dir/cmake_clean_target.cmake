file(REMOVE_RECURSE
  "libvsr_workload.a"
)
