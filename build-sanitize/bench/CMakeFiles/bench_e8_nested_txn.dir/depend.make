# Empty dependencies file for bench_e8_nested_txn.
# This may be replaced when dependencies are built.
