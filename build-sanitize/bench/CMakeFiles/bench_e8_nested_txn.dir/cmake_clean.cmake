file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_nested_txn.dir/bench_e8_nested_txn.cc.o"
  "CMakeFiles/bench_e8_nested_txn.dir/bench_e8_nested_txn.cc.o.d"
  "bench_e8_nested_txn"
  "bench_e8_nested_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_nested_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
