file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_lost_work.dir/bench_e5_lost_work.cc.o"
  "CMakeFiles/bench_e5_lost_work.dir/bench_e5_lost_work.cc.o.d"
  "bench_e5_lost_work"
  "bench_e5_lost_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_lost_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
