# Empty dependencies file for bench_e5_lost_work.
# This may be replaced when dependencies are built.
