file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_vs_voting.dir/bench_e3_vs_voting.cc.o"
  "CMakeFiles/bench_e3_vs_voting.dir/bench_e3_vs_voting.cc.o.d"
  "bench_e3_vs_voting"
  "bench_e3_vs_voting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_vs_voting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
