# Empty dependencies file for bench_e3_vs_voting.
# This may be replaced when dependencies are built.
