# Empty dependencies file for bench_e2_commit_vs_stable.
# This may be replaced when dependencies are built.
