file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_commit_vs_stable.dir/bench_e2_commit_vs_stable.cc.o"
  "CMakeFiles/bench_e2_commit_vs_stable.dir/bench_e2_commit_vs_stable.cc.o.d"
  "bench_e2_commit_vs_stable"
  "bench_e2_commit_vs_stable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_commit_vs_stable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
