# Empty dependencies file for bench_e6_vs_virtual_partitions.
# This may be replaced when dependencies are built.
