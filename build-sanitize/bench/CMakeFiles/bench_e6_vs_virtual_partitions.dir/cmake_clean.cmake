file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_vs_virtual_partitions.dir/bench_e6_vs_virtual_partitions.cc.o"
  "CMakeFiles/bench_e6_vs_virtual_partitions.dir/bench_e6_vs_virtual_partitions.cc.o.d"
  "bench_e6_vs_virtual_partitions"
  "bench_e6_vs_virtual_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_vs_virtual_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
