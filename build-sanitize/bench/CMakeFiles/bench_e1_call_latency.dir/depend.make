# Empty dependencies file for bench_e1_call_latency.
# This may be replaced when dependencies are built.
