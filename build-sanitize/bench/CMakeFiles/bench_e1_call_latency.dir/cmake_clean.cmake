file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_call_latency.dir/bench_e1_call_latency.cc.o"
  "CMakeFiles/bench_e1_call_latency.dir/bench_e1_call_latency.cc.o.d"
  "bench_e1_call_latency"
  "bench_e1_call_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_call_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
