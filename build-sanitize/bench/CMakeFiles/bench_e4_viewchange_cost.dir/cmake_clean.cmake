file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_viewchange_cost.dir/bench_e4_viewchange_cost.cc.o"
  "CMakeFiles/bench_e4_viewchange_cost.dir/bench_e4_viewchange_cost.cc.o.d"
  "bench_e4_viewchange_cost"
  "bench_e4_viewchange_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_viewchange_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
