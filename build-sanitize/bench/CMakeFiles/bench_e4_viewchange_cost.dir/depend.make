# Empty dependencies file for bench_e4_viewchange_cost.
# This may be replaced when dependencies are built.
