# Empty dependencies file for bench_e7_availability.
# This may be replaced when dependencies are built.
