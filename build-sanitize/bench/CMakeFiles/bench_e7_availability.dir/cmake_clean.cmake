file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_availability.dir/bench_e7_availability.cc.o"
  "CMakeFiles/bench_e7_availability.dir/bench_e7_availability.cc.o.d"
  "bench_e7_availability"
  "bench_e7_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
