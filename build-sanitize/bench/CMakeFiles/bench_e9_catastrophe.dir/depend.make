# Empty dependencies file for bench_e9_catastrophe.
# This may be replaced when dependencies are built.
