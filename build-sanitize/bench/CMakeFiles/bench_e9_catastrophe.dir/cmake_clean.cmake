file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_catastrophe.dir/bench_e9_catastrophe.cc.o"
  "CMakeFiles/bench_e9_catastrophe.dir/bench_e9_catastrophe.cc.o.d"
  "bench_e9_catastrophe"
  "bench_e9_catastrophe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_catastrophe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
