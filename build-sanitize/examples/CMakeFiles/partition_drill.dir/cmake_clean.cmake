file(REMOVE_RECURSE
  "CMakeFiles/partition_drill.dir/partition_drill.cpp.o"
  "CMakeFiles/partition_drill.dir/partition_drill.cpp.o.d"
  "partition_drill"
  "partition_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
