# Empty dependencies file for partition_drill.
# This may be replaced when dependencies are built.
