# Empty dependencies file for airline_reservation.
# This may be replaced when dependencies are built.
