file(REMOVE_RECURSE
  "CMakeFiles/airline_reservation.dir/airline_reservation.cpp.o"
  "CMakeFiles/airline_reservation.dir/airline_reservation.cpp.o.d"
  "airline_reservation"
  "airline_reservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airline_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
