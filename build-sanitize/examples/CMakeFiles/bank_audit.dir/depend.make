# Empty dependencies file for bank_audit.
# This may be replaced when dependencies are built.
