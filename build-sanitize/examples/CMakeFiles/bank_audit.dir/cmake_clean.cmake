file(REMOVE_RECURSE
  "CMakeFiles/bank_audit.dir/bank_audit.cpp.o"
  "CMakeFiles/bank_audit.dir/bank_audit.cpp.o.d"
  "bank_audit"
  "bank_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
