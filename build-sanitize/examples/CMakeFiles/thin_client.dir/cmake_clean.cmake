file(REMOVE_RECURSE
  "CMakeFiles/thin_client.dir/thin_client.cpp.o"
  "CMakeFiles/thin_client.dir/thin_client.cpp.o.d"
  "thin_client"
  "thin_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thin_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
