# Empty dependencies file for thin_client.
# This may be replaced when dependencies are built.
