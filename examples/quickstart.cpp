// Quickstart: a replicated key-value module in ~60 lines.
//
// This example builds a simulated world, creates one 3-replica server group
// and one 3-replica client group, registers two procedures, runs a
// transaction, crashes the server's primary, and shows that the committed
// state survives into the new view.
//
//   $ ./quickstart
#include <cstdio>

#include "client/cluster.h"

using namespace vsr;

namespace {

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

}  // namespace

int main() {
  // A deterministic world: every run with the same seed is identical.
  client::Cluster cluster(client::ClusterOptions{.seed = 42});

  // One module group of three cohorts (a primary and two backups), plus a
  // replicated client group that will run transactions and coordinate 2PC.
  auto kv = cluster.AddGroup("kv", 3);
  auto app = cluster.AddGroup("app", 3);

  // Module procedures execute at the group's primary under strict two-phase
  // locking; ctx.Read/Write acquire locks and create tentative versions.
  cluster.RegisterProc(
      kv, "set", [](core::ProcContext& ctx) -> sim::Task<std::vector<std::uint8_t>> {
        std::string a = ctx.ArgsAsString();  // "key=value"
        auto eq = a.find('=');
        co_await ctx.Write(a.substr(0, eq), a.substr(eq + 1));
        co_return Bytes("ok");
      });
  cluster.RegisterProc(
      kv, "get", [](core::ProcContext& ctx) -> sim::Task<std::vector<std::uint8_t>> {
        auto v = co_await ctx.Read(ctx.ArgsAsString());
        co_return Bytes(v.value_or("<absent>"));
      });

  cluster.Start();
  if (!cluster.RunUntilStable()) {
    std::puts("group never stabilized");
    return 1;
  }
  std::printf("kv group is up; primary is cohort %u in view %s\n",
              cluster.AnyPrimary(kv)->mid(),
              cluster.AnyPrimary(kv)->cur_viewid().ToString().c_str());

  // Run a transaction from the app group's primary: one remote call, then
  // two-phase commit (all behind the scenes).
  bool done = false;
  vr::TxnOutcome outcome = vr::TxnOutcome::kUnknown;
  cluster.AnyPrimary(app)->SpawnTransaction(
      [kv](core::TxnHandle& txn) -> sim::Task<bool> {
        co_await txn.Call(kv, "set", std::string("greeting=hello world"));
        co_return true;  // request commit
      },
      [&](vr::TxnOutcome o) {
        outcome = o;
        done = true;
      });
  while (!done) cluster.RunFor(10 * sim::kMillisecond);
  std::printf("transaction %s\n",
              outcome == vr::TxnOutcome::kCommitted ? "committed" : "aborted");

  // Kill the primary. The backups detect the silence, run the view change
  // (Fig. 5), and elect a new primary whose state includes the commit.
  for (auto* cohort : cluster.Cohorts(kv)) {
    if (cohort->IsActivePrimary()) {
      std::printf("crashing primary (cohort %u)...\n", cohort->mid());
      cohort->Crash();
      break;
    }
  }
  if (!cluster.RunUntilStable()) {
    std::puts("view change failed");
    return 1;
  }
  core::Cohort* new_primary = cluster.AnyPrimary(kv);
  std::printf("new primary is cohort %u in view %s\n", new_primary->mid(),
              new_primary->cur_viewid().ToString().c_str());
  std::printf("committed state survived: greeting = \"%s\"\n",
              new_primary->objects().ReadCommitted("greeting")
                  .value_or("<LOST!>")
                  .c_str());
  return 0;
}
