// Airline reservation — the paper's own motivating example (§1): "in airline
// reservation systems the failure of a single computer can prevent ticket
// sales for a considerable time."
//
// Two regional inventory groups sell seats; travel agents book multi-leg
// itineraries atomically (a two-participant distributed transaction). We
// crash a region's primary in the middle of the booking rush and verify
// that (a) sales continue after a sub-second view change, (b) no flight is
// ever oversold, and (c) no itinerary is half-booked.
//
//   $ ./airline_reservation [seed]
#include <cstdio>
#include <cstdlib>

#include "client/cluster.h"
#include "workload/airline.h"
#include "workload/driver.h"

using namespace vsr;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1988;
  client::Cluster cluster(client::ClusterOptions{.seed = seed});

  auto east = cluster.AddGroup("inventory-east", 3);
  auto west = cluster.AddGroup("inventory-west", 3);
  auto agents = cluster.AddGroup("agents", 3);
  workload::RegisterAirlineProcs(cluster, east);
  workload::RegisterAirlineProcs(cluster, west);
  cluster.Start();
  if (!cluster.RunUntilStable()) {
    std::puts("cluster failed to stabilize");
    return 1;
  }

  // Inventory: the eastbound leg has plenty of seats; the westbound
  // connection is the scarce resource.
  constexpr long long kEastSeats = 60;
  constexpr long long kWestSeats = 25;
  auto setup = [&](vr::GroupId g, const std::string& flight, long long n) {
    bool done = false;
    cluster.AnyPrimary(agents)->SpawnTransaction(
        [&, g, flight, n](core::TxnHandle& h) -> sim::Task<bool> {
          co_await h.Call(g, "add_flight", flight + "=" + std::to_string(n));
          co_return true;
        },
        [&](vr::TxnOutcome) { done = true; });
    while (!done) cluster.RunFor(5 * sim::kMillisecond);
  };
  setup(east, "E100", kEastSeats);
  setup(west, "W200", kWestSeats);
  std::printf("flights loaded: E100 %lld seats, W200 %lld seats\n", kEastSeats,
              kWestSeats);

  // Crash the west region's primary 600ms into the rush.
  cluster.sim().scheduler().After(600 * sim::kMillisecond, [&cluster, west] {
    for (auto* c : cluster.Cohorts(west)) {
      if (c->IsActivePrimary()) {
        std::printf("[%s] west primary (cohort %u) goes down mid-rush!\n",
                    sim::FormatDuration(cluster.sim().Now()).c_str(),
                    c->mid());
        c->Crash();
        return;
      }
    }
  });

  // The rush: 40 two-leg itineraries (E100 + W200). Only kWestSeats can
  // succeed; agents retry aborted bookings a few times before giving up.
  workload::ClosedLoopDriver driver(
      cluster, agents,
      [&](std::uint64_t) {
        return workload::MakeBookingTxn({{east, "E100", 1}, {west, "W200", 1}});
      },
      workload::DriverOptions{.total_txns = 40,
                              .max_inflight = 3,
                              .retries_per_txn = 5});
  driver.Run();
  cluster.RunFor(3 * sim::kSecond);

  const long long east_left = workload::CommittedSeats(cluster, east, "E100");
  const long long west_left = workload::CommittedSeats(cluster, west, "W200");
  const long long booked = driver.accounting().committed;
  std::printf("\nbookings committed: %lld (aborted %llu, unknown %llu)\n",
              booked,
              static_cast<unsigned long long>(driver.accounting().aborted),
              static_cast<unsigned long long>(driver.accounting().unknown));
  std::printf("seats left: E100 %lld, W200 %lld\n", east_left, west_left);

  bool ok = true;
  if (west_left < 0 || east_left < 0) {
    std::puts("OVERSOLD!");
    ok = false;
  }
  // Every committed itinerary consumed exactly one seat on each leg: the
  // legs' consumption must match (no half-booked itineraries).
  if (kEastSeats - east_left != booked || kWestSeats - west_left != booked) {
    std::puts("HALF-BOOKED ITINERARY DETECTED!");
    ok = false;
  }
  std::printf("atomicity audit: %s\n", ok ? "clean" : "FAILED");
  return ok ? 0 : 1;
}
