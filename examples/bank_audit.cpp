// Bank audit: cross-group transfers under continuous fault injection, with a
// conservation audit at the end.
//
// Two bank branches are separate module groups (so a transfer is a genuine
// two-participant distributed transaction through two-phase commit), a
// replicated teller group runs the transfers, and the harness crashes
// primaries and partitions the network while money moves. The audit at the
// end verifies that not a single unit of currency was created or destroyed —
// the one-copy serializability guarantee (§1) made tangible.
//
//   $ ./bank_audit [seed]
#include <cstdio>
#include <cstdlib>

#include "client/cluster.h"
#include "workload/bank.h"
#include "workload/driver.h"

using namespace vsr;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2026;
  client::ClusterOptions opts;
  opts.seed = seed;
  opts.net.loss_probability = 0.01;       // a slightly lossy network
  opts.net.duplicate_probability = 0.01;  // that sometimes duplicates
  client::Cluster cluster(opts);

  auto north = cluster.AddGroup("bank-north", 3);
  auto south = cluster.AddGroup("bank-south", 3);
  auto tellers = cluster.AddGroup("tellers", 3);
  workload::RegisterBankProcs(cluster, north);
  workload::RegisterBankProcs(cluster, south);
  cluster.Start();
  if (!cluster.RunUntilStable()) {
    std::puts("cluster failed to stabilize");
    return 1;
  }

  // Seed the books: 4 accounts per branch, 1000 each -> total 8000.
  constexpr int kAccounts = 4;
  constexpr long long kInitial = 1000;
  auto open_all = [&](vr::GroupId branch) {
    for (int i = 0; i < kAccounts; ++i) {
      bool done = false;
      cluster.AnyPrimary(tellers)->SpawnTransaction(
          workload::MakeDepositTxn(branch, "a" + std::to_string(i), kInitial),
          [&](vr::TxnOutcome) { done = true; });
      while (!done) cluster.RunFor(5 * sim::kMillisecond);
    }
  };
  open_all(north);
  open_all(south);
  const long long total_before =
      workload::CommittedBankTotal(cluster, north, kAccounts) +
      workload::CommittedBankTotal(cluster, south, kAccounts);
  std::printf("books opened: total = %lld\n", total_before);

  // Chaos: crash each branch's primary twice during the run, and cut the
  // network in half once.
  int faults = 0;
  for (sim::Duration at :
       {700 * sim::kMillisecond, 2500 * sim::kMillisecond,
        4500 * sim::kMillisecond, 6500 * sim::kMillisecond}) {
    cluster.sim().scheduler().After(at, [&cluster, north, south, &faults] {
      const auto target = (faults++ % 2 == 0) ? north : south;
      for (auto* c : cluster.Cohorts(target)) {
        if (c->IsActivePrimary()) {
          std::printf("[%s] crashing %s primary (cohort %u)\n",
                      sim::FormatDuration(cluster.sim().Now()).c_str(),
                      faults % 2 == 1 ? "north" : "south", c->mid());
          c->Crash();
          return;
        }
      }
    });
    cluster.sim().scheduler().After(at + 1500 * sim::kMillisecond,
                                    [&cluster, north, south] {
                                      for (auto g : {north, south}) {
                                        for (std::size_t i = 0; i < 3; ++i) {
                                          if (cluster.CohortAt(g, i).status() ==
                                              core::Status::kCrashed) {
                                            cluster.Recover(g, i);
                                          }
                                        }
                                      }
                                    });
  }

  // The workload: 150 random transfers, retried on abort like a real teller.
  sim::Rng rng(seed + 1);
  workload::ClosedLoopDriver driver(
      cluster, tellers,
      [&](std::uint64_t i) {
        const auto from_branch = rng.Bernoulli(0.5) ? north : south;
        const auto to_branch = rng.Bernoulli(0.5) ? north : south;
        const int from = static_cast<int>(i % kAccounts);
        const int to = static_cast<int>(rng.Index(kAccounts));
        return workload::MakeTransferTxn(
            from_branch, "a" + std::to_string(from), to_branch,
            "a" + std::to_string(to), 1 + static_cast<long long>(rng.Index(20)));
      },
      workload::DriverOptions{.total_txns = 150,
                              .max_inflight = 3,
                              .retries_per_txn = 3});
  driver.Run();

  // Quiesce: recover everyone, let queries resolve stragglers, then audit.
  for (auto g : {north, south}) {
    for (std::size_t i = 0; i < 3; ++i) {
      if (cluster.CohortAt(g, i).status() == core::Status::kCrashed) {
        cluster.Recover(g, i);
      }
    }
  }
  cluster.RunUntilStable();
  cluster.RunFor(5 * sim::kSecond);

  const long long total_after =
      workload::CommittedBankTotal(cluster, north, kAccounts) +
      workload::CommittedBankTotal(cluster, south, kAccounts);
  std::printf("\nresults: %llu committed, %llu aborted, %llu unknown\n",
              static_cast<unsigned long long>(driver.accounting().committed),
              static_cast<unsigned long long>(driver.accounting().aborted),
              static_cast<unsigned long long>(driver.accounting().unknown));
  std::printf("commit latency: %s\n", driver.latency().Summary().c_str());
  std::printf("audit: total before = %lld, after = %lld -> %s\n", total_before,
              total_after,
              total_before == total_after ? "CONSERVED" : "VIOLATION!");
  return total_before == total_after ? 0 : 1;
}
