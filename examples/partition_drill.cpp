// Partition drill: a guided tour of the view change algorithm (§4).
//
// Watches a 5-cohort group live through the paper's failure scenarios and
// narrates what the protocol does at each step:
//   1. a backup is partitioned away        -> view shrinks, service continues
//   2. the PRIMARY is partitioned away     -> new primary elected; the old
//      one keeps "serving" but cannot commit (it cannot force to a
//      sub-majority) — §4.1's several-active-primaries case
//   3. the partition heals                 -> one view again, nothing lost
//   4. a majority is partitioned away      -> the minority side stalls
//      (safety over availability), then recovers on heal
//
//   $ ./partition_drill
#include <cstdio>

#include "client/cluster.h"
#include "tests/test_util.h"

using namespace vsr;

namespace {

client::Cluster* g_cluster = nullptr;

void Show(vr::GroupId g, const char* note) {
  std::printf("[%8s] %s\n",
              sim::FormatDuration(g_cluster->sim().Now()).c_str(), note);
  for (auto* c : g_cluster->Cohorts(g)) {
    std::printf("    cohort %u: %-12s view %-8s %s\n", c->mid(),
                core::StatusName(c->status()),
                c->cur_viewid().ToString().c_str(),
                c->IsActivePrimary() ? "<- active primary" : "");
  }
}

bool Put(vr::GroupId agents, vr::GroupId kv, const std::string& kvpair) {
  auto outcome =
      test::RunOneCallWithRetry(*g_cluster, agents, kv, "put", kvpair);
  std::printf("    put %-12s -> %s\n", kvpair.c_str(),
              outcome == vr::TxnOutcome::kCommitted ? "committed" : "ABORTED");
  return outcome == vr::TxnOutcome::kCommitted;
}

}  // namespace

int main() {
  client::Cluster cluster(client::ClusterOptions{.seed = 7});
  g_cluster = &cluster;
  auto kv = cluster.AddGroup("kv", 5);
  auto agents = cluster.AddGroup("agents", 3);
  test::RegisterKvProcs(cluster, kv);
  cluster.Start();
  cluster.RunUntilStable();
  Show(kv, "boot: first view formed");
  Put(agents, kv, "epoch=1");

  auto cohorts = cluster.Cohorts(kv);
  auto mid = [&](int i) { return cohorts[static_cast<std::size_t>(i)]->mid(); };
  auto primary_mid = [&]() {
    for (auto* c : cohorts) {
      if (c->IsActivePrimary()) return c->mid();
    }
    return vr::Mid{0};
  };

  // --- scene 1: lose a backup -------------------------------------------
  vr::Mid p = primary_mid();
  vr::Mid backup = 0;
  for (auto* c : cohorts) {
    if (c->mid() != p) {
      backup = c->mid();
      break;
    }
  }
  std::vector<net::NodeId> rest1;
  for (auto* c : cohorts) {
    if (c->mid() != backup) rest1.push_back(c->mid());
  }
  for (auto* c : cluster.Cohorts(agents)) rest1.push_back(c->mid());
  cluster.network().Partition({{backup}, rest1});
  cluster.RunUntilStable();
  cluster.RunFor(1 * sim::kSecond);
  Show(kv, "scene 1: one backup partitioned away — majority re-forms");
  Put(agents, kv, "epoch=2");

  // --- scene 2: lose the primary ----------------------------------------
  cluster.network().Heal();
  cluster.RunUntilStable();
  cluster.RunFor(1 * sim::kSecond);
  p = primary_mid();
  std::vector<net::NodeId> rest2;
  for (auto* c : cohorts) {
    if (c->mid() != p) rest2.push_back(c->mid());
  }
  for (auto* c : cluster.Cohorts(agents)) rest2.push_back(c->mid());
  cluster.network().Partition({{p}, rest2});
  cluster.RunUntilStable();
  cluster.RunFor(1 * sim::kSecond);
  Show(kv, "scene 2: the PRIMARY partitioned away — note the stale primary");
  std::printf("    (the old primary still thinks it leads its old view, but\n"
              "     cannot commit: force-to cannot reach a sub-majority)\n");
  Put(agents, kv, "epoch=3");

  // --- scene 3: heal ------------------------------------------------------
  cluster.network().Heal();
  cluster.RunUntilStable();
  cluster.RunFor(2 * sim::kSecond);
  Show(kv, "scene 3: healed — one view, stale primary demoted");
  Put(agents, kv, "epoch=4");

  // --- scene 4: minority island ------------------------------------------
  std::vector<net::NodeId> island{mid(0), mid(1)};
  std::vector<net::NodeId> mainland{mid(2), mid(3), mid(4)};
  for (auto* c : cluster.Cohorts(agents)) mainland.push_back(c->mid());
  cluster.network().Partition({island, mainland});
  cluster.RunFor(3 * sim::kSecond);
  Show(kv, "scene 4: two cohorts islanded — the island cannot form a view");
  Put(agents, kv, "epoch=5");
  cluster.network().Heal();
  cluster.RunUntilStable();
  cluster.RunFor(2 * sim::kSecond);
  Show(kv, "scene 4b: healed again");

  core::Cohort* primary = cluster.AnyPrimary(kv);
  std::printf("\nfinal committed epoch = %s (expect 5)\n",
              primary->objects().ReadCommitted("epoch").value_or("?").c_str());
  return 0;
}
