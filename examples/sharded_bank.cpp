// Sharded bank: one logical store range-partitioned across three module
// groups, with live rebalancing while money moves.
//
// The paper treats a module as the unit of distribution (§2); this example
// shards a single bank's key space "a000".."a023" over three replicated
// groups via the placement directory (DESIGN.md §11). A teller group runs
// random transfers — transfers whose two accounts land on different shards
// commit through genuine two-phase cross-group transactions (§3.2). Halfway
// through, shard0's entire key range migrates to shard2 while traffic keeps
// flowing; the audit then checks placement sanity and that not a single unit
// of currency was created or destroyed.
//
//   $ ./sharded_bank [seed]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "client/cluster.h"
#include "client/shard_rebalancer.h"
#include "client/shard_router.h"
#include "workload/driver.h"
#include "workload/sharded_bank.h"

using namespace vsr;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2026;
  client::ClusterOptions opts;
  opts.seed = seed;
  client::Cluster cluster(opts);

  // Three shard groups (3 replicas each) plus a client group; the placement
  // directory tiles "a000".."a023" across them in contiguous ranges.
  constexpr int kAccounts = 24;
  constexpr long long kInitial = 1000;
  auto bank = workload::SetupShardedBank(cluster, /*num_shards=*/3,
                                         /*replicas_per_group=*/3, kAccounts);
  cluster.Start();
  if (!cluster.RunUntilStable()) {
    std::puts("cluster failed to stabilize");
    return 1;
  }
  if (workload::FundShardedAccounts(cluster, bank, kInitial) != kAccounts) {
    std::puts("funding failed");
    return 1;
  }
  std::printf("funded %d accounts x %lld across %zu shards (epoch %llu)\n",
              kAccounts, kInitial, bank.shards.size(),
              static_cast<unsigned long long>(
                  cluster.directory().placement_epoch()));
  for (const auto& r : cluster.directory().ranges()) {
    std::printf("  [%4s, %4s) -> group %u\n",
                r.lo.empty() ? "-inf" : r.lo.c_str(),
                r.hi.empty() ? "+inf" : r.hi.c_str(), r.owner);
  }

  // The router caches placement and refreshes on wrong-shard rejections, so
  // tellers keep working across the epoch bump below.
  client::ShardRouter router(cluster.directory());
  client::ShardRebalancer rebalancer(cluster);

  // Halfway through the run, move shard0's whole range to shard2 — bulk
  // snapshot pull, drain, settle, then an atomic epoch flip (DESIGN.md §11).
  bool move_done = false, move_ok = false;
  cluster.sim().scheduler().After(150 * sim::kMillisecond, [&] {
    const core::ShardRange* r =
        cluster.directory().Route(workload::ShardAccountName(0));
    if (r == nullptr || r->owner == bank.shards[2]) return;
    std::printf("[%s] rebalancing [%s, %s) from group %u to group %u\n",
                sim::FormatDuration(cluster.sim().Now()).c_str(),
                r->lo.empty() ? "-inf" : r->lo.c_str(), r->hi.c_str(),
                r->owner, bank.shards[2]);
    rebalancer.Move(r->lo, r->hi, bank.shards[2], [&](bool ok) {
      move_done = true;
      move_ok = ok;
      std::printf("[%s] rebalance %s (handoff window %s)\n",
                  sim::FormatDuration(cluster.sim().Now()).c_str(),
                  ok ? "committed" : "failed",
                  sim::FormatDuration(rebalancer.stats().last_handoff_window)
                      .c_str());
    });
  });

  // 120 random transfers; pairs that straddle a shard boundary become
  // two-participant distributed transactions. Generous retries bridge the
  // handoff window while the range is in flight.
  sim::Rng rng(seed + 1);
  workload::ClosedLoopDriver driver(
      cluster, bank.client_group,
      [&](std::uint64_t) {
        const int from = static_cast<int>(rng.Index(kAccounts));
        int to = static_cast<int>(rng.Index(kAccounts));
        if (to == from) to = (to + 1) % kAccounts;
        return workload::MakeShardedTransferTxn(
            router, workload::ShardAccountName(from),
            workload::ShardAccountName(to),
            1 + static_cast<long long>(rng.Index(20)));
      },
      workload::DriverOptions{.total_txns = 120,
                              .max_inflight = 4,
                              .retries_per_txn = 100});
  driver.Run();
  cluster.RunFor(2 * sim::kSecond);

  std::printf("\nresults: %llu committed, %llu aborted, %llu unknown, "
              "%llu router refreshes\n",
              static_cast<unsigned long long>(driver.accounting().committed),
              static_cast<unsigned long long>(driver.accounting().aborted),
              static_cast<unsigned long long>(driver.accounting().unknown),
              static_cast<unsigned long long>(router.refreshes()));
  std::printf("commit latency: %s\n", driver.latency().Summary().c_str());
  std::printf("placement after move (epoch %llu):\n",
              static_cast<unsigned long long>(
                  cluster.directory().placement_epoch()));
  for (const auto& r : cluster.directory().ranges()) {
    std::printf("  [%4s, %4s) -> group %u\n",
                r.lo.empty() ? "-inf" : r.lo.c_str(),
                r.hi.empty() ? "+inf" : r.hi.c_str(), r.owner);
  }

  // Audit: the placement map must still tile the key space, and summing the
  // committed balance of every account at its current owner must give back
  // exactly what the bank started with.
  check::CheckPlacement(cluster.directory());
  std::vector<std::string> accounts;
  for (int i = 0; i < kAccounts; ++i) {
    accounts.push_back(workload::ShardAccountName(i));
  }
  check::CheckConservation(cluster, accounts, kAccounts * kInitial);
  const long long total = workload::ShardedBankTotal(cluster, kAccounts);
  std::printf("audit: move %s, total = %lld -> %s\n",
              move_done && move_ok ? "completed" : "DID NOT COMPLETE", total,
              total == kAccounts * kInitial ? "CONSERVED" : "VIOLATION!");
  return (move_done && move_ok && total == kAccounts * kInitial) ? 0 : 1;
}
