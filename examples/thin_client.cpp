// Thin client: §3.5's coordinator-server pattern.
//
// "Replicating a client that is not a server, however, may not be
//  worthwhile. If the client is not replicated, it is still desirable for
//  the coordinator to be highly available ... This can be accomplished by
//  providing a replicated 'coordinator-server.'"
//
// An unreplicated (single-node) client begins its transaction at a
// replicated coordinator-server, makes remote calls itself while collecting
// the pset, and ships the pset back for commit. The example then shows the
// two §3.5 guarantees: the commit outcome is queryable afterwards, and a
// client that vanishes mid-transaction is aborted unilaterally so its locks
// do not leak.
//
//   $ ./thin_client
#include <cstdio>

#include "client/cluster.h"
#include "client/unreplicated_client.h"

using namespace vsr;

namespace {

vr::TxnOutcome RunTxn(client::Cluster& cluster, client::UnreplicatedClient& c,
                      std::function<sim::Task<bool>(client::ClientTxn&)> body) {
  vr::TxnOutcome outcome = vr::TxnOutcome::kUnknown;
  bool done = false;
  c.Spawn(std::move(body), [&](vr::TxnOutcome o) {
    outcome = o;
    done = true;
  });
  while (!done) cluster.RunFor(10 * sim::kMillisecond);
  return outcome;
}

}  // namespace

int main() {
  client::Cluster cluster(client::ClusterOptions{.seed = 35});
  auto inventory = cluster.AddGroup("inventory", 3);
  auto coord = cluster.AddGroup("coordinator-server", 3);
  cluster.RegisterProc(
      inventory, "take",
      [](core::ProcContext& ctx) -> sim::Task<std::vector<std::uint8_t>> {
        auto v = co_await ctx.ReadForUpdate("stock");
        const long long left = v && !v->empty() ? std::stoll(*v) : 10;
        if (left <= 0) throw core::TxnError("out of stock");
        co_await ctx.Write("stock", std::to_string(left - 1));
        const std::string r = std::to_string(left - 1);
        co_return std::vector<std::uint8_t>(r.begin(), r.end());
      });
  cluster.Start();
  cluster.RunUntilStable();

  // A thin, single-node client. It is NOT a cohort of any group; it keeps
  // no replicated state; the coordinator-server runs 2PC on its behalf.
  client::UnreplicatedClient laptop(cluster.sim(), cluster.network(),
                                    cluster.directory(), cluster.AllocateMid(),
                                    coord, core::CohortOptions{});

  std::printf("-- a thin client buys one item --\n");
  vr::Aid receipt{};
  auto outcome = RunTxn(cluster, laptop,
                        [&](client::ClientTxn& t) -> sim::Task<bool> {
                          receipt = t.aid();
                          auto r = co_await t.Call(inventory, "take",
                                                   std::string(""));
                          std::printf("   stock now: %s\n",
                                      std::string(r.begin(), r.end()).c_str());
                          co_return true;
                        });
  std::printf("   outcome: %s\n",
              outcome == vr::TxnOutcome::kCommitted ? "committed" : "aborted");

  std::printf("-- later, the client asks the coordinator-server what became "
              "of its transaction (§3.4 queries) --\n");
  bool answered = false;
  laptop.QueryOutcome(receipt, [&](vr::TxnOutcome o) {
    std::printf("   query answer: %s\n",
                o == vr::TxnOutcome::kCommitted ? "committed" : "not committed");
    answered = true;
  });
  while (!answered) cluster.RunFor(10 * sim::kMillisecond);

  std::printf("-- a flaky client grabs the stock lock and disappears --\n");
  {
    client::UnreplicatedClient ghost(cluster.sim(), cluster.network(),
                                     cluster.directory(),
                                     cluster.AllocateMid(), coord,
                                     core::CohortOptions{});
    bool call_done = false;
    ghost.Spawn([&](client::ClientTxn& t) -> sim::Task<bool> {
      co_await t.Call(inventory, "take", std::string(""));
      call_done = true;
      co_await sim::Sleep(cluster.sim().scheduler(), 3600 * sim::kSecond);
      co_return true;  // never reached
    });
    while (!call_done) cluster.RunFor(10 * sim::kMillisecond);
    std::printf("   ghost client holds the write lock... and vanishes\n");
  }  // destroying the client destroys its suspended transaction — the crash

  std::printf("-- §3.5: \"it can abort the transaction unilaterally\" --\n");
  cluster.RunFor(5 * sim::kSecond);  // coordinator-server sweep + queries
  auto retry = RunTxn(cluster, laptop,
                      [&](client::ClientTxn& t) -> sim::Task<bool> {
                        auto r = co_await t.Call(inventory, "take",
                                                 std::string(""));
                        std::printf("   stock now: %s\n",
                                    std::string(r.begin(), r.end()).c_str());
                        co_return true;
                      });
  std::printf("   next customer: %s (the ghost's lock was swept)\n",
              retry == vr::TxnOutcome::kCommitted ? "committed" : "BLOCKED");
  return retry == vr::TxnOutcome::kCommitted ? 0 : 1;
}
