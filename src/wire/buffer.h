// Byte-oriented serialization primitives.
//
// All integers are encoded little-endian at fixed width; variable-length
// fields (bytes, strings, vectors) carry a u32 length prefix. Reader uses a
// sticky failure flag instead of exceptions: any out-of-bounds or malformed
// read marks the reader bad and yields zero values, and the caller checks
// ok() once after decoding a whole message. This keeps decode paths branch-
// light and makes truncated/corrupt messages safe to feed in fuzz tests.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace vsr::wire {

class Writer {
 public:
  Writer() = default;

  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U16(std::uint16_t v) { AppendLe(v); }
  void U32(std::uint32_t v) { AppendLe(v); }
  void U64(std::uint64_t v) { AppendLe(v); }
  void I64(std::int64_t v) { AppendLe(static_cast<std::uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void F64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }

  // LEB128 variable-length unsigned integer: 7 value bits per byte, high bit
  // set on every byte but the last. Values < 128 cost one byte; a full u64
  // costs at most ten. Used by the compressed batch layout (DESIGN.md §8.4).
  void Varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  // Zig-zag-mapped varint for signed deltas: 0,-1,1,-2,2... -> 0,1,2,3,4...
  // so small magnitudes of either sign stay short.
  void ZigZag(std::int64_t v) {
    Varint((static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63));
  }

  void Bytes(std::span<const std::uint8_t> b) {
    U32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  // Unprefixed bytes — the caller has already written a length (e.g. as a
  // varint in the compressed batch layout).
  void Raw(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  void Raw(std::string_view s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void String(std::string_view s) {
    U32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  // Encodes a vector via a per-element encoder: w.Vector(v, [&](const T& e){...});
  template <typename T, typename Fn>
  void Vector(const std::vector<T>& v, Fn&& encode_element) {
    U32(static_cast<std::uint32_t>(v.size()));
    for (const T& e : v) encode_element(e);
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> Take() { return std::move(buf_); }

 private:
  template <typename T>
  void AppendLe(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t U8() { return ReadLe<std::uint8_t>(); }
  std::uint16_t U16() { return ReadLe<std::uint16_t>(); }
  std::uint32_t U32() { return ReadLe<std::uint32_t>(); }
  std::uint64_t U64() { return ReadLe<std::uint64_t>(); }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  bool Bool() { return U8() != 0; }
  double F64() {
    std::uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::uint64_t Varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (!CheckRemaining(1)) return 0;
      const std::uint8_t byte = data_[pos_++];
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        // The tenth byte may only contribute the top bit of a u64; anything
        // more is an over-long / overflowing encoding.
        if (shift == 63 && byte > 1) {
          ok_ = false;
          return 0;
        }
        return v;
      }
    }
    ok_ = false;  // continuation bit never cleared within 10 bytes
    return 0;
  }
  std::int64_t ZigZag() {
    const std::uint64_t v = Varint();
    return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
  }

  std::vector<std::uint8_t> Bytes() {
    std::uint32_t n = U32();
    if (!CheckRemaining(n)) return {};
    std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(pos_),
                                  data_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return out;
  }
  std::string String() {
    std::uint32_t n = U32();
    if (!CheckRemaining(n)) return {};
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return out;
  }
  // Unprefixed reads matching Writer::Raw.
  std::vector<std::uint8_t> Raw(std::size_t n) {
    if (!CheckRemaining(n)) return {};
    std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(pos_),
                                  data_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return out;
  }
  std::string RawString(std::size_t n) {
    if (!CheckRemaining(n)) return {};
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return out;
  }

  // Decodes a vector via a per-element decoder returning T.
  template <typename T, typename Fn>
  std::vector<T> Vector(Fn&& decode_element) {
    std::uint32_t n = U32();
    std::vector<T> out;
    // A corrupt length prefix must not cause a huge reserve: each element is
    // at least one byte, so cap by remaining input.
    if (!ok_ || n > Remaining() + 1) {
      ok_ = false;
      return out;
    }
    out.reserve(n);
    for (std::uint32_t i = 0; i < n && ok_; ++i) {
      out.push_back(decode_element());
    }
    return out;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  std::size_t Remaining() const { return data_.size() - pos_; }

  // Marks the reader failed; used by message decoders on semantic errors
  // (unknown enum tag, etc.).
  void MarkBad() { ok_ = false; }

 private:
  bool CheckRemaining(std::size_t n) {
    if (!ok_ || Remaining() < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  template <typename T>
  T ReadLe() {
    if (!CheckRemaining(sizeof(T))) return T{};
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// CRC-32 (IEEE 802.3 polynomial) used to checksum network frames.
std::uint32_t Crc32(std::span<const std::uint8_t> data);

}  // namespace vsr::wire
