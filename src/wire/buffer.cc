#include "wire/buffer.h"

#include <array>

namespace vsr::wire {
namespace {

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> kTable = BuildCrcTable();
  std::uint32_t crc = 0xffffffffu;
  for (std::uint8_t b : data) {
    crc = kTable[(crc ^ b) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace vsr::wire
