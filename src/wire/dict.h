// Hot-key dictionary and byte-delta helpers for the compressed replication
// stream (DESIGN.md §8).
//
// A KeyDict is a fixed-capacity slot array mapping recently-seen object uids
// to small slot numbers, with each slot also carrying the object's last
// replicated version (the delta base). The encoder and decoder each hold one
// and mutate it with identical, deterministic rules — insertion always takes
// the next round-robin slot, evicting its occupant — so that after the same
// record stream both ends hold byte-identical dictionaries. Any divergence
// (loss, reorder) is handled a level up by the batch codec's generation
// numbers, never by the dictionary itself.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vsr::wire {

class KeyDict {
 public:
  explicit KeyDict(std::size_t capacity = 64);

  // Forgets everything; capacity is retained.
  void Reset();

  // Slot holding `uid`, if present.
  std::optional<std::uint32_t> Find(std::string_view uid) const;

  // Inserts `uid` at the next round-robin slot (evicting that slot's current
  // occupant and clearing its base) and returns the slot.
  std::uint32_t Insert(std::string uid);

  // True iff `slot` is in range and currently holds a uid.
  bool ValidSlot(std::uint32_t slot) const;

  const std::string& UidAt(std::uint32_t slot) const;
  const std::string& BaseAt(std::uint32_t slot) const;
  void SetBase(std::uint32_t slot, std::string base);

  std::size_t capacity() const { return slots_.size(); }
  std::size_t size() const { return used_; }

 private:
  struct Slot {
    bool occupied = false;
    std::string uid;
    std::string base;  // last replicated version; "" until a write is seen
  };
  std::vector<Slot> slots_;
  std::size_t used_ = 0;
  std::size_t next_ = 0;  // round-robin insertion cursor
  std::map<std::string, std::uint32_t, std::less<>> index_;
};

// Byte-delta of `target` against `base`: target = base[0, prefix) + mid +
// base[base.size() - suffix, base.size()). DiffBytes picks the longest
// common prefix, then the longest common suffix of the remainders.
struct ByteDelta {
  std::uint64_t prefix = 0;
  std::uint64_t suffix = 0;
  std::string_view mid;  // view into the target passed to DiffBytes
};

ByteDelta DiffBytes(std::string_view base, std::string_view target);

// Reconstructs the target; returns nullopt when prefix + suffix exceed the
// base (a corrupt or forged delta).
std::optional<std::string> ApplyDelta(std::string_view base,
                                      std::uint64_t prefix,
                                      std::uint64_t suffix,
                                      std::string_view mid);

// Encoded size of a LEB128 varint; used by the encoder to decide whether a
// delta actually beats the literal encoding.
constexpr std::size_t VarintSize(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace vsr::wire
