#include "wire/dict.h"

#include <algorithm>
#include <cassert>

namespace vsr::wire {

KeyDict::KeyDict(std::size_t capacity) : slots_(std::max<std::size_t>(capacity, 1)) {}

void KeyDict::Reset() {
  for (Slot& s : slots_) s = Slot{};
  used_ = 0;
  next_ = 0;
  index_.clear();
}

std::optional<std::uint32_t> KeyDict::Find(std::string_view uid) const {
  auto it = index_.find(uid);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::uint32_t KeyDict::Insert(std::string uid) {
  const std::uint32_t slot = static_cast<std::uint32_t>(next_);
  next_ = (next_ + 1) % slots_.size();
  Slot& s = slots_[slot];
  if (s.occupied) {
    index_.erase(s.uid);
  } else {
    ++used_;
  }
  s.occupied = true;
  s.uid = std::move(uid);
  s.base.clear();
  // A malformed stream may insert a uid already present elsewhere; the index
  // tracks the newest slot, the stale slot just ages out of round-robin.
  index_[s.uid] = slot;
  return slot;
}

bool KeyDict::ValidSlot(std::uint32_t slot) const {
  return slot < slots_.size() && slots_[slot].occupied;
}

const std::string& KeyDict::UidAt(std::uint32_t slot) const {
  assert(ValidSlot(slot));
  return slots_[slot].uid;
}

const std::string& KeyDict::BaseAt(std::uint32_t slot) const {
  assert(ValidSlot(slot));
  return slots_[slot].base;
}

void KeyDict::SetBase(std::uint32_t slot, std::string base) {
  assert(ValidSlot(slot));
  slots_[slot].base = std::move(base);
}

ByteDelta DiffBytes(std::string_view base, std::string_view target) {
  ByteDelta d;
  const std::size_t max_common = std::min(base.size(), target.size());
  std::size_t p = 0;
  while (p < max_common && base[p] == target[p]) ++p;
  std::size_t s = 0;
  while (s < max_common - p &&
         base[base.size() - 1 - s] == target[target.size() - 1 - s]) {
    ++s;
  }
  d.prefix = p;
  d.suffix = s;
  d.mid = target.substr(p, target.size() - p - s);
  return d;
}

std::optional<std::string> ApplyDelta(std::string_view base,
                                      std::uint64_t prefix,
                                      std::uint64_t suffix,
                                      std::string_view mid) {
  if (prefix > base.size() || suffix > base.size() - prefix) {
    return std::nullopt;
  }
  std::string out;
  out.reserve(prefix + mid.size() + suffix);
  out.append(base.substr(0, prefix));
  out.append(mid);
  out.append(base.substr(base.size() - suffix));
  return out;
}

}  // namespace vsr::wire
