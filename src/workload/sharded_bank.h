// Sharded bank workload (DESIGN.md §11): accounts spread across N module
// groups by key range, transfers crossing shard boundaries as real
// two-phase commits, and an ownership gate that turns placement changes
// into retryable wrong-shard aborts.
//
// The procs are the bank procs with one addition: before touching an
// account they check the placement directory — serve only if this group
// owns the key's range and the range is not in its handoff window.
// Otherwise the call fails with a "wrong-shard" error, the transaction
// aborts, and the client refreshes its ShardRouter cache and retries.
#pragma once

#include <string>
#include <vector>

#include "client/cluster.h"
#include "client/shard_router.h"
#include "core/cohort.h"

namespace vsr::workload {

// Zero-padded account name ("a007") so lexicographic key ranges follow
// account order.
std::string ShardAccountName(int i);

// True iff the TxnError text marks a placement (wrong-shard) rejection —
// the retry-with-refreshed-routing case, as opposed to a real failure.
bool IsWrongShardError(const char* what);

// Registers the gated bank procs (open/deposit/withdraw/balance) on one
// shard group. The gate reads the cluster's directory live.
void RegisterShardedBankProcs(client::Cluster& cluster, vr::GroupId group);

// A ready-to-drive sharded deployment: `shards` own contiguous account
// ranges tiling the key space, `client_group` coordinates transactions.
struct ShardedBank {
  std::vector<vr::GroupId> shards;
  vr::GroupId client_group = 0;
  int num_accounts = 0;
};

// Adds `num_shards` shard groups plus one client group, registers the gated
// procs, and assigns account ranges evenly. Call before Cluster::Start().
ShardedBank SetupShardedBank(client::Cluster& cluster, std::size_t num_shards,
                             std::size_t replicas_per_group,
                             int num_accounts);

// Opens every account with `initial` balance via committed transactions.
// Returns the number of accounts successfully funded (== num_accounts on
// success).
int FundShardedAccounts(client::Cluster& cluster, const ShardedBank& bank,
                        long long initial);

// Transfer between two accounts routed through the client's cached shard
// table; a wrong-shard rejection refreshes the cache before the abort
// propagates (so the driver's retry re-routes correctly).
core::TxnBody MakeShardedTransferTxn(client::ShardRouter& router,
                                     std::string from_acct,
                                     std::string to_acct, long long amt);

// Committed balance of one account read at its directory-owner's primary;
// -1 if unreadable (no primary). The owner field is authoritative in every
// move phase.
long long ShardedCommittedBalance(client::Cluster& cluster,
                                  const std::string& acct);

// Sum over all accounts (conservation audit); -1 if any read failed.
long long ShardedBankTotal(client::Cluster& cluster, int num_accounts);

}  // namespace vsr::workload
