// Bank workload: accounts with deposits, withdrawals and cross-group
// transfers — the standard transactional exercise for the protocol, and the
// source of the invariant the examples audit (total balance is conserved by
// transfers).
//
// Procedures registered on a bank group:
//   open      "acct=amount"  create an account with an initial balance
//   deposit   "acct=amount"  add
//   withdraw  "acct=amount"  subtract; fails the call (→ txn abort) if the
//                            balance would go negative
//   balance   "acct"         read
#pragma once

#include <string>

#include "client/cluster.h"
#include "core/cohort.h"

namespace vsr::workload {

// Registers the bank procedures on one cohort — the host-agnostic form,
// usable from any harness (all replicas of a module must carry identical
// code, so call it on every member of the group).
void RegisterBankProcs(core::Cohort& cohort);

// Convenience: registers on every cohort of a simulated cluster's group.
void RegisterBankProcs(client::Cluster& cluster, vr::GroupId group);

// Sums the committed balances of accounts "a0".."a<n-1>" at the group's
// primary (for audits in tests/examples).
long long CommittedBankTotal(client::Cluster& cluster, vr::GroupId group,
                             int num_accounts);

// Transaction bodies (run at a client group's primary).
core::TxnBody MakeDepositTxn(vr::GroupId bank, std::string acct, long long amt);
// Transfers between two accounts that may live in different bank groups —
// the two-participant 2PC case.
core::TxnBody MakeTransferTxn(vr::GroupId from_bank, std::string from_acct,
                              vr::GroupId to_bank, std::string to_acct,
                              long long amt);

}  // namespace vsr::workload
