#include "workload/catalog.h"

#include <utility>

namespace vsr::workload {
namespace {

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

}  // namespace

std::string CatalogKey(int i) { return "item" + std::to_string(i); }

void RegisterCatalogProcs(core::Cohort& cohort) {
  cohort.RegisterProc(
      "put",
      [](core::ProcContext& ctx) -> host::Task<std::vector<std::uint8_t>> {
        const std::string args = ctx.ArgsAsString();
        auto eq = args.find('=');
        if (eq == std::string::npos) throw core::TxnError("bad args: " + args);
        co_await ctx.Write(args.substr(0, eq), args.substr(eq + 1));
        co_return Bytes("ok");
      });
  cohort.RegisterProc(
      "bump",
      [](core::ProcContext& ctx) -> host::Task<std::vector<std::uint8_t>> {
        const std::string item = ctx.ArgsAsString();
        auto v = co_await ctx.ReadForUpdate(item);
        // Descriptions are "v<n>"; a bump rewrites to "v<n+1>". Monotone by
        // construction, which is what the serializability audit leans on.
        long long version = 0;
        if (v && v->size() > 1 && (*v)[0] == 'v') {
          version = std::stoll(v->substr(1));
        }
        const std::string next = "v" + std::to_string(version + 1);
        co_await ctx.Write(item, next);
        co_return Bytes(next);
      });
  cohort.RegisterProc(
      "get",
      [](core::ProcContext& ctx) -> host::Task<std::vector<std::uint8_t>> {
        auto v = co_await ctx.Read(ctx.ArgsAsString());
        co_return Bytes(v.value_or(""));
      });
}

void RegisterCatalogProcs(client::Cluster& cluster, vr::GroupId group) {
  for (core::Cohort* c : cluster.Cohorts(group)) RegisterCatalogProcs(*c);
}

core::TxnBody MakeCatalogPutTxn(vr::GroupId group, std::string item,
                                std::string desc) {
  return [group, item = std::move(item),
          desc = std::move(desc)](core::TxnHandle& h) -> host::Task<bool> {
    co_await h.Call(group, "put", item + "=" + desc);
    co_return true;
  };
}

core::TxnBody MakeCatalogBumpTxn(vr::GroupId group, std::string item) {
  return [group, item = std::move(item)](core::TxnHandle& h)
             -> host::Task<bool> {
    co_await h.Call(group, "bump", item);
    co_return true;
  };
}

core::TxnBody MakeCatalogGetTxn(vr::GroupId group, std::string item) {
  return [group, item = std::move(item)](core::TxnHandle& h)
             -> host::Task<bool> {
    co_await h.Call(group, "get", item);
    co_return true;
  };
}

}  // namespace vsr::workload
