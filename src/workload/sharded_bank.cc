#include "sim/task.h"
#include "workload/sharded_bank.h"

#include <cstdio>
#include <cstring>

#include "workload/driver.h"

namespace vsr::workload {
namespace {

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

std::pair<std::string, long long> SplitAmount(const std::string& args) {
  auto eq = args.find('=');
  if (eq == std::string::npos) throw core::TxnError("bad args: " + args);
  return {args.substr(0, eq), std::stoll(args.substr(eq + 1))};
}

// The ownership gate (DESIGN.md §11.2). A group serves a key only while the
// directory says it owns the key's range and the range is not in its
// handoff window; in kMigrating the OLD owner still serves (that is what
// keeps the move live), in kHandoff nobody does — clients retry across the
// window. The rejection names the placement epoch so a client can tell a
// stale-cache refusal from a real failure.
void CheckOwnership(const core::Directory& dir, core::ProcContext& ctx,
                    const std::string& key) {
  const core::ShardRange* r = dir.Route(key);
  if (r == nullptr || r->owner != ctx.group() ||
      r->state == core::ShardState::kHandoff) {
    throw core::TxnError("wrong-shard: " + key + " @epoch " +
                         std::to_string(dir.placement_epoch()));
  }
}

}  // namespace

std::string ShardAccountName(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "a%03d", i);
  return buf;
}

bool IsWrongShardError(const char* what) {
  return what != nullptr && std::strstr(what, "wrong-shard") != nullptr;
}

void RegisterShardedBankProcs(client::Cluster& cluster, vr::GroupId group) {
  core::Directory& dir = cluster.directory();
  cluster.RegisterProc(
      group, "open",
      [&dir](core::ProcContext& ctx) -> sim::Task<std::vector<std::uint8_t>> {
        auto [acct, amount] = SplitAmount(ctx.ArgsAsString());
        CheckOwnership(dir, ctx, acct);
        co_await ctx.Write(acct, std::to_string(amount));
        co_return Bytes("ok");
      });
  cluster.RegisterProc(
      group, "deposit",
      [&dir](core::ProcContext& ctx) -> sim::Task<std::vector<std::uint8_t>> {
        auto [acct, amount] = SplitAmount(ctx.ArgsAsString());
        CheckOwnership(dir, ctx, acct);
        auto v = co_await ctx.ReadForUpdate(acct);
        const long long cur = v && !v->empty() ? std::stoll(*v) : 0;
        co_await ctx.Write(acct, std::to_string(cur + amount));
        co_return Bytes(std::to_string(cur + amount));
      });
  cluster.RegisterProc(
      group, "withdraw",
      [&dir](core::ProcContext& ctx) -> sim::Task<std::vector<std::uint8_t>> {
        auto [acct, amount] = SplitAmount(ctx.ArgsAsString());
        CheckOwnership(dir, ctx, acct);
        auto v = co_await ctx.ReadForUpdate(acct);
        const long long cur = v && !v->empty() ? std::stoll(*v) : 0;
        if (cur < amount) {
          throw core::TxnError("insufficient funds in " + acct);
        }
        co_await ctx.Write(acct, std::to_string(cur - amount));
        co_return Bytes(std::to_string(cur - amount));
      });
  cluster.RegisterProc(
      group, "balance",
      [&dir](core::ProcContext& ctx) -> sim::Task<std::vector<std::uint8_t>> {
        const std::string acct = ctx.ArgsAsString();
        CheckOwnership(dir, ctx, acct);
        auto v = co_await ctx.Read(acct);
        co_return Bytes(v.value_or("0"));
      });
}

ShardedBank SetupShardedBank(client::Cluster& cluster, std::size_t num_shards,
                             std::size_t replicas_per_group,
                             int num_accounts) {
  ShardedBank bank;
  bank.num_accounts = num_accounts;
  for (std::size_t s = 0; s < num_shards; ++s) {
    const vr::GroupId g =
        cluster.AddGroup("shard" + std::to_string(s), replicas_per_group);
    RegisterShardedBankProcs(cluster, g);
    bank.shards.push_back(g);
  }
  bank.client_group = cluster.AddGroup("client", replicas_per_group);
  // Even contiguous tiling: shard s owns accounts [s*N/S, (s+1)*N/S), with
  // the first range anchored at "" and the last unbounded so the table
  // covers the whole key space.
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::string lo =
        s == 0 ? ""
               : ShardAccountName(static_cast<int>(s * num_accounts /
                                                   num_shards));
    const std::string hi =
        s + 1 == num_shards
            ? ""
            : ShardAccountName(
                  static_cast<int>((s + 1) * num_accounts / num_shards));
    cluster.directory().AssignRange(lo, hi, bank.shards[s]);
  }
  return bank;
}

int FundShardedAccounts(client::Cluster& cluster, const ShardedBank& bank,
                        long long initial) {
  const core::Directory& dir = cluster.directory();
  DriverOptions opts;
  opts.total_txns = bank.num_accounts;
  opts.max_inflight = 8;
  opts.retries_per_txn = 20;
  ClosedLoopDriver driver(
      cluster, bank.client_group,
      [&dir, initial](std::uint64_t i) -> core::TxnBody {
        return [&dir, acct = ShardAccountName(static_cast<int>(i)),
                initial](core::TxnHandle& h) -> sim::Task<bool> {
          const core::ShardRange* r = dir.Route(acct);
          if (r == nullptr) throw core::TxnError("unplaced: " + acct);
          co_await h.Call(r->owner, "open",
                          acct + "=" + std::to_string(initial));
          co_return true;
        };
      },
      opts);
  driver.Run();
  return static_cast<int>(driver.accounting().committed);
}

core::TxnBody MakeShardedTransferTxn(client::ShardRouter& router,
                                     std::string from_acct,
                                     std::string to_acct, long long amt) {
  return [&router, from = std::move(from_acct), to = std::move(to_acct),
          amt](core::TxnHandle& h) -> sim::Task<bool> {
    const vr::GroupId gf = router.Route(from);
    const vr::GroupId gt = router.Route(to);
    if (gf == 0 || gt == 0) {
      router.NoteWrongShard();
      throw core::TxnError("wrong-shard: unrouted " + (gf == 0 ? from : to));
    }
    try {
      // Touch the two accounts in lexicographic order so every transfer
      // acquires its write locks in a single global order — opposing pairs
      // (a->b racing b->a) would otherwise deadlock and burn the full
      // lock_wait_timeout. Atomicity makes the op order invisible; when the
      // accounts live on different shards this is a genuine two-group 2PC.
      if (from <= to) {
        co_await h.Call(gf, "withdraw", from + "=" + std::to_string(amt));
        co_await h.Call(gt, "deposit", to + "=" + std::to_string(amt));
      } else {
        co_await h.Call(gt, "deposit", to + "=" + std::to_string(amt));
        co_await h.Call(gf, "withdraw", from + "=" + std::to_string(amt));
      }
    } catch (const core::TxnError& e) {
      // A wrong-shard refusal means our cached placement is stale (a move
      // committed, or a handoff window is open): refresh before the abort
      // unwinds so the driver's retry routes against the new epoch.
      if (IsWrongShardError(e.what())) router.NoteWrongShard();
      throw;
    }
    co_return true;
  };
}

long long ShardedCommittedBalance(client::Cluster& cluster,
                                  const std::string& acct) {
  const core::ShardRange* r = cluster.directory().Route(acct);
  if (r == nullptr) return -1;
  core::Cohort* primary = cluster.AnyPrimary(r->owner);
  if (primary == nullptr) return -1;
  auto v = primary->objects().ReadCommitted(acct);
  return v && !v->empty() ? std::stoll(*v) : 0;
}

long long ShardedBankTotal(client::Cluster& cluster, int num_accounts) {
  long long total = 0;
  for (int i = 0; i < num_accounts; ++i) {
    const long long b = ShardedCommittedBalance(cluster, ShardAccountName(i));
    if (b < 0) return -1;
    total += b;
  }
  return total;
}

}  // namespace vsr::workload
