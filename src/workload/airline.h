// Airline-reservation workload — the paper's own motivating example (§1):
//
//   "in airline reservation systems the failure of a single computer can
//    prevent ticket sales for a considerable time, causing a loss of revenue
//    and passenger goodwill."
//
// Each flight-inventory group manages seat counts per flight; itineraries
// touching several flights (possibly in different groups/regions) book
// atomically under one transaction: either every leg is reserved or none.
//
// Procedures on a flights group:
//   add_flight "flight=seats"   create inventory
//   reserve    "flight=n"       take n seats; fails the call if oversold
//   release    "flight=n"       give n seats back
//   seats      "flight"         read remaining seats
#pragma once

#include <string>
#include <vector>

#include "client/cluster.h"
#include "core/cohort.h"

namespace vsr::workload {

void RegisterAirlineProcs(client::Cluster& cluster, vr::GroupId group);

struct ItineraryLeg {
  vr::GroupId region;  // the flights group holding this leg's inventory
  std::string flight;
  int seats = 1;
};

// Books every leg atomically (multi-group 2PC). The transaction aborts if
// any leg is oversold.
core::TxnBody MakeBookingTxn(std::vector<ItineraryLeg> legs);

// Remaining committed seats for a flight, read at the region's primary.
long long CommittedSeats(client::Cluster& cluster, vr::GroupId region,
                         const std::string& flight);

}  // namespace vsr::workload
