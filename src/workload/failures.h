// Declarative failure schedules: crash/recover/partition/heal actions at
// absolute simulated times, armed onto a cluster's scheduler. Used by the
// availability bench (E7) and the partition-drill example.
#pragma once

#include <vector>

#include "client/cluster.h"

namespace vsr::workload {

struct FailureEvent {
  // kRecover models a reboot with the disk intact (the durable event log,
  // when enabled, replays); kRecoverDiskless models a disk replacement —
  // the log is erased first and the cohort comes back amnesiac.
  enum class Kind { kCrash, kRecover, kRecoverDiskless, kPartition, kHeal } kind;
  sim::Time at = 0;
  // kCrash / kRecover
  vr::GroupId group = 0;
  std::size_t index = 0;
  // kPartition
  std::vector<std::vector<net::NodeId>> sides;

  static FailureEvent Crash(sim::Time at, vr::GroupId g, std::size_t idx) {
    FailureEvent e{Kind::kCrash, at, g, idx, {}};
    return e;
  }
  static FailureEvent Recover(sim::Time at, vr::GroupId g, std::size_t idx) {
    FailureEvent e{Kind::kRecover, at, g, idx, {}};
    return e;
  }
  static FailureEvent RecoverDiskless(sim::Time at, vr::GroupId g,
                                      std::size_t idx) {
    FailureEvent e{Kind::kRecoverDiskless, at, g, idx, {}};
    return e;
  }
  static FailureEvent Partition(sim::Time at,
                                std::vector<std::vector<net::NodeId>> sides) {
    FailureEvent e{Kind::kPartition, at, 0, 0, std::move(sides)};
    return e;
  }
  static FailureEvent Heal(sim::Time at) {
    FailureEvent e{Kind::kHeal, at, 0, 0, {}};
    return e;
  }
};

// Schedules every event; the cluster must outlive the simulation run.
inline void ArmFailureSchedule(client::Cluster& cluster,
                               const std::vector<FailureEvent>& events) {
  for (const FailureEvent& e : events) {
    cluster.sim().scheduler().At(e.at, [&cluster, e] {
      switch (e.kind) {
        case FailureEvent::Kind::kCrash:
          cluster.Crash(e.group, e.index);
          break;
        case FailureEvent::Kind::kRecover:
          cluster.Recover(e.group, e.index);
          break;
        case FailureEvent::Kind::kRecoverDiskless:
          cluster.RecoverDiskless(e.group, e.index);
          break;
        case FailureEvent::Kind::kPartition:
          cluster.network().Partition(e.sides);
          break;
        case FailureEvent::Kind::kHeal:
          cluster.network().Heal();
          break;
      }
    });
  }
}

// Generates a random crash/recover schedule for one group: each cohort
// independently fails with MTTF/MTTR drawn from exponentials. Used by E7.
inline std::vector<FailureEvent> RandomCrashSchedule(
    sim::Rng& rng, vr::GroupId group, std::size_t replicas, sim::Time horizon,
    double mttf_seconds, double mttr_seconds) {
  std::vector<FailureEvent> out;
  for (std::size_t i = 0; i < replicas; ++i) {
    sim::Time t = 0;
    bool up = true;
    while (true) {
      const double mean = up ? mttf_seconds : mttr_seconds;
      t += rng.Exponential(mean * sim::kSecond);
      if (t >= horizon) break;
      out.push_back(up ? FailureEvent::Crash(t, group, i)
                       : FailureEvent::Recover(t, group, i));
      up = !up;
    }
  }
  return out;
}

// Multi-group variant for sharded deployments: an independent MTTF/MTTR
// schedule per listed (group, replicas) pair, merged into one event list.
inline std::vector<FailureEvent> RandomMultiGroupCrashSchedule(
    sim::Rng& rng,
    const std::vector<std::pair<vr::GroupId, std::size_t>>& groups,
    sim::Time horizon, double mttf_seconds, double mttr_seconds) {
  std::vector<FailureEvent> out;
  for (const auto& [g, replicas] : groups) {
    auto one = RandomCrashSchedule(rng, g, replicas, horizon, mttf_seconds,
                                   mttr_seconds);
    out.insert(out.end(), one.begin(), one.end());
  }
  return out;
}

// Whole-cluster blackout: every replica of every listed group crashes at
// `at` and recovers (disk intact) staggered from `at + outage` — the §4.2
// catastrophe drill aimed at a sharded deployment.
inline std::vector<FailureEvent> WholeClusterOutage(
    const std::vector<std::pair<vr::GroupId, std::size_t>>& groups,
    sim::Time at, sim::Duration outage,
    sim::Duration stagger = 20 * sim::kMillisecond) {
  std::vector<FailureEvent> out;
  sim::Duration skew = 0;
  for (const auto& [g, replicas] : groups) {
    for (std::size_t i = 0; i < replicas; ++i) {
      out.push_back(FailureEvent::Crash(at, g, i));
      out.push_back(FailureEvent::Recover(at + outage + skew, g, i));
      skew += stagger;
    }
  }
  return out;
}

}  // namespace vsr::workload
