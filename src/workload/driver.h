// Closed-loop transaction driver: keeps a bounded number of transactions in
// flight at a client group's primary, records outcomes and commit latency.
// Used by tests, benches, and examples.
#pragma once

#include <functional>

#include "check/invariants.h"
#include "client/cluster.h"
#include "workload/stats.h"

namespace vsr::workload {

struct DriverOptions {
  int total_txns = 100;
  int max_inflight = 4;
  // Give up if this much simulated time passes without finishing.
  sim::Duration deadline = 120 * sim::kSecond;
  // Retry transactions that abort (fresh transaction, same body factory
  // index) up to this many times — how a real application reacts to the
  // paper's abort-on-uncertainty rule.
  int retries_per_txn = 0;
  // Called once per logical transaction at FINAL resolution (after any
  // retries): lets harnesses fold exactly-committed work into a model (the
  // zero-lost/zero-duplicated check in the rebalance drills).
  std::function<void(std::uint64_t, vr::TxnOutcome)> on_outcome;
  // When non-empty, transaction i coordinates at group [i % size] instead of
  // the constructor's client_group — sharded workloads would otherwise
  // serialize every 2PC at a single coordinator primary.
  std::vector<vr::GroupId> coordinator_groups;
};

class ClosedLoopDriver {
 public:
  // `make_body(i)` builds the body of logical transaction i.
  ClosedLoopDriver(client::Cluster& cluster, vr::GroupId client_group,
                   std::function<core::TxnBody(std::uint64_t)> make_body,
                   DriverOptions options)
      : cluster_(cluster),
        client_group_(client_group),
        make_body_(std::move(make_body)),
        options_(options) {}

  // Runs to completion (or deadline). Returns true if all transactions
  // resolved.
  bool Run() {
    const sim::Time deadline = cluster_.sim().Now() + options_.deadline;
    while (resolved_ < options_.total_txns &&
           cluster_.sim().Now() < deadline) {
      PumpNew();
      cluster_.RunFor(5 * sim::kMillisecond);
    }
    return resolved_ >= options_.total_txns;
  }

  const check::CommitAccounting& accounting() const { return accounting_; }
  const LatencyRecorder& latency() const { return latency_; }
  int resolved() const { return resolved_; }

 private:
  vr::GroupId CoordinatorFor(std::uint64_t i) const {
    if (options_.coordinator_groups.empty()) return client_group_;
    return options_.coordinator_groups[i % options_.coordinator_groups.size()];
  }

  void PumpNew() {
    while (inflight_ < options_.max_inflight &&
           next_ < static_cast<std::uint64_t>(options_.total_txns)) {
      core::Cohort* primary = cluster_.AnyPrimary(CoordinatorFor(next_));
      if (primary == nullptr) return;
      Launch(next_++, options_.retries_per_txn, primary);
    }
  }

  void Launch(std::uint64_t i, int retries_left, core::Cohort* primary) {
    ++inflight_;
    const sim::Time start = cluster_.sim().Now();
    primary->SpawnTransaction(
        make_body_(i), [this, i, retries_left, start](vr::TxnOutcome o) {
          --inflight_;
          if (o == vr::TxnOutcome::kAborted && retries_left > 0) {
            core::Cohort* p = cluster_.AnyPrimary(CoordinatorFor(i));
            if (p != nullptr) {
              Launch(i, retries_left - 1, p);
              return;
            }
          }
          accounting_.Note(o);
          ++resolved_;
          if (o == vr::TxnOutcome::kCommitted) {
            latency_.Add(cluster_.sim().Now() - start);
          }
          if (options_.on_outcome) options_.on_outcome(i, o);
        });
  }

  client::Cluster& cluster_;
  vr::GroupId client_group_;
  std::function<core::TxnBody(std::uint64_t)> make_body_;
  DriverOptions options_;

  std::uint64_t next_ = 0;
  int inflight_ = 0;
  int resolved_ = 0;
  check::CommitAccounting accounting_;
  LatencyRecorder latency_;
};

}  // namespace vsr::workload
