#include "workload/bank.h"

#include <stdexcept>

namespace vsr::workload {
namespace {

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

std::pair<std::string, long long> SplitAmount(const std::string& args) {
  auto eq = args.find('=');
  if (eq == std::string::npos) throw core::TxnError("bad args: " + args);
  return {args.substr(0, eq), std::stoll(args.substr(eq + 1))};
}

}  // namespace

void RegisterBankProcs(core::Cohort& cohort) {
  cohort.RegisterProc(
      "open",
      [](core::ProcContext& ctx) -> host::Task<std::vector<std::uint8_t>> {
        auto [acct, amount] = SplitAmount(ctx.ArgsAsString());
        co_await ctx.Write(acct, std::to_string(amount));
        co_return Bytes("ok");
      });
  cohort.RegisterProc(
      "deposit",
      [](core::ProcContext& ctx) -> host::Task<std::vector<std::uint8_t>> {
        auto [acct, amount] = SplitAmount(ctx.ArgsAsString());
        auto v = co_await ctx.ReadForUpdate(acct);
        const long long cur = v && !v->empty() ? std::stoll(*v) : 0;
        co_await ctx.Write(acct, std::to_string(cur + amount));
        co_return Bytes(std::to_string(cur + amount));
      });
  cohort.RegisterProc(
      "withdraw",
      [](core::ProcContext& ctx) -> host::Task<std::vector<std::uint8_t>> {
        auto [acct, amount] = SplitAmount(ctx.ArgsAsString());
        auto v = co_await ctx.ReadForUpdate(acct);
        const long long cur = v && !v->empty() ? std::stoll(*v) : 0;
        if (cur < amount) {
          throw core::TxnError("insufficient funds in " + acct);
        }
        co_await ctx.Write(acct, std::to_string(cur - amount));
        co_return Bytes(std::to_string(cur - amount));
      });
  cohort.RegisterProc(
      "balance",
      [](core::ProcContext& ctx) -> host::Task<std::vector<std::uint8_t>> {
        auto v = co_await ctx.Read(ctx.ArgsAsString());
        co_return Bytes(v.value_or("0"));
      });
}

void RegisterBankProcs(client::Cluster& cluster, vr::GroupId group) {
  for (core::Cohort* c : cluster.Cohorts(group)) RegisterBankProcs(*c);
}

long long CommittedBankTotal(client::Cluster& cluster, vr::GroupId group,
                             int num_accounts) {
  core::Cohort* primary = cluster.AnyPrimary(group);
  if (primary == nullptr) return -1;
  long long total = 0;
  for (int i = 0; i < num_accounts; ++i) {
    auto v = primary->objects().ReadCommitted("a" + std::to_string(i));
    if (v && !v->empty()) total += std::stoll(*v);
  }
  return total;
}

core::TxnBody MakeDepositTxn(vr::GroupId bank, std::string acct,
                             long long amt) {
  return [bank, acct = std::move(acct),
          amt](core::TxnHandle& h) -> host::Task<bool> {
    co_await h.Call(bank, "deposit", acct + "=" + std::to_string(amt));
    co_return true;
  };
}

core::TxnBody MakeTransferTxn(vr::GroupId from_bank, std::string from_acct,
                              vr::GroupId to_bank, std::string to_acct,
                              long long amt) {
  return [from_bank, from_acct = std::move(from_acct), to_bank,
          to_acct = std::move(to_acct),
          amt](core::TxnHandle& h) -> host::Task<bool> {
    // Withdraw first: if funds are short the call fails and the whole
    // transaction aborts atomically — the deposit never happens.
    co_await h.Call(from_bank, "withdraw",
                    from_acct + "=" + std::to_string(amt));
    co_await h.Call(to_bank, "deposit", to_acct + "=" + std::to_string(amt));
    co_return true;
  };
}

}  // namespace vsr::workload
