// Catalog workload: a read-mostly key/value table of item descriptions —
// the exercise for backup read leases (DESIGN.md §14). Writers update item
// entries through ordinary transactions at the primary; the overwhelming
// read traffic goes through client::ReadClient, which a lease-holding
// backup may answer without touching the primary at all.
//
// Procedures registered on a catalog group:
//   put    "item=desc"  create or overwrite an item's description
//   bump   "item"       rewrite the item with a version-bumped description
//                       (read-modify-write; exercises per-object stamping)
//   get    "item"       transactional read — the baseline every lease read
//                       is compared against
#pragma once

#include <string>

#include "client/cluster.h"
#include "core/cohort.h"

namespace vsr::workload {

// Registers the catalog procedures on one cohort (call on every member of
// the group — all replicas of a module carry identical code).
void RegisterCatalogProcs(core::Cohort& cohort);

// Convenience: registers on every cohort of a simulated cluster's group.
void RegisterCatalogProcs(client::Cluster& cluster, vr::GroupId group);

// The uid for item number i ("item<i>").
std::string CatalogKey(int i);

// Transaction bodies (run at a client group's primary).
core::TxnBody MakeCatalogPutTxn(vr::GroupId group, std::string item,
                                std::string desc);
core::TxnBody MakeCatalogBumpTxn(vr::GroupId group, std::string item);
// Transactional read of one item — the primary-only baseline read path.
core::TxnBody MakeCatalogGetTxn(vr::GroupId group, std::string item);

}  // namespace vsr::workload
