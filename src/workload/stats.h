// Latency/aggregate statistics for workload drivers and benches.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace vsr::workload {

class LatencyRecorder {
 public:
  void Add(sim::Duration d) {
    samples_.push_back(d);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }

  double Mean() const {
    if (samples_.empty()) return 0;
    double sum = 0;
    for (auto s : samples_) sum += static_cast<double>(s);
    return sum / static_cast<double>(samples_.size());
  }

  sim::Duration Percentile(double p) const {
    if (samples_.empty()) return 0;
    Sort();
    double idx = p / 100.0 * static_cast<double>(samples_.size() - 1);
    return samples_[static_cast<std::size_t>(idx + 0.5)];
  }

  sim::Duration Min() const {
    if (samples_.empty()) return 0;
    Sort();
    return samples_.front();
  }
  sim::Duration Max() const {
    if (samples_.empty()) return 0;
    Sort();
    return samples_.back();
  }

  std::string Summary() const {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "n=%zu mean=%s p50=%s p99=%s max=%s", count(),
                  sim::FormatDuration(static_cast<sim::Duration>(Mean())).c_str(),
                  sim::FormatDuration(Percentile(50)).c_str(),
                  sim::FormatDuration(Percentile(99)).c_str(),
                  sim::FormatDuration(Max()).c_str());
    return buf;
  }

 private:
  void Sort() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }
  mutable std::vector<sim::Duration> samples_;
  mutable bool sorted_ = true;
};

}  // namespace vsr::workload
