#include "sim/task.h"
#include "workload/airline.h"

namespace vsr::workload {
namespace {

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

std::pair<std::string, long long> Split(const std::string& args) {
  auto eq = args.find('=');
  if (eq == std::string::npos) throw core::TxnError("bad args: " + args);
  return {args.substr(0, eq), std::stoll(args.substr(eq + 1))};
}

}  // namespace

void RegisterAirlineProcs(client::Cluster& cluster, vr::GroupId group) {
  cluster.RegisterProc(
      group, "add_flight",
      [](core::ProcContext& ctx) -> sim::Task<std::vector<std::uint8_t>> {
        auto [flight, seats] = Split(ctx.ArgsAsString());
        co_await ctx.Write(flight, std::to_string(seats));
        co_return Bytes("ok");
      });
  cluster.RegisterProc(
      group, "reserve",
      [](core::ProcContext& ctx) -> sim::Task<std::vector<std::uint8_t>> {
        auto [flight, n] = Split(ctx.ArgsAsString());
        auto v = co_await ctx.ReadForUpdate(flight);
        if (!v) throw core::TxnError("unknown flight " + flight);
        const long long left = std::stoll(*v);
        if (left < n) throw core::TxnError("sold out: " + flight);
        co_await ctx.Write(flight, std::to_string(left - n));
        co_return Bytes(std::to_string(left - n));
      });
  cluster.RegisterProc(
      group, "release",
      [](core::ProcContext& ctx) -> sim::Task<std::vector<std::uint8_t>> {
        auto [flight, n] = Split(ctx.ArgsAsString());
        auto v = co_await ctx.ReadForUpdate(flight);
        const long long left = v && !v->empty() ? std::stoll(*v) : 0;
        co_await ctx.Write(flight, std::to_string(left + n));
        co_return Bytes(std::to_string(left + n));
      });
  cluster.RegisterProc(
      group, "seats",
      [](core::ProcContext& ctx) -> sim::Task<std::vector<std::uint8_t>> {
        auto v = co_await ctx.Read(ctx.ArgsAsString());
        co_return Bytes(v.value_or("0"));
      });
}

core::TxnBody MakeBookingTxn(std::vector<ItineraryLeg> legs) {
  return [legs = std::move(legs)](core::TxnHandle& h) -> sim::Task<bool> {
    for (const ItineraryLeg& leg : legs) {
      co_await h.Call(leg.region, "reserve",
                      leg.flight + "=" + std::to_string(leg.seats));
    }
    co_return true;
  };
}

long long CommittedSeats(client::Cluster& cluster, vr::GroupId region,
                         const std::string& flight) {
  core::Cohort* primary = cluster.AnyPrimary(region);
  if (primary == nullptr) return -1;
  auto v = primary->objects().ReadCommitted(flight);
  return v && !v->empty() ? std::stoll(*v) : 0;
}

}  // namespace vsr::workload
