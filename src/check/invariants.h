// Protocol invariant checkers used by the property/stress test suites and
// the availability benchmarks.
//
// What we check (and where the paper claims it):
//   * At most one active primary per viewid — a view has exactly one primary
//     (§2); several active primaries may coexist transiently, but only in
//     DIFFERENT views, and only the latest can commit (§4.1).
//   * Views contain a majority of the configuration (§2).
//   * Committed transactions survive view changes: "events known to a
//     majority of cohorts survive into subsequent views. Thus, events of
//     committed transactions will survive view changes" (§2).
//   * One-copy serializability (§1) — validated through commit accounting on
//     read-modify-write counters (a lost update or phantom double-execution
//     changes the final counter) and through replica-state digests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "client/cluster.h"

namespace vsr::check {

// Commit accounting for counter-increment workloads: each committed
// transaction added exactly +1; unknown-outcome transactions may or may not
// have applied. The final counter must land in [committed, committed+unknown].
struct CommitAccounting {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t unknown = 0;

  void Note(vr::TxnOutcome o) {
    switch (o) {
      case vr::TxnOutcome::kCommitted:
        ++committed;
        break;
      case vr::TxnOutcome::kAborted:
        ++aborted;
        break;
      default:
        ++unknown;
        break;
    }
  }

  bool ValidateCounter(long long final_value, std::string* why = nullptr) const {
    const long long lo = static_cast<long long>(committed);
    const long long hi = static_cast<long long>(committed + unknown);
    if (final_value < lo || final_value > hi) {
      if (why != nullptr) {
        *why = "final counter " + std::to_string(final_value) +
               " outside [" + std::to_string(lo) + ", " + std::to_string(hi) +
               "] (committed=" + std::to_string(committed) +
               " unknown=" + std::to_string(unknown) + ")";
      }
      return false;
    }
    return true;
  }
};

// A digest of a cohort's committed state (base versions only).
std::string StateDigest(const txn::ObjectStore& store);

// Structural invariants that must hold at any instant.
std::vector<std::string> CheckInstant(client::Cluster& cluster,
                                      vr::GroupId group);

// Additional invariants that must hold once the group is quiescent (no
// in-flight transactions, buffer drained): all cohorts active in the
// primary's view hold identical committed state.
std::vector<std::string> CheckQuiescent(client::Cluster& cluster,
                                        vr::GroupId group);

// Sharded-deployment invariants over the placement directory (DESIGN.md
// §11): ranges tile the key space (first lo == "", contiguous, last hi ==
// ""), every owner / move target is a registered group, and move state is
// internally consistent (moving_to set iff mid-move, and never the owner).
std::vector<std::string> CheckPlacement(const core::Directory& dir);

// Cross-group conservation: sums each listed account's committed balance at
// its directory-owner's primary and compares to `expected_total`. Valid once
// the shard groups are quiescent. Appends violations (unreadable accounts
// count as violations — an unreachable primary makes the audit impossible).
std::vector<std::string> CheckConservation(
    client::Cluster& cluster, const std::vector<std::string>& accounts,
    long long expected_total);

}  // namespace vsr::check
