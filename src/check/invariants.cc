#include "check/invariants.h"

#include <map>

#include "wire/buffer.h"

namespace vsr::check {

std::string StateDigest(const txn::ObjectStore& store) {
  wire::Writer w;
  for (const std::string& uid : store.ObjectIds()) {
    auto v = store.ReadCommitted(uid);
    if (!v) continue;  // objects created but never committed don't count
    w.String(uid);
    w.String(*v);
  }
  const auto bytes = w.Take();
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", wire::Crc32(bytes));
  return buf;
}

std::vector<std::string> CheckInstant(client::Cluster& cluster,
                                      vr::GroupId group) {
  std::vector<std::string> violations;
  auto cohorts = cluster.Cohorts(group);
  const std::size_t n = cohorts.size();

  // At most one active primary per viewid.
  std::map<vr::ViewId, int> primaries_per_view;
  for (auto* c : cohorts) {
    if (c->IsActivePrimary()) ++primaries_per_view[c->cur_viewid()];
  }
  for (const auto& [vid, count] : primaries_per_view) {
    if (count > 1) {
      violations.push_back("view " + vid.ToString() + " has " +
                           std::to_string(count) + " active primaries");
    }
  }

  for (auto* c : cohorts) {
    if (c->status() == core::Status::kCrashed) continue;
    // Views contain a majority of the configuration.
    if (c->status() == core::Status::kActive &&
        c->cur_view().Size() < vr::MajorityOf(n)) {
      violations.push_back("cohort " + std::to_string(c->mid()) +
                           " active in minority view " +
                           c->cur_viewid().ToString());
    }
    // max_viewid never lags cur_viewid.
    if (c->max_viewid() < c->cur_viewid()) {
      violations.push_back("cohort " + std::to_string(c->mid()) +
                           " max_viewid < cur_viewid");
    }
    // Histories carry strictly increasing viewids.
    const auto& entries = c->history().entries();
    for (std::size_t i = 1; i < entries.size(); ++i) {
      if (!(entries[i - 1].view < entries[i].view)) {
        violations.push_back("cohort " + std::to_string(c->mid()) +
                             " history viewids not increasing");
      }
    }
  }
  return violations;
}

std::vector<std::string> CheckQuiescent(client::Cluster& cluster,
                                        vr::GroupId group) {
  std::vector<std::string> violations = CheckInstant(cluster, group);
  auto cohorts = cluster.Cohorts(group);

  core::Cohort* primary = cluster.AnyPrimary(group);
  if (primary == nullptr) return violations;  // nothing more to compare

  const std::string expect = StateDigest(primary->objects());
  for (auto* c : cohorts) {
    if (c == primary) continue;
    if (c->status() != core::Status::kActive) continue;
    if (c->cur_viewid() != primary->cur_viewid()) continue;
    // Lazy-apply backups (§3.3 trade-off) intentionally defer folding
    // records into their gstate until promotion; their base state lags the
    // primary's by design, so the digest comparison only applies to eager
    // backups.
    if (!c->options().eager_backup_apply) continue;
    const std::string got = StateDigest(c->objects());
    if (got != expect) {
      violations.push_back("cohort " + std::to_string(c->mid()) +
                           " committed-state digest " + got +
                           " != primary's " + expect);
    }
  }
  return violations;
}

std::vector<std::string> CheckPlacement(const core::Directory& dir) {
  std::vector<std::string> violations;
  const auto& ranges = dir.ranges();
  if (ranges.empty()) {
    violations.push_back("placement: no ranges assigned");
    return violations;
  }
  if (!ranges.front().lo.empty()) {
    violations.push_back("placement: first range starts at \"" +
                         ranges.front().lo + "\", not \"\"");
  }
  if (!ranges.back().hi.empty()) {
    violations.push_back("placement: last range ends at \"" +
                         ranges.back().hi + "\", not +inf");
  }
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    const core::ShardRange& r = ranges[i];
    const std::string where = "[" + r.lo + ", " + r.hi + ")";
    if (i > 0 && ranges[i - 1].hi != r.lo) {
      violations.push_back("placement: gap/overlap between [" +
                           ranges[i - 1].lo + ", " + ranges[i - 1].hi +
                           ") and " + where);
    }
    if (dir.Lookup(r.owner) == nullptr) {
      violations.push_back("placement: " + where + " owned by unknown group " +
                           std::to_string(r.owner));
    }
    const bool moving = r.state != core::ShardState::kSettled;
    if (moving && dir.Lookup(r.moving_to) == nullptr) {
      violations.push_back("placement: " + where +
                           " moving to unknown group " +
                           std::to_string(r.moving_to));
    }
    if (moving && r.moving_to == r.owner) {
      violations.push_back("placement: " + where + " moving to its owner");
    }
    if (!moving && r.moving_to != 0) {
      violations.push_back("placement: settled " + where +
                           " has moving_to set");
    }
  }
  return violations;
}

std::vector<std::string> CheckConservation(
    client::Cluster& cluster, const std::vector<std::string>& accounts,
    long long expected_total) {
  std::vector<std::string> violations;
  long long total = 0;
  for (const std::string& acct : accounts) {
    const core::ShardRange* r = cluster.directory().Route(acct);
    if (r == nullptr) {
      violations.push_back("conservation: account " + acct + " unplaced");
      return violations;
    }
    core::Cohort* primary = cluster.AnyPrimary(r->owner);
    if (primary == nullptr) {
      violations.push_back("conservation: group " + std::to_string(r->owner) +
                           " (owner of " + acct + ") has no primary");
      return violations;
    }
    auto v = primary->objects().ReadCommitted(acct);
    if (v && !v->empty()) total += std::stoll(*v);
  }
  if (total != expected_total) {
    violations.push_back("conservation: cluster-wide total " +
                         std::to_string(total) + " != expected " +
                         std::to_string(expected_total));
  }
  return violations;
}

}  // namespace vsr::check
