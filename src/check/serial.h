// A one-copy-serializability checker for read-modify-write register
// workloads.
//
// Convention: every transaction read the register's current value `prev` and
// wrote a globally unique value `next`. Under one-copy serializability (§1)
// the transactions that actually committed must form a single chain
//
//     initial -> v1 -> v2 -> ... -> final
//
// where each transaction's `prev` is exactly its predecessor's `next`.
// A lost update (two committed transactions reading the same prev), a dirty
// read (reading a value that never committed), or a phantom double-execution
// all break the chain and are reported with a precise reason.
//
// Transactions whose outcome the client could not learn (kUnknown — e.g. the
// coordinator's group view-changed during phase two, §3.4) may or may not
// have committed; their edges are optional links the chain is allowed, but
// not required, to traverse.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace vsr::check {

class RegisterChainChecker {
 public:
  // Records one transaction's read/write pair.
  void NoteCommitted(std::string prev, std::string next) {
    committed_.emplace_back(std::move(prev), std::move(next));
  }
  void NoteUnknown(std::string prev, std::string next) {
    unknown_.emplace_back(std::move(prev), std::move(next));
  }

  std::size_t committed() const { return committed_.size(); }
  std::size_t unknown() const { return unknown_.size(); }

  // Validates that some resolution of the unknown transactions yields a
  // serial chain from `initial` to `final_value` containing every committed
  // transaction. On failure returns false with a reason in *why.
  bool Validate(const std::string& initial, const std::string& final_value,
                std::string* why) const {
    // Unique-write check across everything that could have applied.
    std::set<std::string> all_writes;
    for (const auto& [prev, next] : committed_) {
      if (!all_writes.insert(next).second) {
        if (why != nullptr) *why = "duplicate write of value '" + next + "'";
        return false;
      }
    }
    for (const auto& [prev, next] : unknown_) {
      if (!all_writes.insert(next).second) {
        if (why != nullptr) *why = "duplicate write of value '" + next + "'";
        return false;
      }
    }
    // Lost-update check among committed transactions.
    std::map<std::string, std::string> committed_next;
    for (const auto& [prev, next] : committed_) {
      auto [it, inserted] = committed_next.emplace(prev, next);
      if (!inserted) {
        if (why != nullptr) {
          *why = "lost update: '" + prev +
                 "' read by two committed writers ('" + it->second +
                 "' and '" + next + "')";
        }
        return false;
      }
    }
    std::multimap<std::string, std::string> unknown_next;
    for (const auto& [prev, next] : unknown_) unknown_next.emplace(prev, next);

    // Depth-first search over the optional unknown edges for a chain that
    // consumes every committed edge and ends at final_value.
    std::set<std::string> used_unknown;
    if (Walk(initial, final_value, 0, committed_next, unknown_next,
             used_unknown)) {
      return true;
    }
    if (why != nullptr) {
      *why = "no serial chain from '" + initial + "' to '" + final_value +
             "' covering all " + std::to_string(committed_.size()) +
             " committed transactions (" + std::to_string(unknown_.size()) +
             " unknown)";
    }
    return false;
  }

 private:
  bool Walk(const std::string& cur, const std::string& final_value,
            std::size_t committed_done,
            const std::map<std::string, std::string>& committed_next,
            const std::multimap<std::string, std::string>& unknown_next,
            std::set<std::string>& used_unknown) const {
    if (committed_done == committed_.size() && cur == final_value) return true;
    // Committed edges are mandatory once reachable; prefer them (a committed
    // reader of `cur` proves `cur`'s writer serialized right before it).
    if (auto it = committed_next.find(cur); it != committed_next.end()) {
      if (Walk(it->second, final_value, committed_done + 1, committed_next,
               unknown_next, used_unknown)) {
        return true;
      }
    }
    auto [lo, hi] = unknown_next.equal_range(cur);
    for (auto it = lo; it != hi; ++it) {
      if (used_unknown.count(it->second) != 0) continue;
      used_unknown.insert(it->second);
      if (Walk(it->second, final_value, committed_done, committed_next,
               unknown_next, used_unknown)) {
        return true;
      }
      used_unknown.erase(it->second);
    }
    return false;
  }

  std::vector<std::pair<std::string, std::string>> committed_;
  std::vector<std::pair<std::string, std::string>> unknown_;
};

}  // namespace vsr::check
