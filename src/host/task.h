// Minimal C++20 coroutine support over the host seam.
//
// Task<T> is a lazy, single-awaiter coroutine. Protocol handlers that must
// suspend mid-execution — a server procedure making a nested remote call, a
// client transaction script awaiting a reply — are written as Task
// coroutines; the host resumes them when the awaited event fires. Because
// resumption is always driven by a TimerService callback or a frame handler,
// coroutines run on whatever single thread drives the host, on both the
// simulator and the threaded socket host.
//
// Lifetime rules (important for crash injection):
//   * A Task owns its coroutine frame; destroying the Task destroys the
//     frame, recursively destroying any inner Task the frame is awaiting.
//   * Awaitables that register external resumption (timers, pending RPC
//     tables) MUST deregister in their destructor, so that destroying a
//     suspended coroutine — e.g. because the node it runs on crashed —
//     leaves no dangling resume path. See SleepAwaiter for the pattern.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>

#include "host/timer.h"

namespace vsr::host {

template <typename T>
class Task;

namespace detail {

template <typename T>
class TaskPromiseBase {
 public:
  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto& promise = h.promise();
      if (promise.on_done_) promise.on_done_();
      if (promise.continuation_) return promise.continuation_;
      return std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { error_ = std::current_exception(); }

  void set_continuation(std::coroutine_handle<> c) { continuation_ = c; }
  void set_on_done(std::function<void()> f) { on_done_ = std::move(f); }

  void RethrowIfError() {
    if (error_) std::rethrow_exception(error_);
  }

 protected:
  std::coroutine_handle<> continuation_;
  std::function<void()> on_done_;
  std::exception_ptr error_;
};

}  // namespace detail

// A lazy coroutine returning T. The coroutine body does not start executing
// until the Task is awaited or Start()ed.
template <typename T>
class Task {
 public:
  struct promise_type : detail::TaskPromiseBase<T> {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <typename U>
    void return_value(U&& v) {
      value_.emplace(std::forward<U>(v));
    }
    std::optional<T> value_;
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      Destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  // Awaiting a Task starts it and suspends the awaiter until it completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        h.promise().set_continuation(awaiting);
        return h;  // symmetric transfer: start the child
      }
      T await_resume() {
        h.promise().RethrowIfError();
        assert(h.promise().value_.has_value());
        return std::move(*h.promise().value_);
      }
    };
    return Awaiter{handle_};
  }

  // Releases ownership of the frame (caller becomes responsible).
  std::coroutine_handle<promise_type> Release() {
    return std::exchange(handle_, {});
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class Task<void> {
 public:
  struct promise_type : detail::TaskPromiseBase<void> {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      Destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        h.promise().set_continuation(awaiting);
        return h;
      }
      void await_resume() { h.promise().RethrowIfError(); }
    };
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> Release() {
    return std::exchange(handle_, {});
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

// Owns the frames of detached ("fire and forget") coroutines, e.g. the
// handler coroutine a server spawns per incoming call. Frames are reaped via
// a zero-delay timer after completion; DestroyAll() tears down all
// still-live frames, which is exactly the semantics of a node crash.
class TaskRegistry {
 public:
  explicit TaskRegistry(TimerService& timers) : timers_(timers) {}
  TaskRegistry(const TaskRegistry&) = delete;
  TaskRegistry& operator=(const TaskRegistry&) = delete;
  ~TaskRegistry() { DestroyAll(); }

  // Starts `t` and retains its frame until it finishes. Returns a token
  // identifying the spawned task (usable with Alive()).
  std::uint64_t Spawn(Task<void> t) {
    auto h = t.Release();
    if (!h) return 0;
    const std::uint64_t id = next_id_++;
    h.promise().set_on_done([this, id] {
      // The frame is suspended at final_suspend; destroying it here (from
      // inside its own final awaiter) would be UB-adjacent, so defer.
      timers_.After(0, [this, id] { Reap(id); });
    });
    live_.emplace(id, h);
    h.resume();
    return id;
  }

  bool Alive(std::uint64_t id) const { return live_.count(id) != 0; }
  std::size_t live_count() const { return live_.size(); }

  // Destroys every live frame. Safe against frames whose completion reap
  // events are still queued: Reap() on a missing id is a no-op.
  void DestroyAll() {
    auto frames = std::move(live_);
    live_.clear();
    for (auto& [id, h] : frames) h.destroy();
  }

 private:
  void Reap(std::uint64_t id) {
    auto it = live_.find(id);
    if (it == live_.end()) return;
    it->second.destroy();
    live_.erase(it);
  }

  TimerService& timers_;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, std::coroutine_handle<Task<void>::promise_type>>
      live_;
};

// co_await Sleep(timers, d) suspends the coroutine for `d` of host time.
// If the coroutine is destroyed while sleeping, the timer is cancelled.
class SleepAwaiter {
 public:
  SleepAwaiter(TimerService& timers, Duration d) : timers_(timers), delay_(d) {}
  SleepAwaiter(const SleepAwaiter&) = delete;
  SleepAwaiter& operator=(const SleepAwaiter&) = delete;
  ~SleepAwaiter() {
    if (timer_ != kNoTimer && !fired_) timers_.Cancel(timer_);
  }

  bool await_ready() const noexcept { return delay_ == 0; }
  void await_suspend(std::coroutine_handle<> h) {
    timer_ = timers_.After(delay_, [this, h] {
      fired_ = true;
      h.resume();
    });
  }
  void await_resume() noexcept {}

 private:
  TimerService& timers_;
  Duration delay_;
  TimerId timer_ = kNoTimer;
  bool fired_ = false;
};

inline SleepAwaiter Sleep(TimerService& timers, Duration d) {
  return SleepAwaiter(timers, d);
}

}  // namespace vsr::host
