#include "host/trace.h"

#include <cstdio>
#include <vector>

namespace vsr::host {

void Tracer::Log(Time now, TraceLevel level, const char* tag, const char* fmt,
                 ...) {
  if (!Enabled(level)) return;

  va_list args;
  va_start(args, fmt);
  char stack_buf[512];
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, args);
  std::string line;
  if (n >= 0 && static_cast<size_t>(n) < sizeof(stack_buf)) {
    line.assign(stack_buf, static_cast<size_t>(n));
  } else if (n > 0) {
    std::vector<char> big(static_cast<size_t>(n) + 1);
    std::vsnprintf(big.data(), big.size(), fmt, args_copy);
    line.assign(big.data(), static_cast<size_t>(n));
  }
  va_end(args_copy);
  va_end(args);

  if (sink_) {
    sink_(now, level, tag, line);
  } else {
    std::fprintf(stderr, "[%s] %s: %s\n", FormatDuration(now).c_str(), tag,
                 line.c_str());
  }
}

}  // namespace vsr::host
