// Time primitives shared by every host.
//
// Protocol code observes time exclusively through host::TimerService
// (see host/timer.h): on the deterministic simulator host that clock is
// discrete-event simulated time; on the threaded socket host it is the
// machine's monotonic clock. Either way the unit is the microsecond and the
// epoch is "when this host started", so all protocol arithmetic — deadlines,
// timeouts, staleness checks — is host-independent.
#pragma once

#include <cstdint>
#include <string>

namespace vsr::host {

// A point in host time, in microseconds since the host's epoch.
using Time = std::uint64_t;

// A span of host time, in microseconds.
using Duration = std::uint64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;

// Renders a time/duration as a human-readable string, e.g. "12.345ms".
std::string FormatDuration(Duration d);

}  // namespace vsr::host
