// LoopbackCluster: N real nodes in one process, talking TCP over 127.0.0.1.
//
// The real-host counterpart of client::Cluster. Every node gets its own
// event-loop thread (its "host thread"), tracer, stable store, and socket
// transport; the cohorts running on top are the exact protocol objects the
// simulator runs — same translation units, compiled against the host seam
// only (DESIGN.md §12). Nothing here is deterministic: timers fire on the
// wall clock, frames ride kernel sockets, and the loss model is whatever
// TCP teardown produces.
//
// Threading rules:
//   * Setup (AddGroup, RegisterProc) happens before Start(), single-threaded.
//   * After Start(), cohort state may only be touched on the owning node's
//     loop thread — every public accessor here posts a closure and blocks
//     until it ran (RunOn).
//   * The shared Directory is sealed at Start(): populated during setup,
//     read-only afterwards, so concurrent Lookup from node threads is safe.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cohort.h"
#include "core/directory.h"
#include "host/event_loop.h"
#include "host/socket_transport.h"
#include "storage/stable_store.h"

namespace vsr::host {

struct LoopbackOptions {
  storage::StableStoreOptions storage;
  core::CohortOptions cohort;
  TraceLevel trace = TraceLevel::kOff;
};

class LoopbackCluster {
 public:
  explicit LoopbackCluster(LoopbackOptions options = {});
  ~LoopbackCluster();
  LoopbackCluster(const LoopbackCluster&) = delete;
  LoopbackCluster& operator=(const LoopbackCluster&) = delete;

  // -- setup (before Start) ---------------------------------------------

  // Creates the group's nodes AND cohorts (constructors only install frame
  // handlers — nothing runs until Start). Cohort pointers are valid
  // immediately, so procedures can be registered the host-agnostic way:
  //   for (auto* c : cluster.Cohorts(bank)) workload::RegisterBankProcs(*c);
  vr::GroupId AddGroup(const std::string& name, std::size_t replicas);
  void RegisterProc(vr::GroupId group, const std::string& name,
                    core::ProcFn fn);
  std::vector<core::Cohort*> Cohorts(vr::GroupId g);

  // Binds every listener, seals the address map and directory, starts the
  // loops, and boots each cohort on its own thread.
  void Start();

  // Stops transports and loops and joins every thread. Idempotent; the
  // destructor calls it.
  void Shutdown();

  // -- cross-thread access ----------------------------------------------

  std::size_t NodeCount() const { return nodes_.size(); }
  const std::vector<std::size_t>& GroupNodes(vr::GroupId g) const {
    return groups_.at(g);
  }

  // Runs `fn(cohort)` on node `idx`'s loop thread and blocks until done.
  void RunOn(std::size_t idx, std::function<void(core::Cohort&)> fn);

  // Index of the node currently acting as active primary of `g`, if any.
  std::optional<std::size_t> PrimaryIndex(vr::GroupId g);

  // Polls until `g` has an active primary whose view an active majority
  // shares (same predicate as client::Cluster::RunUntilStable), or until
  // `timeout_us` of wall time elapsed. Returns success.
  bool WaitUntilStable(vr::GroupId g, Duration timeout_us = 10 * kSecond);

  // Submits a transaction at `g`'s current primary and blocks for the
  // outcome; nullopt if no primary emerged or nothing completed in time.
  std::optional<core::TxnOutcome> RunTransaction(
      vr::GroupId g, core::TxnBody body, Duration timeout_us = 10 * kSecond);

  // Fire-and-forget submission on a known node (the pipelined bench path);
  // `on_done` runs on that node's loop thread.
  void SpawnTransactionOn(std::size_t idx, core::TxnBody body,
                          std::function<void(core::TxnOutcome)> on_done);

  // Fail-stop crash / recovery of one node, run on its loop thread.
  void Crash(std::size_t idx);
  void Recover(std::size_t idx);

  std::uint64_t TotalCommitted(vr::GroupId g);
  std::uint64_t TotalAborted(vr::GroupId g);

  SocketTransport::Stats TransportStats(std::size_t idx) const {
    return nodes_[idx]->transport->stats();
  }

 private:
  struct Node {
    vr::Mid mid = 0;
    vr::GroupId group = 0;
    std::vector<vr::Mid> config;
    std::unique_ptr<EventLoop> loop;
    std::unique_ptr<Tracer> tracer;
    std::unique_ptr<Host> host;
    std::unique_ptr<storage::StableStore> stable;
    std::unique_ptr<SocketTransport> transport;
    std::unique_ptr<core::Cohort> cohort;
  };

  LoopbackOptions options_;
  core::Directory directory_;
  AddressMap addrs_;  // sealed in Start(), read-only afterwards

  vr::Mid next_mid_ = 1;
  vr::GroupId next_group_ = 1;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::map<vr::GroupId, std::vector<std::size_t>> groups_;
  bool started_ = false;
  bool shut_down_ = false;
};

}  // namespace vsr::host
