// The clock/timer half of the host seam (DESIGN.md §12).
//
// Protocol code never consults wall-clock time and never owns a thread; it
// observes time and schedules future work exclusively through this
// interface. Two implementations exist:
//
//   * sim::Scheduler       — the deterministic discrete-event simulator:
//                            Now() is simulated time, callbacks run when the
//                            event queue reaches them.
//   * host::EventLoop      — the threaded real-time host: Now() is the
//                            monotonic clock, callbacks run on the loop's
//                            thread when their deadline passes.
//
// Contract (what protocol code may assume — both hosts must satisfy it, and
// tests/host_conformance_test.cc checks them side by side):
//
//   1. Callbacks scheduled by At/After NEVER run synchronously inside the
//      scheduling call, even with a zero delay. (Protocol code relies on
//      this to escape re-entrancy, e.g. TaskRegistry reaping.)
//   2. Callbacks with earlier deadlines run before callbacks with later
//      deadlines; callbacks with EQUAL deadlines run in scheduling order.
//   3. Cancel() of a pending timer guarantees its callback never runs.
//      Cancelling an already-fired or unknown id is a harmless no-op.
//   4. All callbacks run on the thread that drives this service (the
//      simulator's event loop or the node's event-loop thread) — protocol
//      code is single-threaded per cohort and never needs locks.
//   5. Now() is monotonic, in microseconds, and consistent with callback
//      execution: inside a callback scheduled for time T, Now() >= T.
#pragma once

#include <cstdint>
#include <functional>

#include "host/time.h"

namespace vsr::host {

// Identifies a scheduled timer so that it can be cancelled. Id 0 is never
// issued and may be used as a sentinel for "no timer armed".
using TimerId = std::uint64_t;
inline constexpr TimerId kNoTimer = 0;

class TimerService {
 public:
  virtual ~TimerService() = default;

  // Current host time.
  virtual Time Now() const = 0;

  // Schedules `fn` to run at absolute time `at` (clamped to >= Now()).
  virtual TimerId At(Time at, std::function<void()> fn) = 0;

  // Schedules `fn` to run `delay` from now.
  virtual TimerId After(Duration delay, std::function<void()> fn) = 0;

  // Cancels a pending timer. Cancelling an already-fired or unknown id is a
  // harmless no-op, so callers do not need to track firing themselves.
  virtual void Cancel(TimerId id) = 0;
};

}  // namespace vsr::host
