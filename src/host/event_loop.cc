#include "host/event_loop.h"

#include <chrono>

namespace vsr::host {

namespace {

// All loops in a process share one epoch, so timestamps in traces and bench
// output from different nodes are directly comparable.
std::chrono::steady_clock::time_point ProcessEpoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

Time SteadyNow() {
  return static_cast<Time>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - ProcessEpoch())
          .count());
}

}  // namespace

EventLoop::EventLoop() {
  ProcessEpoch();  // pin the epoch before any thread races to create it
}

EventLoop::~EventLoop() { Stop(); }

void EventLoop::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  thread_ = std::thread([this] { Run(); });
}

void EventLoop::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool EventLoop::OnLoopThread() const {
  return std::this_thread::get_id() == thread_.get_id();
}

Time EventLoop::Now() const { return SteadyNow(); }

TimerId EventLoop::At(Time deadline, std::function<void()> fn) {
  TimerId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    queue_.push(Entry{deadline, id, std::move(fn)});
    live_.insert(id);
  }
  cv_.notify_all();
  return id;
}

TimerId EventLoop::After(Duration delay, std::function<void()> fn) {
  return At(SteadyNow() + delay, std::move(fn));
}

void EventLoop::Cancel(TimerId id) {
  if (id == kNoTimer) return;
  std::lock_guard<std::mutex> lock(mu_);
  live_.erase(id);  // the heap entry becomes a tombstone, skipped at pop
}

void EventLoop::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (queue_.empty()) {
      cv_.wait(lock);
      continue;
    }
    const Time deadline = queue_.top().deadline;
    const Time now = SteadyNow();
    if (deadline > now) {
      cv_.wait_for(lock, std::chrono::microseconds(deadline - now));
      continue;
    }
    // Move the callback out before unlocking; the entry may be a tombstone.
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (live_.erase(e.id) == 0) continue;  // cancelled
    lock.unlock();
    e.fn();  // may call At/After/Cancel re-entrantly (different lock scope)
    lock.lock();
  }
}

}  // namespace vsr::host
