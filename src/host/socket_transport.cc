#include "host/socket_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "wire/buffer.h"

namespace vsr::host {

namespace {

// Reads exactly n bytes; false on EOF/error (connection torn down).
bool ReadFully(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r <= 0) return false;
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool WriteFully(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r <= 0) return false;
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

SocketTransport::SocketTransport(EventLoop& loop, net::NodeId self,
                                 const AddressMap& peers)
    : loop_(loop), self_(self), peers_(peers) {}

SocketTransport::~SocketTransport() { Shutdown(); }

std::uint16_t SocketTransport::Listen(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return 0;
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return 0;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  // The accept thread gets the fd by value: Shutdown writes listen_fd_
  // under the mutex, and the thread must not read the member unlocked.
  acceptor_ = std::thread([this, fd = listen_fd_] { AcceptLoop(fd); });
  return ntohs(addr.sin_port);
}

void SocketTransport::AcceptLoop(int listen_fd) {
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;  // listener closed by Shutdown
    SetNoDelay(fd);
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      ::close(fd);
      return;
    }
    accepted_.push_back(fd);
    readers_.emplace_back([this, fd] { ReaderLoop(fd); });
  }
}

void SocketTransport::ReaderLoop(int fd) {
  std::uint8_t header[kHeaderBytes];
  for (;;) {
    if (!ReadFully(fd, header, kHeaderBytes)) break;
    wire::Reader r(std::span<const std::uint8_t>(header, kHeaderBytes));
    const std::uint32_t len = r.U32();
    net::Frame frame;
    frame.from = r.U32();
    frame.to = r.U32();
    frame.type = r.U16();
    const std::uint32_t crc = r.U32();
    if (len > kMaxPayload) break;  // malformed stream: tear the link down
    frame.payload.resize(len);
    if (len != 0 && !ReadFully(fd, frame.payload.data(), len)) break;
    if (wire::Crc32(frame.payload) != crc) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.dropped_corrupt;
      continue;  // corruption is loss, not teardown (contract point 2)
    }
    loop_.Post([this, f = std::move(frame)]() mutable { Deliver(std::move(f)); });
  }
  {
    // Drop our fd from the shutdown list before closing: the fd number may
    // be recycled, and Shutdown must never shut down a stranger's socket.
    std::lock_guard<std::mutex> lock(mu_);
    accepted_.erase(std::remove(accepted_.begin(), accepted_.end(), fd),
                    accepted_.end());
  }
  ::close(fd);
}

void SocketTransport::Deliver(net::Frame frame) {
  auto it = handlers_.find(frame.to);
  if (it == handlers_.end() || down_.count(frame.to) != 0) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.dropped_node_down;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.frames_delivered;
  }
  it->second->OnFrame(frame);
}

void SocketTransport::Register(net::NodeId node, net::FrameHandler* handler) {
  handlers_[node] = handler;
}

void SocketTransport::Unregister(net::NodeId node) { handlers_.erase(node); }

void SocketTransport::SetNodeUp(net::NodeId node, bool up) {
  if (up) {
    down_.erase(node);
  } else {
    down_.insert(node);
  }
}

int SocketTransport::ConnectTo(net::NodeId to) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(to);
    if (it != conns_.end()) return it->second;
    if (shutdown_) return -1;
  }
  auto addr_it = peers_.find(to);
  if (addr_it == peers_.end()) return -1;

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(addr_it->second.port);
  ::inet_pton(AF_INET, addr_it->second.ip.c_str(), &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  SetNoDelay(fd);
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    ::close(fd);
    return -1;
  }
  conns_[to] = fd;
  return fd;
}

void SocketTransport::Send(net::NodeId from, net::NodeId to,
                           std::uint16_t type,
                           std::vector<std::uint8_t> payload) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.frames_sent;
    stats_.bytes_sent += payload.size() + kHeaderBytes;
  }
  if (to == self_) {
    // Local delivery skips the wire but stays asynchronous: the handler
    // never runs inside Send() (contract point 3).
    net::Frame frame{from, to, type, std::move(payload)};
    loop_.Post([this, f = std::move(frame)]() mutable { Deliver(std::move(f)); });
    return;
  }

  wire::Writer w;
  w.U32(static_cast<std::uint32_t>(payload.size()));
  w.U32(from);
  w.U32(to);
  w.U16(type);
  w.U32(wire::Crc32(payload));
  w.Raw(std::span<const std::uint8_t>(payload.data(), payload.size()));
  const std::vector<std::uint8_t>& buf = w.data();

  int fd = ConnectTo(to);
  if (fd < 0 || !WriteFully(fd, buf.data(), buf.size())) {
    // Connect/write failure = a lost frame (§1 network model). Drop the
    // cached connection so the next Send reconnects.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(to);
    if (it != conns_.end()) {
      ::close(it->second);
      conns_.erase(it);
    }
    ++stats_.send_failures;
  }
}

SocketTransport::Stats SocketTransport::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SocketTransport::Shutdown() {
  std::thread acceptor;
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (int fd : accepted_) ::shutdown(fd, SHUT_RDWR);  // readers close them
    accepted_.clear();
    for (auto& [node, fd] : conns_) ::close(fd);
    conns_.clear();
    acceptor = std::move(acceptor_);
    readers = std::move(readers_);
  }
  if (acceptor.joinable()) acceptor.join();
  for (auto& t : readers) {
    if (t.joinable()) t.join();
  }
}

}  // namespace vsr::host
