#include "host/time.h"

#include <cstdio>

namespace vsr::host {

std::string FormatDuration(Duration d) {
  char buf[64];
  if (d >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(d) / kSecond);
  } else if (d >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.3fms",
                  static_cast<double>(d) / kMillisecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluus",
                  static_cast<unsigned long long>(d));
  }
  return buf;
}

}  // namespace vsr::host
