// vrd: run the replicated transaction stack for real — threads, TCP
// sockets, wall-clock timers — against the same protocol objects the
// deterministic simulator verifies.
//
//   vrd [--replicas N] [--txns N] [--accounts N] [--kill-primary]
//       [--trace] [--pipeline W]
//
// Topology (mirrors examples/quickstart.cpp): a "bank" group of N replicas
// holds the accounts; a single-member "client" group coordinates the
// transactions (the paper's §3 client-module role). Each deposit is a full
// distributed transaction: client primary -> bank primary call, 2PC
// prepare/commit across the pset, forces to backup sub-majorities.
//
// With --kill-primary the bank primary is fail-stop crashed halfway
// through; the run then demonstrates a live view change on the wall clock:
// commits stall, the backups elect a new primary, and the remaining
// transactions land in the new view.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "host/loopback.h"
#include "workload/bank.h"

namespace {

using namespace vsr;

double Pct(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  std::size_t i = static_cast<std::size_t>(p * (v.size() - 1));
  return v[i];
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t replicas = 3;
  int txns = 1000;
  int accounts = 8;
  bool kill_primary = false;
  bool trace = false;
  for (int i = 1; i < argc; ++i) {
    auto arg = [&](const char* name) {
      return std::strcmp(argv[i], name) == 0;
    };
    if (arg("--replicas") && i + 1 < argc) replicas = std::stoul(argv[++i]);
    else if (arg("--txns") && i + 1 < argc) txns = std::stoi(argv[++i]);
    else if (arg("--accounts") && i + 1 < argc) accounts = std::stoi(argv[++i]);
    else if (arg("--kill-primary")) kill_primary = true;
    else if (arg("--trace")) trace = true;
    else {
      std::fprintf(stderr,
                   "usage: vrd [--replicas N] [--txns N] [--accounts N] "
                   "[--kill-primary] [--trace]\n");
      return 2;
    }
  }

  host::LoopbackOptions opts;
  if (trace) opts.trace = host::TraceLevel::kDebug;
  host::LoopbackCluster cluster(opts);
  const vr::GroupId bank = cluster.AddGroup("bank", replicas);
  const vr::GroupId client = cluster.AddGroup("client", 1);
  for (core::Cohort* c : cluster.Cohorts(bank)) {
    workload::RegisterBankProcs(*c);
  }

  cluster.Start();
  std::printf("vrd: %zu bank replicas + 1 client coordinator on 127.0.0.1\n",
              replicas);
  if (!cluster.WaitUntilStable(bank) || !cluster.WaitUntilStable(client)) {
    std::fprintf(stderr, "vrd: groups failed to form views\n");
    return 1;
  }
  std::printf("vrd: views formed; bank primary is node %zu\n",
              *cluster.PrimaryIndex(bank));

  for (int a = 0; a < accounts; ++a) {
    const std::string acct = "a" + std::to_string(a);
    auto outcome = cluster.RunTransaction(
        client,
        [bank, acct](core::TxnHandle& h) -> host::Task<bool> {
          co_await h.Call(bank, "open", acct + "=1000");
          co_return true;
        });
    if (!outcome || *outcome != core::TxnOutcome::kCommitted) {
      std::fprintf(stderr, "vrd: failed to open %s\n", acct.c_str());
      return 1;
    }
  }

  int kill_at = kill_primary ? txns / 2 : -1;
  int committed = 0, aborted = 0, unknown = 0;
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<std::size_t>(txns));

  const auto run_start = std::chrono::steady_clock::now();
  for (int t = 0; t < txns; ++t) {
    if (t == kill_at) {
      kill_at = -1;  // aborted txns rewind t; the kill must not re-fire
      const auto p = cluster.PrimaryIndex(bank);
      if (p) {
        std::printf("vrd: killing bank primary (node %zu) at txn %d\n", *p, t);
        cluster.Crash(*p);
      }
    }
    const std::string acct = "a" + std::to_string(t % accounts);
    const auto t0 = std::chrono::steady_clock::now();
    auto outcome = cluster.RunTransaction(
        client, workload::MakeDepositTxn(bank, acct, 1), 30 * host::kSecond);
    const auto t1 = std::chrono::steady_clock::now();
    if (outcome && *outcome == core::TxnOutcome::kCommitted) {
      ++committed;
      latencies_us.push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
    } else if (outcome && *outcome == core::TxnOutcome::kAborted) {
      ++aborted;
      --t;  // a txn aborted during the view-change window: retry it
    } else {
      ++unknown;
    }
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    run_start)
          .count();

  std::printf("vrd: %d committed, %d aborted(retried), %d unknown in %.2fs "
              "(%.0f txn/s)\n",
              committed, aborted, unknown, wall_s, committed / wall_s);
  std::printf("vrd: latency p50=%.0fus p90=%.0fus p99=%.0fus\n",
              Pct(latencies_us, 0.50), Pct(latencies_us, 0.90),
              Pct(latencies_us, 0.99));
  if (kill_primary) {
    std::printf("vrd: survived primary kill; bank primary is now node %zu\n",
                cluster.PrimaryIndex(bank).value_or(static_cast<std::size_t>(-1)));
  }

  cluster.Shutdown();
  const bool ok = committed >= txns - unknown && committed > 0;
  std::printf("vrd: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
