// The host seam (DESIGN.md §12): everything protocol code may ask of its
// runtime environment, bundled in one handle.
//
// A Host is a non-owning bundle of the two per-node services the protocol
// stack consumes: a TimerService (clock + future work) and a Tracer. The
// frame transport travels separately (net::Transport) because the sim shares
// one network object across all nodes while the socket host gives each node
// its own endpoint.
//
// Composition roots construct one Host per node:
//   * sim::Simulation owns a Host over {its Scheduler, its Tracer} and
//     converts to host::Host& implicitly — every simulated cohort shares it.
//   * host::LoopbackCluster (socket host) owns a Host over {the node's
//     EventLoop, its Tracer} — one per OS-thread-backed node.
#pragma once

#include "host/timer.h"
#include "host/trace.h"

namespace vsr::host {

class Host {
 public:
  Host(TimerService& timers, Tracer& tracer)
      : timers_(timers), tracer_(tracer) {}
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  TimerService& timers() { return timers_; }
  const TimerService& timers() const { return timers_; }
  Tracer& tracer() { return tracer_; }
  Time Now() const { return timers_.Now(); }

 private:
  TimerService& timers_;
  Tracer& tracer_;
};

}  // namespace vsr::host
