// Lightweight leveled tracing, shared by both hosts.
//
// Trace lines carry the host timestamp and a component tag (e.g.
// "vr/view_change"). Tests install a capturing sink to assert on protocol
// behaviour; benchmarks leave tracing off so it costs one branch per call.
//
// Thread-safety: on the simulator host everything runs on one thread. On the
// socket host each node owns its own Tracer and logs only from its event-loop
// thread; set_level/set_sink must be called before the loop starts.
#pragma once

#include <cstdarg>
#include <functional>
#include <string>

#include "host/time.h"

namespace vsr::host {

enum class TraceLevel : int {
  kOff = 0,
  kError = 1,
  kInfo = 2,
  kDebug = 3,
};

class Tracer {
 public:
  using Sink = std::function<void(Time, TraceLevel, const std::string& tag,
                                  const std::string& line)>;

  Tracer() = default;

  void set_level(TraceLevel level) { level_ = level; }
  TraceLevel level() const { return level_; }

  // Installs a sink; pass nullptr to restore the default (stderr) sink.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  bool Enabled(TraceLevel level) const {
    return static_cast<int>(level) <= static_cast<int>(level_);
  }

  void Log(Time now, TraceLevel level, const char* tag, const char* fmt, ...)
#if defined(__GNUC__)
      __attribute__((format(printf, 5, 6)))
#endif
      ;

 private:
  TraceLevel level_ = TraceLevel::kOff;
  Sink sink_;
};

}  // namespace vsr::host
