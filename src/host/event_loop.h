// Real-time host: a single-threaded event loop implementing the
// host::TimerService seam (DESIGN.md §12) over the wall clock.
//
// One EventLoop per node. The loop thread is the node's "host thread" in
// the seam contract: every timer callback and every delivered frame runs on
// it, serialized, so protocol code needs no locks — exactly as under the
// deterministic simulator, where the scheduler thread plays the same role.
//
// Timers satisfy the TimerService contract:
//   * At/After never run the callback synchronously, even with a zero or
//     past deadline — the entry is queued and fires on the loop thread.
//   * Earlier deadlines fire first; equal deadlines fire in scheduling
//     order (a monotonically increasing sequence number breaks ties).
//   * Cancel of a pending timer guarantees the callback never runs; Cancel
//     of a fired or unknown id is a no-op.
//   * Inside a callback scheduled for time T, Now() >= T.
//
// At/After/Cancel/Post are thread-safe (a socket reader thread posts frame
// deliveries through here), but callbacks only ever execute on the loop
// thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_set>
#include <vector>

#include "host/timer.h"

namespace vsr::host {

class EventLoop final : public TimerService {
 public:
  EventLoop();
  ~EventLoop() override;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Spawns the loop thread. Timers scheduled before Start() fire once it
  // runs.
  void Start();

  // Stops the loop and joins the thread. Pending timers are discarded
  // without firing (like a process exit; cohort destructors run separately,
  // on the caller's thread, once nothing can call into them anymore).
  void Stop();

  // Runs `fn` on the loop thread as soon as possible (an After(0) with a
  // cross-thread-friendly name). Safe from any thread.
  void Post(std::function<void()> fn) { After(0, std::move(fn)); }

  // True iff called from the loop thread (used by assertions in the
  // conformance tests).
  bool OnLoopThread() const;

  // host::TimerService --------------------------------------------------
  Time Now() const override;
  TimerId At(Time deadline, std::function<void()> fn) override;
  TimerId After(Duration delay, std::function<void()> fn) override;
  void Cancel(TimerId id) override;

 private:
  struct Entry {
    Time deadline = 0;
    TimerId id = 0;  // allocation order doubles as the FIFO tiebreak
    // std::priority_queue pops the LARGEST element, so "greater" ordering
    // makes it a min-heap on (deadline, id).
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.id > b.id;
    }
  };

  void Run();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  // Ids of queued-and-not-cancelled timers. Fire and Cancel both erase, so
  // membership is the single source of truth for "will this fire?".
  std::unordered_set<TimerId> live_;
  TimerId next_id_ = 1;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace vsr::host
