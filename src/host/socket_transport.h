// Threaded TCP implementation of the net::Transport seam (DESIGN.md §12).
//
// One SocketTransport per node. The node listens on a TCP port; peers that
// want to send to it connect lazily and keep the connection. Each accepted
// connection gets a blocking reader thread that decodes length-prefixed,
// CRC-framed messages and posts them to the node's EventLoop — so OnFrame
// runs on the node's host thread, exactly as the seam contract requires,
// and protocol code cannot tell this transport from the simulated network.
//
// Wire format, little-endian (wire::Writer/Reader):
//
//   [u32 payload_len][u32 from][u32 to][u16 type][u32 crc32(payload)][payload]
//
// Failure semantics map onto the paper's §1 network model: a connect or
// write error drops the frame (counted in stats().send_failures) and closes
// the connection — the next Send reconnects. A CRC mismatch drops the frame
// at the receiver. Nothing retries at this layer; retransmission is the
// protocol's job (comm buffer §2.3), same as under injected loss in sim.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "host/event_loop.h"
#include "net/transport.h"

namespace vsr::host {

struct NodeAddress {
  std::string ip = "127.0.0.1";
  std::uint16_t port = 0;
};

// Shared, written only during cluster setup (before any node starts), read
// concurrently afterwards.
using AddressMap = std::map<net::NodeId, NodeAddress>;

class SocketTransport final : public net::Transport {
 public:
  // `peers` must outlive the transport and be fully populated before the
  // first Send (the loopback cluster binds every listener, then fills the
  // map, then starts the loops).
  SocketTransport(EventLoop& loop, net::NodeId self, const AddressMap& peers);
  ~SocketTransport() override;
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // Binds 127.0.0.1:`port` (0 = kernel-assigned) and starts the accept
  // thread. Returns the bound port. Must be called before the peer map is
  // sealed.
  std::uint16_t Listen(std::uint16_t port = 0);

  // Stops the accept and reader threads and closes every socket. Frames
  // already handed to the kernel by Send() are NOT revoked — a peer that
  // keeps running still receives them (the conformance suite checks this).
  void Shutdown();

  // net::Transport -------------------------------------------------------
  void Register(net::NodeId node, net::FrameHandler* handler) override;
  void Unregister(net::NodeId node) override;
  void Send(net::NodeId from, net::NodeId to, std::uint16_t type,
            std::vector<std::uint8_t> payload) override;
  void SetNodeUp(net::NodeId node, bool up) override;

  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_delivered = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t send_failures = 0;   // dropped: connect/write error
    std::uint64_t dropped_corrupt = 0;  // dropped: CRC mismatch
    std::uint64_t dropped_node_down = 0;
  };
  Stats stats() const;

 private:
  static constexpr std::size_t kHeaderBytes = 18;
  static constexpr std::uint32_t kMaxPayload = 64u << 20;

  void AcceptLoop(int listen_fd);
  void ReaderLoop(int fd);
  // Returns a connected fd for `to`, reusing the cached connection; -1 on
  // failure. Called on the loop thread only.
  int ConnectTo(net::NodeId to);
  void Deliver(net::Frame frame);

  EventLoop& loop_;
  const net::NodeId self_;
  const AddressMap& peers_;

  // Loop-thread state (handlers, valve): touched only on the loop thread —
  // readers reach it via loop_.Post.
  std::map<net::NodeId, net::FrameHandler*> handlers_;
  std::set<net::NodeId> down_;

  // Cross-thread state.
  mutable std::mutex mu_;
  Stats stats_;
  std::map<net::NodeId, int> conns_;  // outbound, created by Send
  std::vector<int> accepted_;         // inbound, owned by reader threads
  std::vector<std::thread> readers_;
  std::thread acceptor_;
  int listen_fd_ = -1;
  bool shutdown_ = false;
};

}  // namespace vsr::host
