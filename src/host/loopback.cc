#include "host/loopback.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace vsr::host {

namespace {

void SleepABit() { std::this_thread::sleep_for(std::chrono::milliseconds(2)); }

}  // namespace

LoopbackCluster::LoopbackCluster(LoopbackOptions options)
    : options_(options) {}

LoopbackCluster::~LoopbackCluster() { Shutdown(); }

vr::GroupId LoopbackCluster::AddGroup(const std::string& name,
                                      std::size_t replicas) {
  (void)name;  // groups are identified by id; the name is caller-side sugar
  if (started_) throw std::logic_error("AddGroup after Start");
  const vr::GroupId g = next_group_++;
  std::vector<vr::Mid> config;
  config.reserve(replicas);
  for (std::size_t i = 0; i < replicas; ++i) config.push_back(next_mid_++);
  directory_.RegisterGroup(g, config);

  for (vr::Mid mid : config) {
    auto node = std::make_unique<Node>();
    node->mid = mid;
    node->group = g;
    node->config = config;
    node->loop = std::make_unique<EventLoop>();
    node->tracer = std::make_unique<Tracer>();
    node->tracer->set_level(options_.trace);
    node->host = std::make_unique<Host>(*node->loop, *node->tracer);
    node->stable =
        std::make_unique<storage::StableStore>(*node->host, options_.storage);
    node->transport =
        std::make_unique<SocketTransport>(*node->loop, mid, addrs_);
    node->cohort = std::make_unique<core::Cohort>(
        *node->host, *node->transport, directory_, *node->stable, g, mid,
        config, options_.cohort);
    groups_[g].push_back(nodes_.size());
    nodes_.push_back(std::move(node));
  }
  return g;
}

std::vector<core::Cohort*> LoopbackCluster::Cohorts(vr::GroupId g) {
  std::vector<core::Cohort*> out;
  for (std::size_t idx : groups_.at(g)) out.push_back(nodes_[idx]->cohort.get());
  return out;
}

void LoopbackCluster::RegisterProc(vr::GroupId group, const std::string& name,
                                   core::ProcFn fn) {
  if (started_) throw std::logic_error("RegisterProc after Start");
  for (std::size_t idx : groups_.at(group)) {
    nodes_[idx]->cohort->RegisterProc(name, fn);
  }
}

void LoopbackCluster::Start() {
  if (started_) return;
  started_ = true;

  // Phase 1: bind every listener so the address map is complete before any
  // node can possibly send.
  for (auto& node : nodes_) {
    const std::uint16_t port = node->transport->Listen(0);
    if (port == 0) throw std::runtime_error("LoopbackCluster: bind failed");
    addrs_[node->mid] = NodeAddress{"127.0.0.1", port};
  }

  // Phase 2: light the fires. Cohort::Start runs on the owning loop thread
  // like every other cohort entry point.
  for (auto& node : nodes_) node->loop->Start();
  for (auto& node : nodes_) {
    core::Cohort* cohort = node->cohort.get();
    node->loop->Post([cohort] { cohort->Start(); });
  }
}

void LoopbackCluster::Shutdown() {
  if (!started_ || shut_down_) return;
  shut_down_ = true;
  // Readers first (no new frames get posted), then the loops (no timer or
  // queued delivery runs again), then the cohorts die quietly on this
  // thread in ~Node.
  for (auto& node : nodes_) node->transport->Shutdown();
  for (auto& node : nodes_) node->loop->Stop();
}

void LoopbackCluster::RunOn(std::size_t idx,
                            std::function<void(core::Cohort&)> fn) {
  Node& node = *nodes_.at(idx);
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  node.loop->Post([&] {
    fn(*node.cohort);
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
}

std::optional<std::size_t> LoopbackCluster::PrimaryIndex(vr::GroupId g) {
  for (std::size_t idx : groups_.at(g)) {
    bool is_primary = false;
    RunOn(idx, [&](core::Cohort& c) { is_primary = c.IsActivePrimary(); });
    if (is_primary) return idx;
  }
  return std::nullopt;
}

bool LoopbackCluster::WaitUntilStable(vr::GroupId g, Duration timeout_us) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(timeout_us);
  while (std::chrono::steady_clock::now() < deadline) {
    // Snapshot each member's (status, view) on its own thread, then apply
    // the same majority-in-primary's-view predicate as the sim harness.
    struct View {
      bool active = false;
      bool primary = false;
      vr::ViewId viewid;
    };
    std::vector<View> views;
    for (std::size_t idx : groups_.at(g)) {
      View v;
      RunOn(idx, [&](core::Cohort& c) {
        v.active = c.status() == core::Status::kActive;
        v.primary = c.IsActivePrimary();
        v.viewid = c.cur_viewid();
      });
      views.push_back(v);
    }
    for (const View& p : views) {
      if (!p.primary) continue;
      std::size_t in_view = 0;
      for (const View& v : views) {
        if (v.active && v.viewid == p.viewid) ++in_view;
      }
      if (in_view >= vr::MajorityOf(views.size())) return true;
    }
    SleepABit();
  }
  return false;
}

std::optional<core::TxnOutcome> LoopbackCluster::RunTransaction(
    vr::GroupId g, core::TxnBody body, Duration timeout_us) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(timeout_us);
  std::optional<std::size_t> primary;
  while (!(primary = PrimaryIndex(g)).has_value()) {
    if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
    SleepABit();
  }

  std::mutex mu;
  std::condition_variable cv;
  std::optional<core::TxnOutcome> outcome;
  SpawnTransactionOn(*primary, std::move(body), [&](core::TxnOutcome o) {
    std::lock_guard<std::mutex> lock(mu);
    outcome = o;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait_until(lock, deadline, [&] { return outcome.has_value(); });
  return outcome;
}

void LoopbackCluster::SpawnTransactionOn(
    std::size_t idx, core::TxnBody body,
    std::function<void(core::TxnOutcome)> on_done) {
  Node& node = *nodes_.at(idx);
  core::Cohort* cohort = node.cohort.get();
  node.loop->Post([cohort, body = std::move(body),
                   on_done = std::move(on_done)]() mutable {
    cohort->SpawnTransaction(std::move(body), std::move(on_done));
  });
}

void LoopbackCluster::Crash(std::size_t idx) {
  RunOn(idx, [](core::Cohort& c) { c.Crash(); });
}

void LoopbackCluster::Recover(std::size_t idx) {
  RunOn(idx, [](core::Cohort& c) { c.Recover(); });
}

std::uint64_t LoopbackCluster::TotalCommitted(vr::GroupId g) {
  std::uint64_t n = 0;
  for (std::size_t idx : groups_.at(g)) {
    RunOn(idx, [&](core::Cohort& c) { n += c.stats().txns_committed; });
  }
  return n;
}

std::uint64_t LoopbackCluster::TotalAborted(vr::GroupId g) {
  std::uint64_t n = 0;
  for (std::size_t idx : groups_.at(g)) {
    RunOn(idx, [&](core::Cohort& c) { n += c.stats().txns_aborted; });
  }
  return n;
}

}  // namespace vsr::host
