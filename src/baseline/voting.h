// Baseline: quorum voting replication (Gifford weighted voting [16],
// Herlihy quorum consensus [21]) over the same simulated network.
//
// §5 of the paper compares against voting:
//   "With voting, write operations are usually performed at all cohorts,
//    and reads are performed at only one cohort, but in general writes can
//    be performed at a majority of cohorts and reads at enough cohorts that
//    each read will intersect each write at at least one cohort."
//   "Our method is faster than voting for write operations since we require
//    fewer messages. Also, we avoid the deadlocks that can arise if
//    messages for concurrent updates arrive at the cohorts in different
//    orders."
//
// This implementation provides versioned read/write quorum operations with
// per-replica locking, which is enough to reproduce the message-count and
// latency comparison (bench E3) and the concurrent-writer deadlock behaviour
// the paper mentions.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/wait_table.h"
#include "net/network.h"
#include "sim/simulation.h"
#include "sim/task.h"
#include "wire/buffer.h"

namespace vsr::baseline {

// Message tags in a range disjoint from vr::MsgType.
enum class VoteMsgType : std::uint16_t {
  kLockReq = 300,   // acquire write lock at a replica
  kLockReply = 301,
  kWriteReq = 302,  // install value+version, release lock
  kWriteReply = 303,
  kReadReq = 304,
  kReadReply = 305,
  kUnlockReq = 306,  // abort path: release without writing
};

struct VersionedValue {
  std::string value;
  std::uint64_t version = 0;
};

// One voting replica: versioned store with a single-writer lock per key.
class VotingReplica : public net::FrameHandler {
 public:
  VotingReplica(sim::Simulation& simulation, net::Network& network,
                net::NodeId self);

  void OnFrame(const net::Frame& frame) override;

  std::optional<VersionedValue> Get(const std::string& key) const {
    auto it = store_.find(key);
    if (it == store_.end()) return std::nullopt;
    return it->second;
  }

 private:
  sim::Simulation& sim_;
  net::Network& net_;
  const net::NodeId self_;
  std::map<std::string, VersionedValue> store_;
  std::map<std::string, std::uint64_t> lock_holder_;  // key -> client id
};

struct VotingOptions {
  // Quorum sizes; defaults are read-one/write-all for n replicas set by the
  // client constructor. r + w must exceed n.
  std::size_t read_quorum = 1;
  std::size_t write_quorum = 0;  // 0 = all
  sim::Duration op_timeout = 100 * sim::kMillisecond;
  sim::Duration lock_timeout = 100 * sim::kMillisecond;
};

struct VotingStats {
  std::uint64_t writes_ok = 0;
  std::uint64_t writes_failed = 0;  // lock conflict / timeout (deadlock!)
  std::uint64_t reads_ok = 0;
  std::uint64_t reads_failed = 0;
};

// A voting client: performs quorum reads and two-round quorum writes
// (lock round + write round), as in classic quorum-consensus replication.
class VotingClient : public net::FrameHandler {
 public:
  VotingClient(sim::Simulation& simulation, net::Network& network,
               net::NodeId self, std::vector<net::NodeId> replicas,
               VotingOptions options);
  ~VotingClient() override;

  void OnFrame(const net::Frame& frame) override;

  // Spawned operations (completion via callback).
  void Write(std::string key, std::string value,
             std::function<void(bool)> done);
  void Read(std::string key,
            std::function<void(std::optional<VersionedValue>)> done);

  const VotingStats& stats() const { return stats_; }

 private:
  struct Ack {
    bool ok = false;
    VersionedValue value;  // read replies
  };

  sim::Task<void> DoWrite(std::string key, std::string value,
                          std::function<void(bool)> done);
  sim::Task<void> DoRead(std::string key,
                         std::function<void(std::optional<VersionedValue>)> done);
  // Sends `payload` of `type` to `targets`, waits for `need` acks.
  sim::Task<std::vector<Ack>> Gather(VoteMsgType type,
                                     const std::vector<std::uint8_t>& payload,
                                     std::size_t need, std::size_t fanout);

  sim::Simulation& sim_;
  net::Network& net_;
  const net::NodeId self_;
  std::vector<net::NodeId> replicas_;
  VotingOptions options_;
  VotingStats stats_;
  std::uint64_t next_req_ = 1;

  struct Pending {
    std::size_t need;
    std::vector<Ack> acks;
    std::uint64_t corr;
  };
  std::map<std::uint64_t, std::shared_ptr<Pending>> pending_;  // by req id
  core::WaitTable<bool> join_waiters_;
  sim::TaskRegistry tasks_;
};

}  // namespace vsr::baseline
