// Baseline: a conventional non-replicated transaction server that uses
// stable storage, per the paper's §3.7 correspondence:
//
//   "There is a one-to-one correspondence between event records and
//    information written to stable storage by a conventional transaction
//    system ... The 'completed-call' records are equivalent to the data
//    records that must be forced to stable storage before preparing, and the
//    'commit' and 'abort' records are the same as their stable storage
//    counterparts."
//
//   "For both preparing and committing, our method will be faster than using
//    non-replicated clients and servers if communication is faster than
//    writing to stable storage."
//
// The server executes calls immediately (buffering data records in memory),
// forces outstanding data records to stable storage at prepare, and forces a
// commit record at commit — exactly the critical-path structure bench E2
// compares against VR's force-to-backups.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/wait_table.h"
#include "net/network.h"
#include "sim/simulation.h"
#include "sim/task.h"
#include "storage/stable_store.h"
#include "wire/buffer.h"

namespace vsr::baseline {

enum class NrMsgType : std::uint16_t {
  kCall = 310,
  kCallReply = 311,
  kPrepare = 312,
  kPrepareReply = 313,
  kCommit = 314,
  kCommitReply = 315,
};

// The single server. Writes go to an in-memory table; durability comes from
// forced log records on the stable store.
class StableServer : public net::FrameHandler {
 public:
  StableServer(sim::Simulation& simulation, net::Network& network,
               net::NodeId self, storage::StableStore& stable);

  void OnFrame(const net::Frame& frame) override;

  std::uint64_t forced_writes() const { return forces_; }

 private:
  void ForceLog(std::string tag, std::function<void()> then);

  sim::Simulation& sim_;
  net::Network& net_;
  const net::NodeId self_;
  storage::StableStore& stable_;
  std::map<std::string, std::string> data_;
  // Per-transaction data records not yet forced (txn id -> count).
  std::map<std::uint64_t, std::uint64_t> unforced_;
  std::uint64_t forces_ = 0;
  std::uint64_t log_seq_ = 0;
};

// Drives one client transaction against the StableServer and reports the
// latency of each phase.
class StableClient : public net::FrameHandler {
 public:
  StableClient(sim::Simulation& simulation, net::Network& network,
               net::NodeId self, net::NodeId server);
  ~StableClient() override;

  struct TxnTiming {
    bool ok = false;
    sim::Duration call_latency = 0;     // per call, averaged
    sim::Duration prepare_latency = 0;  // includes the data-record force
    sim::Duration commit_latency = 0;   // includes the commit-record force
  };

  // Runs a transaction of `num_calls` write calls, an optional think pause
  // (user computation between the last call and the commit request), then
  // prepare + commit.
  void RunTxn(int num_calls, std::function<void(TxnTiming)> done,
              sim::Duration think = 0);

  void OnFrame(const net::Frame& frame) override;

 private:
  sim::Task<void> DoTxn(int num_calls, std::function<void(TxnTiming)> done,
                        sim::Duration think);

  sim::Simulation& sim_;
  net::Network& net_;
  const net::NodeId self_;
  const net::NodeId server_;
  std::uint64_t next_req_ = 1;
  std::uint64_t next_txn_ = 1;
  core::WaitTable<bool> waiters_;
  sim::TaskRegistry tasks_;
};

}  // namespace vsr::baseline
