#include "baseline/nonreplicated_viewstamped.h"

namespace vsr::baseline {
namespace {

// Reuse the plain non-replicated wire format (defined in nonreplicated.cc;
// re-declared here because it is deliberately file-local there).
struct Msg {
  std::uint64_t req_id = 0;
  std::uint64_t txn = 0;
  net::NodeId reply_to = 0;
  std::string key;
  std::string value;

  std::vector<std::uint8_t> Encode() const {
    wire::Writer w;
    w.U64(req_id);
    w.U64(txn);
    w.U32(reply_to);
    w.String(key);
    w.String(value);
    return w.Take();
  }
  static Msg Decode(wire::Reader& r) {
    Msg m;
    m.req_id = r.U64();
    m.txn = r.U64();
    m.reply_to = r.U32();
    m.key = r.String();
    m.value = r.String();
    return m;
  }
};

}  // namespace

ViewstampedStableServer::ViewstampedStableServer(
    sim::Simulation& simulation, net::Network& network, net::NodeId self,
    storage::StableStore& stable, sim::Duration background_write_delay)
    : sim_(simulation),
      net_(network),
      self_(self),
      stable_(stable),
      background_write_delay_(background_write_delay) {
  net_.Register(self_, this);
}

void ViewstampedStableServer::StartBackgroundWrite(std::uint64_t txn) {
  TxnLog& log = log_[txn];
  if (log.write_in_flight || log.pending == 0) return;
  log.write_in_flight = true;
  // "records containing the effects of calls could be written to stable
  //  storage in background mode" — batch everything pending into one write,
  // kicked off after a short write-behind delay.
  const std::uint64_t batch = log.pending;
  sim_.scheduler().After(background_write_delay_, [this, txn, batch] {
    ++stats_.background_writes;
    stable_.ForceWrite(
        "vslog/" + std::to_string(log_seq_++), {}, [this, txn, batch] {
          auto it = log_.find(txn);
          if (it == log_.end()) return;
          TxnLog& l = it->second;
          l.pending -= std::min(l.pending, batch);
          l.write_in_flight = false;
          if (l.pending > 0) {
            StartBackgroundWrite(txn);
          } else {
            auto waiters = std::move(l.waiters);
            l.waiters.clear();
            for (auto& w : waiters) w();
          }
        });
  });
}

void ViewstampedStableServer::OnFrame(const net::Frame& frame) {
  wire::Reader r(frame.payload);
  Msg m = Msg::Decode(r);
  if (!r.ok()) return;
  switch (static_cast<NrMsgType>(frame.type)) {
    case NrMsgType::kCall: {
      data_[m.key] = m.value;
      ++log_[m.txn].pending;
      StartBackgroundWrite(m.txn);
      net_.Send(self_, m.reply_to,
                static_cast<std::uint16_t>(NrMsgType::kCallReply), m.Encode());
      break;
    }
    case NrMsgType::kPrepare: {
      // "When the prepare message arrives, it would only be necessary to
      //  force the records; no delay would be encountered if the records
      //  had already been written."
      TxnLog& log = log_[m.txn];
      auto respond = [this, m] {
        net_.Send(self_, m.reply_to,
                  static_cast<std::uint16_t>(NrMsgType::kPrepareReply),
                  m.Encode());
      };
      if (log.pending == 0) {
        ++stats_.prepares_immediate;
        respond();
      } else {
        ++stats_.prepares_waited;
        log.waiters.push_back(respond);
        StartBackgroundWrite(m.txn);
      }
      break;
    }
    case NrMsgType::kCommit: {
      // The commit record must still be forced (same as their stable-storage
      // counterparts, §3.7).
      stable_.ForceWrite("vslog/commit/" + std::to_string(m.txn), {},
                         [this, m] {
                           net_.Send(self_, m.reply_to,
                                     static_cast<std::uint16_t>(
                                         NrMsgType::kCommitReply),
                                     m.Encode());
                         });
      log_.erase(m.txn);
      break;
    }
    default:
      break;
  }
}

}  // namespace vsr::baseline
