// Baseline: the paper's OWN proposal for non-replicated systems (§5, §6):
//
//   "Viewstamps may also be worthwhile in a nonreplicated system. In such a
//    system, records containing the effects of calls could be written to
//    stable storage in background mode; the records, like event records,
//    would contain viewstamps. When the prepare message arrives, it would
//    only be necessary to force the records; no delay would be encountered
//    if the records had already been written. A crash would not cause
//    active transactions to abort automatically; instead, queries would be
//    sent to coordinators to determine the outcomes. The result would be a
//    system that is more tolerant of crashes (by avoiding aborts) and also
//    faster at prepare time."
//
// This server executes calls immediately and streams their data records to
// stable storage in background (a write-behind log); prepare forces only the
// still-unwritten suffix — usually nothing. Compare with baseline::
// StableServer, which defers all log writing to prepare time. Bench E2
// reports both against VR.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "baseline/nonreplicated.h"  // NrMsgType + client
#include "net/network.h"
#include "sim/simulation.h"
#include "storage/stable_store.h"
#include "wire/buffer.h"

namespace vsr::baseline {

class ViewstampedStableServer : public net::FrameHandler {
 public:
  ViewstampedStableServer(sim::Simulation& simulation, net::Network& network,
                          net::NodeId self, storage::StableStore& stable,
                          sim::Duration background_write_delay =
                              500 * sim::kMicrosecond);

  void OnFrame(const net::Frame& frame) override;

  struct Stats {
    std::uint64_t background_writes = 0;
    // Prepares that found their data records already durable (§5: "no delay
    // would be encountered if the records had already been written").
    std::uint64_t prepares_immediate = 0;
    std::uint64_t prepares_waited = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void StartBackgroundWrite(std::uint64_t txn);

  sim::Simulation& sim_;
  net::Network& net_;
  const net::NodeId self_;
  storage::StableStore& stable_;
  const sim::Duration background_write_delay_;

  std::map<std::string, std::string> data_;
  struct TxnLog {
    std::uint64_t pending = 0;      // records not yet durable
    bool write_in_flight = false;   // a background force is running
    std::vector<std::function<void()>> waiters;  // prepares awaiting flush
  };
  std::map<std::uint64_t, TxnLog> log_;
  std::uint64_t log_seq_ = 0;
  Stats stats_;
};

}  // namespace vsr::baseline
