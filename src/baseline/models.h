// Analytic cost models for the comparators the paper discusses in §5 whose
// systems are closed-source (Isis, Tandem NonStop / Auragen) or whose cost
// the paper characterizes structurally (the virtual partitions view-change
// protocol). DESIGN.md documents the substitution: the paper argues about
// message counts and protocol phases, so counting models reproduce the
// comparison faithfully.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace vsr::baseline {

struct ProtocolCost {
  std::uint64_t messages = 0;
  std::uint64_t rounds = 0;
  sim::Duration latency = 0;
};

// --- Virtual partitions view change (El Abbadi, Skeen, Cristian [12]) ------
//
// §5: "The virtual partitions protocol requires three phases. The first
// round establishes the new view, the second informs the cohorts of the new
// view, and in the third, the cohorts all communicate with one another to
// find out the current state."
inline ProtocolCost VirtualPartitionsViewChange(std::size_t n,
                                                sim::Duration one_way_delay) {
  ProtocolCost c;
  c.rounds = 3;
  const std::uint64_t others = static_cast<std::uint64_t>(n) - 1;
  // Phase 1: manager -> all, all -> manager (establish view).
  c.messages += 2 * others;
  // Phase 2: manager -> all (announce view), all -> manager (ack).
  c.messages += 2 * others;
  // Phase 3: all-to-all state exchange.
  c.messages += static_cast<std::uint64_t>(n) * others;
  // Each phase costs a round trip (phase 3: one exchange).
  c.latency = 3 * 2 * one_way_delay;
  return c;
}

// --- VR view change (this paper, §4.1) --------------------------------------
//
// "One round of messages is all that is needed when the manager is also the
// primary in the last active view; otherwise, one round plus one message is
// needed." The newview record that re-initializes backups then flows through
// the communication buffer like ordinary traffic.
inline ProtocolCost VrViewChange(std::size_t n, bool manager_is_new_primary,
                                 sim::Duration one_way_delay) {
  ProtocolCost c;
  const std::uint64_t others = static_cast<std::uint64_t>(n) - 1;
  c.rounds = 1;
  c.messages = 2 * others;  // invitations + acceptances
  c.latency = 2 * one_way_delay;
  if (!manager_is_new_primary) {
    c.messages += 1;  // the init-view message
    c.latency += one_way_delay;
  }
  return c;
}

// --- Voting (Gifford [16]) ---------------------------------------------------
//
// Messages on the critical path of one operation under quorum consensus with
// a lock round and a write round (reads need no locks).
inline ProtocolCost VotingWrite(std::size_t write_quorum,
                                sim::Duration one_way_delay) {
  ProtocolCost c;
  c.rounds = 2;
  c.messages = 4 * static_cast<std::uint64_t>(write_quorum);
  c.latency = 4 * one_way_delay;
  return c;
}
inline ProtocolCost VotingRead(std::size_t read_quorum,
                               sim::Duration one_way_delay) {
  ProtocolCost c;
  c.rounds = 1;
  c.messages = 2 * static_cast<std::uint64_t>(read_quorum);
  c.latency = 2 * one_way_delay;
  return c;
}

// --- VR remote call (§3.7) ---------------------------------------------------
//
// "Remote calls in our system run only at the primary and need not involve
// the backups" — 2 messages on the critical path; backup notification is off
// the critical path (counted separately as background).
inline ProtocolCost VrCall(std::size_t n, sim::Duration one_way_delay) {
  ProtocolCost c;
  c.rounds = 1;
  c.messages = 2;
  c.latency = 2 * one_way_delay;
  // Background (not latency-bearing): one buffer batch + ack per backup.
  c.messages += 2 * (static_cast<std::uint64_t>(n) - 1);
  return c;
}

// --- Isis piggybacking (Birman & Joseph [4,5]) -------------------------------
//
// §5: in Isis the effects of operations are "piggybacked on reply messages.
// This piggybacked information accompanies all future client messages ...
// Unlike our pset, however, piggybacked information in Isis cannot be
// discarded when transactions commit. A disadvantage of Isis is the large
// amount of extra information flowing on every message."
//
// Model: after `ops` operations of `effect_bytes` each with a garbage-
// collection horizon of `gc_ops` (Isis: unbounded in the paper's telling →
// pass ops), each message carries the accumulated effects. VR's counterpart
// is the pset: one 24-byte ⟨groupid, viewstamp, sub⟩ entry per *call of the
// live transaction*, discarded at commit.
inline std::uint64_t IsisPiggybackBytes(std::uint64_t ops,
                                        std::uint64_t effect_bytes,
                                        std::uint64_t gc_ops) {
  const std::uint64_t live = gc_ops == 0 ? ops : std::min(ops, gc_ops);
  return live * effect_bytes;
}
inline std::uint64_t VrPsetBytes(std::uint64_t calls_in_txn) {
  constexpr std::uint64_t kPsetEntryBytes = 24;  // u64 + (u64+u32) + u32
  return calls_in_txn * kPsetEntryBytes;
}

// --- Tandem-style primary/backup pair (Bartlett [2], Borg [6]) ---------------
//
// §5: "there is just one backup, so they can survive only a single failure.
// Furthermore, the primary/backup pair must reside at a single node."
// Steady-state availability of a k-of-n system with exponential failure and
// repair (per-replica availability a = MTTF / (MTTF + MTTR)): the group is
// available while at least `need` of `n` replicas are up.
double KOfNAvailability(std::size_t n, std::size_t need,
                        double replica_availability);

// VR group of n cohorts needs a majority; a Tandem pair needs 1 of 2 but is
// co-located (correlated failure fraction `corr` takes the whole node down).
inline double VrAvailability(std::size_t n, double replica_availability) {
  return KOfNAvailability(n, (n / 2) + 1, replica_availability);
}
inline double TandemPairAvailability(double replica_availability,
                                     double correlated_fraction) {
  const double independent = KOfNAvailability(2, 1, replica_availability);
  // A correlated fault (shared node/power) defeats both halves at once.
  return (1.0 - correlated_fraction) * independent +
         correlated_fraction * replica_availability;
}

}  // namespace vsr::baseline
