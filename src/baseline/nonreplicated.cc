#include "baseline/nonreplicated.h"

namespace vsr::baseline {
namespace {

struct NrMsg {
  std::uint64_t req_id = 0;
  std::uint64_t txn = 0;
  net::NodeId reply_to = 0;
  std::string key;
  std::string value;

  std::vector<std::uint8_t> Encode() const {
    wire::Writer w;
    w.U64(req_id);
    w.U64(txn);
    w.U32(reply_to);
    w.String(key);
    w.String(value);
    return w.Take();
  }
  static NrMsg Decode(wire::Reader& r) {
    NrMsg m;
    m.req_id = r.U64();
    m.txn = r.U64();
    m.reply_to = r.U32();
    m.key = r.String();
    m.value = r.String();
    return m;
  }
};

}  // namespace

StableServer::StableServer(sim::Simulation& simulation, net::Network& network,
                           net::NodeId self, storage::StableStore& stable)
    : sim_(simulation), net_(network), self_(self), stable_(stable) {
  net_.Register(self_, this);
}

void StableServer::ForceLog(std::string tag, std::function<void()> then) {
  ++forces_;
  stable_.ForceWrite("nrlog/" + std::to_string(log_seq_++) + "/" + tag, {},
                     std::move(then));
}

void StableServer::OnFrame(const net::Frame& frame) {
  wire::Reader r(frame.payload);
  NrMsg m = NrMsg::Decode(r);
  if (!r.ok()) return;
  switch (static_cast<NrMsgType>(frame.type)) {
    case NrMsgType::kCall: {
      // Execute immediately; the data record is only *written* (buffered),
      // matching the paper's write-vs-force distinction.
      data_[m.key] = m.value;
      ++unforced_[m.txn];
      NrMsg reply = m;
      net_.Send(self_, m.reply_to,
                static_cast<std::uint16_t>(NrMsgType::kCallReply),
                reply.Encode());
      break;
    }
    case NrMsgType::kPrepare: {
      // "data records that must be forced to stable storage before
      //  preparing" — one force flushes the buffered records.
      NrMsg reply = m;
      auto respond = [this, reply] {
        net_.Send(self_, reply.reply_to,
                  static_cast<std::uint16_t>(NrMsgType::kPrepareReply),
                  reply.Encode());
      };
      auto it = unforced_.find(m.txn);
      if (it != unforced_.end() && it->second > 0) {
        it->second = 0;
        ForceLog("data+prepare", respond);
      } else {
        ForceLog("prepare", respond);  // the prepare record itself
      }
      break;
    }
    case NrMsgType::kCommit: {
      NrMsg reply = m;
      ForceLog("commit", [this, reply] {
        net_.Send(self_, reply.reply_to,
                  static_cast<std::uint16_t>(NrMsgType::kCommitReply),
                  reply.Encode());
      });
      unforced_.erase(m.txn);
      break;
    }
    default:
      break;
  }
}

StableClient::StableClient(sim::Simulation& simulation, net::Network& network,
                           net::NodeId self, net::NodeId server)
    : sim_(simulation),
      net_(network),
      self_(self),
      server_(server),
      waiters_(simulation.scheduler()),
      tasks_(simulation.scheduler()) {
  net_.Register(self_, this);
}

StableClient::~StableClient() { tasks_.DestroyAll(); }

void StableClient::OnFrame(const net::Frame& frame) {
  const auto type = static_cast<NrMsgType>(frame.type);
  if (type != NrMsgType::kCallReply && type != NrMsgType::kPrepareReply &&
      type != NrMsgType::kCommitReply) {
    return;
  }
  wire::Reader r(frame.payload);
  NrMsg m = NrMsg::Decode(r);
  if (r.ok()) waiters_.Fulfill(m.req_id, true);
}

void StableClient::RunTxn(int num_calls,
                          std::function<void(TxnTiming)> done,
                          sim::Duration think) {
  tasks_.Spawn(DoTxn(num_calls, std::move(done), think));
}

sim::Task<void> StableClient::DoTxn(int num_calls,
                                    std::function<void(TxnTiming)> done,
                                    sim::Duration think) {
  TxnTiming t;
  const std::uint64_t txn = next_txn_++;
  const sim::Duration timeout = 10 * sim::kSecond;

  sim::Duration call_total = 0;
  for (int i = 0; i < num_calls; ++i) {
    NrMsg m;
    m.req_id = next_req_++;
    m.txn = txn;
    m.reply_to = self_;
    m.key = "k" + std::to_string(i);
    m.value = "v";
    const sim::Time start = sim_.Now();
    net_.Send(self_, server_, static_cast<std::uint16_t>(NrMsgType::kCall),
              m.Encode());
    auto r = co_await waiters_.Await(m.req_id, timeout);
    if (!r) {
      if (done) done(t);
      co_return;
    }
    call_total += sim_.Now() - start;
  }
  t.call_latency = num_calls > 0 ? call_total / num_calls : 0;
  if (think > 0) co_await sim::Sleep(sim_.scheduler(), think);

  NrMsg prep;
  prep.req_id = next_req_++;
  prep.txn = txn;
  prep.reply_to = self_;
  sim::Time start = sim_.Now();
  net_.Send(self_, server_, static_cast<std::uint16_t>(NrMsgType::kPrepare),
            prep.Encode());
  if (!co_await waiters_.Await(prep.req_id, timeout)) {
    if (done) done(t);
    co_return;
  }
  t.prepare_latency = sim_.Now() - start;

  NrMsg commit;
  commit.req_id = next_req_++;
  commit.txn = txn;
  commit.reply_to = self_;
  start = sim_.Now();
  net_.Send(self_, server_, static_cast<std::uint16_t>(NrMsgType::kCommit),
            commit.Encode());
  if (!co_await waiters_.Await(commit.req_id, timeout)) {
    if (done) done(t);
    co_return;
  }
  t.commit_latency = sim_.Now() - start;
  t.ok = true;
  if (done) done(t);
}

}  // namespace vsr::baseline
