#include "baseline/voting.h"

namespace vsr::baseline {
namespace {

// Wire formats (tiny, local to the voting protocol).
struct VoteReq {
  std::uint64_t req_id = 0;
  net::NodeId reply_to = 0;
  std::string key;
  std::string value;         // writes
  std::uint64_t version = 0; // writes
  std::uint64_t client = 0;  // lock owner identity

  std::vector<std::uint8_t> Encode() const {
    wire::Writer w;
    w.U64(req_id);
    w.U32(reply_to);
    w.String(key);
    w.String(value);
    w.U64(version);
    w.U64(client);
    return w.Take();
  }
  static VoteReq Decode(wire::Reader& r) {
    VoteReq m;
    m.req_id = r.U64();
    m.reply_to = r.U32();
    m.key = r.String();
    m.value = r.String();
    m.version = r.U64();
    m.client = r.U64();
    return m;
  }
};

struct VoteReply {
  std::uint64_t req_id = 0;
  bool ok = false;
  std::string value;
  std::uint64_t version = 0;

  std::vector<std::uint8_t> Encode() const {
    wire::Writer w;
    w.U64(req_id);
    w.Bool(ok);
    w.String(value);
    w.U64(version);
    return w.Take();
  }
  static VoteReply Decode(wire::Reader& r) {
    VoteReply m;
    m.req_id = r.U64();
    m.ok = r.Bool();
    m.value = r.String();
    m.version = r.U64();
    return m;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Replica
// ---------------------------------------------------------------------------

VotingReplica::VotingReplica(sim::Simulation& simulation,
                             net::Network& network, net::NodeId self)
    : sim_(simulation), net_(network), self_(self) {
  net_.Register(self_, this);
}

void VotingReplica::OnFrame(const net::Frame& frame) {
  wire::Reader r(frame.payload);
  VoteReq m = VoteReq::Decode(r);
  if (!r.ok()) return;
  VoteReply reply;
  reply.req_id = m.req_id;
  switch (static_cast<VoteMsgType>(frame.type)) {
    case VoteMsgType::kLockReq: {
      auto it = lock_holder_.find(m.key);
      if (it == lock_holder_.end() || it->second == m.client) {
        lock_holder_[m.key] = m.client;
        reply.ok = true;
      } else {
        reply.ok = false;  // held by another writer: the deadlock ingredient
      }
      net_.Send(self_, m.reply_to,
                static_cast<std::uint16_t>(VoteMsgType::kLockReply),
                reply.Encode());
      break;
    }
    case VoteMsgType::kWriteReq: {
      auto it = lock_holder_.find(m.key);
      if (it != lock_holder_.end() && it->second == m.client) {
        auto& vv = store_[m.key];
        if (m.version > vv.version) {
          vv.value = m.value;
          vv.version = m.version;
        }
        lock_holder_.erase(it);
        reply.ok = true;
      }
      net_.Send(self_, m.reply_to,
                static_cast<std::uint16_t>(VoteMsgType::kWriteReply),
                reply.Encode());
      break;
    }
    case VoteMsgType::kReadReq: {
      auto it = store_.find(m.key);
      reply.ok = true;
      if (it != store_.end()) {
        reply.value = it->second.value;
        reply.version = it->second.version;
      }
      net_.Send(self_, m.reply_to,
                static_cast<std::uint16_t>(VoteMsgType::kReadReply),
                reply.Encode());
      break;
    }
    case VoteMsgType::kUnlockReq: {
      auto it = lock_holder_.find(m.key);
      if (it != lock_holder_.end() && it->second == m.client) {
        lock_holder_.erase(it);
      }
      break;  // no reply
    }
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

VotingClient::VotingClient(sim::Simulation& simulation, net::Network& network,
                           net::NodeId self, std::vector<net::NodeId> replicas,
                           VotingOptions options)
    : sim_(simulation),
      net_(network),
      self_(self),
      replicas_(std::move(replicas)),
      options_(options),
      join_waiters_(simulation.scheduler()),
      tasks_(simulation.scheduler()) {
  if (options_.write_quorum == 0) options_.write_quorum = replicas_.size();
  net_.Register(self_, this);
}

VotingClient::~VotingClient() { tasks_.DestroyAll(); }

void VotingClient::OnFrame(const net::Frame& frame) {
  const auto type = static_cast<VoteMsgType>(frame.type);
  if (type != VoteMsgType::kLockReply && type != VoteMsgType::kWriteReply &&
      type != VoteMsgType::kReadReply) {
    return;
  }
  wire::Reader r(frame.payload);
  VoteReply m = VoteReply::Decode(r);
  if (!r.ok()) return;
  auto it = pending_.find(m.req_id);
  if (it == pending_.end()) return;
  auto p = it->second;
  Ack ack;
  ack.ok = m.ok;
  ack.value = VersionedValue{m.value, m.version};
  p->acks.push_back(ack);
  // Resolve as soon as `need` positive acks arrive (or it becomes clear they
  // cannot): count positives.
  std::size_t ok_count = 0;
  for (const Ack& a : p->acks) ok_count += a.ok ? 1 : 0;
  if (ok_count >= p->need) {
    pending_.erase(it);
    join_waiters_.Fulfill(p->corr, true);
  } else if (p->acks.size() == replicas_.size() && ok_count < p->need) {
    pending_.erase(it);
    join_waiters_.Fulfill(p->corr, false);
  }
}

sim::Task<std::vector<VotingClient::Ack>> VotingClient::Gather(
    VoteMsgType type, const std::vector<std::uint8_t>& payload,
    std::size_t need, std::size_t fanout) {
  wire::Reader rr(payload);
  VoteReq req = VoteReq::Decode(rr);
  auto p = std::make_shared<Pending>();
  p->need = need;
  p->corr = next_req_ * 1000003ull;  // distinct from req ids
  pending_[req.req_id] = p;
  for (std::size_t i = 0; i < fanout && i < replicas_.size(); ++i) {
    net_.Send(self_, replicas_[i], static_cast<std::uint16_t>(type), payload);
  }
  auto r = co_await join_waiters_.Await(p->corr, options_.op_timeout);
  pending_.erase(req.req_id);
  if (!r.has_value()) co_return std::vector<Ack>{};  // timeout
  if (!*r) co_return std::vector<Ack>{};             // quorum unreachable
  co_return p->acks;
}

void VotingClient::Write(std::string key, std::string value,
                         std::function<void(bool)> done) {
  tasks_.Spawn(DoWrite(std::move(key), std::move(value), std::move(done)));
}

sim::Task<void> VotingClient::DoWrite(std::string key, std::string value,
                                      std::function<void(bool)> done) {
  // Round 1: collect write locks at a write quorum.
  VoteReq lock;
  lock.req_id = next_req_++;
  lock.reply_to = self_;
  lock.key = key;
  lock.client = self_;
  auto lock_acks = co_await Gather(VoteMsgType::kLockReq, lock.Encode(),
                                   options_.write_quorum, replicas_.size());
  if (lock_acks.empty()) {
    // Lock conflict or timeout — with concurrent writers locking replicas in
    // different orders this is exactly the voting deadlock (§5); back out.
    VoteReq unlock = lock;
    unlock.req_id = next_req_++;
    for (net::NodeId replica : replicas_) {
      net_.Send(self_, replica,
                static_cast<std::uint16_t>(VoteMsgType::kUnlockReq),
                unlock.Encode());
    }
    ++stats_.writes_failed;
    if (done) done(false);
    co_return;
  }
  // Round 2: read max version among acks... versions travel with the lock
  // replies in a fuller protocol; here the client picks a fresh version from
  // its clock, unique per client and monotonic.
  VoteReq write;
  write.req_id = next_req_++;
  write.reply_to = self_;
  write.key = key;
  write.value = value;
  write.version = sim_.Now() * 16 + (self_ % 16) + 1;
  write.client = self_;
  auto write_acks = co_await Gather(VoteMsgType::kWriteReq, write.Encode(),
                                    options_.write_quorum, replicas_.size());
  if (write_acks.empty()) {
    ++stats_.writes_failed;
    if (done) done(false);
    co_return;
  }
  ++stats_.writes_ok;
  if (done) done(true);
}

void VotingClient::Read(
    std::string key, std::function<void(std::optional<VersionedValue>)> done) {
  tasks_.Spawn(DoRead(std::move(key), std::move(done)));
}

sim::Task<void> VotingClient::DoRead(
    std::string key, std::function<void(std::optional<VersionedValue>)> done) {
  VoteReq read;
  read.req_id = next_req_++;
  read.reply_to = self_;
  read.key = key;
  read.client = self_;
  // Send to exactly the read quorum (read-one sends one message).
  auto acks = co_await Gather(VoteMsgType::kReadReq, read.Encode(),
                              options_.read_quorum, options_.read_quorum);
  if (acks.empty()) {
    ++stats_.reads_failed;
    if (done) done(std::nullopt);
    co_return;
  }
  VersionedValue best;
  for (const Ack& a : acks) {
    if (a.value.version >= best.version) best = a.value;
  }
  ++stats_.reads_ok;
  if (done) done(best);
}

}  // namespace vsr::baseline
