#include "baseline/models.h"

namespace vsr::baseline {
namespace {

double Binomial(std::size_t n, std::size_t k) {
  double r = 1.0;
  for (std::size_t i = 0; i < k; ++i) {
    r *= static_cast<double>(n - i) / static_cast<double>(i + 1);
  }
  return r;
}

}  // namespace

double KOfNAvailability(std::size_t n, std::size_t need,
                        double replica_availability) {
  double total = 0.0;
  for (std::size_t up = need; up <= n; ++up) {
    double p = Binomial(n, up);
    for (std::size_t i = 0; i < up; ++i) p *= replica_availability;
    for (std::size_t i = 0; i < n - up; ++i) p *= 1.0 - replica_availability;
    total += p;
  }
  return total;
}

}  // namespace vsr::baseline
