// Bundles the pieces every simulated world needs: one scheduler, one root
// PRNG, one tracer. All subsystems receive references to (or forks of) these,
// never their own independently seeded sources.
//
// A Simulation IS a host (DESIGN.md §12): it owns a host::Host bundle over
// its scheduler and tracer and converts to host::Host& implicitly, so the
// protocol stack — which compiles against the seam only — can be constructed
// straight from a Simulation. The whole simulated world shares this one
// Host; the socket host gives each node its own.
#pragma once

#include <cstdint>

#include "host/host.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/trace.h"

namespace vsr::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed) : seed_(seed), rng_(seed) {}
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  std::uint64_t seed() const { return seed_; }
  Scheduler& scheduler() { return sched_; }
  Rng& rng() { return rng_; }
  Tracer& tracer() { return tracer_; }
  Time Now() const { return sched_.Now(); }

  // The host-seam view of this simulation (one shared Host for all nodes).
  host::Host& host() { return host_; }
  operator host::Host&() { return host_; }

 private:
  std::uint64_t seed_;
  Scheduler sched_;
  Rng rng_;
  Tracer tracer_;
  host::Host host_{sched_, tracer_};
};

}  // namespace vsr::sim
