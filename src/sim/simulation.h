// Bundles the pieces every simulated world needs: one scheduler, one root
// PRNG, one tracer. All subsystems receive references to (or forks of) these,
// never their own independently seeded sources.
#pragma once

#include <cstdint>

#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/trace.h"

namespace vsr::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed) : seed_(seed), rng_(seed) {}
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  std::uint64_t seed() const { return seed_; }
  Scheduler& scheduler() { return sched_; }
  Rng& rng() { return rng_; }
  Tracer& tracer() { return tracer_; }
  Time Now() const { return sched_.Now(); }

 private:
  std::uint64_t seed_;
  Scheduler sched_;
  Rng rng_;
  Tracer tracer_;
};

}  // namespace vsr::sim
