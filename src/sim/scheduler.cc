#include "sim/scheduler.h"

#include <memory>
#include <utility>

namespace vsr::sim {

TimerId Scheduler::At(Time at, std::function<void()> fn) {
  if (at < now_) at = now_;
  TimerId id = next_id_++;
  pending_.insert(id);
  queue_.push(Event{at, next_seq_++, id,
                    std::make_shared<std::function<void()>>(std::move(fn))});
  return id;
}

TimerId Scheduler::After(Duration delay, std::function<void()> fn) {
  return At(now_ + delay, std::move(fn));
}

void Scheduler::Cancel(TimerId id) {
  if (id == kNoTimer) return;
  if (pending_.erase(id) != 0) cancelled_.insert(id);
}

bool Scheduler::PopAndRun() {
  while (!queue_.empty()) {
    Event e = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    pending_.erase(e.id);
    now_ = e.at;
    ++events_run_;
    (*e.fn)();
    return true;
  }
  return false;
}

bool Scheduler::Step() { return PopAndRun(); }

std::uint64_t Scheduler::RunUntil(Time deadline) {
  std::uint64_t ran = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (cancelled_.count(top.id) != 0) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.at > deadline) break;
    if (PopAndRun()) ++ran;
  }
  if (now_ < deadline) now_ = deadline;
  return ran;
}

std::uint64_t Scheduler::RunToQuiescence(std::uint64_t max_events) {
  std::uint64_t ran = 0;
  while (ran < max_events && PopAndRun()) ++ran;
  return ran;
}

}  // namespace vsr::sim
