// Simulated-time primitives for the deterministic discrete-event simulator.
//
// All protocol code in this repository observes time exclusively through
// sim::Clock (see scheduler.h); wall-clock time is never consulted, which is
// what makes every run reproducible from a seed.
#pragma once

#include <cstdint>
#include <string>

namespace vsr::sim {

// A point in simulated time, in microseconds since simulation start.
using Time = std::uint64_t;

// A span of simulated time, in microseconds.
using Duration = std::uint64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;

// Renders a time/duration as a human-readable string, e.g. "12.345ms".
std::string FormatDuration(Duration d);

}  // namespace vsr::sim
