// Simulated-time names, aliased from the host seam (host/time.h).
//
// The simulator measures time in the same unit (microseconds) and with the
// same types as every other host; what makes it the DETERMINISTIC host is
// that sim::Scheduler advances this clock by event, never by wall clock, so
// every run is a pure function of its seed. Sim-side code (network model,
// workloads, tests, benches) keeps using the sim:: spellings; protocol code
// uses host:: directly and never includes this header.
#pragma once

#include "host/time.h"

namespace vsr::sim {

using host::Duration;
using host::FormatDuration;
using host::Time;
using host::kMicrosecond;
using host::kMillisecond;
using host::kSecond;

}  // namespace vsr::sim
