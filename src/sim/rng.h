// Deterministic pseudo-random number generation for the simulator.
//
// The generator is xoshiro256++ seeded via splitmix64, so a single 64-bit
// seed fully determines a simulation run. We deliberately do not use
// std::mt19937 / std::uniform_int_distribution because their outputs are not
// guaranteed identical across standard-library implementations, and bit-exact
// reproducibility is a design requirement for failure-injection testing.
#pragma once

#include <cstdint>
#include <vector>

namespace vsr::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) { Seed(seed); }

  // Re-seeds the generator. Two Rng objects seeded identically produce
  // identical streams.
  void Seed(std::uint64_t seed);

  // Uniform 64-bit value.
  std::uint64_t Next();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t UniformInt(std::uint64_t lo, std::uint64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Exponentially distributed value with the given mean (rounded to u64).
  std::uint64_t Exponential(double mean);

  // Uniformly chosen index in [0, n). Requires n > 0.
  std::size_t Index(std::size_t n);

  // Forks a child generator whose stream is independent of (but fully
  // determined by) this generator's current state. Used to give each
  // subsystem its own stream so adding draws in one subsystem does not
  // perturb another.
  Rng Fork();

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = Index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace vsr::sim
