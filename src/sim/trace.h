// Tracing names, aliased from the host seam (host/trace.h).
//
// The Tracer itself is host-agnostic; the simulator simply timestamps lines
// with simulated time. Sim-side code keeps the sim:: spellings.
#pragma once

#include "host/trace.h"

namespace vsr::sim {

using host::TraceLevel;
using host::Tracer;

}  // namespace vsr::sim
