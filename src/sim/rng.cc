#include "sim/rng.h"

#include <cmath>

namespace vsr::sim {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::Seed(std::uint64_t seed) {
  // splitmix64 expansion guarantees a non-zero state for xoshiro.
  for (auto& s : s_) s = SplitMix64(seed);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::UniformInt(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return Next();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = span * (~0ULL / span);
  std::uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + v % span;
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::uint64_t Rng::Exponential(double mean) {
  if (mean <= 0.0) return 0;
  double u = UniformDouble();
  // Guard the log singularity at u == 0.
  if (u <= 0.0) u = 0x1.0p-53;
  double v = -mean * std::log(u);
  if (v < 0.0) v = 0.0;
  return static_cast<std::uint64_t>(v);
}

std::size_t Rng::Index(std::size_t n) {
  return static_cast<std::size_t>(UniformInt(0, n - 1));
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace vsr::sim
