// Coroutine support, aliased from the host seam (host/task.h).
//
// Task/TaskRegistry/Sleep are host-agnostic: they suspend and resume through
// host::TimerService, which sim::Scheduler implements. Sim-side code keeps
// the sim:: spellings; protocol code uses host:: directly.
#pragma once

#include "host/task.h"
#include "sim/scheduler.h"

namespace vsr::sim {

template <typename T>
using Task = host::Task<T>;

using host::Sleep;
using host::SleepAwaiter;
using host::TaskRegistry;

}  // namespace vsr::sim
