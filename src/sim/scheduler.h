// The discrete-event scheduler at the heart of the simulator — and the
// deterministic implementation of the host seam's TimerService (host/timer.h).
//
// Every asynchronous action in the system — message delivery, timer expiry,
// stable-storage write completion — is an Event in one priority queue,
// ordered by (time, insertion sequence). The sequence number makes
// simultaneous events fire in a deterministic order, which in turn makes the
// whole simulation a pure function of its seed. That ordering is exactly the
// TimerService contract (equal deadlines fire in scheduling order), so the
// protocol stack scheduled through the seam behaves identically whether it
// is driven by this class or by the real-time event loop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "host/timer.h"
#include "sim/time.h"

namespace vsr::sim {

// Sim-side spellings of the seam's timer handle.
using host::TimerId;
using host::kNoTimer;

class Scheduler final : public host::TimerService {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Current simulated time.
  Time Now() const override { return now_; }

  // Schedules `fn` to run at absolute time `at` (clamped to >= Now()).
  TimerId At(Time at, std::function<void()> fn) override;

  // Schedules `fn` to run `delay` from now.
  TimerId After(Duration delay, std::function<void()> fn) override;

  // Cancels a pending event. Cancelling an already-fired or unknown id is a
  // harmless no-op, so callers do not need to track firing themselves.
  void Cancel(TimerId id) override;

  // Runs the next pending event. Returns false if the queue is empty.
  bool Step();

  // Runs events until the queue is empty or simulated time would exceed
  // `deadline`; leaves events scheduled after the deadline pending and
  // advances Now() to the deadline. Returns the number of events run.
  std::uint64_t RunUntil(Time deadline);

  // Runs events until the queue drains. Returns the number of events run.
  // `max_events` guards against runaway self-rescheduling loops.
  std::uint64_t RunToQuiescence(std::uint64_t max_events = UINT64_MAX);

  bool Empty() const { return pending_.empty(); }

  std::uint64_t EventsRun() const { return events_run_; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    TimerId id;
    // Stored via shared_ptr so Event is copyable inside the priority_queue.
    std::shared_ptr<std::function<void()>> fn;

    bool operator>(const Event& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  bool PopAndRun();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  TimerId next_id_ = 1;
  std::uint64_t events_run_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_set<TimerId> cancelled_;
  // Ids scheduled but not yet run or cancelled; keeps Cancel() of unknown
  // ids a true no-op and makes Empty() exact.
  std::unordered_set<TimerId> pending_;
};

}  // namespace vsr::sim
