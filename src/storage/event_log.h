// Write-behind durable event log over StableStore (DESIGN.md §10).
//
// VR-88's fast path never forces to stable storage (§4.2); the price is
// that losing a majority simultaneously is a catastrophe. This log restores
// a recovery story WITHOUT touching the fast path: appends are buffered in
// memory and group-committed as CRC-framed segments strictly BEHIND the
// acknowledgement that made them visible — nothing in the protocol ever
// waits for a log write. A crash therefore loses the in-memory batch plus
// any segment still in flight, and recovery must treat the replayed state
// as a *lower bound* on what the cohort had acknowledged (the cohort
// rejoins as crashed-with-state, never as normal; see view_formation.h
// condition 4).
//
// Layering: the log stores opaque (kind, payload) entries. The cohort layer
// defines the entry kinds (checkpoint / apply) and their payloads; this
// class knows only about framing, batching, generations and replay.
//
// On-disk layout (all integers little-endian, see DESIGN.md §10 for the
// byte-for-byte spec):
//   <prefix>/head            u64 generation
//   <prefix>/<gen>/<seq>     one segment, seq = 1, 2, ...:
//       repeat { u32 body_len | u32 crc32(body) | body } where
//       body = u8 kind | payload bytes
//
// A generation is one contiguous run of state anchored by its first entry
// (the cohort writes a checkpoint there). BeginGeneration bumps the head
// and resets seq; because every StableStore write shares force_latency,
// durable writes complete in issue order, so the durable image is always a
// prefix of what was issued: head before segment 1, segment n before n+1.
// Replay walks segments until one is missing or an entry fails its length
// or CRC check, and rejects everything from the first bad byte onwards —
// a torn tail can only under-represent what the cohort knew, never invent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "host/host.h"
#include "storage/stable_store.h"

namespace vsr::storage {

struct EventLogOptions {
  // Off by default: the paper's configuration is volatile, and E9 must
  // reproduce its catastrophe numbers unless the log is asked for.
  bool enabled = false;
  // Group commit: a pending batch is flushed once the oldest entry has
  // waited this long, so the log trails the ack path by at most one
  // interval plus the force latency.
  host::Duration flush_interval = 5 * host::kMillisecond;
  // Early-flush thresholds: entry count and pre-framing payload bytes
  // (the same byte-budget idea as CommBufferOptions::max_batch_bytes).
  std::size_t max_batch = 256;
  std::size_t max_batch_bytes = 64 * 1024;
};

class EventLog {
 public:
  struct Entry {
    std::uint8_t kind = 0;
    std::vector<std::uint8_t> payload;
  };

  // `prefix` namespaces this cohort's keys in the (shared) store; `owner`
  // tags ForceWrites so Crash() can drop exactly our in-flight segments.
  EventLog(host::Host& hst, StableStore& store,
           EventLogOptions options, std::string prefix, StableStore::Owner owner)
      : host_(hst),
        store_(store),
        options_(options),
        prefix_(std::move(prefix)),
        owner_(owner) {}
  ~EventLog() { host_.timers().Cancel(flush_timer_); }
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  bool enabled() const { return options_.enabled; }

  // Write-behind append: buffered in memory and group-committed later (or
  // immediately once a batch threshold trips). Appends before the first
  // BeginGeneration are dropped — there is no checkpoint to anchor them.
  void Append(std::uint8_t kind, std::vector<std::uint8_t> payload);

  // Flushes everything pending as one segment now. The write is still
  // asynchronous (durable after force_latency); nothing waits on it.
  void Flush();

  // Opens a new generation whose first entry is `anchor` (the cohort's
  // checkpoint). Discards any unflushed entries of the old generation —
  // the anchor supersedes them. Issues head then segment 1; FIFO completion
  // means replay never sees a generation without its anchor... unless the
  // crash tore it, in which case the generation replays empty (safe).
  // Once the new head is durable the superseded generation's segments are
  // erased: replay only ever reads the head generation, and stale segments
  // must not survive to alias a reused generation number (see Replay).
  void BeginGeneration(Entry anchor);

  // Crash hook: the in-memory batch is gone. The caller is responsible for
  // StableStore::DropPending(owner) — it owns other keys under the same
  // owner tag (viewid etc.).
  void Crash();

  // Reads back the durable image of the CURRENT head generation, stopping
  // at the first missing segment, truncated frame, or CRC mismatch — the
  // rest of the log is rejected wholesale. Also re-syncs the in-memory
  // generation counter to the durable head so a later BeginGeneration
  // cannot collide with surviving segments. A garbled head (torn write)
  // additionally erases every surviving segment: the generation counter
  // restarts from 0 in that case, and reused generation numbers must never
  // find valid-CRC segments from a previous life.
  std::vector<Entry> Replay();

  // Diskless recovery: wipes every durable key of this log.
  void Erase();

  struct Stats {
    std::uint64_t appends = 0;
    std::uint64_t segments_written = 0;
    std::uint64_t bytes_logged = 0;
    std::uint64_t generations = 0;
    std::uint64_t entries_replayed = 0;
    std::uint64_t entries_rejected = 0;  // torn/corrupt suffix at replay
  };
  const Stats& stats() const { return stats_; }

  std::size_t pending_entries() const { return pending_.size(); }

 private:
  void ArmFlushTimer();
  std::string HeadKey() const { return prefix_ + "/head"; }
  std::string GenPrefix(std::uint64_t gen) const {
    return prefix_ + "/" + std::to_string(gen) + "/";
  }
  std::string SegKey(std::uint64_t gen, std::uint64_t seq) const {
    return GenPrefix(gen) + std::to_string(seq);
  }

  host::Host& host_;
  StableStore& store_;
  EventLogOptions options_;
  const std::string prefix_;
  const StableStore::Owner owner_;

  std::uint64_t gen_ = 0;  // 0 = no generation begun yet
  std::uint64_t next_seq_ = 1;
  std::vector<Entry> pending_;
  std::size_t pending_bytes_ = 0;
  host::TimerId flush_timer_ = host::kNoTimer;
  Stats stats_;
};

}  // namespace vsr::storage
