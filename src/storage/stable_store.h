// Simulated stable storage.
//
// The paper's design goal is to avoid stable storage on the critical path:
// a cohort persists only mymid / configuration / mygroupid (at creation) and
// cur_viewid (at the end of a view change); everything else is volatile and
// streamed to backups instead (§4.2). The baselines, by contrast, force
// data/prepare/commit records to stable storage, which is where the paper's
// E2 performance claim comes from. This class models both uses: a key-value
// store that survives crashes, with a configurable forced-write latency.
//
// Crash semantics: a ForceWrite is pending until force_latency elapses.
// A node that crashes with writes in flight must lose them — the scheduled
// completion must NOT install the value afterwards (the node was dead when
// the platter spun). DropPending(owner) models exactly that; with
// torn_writes enabled the write that was physically mid-flight (the oldest
// pending one — completions are FIFO because every write shares
// force_latency) persists a truncated prefix instead of vanishing, which is
// what log-recovery code must tolerate (DESIGN.md §10).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "host/host.h"

namespace vsr::storage {

struct StableStoreOptions {
  // Latency of a forced (synchronous, durable) write. The paper-era default
  // models a disk write; modern SSD/NVRAM values are swept in bench E2.
  host::Duration force_latency = 10 * host::kMillisecond;
  // Deterministic torn-write mode for recovery tests: when DropPending
  // cancels in-flight writes, the oldest one persists the first half of its
  // value (a torn sector) instead of disappearing entirely.
  bool torn_writes = false;
};

class StableStore {
 public:
  // Writers identify themselves so a crash can cancel exactly their pending
  // writes. 0 = unowned (never dropped).
  using Owner = std::uint32_t;

  StableStore(host::Host& hst, StableStoreOptions options)
      : host_(hst), options_(options) {}
  StableStore(const StableStore&) = delete;
  StableStore& operator=(const StableStore&) = delete;

  // Durably writes `value` under `key`; `on_durable` runs once the write has
  // reached stable storage (after force_latency). The value is visible to
  // Read() immediately after on_durable runs, and never lost afterwards —
  // unless the write is still pending when DropPending(owner) cancels it.
  void ForceWrite(std::string key, std::vector<std::uint8_t> value,
                  std::function<void()> on_durable, Owner owner = 0) {
    ++stats_.forced_writes;
    stats_.bytes_written += value.size();
    const std::uint64_t id = next_write_id_++;
    pending_.emplace(
        id, PendingWrite{owner, std::move(key), std::move(value),
                         std::move(on_durable)});
    host_.timers().After(options_.force_latency, [this, id] {
      auto it = pending_.find(id);
      if (it == pending_.end()) return;  // dropped by a crash
      PendingWrite w = std::move(it->second);
      pending_.erase(it);
      data_[std::move(w.key)] = std::move(w.value);
      if (w.on_durable) w.on_durable();
    });
  }

  // Crash hook: cancels every pending write issued by `owner`. None of them
  // becomes durable and none of their callbacks run. In torn-write mode the
  // oldest pending write — the one mid-flight at crash time — leaves a
  // truncated value behind for recovery code to reject.
  void DropPending(Owner owner) {
    bool torn_done = false;
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.owner != owner || owner == 0) {
        ++it;
        continue;
      }
      if (options_.torn_writes && !torn_done) {
        torn_done = true;
        std::vector<std::uint8_t> torn = it->second.value;
        torn.resize(torn.size() / 2);
        data_[it->second.key] = std::move(torn);
        ++stats_.torn_writes;
      }
      ++stats_.writes_dropped;
      it = pending_.erase(it);
    }
  }

  // Reads a previously forced value. Models post-crash recovery: only data
  // whose force completed before the crash is present.
  std::optional<std::vector<std::uint8_t>> Read(const std::string& key) const {
    auto it = data_.find(key);
    if (it == data_.end()) return std::nullopt;
    return it->second;
  }

  bool Contains(const std::string& key) const {
    return data_.count(key) != 0;
  }

  // Immediately removes every durable key starting with `prefix` (models a
  // reformatted / replaced disk at recovery time). Returns the erase count.
  std::size_t EraseByPrefix(const std::string& prefix) {
    std::size_t n = 0;
    auto it = data_.lower_bound(prefix);
    while (it != data_.end() && it->first.compare(0, prefix.size(), prefix) == 0) {
      it = data_.erase(it);
      ++n;
    }
    return n;
  }

  // Test helper: directly overwrites a durable value, bypassing latency —
  // models media corruption (bit rot) for recovery tests.
  void Poke(std::string key, std::vector<std::uint8_t> value) {
    data_[std::move(key)] = std::move(value);
  }

  struct Stats {
    std::uint64_t forced_writes = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t writes_dropped = 0;  // cancelled by DropPending
    std::uint64_t torn_writes = 0;     // truncated values left behind
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

  int pending_writes() const { return static_cast<int>(pending_.size()); }

  const StableStoreOptions& options() const { return options_; }
  void set_force_latency(host::Duration d) { options_.force_latency = d; }
  void set_torn_writes(bool v) { options_.torn_writes = v; }

 private:
  struct PendingWrite {
    Owner owner;
    std::string key;
    std::vector<std::uint8_t> value;
    std::function<void()> on_durable;
  };

  host::Host& host_;
  StableStoreOptions options_;
  std::map<std::string, std::vector<std::uint8_t>> data_;
  // Keyed by issue id: iteration order == issue order == completion order
  // (every write shares force_latency, so completions are FIFO).
  std::map<std::uint64_t, PendingWrite> pending_;
  std::uint64_t next_write_id_ = 1;
  Stats stats_;
};

}  // namespace vsr::storage
