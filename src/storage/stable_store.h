// Simulated stable storage.
//
// The paper's design goal is to avoid stable storage on the critical path:
// a cohort persists only mymid / configuration / mygroupid (at creation) and
// cur_viewid (at the end of a view change); everything else is volatile and
// streamed to backups instead (§4.2). The baselines, by contrast, force
// data/prepare/commit records to stable storage, which is where the paper's
// E2 performance claim comes from. This class models both uses: a key-value
// store that survives crashes, with a configurable forced-write latency.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulation.h"

namespace vsr::storage {

struct StableStoreOptions {
  // Latency of a forced (synchronous, durable) write. The paper-era default
  // models a disk write; modern SSD/NVRAM values are swept in bench E2.
  sim::Duration force_latency = 10 * sim::kMillisecond;
};

class StableStore {
 public:
  StableStore(sim::Simulation& simulation, StableStoreOptions options)
      : sim_(simulation), options_(options) {}
  StableStore(const StableStore&) = delete;
  StableStore& operator=(const StableStore&) = delete;

  // Durably writes `value` under `key`; `on_durable` runs once the write has
  // reached stable storage (after force_latency). The value is visible to
  // Read() immediately after on_durable runs, and never lost afterwards.
  void ForceWrite(std::string key, std::vector<std::uint8_t> value,
                  std::function<void()> on_durable) {
    ++pending_;
    ++stats_.forced_writes;
    stats_.bytes_written += value.size();
    sim_.scheduler().After(
        options_.force_latency,
        [this, key = std::move(key), value = std::move(value),
         cb = std::move(on_durable)]() mutable {
          data_[std::move(key)] = std::move(value);
          --pending_;
          if (cb) cb();
        });
  }

  // Reads a previously forced value. Models post-crash recovery: only data
  // whose force completed before the crash is present.
  std::optional<std::vector<std::uint8_t>> Read(const std::string& key) const {
    auto it = data_.find(key);
    if (it == data_.end()) return std::nullopt;
    return it->second;
  }

  bool Contains(const std::string& key) const {
    return data_.count(key) != 0;
  }

  struct Stats {
    std::uint64_t forced_writes = 0;
    std::uint64_t bytes_written = 0;
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

  int pending_writes() const { return pending_; }

  const StableStoreOptions& options() const { return options_; }
  void set_force_latency(sim::Duration d) { options_.force_latency = d; }

 private:
  sim::Simulation& sim_;
  StableStoreOptions options_;
  std::map<std::string, std::vector<std::uint8_t>> data_;
  Stats stats_;
  int pending_ = 0;
};

}  // namespace vsr::storage
