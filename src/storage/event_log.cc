#include "storage/event_log.h"

#include <functional>
#include <utility>

#include "wire/buffer.h"

namespace vsr::storage {

void EventLog::Append(std::uint8_t kind, std::vector<std::uint8_t> payload) {
  if (!options_.enabled || gen_ == 0) return;
  ++stats_.appends;
  pending_bytes_ += payload.size() + 1;
  pending_.push_back(Entry{kind, std::move(payload)});
  if (pending_.size() >= options_.max_batch ||
      (options_.max_batch_bytes > 0 &&
       pending_bytes_ >= options_.max_batch_bytes)) {
    Flush();
    return;
  }
  ArmFlushTimer();
}

void EventLog::Flush() {
  if (pending_.empty()) return;
  host_.timers().Cancel(flush_timer_);
  flush_timer_ = host::kNoTimer;

  wire::Writer w;
  for (const Entry& e : pending_) {
    wire::Writer body;
    body.U8(e.kind);
    body.Raw(std::span<const std::uint8_t>(e.payload));
    w.U32(static_cast<std::uint32_t>(body.size()));
    w.U32(wire::Crc32(body.data()));
    w.Raw(std::span<const std::uint8_t>(body.data()));
  }
  pending_.clear();
  pending_bytes_ = 0;
  ++stats_.segments_written;
  stats_.bytes_logged += w.size();
  store_.ForceWrite(SegKey(gen_, next_seq_++), w.Take(), nullptr, owner_);
}

void EventLog::BeginGeneration(Entry anchor) {
  if (!options_.enabled) return;
  // Unflushed entries of the old generation are superseded by the anchor.
  pending_.clear();
  pending_bytes_ = 0;
  host_.timers().Cancel(flush_timer_);
  flush_timer_ = host::kNoTimer;

  const std::uint64_t old_gen = gen_;
  ++gen_;
  next_seq_ = 1;
  ++stats_.generations;
  wire::Writer head;
  head.U64(gen_);
  // Once the new head pointer is durable, replay can never read the old
  // generation again, so its segments are dead weight — erase them. Must
  // wait for durability: a crash before the head lands replays the OLD
  // generation, which therefore has to stay intact until then. Erasing is
  // also a safety requirement, not just hygiene: a garbled head resets the
  // generation counter, and a reused generation number must never find
  // valid-CRC segments from a previous life (see Replay).
  std::function<void()> on_durable;
  if (old_gen != 0) {
    on_durable = [store = &store_, prefix = GenPrefix(old_gen)] {
      store->EraseByPrefix(prefix);
    };
  }
  store_.ForceWrite(HeadKey(), head.Take(), std::move(on_durable), owner_);
  pending_bytes_ = anchor.payload.size() + 1;
  pending_.push_back(std::move(anchor));
  Flush();
}

void EventLog::Crash() {
  pending_.clear();
  pending_bytes_ = 0;
  host_.timers().Cancel(flush_timer_);
  flush_timer_ = host::kNoTimer;
}

std::vector<EventLog::Entry> EventLog::Replay() {
  std::vector<Entry> out;
  if (!options_.enabled) return out;

  const auto head = store_.Read(HeadKey());
  if (!head.has_value()) {
    gen_ = 0;
    next_seq_ = 1;
    return out;
  }
  wire::Reader hr(*head);
  const std::uint64_t durable_gen = hr.U64();
  if (!hr.ok() || !hr.AtEnd() || durable_gen == 0) {
    // Torn head write: no trustworthy generation pointer, replay nothing —
    // and erase every surviving segment NOW. The generation counter restarts
    // at 0, so a later BeginGeneration reuses numbers; any stale segment
    // left behind would carry a valid CRC and could splice old-view records
    // (whose per-view timestamps restart at 1) after a fresh checkpoint on
    // the next crash, inventing state the recovery path would trust.
    ++stats_.entries_rejected;
    store_.EraseByPrefix(prefix_ + "/");
    gen_ = 0;
    next_seq_ = 1;
    return out;
  }
  gen_ = durable_gen;

  bool bad = false;
  std::uint64_t seq = 1;
  for (; !bad; ++seq) {
    const auto seg = store_.Read(SegKey(durable_gen, seq));
    if (!seg.has_value()) break;
    wire::Reader r(*seg);
    while (!r.AtEnd()) {
      // Frame header + body must be intact; anything short or mismatched is
      // a torn tail and invalidates the rest of the log wholesale.
      if (r.Remaining() < 8) {
        bad = true;
        break;
      }
      const std::uint32_t len = r.U32();
      const std::uint32_t crc = r.U32();
      if (r.Remaining() < len || len == 0) {
        bad = true;
        break;
      }
      const std::vector<std::uint8_t> body = r.Raw(len);
      if (wire::Crc32(body) != crc) {
        bad = true;
        break;
      }
      Entry e;
      e.kind = body[0];
      e.payload.assign(body.begin() + 1, body.end());
      out.push_back(std::move(e));
      ++stats_.entries_replayed;
    }
  }
  if (bad) ++stats_.entries_rejected;
  // Future appends go to a fresh generation (the cohort re-checkpoints after
  // replay); still park next_seq_ past the durable image for safety.
  next_seq_ = seq;
  return out;
}

void EventLog::Erase() {
  store_.EraseByPrefix(prefix_ + "/");
  Crash();
  gen_ = 0;
  next_seq_ = 1;
}

void EventLog::ArmFlushTimer() {
  if (flush_timer_ != host::kNoTimer) return;
  flush_timer_ = host_.timers().After(options_.flush_interval, [this] {
    flush_timer_ = host::kNoTimer;
    Flush();
  });
}

}  // namespace vsr::storage
