// A protocol frame log: taps the network's delivery stream and renders a
// readable message-sequence trace — the "wire view" counterpart of the
// cohort-level tracer. Intended for debugging failed seeds and for teaching
// (examples/partition_drill-style narration of what actually flowed).
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "net/network.h"
#include "sim/simulation.h"
#include "vr/messages.h"

namespace vsr::net {

class FrameLog {
 public:
  // Attaches to the network. Detaches (and restores no-observer) on
  // destruction. `capacity` bounds memory: older entries are dropped.
  FrameLog(sim::Simulation& simulation, Network& network,
           std::size_t capacity = 4096)
      : sim_(simulation), net_(network), capacity_(capacity) {
    net_.set_observer([this](const Frame& f) { Record(f); });
  }
  ~FrameLog() { net_.set_observer(nullptr); }
  FrameLog(const FrameLog&) = delete;
  FrameLog& operator=(const FrameLog&) = delete;

  struct Entry {
    sim::Time at = 0;
    NodeId from = 0;
    NodeId to = 0;
    std::uint16_t type = 0;
    std::size_t bytes = 0;
  };

  const std::deque<Entry>& entries() const { return entries_; }
  std::size_t dropped() const { return dropped_; }
  void Clear() {
    entries_.clear();
    dropped_ = 0;
  }

  // Renders "t=410.715ms 1 -> 2 buffer-batch (112B)" lines; a type filter of
  // 0 renders everything.
  std::vector<std::string> Render(std::uint16_t type_filter = 0) const {
    std::vector<std::string> out;
    for (const Entry& e : entries_) {
      if (type_filter != 0 && e.type != type_filter) continue;
      char buf[128];
      const char* name =
          e.type >= 1 && e.type <= 26
              ? vr::MsgTypeName(static_cast<vr::MsgType>(e.type))
              : "?";
      std::snprintf(buf, sizeof(buf), "t=%-12s %3u -> %-3u %-16s (%zuB)",
                    sim::FormatDuration(e.at).c_str(), e.from, e.to, name,
                    e.bytes);
      out.push_back(buf);
    }
    return out;
  }

  // Count of logged frames of one protocol message type.
  std::size_t CountType(vr::MsgType t) const {
    std::size_t n = 0;
    for (const Entry& e : entries_) {
      if (e.type == static_cast<std::uint16_t>(t)) ++n;
    }
    return n;
  }

 private:
  void Record(const Frame& f) {
    if (entries_.size() == capacity_) {
      entries_.pop_front();
      ++dropped_;
    }
    entries_.push_back(Entry{sim_.Now(), f.from, f.to, f.type,
                             f.payload.size()});
  }

  sim::Simulation& sim_;
  Network& net_;
  const std::size_t capacity_;
  std::deque<Entry> entries_;
  std::size_t dropped_ = 0;
};

}  // namespace vsr::net
