// The frame-transport half of the host seam (DESIGN.md §12).
//
// Protocol code sends and receives opaque typed frames; it never sees how
// they travel. Two implementations exist:
//
//   * net::Network         — the simulated message-passing network: one
//                            shared object models every link, with seeded
//                            loss/delay/duplication/partition injection.
//   * host::SocketTransport — the threaded TCP host: one endpoint per node,
//                            length-prefixed CRC-framed messages over real
//                            sockets.
//
// Contract (what protocol code may assume — DESIGN.md §12.3):
//
//   1. Delivery is best-effort: frames may be lost, arbitrarily delayed,
//      duplicated, or reordered. The protocol is correct under all of that
//      (the paper's §1 network model); the transport never has to be.
//   2. A delivered frame is intact: the payload bytes equal the sent bytes
//      (both transports enforce this with a CRC-32 and drop on mismatch).
//   3. OnFrame runs on the receiving node's host thread (the simulator's
//      event loop / the node's event-loop thread), never concurrently with
//      that node's timers, and never re-entrantly inside Send().
//   4. After Unregister(node) returns on the node's host thread, OnFrame is
//      never invoked for that node again; frames in flight are dropped.
//   5. Send() never blocks the caller on the remote node's progress. It may
//      block briefly on local I/O (a socket write), never on a reply.
#pragma once

#include <cstdint>
#include <vector>

namespace vsr::net {

using NodeId = std::uint32_t;

// A network frame as seen by a receiving node. `type` is an opaque tag the
// upper layer uses for dispatch (see vr/messages.h for the protocol's tags).
struct Frame {
  NodeId from = 0;
  NodeId to = 0;
  std::uint16_t type = 0;
  std::vector<std::uint8_t> payload;
};

// Receiver interface; one per registered node.
class FrameHandler {
 public:
  virtual ~FrameHandler() = default;
  virtual void OnFrame(const Frame& frame) = 0;
};

// Sender interface: the only way protocol code puts frames on the wire.
class Transport {
 public:
  virtual ~Transport() = default;

  // Registers (or replaces) the handler for a node. Passing the handler of
  // a node the transport does not serve (a foreign node on the socket host)
  // is a programming error.
  virtual void Register(NodeId node, FrameHandler* handler) = 0;

  // Removes the handler; frames arriving afterwards are dropped (contract
  // point 4). Unregistering an unknown node is a harmless no-op.
  virtual void Unregister(NodeId node) = 0;

  // Sends a frame (best-effort, contract point 1). Local (from == to)
  // delivery bypasses loss injection but is still asynchronous: the handler
  // never runs inside Send().
  virtual void Send(NodeId from, NodeId to, std::uint16_t type,
                    std::vector<std::uint8_t> payload) = 0;

  // A node's lifecycle valve. A cohort marks itself down when it crashes
  // and up again when it starts or finishes recovery; while down, the
  // transport delivers nothing to that node (frames in flight toward it are
  // dropped at delivery time). Registration state is separate: Register
  // installs a handler but never changes up/down, so a crashed cohort
  // cannot bypass its recovery path by re-registering. On the simulated
  // network this same valve doubles as the fault-injection hook.
  virtual void SetNodeUp(NodeId node, bool up) = 0;
};

}  // namespace vsr::net
