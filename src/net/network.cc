#include "net/network.h"

#include <utility>

namespace vsr::net {

Network::Network(sim::Simulation& simulation, NetworkOptions options)
    : sim_(simulation), options_(options), rng_(simulation.rng().Fork()) {}

void Network::Register(NodeId node, FrameHandler* handler) {
  // Registration only installs the handler. Up/down state is controlled
  // solely by SetNodeUp: re-registering a handler for a crashed cohort must
  // not silently mark it up and bypass the Recover() path.
  handlers_[node] = handler;
}

void Network::Unregister(NodeId node) { handlers_.erase(node); }

std::uint64_t Network::LinkKey(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

void Network::SetNodeUp(NodeId node, bool up) {
  if (up) {
    down_nodes_.erase(node);
  } else {
    down_nodes_.insert(node);
  }
}

bool Network::NodeUp(NodeId node) const {
  return handlers_.count(node) != 0 && down_nodes_.count(node) == 0;
}

void Network::Partition(const std::vector<std::vector<NodeId>>& groups) {
  partition_of_.clear();
  partitioned_ = !groups.empty();
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (NodeId n : groups[g]) partition_of_[n] = static_cast<int>(g);
  }
}

void Network::SetLinkDown(NodeId a, NodeId b, bool down) {
  if (down) {
    down_links_.insert(LinkKey(a, b));
  } else {
    down_links_.erase(LinkKey(a, b));
  }
}

bool Network::Reachable(NodeId from, NodeId to) const {
  if (from == to) return true;
  if (down_links_.count(LinkKey(from, to)) != 0) return false;
  if (partitioned_) {
    auto f = partition_of_.find(from);
    auto t = partition_of_.find(to);
    // A node missing from the partition map is isolated.
    if (f == partition_of_.end() || t == partition_of_.end()) return false;
    if (f->second != t->second) return false;
  }
  return true;
}

sim::Duration Network::DrawDelay() {
  if (options_.delay_max <= options_.delay_min) return options_.delay_min;
  return rng_.UniformInt(options_.delay_min, options_.delay_max);
}

void Network::Send(NodeId from, NodeId to, std::uint16_t type,
                   std::vector<std::uint8_t> payload) {
  ++stats_.frames_sent;
  stats_.bytes_sent += payload.size() + 16;  // 16-byte simulated frame header
  ++stats_.sent_by_type[type];
  stats_.bytes_by_type[type] += payload.size() + 16;

  Frame frame{from, to, type, std::move(payload)};
  std::uint32_t crc = wire::Crc32(frame.payload);

  if (from == to) {
    // Loopback: reliable, but still asynchronous.
    sim_.scheduler().After(1, [this, frame = std::move(frame), crc]() mutable {
      Deliver(std::move(frame), crc);
    });
    return;
  }

  // Partition state is checked only at delivery time (Deliver): a frame sent
  // during a partition that heals before the frame lands is delivered, and a
  // frame in flight when a partition forms is lost — as on a real network.
  // Checking here too would double-count dropped_partition.
  if (rng_.Bernoulli(options_.loss_probability)) {
    ++stats_.dropped_loss;
    return;
  }

  bool corrupt = rng_.Bernoulli(options_.corrupt_probability) &&
                 !frame.payload.empty();
  int copies = rng_.Bernoulli(options_.duplicate_probability) ? 2 : 1;
  for (int i = 0; i < copies; ++i) {
    Frame copy = frame;
    if (corrupt && i == 0) {
      std::size_t at = rng_.Index(copy.payload.size());
      copy.payload[at] ^= static_cast<std::uint8_t>(1 + rng_.Index(255));
    }
    if (i == 1) ++stats_.duplicates_delivered;
    sim_.scheduler().After(
        DrawDelay(), [this, copy = std::move(copy), crc]() mutable {
          Deliver(std::move(copy), crc);
        });
  }
}

void Network::Deliver(Frame frame, std::uint32_t crc) {
  // Conditions are re-checked at delivery time: frames in flight when a
  // partition forms or a node crashes are lost, as on a real network.
  if (frame.from != frame.to && !Reachable(frame.from, frame.to)) {
    ++stats_.dropped_partition;
    return;
  }
  auto it = handlers_.find(frame.to);
  if (it == handlers_.end() || down_nodes_.count(frame.to) != 0) {
    ++stats_.dropped_node_down;
    return;
  }
  if (wire::Crc32(frame.payload) != crc) {
    ++stats_.dropped_corrupt;
    return;
  }
  ++stats_.frames_delivered;
  if (observer_) observer_(frame);
  it->second->OnFrame(frame);
}

}  // namespace vsr::net
