// Simulated message-passing network.
//
// Models exactly the failure modes the paper assumes (§1): the network may
// lose, delay, and duplicate messages, deliver them out of order, and
// partition into subnetworks; nodes are fail-stop and may crash and recover.
// Nothing byzantine — but frames do carry a CRC32 so that the (optional)
// bit-corruption injector exercises the drop-on-checksum-failure path.
//
// Determinism: all randomness comes from an Rng forked off the simulation's
// root generator, and all deliveries are scheduler events.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/transport.h"
#include "sim/rng.h"
#include "sim/simulation.h"
#include "wire/buffer.h"

namespace vsr::net {

struct NetworkOptions {
  // One-way delivery delay is drawn uniformly from [delay_min, delay_max].
  sim::Duration delay_min = 100 * sim::kMicrosecond;
  sim::Duration delay_max = 500 * sim::kMicrosecond;
  // Probability that a frame is silently lost.
  double loss_probability = 0.0;
  // Probability that a frame is delivered twice (with independent delays).
  double duplicate_probability = 0.0;
  // Probability that one payload byte is flipped in flight; the CRC check
  // turns corruption into loss, as on a real checksummed transport.
  double corrupt_probability = 0.0;
};

// Counters used by the benchmark harness to reproduce the paper's
// message-count claims (E3, E4, E6).
struct NetworkStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_partition = 0;
  std::uint64_t dropped_node_down = 0;
  std::uint64_t dropped_corrupt = 0;
  std::uint64_t duplicates_delivered = 0;
  std::map<std::uint16_t, std::uint64_t> sent_by_type;
  // Wire bytes (payload + frame header) by message type: the honest
  // measurement of what replication compression saves (bench E10).
  std::map<std::uint16_t, std::uint64_t> bytes_by_type;
};

class Network final : public Transport {
 public:
  Network(sim::Simulation& simulation, NetworkOptions options);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // -- Data plane (the net::Transport seam) ------------------------------

  // Registers (or replaces) the handler for a node. Does NOT change up/down
  // state — only SetNodeUp does (a crashed node must go through recovery).
  void Register(NodeId node, FrameHandler* handler) override;

  // Removes the handler: frames in flight toward the node are dropped at
  // delivery time (counted as dropped_node_down). Up/down state is
  // untouched, exactly like Register.
  void Unregister(NodeId node) override;

  // Sends a frame. Local (from == to) delivery bypasses loss/partition but
  // still goes through the scheduler so handlers never re-enter.
  void Send(NodeId from, NodeId to, std::uint16_t type,
            std::vector<std::uint8_t> payload) override;

  // Node crash / recovery (part of the Transport seam — cohorts flip their
  // own valve on Start/Crash/Recover). A down node receives nothing; frames
  // in flight toward it are dropped at delivery time.
  void SetNodeUp(NodeId node, bool up) override;

  // -- Fault-injection control plane ------------------------------------

  bool NodeUp(NodeId node) const;

  // Splits the network into the given groups; nodes in different groups
  // cannot communicate. Nodes not mentioned in any group are isolated.
  // An empty vector restores full connectivity.
  void Partition(const std::vector<std::vector<NodeId>>& groups);
  void Heal() { Partition({}); }

  // Per-link overrides (bidirectional).
  void SetLinkDown(NodeId a, NodeId b, bool down);

  bool Reachable(NodeId from, NodeId to) const;

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

  const NetworkOptions& options() const { return options_; }
  void set_options(const NetworkOptions& o) { options_ = o; }

  // Observation tap: invoked for every DELIVERED frame (after loss/
  // partition/CRC filtering), before the handler. Used by the frame log and
  // by tests that assert on message sequences; pass nullptr to remove.
  using Observer = std::function<void(const Frame&)>;
  void set_observer(Observer obs) { observer_ = std::move(obs); }

 private:
  void Deliver(Frame frame, std::uint32_t crc);
  sim::Duration DrawDelay();
  static std::uint64_t LinkKey(NodeId a, NodeId b);

  sim::Simulation& sim_;
  NetworkOptions options_;
  sim::Rng rng_;
  NetworkStats stats_;

  std::map<NodeId, FrameHandler*> handlers_;
  std::set<NodeId> down_nodes_;
  std::set<std::uint64_t> down_links_;
  // partition_of_[n] = group index; nodes absent from the map when no
  // partition is active.
  std::map<NodeId, int> partition_of_;
  bool partitioned_ = false;
  Observer observer_;
};

}  // namespace vsr::net
