// Durable event log integration and crashed-cohort recovery (DESIGN.md §10).
//
// The log is strictly write-behind: LogApply buffers a copy of each record
// the moment it is applied (backup) or added (primary) and the EventLog
// group-commits it later — no protocol step ever waits on a log write. The
// durable image is therefore a LOWER BOUND on what this cohort had
// acknowledged before the crash, which is exactly why RecoverFromLog rejoins
// as crashed-with-state (view_formation.h condition 4) and never as normal.
#include "core/cohort.h"

namespace vsr::core {

namespace {

// Entry kinds within a log generation. The checkpoint is always the
// generation's anchor (first entry); applies follow in timestamp order.
constexpr std::uint8_t kLogCheckpoint = 1;
constexpr std::uint8_t kLogApply = 2;

}  // namespace

// Opens a fresh log generation anchored by a checkpoint of the full cohort
// state at applied ts `ts`. Callers at view transitions issue this BEFORE
// forcing the new viewid: StableStore writes complete in issue order, so a
// durable viewid implies a durable checkpoint for the view it names.
void Cohort::LogCheckpoint(std::uint64_t ts) {
  if (!elog_.enabled()) return;
  wire::Writer w;
  cur_viewid_.Encode(w);
  w.U64(ts);
  cur_view_.Encode(w);
  history_.Encode(w);
  const std::vector<std::uint8_t> gstate = SnapshotGstate();
  w.Bytes(std::span<const std::uint8_t>(gstate));
  w.U32(static_cast<std::uint32_t>(prepared_.size()));
  for (const Aid& aid : prepared_) aid.Encode(w);
  elog_.BeginGeneration({kLogCheckpoint, w.Take()});
}

// Write-behind append of one record. Self-guarding: a replayed record must
// not be re-appended (the checkpoint + surviving suffix already cover it).
void Cohort::LogApply(const vr::EventRecord& rec) {
  if (!elog_.enabled() || log_replay_active_) return;
  wire::Writer w;
  rec.Encode(w);
  elog_.Append(kLogApply, w.Take());
}

// Replays the durable log image: restores the last checkpoint found, then
// re-applies the contiguous suffix of apply entries behind it. Returns false
// when nothing trustworthy survived (no/garbled checkpoint, or the replayed
// view does not include us) — the caller recovers amnesiac as before.
bool Cohort::RecoverFromLog() {
  const std::vector<storage::EventLog::Entry> entries = elog_.Replay();

  // The checkpoint anchors the generation, but InstallSnapshot and replay
  // itself may have opened later generations; only entries of the head
  // generation survive, so the LAST checkpoint wins and everything before
  // it is superseded.
  std::size_t ckpt = entries.size();
  for (std::size_t i = entries.size(); i-- > 0;) {
    if (entries[i].kind == kLogCheckpoint) {
      ckpt = i;
      break;
    }
  }
  if (ckpt == entries.size()) return false;

  wire::Reader r(entries[ckpt].payload);
  ViewId vid = ViewId::Decode(r);
  const std::uint64_t ts = r.U64();
  View view = View::Decode(r);
  vr::History hist = vr::History::Decode(r);
  const std::vector<std::uint8_t> gstate = r.Bytes();
  std::set<Aid> prepared;
  const std::uint32_t prep_count = r.U32();
  for (std::uint32_t i = 0; i < prep_count && r.ok(); ++i) {
    prepared.insert(Aid::Decode(r));
  }
  if (!r.ok() || !r.AtEnd() || hist.Empty() || !view.Contains(self_)) {
    return false;  // garbled checkpoint: trust nothing
  }

  cur_viewid_ = vid;
  cur_view_ = std::move(view);
  history_ = std::move(hist);
  history_.Advance(ts);
  RestoreGstate(gstate);
  prepared_ = std::move(prepared);
  for (const Aid& aid : prepared_) txn_activity_[aid] = host_.Now();
  if (!prepared_.empty()) ArmQueryTimer();
  applied_ts_ = ts;

  // Re-apply the logged suffix in timestamp order. A gap means the segment
  // carrying the missing record never became durable; FIFO completion makes
  // everything after it equally untrustworthy, so stop there.
  log_replay_active_ = true;
  for (std::size_t i = ckpt + 1; i < entries.size(); ++i) {
    if (entries[i].kind != kLogApply) continue;
    wire::Reader er(entries[i].payload);
    vr::EventRecord rec = vr::EventRecord::Decode(er);
    if (!er.ok() || !er.AtEnd()) break;
    if (rec.ts <= applied_ts_) continue;  // duplicate (pre-checkpoint flush)
    if (rec.ts != applied_ts_ + 1) break;
    ApplyRecord(rec);
    applied_ts_ = rec.ts;
    history_.Advance(rec.ts);
    ++stats_.log_records_replayed;
  }
  log_replay_active_ = false;
  return true;
}

// Tells the replayed view's primary where we are so it rewinds its cursors
// for us and restreams the missing tail (or serves a snapshot when the tail
// fell below its GC floor). Re-armed until the first batch arrives — the ack
// itself may be lost.
void Cohort::SendRejoinAck() {
  if (!rejoin_pending_ || status_ != Status::kActive ||
      cur_view_.primary == self_) {
    ClearRejoin();
    return;
  }
  vr::BufferAckMsg ack;
  ack.group = group_;
  ack.viewid = cur_viewid_;
  ack.from = self_;
  ack.ts = applied_ts_;
  ack.rejoin = true;
  ack.rejoin_epoch = rejoin_epoch_;
  SendMsg(cur_view_.primary, ack);
  ++stats_.rejoin_acks_sent;
  host_.timers().Cancel(rejoin_timer_);
  rejoin_timer_ =
      host_.timers().After(options_.buffer.retransmit_interval, [this] {
        rejoin_timer_ = host::kNoTimer;
        SendRejoinAck();
      });
}

void Cohort::ClearRejoin() {
  rejoin_pending_ = false;
  host_.timers().Cancel(rejoin_timer_);
  rejoin_timer_ = host::kNoTimer;
}

}  // namespace vsr::core
