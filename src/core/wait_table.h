// Awaitable request/response correlation.
//
// A coroutine that sent a request co_awaits WaitTable::Await(key, timeout)
// and is resumed either by Fulfill(key, msg) when the matching response
// frame arrives, or by the timeout with nullopt. The awaiter deregisters
// itself on destruction, so destroying a suspended coroutine (node crash,
// transaction teardown) leaves no dangling resume path.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>

#include "host/timer.h"

namespace vsr::core {

template <typename M>
class WaitTable {
 public:
  explicit WaitTable(host::TimerService& sched) : sched_(sched) {}
  WaitTable(const WaitTable&) = delete;
  WaitTable& operator=(const WaitTable&) = delete;

  class Awaiter {
   public:
    Awaiter(WaitTable& table, std::uint64_t key, host::Duration timeout)
        : table_(table), key_(key), timeout_(timeout) {}
    Awaiter(const Awaiter&) = delete;
    Awaiter& operator=(const Awaiter&) = delete;
    ~Awaiter() {
      if (registered_) table_.entries_.erase(key_);
      table_.sched_.Cancel(timer_);
    }

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      handle_ = h;
      table_.entries_[key_] = this;
      registered_ = true;
      timer_ = table_.sched_.After(timeout_, [this] {
        timer_ = host::kNoTimer;
        Fire(std::nullopt);
      });
    }
    std::optional<M> await_resume() noexcept { return std::move(result_); }

   private:
    friend class WaitTable;

    void Fire(std::optional<M> m) {
      if (registered_) {
        table_.entries_.erase(key_);
        registered_ = false;
      }
      table_.sched_.Cancel(timer_);
      timer_ = host::kNoTimer;
      result_ = std::move(m);
      // Resuming may destroy this awaiter's frame; touch nothing after.
      handle_.resume();
    }

    WaitTable& table_;
    std::uint64_t key_;
    host::Duration timeout_;
    bool registered_ = false;
    std::coroutine_handle<> handle_;
    host::TimerId timer_ = host::kNoTimer;
    std::optional<M> result_;
  };

  // One waiter per key at a time; keys must be unique per outstanding
  // request (callers use monotonically increasing correlation ids).
  Awaiter Await(std::uint64_t key, host::Duration timeout) {
    assert(entries_.count(key) == 0);
    return Awaiter(*this, key, timeout);
  }

  // Delivers a response. Returns false if nobody is waiting (late/duplicate
  // responses are dropped by the caller).
  bool Fulfill(std::uint64_t key, M msg) {
    auto it = entries_.find(key);
    if (it == entries_.end()) return false;
    Awaiter* a = it->second;
    a->Fire(std::move(msg));
    return true;
  }

  std::size_t pending() const { return entries_.size(); }

 private:
  friend class Awaiter;
  host::TimerService& sched_;
  std::unordered_map<std::uint64_t, Awaiter*> entries_;
};

}  // namespace vsr::core
