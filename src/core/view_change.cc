// The view change algorithm (Fig. 5, §4).
//
// Manager:  pick viewid <max_viewid.cnt + 1, mymid>, invite everyone, collect
//           normal/crashed acceptances, form the view if the §4 conditions
//           hold, and hand off to the cohort with the largest viewstamp.
// Underling: accept invitations with higher viewids; wait for either an
//           init-view message (becoming primary) or the newview record
//           (becoming a backup); time out into managing.
#include "core/cohort.h"
#include "vr/view_formation.h"

namespace vsr::core {

void Cohort::ArmUnderlingTimer() {
  std::size_t rank = 0;
  for (std::size_t i = 0; i < configuration_.size(); ++i) {
    if (configuration_[i] == self_) rank = i;
  }
  host_.timers().Cancel(underling_timer_);
  underling_timer_ = host_.timers().After(
      options_.underling_timeout +
          static_cast<host::Duration>(rank) * options_.manager_stagger,
      [this] {
        underling_timer_ = host::kNoTimer;
        if (status_ == Status::kUnderling) BecomeViewManager();
      });
}

void Cohort::BecomeViewManager() {
  if (status_ == Status::kCrashed) return;
  if (status_ == Status::kActive || view_change_began_ == 0) {
    view_change_began_ = host_.Now();
    stats_.last_view_change_started = host_.Now();
  }
  Trace("becoming view manager");
  ++stats_.view_changes_started;
  status_ = Status::kViewManager;
  buffer_.Stop();  // no longer operating as a primary
  snap_server_.Stop();
  RevokeLease();  // leaving the active state revokes read service too
  host_.timers().Cancel(underling_timer_);
  underling_timer_ = host::kNoTimer;
  MakeInvitations();
}

void Cohort::MakeInvitations() {
  // "make_invitations creates a new viewid by pairing mymid with a number
  //  greater than max_viewid.cnt and stores it in max_viewid."
  ViewId vid{max_viewid_.counter + 1, self_};
  max_viewid_ = vid;
  accepts_.clear();
  // Record our own response.
  AcceptRecord self;
  self.from = self_;
  // A half-installed snapshot means our gstate is about to be wholesale
  // replaced: for view formation we know nothing (crashed-equivalent), just
  // like DoAccept reports to other managers. Log-recovered state likewise
  // only counts as crashed-with-state (DESIGN.md §10): the write-behind log
  // may miss acknowledgements, so the replayed viewstamp is a lower bound.
  self.crashed = !up_to_date_ || installing_snapshot_ || log_recovered_;
  self.recovered = log_recovered_ && up_to_date_ && !installing_snapshot_;
  self.last_vs = history_.Latest();
  self.was_primary =
      (!self.crashed || self.recovered) && cur_view_.primary == self_;
  self.crash_viewid =
      self.recovered ? recovered_crash_viewid_ : cur_viewid_;
  accepts_[self_] = self;

  vr::InviteMsg invite;
  invite.group = group_;
  invite.new_viewid = vid;
  invite.from = self_;
  for (Mid peer : configuration_) {
    if (peer != self_) SendMsg(peer, invite);
  }

  host_.timers().Cancel(invite_timer_);
  invite_timer_ = host_.timers().After(options_.invite_response_wait,
                                         [this] {
                                           invite_timer_ = host::kNoTimer;
                                           TryFormView();
                                         });
}

void Cohort::DoAccept(ViewId vid, Mid inviter) {
  max_viewid_ = vid;
  vr::AcceptMsg accept;
  accept.group = group_;
  accept.invite_viewid = vid;
  accept.from = self_;
  if (up_to_date_ && !installing_snapshot_ && log_recovered_) {
    // Crashed-with-state (DESIGN.md §10): the replayed viewstamp counts
    // toward forced-event survival (condition 4) but never as a normal
    // acceptance — the write-behind log may trail what we acknowledged.
    accept.crashed = true;
    accept.recovered = true;
    accept.last_vs = history_.Latest();
    accept.was_primary = cur_view_.primary == self_ && !history_.Empty();
    accept.crash_viewid = recovered_crash_viewid_;
  } else if (up_to_date_ && !installing_snapshot_) {
    accept.crashed = false;
    accept.last_vs = history_.Latest();
    accept.was_primary = cur_view_.primary == self_ && !history_.Empty();
  } else {
    // "crash-accept" — state forgotten; report the stable-storage viewid.
    // A cohort mid-snapshot-install is equivalent: its history claims
    // applied_ts_ but its gstate is a torn mix the moment the install lands,
    // so it must not be counted as (or promoted for) an up-to-date state.
    accept.crashed = true;
    accept.crash_viewid = cur_viewid_;
  }
  SendMsg(inviter, accept);
}

void Cohort::OnInvite(const vr::InviteMsg& m) {
  if (m.new_viewid < max_viewid_) return;  // "ignore the msg"
  if (m.new_viewid == max_viewid_) {
    // Duplicate of an invitation we already accepted: re-send the
    // acceptance (the original may have been lost).
    if (status_ == Status::kUnderling) DoAccept(m.new_viewid, m.from);
    return;
  }
  if (status_ == Status::kActive) {
    view_change_began_ = host_.Now();
    stats_.last_view_change_started = host_.Now();
  }
  Trace("accepting invitation %s from %u", m.new_viewid.ToString().c_str(),
        m.from);
  DoAccept(m.new_viewid, m.from);
  status_ = Status::kUnderling;
  host_.timers().Cancel(invite_timer_);
  invite_timer_ = host::kNoTimer;
  buffer_.Stop();
  snap_server_.Stop();
  // Accepting an invitation is the revocation point of DESIGN.md §14: from
  // here on this cohort might be excluded from the next view, so it must
  // stop serving lease reads immediately — crashed-equivalent, like the
  // snapshot sink below.
  RevokeLease();
  ClearRejoin();  // the replayed view is being superseded
  // NOTE: snap_sink_ / installing_snapshot_ deliberately survive the
  // invitation — the half-installed state is exactly what DoAccept must keep
  // reporting as crashed-equivalent until a new view replaces the gstate.
  ++start_view_epoch_;  // cancel any in-flight StartView for an older viewid
  adopting_ = false;
  ArmUnderlingTimer();
}

void Cohort::OnAccept(const vr::AcceptMsg& m) {
  if (status_ != Status::kViewManager) return;
  if (m.invite_viewid != max_viewid_) return;
  AcceptRecord rec;
  rec.from = m.from;
  rec.crashed = m.crashed;
  rec.recovered = m.recovered;
  rec.last_vs = m.last_vs;
  rec.was_primary = m.was_primary;
  rec.crash_viewid = m.crash_viewid;
  accepts_[m.from] = rec;
  if (accepts_.size() == configuration_.size()) {
    // Everyone answered; no need to wait out the timer.
    host_.timers().Cancel(invite_timer_);
    invite_timer_ = host::kNoTimer;
    TryFormView();
  }
}

void Cohort::TryFormView() {
  if (status_ != Status::kViewManager) return;

  // The §4 formation rule lives in vr::TryFormView (pure, unit-tested);
  // here we marshal the collected acceptances and act on the outcome.
  std::vector<vr::Acceptance> responses;
  responses.reserve(accepts_.size());
  for (const auto& [mid, a] : accepts_) {
    vr::Acceptance r;
    r.from = a.from;
    r.crashed = a.crashed;
    r.recovered = a.recovered;
    r.last_vs = a.last_vs;
    r.was_primary = a.was_primary;
    r.crash_viewid = a.crash_viewid;
    responses.push_back(r);
  }
  auto formed = vr::TryFormView(responses, configuration_.size());

  if (!formed) {
    // "If the attempt fails, the cohort attempts another view formation
    //  later."
    ++stats_.view_formation_failures;
    std::size_t normal_count = 0;
    for (const auto& r : responses) normal_count += r.crashed ? 0 : 1;
    Trace("view formation failed (%zu accepts, %zu normal)", accepts_.size(),
          normal_count);
    invite_timer_ = host_.timers().After(options_.view_form_retry, [this] {
      invite_timer_ = host::kNoTimer;
      if (status_ == Status::kViewManager) MakeInvitations();
    });
    return;
  }

  const View v = formed->view;
  ++stats_.views_formed_as_manager;
  Trace("formed view %s %s (condition %d)", max_viewid_.ToString().c_str(),
        v.ToString().c_str(), formed->condition);

  if (v.primary == self_) {
    StartViewAsPrimary(v, max_viewid_);
  } else {
    vr::InitViewMsg init;
    init.group = group_;
    init.viewid = max_viewid_;
    init.view = v;
    init.from = self_;
    SendMsg(v.primary, init);
    status_ = Status::kUnderling;
    ArmUnderlingTimer();
  }
}

void Cohort::OnInitView(const vr::InitViewMsg& m) {
  // await_view: "If an 'init-view' message containing a viewid equal to
  // max_viewid arrives, ... the cohort initializes itself to be a primary."
  if (m.viewid != max_viewid_) return;
  if (m.view.primary != self_ || !up_to_date_) return;
  if (status_ == Status::kActive) return;  // duplicate; already started
  StartViewAsPrimary(m.view, m.viewid);
}

void Cohort::StartViewAsPrimary(View v, ViewId vid) {
  // Duplicate init-view messages (the network may duplicate, and a manager
  // may retransmit) must not start the same view twice: the history already
  // has an entry for `vid` once the first start is underway.
  if (!history_.Empty() && !(history_.Latest().view < vid)) return;
  Trace("starting view %s as primary", vid.ToString().c_str());
  host_.timers().Cancel(underling_timer_);
  host_.timers().Cancel(invite_timer_);
  underling_timer_ = invite_timer_ = host::kNoTimer;
  // Until the new view is durable and its buffer running, this cohort must
  // not process transactions: a unilateral tweak arrives here while still
  // "active" in the old view, and records must never mix buffers.
  buffer_.Stop();
  snap_server_.Stop();
  ClearSnapshotSink();  // a promoted cohort was not mid-install (it accepted
                        // normally), but a stray transfer may linger
  // A cross-group shard pull does not survive the view transition: the new
  // view's buffer is a different stream, so the rebalancer must re-issue.
  ResetShardPull(false);
  status_ = Status::kUnderling;
  ArmUnderlingTimer();  // safety net if the stable write never completes

  // Lazy-apply ablation (§3.3): a backup being promoted must first fold the
  // records it merely stored into its gstate.
  if (!pending_records_.empty()) {
    for (const vr::EventRecord& rec : pending_records_) {
      switch (rec.type) {
        case vr::EventType::kCompletedCall:
          store_.ApplyEffects(rec.sub_aid, rec.effects);
          break;
        case vr::EventType::kCommitted:
          store_.Commit(rec.sub_aid.aid);
          break;
        case vr::EventType::kAborted:
          store_.Abort(rec.sub_aid.aid);
          break;
        case vr::EventType::kAbortedSub:
          store_.AbortSub(rec.sub_aid);
          break;
        case vr::EventType::kShardInstall:
        case vr::EventType::kShardDrop:
          ApplyShardRecord(rec);
          break;
        default:
          break;
      }
    }
    pending_records_.clear();
  }
  batch_stash_.clear();  // stale-view records; never applicable again

  cur_view_ = v;
  cur_viewid_ = vid;
  // "it updates cur_view and cur_viewid, stores zero in timestamp and
  //  appends <cur_viewid, 0> to the history, and writes cur_viewid to
  //  stable storage."
  history_.OpenView(vid);

  const std::uint64_t epoch = ++start_view_epoch_;
  if (options_.write_viewid_durably) {
    wire::Writer w;
    vid.Encode(w);
    stable_.ForceWrite("viewid/" + std::to_string(self_), w.Take(),
                       [this, epoch, v, vid] {
                         if (start_view_epoch_ != epoch) return;
                         if (status_ == Status::kCrashed) return;
                         FinishStartViewAsPrimary(v, vid);
                       },
                       self_);
  } else {
    FinishStartViewAsPrimary(v, vid);
  }
}

void Cohort::FinishStartViewAsPrimary(View v, ViewId vid) {
  buffer_.StartView(vid, v.backups, configuration_.size(), group_, self_,
                    &history_);
  snap_server_.StartView(vid, group_, self_);
  // Per-object commit provenance does not cross views; ts 0 means "at or
  // before this view opened", which every later stable watermark covers.
  RevokeLease();
  ResetCommitStamps(Viewstamp{vid, 0});
  // "it initializes the buffer to contain a single 'newview' event record;
  //  this record contains cur_view, history, and gstate."
  vr::EventRecord newview =
      vr::EventRecord::NewView(v, history_, SnapshotGstate());
  buffer_.Add(std::move(newview));
  up_to_date_ = true;
  // Entering a formed view re-validates our state: it is no longer merely
  // log-replayed, and the log restarts from a checkpoint of it. The viewid
  // is already durable here, so a crash before this checkpoint lands leaves
  // crash_viewid > the replayed view — condition 4 then refuses formation
  // until someone else surfaces this view's state (conservative, safe).
  log_recovered_ = false;
  recovered_crash_viewid_ = ViewId{};
  ClearRejoin();
  LogCheckpoint(history_.Latest().ts);
  EnterActive();
}

void Cohort::AdoptNewView(const vr::EventRecord& newview, ViewId vid,
                          std::uint64_t newview_ts) {
  Trace("adopting view %s as backup", vid.ToString().c_str());
  host_.timers().Cancel(underling_timer_);
  host_.timers().Cancel(invite_timer_);
  underling_timer_ = invite_timer_ = host::kNoTimer;

  cur_view_ = newview.view;
  cur_viewid_ = vid;
  if (vid > max_viewid_) max_viewid_ = vid;
  history_ = newview.history;
  history_.Advance(newview_ts);  // account for the newview record itself
  RestoreGstate(newview.gstate);
  pending_records_.clear();
  batch_stash_.clear();
  // The newview gstate supersedes any snapshot that was mid-transfer.
  ClearSnapshotSink();
  ResetShardPull(false);  // a backup cannot be mid-pull; clear stragglers
  applied_ts_ = newview_ts;
  // The restored gstate's per-object provenance is gone: treat everything
  // as committed at the newview record and wait for a fresh lease grant.
  RevokeLease();
  ResetCommitStamps(Viewstamp{vid, newview_ts});

  // Adopting the newview record re-validates our state; the log restarts
  // from a checkpoint of it. Issued BEFORE the viewid force: completions
  // are FIFO, so whenever the durable viewid says we entered this view, the
  // checkpoint anchoring its log generation is durable too.
  log_recovered_ = false;
  recovered_crash_viewid_ = ViewId{};
  ClearRejoin();
  LogCheckpoint(newview_ts);

  const std::uint64_t epoch = ++start_view_epoch_;
  auto finish = [this, epoch] {
    if (start_view_epoch_ != epoch) return;
    if (status_ == Status::kCrashed) return;
    up_to_date_ = true;
    EnterActive();
    SendBufferAck();
  };
  if (options_.write_viewid_durably) {
    wire::Writer w;
    vid.Encode(w);
    stable_.ForceWrite("viewid/" + std::to_string(self_), w.Take(), finish,
                       self_);
  } else {
    finish();
  }
}

void Cohort::EnterActive() {
  status_ = Status::kActive;
  adopting_ = false;
  ++stats_.view_changes_completed;
  stats_.last_view_change_completed = host_.Now();
  view_change_began_ = 0;
  // NOTE: call_dedup_ deliberately survives view changes — completed-call
  // replies are replicated state (they arrive via newview gstate and
  // completed-call records), so a retransmitted call is re-answered instead
  // of re-executed. Re-execution would let the retry read the original
  // attempt's tentative versions.
  Trace("active in view %s %s", cur_viewid_.ToString().c_str(),
        cur_view_.ToString().c_str());
  if (on_view_started) on_view_started(cur_view_, cur_viewid_);
  if (IsActivePrimary() && on_became_primary) on_became_primary();
}

void Cohort::MaybeUnilateralTweak(const std::vector<Mid>& alive) {
  // §4.1: "an active primary ... can unilaterally exclude the inaccessible
  // backup from the view. Similarly, an active primary can unilaterally add
  // a backup to its view." Only legal while the result still holds a
  // majority of the configuration.
  if (alive.size() < vr::MajorityOf(configuration_.size())) {
    // The view lost its majority; a real view change (or going inactive) is
    // required.
    BecomeViewManager();
    return;
  }
  View v;
  v.primary = self_;
  for (Mid m : alive) {
    if (m != self_) v.backups.push_back(m);
  }
  if (v == cur_view_) return;
  ++stats_.unilateral_tweaks;
  Trace("unilateral view tweak: %s", v.ToString().c_str());
  ViewId vid{max_viewid_.counter + 1, self_};
  max_viewid_ = vid;
  StartViewAsPrimary(v, vid);
}

}  // namespace vsr::core
