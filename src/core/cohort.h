// The cohort: one replica of a module, the unit of the paper's algorithm.
//
// A cohort plays every role the paper describes:
//   * backup        — applies event records streamed from the primary (§3.3)
//   * server primary — executes remote calls and acts as a two-phase-commit
//                      participant (Fig. 3)
//   * client primary — runs transactions and acts as coordinator (Fig. 2)
//   * view manager / underling — the view change algorithm (Fig. 5, §4)
//
// Implementation is split by concern:
//   cohort.cc        — lifecycle, frame dispatch, failure detection, queries
//   view_change.cc   — Fig. 5: invitations, acceptances, view formation
//   txn_server.cc    — Fig. 3: calls, prepare/commit/abort, record apply
//   txn_coord.cc     — Fig. 2: transaction driver, remote calls, 2PC,
//                      the coordinator-server protocol (§3.5)
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/directory.h"
#include "core/options.h"
#include "core/wait_table.h"
#include "net/transport.h"
#include "host/host.h"
#include "host/task.h"
#include "storage/event_log.h"
#include "storage/stable_store.h"
#include "txn/object_store.h"
#include "txn/outcomes.h"
#include "vr/comm_buffer.h"
#include "vr/events.h"
#include "vr/history.h"
#include "vr/messages.h"
#include "vr/snapshot.h"
#include "vr/types.h"

namespace vsr::core {

using vr::Aid;
using vr::GroupId;
using vr::Mid;
using vr::Pset;
using vr::SubAid;
using vr::TxnOutcome;
using vr::View;
using vr::ViewId;
using vr::Viewstamp;

// The cohort status (Fig. 1/4), plus the crashed pseudo-state.
enum class Status : std::uint8_t {
  kActive = 0,
  kViewManager = 1,
  kUnderling = 2,
  kCrashed = 3,
};

const char* StatusName(Status s);

// Thrown inside transaction bodies / procedures when the transaction cannot
// continue (no reply, lock timeout, application failure). The driver turns
// it into an abort.
class TxnError : public std::exception {
 public:
  explicit TxnError(std::string reason) : reason_(std::move(reason)) {}
  const char* what() const noexcept override { return reason_.c_str(); }

 private:
  std::string reason_;
};

struct CallResult {
  bool ok = false;
  std::vector<std::uint8_t> result;
  std::string error;
};

class Cohort;

// Server-side context handed to a registered procedure while it executes at
// the primary (Fig. 3). Read/Write acquire strict-2PL locks (possibly
// suspending); Call makes a nested remote call on behalf of the same
// transaction and subaction.
class ProcContext {
 public:
  ProcContext(Cohort& cohort, SubAid sub_aid,
              std::vector<std::uint8_t> args);
  ProcContext(const ProcContext&) = delete;
  ProcContext& operator=(const ProcContext&) = delete;

  const std::vector<std::uint8_t>& args() const { return args_; }
  std::string ArgsAsString() const {
    return std::string(args_.begin(), args_.end());
  }
  SubAid sub_aid() const { return sub_aid_; }
  Aid aid() const { return sub_aid_.aid; }

  // Reads `uid` under a read lock. nullopt = object does not exist.
  // Throws TxnError on lock timeout.
  host::Task<std::optional<std::string>> Read(std::string uid);

  // Reads `uid` under a WRITE lock — the read-for-update idiom. A procedure
  // that reads a value it will subsequently write must use this: concurrent
  // read-then-upgrade transactions deadlock pairwise (each holds a shared
  // lock the other needs exclusively) and would all time out.
  host::Task<std::optional<std::string>> ReadForUpdate(std::string uid);

  // Writes `uid` under a write lock (creating the object if absent).
  // Throws TxnError on lock timeout.
  host::Task<void> Write(std::string uid, std::string value);

  // Nested remote call to another group (§3; runs under the same subaction,
  // so an aborted attempt discards nested effects too). Throws TxnError if
  // the nested call gets no reply or fails.
  host::Task<std::vector<std::uint8_t>> Call(GroupId group, std::string proc,
                                            std::vector<std::uint8_t> args);

  // The accumulated pset for this call (own completed-call entry is added by
  // the engine after the procedure returns).
  const Pset& pset() const { return pset_; }

  // The group this procedure executes at — lets sharded procs check the
  // placement directory ("am I still the owner of this key?") before
  // serving. Defined out of line (Cohort is incomplete here).
  GroupId group() const;

 private:
  friend class Cohort;
  Cohort& cohort_;
  SubAid sub_aid_;
  std::vector<std::uint8_t> args_;
  Pset pset_;  // entries contributed by nested calls
  std::vector<std::uint32_t> dead_subs_;  // from the incoming call (§3.6)
  // Effects in acquisition order: uid -> mode (write dominates).
  std::vector<std::pair<std::string, vr::LockMode>> effect_order_;
  std::map<std::string, vr::LockMode> effect_mode_;
  std::vector<GroupId> nested_groups_;

  void NoteEffect(const std::string& uid, vr::LockMode mode);
};

using ProcFn =
    std::function<host::Task<std::vector<std::uint8_t>>(ProcContext&)>;

// Client-side transaction handle (Fig. 2): issued to a transaction body
// running at the client group's primary.
class TxnHandle {
 public:
  Aid aid() const { return aid_; }
  bool doomed() const { return doomed_; }
  const Pset& pset() const { return pset_; }
  const std::string& doom_reason() const { return doom_reason_; }

  // Makes a remote call; merges the reply's pset. Throws TxnError when the
  // transaction is doomed (no-reply, failure) — with nested_call_retry the
  // attempt is first retried as a fresh subaction (§3.6).
  host::Task<std::vector<std::uint8_t>> Call(GroupId group, std::string proc,
                                            std::vector<std::uint8_t> args);
  host::Task<std::vector<std::uint8_t>> Call(GroupId group, std::string proc,
                                            const std::string& args) {
    return Call(group, std::move(proc),
                std::vector<std::uint8_t>(args.begin(), args.end()));
  }

 private:
  friend class Cohort;
  TxnHandle(Cohort& cohort, Aid aid) : cohort_(&cohort), aid_(aid) {}
  Cohort* cohort_;
  Aid aid_;
  Pset pset_;
  // Every group an attempt was sent to — abort notifications must reach
  // groups whose replies never arrived (they may hold locks).
  std::vector<GroupId> touched_groups_;
  // Subactions aborted by retries (§3.6); travels in every later call.
  std::vector<std::uint32_t> dead_subs_;
  bool doomed_ = false;
  std::string doom_reason_;
  std::uint32_t next_sub_ = 1;  // subaction numbers for retried attempts
};

// Transaction body: runs at the client primary, returns true to request
// commit, false (or throws TxnError) to abort.
using TxnBody = std::function<host::Task<bool>(TxnHandle&)>;

// Aggregate counters consumed by tests and the bench harness.
struct CohortStats {
  std::uint64_t calls_executed = 0;
  std::uint64_t calls_rejected_wrong_view = 0;
  std::uint64_t duplicate_calls_suppressed = 0;
  // Delayed transmissions of subactions the caller already declared dead,
  // refused before execution (§3.6 admission check).
  std::uint64_t dead_sub_calls_refused = 0;
  std::uint64_t prepares_ok = 0;
  std::uint64_t prepares_refused = 0;
  // Retransmitted prepares for txns already prepared/committed here, answered
  // idempotently without re-running the compatibility check or the force.
  std::uint64_t duplicate_prepares_answered = 0;
  std::uint64_t commits_applied = 0;
  std::uint64_t aborts_applied = 0;
  std::uint64_t txns_committed = 0;  // as coordinator
  std::uint64_t txns_aborted = 0;    // as coordinator
  std::uint64_t txns_unknown = 0;    // coordinator lost its group mid-commit
  // Fused commit path (DESIGN.md §13). As coordinator: transactions whose
  // outcome was reported at committing-record buffer time, with the decision
  // force and commit fan-out overlapped in background, and how many of those
  // background forces were abandoned (view change — the decision then
  // resolves through the replicated record or §3.4 queries, never silently).
  std::uint64_t fused_commits = 0;
  std::uint64_t fused_decision_forces_failed = 0;
  // As participant: commit decisions that arrived while a (re)transmitted
  // prepare was still forcing, stashed and applied after it resolved instead
  // of racing it, and prepares answered "prepared" because the post-force
  // re-check found the commit had already landed.
  std::uint64_t commits_stashed_during_prepare = 0;
  std::uint64_t prepares_overtaken_by_commit = 0;
  std::uint64_t subaction_retries = 0;
  std::uint64_t view_changes_started = 0;   // became manager
  std::uint64_t view_changes_completed = 0; // entered a new active view
  std::uint64_t views_formed_as_manager = 0;
  std::uint64_t view_formation_failures = 0;
  std::uint64_t unilateral_tweaks = 0;
  std::uint64_t queries_sent = 0;
  std::uint64_t queries_resolved = 0;
  std::uint64_t records_applied_as_backup = 0;
  // Windowed backup replication: out-of-order batches stashed until the hole
  // fills, and gap requests (nacks) sent to the primary asking for it.
  std::uint64_t records_stashed_out_of_order = 0;
  std::uint64_t records_applied_from_stash = 0;
  std::uint64_t gap_requests_sent = 0;
  // Snapshot state transfer (DESIGN.md §9): whole gstate snapshots installed
  // after falling behind the primary's GC watermark, and assembled payloads
  // rejected before install (malformed — install is all-or-nothing).
  std::uint64_t snapshots_installed = 0;
  std::uint64_t snapshot_installs_rejected = 0;
  // Partial installs dropped because the chunk stream went idle (the serving
  // primary died or stood down): the payload is discarded wholesale and the
  // cohort resumes answering view changes with its intact pre-transfer state.
  std::uint64_t snapshot_installs_abandoned = 0;
  // Acks absorbed into an already-scheduled coalesced ack instead of being
  // sent as their own frame (options.ack_coalesce_delay > 0).
  std::uint64_t acks_coalesced = 0;
  // Durable event log recovery (DESIGN.md §10): successful replays of the
  // local log at Recover() time, records re-applied from it, and rejoin
  // acks sent to resume the current view at the replayed viewstamp.
  std::uint64_t log_recoveries = 0;
  std::uint64_t log_records_replayed = 0;
  std::uint64_t rejoin_acks_sent = 0;
  // Simulated-time instants of the last view-change start/finish, for
  // latency measurements (bench E4).
  host::Time last_view_change_started = 0;
  host::Time last_view_change_completed = 0;
  // Shard rebalancing (DESIGN.md §11): pull requests served as source
  // primary, images installed (as primary or replicated to backups), and
  // ranges garbage-collected after a committed move.
  std::uint64_t shard_pulls_served = 0;
  std::uint64_t shard_pulls_completed = 0;
  std::uint64_t shard_images_installed = 0;
  std::uint64_t shard_ranges_dropped = 0;
  // Backup read leases (DESIGN.md §14): grants taken as a backup, reads
  // served (split out those served by a leased backup rather than the
  // primary), and reads bounced back to the primary (no/stale lease, the
  // object or the client's horizon beyond the stable watermark).
  std::uint64_t lease_grants_received = 0;
  std::uint64_t reads_served = 0;
  std::uint64_t backup_reads_served = 0;
  std::uint64_t reads_refused = 0;
  // Commit decisions that rode a sibling decision's CommitMsg to the same
  // destination instead of a dedicated frame per decision.
  std::uint64_t decision_piggybacked = 0;
  // §3.7: transactions whose participants were all read-only, where the
  // coordinator skipped the committing/done records entirely (each
  // participant already committed at prepare; nobody holds locks or will
  // ever query the decision).
  std::uint64_t read_only_commits_skipped = 0;
  // §3.4 queries resolved by a sibling participant's outcome table while
  // the coordinator group was unreachable (§3.6 pset piggyback).
  std::uint64_t sibling_query_resolutions = 0;
};

class Cohort : public net::FrameHandler {
 public:
  Cohort(host::Host& hst, net::Transport& network,
         Directory& directory, storage::StableStore& stable, GroupId group,
         Mid self, std::vector<Mid> configuration, CohortOptions options);
  ~Cohort() override;

  // -- Lifecycle ---------------------------------------------------------

  // Boots a freshly created cohort (empty, up-to-date state). Cohorts start
  // as underlings; the staggered underling timeout elects the first manager.
  void Start();

  // Fail-stop crash: all volatile state is lost; only the stable store
  // (configuration identity + cur_viewid) survives.
  void Crash();

  // Recovery from a crash. Without a durable event log (or when its replay
  // yields nothing trustworthy) gstate is gone (up_to_date = false) and the
  // cohort immediately initiates a view change (§4). With a replayable log
  // (options.event_log.enabled, DESIGN.md §10) the cohort restores the last
  // checkpoint plus the contiguous logged suffix and rejoins as
  // up-to-date-to-viewstamp-X: it answers invitations as crashed-with-state
  // (view_formation.h condition 4) and asks the current primary for just
  // the missing tail via a rejoin ack.
  void Recover();

  // Recovery after losing stable storage contents too (disk replaced):
  // erases the durable log first, then recovers amnesiac. The durable
  // viewid is deliberately kept when present — §4.2's minimum stable state
  // — so only explicit log state is lost.
  void RecoverDiskless();

  // -- Application API ---------------------------------------------------

  void RegisterProc(std::string name, ProcFn fn);

  // Runs a transaction at this cohort (must be the active primary of the
  // client group; otherwise completes immediately with kAborted).
  // `on_done` receives the outcome: kCommitted, kAborted, or kUnknown when
  // the coordinator could not learn the decision's fate (view change during
  // phase two of its own group).
  void SpawnTransaction(TxnBody body,
                        std::function<void(TxnOutcome)> on_done = nullptr);

  // §3.5: begin/commit a transaction on behalf of an unreplicated client
  // (the coordinator-server role). Exposed as messages (kBeginTxn etc.) and
  // used by client::UnreplicatedClient.

  // -- Introspection -----------------------------------------------------

  Mid mid() const { return self_; }
  GroupId group() const { return group_; }
  Status status() const { return status_; }
  bool IsActivePrimary() const {
    return status_ == Status::kActive && cur_view_.primary == self_;
  }
  bool IsActiveBackup() const {
    return status_ == Status::kActive && cur_view_.primary != self_;
  }
  ViewId cur_viewid() const { return cur_viewid_; }
  const View& cur_view() const { return cur_view_; }
  ViewId max_viewid() const { return max_viewid_; }
  bool up_to_date() const { return up_to_date_; }
  const vr::History& history() const { return history_; }
  const txn::ObjectStore& objects() const { return store_; }
  const txn::OutcomeTable& outcomes() const { return outcomes_; }
  const std::vector<Mid>& configuration() const { return configuration_; }
  const CohortStats& stats() const { return stats_; }
  const vr::CommBuffer& buffer() const { return buffer_; }
  const vr::SnapshotServer& snapshot_server() const { return snap_server_; }
  // Highest contiguously applied record ts (as a backup of the current view).
  std::uint64_t applied_ts() const { return applied_ts_; }
  // A snapshot install is in flight: gstate is about to be replaced, so view
  // changes treat this cohort as crashed-equivalent (DoAccept).
  bool installing_snapshot() const { return installing_snapshot_; }
  // State was replayed from the durable event log and no view transition has
  // re-validated it yet: invitations are answered as crashed-with-state
  // (DESIGN.md §10).
  bool log_recovered() const { return log_recovered_; }
  const storage::EventLog& event_log() const { return elog_; }
  const CohortOptions& options() const { return options_; }
  CohortOptions& mutable_options() { return options_; }

  // -- Shard rebalancing (shard.cc, DESIGN.md §11) -----------------------

  // Pulls the committed image of [lo, hi) from `from_group`'s primary and
  // installs it here. Must be the active primary of this group; `done(ok)`
  // fires once the kShardInstall record is forced to a sub-majority of
  // backups (ok=false if this cohort lost the primary role or the pull was
  // superseded). Idempotent: re-pulling the same range overwrites the same
  // base versions — the rebalancer's settle pass relies on this.
  void PullShard(GroupId from_group, std::string lo, std::string hi,
                 std::function<void(bool)> done);

  // Old-owner garbage collection after CommitMove: replicates a kShardDrop
  // record and erases the committed objects in [lo, hi).
  void DropShard(std::string lo, std::string hi);

  bool shard_pull_active() const { return shard_pull_ != nullptr; }

  // Drain probe for the rebalance handoff window: true iff no in-flight
  // transaction still touches [lo, hi) here.
  bool ShardRangeQuiescent(const std::string& lo,
                           const std::string& hi) const {
    return store_.RangeQuiescent(lo, hi);
  }

  // Hooks for tests / harnesses.
  std::function<void(const View&, ViewId)> on_view_started;
  std::function<void()> on_became_primary;

  // net::FrameHandler
  void OnFrame(const net::Frame& frame) override;

 private:
  friend class ProcContext;
  friend class TxnHandle;

  // ---- generic helpers (cohort.cc) ----
  template <typename M>
  void SendMsg(Mid to, const M& m) {
    net_.Send(self_, to, static_cast<std::uint16_t>(M::kType),
              vr::EncodeMsg(m));
  }
  void Trace(const char* fmt, ...)
#if defined(__GNUC__)
      __attribute__((format(printf, 2, 3)))
#endif
      ;
  std::uint64_t NextCorrId() { return next_corr_id_++; }
  std::uint64_t NextCallSeq() {
    return (static_cast<std::uint64_t>(self_) << 32) | next_call_seq_++;
  }
  void NoteAlive(Mid peer);
  void CheckLiveness();
  void SendPings();
  void AnswerQuery(const vr::QueryMsg& m);
  TxnOutcome LocalOutcome(Aid aid) const;
  void ResetVolatileState();

  // ---- view change (view_change.cc) ----
  void BecomeViewManager();
  void MakeInvitations();
  void DoAccept(ViewId vid, Mid inviter);
  void OnInvite(const vr::InviteMsg& m);
  void OnAccept(const vr::AcceptMsg& m);
  void OnInitView(const vr::InitViewMsg& m);
  void TryFormView();
  void StartViewAsPrimary(View v, ViewId vid);
  void FinishStartViewAsPrimary(View v, ViewId vid);
  void AdoptNewView(const vr::EventRecord& newview, ViewId vid,
                    std::uint64_t newview_ts);
  void ArmUnderlingTimer();
  void EnterActive();
  void MaybeUnilateralTweak(const std::vector<Mid>& alive);

  // ---- durable event log + crash recovery (recovery.cc, DESIGN.md §10) ----
  // Opens a fresh log generation anchored by a checkpoint of the current
  // state (view, history, gstate, prepared set) at applied ts `ts`. Called
  // at every full-state transition: view entry (primary and backup),
  // snapshot install, and post-replay.
  void LogCheckpoint(std::uint64_t ts);
  // Write-behind append of one applied/added record (group-committed).
  void LogApply(const vr::EventRecord& rec);
  // Replays the durable log: restores the last checkpoint plus the
  // contiguous apply suffix. False = nothing trustworthy (recover amnesiac).
  bool RecoverFromLog();
  // Tells the current primary we rejoined at applied_ts_ (re-armed until the
  // first batch from it arrives).
  void SendRejoinAck();
  void ClearRejoin();

  // ---- backup record application (txn_server.cc) ----
  void OnBufferBatch(const vr::BufferBatchMsg& m);
  void ApplyRecord(const vr::EventRecord& rec);
  void DrainBatchStash();
  void SendBufferAck(bool gap = false, std::uint64_t gap_hi = 0,
                     bool codec_reset = false);

  // ---- snapshot state transfer (txn_server.cc, DESIGN.md §9) ----
  // Primary side: serialize current gstate + history + prepared-txn
  // metadata and start (or refresh) a chunked transfer to `backup`.
  void ServeSnapshot(Mid backup);
  std::shared_ptr<const std::vector<std::uint8_t>> BuildSnapshotPayload()
      const;
  void OnSnapshotAck(const vr::SnapshotAckMsg& m);
  // Backup side: chunk assembly and the atomic install.
  void OnSnapshotChunk(const vr::SnapshotChunkMsg& m);
  bool InstallSnapshot(Viewstamp vs,
                       const std::vector<std::uint8_t>& payload);
  // Discards any partial transfer and clears crashed-equivalence (install
  // done, view transition, or the idle-abandon timer below fired).
  void ClearSnapshotSink();
  void AbandonSnapshotInstall();

  // ---- shard rebalancing (shard.cc, DESIGN.md §11) ----
  // Source side: a foreign primary asked for a range image.
  void OnShardPull(const vr::ShardPullMsg& m);
  // Puller side: chunks of a cross-group transfer (m.group != group_).
  void OnShardChunk(const vr::SnapshotChunkMsg& m);
  // Assembled payload verified: install + replicate + force, then done(ok).
  host::Task<void> FinishShardInstall(std::uint64_t pull_id,
                                     std::vector<std::uint8_t> payload);
  // (Re)sends the pull request to the source group's current primary.
  host::Task<void> SendShardPull();
  // Applies a kShardInstall / kShardDrop record to the store (backup path
  // and lazy-apply promotion share it with the primary).
  void ApplyShardRecord(const vr::EventRecord& rec);
  void ResetShardPull(bool ok);

  // ---- server role (txn_server.cc) ----
  void OnCall(const vr::CallMsg& m);
  host::Task<void> RunCall(vr::CallMsg m);
  void OnPrepare(const vr::PrepareMsg& m);
  host::Task<void> RunPrepare(vr::PrepareMsg m);
  void OnCommit(const vr::CommitMsg& m);
  // Stash-or-run one decision (the CommitMsg body or one piggybacked extra):
  // defers behind an in-flight prepare force for the same aid, else spawns
  // RunCommit.
  void DispatchCommit(const vr::CommitMsg& m);
  host::Task<void> RunCommit(vr::CommitMsg m);
  // Applies a commit decision stashed while a prepare for `aid` was in
  // flight (fused pipeline, DESIGN.md §13).
  void DrainPendingCommit(Aid aid);
  void OnAbort(const vr::AbortMsg& m);
  void OnAbortSub(const vr::AbortSubMsg& m);
  void LocalAbortTxn(Aid aid);
  void ArmQueryTimer();
  void QueryBlockedTxns();
  host::Task<void> ResolveBlockedTxn(Aid aid);
  // Installs the commit and returns the uids whose base version changed;
  // the caller stamps them (NoteInstalled) with the committed record's
  // viewstamp once it exists.
  std::vector<std::string> CommitLocally(Aid aid);
  std::vector<std::uint8_t> SnapshotGstate() const;
  void RestoreGstate(const std::vector<std::uint8_t>& bytes);
  // Awaitable force-to (false = abandoned / not primary).
  host::Task<bool> Force(Viewstamp vs);
  // Awaitable strict-2PL lock acquisition (false = timeout/abort).
  host::Task<bool> AcquireLock(std::string uid, Aid aid, vr::LockMode mode);
  // Adds a record to the buffer and mirrors its outcome bookkeeping (the
  // primary-side counterpart of ApplyRecord).
  Viewstamp AddRecord(vr::EventRecord rec);

  // ---- backup read leases (txn_server.cc, DESIGN.md §14) ----
  // Primary side: the buffer's ack path noticed a lease (re)grant is due
  // for `backup` — send one pinned to the current view and stable ts.
  void SendLeaseGrant(Mid backup, std::uint64_t stable_ts);
  // Backup side: take a grant from the current view's primary.
  void OnLeaseGrant(const vr::LeaseGrantMsg& m);
  // Drop any held lease crashed-equivalent (view transitions, snapshot
  // installs, crash): a revoked backup bounces reads until re-granted.
  void RevokeLease();
  // The viewstamp that committed `uid`'s current base version here, as far
  // as this cohort tracked it (the floor covers wholesale restores).
  Viewstamp EffectiveCommitVs(const std::string& uid) const;
  // Stamps freshly installed base versions with the committing record's
  // viewstamp (admission bound for backup reads).
  void NoteInstalled(const std::vector<std::string>& uids, Viewstamp vs);
  // Floor-bump for wholesale state replacement (newview adoption, snapshot
  // or shard installs): every object is conservatively treated as committed
  // at `vs`.
  void ResetCommitStamps(Viewstamp vs);
  void OnBackupRead(const vr::BackupReadMsg& m);
  host::Task<void> RunBackupRead(vr::BackupReadMsg m);

  // ---- client / coordinator role (txn_coord.cc) ----
  host::Task<void> TxnDriver(Aid aid, TxnBody body,
                            std::function<void(TxnOutcome)> on_done);
  host::Task<std::vector<std::uint8_t>> ClientCall(TxnHandle& h, GroupId group,
                                                  std::string proc,
                                                  std::vector<std::uint8_t> args);
  host::Task<std::vector<std::uint8_t>> NestedCall(ProcContext& ctx,
                                                  GroupId group,
                                                  std::string proc,
                                                  std::vector<std::uint8_t> args);
  // One call attempt against (possibly changing) primaries. Does NOT retry
  // across no-reply — that is subaction policy. Returns nullopt on no reply.
  host::Task<std::optional<vr::ReplyMsg>> CallAttempt(
      SubAid sub_aid, GroupId group, std::string proc,
      std::vector<std::uint8_t> args, std::vector<std::uint32_t> dead_subs);
  host::Task<TxnOutcome> RunTwoPhaseCommit(Aid aid, Pset pset);
  struct PrepareJoin;
  host::Task<void> PrepareOne(Aid aid, Pset pset, GroupId g,
                             std::shared_ptr<PrepareJoin> join);
  // Phase two. `decision_vs` is the committing record's viewstamp; `fused`
  // makes the decision force run here, overlapped with the commit fan-out,
  // instead of ahead of the client reply (DESIGN.md §13).
  host::Task<void> FinishCommitPhase(Aid aid, std::vector<GroupId> plist,
                                    Viewstamp decision_vs, bool fused);
  struct CommitJoin;
  host::Task<void> CommitOne(Aid aid, GroupId g, Viewstamp decision_vs,
                            bool fused, std::shared_ptr<CommitJoin> join);
  // Decision piggybacking: first-attempt commit decisions for the same
  // destination primary coalesce into one CommitMsg (body + extras) behind
  // a short timer instead of a dedicated frame per decision. Retries bypass
  // the queue.
  void EnqueueDecision(Mid dest, GroupId g, Aid aid, Viewstamp decision_vs,
                       bool fused);
  void FlushDecisions(Mid dest);
  host::Task<void> AbortEverywhere(Aid aid, Pset pset,
                                  std::vector<GroupId> extra_groups = {});
  void OnBeginTxn(const vr::BeginTxnMsg& m);
  void OnCommitReq(const vr::CommitReqMsg& m);
  host::Task<void> RunCommitReq(vr::CommitReqMsg m);
  void OnAbortReq(const vr::AbortReqMsg& m);

  // Cache of other groups' primaries (§3: "It stores this information in a
  // local cache").
  struct CacheEntry {
    ViewId viewid;
    View view;
  };
  std::optional<CacheEntry> CacheGet(GroupId g) const;
  void CacheUpdate(GroupId g, ViewId vid, const View& v);
  void CacheInvalidate(GroupId g);
  host::Task<std::optional<CacheEntry>> CacheLookup(GroupId g);
  void OnProbe(const vr::ProbeMsg& m);
  void OnProbeReply(const vr::ProbeReplyMsg& m);

  // ---- wiring ----
  host::Host& host_;
  net::Transport& net_;
  Directory& directory_;
  storage::StableStore& stable_;
  CohortOptions options_;
  // When options_.call_service_time > 0: the time this cohort's serial CPU
  // becomes free again (calls queue behind it, see RunCall).
  host::Time cpu_free_ = 0;

  // ---- identity (stable, §4.2) ----
  const GroupId group_;
  const Mid self_;
  const std::vector<Mid> configuration_;

  // ---- cohort state (Fig. 4) ----
  Status status_ = Status::kCrashed;
  bool up_to_date_ = true;
  ViewId cur_viewid_;
  View cur_view_;
  ViewId max_viewid_;
  vr::History history_;
  txn::ObjectStore store_;
  txn::OutcomeTable outcomes_;
  vr::CommBuffer buffer_;
  // Snapshot transfers to laggard backups (primary side, DESIGN.md §9).
  vr::SnapshotServer snap_server_;

  // ---- durable event log (DESIGN.md §10) ----
  storage::EventLog elog_;
  // State came from a log replay and counts only as crashed-with-state in
  // view formation until a view transition re-validates it; the ceiling is
  // the stable viewid at recovery time (>= the replayed view when the final
  // checkpoint never became durable).
  bool log_recovered_ = false;
  ViewId recovered_crash_viewid_;
  // A rejoin ack to the replayed view's primary is outstanding.
  bool rejoin_pending_ = false;
  // Recovery-episode tag carried in rejoin acks so the primary services
  // each episode exactly once (duplicates are retransmitted until the first
  // batch arrives and may arrive late). Derived from sim time at recovery —
  // crash wipes memory, but time is monotonic across crashes, so a later
  // recovery always tags a strictly larger epoch.
  std::uint64_t rejoin_epoch_ = 0;
  host::TimerId rejoin_timer_ = host::kNoTimer;
  // Replay in progress: ApplyRecord must not re-append to the log.
  bool log_replay_active_ = false;

  // ---- view change bookkeeping ----
  struct AcceptRecord {
    Mid from;
    bool crashed;
    bool recovered;
    Viewstamp last_vs;
    bool was_primary;
    ViewId crash_viewid;
  };
  std::map<Mid, AcceptRecord> accepts_;  // responses to our invitation
  host::TimerId invite_timer_ = host::kNoTimer;
  host::TimerId underling_timer_ = host::kNoTimer;
  std::uint64_t start_view_epoch_ = 0;  // cancels stale FinishStartView
  host::Time view_change_began_ = 0;

  // ---- backup replication state ----
  std::uint64_t applied_ts_ = 0;  // highest contiguously applied record ts
  bool adopting_ = false;         // newview adoption in flight (stable write)
  // Lazy-apply mode (§3.3 trade-off): records held here until promotion.
  std::vector<vr::EventRecord> pending_records_;
  // Out-of-order records from pipelined batches, keyed by ts, held until the
  // hole before them fills (bounded; overflow is re-fetched via gap request).
  static constexpr std::size_t kMaxBatchStash = 4096;
  std::map<std::uint64_t, vr::EventRecord> batch_stash_;
  // Stateful decompressor for the primary's batch stream (DESIGN.md §8);
  // counterpart of the per-backup BatchEncoder in the primary's CommBuffer.
  vr::BatchDecoder batch_decoder_;
  // Ack coalescing (options.ack_coalesce_delay): armed while a deferred
  // cumulative ack is pending; the send reads applied_ts_ at fire time.
  host::TimerId ack_timer_ = host::kNoTimer;
  // Incoming snapshot assembly (backup side, DESIGN.md §9). While a transfer
  // is in flight (`installing_snapshot_`) this cohort's gstate is about to
  // be wholesale-replaced, so it answers view-change invitations as
  // crashed-equivalent; the flag clears on install or view transition.
  vr::SnapshotSink snap_sink_;
  bool installing_snapshot_ = false;
  // Armed on every accepted chunk; if the stream goes idle for
  // options.snapshot.install_abandon_timeout the partial payload is dropped
  // (all-or-nothing) so a dead transfer cannot leave this cohort
  // crashed-equivalent forever — that would wedge view formation for good
  // when the serving primary itself is the cohort that crashed.
  host::TimerId snap_abandon_timer_ = host::kNoTimer;

  // ---- shard rebalancing (shard.cc, DESIGN.md §11) ----
  // One outstanding cross-group pull at a time (the rebalancer moves one
  // range at a time). The sink assembles chunks exactly like a snapshot
  // transfer, but the payload is a range image, not a whole gstate.
  struct ShardPull {
    std::uint64_t id = 0;  // guards stale timer/coroutine completions
    GroupId from_group = 0;
    std::string lo;
    std::string hi;
    std::function<void(bool)> done;
    vr::SnapshotSink sink;
    host::TimerId retry_timer = host::kNoTimer;
  };
  std::unique_ptr<ShardPull> shard_pull_;
  std::uint64_t next_shard_pull_id_ = 1;

  // ---- failure detection ----
  std::map<Mid, host::Time> last_heard_;
  host::TimerId ping_timer_ = host::kNoTimer;
  host::TimerId fd_timer_ = host::kNoTimer;
  // Armed when a lower-priority cohort defers a needed view change to its
  // higher-priority peers (§4.1 ordering policy).
  host::TimerId deferred_vc_timer_ = host::kNoTimer;

  // ---- server role ----
  std::map<std::string, ProcFn> procs_;
  struct DedupEntry {
    bool completed = false;
    Aid aid;             // for pruning when the transaction ends
    vr::ReplyMsg reply;  // valid when completed
    // While the call is running, track the newest retransmission so the
    // eventual reply answers a correlation id the client still waits on
    // (a lock wait can outlast the client's per-transmission timeout).
    std::uint64_t latest_call_id = 0;
    Mid latest_reply_to = 0;
  };
  // Keyed by call_seq. Completed entries are REPLICATED state: they travel
  // in completed-call records and the gstate snapshot, so any primary can
  // re-answer a retransmitted call instead of re-executing it (§3.1's
  // "connection information"). Pruned when the transaction ends.
  std::map<std::uint64_t, DedupEntry> call_dedup_;
  void PruneDedup(Aid aid);
  // Subactions known dead (§3.6): a dead attempt still running when its
  // abort arrives must not record its effects at completion.
  std::map<Aid, std::set<std::uint32_t>> dead_subs_by_txn_;
  std::set<Aid> prepared_;                          // blocked-txn query targets
  std::set<Aid> preparing_;                         // prepare force in flight
  std::set<Aid> querying_;                          // resolution in flight
  // Sibling participant groups from the prepare's pset (§3.6): fallback
  // query targets when the coordinator group is unreachable — any sibling
  // that applied the decision answers authoritatively from its outcome
  // table. Volatile, like prepared_; carried in the snapshot payload.
  std::map<Aid, std::vector<GroupId>> prepared_siblings_;
  // Fused pipeline (DESIGN.md §13): a commit decision that arrives while a
  // (re)transmitted prepare for the same transaction is mid-force is stashed
  // here and applied when the prepare resolves — sequencing the two instead
  // of letting the commit race the prepare's post-force bookkeeping.
  std::map<Aid, vr::CommitMsg> pending_commits_;
  // Last time each lock-holding transaction showed activity here; feeds the
  // idle-transaction janitor (§3.4 queries).
  std::map<Aid, host::Time> txn_activity_;
  host::TimerId query_timer_ = host::kNoTimer;

  // ---- backup read leases (DESIGN.md §14) ----
  // Backup side: the lease currently held, valid only while it pins the
  // current view. lease_stable_ts_ is the primary's stable watermark at
  // grant time — reads are admitted against min(applied_ts_, lease stable).
  ViewId lease_viewid_;
  std::uint64_t lease_seq_ = 0;
  host::Time lease_expires_at_ = 0;
  std::uint64_t lease_stable_ts_ = 0;
  // Primary side: monotone grant sequence (orders reordered grant frames).
  std::uint64_t lease_grant_seq_ = 0;
  // Commit stamps for read admission: uid -> viewstamp of the committed
  // record that installed its current base version; objects not in the map
  // (restored wholesale from a newview gstate / snapshot / shard image) are
  // covered by the floor. Cleared at every view transition.
  std::map<std::string, Viewstamp> object_commit_vs_;
  Viewstamp commit_vs_floor_;

  // ---- coordinator-server role (§3.5) ----
  // Externally driven transactions (unreplicated clients), with begin time
  // for the unilateral-abort sweep.
  std::map<Aid, host::Time> external_txns_;
  std::set<Aid> committing_external_;  // commit-req in flight (dedup)
  host::Task<void> RunAbortReq(vr::AbortReqMsg m);
  void SweepExternalTxns();

  // ---- client role ----
  std::uint64_t next_txn_seq_ = 1;
  std::uint64_t next_corr_id_ = 1;
  std::uint32_t next_call_seq_ = 1;
  std::set<Aid> active_txns_;  // transactions this cohort coordinates
  std::map<GroupId, CacheEntry> cache_;
  WaitTable<vr::ReplyMsg> reply_waiters_;
  WaitTable<vr::PrepareReplyMsg> prepare_waiters_;
  WaitTable<vr::CommitDoneMsg> commit_waiters_;
  WaitTable<vr::QueryReplyMsg> query_waiters_;
  WaitTable<vr::ProbeReplyMsg> probe_waiters_;
  // Force and lock completions are routed through a wait table rather than
  // raw coroutine handles so that coroutine teardown (crash) can never leave
  // the buffer or lock manager holding a dangling resume path.
  WaitTable<bool> bool_waiters_;
  // Correlation routing: aid-keyed replies (prepare/commit/query) map to the
  // waiting corr id.
  std::map<std::pair<Aid, GroupId>, std::uint64_t> prepare_corr_;
  std::map<std::pair<Aid, GroupId>, std::uint64_t> commit_corr_;
  std::map<Aid, std::uint64_t> query_corr_;
  std::map<GroupId, std::vector<std::uint64_t>> probe_corr_;
  // Decision piggybacking (as coordinator): first-attempt commit decisions
  // queued per destination primary, flushed as one CommitMsg (body +
  // extras) when the coalesce timer fires.
  struct QueuedDecision {
    GroupId group = 0;
    Aid aid;
    Viewstamp decision_vs;
    bool fused = false;
  };
  std::map<Mid, std::vector<QueuedDecision>> decision_queue_;
  std::map<Mid, host::TimerId> decision_timers_;

  CohortStats stats_;

  // Declared last: destroying the registry tears down suspended coroutines
  // whose awaiter destructors deregister from the tables above.
  host::TaskRegistry tasks_;
};

}  // namespace vsr::core
