// The client / coordinator role (Fig. 2): transactions, remote calls with
// subaction retry (§3.6), two-phase commit, primary-location caching, and
// the coordinator-server protocol for unreplicated clients (§3.5).
#include <memory>

#include "core/cohort.h"

namespace vsr::core {

// ---------------------------------------------------------------------------
// Application entry points
// ---------------------------------------------------------------------------

void Cohort::RegisterProc(std::string name, ProcFn fn) {
  procs_[std::move(name)] = std::move(fn);
}

void Cohort::SpawnTransaction(TxnBody body,
                              std::function<void(TxnOutcome)> on_done) {
  if (!IsActivePrimary()) {
    if (on_done) on_done(TxnOutcome::kAborted);
    return;
  }
  // "Create the transaction aid ... (We make the aid unique across view
  //  changes by including mygroupid and cur_viewid in it.)"
  Aid aid;
  aid.coordinator_group = group_;
  aid.view = cur_viewid_;
  aid.seq = next_txn_seq_++;
  tasks_.Spawn(TxnDriver(aid, std::move(body), std::move(on_done)));
}

host::Task<void> Cohort::TxnDriver(Aid aid, TxnBody body,
                                  std::function<void(TxnOutcome)> on_done) {
  TxnHandle h(*this, aid);
  active_txns_.insert(aid);
  bool want_commit = false;
  try {
    want_commit = co_await body(h);
  } catch (const std::exception&) {
    want_commit = false;  // TxnError (doomed) or application failure
  }

  TxnOutcome outcome;
  if (!want_commit || h.doomed_) {
    co_await AbortEverywhere(aid, h.pset_, h.touched_groups_);
    outcome = TxnOutcome::kAborted;
    ++stats_.txns_aborted;
  } else {
    outcome = co_await RunTwoPhaseCommit(aid, h.pset_);
    switch (outcome) {
      case TxnOutcome::kCommitted:
        ++stats_.txns_committed;
        break;
      case TxnOutcome::kAborted:
        ++stats_.txns_aborted;
        break;
      default:
        ++stats_.txns_unknown;
        break;
    }
  }
  active_txns_.erase(aid);
  if (on_done) on_done(outcome);
}

// ---------------------------------------------------------------------------
// Remote calls from the client primary (Fig. 2 "Making a remote call")
// ---------------------------------------------------------------------------

host::Task<std::vector<std::uint8_t>> TxnHandle::Call(
    GroupId group, std::string proc, std::vector<std::uint8_t> args) {
  return cohort_->ClientCall(*this, group, std::move(proc), std::move(args));
}

host::Task<std::vector<std::uint8_t>> Cohort::ClientCall(
    TxnHandle& h, GroupId group, std::string proc,
    std::vector<std::uint8_t> args) {
  if (h.doomed_) throw TxnError("transaction doomed: " + h.doom_reason_);
  if (std::find(h.touched_groups_.begin(), h.touched_groups_.end(), group) ==
      h.touched_groups_.end()) {
    h.touched_groups_.push_back(group);
  }

  const int attempts =
      options_.nested_call_retry ? options_.nested_retry_attempts : 1;
  for (int a = 0; a < attempts; ++a) {
    // §3.6: each attempt is a subaction; without nested transactions the
    // single attempt runs as subaction 0 (top-level work).
    const std::uint32_t sub =
        options_.nested_call_retry ? h.next_sub_++ : 0;
    const SubAid sid{h.aid_, sub};

    auto r = co_await CallAttempt(sid, group, proc, args, h.dead_subs_);
    if (r && r->status == vr::ReplyStatus::kOk) {
      // "add the elements of the pset in the reply message to the
      //  transaction's pset."
      vr::MergePset(h.pset_, r->pset);
      co_return std::move(r->result);
    }
    if (r && r->status == vr::ReplyStatus::kFailed) {
      h.doomed_ = true;
      h.doom_reason_.assign(r->result.begin(), r->result.end());
      throw TxnError("call failed: " + h.doom_reason_);
    }

    // No reply: "The message might be a new one, or it might be a duplicate
    // for a call that ran before the view change" (Fig. 2 step 3). Without
    // subactions this dooms the whole transaction; with them (§3.6) "we can
    // abort just the subaction, and then do the call again as a new
    // subaction."
    if (a + 1 < attempts) {
      ++stats_.subaction_retries;
      if (auto entry = CacheGet(group)) {
        vr::AbortSubMsg abort_sub;
        abort_sub.group = group;
        abort_sub.sub_aid = sid;
        SendMsg(entry->view.primary, abort_sub);  // best effort
      }
      // The abort-sub may be lost; from now on every call of this
      // transaction carries the dead subaction so servers discard its
      // tentative versions before executing (§3.6).
      h.dead_subs_.push_back(sub);
      vr::ErasePsetSub(h.pset_, sub);
      CacheInvalidate(group);
    }
  }

  h.doomed_ = true;
  h.doom_reason_ = "no reply from group " + std::to_string(group);
  throw TxnError(h.doom_reason_);
}

host::Task<std::vector<std::uint8_t>> Cohort::NestedCall(
    ProcContext& ctx, GroupId group, std::string proc,
    std::vector<std::uint8_t> args) {
  // A server's nested call inherits the caller's subaction, so an aborted
  // attempt discards the nested effects too, and the prepare-time pset check
  // covers them (§3.6).
  auto r = co_await CallAttempt(ctx.sub_aid(), group, std::move(proc),
                                std::move(args), ctx.dead_subs_);
  if (!r) throw TxnError("nested call: no reply from group " +
                         std::to_string(group));
  if (r->status != vr::ReplyStatus::kOk) {
    throw TxnError("nested call failed at group " + std::to_string(group));
  }
  vr::MergePset(ctx.pset_, r->pset);
  ctx.nested_groups_.push_back(group);
  co_return std::move(r->result);
}

host::Task<std::optional<vr::ReplyMsg>> Cohort::CallAttempt(
    SubAid sub_aid, GroupId group, std::string proc,
    std::vector<std::uint8_t> args, std::vector<std::uint32_t> dead_subs) {
  // One duplicate-suppression key for every transmission of this attempt.
  const std::uint64_t call_seq = NextCallSeq();
  // Once a transmission has gone unanswered, a view-change rejection of a
  // later transmission is no longer proof that the call never executed —
  // an earlier copy may have run before the change. `ambiguous` tracks that.
  bool ambiguous = false;
  int wrong_view_budget = options_.call_attempts;

  for (int attempt = 0; attempt < options_.call_attempts;) {
    auto entry = co_await CacheLookup(group);
    if (!entry) co_return std::nullopt;  // "If a more recent view cannot be
                                         //  discovered, abort" (Fig. 2)
    vr::CallMsg msg;
    msg.group = group;
    msg.viewid = entry->viewid;
    msg.call_id = NextCorrId();
    msg.call_seq = call_seq;
    msg.reply_to = self_;
    msg.sub_aid = sub_aid;
    msg.dead_subs = dead_subs;
    msg.proc = proc;
    msg.args = args;
    SendMsg(entry->view.primary, msg);

    auto r = co_await reply_waiters_.Await(msg.call_id, options_.call_timeout);
    if (!r) {
      // Retransmit to the same primary; the server's dedup table makes this
      // safe within a view. (Retrying at a *different* primary would risk
      // double execution, which is why no-reply ultimately aborts — Fig. 2.)
      ambiguous = true;
      ++attempt;
      if (attempt == options_.call_attempts) {
        // "we also attempt to update the cache, so that the next use of the
        //  server will not cause an abort."
        CacheInvalidate(group);
      }
      continue;
    }
    if (r->status == vr::ReplyStatus::kWrongView) {
      // Fig. 2 step 4: "update the cache, if possible, and go to step 1" —
      // but the retry is only provably safe when (a) no transmission of this
      // attempt ever went unanswered AND (b) the transport cannot duplicate
      // frames (a duplicate of this very transmission may have executed in
      // the old view before the change). Otherwise: "we must abort the
      // transaction in this case too" (§3.1) — or retry as a fresh
      // subaction when nested transactions are on (§3.6).
      if (r->view_known) {
        CacheUpdate(group, r->new_viewid, r->new_view);
      } else {
        CacheInvalidate(group);
      }
      if (options_.assume_no_duplicates && !ambiguous &&
          wrong_view_budget-- > 0) {
        continue;  // provably never executed
      }
      co_return std::nullopt;  // possibly executed in the old view
    }
    co_return r;  // kOk or kFailed
  }
  co_return std::nullopt;
}

// ---------------------------------------------------------------------------
// Two-phase commit, coordinator side (Fig. 2)
// ---------------------------------------------------------------------------

struct Cohort::PrepareJoin {
  std::size_t remaining = 0;
  bool all_ok = true;
  std::vector<GroupId> plist;  // non-read-only participants
  std::uint64_t corr = 0;
  Cohort* cohort = nullptr;
};

struct Cohort::CommitJoin {
  std::size_t remaining = 0;
  std::size_t acked = 0;
  std::uint64_t corr = 0;
  Cohort* cohort = nullptr;
};

host::Task<TxnOutcome> Cohort::RunTwoPhaseCommit(Aid aid, Pset pset) {
  // "It determines who the participants are from the pset."
  const std::vector<GroupId> participants = vr::PsetGroups(pset);
  if (participants.empty()) co_return TxnOutcome::kCommitted;

  // Phase one, in parallel.
  auto join = std::make_shared<PrepareJoin>();
  join->remaining = participants.size();
  join->corr = NextCorrId();
  join->cohort = this;
  for (GroupId g : participants) tasks_.Spawn(PrepareOne(aid, pset, g, join));
  const auto all_ok = co_await bool_waiters_.Await(
      join->corr,
      static_cast<host::Duration>(options_.prepare_attempts + 1) *
          (options_.prepare_timeout + options_.probe_timeout +
           options_.buffer.force_timeout));

  if (!all_ok.value_or(false)) {
    // "If there is no answer after repeated tries ... or if any participant
    //  refuses to prepare, discard any local locks and versions ... and send
    //  abort messages to the participants."
    co_await AbortEverywhere(aid, pset);
    co_return TxnOutcome::kAborted;
  }

  // Commit point: "add a <'committing', plist, aid> record to the buffer ...
  // and then do a force-to(new_vs)".
  if (!IsActivePrimary()) co_return TxnOutcome::kUnknown;

  // §3.7: all participants read-only. Each of them already added and forced
  // its own <committed> record when it prepared, holds no locks now, and
  // will never query us (queries target prepared, lock-holding txns). The
  // committing record, its force, the commit fan-out, and the done record
  // would replicate a decision nobody reads — skip the lot. Gated on the
  // force_read_only_prepare knob so the unsafe ablation keeps the classic
  // ladder for comparison.
  if (join->plist.empty() && options_.force_read_only_prepare) {
    ++stats_.read_only_commits_skipped;
    co_return TxnOutcome::kCommitted;
  }

  const Viewstamp vs =
      AddRecord(vr::EventRecord::Committing(aid, join->plist));

  // Fused path (DESIGN.md §13): the decision is visible — to §3.4 queries
  // via the outcome table, and to the backups via the flush the background
  // force issues in this same instant — as soon as it is buffered. The
  // force's completion and the commit fan-out overlap in FinishCommitPhase
  // instead of serializing ahead of the reply; durability additionally
  // rides the write-behind event log (§10, already appended by AddRecord).
  // Single-participant transactions stay on the serial ladder below, so
  // single-group workloads never enter this branch.
  if (options_.commit_fusion && participants.size() > 1) {
    ++stats_.fused_commits;
    tasks_.Spawn(FinishCommitPhase(aid, join->plist, vs, /*fused=*/true));
    co_return TxnOutcome::kCommitted;
  }

  const bool forced = co_await Force(vs);
  if (!forced) {
    // The decision record may or may not survive our group's view change;
    // participants will learn the truth via queries (§3.4). We must not
    // claim either outcome.
    co_return TxnOutcome::kUnknown;
  }

  // "Note that user code can continue running as soon as the 'committing'
  //  record has been forced to the backups" — phase two runs in background.
  tasks_.Spawn(FinishCommitPhase(aid, join->plist, vs, /*fused=*/false));
  co_return TxnOutcome::kCommitted;
}

host::Task<void> Cohort::PrepareOne(Aid aid, Pset pset, GroupId g,
                                   std::shared_ptr<PrepareJoin> join) {
  bool ok = false;
  bool read_only = false;
  for (int attempt = 0; attempt < options_.prepare_attempts;) {
    auto entry = co_await CacheLookup(g);
    if (!entry) break;
    const std::uint64_t corr = NextCorrId();
    prepare_corr_[{aid, g}] = corr;
    vr::PrepareMsg m;
    m.group = g;
    m.aid = aid;
    m.pset = pset;
    m.reply_to = self_;
    SendMsg(entry->view.primary, m);
    auto r = co_await prepare_waiters_.Await(
        corr, options_.prepare_timeout + options_.buffer.force_timeout);
    if (auto it = prepare_corr_.find({aid, g});
        it != prepare_corr_.end() && it->second == corr) {
      prepare_corr_.erase(it);
    }
    if (!r) {
      // "update the cache, if possible, and retry the prepare" — prepares
      // are idempotent at the participant.
      CacheInvalidate(g);
      ++attempt;
      continue;
    }
    if (r->status == vr::PrepareStatus::kPrepared) {
      ok = true;
      read_only = r->read_only;
      break;
    }
    if (r->status == vr::PrepareStatus::kRefused) break;
    // kWrongPrimary: follow the redirect.
    if (r->view_known) {
      CacheUpdate(g, r->new_viewid, r->new_view);
    } else {
      CacheInvalidate(g);
    }
    ++attempt;
  }
  if (!ok) {
    join->all_ok = false;
  } else if (!read_only) {
    // "the plist is a list of non-read-only participants."
    join->plist.push_back(g);
  }
  if (--join->remaining == 0) {
    bool_waiters_.Fulfill(join->corr, join->all_ok);
  }
}

host::Task<void> Cohort::FinishCommitPhase(Aid aid, std::vector<GroupId> plist,
                                          Viewstamp decision_vs, bool fused) {
  if (fused) {
    // The decision force leaves the client-visible path. ForceTo flushes
    // the committing record to every backup synchronously in this instant —
    // before the first CommitMsg below and before the client callback runs —
    // so the decision is multicast-in-flight from the moment the outcome is
    // reported; only the ack-counting rides in background. An abandoned
    // force (our group started a view change) is counted, not acted on: the
    // record either survived into the new view or participants resolve via
    // §3.4 queries against it.
    if (buffer_.active()) {
      buffer_.ForceTo(decision_vs, [this](bool ok) {
        if (!ok) ++stats_.fused_decision_forces_failed;
      });
    } else {
      ++stats_.fused_decision_forces_failed;
    }
  }
  bool all_acked = true;
  if (!plist.empty()) {
    auto join = std::make_shared<CommitJoin>();
    join->remaining = plist.size();
    join->corr = NextCorrId();
    join->cohort = this;
    for (GroupId g : plist) {
      tasks_.Spawn(CommitOne(aid, g, decision_vs, fused, join));
    }
    auto r = co_await bool_waiters_.Await(
        join->corr,
        static_cast<host::Duration>(options_.commit_attempts + 1) *
            (options_.commit_ack_timeout + options_.probe_timeout +
             options_.buffer.force_timeout));
    all_acked = r.value_or(false) && join->acked == plist.size();
  }
  // "when all of them acknowledge the commit, add a <'done', aid> record."
  // The done record garbage-collects the outcome entry — which is only safe
  // once every participant really acknowledged (an unreached participant
  // would later query and must still find the answer).
  if (all_acked && IsActivePrimary() && buffer_.active()) {
    AddRecord(vr::EventRecord::Done(aid));
  }
}

host::Task<void> Cohort::CommitOne(Aid aid, GroupId g, Viewstamp decision_vs,
                                  bool fused,
                                  std::shared_ptr<CommitJoin> join) {
  for (int attempt = 0; attempt < options_.commit_attempts;) {
    auto entry = co_await CacheLookup(g);
    if (!entry) break;
    const std::uint64_t corr = NextCorrId();
    commit_corr_[{aid, g}] = corr;
    if (attempt == 0 && options_.decision_coalesce_delay > 0) {
      // First transmission may coalesce with sibling decisions bound for
      // the same primary (one CommitMsg frame, extras piggybacked).
      // Retries below always go out alone — a retry means the coalesced
      // path already failed once for this destination.
      EnqueueDecision(entry->view.primary, g, aid, decision_vs, fused);
    } else {
      vr::CommitMsg m;
      m.group = g;
      m.aid = aid;
      m.reply_to = self_;
      m.decision_vs = decision_vs;
      m.fused = fused;
      SendMsg(entry->view.primary, m);
    }
    auto r = co_await commit_waiters_.Await(
        corr, options_.commit_ack_timeout + options_.buffer.force_timeout);
    if (auto it = commit_corr_.find({aid, g});
        it != commit_corr_.end() && it->second == corr) {
      commit_corr_.erase(it);
    }
    if (r && !r->wrong_primary) {
      ++join->acked;
      break;
    }
    if (r && r->wrong_primary) {
      if (r->view_known) {
        CacheUpdate(g, r->new_viewid, r->new_view);
      } else {
        CacheInvalidate(g);
      }
    } else {
      CacheInvalidate(g);
    }
    ++attempt;
    // Unreached participants resolve the outcome via queries (§3.4).
  }
  if (--join->remaining == 0) bool_waiters_.Fulfill(join->corr, true);
}

void Cohort::EnqueueDecision(Mid dest, GroupId g, Aid aid,
                             Viewstamp decision_vs, bool fused) {
  auto& q = decision_queue_[dest];
  q.push_back(QueuedDecision{g, aid, decision_vs, fused});
  if (q.size() > 1) return;  // flush timer armed by the first entry
  decision_timers_[dest] = host_.timers().After(
      options_.decision_coalesce_delay, [this, dest] { FlushDecisions(dest); });
}

void Cohort::FlushDecisions(Mid dest) {
  decision_timers_.erase(dest);
  auto it = decision_queue_.find(dest);
  if (it == decision_queue_.end()) return;
  std::vector<QueuedDecision> q = std::move(it->second);
  decision_queue_.erase(it);
  if (q.empty()) return;
  // Every decision queued for one destination targets the same group — a
  // cohort serves exactly one group — so the first entry shapes the frame
  // and the rest ride as trailer extras.
  vr::CommitMsg m;
  m.group = q[0].group;
  m.aid = q[0].aid;
  m.reply_to = self_;
  m.decision_vs = q[0].decision_vs;
  m.fused = q[0].fused;
  for (std::size_t i = 1; i < q.size(); ++i) {
    vr::CommitExtra e;
    e.aid = q[i].aid;
    e.decision_vs = q[i].decision_vs;
    e.fused = q[i].fused;
    m.extras.push_back(e);
    ++stats_.decision_piggybacked;
  }
  SendMsg(dest, m);
}

host::Task<void> Cohort::AbortEverywhere(Aid aid, Pset pset,
                                        std::vector<GroupId> extra_groups) {
  // Best-effort abort messages; "delivery of abort messages is not
  // guaranteed in any case: recovery from lost messages is done by using
  // queries" (§4.1). Groups that were merely *attempted* (no reply merged
  // into the pset) may hold locks too, so they are notified as well.
  std::vector<GroupId> groups = vr::PsetGroups(pset);
  for (GroupId g : extra_groups) {
    if (std::find(groups.begin(), groups.end(), g) == groups.end()) {
      groups.push_back(g);
    }
  }
  for (GroupId g : groups) {
    auto entry = co_await CacheLookup(g);
    if (entry) {
      vr::AbortMsg m;
      m.group = g;
      m.aid = aid;
      SendMsg(entry->view.primary, m);
    }
  }
  // "add an <'aborted', aid> record to the buffer. This record ... is useful
  //  for query processing."
  if (IsActivePrimary() && buffer_.active()) {
    AddRecord(vr::EventRecord::Aborted(aid));
  } else {
    outcomes_.RecordAborted(aid);
  }
  co_return;
}

// ---------------------------------------------------------------------------
// Primary-location cache and probes (§3)
// ---------------------------------------------------------------------------

std::optional<Cohort::CacheEntry> Cohort::CacheGet(GroupId g) const {
  if (g == group_ && status_ == Status::kActive) {
    return CacheEntry{cur_viewid_, cur_view_};
  }
  auto it = cache_.find(g);
  if (it == cache_.end()) return std::nullopt;
  return it->second;
}

void Cohort::CacheUpdate(GroupId g, ViewId vid, const View& v) {
  auto it = cache_.find(g);
  if (it != cache_.end() && it->second.viewid >= vid) return;  // not newer
  cache_[g] = CacheEntry{vid, v};
}

void Cohort::CacheInvalidate(GroupId g) { cache_.erase(g); }

host::Task<std::optional<Cohort::CacheEntry>> Cohort::CacheLookup(GroupId g) {
  if (auto e = CacheGet(g)) co_return e;
  // "To find a server it has not used before, a cohort fetches the
  //  configuration from the location server and communicates with members of
  //  the configuration to determine the current primary and viewid."
  const std::vector<Mid>* config = directory_.Lookup(g);
  if (config == nullptr) co_return std::nullopt;
  for (int round = 0; round < options_.probe_rounds; ++round) {
    for (Mid target : *config) {
      if (auto e = CacheGet(g)) co_return e;  // filled concurrently
      vr::ProbeMsg probe;
      probe.group = g;
      probe.req_id = NextCorrId();
      probe.reply_to = self_;
      SendMsg(target, probe);
      auto r = co_await probe_waiters_.Await(probe.req_id,
                                             options_.probe_timeout);
      if (r && r->known && r->active) {
        CacheUpdate(g, r->viewid, r->view);
        co_return CacheGet(g);
      }
    }
  }
  co_return std::nullopt;
}

void Cohort::OnProbe(const vr::ProbeMsg& m) {
  vr::ProbeReplyMsg r;
  r.group = group_;
  r.req_id = m.req_id;
  r.known = up_to_date_ && cur_viewid_.counter > 0;
  r.active = status_ == Status::kActive;
  if (r.known) {
    r.viewid = cur_viewid_;
    r.view = cur_view_;
  }
  SendMsg(m.reply_to, r);
}

void Cohort::OnProbeReply(const vr::ProbeReplyMsg& m) {
  probe_waiters_.Fulfill(m.req_id, m);
}

// ---------------------------------------------------------------------------
// Coordinator-server protocol (§3.5)
// ---------------------------------------------------------------------------

void Cohort::OnBeginTxn(const vr::BeginTxnMsg& m) {
  vr::BeginTxnReplyMsg r;
  r.req_id = m.req_id;
  if (!IsActivePrimary() || m.viewid != cur_viewid_) {
    r.status = vr::ReplyStatus::kWrongView;
    if (status_ == Status::kActive) {
      r.view_known = true;
      r.new_viewid = cur_viewid_;
      r.new_view = cur_view_;
    }
    SendMsg(m.reply_to, r);
    return;
  }
  Aid aid;
  aid.coordinator_group = group_;
  aid.view = cur_viewid_;
  aid.seq = next_txn_seq_++;
  active_txns_.insert(aid);
  external_txns_[aid] = host_.Now();
  r.status = vr::ReplyStatus::kOk;
  r.aid = aid;
  SendMsg(m.reply_to, r);
}

void Cohort::OnCommitReq(const vr::CommitReqMsg& m) {
  if (!IsActivePrimary()) return;  // client re-probes on timeout
  if (committing_external_.count(m.aid) != 0) return;  // duplicate in flight
  tasks_.Spawn(RunCommitReq(m));
}

host::Task<void> Cohort::RunCommitReq(vr::CommitReqMsg m) {
  TxnOutcome outcome = outcomes_.Lookup(m.aid);
  if (outcome == TxnOutcome::kUnknown) {
    if (active_txns_.count(m.aid) == 0) {
      // Expired (unilaterally aborted) or never begun here.
      outcome = TxnOutcome::kAborted;
    } else {
      committing_external_.insert(m.aid);
      outcome = co_await RunTwoPhaseCommit(m.aid, m.pset);
      committing_external_.erase(m.aid);
      active_txns_.erase(m.aid);
      external_txns_.erase(m.aid);
      switch (outcome) {
        case TxnOutcome::kCommitted:
          ++stats_.txns_committed;
          break;
        case TxnOutcome::kAborted:
          ++stats_.txns_aborted;
          break;
        default:
          ++stats_.txns_unknown;
          break;
      }
    }
  }
  vr::CommitReqReplyMsg r;
  r.req_id = m.req_id;
  r.outcome = outcome;
  SendMsg(m.reply_to, r);
}

void Cohort::OnAbortReq(const vr::AbortReqMsg& m) {
  if (!IsActivePrimary()) return;
  if (active_txns_.count(m.aid) == 0) return;
  if (committing_external_.count(m.aid) != 0) return;  // too late
  active_txns_.erase(m.aid);
  external_txns_.erase(m.aid);
  ++stats_.txns_aborted;
  tasks_.Spawn(AbortEverywhere(m.aid, m.pset));
}

void Cohort::SweepExternalTxns() {
  // "if no reply is forthcoming, it can abort the transaction unilaterally."
  const host::Time now = host_.Now();
  std::vector<Aid> expired;
  for (const auto& [aid, began] : external_txns_) {
    if (committing_external_.count(aid) != 0) continue;
    if (now - began >= options_.external_txn_timeout) expired.push_back(aid);
  }
  for (const Aid& aid : expired) {
    external_txns_.erase(aid);
    active_txns_.erase(aid);
    ++stats_.txns_aborted;
    tasks_.Spawn(AbortEverywhere(aid, Pset{}));
  }
}

}  // namespace vsr::core
