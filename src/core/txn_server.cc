// The server role (Fig. 3) and backup record application (§3.3).
#include <memory>

#include "core/cohort.h"

namespace vsr::core {

// ---------------------------------------------------------------------------
// Awaitable primitives
// ---------------------------------------------------------------------------

host::Task<bool> Cohort::Force(Viewstamp vs) {
  if (!buffer_.active()) co_return false;
  const std::uint64_t corr = NextCorrId();
  // ForceTo may complete synchronously (watermark already reached); the
  // shared flag captures that case before we suspend.
  auto sync = std::make_shared<std::pair<bool, bool>>(false, false);
  buffer_.ForceTo(vs, [this, corr, sync](bool ok) {
    sync->first = true;
    sync->second = ok;
    bool_waiters_.Fulfill(corr, ok);
  });
  if (sync->first) co_return sync->second;
  auto r = co_await bool_waiters_.Await(
      corr, options_.buffer.force_timeout + 100 * host::kMillisecond);
  co_return r.value_or(false);
}

host::Task<bool> Cohort::AcquireLock(std::string uid, Aid aid,
                                    vr::LockMode mode) {
  const std::uint64_t corr = NextCorrId();
  auto sync = std::make_shared<std::pair<bool, bool>>(false, false);
  store_.Acquire(uid, aid, mode, options_.lock_wait_timeout,
                 [this, corr, sync](bool ok) {
                   sync->first = true;
                   sync->second = ok;
                   bool_waiters_.Fulfill(corr, ok);
                 });
  if (sync->first) co_return sync->second;
  auto r = co_await bool_waiters_.Await(
      corr, options_.lock_wait_timeout + 100 * host::kMillisecond);
  co_return r.value_or(false);
}

Viewstamp Cohort::AddRecord(vr::EventRecord rec) {
  switch (rec.type) {
    case vr::EventType::kCommitting:
    case vr::EventType::kCommitted:
      outcomes_.RecordCommitted(rec.sub_aid.aid);
      break;
    case vr::EventType::kAborted:
      outcomes_.RecordAborted(rec.sub_aid.aid);
      break;
    case vr::EventType::kDone:
      outcomes_.RecordDone(rec.sub_aid.aid);
      break;
    default:
      break;
  }
  if (elog_.enabled() && rec.type != vr::EventType::kNewView) {
    // Log a copy carrying the timestamp the buffer just assigned; newview
    // records are covered by the checkpoint that anchors each generation.
    vr::EventRecord copy = rec;
    const Viewstamp vs = buffer_.Add(std::move(rec));
    copy.ts = vs.ts;
    LogApply(copy);
    return vs;
  }
  return buffer_.Add(std::move(rec));
}

// ---------------------------------------------------------------------------
// Gstate snapshot (payload of the newview record)
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> Cohort::SnapshotGstate() const {
  wire::Writer w;
  store_.Snapshot(w);
  outcomes_.Snapshot(w);
  // Completed-call replies (replicated duplicate suppression, §3.1).
  std::uint32_t completed = 0;
  for (const auto& [seq, e] : call_dedup_) completed += e.completed ? 1 : 0;
  w.U32(completed);
  for (const auto& [seq, e] : call_dedup_) {
    if (!e.completed) continue;
    w.U64(seq);
    e.aid.Encode(w);
    e.reply.Encode(w);
  }
  return w.Take();
}

void Cohort::RestoreGstate(const std::vector<std::uint8_t>& bytes) {
  wire::Reader r(bytes);
  store_.Restore(r);
  outcomes_.Restore(r);
  call_dedup_.clear();
  const std::uint32_t n = r.U32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    const std::uint64_t seq = r.U64();
    DedupEntry e;
    e.completed = true;
    e.aid = Aid::Decode(r);
    e.reply = vr::ReplyMsg::Decode(r);
    call_dedup_[seq] = std::move(e);
  }
}

// ---------------------------------------------------------------------------
// Backup replication (§3.3)
// ---------------------------------------------------------------------------

void Cohort::SendBufferAck(bool gap, std::uint64_t gap_hi, bool codec_reset) {
  // Coalescing: a gap-free ack only moves the cumulative watermark, so it
  // may wait briefly for later batches and ride out as one frame carrying
  // the latest applied_ts_. Gap requests (and codec-reset nacks) are urgent
  // and always sent now (folding any deferred ack into them — the ack field
  // is cumulative).
  if (!gap && !codec_reset && options_.ack_coalesce_delay > 0) {
    if (ack_timer_ != host::kNoTimer) {
      ++stats_.acks_coalesced;  // rides the already-scheduled frame
      return;
    }
    ack_timer_ =
        host_.timers().After(options_.ack_coalesce_delay, [this] {
          ack_timer_ = host::kNoTimer;
          if (status_ != Status::kActive || cur_view_.primary == self_) return;
          vr::BufferAckMsg ack;
          ack.group = group_;
          ack.viewid = cur_viewid_;
          ack.from = self_;
          ack.ts = applied_ts_;
          SendMsg(cur_view_.primary, ack);
        });
    return;
  }
  host_.timers().Cancel(ack_timer_);
  ack_timer_ = host::kNoTimer;
  vr::BufferAckMsg ack;
  ack.group = group_;
  ack.viewid = cur_viewid_;
  ack.from = self_;
  ack.ts = applied_ts_;
  ack.gap = gap;
  ack.gap_hi = gap_hi;
  ack.codec_reset = codec_reset;
  SendMsg(cur_view_.primary, ack);
}

void Cohort::ApplyRecord(const vr::EventRecord& rec) {
  // Write-behind durable copy (self-guarding: disabled log or replay).
  // Newview records are excluded — each generation's checkpoint covers them.
  if (rec.type != vr::EventType::kNewView) LogApply(rec);
  ++stats_.records_applied_as_backup;
  const bool eager = options_.eager_backup_apply;
  switch (rec.type) {
    case vr::EventType::kCompletedCall: {
      if (eager) {
        store_.ApplyEffects(rec.sub_aid, rec.effects);
      } else {
        pending_records_.push_back(rec);
      }
      // Reconstruct the reply so this cohort can re-answer the call if it
      // becomes primary (replicated duplicate suppression).
      if (rec.call_seq != 0) {
        vr::ReplyMsg reply;
        reply.status = vr::ReplyStatus::kOk;
        reply.result = rec.result;
        reply.pset = rec.nested_pset;
        reply.pset.push_back(
            vr::PsetEntry{group_, Viewstamp{cur_viewid_, rec.ts},
                          rec.sub_aid.sub});
        call_dedup_[rec.call_seq] =
            DedupEntry{true, rec.sub_aid.aid, std::move(reply)};
      }
      break;
    }
    case vr::EventType::kCommitting:
      outcomes_.RecordCommitted(rec.sub_aid.aid);
      break;
    case vr::EventType::kCommitted:
      outcomes_.RecordCommitted(rec.sub_aid.aid);
      PruneDedup(rec.sub_aid.aid);
      if (eager) {
        // Stamp the installed bases with the committed record's viewstamp:
        // the admission bound for backup reads (DESIGN.md §14).
        NoteInstalled(store_.Commit(rec.sub_aid.aid),
                      Viewstamp{cur_viewid_, rec.ts});
      } else {
        pending_records_.push_back(rec);
      }
      break;
    case vr::EventType::kAborted:
      outcomes_.RecordAborted(rec.sub_aid.aid);
      PruneDedup(rec.sub_aid.aid);
      if (eager) {
        store_.Abort(rec.sub_aid.aid);
      } else {
        pending_records_.push_back(rec);
      }
      break;
    case vr::EventType::kAbortedSub:
      if (eager) {
        store_.AbortSub(rec.sub_aid);
      } else {
        pending_records_.push_back(rec);
      }
      break;
    case vr::EventType::kDone:
      // GC: every participant acknowledged; the outcome will never be
      // queried again.
      outcomes_.RecordDone(rec.sub_aid.aid);
      break;
    case vr::EventType::kShardInstall:
    case vr::EventType::kShardDrop:
      if (eager) {
        ApplyShardRecord(rec);
      } else {
        pending_records_.push_back(rec);
      }
      break;
    case vr::EventType::kNewView:
      break;  // handled in OnBufferBatch adoption paths
  }
}

void Cohort::OnBufferBatch(const vr::BufferBatchMsg& m) {
  // First traffic from the primary we rejoined: it has rewound its cursors
  // for us, so stop re-sending the rejoin ack (a resend would rewind them
  // again and thrash the restream).
  if (rejoin_pending_ && status_ == Status::kActive &&
      m.viewid == cur_viewid_ && m.from == cur_view_.primary) {
    ClearRejoin();
  }
  if (m.stale) {
    // Duplicate of a compressed batch already consumed. The resend means our
    // ack for it was lost: the primary may have rewound to a checkpoint
    // behind our watermark and will replay this range forever unless it
    // learns where we really are. Re-send the cumulative ack.
    if (status_ == Status::kActive && m.viewid == cur_viewid_ &&
        m.from == cur_view_.primary && cur_view_.primary != self_) {
      SendBufferAck();
    }
    return;
  }
  if (m.unsynced) {
    // A compressed batch arrived whose dictionary context we missed (lost
    // predecessor, or we were reset). Nack the whole range: the primary's
    // resend restores sync in one round trip — via a checkpoint rewind when
    // its encoder has one covering our watermark, else (reset_needed: we
    // never bound to its stream, or its generation is ahead of ours) via a
    // fresh codec generation, which the codec_reset flag demands explicitly.
    // Only meaningful in steady state from our current primary.
    if (status_ == Status::kActive && m.viewid == cur_viewid_ &&
        m.from == cur_view_.primary && cur_view_.primary != self_ &&
        m.last_ts > applied_ts_) {
      ++stats_.gap_requests_sent;
      SendBufferAck(true, m.last_ts, m.reset_needed);
    }
    return;
  }
  if (m.events.empty()) return;
  const vr::EventRecord& first = m.events.front();
  const bool opens_view =
      first.type == vr::EventType::kNewView && first.ts == 1;

  // Path 1 — underling joining the view it accepted: "If a 'newview' record
  // for a view with viewid equal to max_viewid arrives from the buffer,
  // await_view initializes the cohort state before returning."
  if (opens_view && !adopting_ && status_ == Status::kUnderling &&
      m.viewid == max_viewid_ && first.view.Contains(self_) &&
      m.from == first.view.primary) {
    adopting_ = true;
    AdoptNewView(first, m.viewid, first.ts);
    return;
  }

  // Path 2 — unilateral view tweak by our active primary (§4.1): adopt a
  // strictly newer view announced directly by its primary, without an
  // invitation round.
  if (opens_view && !adopting_ && m.viewid > max_viewid_ &&
      (status_ == Status::kActive || status_ == Status::kUnderling) &&
      first.view.Contains(self_) && m.from == first.view.primary) {
    adopting_ = true;
    AdoptNewView(first, m.viewid, first.ts);
    return;
  }

  // Path 3 — steady-state backup application in timestamp order. Batches
  // arrive pipelined and may be reordered or lost in flight: records beyond
  // applied_ts_ + 1 are stashed, and the ack carries a gap request naming
  // the exact hole so the primary can fill it without a full retransmission
  // deadline passing.
  if (status_ != Status::kActive || m.viewid != cur_viewid_ ||
      m.from != cur_view_.primary || cur_view_.primary == self_) {
    return;
  }
  for (const vr::EventRecord& rec : m.events) {
    if (rec.ts <= applied_ts_) continue;  // duplicate
    if (rec.ts != applied_ts_ + 1) {
      // Out of order: hold on to it; a bounded stash keeps a byzantine-sized
      // burst from exhausting memory (excess is re-fetched via the gap).
      if (batch_stash_.size() < kMaxBatchStash &&
          batch_stash_.emplace(rec.ts, rec).second) {
        ++stats_.records_stashed_out_of_order;
      }
      continue;
    }
    ApplyRecord(rec);
    applied_ts_ = rec.ts;
    history_.Advance(rec.ts);
    DrainBatchStash();
  }
  // Stashed records may themselves have become applicable (e.g. this batch
  // was the older, hole-filling one).
  DrainBatchStash();
  const bool gap = !batch_stash_.empty();
  if (gap) ++stats_.gap_requests_sent;
  SendBufferAck(gap, gap ? batch_stash_.begin()->first - 1 : 0);
}

// Applies every stashed record that has become contiguous with applied_ts_;
// drops any the primary re-sent in the meantime.
void Cohort::DrainBatchStash() {
  while (!batch_stash_.empty()) {
    auto it = batch_stash_.begin();
    if (it->first <= applied_ts_) {
      batch_stash_.erase(it);  // duplicate of an already-applied record
      continue;
    }
    if (it->first != applied_ts_ + 1) return;  // hole still open
    ApplyRecord(it->second);
    applied_ts_ = it->first;
    history_.Advance(it->first);
    ++stats_.records_applied_from_stash;
    batch_stash_.erase(it);
  }
}

// ---------------------------------------------------------------------------
// Snapshot state transfer (DESIGN.md §9)
// ---------------------------------------------------------------------------

// Primary side: a backup's first unreceived record fell below the buffer's GC
// floor (CommBuffer routed it into state-transfer mode), so replaying the
// record suffix can no longer catch it up. Serve it the whole gstate instead.
void Cohort::ServeSnapshot(Mid backup) {
  if (!IsActivePrimary() || !buffer_.active()) return;
  // The snapshot reflects every record added so far (the primary applies its
  // own effects at execution time), so it is identified by the viewstamp of
  // the newest buffered record.
  const Viewstamp vs{cur_viewid_, buffer_.last_ts()};
  snap_server_.Serve(backup, vs, BuildSnapshotPayload());
}

std::shared_ptr<const std::vector<std::uint8_t>> Cohort::BuildSnapshotPayload()
    const {
  // Layout (DESIGN.md §9.2): history, length-prefixed gstate (object store +
  // outcomes + completed-call replies, the same bytes a newview record
  // carries), then the prepared-transaction set — a promoted backup must know
  // which blocked transactions to query coordinators about (§3.4).
  wire::Writer w;
  history_.Encode(w);
  const std::vector<std::uint8_t> gstate = SnapshotGstate();
  w.Bytes(std::span<const std::uint8_t>(gstate));
  w.U32(static_cast<std::uint32_t>(prepared_.size()));
  for (const Aid& aid : prepared_) aid.Encode(w);
  // §3.6 sibling fallback targets travel with the prepared set, so a
  // snapshot-caught-up cohort keeps its coordinator-partition escape hatch.
  w.U32(static_cast<std::uint32_t>(prepared_siblings_.size()));
  for (const auto& [aid, groups] : prepared_siblings_) {
    aid.Encode(w);
    w.Vector(groups, [&](GroupId g) { w.U64(g); });
  }
  return std::make_shared<const std::vector<std::uint8_t>>(w.Take());
}

void Cohort::OnSnapshotAck(const vr::SnapshotAckMsg& m) {
  snap_server_.OnAck(m);  // dispatch already gated on IsActivePrimary
}

// Backup side: assemble chunks, then install atomically.
void Cohort::OnSnapshotChunk(const vr::SnapshotChunkMsg& m) {
  // Same steady-state gate as record batches: only an active backup of the
  // current view takes snapshots, and only from its primary. The snapshot
  // itself must belong to this view (its ts indexes this view's records).
  if (status_ != Status::kActive || m.viewid != cur_viewid_ ||
      m.from != cur_view_.primary || cur_view_.primary == self_ ||
      m.vs.view != cur_viewid_) {
    return;
  }
  // The primary answered our rejoin with a snapshot (the missing tail fell
  // below its GC floor): the rejoin is being serviced, stop re-sending it.
  if (rejoin_pending_) ClearRejoin();
  if (m.vs.ts <= applied_ts_) {
    // The record stream caught us up past this snapshot before the transfer
    // finished. A plain cumulative ack tells the primary to stand down.
    ClearSnapshotSink();
    SendBufferAck();
    return;
  }
  if (!snap_sink_.OnChunk(m)) return;  // stray/forged chunk: no ack
  // From the first accepted chunk until the install (or a view transition)
  // this cohort's gstate is doomed to be replaced, so view changes must treat
  // it as crashed-equivalent (DoAccept). A transfer whose stream dies is
  // abandoned by the idle timer so that equivalence cannot outlive the
  // serving primary.
  installing_snapshot_ = true;
  // Crashed-equivalent for reads too: the gstate this cohort would serve
  // from is doomed, so any held lease is dropped until the install lands
  // and a fresh grant arrives (DESIGN.md §14).
  RevokeLease();
  host_.timers().Cancel(snap_abandon_timer_);
  snap_abandon_timer_ =
      host_.timers().After(options_.snapshot.install_abandon_timeout,
                             [this] {
                               snap_abandon_timer_ = host::kNoTimer;
                               AbandonSnapshotInstall();
                             });
  if (snap_sink_.complete()) {
    const Viewstamp vs = snap_sink_.vs();
    const std::uint64_t total = snap_sink_.payload().size();
    if (InstallSnapshot(vs, snap_sink_.payload())) {
      ClearSnapshotSink();
      // Final ack at the full offset ends the server's transfer; the buffer
      // ack re-enters the record/ack stream at the snapshot's timestamp.
      vr::SnapshotAckMsg ack;
      ack.group = group_;
      ack.viewid = cur_viewid_;
      ack.from = self_;
      ack.vs = vs;
      ack.offset = total;
      SendMsg(cur_view_.primary, ack);
      SendBufferAck();
    } else {
      // Malformed payload (primary-side encoding bug): never install a
      // partial state. Drop the transfer; the stat surfaces the fault.
      ClearSnapshotSink();
    }
    return;
  }
  vr::SnapshotAckMsg ack;
  ack.group = group_;
  ack.viewid = cur_viewid_;
  ack.from = self_;
  ack.vs = snap_sink_.vs();
  ack.offset = snap_sink_.offset();
  SendMsg(cur_view_.primary, ack);
}

bool Cohort::InstallSnapshot(Viewstamp vs,
                             const std::vector<std::uint8_t>& payload) {
  // All-or-nothing: parse everything into temporaries and validate before
  // touching any cohort state. A truncated or trailing-garbage payload is
  // rejected wholesale.
  wire::Reader r(payload);
  vr::History hist = vr::History::Decode(r);
  const std::vector<std::uint8_t> gstate = r.Bytes();
  std::set<Aid> prepared;
  const std::uint32_t prep_count = r.U32();
  for (std::uint32_t i = 0; i < prep_count && r.ok(); ++i) {
    prepared.insert(Aid::Decode(r));
  }
  std::map<Aid, std::vector<GroupId>> siblings;
  const std::uint32_t sib_count = r.U32();
  for (std::uint32_t i = 0; i < sib_count && r.ok(); ++i) {
    const Aid aid = Aid::Decode(r);
    siblings[aid] = r.Vector<GroupId>([&] { return r.U64(); });
  }
  if (!r.ok() || !r.AtEnd() || hist.Empty() ||
      hist.Latest().view != vs.view || hist.Latest().ts > vs.ts) {
    ++stats_.snapshot_installs_rejected;
    return false;
  }

  history_ = std::move(hist);
  // The primary's history entry trails its buffer (it advances the entry at
  // view formation, not per record); the snapshot reflects records through
  // vs.ts, so account for them.
  history_.Advance(vs.ts);
  RestoreGstate(gstate);
  prepared_ = std::move(prepared);
  prepared_siblings_ = std::move(siblings);
  // Restored blocked transactions look freshly active to the idle janitor
  // and are queried via the normal §3.4 path if they stay quiet.
  for (const Aid& aid : prepared_) txn_activity_[aid] = host_.Now();
  if (!prepared_.empty()) ArmQueryTimer();
  // Everything the record stream had in flight is superseded wholesale.
  pending_records_.clear();
  batch_stash_.clear();
  batch_decoder_.Reset();
  applied_ts_ = vs.ts;
  installing_snapshot_ = false;
  // Every restored base version is conservatively treated as committed at
  // the snapshot point for read admission (DESIGN.md §14).
  ResetCommitStamps(vs);
  if (log_recovered_ && !(cur_viewid_ < recovered_crash_viewid_)) {
    // The snapshot covers every record the primary ever streamed in this
    // view, hence everything we could have acknowledged before the crash:
    // the replayed lower bound has been re-validated and this cohort may
    // answer view changes normally again. Only sound when the stable viewid
    // at recovery did not exceed the replayed view — otherwise we may have
    // lost acknowledgements from a LATER view this snapshot knows nothing
    // about, and must stay crashed-with-state until a view transition.
    log_recovered_ = false;
    recovered_crash_viewid_ = ViewId{};
  }
  // Anchor a fresh log generation at the installed state: the old one's
  // suffix no longer matches applied_ts_ and must not replay after it.
  LogCheckpoint(vs.ts);
  ++stats_.snapshots_installed;
  Trace("installed snapshot at %s (%zu bytes)", vs.ToString().c_str(),
        payload.size());
  return true;
}

void Cohort::ClearSnapshotSink() {
  snap_sink_.Reset();
  installing_snapshot_ = false;
  host_.timers().Cancel(snap_abandon_timer_);
  snap_abandon_timer_ = host::kNoTimer;
}

// The chunk stream went idle for install_abandon_timeout: the serving
// primary crashed or stood down. Install is all-or-nothing, so drop every
// assembled byte and resume answering view changes with the intact
// pre-transfer gstate — staying crashed-equivalent behind a dead transfer
// could block view formation forever (§4 conditions (1)-(3) all need
// normal acceptances this cohort would otherwise never give again).
void Cohort::AbandonSnapshotInstall() {
  if (!snap_sink_.active() && !installing_snapshot_) return;
  ++stats_.snapshot_installs_abandoned;
  Trace("abandoning idle snapshot transfer (%zu bytes assembled)",
        static_cast<std::size_t>(snap_sink_.offset()));
  ClearSnapshotSink();
}

// ---------------------------------------------------------------------------
// ProcContext
// ---------------------------------------------------------------------------

ProcContext::ProcContext(Cohort& cohort, SubAid sub_aid,
                         std::vector<std::uint8_t> args)
    : cohort_(cohort), sub_aid_(sub_aid), args_(std::move(args)) {}

void ProcContext::NoteEffect(const std::string& uid, vr::LockMode mode) {
  auto it = effect_mode_.find(uid);
  if (it == effect_mode_.end()) {
    effect_order_.emplace_back(uid, mode);
    effect_mode_[uid] = mode;
    return;
  }
  if (mode == vr::LockMode::kWrite) {
    it->second = vr::LockMode::kWrite;  // write dominates read
    for (auto& [u, m] : effect_order_) {
      if (u == uid) m = vr::LockMode::kWrite;
    }
  }
}

host::Task<std::optional<std::string>> ProcContext::Read(std::string uid) {
  const bool ok =
      co_await cohort_.AcquireLock(uid, sub_aid_.aid, vr::LockMode::kRead);
  if (!ok) throw TxnError("read-lock timeout on " + uid);
  NoteEffect(uid, vr::LockMode::kRead);
  co_return cohort_.store_.Read(uid, sub_aid_.aid);
}

host::Task<std::optional<std::string>> ProcContext::ReadForUpdate(
    std::string uid) {
  const bool ok =
      co_await cohort_.AcquireLock(uid, sub_aid_.aid, vr::LockMode::kWrite);
  if (!ok) throw TxnError("update-lock timeout on " + uid);
  NoteEffect(uid, vr::LockMode::kWrite);
  co_return cohort_.store_.Read(uid, sub_aid_.aid);
}

host::Task<void> ProcContext::Write(std::string uid, std::string value) {
  const bool ok =
      co_await cohort_.AcquireLock(uid, sub_aid_.aid, vr::LockMode::kWrite);
  if (!ok) throw TxnError("write-lock timeout on " + uid);
  NoteEffect(uid, vr::LockMode::kWrite);
  cohort_.store_.WriteTentative(uid, sub_aid_, std::move(value));
  co_return;
}

host::Task<std::vector<std::uint8_t>> ProcContext::Call(
    GroupId group, std::string proc, std::vector<std::uint8_t> args) {
  return cohort_.NestedCall(*this, group, std::move(proc), std::move(args));
}

// ---------------------------------------------------------------------------
// Remote call processing (Fig. 3)
// ---------------------------------------------------------------------------

void Cohort::OnCall(const vr::CallMsg& m) {
  // Duplicate suppression first — the "connection information" §3.1
  // assumes. A completed call is re-answered from the stored reply even
  // across view changes (the entry is replicated state); whether its events
  // survived is decided later by compatible() at prepare time.
  auto it = call_dedup_.find(m.call_seq);
  if (it != call_dedup_.end() && (it->second.completed || IsActivePrimary())) {
    ++stats_.duplicate_calls_suppressed;
    if (it->second.completed && IsActivePrimary()) {
      vr::ReplyMsg replay = it->second.reply;
      replay.call_id = m.call_id;  // re-correlate for the retransmission
      SendMsg(m.reply_to, replay);
    } else {
      // Still running: remember the newest retransmission so the eventual
      // reply answers a correlation id the client is still waiting on.
      it->second.latest_call_id = m.call_id;
      it->second.latest_reply_to = m.reply_to;
    }
    return;
  }
  // "If the viewid in the call message is not equal to the primary's
  //  cur_viewid, send back a rejection message containing the new viewid
  //  and view."
  if (!IsActivePrimary() || m.viewid != cur_viewid_) {
    ++stats_.calls_rejected_wrong_view;
    vr::ReplyMsg reject;
    reject.call_id = m.call_id;
    reject.status = vr::ReplyStatus::kWrongView;
    if (status_ == Status::kActive) {
      reject.view_known = true;
      reject.new_viewid = cur_viewid_;
      reject.new_view = cur_view_;
    }
    SendMsg(m.reply_to, reject);
    return;
  }
  DedupEntry running;
  running.aid = m.sub_aid.aid;
  running.latest_call_id = m.call_id;
  running.latest_reply_to = m.reply_to;
  call_dedup_[m.call_seq] = running;
  tasks_.Spawn(RunCall(m));
}

host::Task<void> Cohort::RunCall(vr::CallMsg m) {
  const ViewId call_view = cur_viewid_;
  // The client may retransmit while we execute; answer the newest copy.
  auto latest = [this, &m]() -> std::pair<std::uint64_t, Mid> {
    auto it = call_dedup_.find(m.call_seq);
    if (it != call_dedup_.end() && it->second.latest_call_id != 0) {
      return {it->second.latest_call_id, it->second.latest_reply_to};
    }
    return {m.call_id, m.reply_to};
  };
  vr::ReplyMsg reply;
  reply.call_id = m.call_id;

  auto pit = procs_.find(m.proc);
  if (pit == procs_.end()) {
    reply.status = vr::ReplyStatus::kFailed;
    const std::string err = "unknown procedure: " + m.proc;
    reply.result.assign(err.begin(), err.end());
    auto [cid, to] = latest();
    reply.call_id = cid;
    call_dedup_[m.call_seq] = DedupEntry{true, m.sub_aid.aid, reply};
    SendMsg(to, reply);
    co_return;
  }

  // §3.6: discard tentative versions of subactions the caller has aborted —
  // their abort-sub messages were best-effort and may never have arrived.
  // The dead set also gates completion: a dead attempt still suspended here
  // must not record effects when it eventually finishes.
  for (std::uint32_t dead : m.dead_subs) {
    const SubAid dead_sub{m.sub_aid.aid, dead};
    if (dead_subs_by_txn_[m.sub_aid.aid].insert(dead).second) {
      store_.AbortSub(dead_sub);
      AddRecord(vr::EventRecord::AbortedSub(dead_sub));
    }
  }

  // §3.6, admission side: a call whose OWN subaction is already dead must
  // not run at all. A delayed transmission of an aborted attempt would
  // otherwise execute concurrently with its replacement and leak its
  // tentative versions into the replacement's reads (the caller gave up on
  // this attempt, so no reply is owed).
  if (auto dit = dead_subs_by_txn_.find(m.sub_aid.aid);
      dit != dead_subs_by_txn_.end() &&
      dit->second.count(m.sub_aid.sub) != 0) {
    ++stats_.dead_sub_calls_refused;
    call_dedup_.erase(m.call_seq);
    co_return;
  }

  // Occupy this cohort's serial CPU for the call's service time (0 = free).
  // This is what gives a group finite capacity: calls beyond 1/service_time
  // per second queue here, and only adding groups adds capacity.
  if (options_.call_service_time > 0) {
    const host::Time now = host_.Now();
    const host::Time start = std::max(now, cpu_free_);
    cpu_free_ = start + options_.call_service_time;
    co_await host::Sleep(host_.timers(), cpu_free_ - now);
    // Re-check admission: the view may have moved while queued.
    if (status_ != Status::kActive || cur_viewid_ != call_view ||
        cur_view_.primary != self_) {
      co_return;
    }
  }

  // "Create an empty pset. Then run the call."
  ProcContext ctx(*this, m.sub_aid, m.args);
  ctx.dead_subs_ = m.dead_subs;
  bool failed = false;
  std::string error;
  std::vector<std::uint8_t> result;
  try {
    result = co_await pit->second(ctx);
  } catch (const std::exception& e) {
    failed = true;
    error = e.what();
  }

  // The view may have changed while the procedure was suspended; effects
  // belong to the old view and the reply must not claim success in it.
  if (status_ != Status::kActive || cur_viewid_ != call_view ||
      cur_view_.primary != self_) {
    co_return;
  }

  // The attempt may have been declared dead (§3.6) while the procedure was
  // suspended: its effects must be discarded, not recorded.
  if (auto dit = dead_subs_by_txn_.find(m.sub_aid.aid);
      dit != dead_subs_by_txn_.end() &&
      dit->second.count(m.sub_aid.sub) != 0) {
    store_.AbortSub(m.sub_aid);
    call_dedup_.erase(m.call_seq);
    co_return;
  }

  if (failed) {
    reply.status = vr::ReplyStatus::kFailed;
    reply.result.assign(error.begin(), error.end());
    auto [cid, to] = latest();
    reply.call_id = cid;
    call_dedup_[m.call_seq] = DedupEntry{true, m.sub_aid.aid, reply};
    SendMsg(to, reply);
    co_return;
  }

  // "When the call finishes, add a <'completed-call', object-list, aid>
  //  record to the buffer ... Add a <mygroupid, new_vs> pair to the pset and
  //  send back a reply message containing the pset."
  std::vector<vr::ObjectEffect> effects;
  effects.reserve(ctx.effect_order_.size());
  for (const auto& [uid, mode] : ctx.effect_order_) {
    vr::ObjectEffect e;
    e.uid = uid;
    e.mode = mode;
    if (mode == vr::LockMode::kWrite) {
      e.tentative = store_.Read(uid, m.sub_aid.aid);
    }
    effects.push_back(std::move(e));
  }
  const Viewstamp vs = AddRecord(vr::EventRecord::CompletedCall(
      m.sub_aid, std::move(effects), m.call_seq, result, ctx.pset_));
  ++stats_.calls_executed;
  txn_activity_[m.sub_aid.aid] = host_.Now();

  // §6 ablation: synchronous replication of the completed-call record makes
  // the call itself survive any subsequent view change, at the price of a
  // force on every call's critical path.
  if (options_.force_calls_before_reply) {
    const bool ok = co_await Force(vs);
    if (!ok || status_ != Status::kActive || cur_viewid_ != call_view ||
        cur_view_.primary != self_) {
      co_return;  // could not make it durable; client treats as no reply
    }
  }

  reply.status = vr::ReplyStatus::kOk;
  reply.result = std::move(result);
  reply.pset = ctx.pset_;
  reply.pset.push_back(vr::PsetEntry{group_, vs, m.sub_aid.sub});
  auto [cid, to] = latest();
  reply.call_id = cid;
  call_dedup_[m.call_seq] = DedupEntry{true, m.sub_aid.aid, reply};
  SendMsg(to, reply);
}

// ---------------------------------------------------------------------------
// Two-phase commit, participant side (Fig. 3)
// ---------------------------------------------------------------------------

void Cohort::OnPrepare(const vr::PrepareMsg& m) {
  if (!IsActivePrimary()) {
    vr::PrepareReplyMsg r;
    r.aid = m.aid;
    r.from_group = group_;
    r.status = vr::PrepareStatus::kWrongPrimary;
    if (status_ == Status::kActive) {
      r.view_known = true;
      r.new_viewid = cur_viewid_;
      r.new_view = cur_view_;
    }
    SendMsg(m.reply_to, r);
    return;
  }
  tasks_.Spawn(RunPrepare(m));
}

host::Task<void> Cohort::RunPrepare(vr::PrepareMsg m) {
  vr::PrepareReplyMsg r;
  r.aid = m.aid;
  r.from_group = group_;

  // A racing abort (e.g. via query resolution) is final.
  if (outcomes_.Lookup(m.aid) == TxnOutcome::kAborted) {
    r.status = vr::PrepareStatus::kRefused;
    ++stats_.prepares_refused;
    SendMsg(m.reply_to, r);
    co_return;
  }

  // Duplicate transmission of a prepare we already answered. Re-reply
  // idempotently: re-running the compatibility check or the force against a
  // LATER view's history can spuriously refuse, and the refusal path's
  // LocalAbortTxn would destroy a prepared — possibly already committed —
  // transaction, releasing its locks to concurrent readers.
  if (prepared_.count(m.aid) != 0 ||
      outcomes_.Lookup(m.aid) == TxnOutcome::kCommitted) {
    r.status = vr::PrepareStatus::kPrepared;
    r.read_only = !store_.HasWriteLocks(m.aid);
    // The originally forced watermark is not retained; the buffer tail
    // covers it (everything durable here is <= last_ts).
    r.prepared_vs =
        Viewstamp{cur_viewid_, buffer_.active() ? buffer_.last_ts() : 0};
    ++stats_.duplicate_prepares_answered;
    SendMsg(m.reply_to, r);
    co_return;
  }

  // Duplicates racing with an in-flight prepare (the force below suspends):
  // drop them. The in-flight attempt will reply; the coordinator retries on
  // silence. Running two prepares concurrently would let one attempt's
  // refusal abort the other attempt's successful prepare.
  if (!preparing_.insert(m.aid).second) co_return;
  struct PreparingGuard {
    std::set<Aid>* set;
    Aid aid;
    ~PreparingGuard() { set->erase(aid); }
  } preparing_guard{&preparing_, m.aid};

  // "If compatible(pset, history, mygroupid) ... Otherwise ... refus[e] the
  //  prepare and abort the transaction."
  if (!vr::Compatible(m.pset, group_, history_)) {
    r.status = vr::PrepareStatus::kRefused;
    ++stats_.prepares_refused;
    SendMsg(m.reply_to, r);
    LocalAbortTxn(m.aid);
    co_return;
  }

  // §3.6: tentative versions from call attempts that are not in the pset
  // belong to aborted subactions and must never be installed.
  std::set<std::uint32_t> live_subs;
  for (const vr::PsetEntry& e : m.pset) {
    if (e.groupid == group_) live_subs.insert(e.sub);
  }
  store_.DiscardSubsExcept(m.aid, live_subs);

  const bool read_only = !store_.HasWriteLocks(m.aid);

  // "perform a force_to(vs_max(pset, mygroupid))" — §3.7 explains why this
  // is required even for read-only participants (read locks must be known to
  // survive a view change); force_read_only_prepare=false is the unsafe
  // ablation demonstrating that.
  const auto vsm = vr::VsMax(m.pset, group_);
  bool force_ok = true;
  if (vsm && (options_.force_read_only_prepare || !read_only)) {
    force_ok = co_await Force(*vsm);
  }
  if (!force_ok || !IsActivePrimary()) {
    r.status = vr::PrepareStatus::kRefused;
    ++stats_.prepares_refused;
    SendMsg(m.reply_to, r);
    LocalAbortTxn(m.aid);
    co_return;
  }

  // Fused pipeline (DESIGN.md §13): while the force above was suspended, a
  // commit decision may already have been applied here — a query resolution,
  // or an overlapped fan-out racing a retransmitted prepare. The decision is
  // final and system-wide: answer prepared idempotently and do NOT re-insert
  // the transaction into prepared_ or touch its state — CommitLocally
  // already installed the versions and released the locks, and a re-insert
  // would resurrect a dead blocked-txn query target.
  if (outcomes_.Lookup(m.aid) == TxnOutcome::kCommitted) {
    ++stats_.prepares_overtaken_by_commit;
    r.status = vr::PrepareStatus::kPrepared;
    r.read_only = read_only;
    r.prepared_vs = vsm ? *vsm : Viewstamp{};
    SendMsg(m.reply_to, r);
    // A duplicate of the decision may have been stashed mid-force; running
    // it re-sends the done ack the coordinator is waiting for.
    DrainPendingCommit(m.aid);
    co_return;
  }

  // "release read locks held by the transaction, and then reply prepared."
  store_.ReleaseReadLocks(m.aid);
  r.status = vr::PrepareStatus::kPrepared;
  r.read_only = read_only;
  // Piggyback the forced record identity on the ack (one message carries
  // both the prepared answer and the completed-call record's viewstamp).
  r.prepared_vs = vsm ? *vsm : Viewstamp{};
  ++stats_.prepares_ok;
  txn_activity_[m.aid] = host_.Now();
  if (read_only) {
    // "If the transaction is read-only, add a <'committed', aid> record."
    r.prepared_vs = AddRecord(vr::EventRecord::Committed(m.aid));
    store_.Commit(m.aid);  // read-only: installs nothing, releases locks
  } else {
    prepared_.insert(m.aid);
    // §3.6 piggyback: the pset names every sibling participant. Remember
    // them as fallback query targets — any sibling that applied the commit
    // decision can answer a §3.4 query authoritatively even when the whole
    // coordinator group is unreachable.
    std::vector<GroupId> siblings;
    for (const vr::PsetEntry& e : m.pset) {
      if (e.groupid == group_ || e.groupid == m.aid.coordinator_group) {
        continue;
      }
      if (std::find(siblings.begin(), siblings.end(), e.groupid) ==
          siblings.end()) {
        siblings.push_back(e.groupid);
      }
    }
    prepared_siblings_[m.aid] = std::move(siblings);
  }
  SendMsg(m.reply_to, r);
  // A commit decision that arrived mid-force was stashed rather than run
  // concurrently with this prepare; apply it now that the prepare resolved.
  DrainPendingCommit(m.aid);
}

void Cohort::PruneDedup(Aid aid) {
  std::erase_if(call_dedup_, [&](const auto& kv) {
    return kv.second.completed && kv.second.aid == aid;
  });
}

std::vector<std::string> Cohort::CommitLocally(Aid aid) {
  std::vector<std::string> installed = store_.Commit(aid);
  outcomes_.RecordCommitted(aid);
  prepared_.erase(aid);
  prepared_siblings_.erase(aid);
  pending_commits_.erase(aid);
  txn_activity_.erase(aid);
  dead_subs_by_txn_.erase(aid);
  PruneDedup(aid);
  ++stats_.commits_applied;
  return installed;
}

void Cohort::OnCommit(const vr::CommitMsg& m) {
  if (!IsActivePrimary()) {
    // Answer every decision the frame carried (body + piggybacked extras):
    // the coordinator has an independent waiter per transaction.
    auto reject = [&](Aid aid) {
      vr::CommitDoneMsg r;
      r.aid = aid;
      r.from_group = group_;
      r.wrong_primary = true;
      if (status_ == Status::kActive) {
        r.view_known = true;
        r.new_viewid = cur_viewid_;
        r.new_view = cur_view_;
      }
      SendMsg(m.reply_to, r);
    };
    reject(m.aid);
    for (const vr::CommitExtra& e : m.extras) reject(e.aid);
    return;
  }
  // Unpack piggybacked sibling decisions: each is dispatched exactly as if
  // it had arrived in its own CommitMsg and acked with its own done.
  vr::CommitMsg body = m;
  body.extras.clear();
  DispatchCommit(body);
  for (const vr::CommitExtra& e : m.extras) {
    vr::CommitMsg one;
    one.group = m.group;
    one.aid = e.aid;
    one.reply_to = m.reply_to;
    one.decision_vs = e.decision_vs;
    one.fused = e.fused;
    DispatchCommit(one);
  }
}

void Cohort::DispatchCommit(const vr::CommitMsg& m) {
  // A (re)transmitted prepare for this transaction is mid-force. With the
  // fused fan-out this interleaving is routine — the decision can reach us
  // while a duplicate prepare is still suspended — so sequence the commit
  // behind the prepare (DrainPendingCommit at its resolution) instead of
  // letting two coroutines race over the transaction's bookkeeping.
  if (preparing_.count(m.aid) != 0) {
    ++stats_.commits_stashed_during_prepare;
    pending_commits_[m.aid] = m;  // latest transmission wins
    return;
  }
  tasks_.Spawn(RunCommit(m));
}

void Cohort::DrainPendingCommit(Aid aid) {
  auto it = pending_commits_.find(aid);
  if (it == pending_commits_.end()) return;
  vr::CommitMsg m = std::move(it->second);
  pending_commits_.erase(it);
  if (IsActivePrimary()) tasks_.Spawn(RunCommit(std::move(m)));
  // Not primary anymore: drop it — the coordinator's CommitOne retries at
  // the new primary, and §3.4 queries resolve any transaction it misses.
}

host::Task<void> Cohort::RunCommit(vr::CommitMsg m) {
  // "Release locks and install versions held by the transaction. Add a
  //  <'committed', aid> record to the buffer, do a force_to(new_vs), and
  //  send a done message to the coordinator."
  if (outcomes_.Lookup(m.aid) != TxnOutcome::kCommitted) {
    const std::vector<std::string> installed = CommitLocally(m.aid);
    const Viewstamp vs = AddRecord(vr::EventRecord::Committed(m.aid));
    NoteInstalled(installed, vs);
    const bool ok = co_await Force(vs);
    if (!ok || !IsActivePrimary()) co_return;  // view change resolves it
  } else {
    // Already committed here — via query resolution, or a duplicate of a
    // commit whose force is still in flight. The done tells the coordinator
    // it may write the 'done' record and FORGET the outcome, so it must not
    // be sent until our committed record is stable: otherwise a view change
    // can drop the unstable record, the new primary's blocked-txn query
    // finds the outcome presumed aborted, and a committed transaction is
    // rolled back. Forcing the buffer tail covers the committed record
    // wherever it sits.
    const bool ok = co_await Force(Viewstamp{cur_viewid_, buffer_.last_ts()});
    if (!ok || !IsActivePrimary()) co_return;  // view change resolves it
  }
  vr::CommitDoneMsg done;
  done.aid = m.aid;
  done.from_group = group_;
  SendMsg(m.reply_to, done);
}

void Cohort::LocalAbortTxn(Aid aid) {
  if (outcomes_.Lookup(aid) == TxnOutcome::kAborted) return;
  // The commit decision is final and system-wide; a late abort (stale
  // message, stale query answer) must never roll it back.
  if (outcomes_.Lookup(aid) == TxnOutcome::kCommitted) return;
  store_.Abort(aid);
  prepared_.erase(aid);
  prepared_siblings_.erase(aid);
  pending_commits_.erase(aid);
  txn_activity_.erase(aid);
  dead_subs_by_txn_.erase(aid);
  PruneDedup(aid);
  ++stats_.aborts_applied;
  if (IsActivePrimary() && buffer_.active()) {
    AddRecord(vr::EventRecord::Aborted(aid));
  } else {
    outcomes_.RecordAborted(aid);
  }
}

void Cohort::OnAbort(const vr::AbortMsg& m) {
  // "Discard locks and versions held by the aborted transaction and add an
  //  <'aborted', aid> record to the buffer."
  if (!IsActivePrimary()) return;  // lost aborts are recovered via queries
  LocalAbortTxn(m.aid);
}

void Cohort::OnAbortSub(const vr::AbortSubMsg& m) {
  if (!IsActivePrimary()) return;
  if (!dead_subs_by_txn_[m.sub_aid.aid].insert(m.sub_aid.sub).second) return;
  store_.AbortSub(m.sub_aid);
  AddRecord(vr::EventRecord::AbortedSub(m.sub_aid));
}

// ---------------------------------------------------------------------------
// Blocked-transaction resolution via queries (§3.4)
// ---------------------------------------------------------------------------

void Cohort::ArmQueryTimer() {
  host_.timers().Cancel(query_timer_);
  query_timer_ = host_.timers().After(options_.query_interval,
                                        [this] { QueryBlockedTxns(); });
}

void Cohort::QueryBlockedTxns() {
  ArmQueryTimer();
  if (!IsActivePrimary()) return;
  SweepExternalTxns();
  std::vector<Aid> blocked;
  for (const Aid& aid : prepared_) {
    if (querying_.count(aid) == 0) blocked.push_back(aid);
  }
  // The idle-transaction janitor (§3.4): abort messages are best-effort, so
  // a transaction whose client vanished (or doomed itself after a no-reply)
  // can leave locks behind. Any lock-holding transaction with no activity
  // for idle_txn_timeout gets queried at its coordinator group.
  const host::Time now = host_.Now();
  for (const Aid& aid : store_.ActiveTxns()) {
    if (aid.coordinator_group == group_ && active_txns_.count(aid) != 0) {
      continue;  // our own in-flight transaction
    }
    if (querying_.count(aid) != 0 || prepared_.count(aid) != 0) continue;
    auto it = txn_activity_.find(aid);
    if (it == txn_activity_.end()) {
      // First sighting (e.g. inherited through a view change): start the
      // idle clock now.
      txn_activity_[aid] = now;
      continue;
    }
    if (now - it->second >= options_.idle_txn_timeout) blocked.push_back(aid);
  }
  for (const Aid& aid : blocked) {
    querying_.insert(aid);
    tasks_.Spawn(ResolveBlockedTxn(aid));
  }
}

host::Task<void> Cohort::ResolveBlockedTxn(Aid aid) {
  // The aid embeds the coordinator's groupid (§3.4), so we know whom to ask;
  // any cohort of that group that knows the outcome may answer. If the whole
  // coordinator group is unreachable (partitioned away mid-decision), fall
  // back to the sibling participants the prepare's pset named (§3.6): a
  // sibling that already applied the decision answers authoritatively from
  // its outcome table, so this group need not stay wedged until the
  // partition heals.
  bool resolved = false;
  const std::vector<Mid>* config = directory_.Lookup(aid.coordinator_group);
  if (config != nullptr) {
    for (Mid target : *config) {
      if (outcomes_.Lookup(aid) != TxnOutcome::kUnknown) {  // resolved
        resolved = true;
        break;
      }
      ++stats_.queries_sent;
      const std::uint64_t corr = NextCorrId();
      query_corr_[aid] = corr;
      vr::QueryMsg q;
      q.aid = aid;
      q.reply_to = self_;
      q.reply_group = group_;
      SendMsg(target, q);
      auto r = co_await query_waiters_.Await(corr, options_.probe_timeout);
      if (auto it = query_corr_.find(aid);
          it != query_corr_.end() && it->second == corr) {
        query_corr_.erase(it);
      }
      if (!r) continue;
      if (r->outcome == TxnOutcome::kCommitted) {
        ++stats_.queries_resolved;
        resolved = true;
        // The coordinator's commit decision is final and system-wide; our
        // volatile prepared_ set may have been lost in a view change while
        // the transaction's effects survived in the gstate, so install
        // unconditionally.
        if (IsActivePrimary()) {
          const std::vector<std::string> installed = CommitLocally(aid);
          const Viewstamp vs = AddRecord(vr::EventRecord::Committed(aid));
          NoteInstalled(installed, vs);
          co_await Force(vs);
        }
        break;
      }
      if (r->outcome == TxnOutcome::kAborted) {
        ++stats_.queries_resolved;
        resolved = true;
        LocalAbortTxn(aid);
        break;
      }
      if (r->outcome == TxnOutcome::kActive) {  // still deciding
        resolved = true;
        break;
      }
    }
  }
  if (!resolved && outcomes_.Lookup(aid) == TxnOutcome::kUnknown) {
    std::vector<GroupId> siblings;
    if (auto it = prepared_siblings_.find(aid);
        it != prepared_siblings_.end()) {
      siblings = it->second;
    }
    for (GroupId g : siblings) {
      if (resolved) break;
      const std::vector<Mid>* sibs = directory_.Lookup(g);
      if (sibs == nullptr) continue;
      for (Mid target : *sibs) {
        if (outcomes_.Lookup(aid) != TxnOutcome::kUnknown) {
          resolved = true;
          break;
        }
        ++stats_.queries_sent;
        const std::uint64_t corr = NextCorrId();
        query_corr_[aid] = corr;
        vr::QueryMsg q;
        q.aid = aid;
        q.reply_to = self_;
        q.reply_group = group_;
        SendMsg(target, q);
        auto r = co_await query_waiters_.Await(corr, options_.probe_timeout);
        if (auto it = query_corr_.find(aid);
            it != query_corr_.end() && it->second == corr) {
          query_corr_.erase(it);
        }
        if (!r) continue;
        // A sibling only reports outcomes it has durably recorded; kActive
        // and kUnknown from it mean nothing authoritative — keep asking.
        if (r->outcome == TxnOutcome::kCommitted) {
          ++stats_.queries_resolved;
          ++stats_.sibling_query_resolutions;
          resolved = true;
          if (IsActivePrimary()) {
            const std::vector<std::string> installed = CommitLocally(aid);
            const Viewstamp vs = AddRecord(vr::EventRecord::Committed(aid));
            NoteInstalled(installed, vs);
            co_await Force(vs);
          }
          break;
        }
        if (r->outcome == TxnOutcome::kAborted) {
          ++stats_.queries_resolved;
          ++stats_.sibling_query_resolutions;
          resolved = true;
          LocalAbortTxn(aid);
          break;
        }
      }
    }
  }
  querying_.erase(aid);
}

// ---------------------------------------------------------------------------
// Backup read leases (DESIGN.md §14)
// ---------------------------------------------------------------------------

void Cohort::SendLeaseGrant(Mid backup, std::uint64_t stable_ts) {
  if (!IsActivePrimary() || !options_.backup_reads) return;
  vr::LeaseGrantMsg m;
  m.group = group_;
  m.viewid = cur_viewid_;
  m.from = self_;
  m.seq = ++lease_grant_seq_;
  m.stable_ts = stable_ts;
  m.duration = static_cast<std::uint64_t>(options_.read_lease_duration);
  SendMsg(backup, m);
}

void Cohort::OnLeaseGrant(const vr::LeaseGrantMsg& m) {
  // Only an active backup of the current view takes grants, and only from
  // its own primary. A mid-install cohort's gstate is doomed (crashed-
  // equivalent) and must not re-arm a lease.
  if (!options_.backup_reads || status_ != Status::kActive ||
      installing_snapshot_ || m.viewid != cur_viewid_ ||
      m.from != cur_view_.primary || cur_view_.primary == self_) {
    return;
  }
  // Reordered grant frames: the sequence is monotone per primary, so a
  // stale grant must never rewind the expiry or the stable watermark.
  if (lease_viewid_ == cur_viewid_ && m.seq <= lease_seq_) return;
  lease_viewid_ = m.viewid;
  lease_seq_ = m.seq;
  lease_expires_at_ = host_.Now() + static_cast<host::Duration>(m.duration);
  lease_stable_ts_ = m.stable_ts;
  ++stats_.lease_grants_received;
}

void Cohort::RevokeLease() {
  lease_viewid_ = ViewId{};
  lease_seq_ = 0;
  lease_expires_at_ = 0;
  lease_stable_ts_ = 0;
}

Viewstamp Cohort::EffectiveCommitVs(const std::string& uid) const {
  auto it = object_commit_vs_.find(uid);
  if (it != object_commit_vs_.end()) return std::max(it->second, commit_vs_floor_);
  return commit_vs_floor_;
}

void Cohort::NoteInstalled(const std::vector<std::string>& uids,
                           Viewstamp vs) {
  if (!options_.backup_reads || uids.empty()) return;
  for (const std::string& uid : uids) {
    Viewstamp& slot = object_commit_vs_[uid];
    slot = std::max(slot, vs);
  }
}

void Cohort::ResetCommitStamps(Viewstamp vs) {
  if (!options_.backup_reads) return;
  // Wholesale state replacement: per-object provenance is gone, so every
  // object is treated as committed at the restore point. Reads at a backup
  // then wait until the stable watermark reaches it (moments, in practice).
  object_commit_vs_.clear();
  commit_vs_floor_ = vs;
}

void Cohort::OnBackupRead(const vr::BackupReadMsg& m) {
  tasks_.Spawn(RunBackupRead(m));
}

host::Task<void> Cohort::RunBackupRead(vr::BackupReadMsg m) {
  // Reads charge the same serial CPU as calls — the whole point of lease
  // reads is moving this cost off the primary, so it must be modeled.
  if (options_.call_service_time > 0) {
    const host::Time now = host_.Now();
    const host::Time start = std::max(now, cpu_free_);
    cpu_free_ = start + options_.call_service_time;
    co_await host::Sleep(host_.timers(), cpu_free_ - now);
  }
  // Admission is evaluated at serve time (post-queue): the view or the
  // lease may have moved while the read waited for the CPU.
  vr::BackupReadReplyMsg r;
  r.corr = m.corr;
  r.status = vr::ReadStatus::kWrongLease;
  const bool is_primary = IsActivePrimary();
  bool admitted = false;
  std::uint64_t bound = 0;  // backup-side stable read bound (same-view ts)
  if (is_primary) {
    // The primary serves its own committed state unconditionally — it IS
    // the definition of committed here. Ungated by backup_reads so that a
    // replicated group always answers reads somewhere.
    admitted = true;
  } else if (options_.backup_reads && status_ == Status::kActive &&
             !installing_snapshot_ && cur_view_.primary != self_ &&
             lease_viewid_ == cur_viewid_ &&
             host_.Now() < lease_expires_at_) {
    // Serve only what is (a) applied here and (b) known replicated to a
    // sub-majority as of the lease grant: such state survives every later
    // view formation, so a value served under the lease can never be
    // unwound by a view change (one-copy serializability across views).
    admitted = true;
    bound = std::min(applied_ts_, lease_stable_ts_);
  }
  // Session monotonicity: refuse if the client has observed state this
  // cohort cannot prove it covers. Unlike a missing lease, these refusals
  // are transient (the watermark advances with the next renewal), so they
  // are reported as kTooNew and the client keeps the member in rotation.
  if (admitted) {
    if (m.horizon.view > cur_viewid_) {
      admitted = false;  // we are behind a view the client already saw
      r.status = vr::ReadStatus::kTooNew;
    } else if (!is_primary && m.horizon.view == cur_viewid_ &&
               m.horizon.ts > bound) {
      admitted = false;  // client saw past our stable prefix
      r.status = vr::ReadStatus::kTooNew;
    }
  }
  if (admitted && !is_primary) {
    // Per-object bound: the base version here may have been installed past
    // the lease's stable watermark (applied but not yet sub-majority-acked).
    const Viewstamp ovs = EffectiveCommitVs(m.uid);
    if ((ovs.view == cur_viewid_ && ovs.ts > bound) ||
        ovs.view > cur_viewid_) {
      admitted = false;
      r.status = vr::ReadStatus::kTooNew;
    }
  }
  if (!admitted) {
    ++stats_.reads_refused;
    // Bounce with a primary hint (mirrors the shard router's wrong-shard
    // redirect): the client retries there without a directory round.
    if (status_ == Status::kActive) r.primary_hint = cur_view_.primary;
    SendMsg(m.reply_to, r);
    co_return;
  }
  const Viewstamp served_vs = EffectiveCommitVs(m.uid);
  auto val = store_.ReadCommitted(m.uid);
  if (!val) {
    r.status = vr::ReadStatus::kNotFound;
  } else {
    r.status = vr::ReadStatus::kOk;
    r.value.assign(val->begin(), val->end());
  }
  r.served_vs = served_vs;
  ++stats_.reads_served;
  if (!is_primary) ++stats_.backup_reads_served;
  SendMsg(m.reply_to, r);
}

}  // namespace vsr::core
