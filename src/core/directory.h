// The location server (§3): maps groupids to configurations.
//
// The paper assumes "a highly-available location server that maps groupids
// to configurations" and notes it defines the limit of availability
// (footnote 2). Following that assumption we model it as an always-available
// in-process registry; cohorts then probe configuration members to discover
// the current primary and viewid, exactly as §3 describes, and cache the
// answer.
#pragma once

#include <map>
#include <vector>

#include "vr/types.h"

namespace vsr::core {

class Directory {
 public:
  void RegisterGroup(vr::GroupId group, std::vector<vr::Mid> configuration) {
    groups_[group] = std::move(configuration);
  }

  // nullptr if the group is unknown.
  const std::vector<vr::Mid>* Lookup(vr::GroupId group) const {
    auto it = groups_.find(group);
    if (it == groups_.end()) return nullptr;
    return &it->second;
  }

  std::size_t group_count() const { return groups_.size(); }

 private:
  std::map<vr::GroupId, std::vector<vr::Mid>> groups_;
};

}  // namespace vsr::core
