// The location server (§3), grown into a placement service.
//
// The paper assumes "a highly-available location server that maps groupids
// to configurations" and notes it defines the limit of availability
// (footnote 2). Following that assumption we model it as an always-available
// in-process registry; cohorts then probe configuration members to discover
// the current primary and viewid, exactly as §3 describes, and cache the
// answer.
//
// Two tables live here (DESIGN.md §11):
//
//   * groupid -> configuration, with a per-entry epoch. Registration is
//     write-once: re-registering a group with a DIFFERENT configuration is a
//     logic error unless done through ReRegisterGroup, which bumps the epoch
//     so stale cached configurations become detectable instead of silently
//     wrong.
//
//   * key-range -> owning group (the shard map): a sorted list of
//     half-open lexicographic ranges [lo, hi) covering the whole key space,
//     stamped with a single placement epoch that increases on every routing
//     change. Clients (ShardRouter) cache a copy and revalidate against the
//     epoch when a call is rejected with a wrong-shard error. A range being
//     rebalanced moves through kMigrating (old owner still serves while the
//     bulk copy streams) and kHandoff (old owner rejects, new owner not yet
//     authoritative) before the final epoch bump flips ownership atomically.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "vr/types.h"

namespace vsr::core {

// Lifecycle of one shard range during a live rebalance (DESIGN.md §11.3).
enum class ShardState : std::uint8_t {
  kSettled = 0,    // one authoritative owner
  kMigrating = 1,  // bulk copy in flight; old owner still serves traffic
  kHandoff = 2,    // old owner rejects range traffic; move about to commit
};

// One half-open key range [lo, hi); hi == "" means +infinity. Keys compare
// lexicographically (workloads use fixed-width names, e.g. "a017").
struct ShardRange {
  std::string lo;
  std::string hi;
  vr::GroupId owner = 0;
  vr::GroupId moving_to = 0;  // valid while state != kSettled
  ShardState state = ShardState::kSettled;

  bool Contains(const std::string& key) const {
    return lo <= key && (hi.empty() || key < hi);
  }
  bool operator==(const ShardRange&) const = default;
};

class Directory {
 public:
  // -- group registry ------------------------------------------------------

  // Registers a group's configuration. Idempotent for an identical
  // configuration; a DIFFERENT configuration under the same groupid throws —
  // silently clobbering the entry would invalidate every cached copy with no
  // way to detect it. Use ReRegisterGroup for a deliberate change.
  void RegisterGroup(vr::GroupId group, std::vector<vr::Mid> configuration) {
    auto it = groups_.find(group);
    if (it != groups_.end()) {
      if (it->second.config != configuration) {
        throw std::logic_error(
            "Directory::RegisterGroup: group " + std::to_string(group) +
            " already registered with a different configuration; use "
            "ReRegisterGroup to replace it");
      }
      return;  // same configuration: nothing changed, epoch keeps
    }
    groups_.emplace(group, GroupEntry{std::move(configuration), 1});
  }

  // Deliberate configuration replacement: bumps the entry's epoch so cached
  // copies (keyed by epoch) know they are stale.
  std::uint64_t ReRegisterGroup(vr::GroupId group,
                                std::vector<vr::Mid> configuration) {
    auto it = groups_.find(group);
    if (it == groups_.end()) {
      groups_.emplace(group, GroupEntry{std::move(configuration), 1});
      return 1;
    }
    it->second.config = std::move(configuration);
    return ++it->second.epoch;
  }

  // nullptr if the group is unknown.
  const std::vector<vr::Mid>* Lookup(vr::GroupId group) const {
    auto it = groups_.find(group);
    if (it == groups_.end()) return nullptr;
    return &it->second.config;
  }

  // 0 if the group is unknown.
  std::uint64_t GroupEpoch(vr::GroupId group) const {
    auto it = groups_.find(group);
    return it == groups_.end() ? 0 : it->second.epoch;
  }

  std::size_t group_count() const { return groups_.size(); }

  std::vector<vr::GroupId> Groups() const {
    std::vector<vr::GroupId> out;
    out.reserve(groups_.size());
    for (const auto& [g, entry] : groups_) out.push_back(g);
    return out;
  }

  // -- shard placement -----------------------------------------------------

  // Assigns [lo, hi) to `owner`. Ranges must be appended in key order and
  // tile the key space: the first call must start at "", each subsequent lo
  // must equal the previous hi, and only the final range may be unbounded
  // (hi == ""). Throws on a violation. Each call bumps the placement epoch.
  std::uint64_t AssignRange(std::string lo, std::string hi,
                            vr::GroupId owner) {
    if (Lookup(owner) == nullptr) {
      throw std::logic_error("AssignRange: unknown owner group " +
                             std::to_string(owner));
    }
    if (ranges_.empty()) {
      if (!lo.empty()) {
        throw std::logic_error("AssignRange: first range must start at \"\"");
      }
    } else {
      const ShardRange& last = ranges_.back();
      if (last.hi.empty() || last.hi != lo) {
        throw std::logic_error("AssignRange: ranges must tile the key space");
      }
    }
    if (!hi.empty() && hi <= lo) {
      throw std::logic_error("AssignRange: empty range");
    }
    ranges_.push_back(ShardRange{std::move(lo), std::move(hi), owner, 0,
                                 ShardState::kSettled});
    return ++placement_epoch_;
  }

  // The range owning `key`, or nullptr when no placement covers it (no
  // ranges assigned, or the table does not reach the key).
  const ShardRange* Route(const std::string& key) const {
    for (const ShardRange& r : ranges_) {
      if (r.Contains(key)) return &r;
    }
    return nullptr;
  }

  // -- live rebalance (DESIGN.md §11.3) ------------------------------------
  //
  // Phase transitions each bump the placement epoch; routing flips
  // atomically at CommitMove. [lo, hi) must lie inside a single settled
  // range for BeginMove (which splits it as needed) and match an existing
  // range exactly afterwards.

  // Marks [lo, hi) as migrating from its current owner to `to`. The owner
  // keeps serving the range while the bulk copy streams.
  std::uint64_t BeginMove(const std::string& lo, const std::string& hi,
                          vr::GroupId to) {
    if (Lookup(to) == nullptr) {
      throw std::logic_error("BeginMove: unknown target group " +
                             std::to_string(to));
    }
    const std::size_t i = SplitOut(lo, hi);
    ShardRange& r = ranges_[i];
    if (r.state != ShardState::kSettled) {
      throw std::logic_error("BeginMove: range already moving");
    }
    if (r.owner == to) throw std::logic_error("BeginMove: already owned");
    r.state = ShardState::kMigrating;
    r.moving_to = to;
    return ++placement_epoch_;
  }

  // Opens the handoff window: the old owner stops serving [lo, hi) (its
  // procs reject with a wrong-shard error naming the new epoch) so in-flight
  // transactions drain and the final delta copy can be taken.
  std::uint64_t BeginHandoff(const std::string& lo, const std::string& hi) {
    ShardRange& r = Exact(lo, hi);
    if (r.state != ShardState::kMigrating) {
      throw std::logic_error("BeginHandoff: range is not migrating");
    }
    r.state = ShardState::kHandoff;
    return ++placement_epoch_;
  }

  // Atomically flips routing: the new group owns [lo, hi) from this epoch
  // on. The old owner may then garbage-collect its copy (kShardDrop).
  std::uint64_t CommitMove(const std::string& lo, const std::string& hi) {
    ShardRange& r = Exact(lo, hi);
    if (r.state != ShardState::kHandoff) {
      throw std::logic_error("CommitMove: range is not in handoff");
    }
    r.owner = r.moving_to;
    r.moving_to = 0;
    r.state = ShardState::kSettled;
    return ++placement_epoch_;
  }

  // Aborts a move before CommitMove: routing reverts to the old owner.
  std::uint64_t CancelMove(const std::string& lo, const std::string& hi) {
    ShardRange& r = Exact(lo, hi);
    if (r.state == ShardState::kSettled) {
      throw std::logic_error("CancelMove: range is not moving");
    }
    r.moving_to = 0;
    r.state = ShardState::kSettled;
    return ++placement_epoch_;
  }

  // Monotone version of the routing table; bumped by every placement change.
  // Clients cache {epoch, ranges} and revalidate on wrong-shard rejections.
  std::uint64_t placement_epoch() const { return placement_epoch_; }
  const std::vector<ShardRange>& ranges() const { return ranges_; }

 private:
  struct GroupEntry {
    std::vector<vr::Mid> config;
    std::uint64_t epoch = 1;
  };

  ShardRange& Exact(const std::string& lo, const std::string& hi) {
    for (ShardRange& r : ranges_) {
      if (r.lo == lo && r.hi == hi) return r;
    }
    throw std::logic_error("Directory: no range [" + lo + ", " + hi + ")");
  }

  // Ensures [lo, hi) exists as its own range, splitting the settled range
  // containing it; returns its index.
  std::size_t SplitOut(const std::string& lo, const std::string& hi) {
    for (std::size_t i = 0; i < ranges_.size(); ++i) {
      ShardRange& r = ranges_[i];
      if (r.lo == lo && r.hi == hi) return i;
      const bool covers_lo = r.Contains(lo);
      const bool covers_hi =
          hi.empty() ? r.hi.empty() : (r.hi.empty() || hi <= r.hi);
      if (!covers_lo || !covers_hi) continue;
      if (r.state != ShardState::kSettled) {
        throw std::logic_error("SplitOut: enclosing range is moving");
      }
      // Split into [r.lo, lo) [lo, hi) [hi, r.hi); drop empty outer pieces.
      std::vector<ShardRange> out;
      out.reserve(ranges_.size() + 2);
      for (std::size_t j = 0; j < i; ++j) out.push_back(ranges_[j]);
      if (r.lo < lo) {
        out.push_back(ShardRange{r.lo, lo, r.owner, 0, ShardState::kSettled});
      }
      const std::size_t idx = out.size();
      out.push_back(ShardRange{lo, hi, r.owner, 0, ShardState::kSettled});
      if (!hi.empty() && (r.hi.empty() || hi < r.hi)) {
        out.push_back(ShardRange{hi, r.hi, r.owner, 0, ShardState::kSettled});
      }
      for (std::size_t j = i + 1; j < ranges_.size(); ++j) {
        out.push_back(ranges_[j]);
      }
      ranges_ = std::move(out);
      return idx;
    }
    throw std::logic_error("SplitOut: [" + lo + ", " + hi +
                           ") not inside any range");
  }

  std::map<vr::GroupId, GroupEntry> groups_;
  std::vector<ShardRange> ranges_;  // sorted by lo, tiling the key space
  std::uint64_t placement_epoch_ = 0;
};

}  // namespace vsr::core
