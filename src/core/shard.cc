// Shard rebalancing (DESIGN.md §11): the cross-group bulk-move primitive.
//
// The §9 snapshot machinery already solves chunked, resumable, checksummed
// state transfer between a serving primary and a receiver; a shard move
// reuses it verbatim with the receiver in ANOTHER group. The pulling
// primary sends a kShardPull to the range's current owner; the owner
// serializes the committed base versions of [lo, hi) and streams them as
// ordinary SnapshotChunkMsgs (stamped with the SOURCE group's id and
// viewid, which is how the puller tells them from its own intra-group
// transfers). The assembled image is replicated inside the pulling group as
// a kShardInstall event record and forced to a sub-majority before the pull
// reports success, so the new owner's whole cohort — including any future
// primary — has the range before routing flips.
//
// Locks, waiters, and tentative versions never cross groups: the rebalance
// protocol drains them at the old owner (the handoff window) and takes a
// final delta pull, so an image only ever carries committed bases.
#include "core/cohort.h"

namespace vsr::core {

GroupId ProcContext::group() const { return cohort_.group(); }

// ---------------------------------------------------------------------------
// Source side
// ---------------------------------------------------------------------------

void Cohort::OnShardPull(const vr::ShardPullMsg& m) {
  if (!IsActivePrimary() || !buffer_.active()) return;
  wire::Writer w;
  w.String(m.lo);
  w.String(m.hi);
  w.U64(group_);
  store_.SnapshotRange(w, m.lo, m.hi);
  ++stats_.shard_pulls_served;
  // Identified by our newest buffered viewstamp: a later re-pull of the
  // same range (the settle pass) carries a newer vs and replaces any
  // transfer still in flight to the same puller.
  const Viewstamp vs{cur_viewid_, buffer_.last_ts()};
  snap_server_.Serve(m.from, vs,
                     std::make_shared<const std::vector<std::uint8_t>>(
                         w.Take()));
  Trace("serving shard [%s, %s) to g%llu/%u", m.lo.c_str(), m.hi.c_str(),
        static_cast<unsigned long long>(m.from_group), m.from);
}

// ---------------------------------------------------------------------------
// Puller side
// ---------------------------------------------------------------------------

void Cohort::PullShard(GroupId from_group, std::string lo, std::string hi,
                       std::function<void(bool)> done) {
  if (!IsActivePrimary()) {
    if (done) done(false);
    return;
  }
  ResetShardPull(false);  // supersede any previous pull
  shard_pull_ = std::make_unique<ShardPull>();
  shard_pull_->id = next_shard_pull_id_++;
  shard_pull_->from_group = from_group;
  shard_pull_->lo = std::move(lo);
  shard_pull_->hi = std::move(hi);
  shard_pull_->done = std::move(done);
  tasks_.Spawn(SendShardPull());
}

host::Task<void> Cohort::SendShardPull() {
  if (!shard_pull_) co_return;
  const std::uint64_t id = shard_pull_->id;
  // Resolve the source group's current primary (probing if the cache is
  // cold/stale) — the pull must reach a primary to be served.
  auto entry = co_await CacheLookup(shard_pull_->from_group);
  if (!shard_pull_ || shard_pull_->id != id) co_return;
  if (!IsActivePrimary()) {
    ResetShardPull(false);
    co_return;
  }
  if (entry) {
    vr::ShardPullMsg m;
    m.group = shard_pull_->from_group;
    m.from = self_;
    m.from_group = group_;
    m.lo = shard_pull_->lo;
    m.hi = shard_pull_->hi;
    SendMsg(entry->view.primary, m);
  }
  // Retry net: if the transfer has not completed by then (source primary
  // crashed, stood down, or the request was lost), re-resolve and re-send.
  // A completed transfer resets shard_pull_, which voids the timer via id.
  shard_pull_->retry_timer =
      host_.timers().After(options_.shard_pull_retry, [this, id] {
        if (!shard_pull_ || shard_pull_->id != id) return;
        shard_pull_->retry_timer = host::kNoTimer;
        CacheInvalidate(shard_pull_->from_group);
        shard_pull_->sink.Reset();
        tasks_.Spawn(SendShardPull());
      });
}

void Cohort::OnShardChunk(const vr::SnapshotChunkMsg& m) {
  if (!shard_pull_ || m.group != shard_pull_->from_group ||
      !IsActivePrimary()) {
    return;
  }
  if (!shard_pull_->sink.OnChunk(m)) return;  // stray/stale chunk: no ack
  // Ack with the chunk's group/viewid so the SOURCE's SnapshotServer (which
  // validates both) accepts it.
  vr::SnapshotAckMsg ack;
  ack.group = m.group;
  ack.viewid = m.viewid;
  ack.from = self_;
  ack.vs = shard_pull_->sink.vs();
  ack.offset = shard_pull_->sink.offset();
  SendMsg(m.from, ack);
  if (shard_pull_->sink.complete()) {
    std::vector<std::uint8_t> payload = shard_pull_->sink.payload();
    shard_pull_->sink.Reset();
    tasks_.Spawn(FinishShardInstall(shard_pull_->id, std::move(payload)));
  }
}

host::Task<void> Cohort::FinishShardInstall(std::uint64_t pull_id,
                                           std::vector<std::uint8_t> payload) {
  if (!shard_pull_ || shard_pull_->id != pull_id || !IsActivePrimary()) {
    co_return;
  }
  // The image must answer exactly the pull we issued.
  {
    wire::Reader r(payload);
    const std::string lo = r.String();
    const std::string hi = r.String();
    const GroupId src = r.U64();
    if (!r.ok() || lo != shard_pull_->lo || hi != shard_pull_->hi ||
        src != shard_pull_->from_group) {
      ResetShardPull(false);
      co_return;
    }
  }
  Trace("installing shard [%s, %s) from g%llu (%zu bytes)",
        shard_pull_->lo.c_str(), shard_pull_->hi.c_str(),
        static_cast<unsigned long long>(shard_pull_->from_group),
        payload.size());
  vr::EventRecord rec = vr::EventRecord::ShardInstall(std::move(payload));
  // Primary applies its own record at add time, like call effects; backups
  // see it through the ordinary record stream (ApplyRecord).
  ApplyShardRecord(rec);
  const Viewstamp vs = AddRecord(std::move(rec));
  const bool ok = co_await Force(vs);
  if (!shard_pull_ || shard_pull_->id != pull_id) co_return;
  if (ok) ++stats_.shard_pulls_completed;
  ResetShardPull(ok);
}

void Cohort::ResetShardPull(bool ok) {
  if (!shard_pull_) return;
  host_.timers().Cancel(shard_pull_->retry_timer);
  auto done = std::move(shard_pull_->done);
  shard_pull_.reset();
  if (done) done(ok);
}

// ---------------------------------------------------------------------------
// Record application & drop
// ---------------------------------------------------------------------------

void Cohort::ApplyShardRecord(const vr::EventRecord& rec) {
  wire::Reader r(rec.gstate);
  const std::string lo = r.String();
  const std::string hi = r.String();
  if (rec.type == vr::EventType::kShardInstall) {
    (void)r.U64();  // source group: diagnostic only
    if (!r.ok()) return;
    store_.InstallRange(r);
    ++stats_.shard_images_installed;
  } else {
    if (!r.ok()) return;
    store_.DropRange(lo, hi);
    ++stats_.shard_ranges_dropped;
  }
}

void Cohort::DropShard(std::string lo, std::string hi) {
  if (!IsActivePrimary() || !buffer_.active()) return;
  wire::Writer w;
  w.String(lo);
  w.String(hi);
  vr::EventRecord rec = vr::EventRecord::ShardDrop(w.Take());
  // Garbage collection: applied here and replicated lazily (no force —
  // losing a drop record to a view change merely delays the GC until the
  // rebalancer, or a later move, drops the range again).
  ApplyShardRecord(rec);
  AddRecord(std::move(rec));
}

}  // namespace vsr::core
