// Tunables for a cohort. Defaults model a local-area network of the paper's
// era scaled to the simulator's microsecond clock; every benchmark sweep
// varies these explicitly.
#pragma once

#include "host/time.h"
#include "storage/event_log.h"
#include "vr/comm_buffer.h"
#include "vr/snapshot.h"

namespace vsr::core {

struct CohortOptions {
  // ---- Failure detection (§4: "I'm alive" messages) ----
  host::Duration ping_interval = 30 * host::kMillisecond;
  host::Duration liveness_timeout = 120 * host::kMillisecond;
  host::Duration fd_check_interval = 40 * host::kMillisecond;

  // ---- View change (§4.1: use "fairly long" timeouts so slow responders
  //      are not excluded, which would trigger cascading view changes) ----
  host::Duration invite_response_wait = 150 * host::kMillisecond;
  host::Duration view_form_retry = 250 * host::kMillisecond;
  host::Duration underling_timeout = 400 * host::kMillisecond;
  // Staggered manager eligibility (§4.1: "the cohorts could be ordered, and
  // a cohort would become a manager only if all higher-priority cohorts
  // appear to be inaccessible"). Cohort k in the configuration waits an
  // extra k * manager_stagger before self-promoting to manager.
  host::Duration manager_stagger = 60 * host::kMillisecond;

  // ---- Communication buffer ----
  vr::CommBufferOptions buffer;

  // ---- Snapshot state transfer (DESIGN.md §9) ----
  vr::SnapshotTransferOptions snapshot;

  // ---- Write-behind durable event log (DESIGN.md §10) ----
  // Off by default: the paper's configuration is volatile and E9 must keep
  // reproducing its catastrophe numbers. When enabled, applied records are
  // group-committed to stable storage strictly behind the ack path and
  // Recover() replays them to rejoin with state (view_formation.h cond. 4).
  storage::EventLogOptions event_log;

  // ---- Shard rebalancing (DESIGN.md §11) ----
  // An unfinished cross-group shard pull re-resolves the source group's
  // primary and re-sends the pull request after this long (source primary
  // crashed or stood down mid-transfer).
  host::Duration shard_pull_retry = 250 * host::kMillisecond;

  // ---- Transactions ----
  // CPU cost of executing one procedure call at the primary, modeled as a
  // single serial resource per cohort (0 = calls are free, the default: the
  // simulator then charges only network and storage latency). Benches that
  // measure capacity — e.g. E13's throughput-vs-shard-count sweep — turn
  // this on; with it off a single group can absorb unbounded load and
  // sharding has nothing to show.
  host::Duration call_service_time = 0;
  host::Duration lock_wait_timeout = 150 * host::kMillisecond;
  host::Duration call_timeout = 60 * host::kMillisecond;  // per attempt
  int call_attempts = 3;                                // probes before "no reply"
  host::Duration prepare_timeout = 80 * host::kMillisecond;
  int prepare_attempts = 3;
  host::Duration commit_ack_timeout = 80 * host::kMillisecond;
  int commit_attempts = 5;
  // Commit decisions bound for the same participant primary coalesce behind
  // this delay into one CommitMsg frame (body + piggybacked extras) instead
  // of a dedicated frame per decision. Keep it well under commit_ack_timeout;
  // the delay defers when participants *apply* a fused commit (the client
  // was already answered at committing-buffer time, DESIGN.md §13), so the
  // default stays 0 — one frame per decision, fan-out on the same tick.
  host::Duration decision_coalesce_delay = 0;
  host::Duration probe_timeout = 50 * host::kMillisecond;
  int probe_rounds = 4;
  // Blocked prepared participants query the coordinator group this often
  // (§3.4).
  host::Duration query_interval = 250 * host::kMillisecond;
  // §3.5: a coordinator-server aborts an externally driven transaction
  // unilaterally when the client has gone quiet this long.
  host::Duration external_txn_timeout = 2 * host::kSecond;
  // §3.4: a participant holding locks for a transaction that has gone quiet
  // (no call/prepare/commit activity) queries the coordinator group after
  // this long — abort messages are best-effort, so this is the net that
  // frees locks left by vanished or doomed transactions.
  host::Duration idle_txn_timeout = 700 * host::kMillisecond;
  // Backup ack coalescing: gap-free BufferAcks may be deferred up to this
  // long and merged into one frame carrying the latest applied watermark
  // (0 = every batch is acked immediately). Gap requests are never deferred.
  // Trades a little force-to latency for fewer ack frames per tick.
  host::Duration ack_coalesce_delay = 0;

  // ---- Backup read leases (DESIGN.md §14) ----
  // Opt-in: the primary grants per-backup read leases (renewed on the
  // existing replication-ack traffic) and backups serve single-object
  // committed reads under them. Off by default — with it off no lease or
  // read frames exist and every delivered-frame digest is unchanged.
  bool backup_reads = false;
  // Validity of each grant from the moment the backup receives it. Renewed
  // at half-life on ack processing; must comfortably exceed the ack
  // round-trip under load, and should stay below underling_timeout so a
  // partitioned leaseholder's staleness window is bounded by less than the
  // time a new view needs to form and make progress.
  host::Duration read_lease_duration = 60 * host::kMillisecond;

  // ---- Design choices (ablations; see DESIGN.md §4) ----
  // Backups apply event records as they arrive (fast primary handoff) vs.
  // store them and replay on promotion (§3.3's trade-off).
  bool eager_backup_apply = true;
  // Force completed-call records even for read-only participants (§3.7).
  // Disabling this is UNSAFE — it exists to demonstrate the two-phase-
  // locking violation the paper warns about.
  bool force_read_only_prepare = true;
  // Run each remote call as a subaction and retry on no-reply instead of
  // aborting the whole transaction (§3.6 nested transactions).
  bool nested_call_retry = false;
  // Fig. 2 step 4 retries a call after a view-changed rejection, which is
  // only sound when the transport never duplicates frames: "If duplicate
  // messages are possible, we must abort the transaction in this case too"
  // (§3.1 — a duplicate of the rejected transmission may have executed in
  // the old view). Set true only when the network's duplicate probability
  // is zero.
  bool assume_no_duplicates = false;
  int nested_retry_attempts = 3;
  // Active primary may unilaterally add/exclude backups while it retains a
  // sub-majority (§4.1 last paragraph).
  bool unilateral_view_tweaks = false;
  // Persist cur_viewid at the end of a view change (§4.2). Disabling models
  // the fully-volatile ablation and widens the catastrophe window (E9).
  bool write_viewid_durably = true;
  // §6's trade-off knob: force each completed-call record to a sub-majority
  // BEFORE replying. "There would be no aborts due to view changes, but
  // calls would be processed more slowly." Measured in bench E5.
  bool force_calls_before_reply = false;
  // Fused commit path (DESIGN.md §13): for multi-participant transactions
  // the coordinator reports kCommitted as soon as the committing record is
  // BUFFERED — the decision force and the commit fan-out overlap in
  // background instead of serializing ahead of the client reply, and
  // decision durability rides the replication flush (issued in the same
  // instant) plus the write-behind event log (§10) rather than a dedicated
  // force in the latency path. Off = the classic serial 2PC ladder
  // (prepare round, await, force committing, commit round) — the ablation
  // baseline measured in bench E2. Single-participant transactions always
  // take the serial path, so single-group workloads are byte-identical
  // either way.
  bool commit_fusion = true;
};

}  // namespace vsr::core
